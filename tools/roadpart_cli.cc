// roadpart_cli — command-line front end for the library.
//
//   roadpart_cli generate  --preset=D1|M1|M2|M3 --seed=N --hotspots=H out.net
//   roadpart_cli partition --scheme=ASG --k=6 [--stability=E] in.net out.csv
//   roadpart_cli evaluate  in.net partition.csv
//   roadpart_cli sweep     --scheme=ASG --kmin=2 --kmax=20 in.net
//
// Networks use the text format of network_io.h; partitions are
// "segment_id,partition_id" CSV.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "common/flags.h"
#include "common/string_util.h"
#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  roadpart_cli generate  --preset=D1|M1|M2|M3 [--seed=N]"
      " [--hotspots=H] <out.net>\n"
      "  roadpart_cli partition --scheme=AG|ASG|NG|NSG|JIG [--k=K]"
      " [--seed=N] [--stability=E] [--threads=T]\n"
      "                 [--deadline-seconds=S] "
      "[--on-nonconvergence=fail|retry|dense|best-effort]\n"
      "                 [--density-policy=reject|clamp]"
      " [--checkpoint-dir=DIR] [--resume]\n"
      "                 [--geojson=NAME.geojson] [--snapshot-out=NAME.rpsnap]"
      " <in.net> <out.csv>\n"
      "  roadpart_cli evaluate  <in.net> <partition.csv>\n"
      "  roadpart_cli simulate  [--vehicles=N] [--horizon=S] [--interval=S]"
      " [--snapshot=T] [--seed=N] <in.net> <out.densities>\n"
      "  roadpart_cli mine      [--stability=E] [--seed=N] <in.net>"
      " <out.supergraph>\n"
      "  roadpart_cli analyze   [--scheme=S] [--k=K] [--seed=N] <in.net>"
      " <series.csv>\n"
      "  roadpart_cli refresh   [--scheme=S] [--k=K] [--inner-scheme=S]"
      " [--inner-k=K] [--seed=N]\n"
      "                 [--trigger-ratio=R] [--boundary-delta-ratio=R]"
      " [--no-warm-start] <in.net> <series.csv>\n"
      "  roadpart_cli sweep     [--scheme=S] [--kmin=A] [--kmax=B]"
      " [--seed=N] <in.net>\n"
      "\n"
      "  refresh partitions snapshot 0 into regions, then re-cuts only\n"
      "  dirty regions at each later snapshot (incremental Section 6.4),\n"
      "  reporting dirty/clean counts, warm starts and phase timings.\n"
      "  --threads=T sets worker threads for every command (0 = RP_THREADS\n"
      "  env or hardware default); results are identical for any value.\n"
      "  --output-dir=DIR places relative output files under DIR (created\n"
      "  on demand). --checkpoint-dir=DIR persists each completed pipeline\n"
      "  stage; --resume consumes valid stages and is bit-identical to an\n"
      "  uninterrupted run. --io-retry-attempts=N and\n"
      "  --io-retry-base-delay=S retry transient I/O failures with\n"
      "  deterministic backoff. --snapshot-out=PATH additionally exports the\n"
      "  partition as an immutable rp_serve snapshot (rpsnap format).\n");
  return 2;
}

Result<Scheme> ParseScheme(const std::string& name) {
  if (name == "AG") return Scheme::kAG;
  if (name == "ASG") return Scheme::kASG;
  if (name == "NG") return Scheme::kNG;
  if (name == "NSG") return Scheme::kNSG;
  if (name == "JIG" || name == "JiGeroliminis") {
    return Scheme::kJiGeroliminis;
  }
  return Status::InvalidArgument("unknown scheme '" + name + "'");
}

Result<NonConvergencePolicy> ParseNonConvergencePolicy(
    const std::string& name) {
  if (name == "fail") return NonConvergencePolicy::kFail;
  if (name == "retry") return NonConvergencePolicy::kRetry;
  if (name == "dense") return NonConvergencePolicy::kFallbackDense;
  if (name == "best-effort") return NonConvergencePolicy::kBestEffort;
  return Status::InvalidArgument("unknown non-convergence policy '" + name +
                                 "' (want fail|retry|dense|best-effort)");
}

Result<DensityPolicy> ParseDensityPolicy(const std::string& name) {
  if (name == "reject") return DensityPolicy::kReject;
  if (name == "clamp") return DensityPolicy::kClampAndWarn;
  return Status::InvalidArgument("unknown density policy '" + name +
                                 "' (want reject|clamp)");
}

/// Places a relative output path under --output-dir (created on demand).
/// Absolute paths and runs without the flag pass through unchanged.
Result<std::string> ResolveOutput(const FlagParser& flags,
                                  const std::string& path) {
  std::string dir = flags.GetString("output-dir", "");
  if (dir.empty() || (!path.empty() && path[0] == '/')) return path;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create --output-dir '" + dir +
                           "': " + ec.message());
  }
  return dir + "/" + path;
}

/// Transient-I/O retry policy from --io-retry-attempts / --io-retry-base-delay
/// (deterministic backoff; see common/durable_io.h).
Result<RetryOptions> RetryFromFlags(const FlagParser& flags) {
  RetryOptions retry;
  auto attempts = flags.GetInt("io-retry-attempts", retry.max_attempts);
  if (!attempts.ok()) return attempts.status();
  if (*attempts < 1) {
    return Status::InvalidArgument("--io-retry-attempts must be >= 1");
  }
  auto base = flags.GetDouble("io-retry-base-delay", retry.base_delay_seconds);
  if (!base.ok()) return base.status();
  if (*base < 0.0) {
    return Status::InvalidArgument("--io-retry-base-delay must be >= 0");
  }
  retry.max_attempts = static_cast<int>(*attempts);
  retry.base_delay_seconds = *base;
  return retry;
}

Result<DatasetPreset> ParsePreset(const std::string& name) {
  if (name == "D1") return DatasetPreset::kD1;
  if (name == "M1") return DatasetPreset::kM1;
  if (name == "M2") return DatasetPreset::kM2;
  if (name == "M3") return DatasetPreset::kM3;
  return Status::InvalidArgument("unknown preset '" + name + "'");
}

int CmdGenerate(const FlagParser& flags) {
  if (flags.positional().size() != 1) return Usage();
  auto preset = ParsePreset(flags.GetString("preset", "D1"));
  if (!preset.ok()) return Fail(preset.status());
  auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  auto hotspots = flags.GetInt("hotspots", 3);
  if (!hotspots.ok()) return Fail(hotspots.status());

  auto out = ResolveOutput(flags, flags.positional()[0]);
  if (!out.ok()) return Fail(out.status());

  auto net = GenerateDataset(*preset, static_cast<uint64_t>(*seed));
  if (!net.ok()) return Fail(net.status());
  CongestionFieldOptions field;
  field.num_hotspots = static_cast<int>(*hotspots);
  field.seed = static_cast<uint64_t>(*seed) + 1000;
  CongestionField congestion(*net, field);
  Status st = net->SetDensities(congestion.Densities());
  if (!st.ok()) return Fail(st);
  st = SaveRoadNetwork(*net, *out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s: %d intersections, %d segments\n", out->c_str(),
              net->num_intersections(), net->num_segments());
  return 0;
}

int CmdPartition(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto scheme = ParseScheme(flags.GetString("scheme", "ASG"));
  if (!scheme.ok()) return Fail(scheme.status());
  auto k = flags.GetInt("k", 6);
  if (!k.ok()) return Fail(k.status());
  auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  auto stability = flags.GetDouble("stability", 0.0);
  if (!stability.ok()) return Fail(stability.status());
  auto deadline = flags.GetDouble("deadline-seconds", 0.0);
  if (!deadline.ok()) return Fail(deadline.status());
  auto nonconv =
      ParseNonConvergencePolicy(flags.GetString("on-nonconvergence",
                                                "best-effort"));
  if (!nonconv.ok()) return Fail(nonconv.status());
  auto density = ParseDensityPolicy(flags.GetString("density-policy",
                                                    "reject"));
  if (!density.ok()) return Fail(density.status());
  auto retry = RetryFromFlags(flags);
  if (!retry.ok()) return Fail(retry.status());
  std::string crash_stage = flags.GetString("crash-after-stage", "");
  if (!crash_stage.empty()) {
    auto parsed = ParseCheckpointStage(crash_stage);
    if (!parsed.ok()) return Fail(parsed.status());
  }
  auto csv_path = ResolveOutput(flags, flags.positional()[1]);
  if (!csv_path.ok()) return Fail(csv_path.status());

  auto net = LoadRoadNetwork(flags.positional()[0], *retry);
  if (!net.ok()) return Fail(net.status());

  PartitionerOptions options;
  options.scheme = *scheme;
  options.k = static_cast<int>(*k);
  options.seed = static_cast<uint64_t>(*seed);
  options.miner.stability.threshold = *stability;
  options.deadline_seconds = *deadline;
  options.spectral.on_nonconvergence = *nonconv;
  options.density_policy = *density;
  options.num_threads = DefaultParallelism();  // --threads / RP_THREADS
  options.checkpoint.dir = flags.GetString("checkpoint-dir", "");
  options.checkpoint.resume = flags.GetBool("resume", false);
  options.checkpoint.retry = *retry;
  options.checkpoint.crash_after_stage = crash_stage;
  std::string snapshot_name = flags.GetString("snapshot-out", "");
  if (!snapshot_name.empty()) {
    auto snapshot_path = ResolveOutput(flags, snapshot_name);
    if (!snapshot_path.ok()) return Fail(snapshot_path.status());
    options.snapshot_path = *snapshot_path;
  }
  auto outcome = Partitioner(options).PartitionNetwork(*net);
  // A failed run (deadline, rejected input, non-convergence under a strict
  // policy) writes nothing: the output CSV either holds a complete partition
  // or does not exist. With --checkpoint-dir, completed stages survive for
  // a later --resume.
  if (!outcome.ok()) return Fail(outcome.status());

  Status st = SavePartitionCsv(outcome->assignment, *csv_path, *retry);
  if (!st.ok()) return Fail(st);
  if (!options.snapshot_path.empty()) {
    std::printf("wrote serving snapshot %s\n", options.snapshot_path.c_str());
  }
  std::string geojson_name = flags.GetString("geojson", "");
  if (!geojson_name.empty()) {
    auto geojson_path = ResolveOutput(flags, geojson_name);
    if (!geojson_path.ok()) return Fail(geojson_path.status());
    GeoJsonOptions geo;
    geo.partition = outcome->assignment;
    st = ExportGeoJson(*net, geo, *geojson_path, *retry);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", geojson_path->c_str());
  }
  std::printf("scheme=%s k=%d k'=%d supernodes=%d  "
              "timings: %.3fs / %.3fs / %.3fs\n",
              SchemeName(*scheme), outcome->k_final, outcome->k_prime,
              outcome->num_supernodes, outcome->module1_seconds,
              outcome->module2_seconds, outcome->module3_seconds);
  std::printf("%s", outcome->diagnostics.ToString().c_str());
  return 0;
}

int CmdEvaluate(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());
  auto assignment = LoadPartitionCsv(flags.positional()[1],
                                     net->num_segments());
  if (!assignment.ok()) return Fail(assignment.status());

  RoadGraph rg = RoadGraph::FromNetwork(*net);
  Status validity = CheckPartitionValidity(rg.adjacency(), *assignment);
  auto eval = EvaluatePartitions(rg.adjacency(), rg.features(), *assignment);
  if (!eval.ok()) return Fail(eval.status());
  auto q = Modularity(GaussianWeightedGraph(rg.adjacency(), rg.features()),
                      *assignment);
  std::printf("k=%d  inter=%.4f  intra=%.4f  GDBI=%.4f  ANS=%.4f  Q=%.4f\n",
              eval->num_partitions, eval->inter, eval->intra, eval->gdbi,
              eval->ans, q.ok() ? q.value() : 0.0);
  std::printf("validity (C.1 disjoint cover, C.2 connectivity): %s\n",
              validity.ok() ? "OK" : validity.ToString().c_str());
  auto rows = SummarizePartitions(rg.adjacency(), rg.features(), *assignment);
  if (rows.ok()) {
    std::printf("%s", FormatPartitionTable(*rows).c_str());
  }
  return 0;
}

int CmdMine(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto stability = flags.GetDouble("stability", 0.0);
  auto seed = flags.GetInt("seed", 1);
  if (!stability.ok() || !seed.ok()) return Usage();

  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());
  RoadGraph rg = RoadGraph::FromNetwork(*net);

  SupergraphMinerOptions options;
  options.stability.threshold = *stability;
  options.seed = static_cast<uint64_t>(*seed);
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, options, &report);
  if (!sg.ok()) return Fail(sg.status());
  auto out = ResolveOutput(flags, flags.positional()[1]);
  if (!out.ok()) return Fail(out.status());
  Status st = SaveSupergraph(*sg, *out);
  if (!st.ok()) return Fail(st);
  std::printf("mined %s: kappa*=%d, %d supernodes (%d before stability), "
              "%lld superlinks; matrix order %d -> %d\n",
              out->c_str(), report.chosen_kappa,
              sg->num_supernodes(), report.supernodes_before_stability,
              static_cast<long long>(sg->links().num_edges()),
              rg.num_nodes(), sg->num_supernodes());
  return 0;
}

int CmdSimulate(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto vehicles = flags.GetInt("vehicles", 5000);
  auto horizon = flags.GetDouble("horizon", 3600.0);
  auto interval = flags.GetDouble("interval", 120.0);
  auto snapshot = flags.GetInt("snapshot", -1);
  auto seed = flags.GetInt("seed", 1);
  if (!vehicles.ok() || !horizon.ok() || !interval.ok() || !snapshot.ok() ||
      !seed.ok()) {
    return Usage();
  }

  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());

  TripGeneratorOptions demand;
  demand.num_vehicles = static_cast<int>(*vehicles);
  demand.horizon_seconds = *horizon;
  demand.seed = static_cast<uint64_t>(*seed);
  auto trips = GenerateTrips(*net, demand);
  if (!trips.ok()) return Fail(trips.status());

  MicrosimOptions sim;
  sim.total_seconds = *horizon;
  sim.record_every_seconds = *interval;
  auto result = RunMicrosim(*net, trips->trips, sim);
  if (!result.ok()) return Fail(result.status());
  if (result->densities.empty()) {
    return Fail(Status::Internal("simulation produced no snapshots"));
  }

  SnapshotSeries series(net->num_segments());
  for (size_t i = 0; i < result->densities.size(); ++i) {
    Status append = series.Append((i + 1) * *interval, result->densities[i]);
    if (!append.ok()) return Fail(append);
  }
  std::string series_path = flags.GetString("series", "");
  if (!series_path.empty()) {
    auto series_out = ResolveOutput(flags, series_path);
    if (!series_out.ok()) return Fail(series_out.status());
    Status st = SaveSnapshotSeries(series, *series_out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote full series (%d snapshots) to %s\n",
                series.num_snapshots(), series_out->c_str());
  }
  int t = static_cast<int>(*snapshot);
  if (t < 0 || t >= static_cast<int>(result->densities.size())) {
    // Default: the peak snapshot (highest mean density).
    t = series.PeakSnapshot();
  }
  auto out = ResolveOutput(flags, flags.positional()[1]);
  if (!out.ok()) return Fail(out.status());
  Status st = SaveDensities(result->densities[t], *out);
  if (!st.ok()) return Fail(st);
  std::printf("simulated %zu snapshots (%d trips completed); wrote snapshot "
              "%d to %s\n",
              result->densities.size(), result->completed_trips, t,
              out->c_str());
  return 0;
}

int CmdAnalyze(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto scheme = ParseScheme(flags.GetString("scheme", "ASG"));
  if (!scheme.ok()) return Fail(scheme.status());
  auto k = flags.GetInt("k", 4);
  auto seed = flags.GetInt("seed", 1);
  if (!k.ok() || !seed.ok()) return Usage();

  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());
  auto series = LoadSnapshotSeries(flags.positional()[1]);
  if (!series.ok()) return Fail(series.status());
  RoadGraph rg = RoadGraph::FromNetwork(*net);

  EvolutionOptions options;
  options.partitioner.scheme = *scheme;
  options.partitioner.k = static_cast<int>(*k);
  options.partitioner.seed = static_cast<uint64_t>(*seed);
  auto result = AnalyzeEvolution(rg, *series, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("%10s %8s %10s %8s %8s %8s\n", "t(s)", "k", "mean_dens",
              "ANS", "churn", "sec");
  for (const EvolutionStep& step : result->steps) {
    std::printf("%10.0f %8d %10.5f %8.4f %7.1f%% %8.3f\n",
                step.timestamp_seconds, step.k_final, step.mean_density,
                step.ans, 100.0 * step.churn, step.seconds);
  }
  std::printf("mean churn %.1f%%; regime changes at:", 
              100.0 * result->mean_churn);
  if (result->regime_changes.empty()) std::printf(" (none)");
  for (int t : result->regime_changes) std::printf(" t=%d", t);
  std::printf("\n");
  return 0;
}

int CmdRefresh(const FlagParser& flags) {
  if (flags.positional().size() != 2) return Usage();
  auto scheme = ParseScheme(flags.GetString("scheme", "ASG"));
  if (!scheme.ok()) return Fail(scheme.status());
  auto inner_scheme = ParseScheme(flags.GetString("inner-scheme", "AG"));
  if (!inner_scheme.ok()) return Fail(inner_scheme.status());
  auto k = flags.GetInt("k", 4);
  auto inner_k = flags.GetInt("inner-k", 2);
  auto seed = flags.GetInt("seed", 1);
  auto trigger = flags.GetDouble("trigger-ratio", 0.05);
  auto boundary = flags.GetDouble("boundary-delta-ratio", 0.05);
  if (!k.ok() || !inner_k.ok() || !seed.ok() || !trigger.ok() ||
      !boundary.ok()) {
    return Usage();
  }

  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());
  auto series = LoadSnapshotSeries(flags.positional()[1]);
  if (!series.ok()) return Fail(series.status());
  RoadGraph rg = RoadGraph::FromNetwork(*net);

  IntervalDriverOptions options;
  options.initial.scheme = *scheme;
  options.initial.k = static_cast<int>(*k);
  options.initial.seed = static_cast<uint64_t>(*seed);
  options.refresh.partitioner.scheme = *inner_scheme;
  options.refresh.partitioner.k = static_cast<int>(*inner_k);
  options.refresh.partitioner.seed = static_cast<uint64_t>(*seed);
  options.refresh.trigger_ratio = *trigger;
  options.refresh.boundary_delta_ratio = *boundary;
  options.refresh.warm_start_embeddings =
      !flags.GetBool("no-warm-start", false);
  options.refresh.num_threads = DefaultParallelism();  // --threads

  auto result = DriveIntervals(rg, *series, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("initial %s k=%d: %d regions in %.3fs\n",
              SchemeName(*scheme), static_cast<int>(*k), result->k_top,
              result->initial_seconds);
  std::printf("%10s %6s %6s %6s %6s %8s %8s %9s %9s %9s\n", "t(s)", "k",
              "dirty", "clean", "warm", "ANS", "churn", "trig(s)", "part(s)",
              "merge(s)");
  for (const IntervalStep& step : result->steps) {
    std::printf("%10.0f %6d %6d %6d %6d %8.4f %7.1f%% %9.4f %9.4f %9.4f\n",
                step.timestamp_seconds, step.k_final, step.stats.dirty,
                step.stats.clean, step.stats.warm_started, step.ans,
                100.0 * step.churn, step.stats.trigger_seconds,
                step.stats.subpartition_seconds, step.stats.merge_seconds);
  }
  return 0;
}

int CmdSweep(const FlagParser& flags) {
  if (flags.positional().size() != 1) return Usage();
  auto scheme = ParseScheme(flags.GetString("scheme", "ASG"));
  if (!scheme.ok()) return Fail(scheme.status());
  auto kmin = flags.GetInt("kmin", 2);
  auto kmax = flags.GetInt("kmax", 20);
  auto seed = flags.GetInt("seed", 1);
  if (!kmin.ok() || !kmax.ok() || !seed.ok()) return Usage();

  auto net = LoadRoadNetwork(flags.positional()[0]);
  if (!net.ok()) return Fail(net.status());
  RoadGraph rg = RoadGraph::FromNetwork(*net);

  OptimalKOptions options;
  options.partitioner.scheme = *scheme;
  options.partitioner.seed = static_cast<uint64_t>(*seed);
  options.k_min = static_cast<int>(*kmin);
  options.k_max = static_cast<int>(*kmax);
  auto result = FindOptimalK(rg, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("%4s %10s %10s %10s %10s\n", "k", "inter", "intra", "GDBI",
              "ANS");
  for (const KSweepPoint& point : result->sweep) {
    std::printf("%4d %10.4f %10.4f %10.4f %10.4f\n", point.k, point.inter,
                point.intra, point.gdbi, point.ans);
  }
  std::printf("optimal k by ANS: %d (%.4f)", result->optimal_k,
              result->optimal_ans);
  if (!result->local_minima.empty()) {
    std::printf("; other candidates:");
    for (int k : result->local_minima) std::printf(" %d", k);
  }
  std::printf("\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  auto flags = FlagParser::Parse(
      argc - 2, argv + 2,
      {"preset", "seed", "hotspots", "scheme", "k", "stability", "kmin",
       "kmax", "vehicles", "horizon", "interval", "snapshot", "series",
       "threads", "deadline-seconds", "on-nonconvergence", "density-policy",
       "checkpoint-dir", "resume", "crash-after-stage", "geojson",
       "snapshot-out", "output-dir", "io-retry-attempts",
       "io-retry-base-delay", "inner-scheme", "inner-k", "trigger-ratio",
       "boundary-delta-ratio", "no-warm-start"},
      /*bool_flags=*/{"resume", "no-warm-start"});
  if (!flags.ok()) return Fail(flags.status());

  // Global thread knob: applies to every command; deterministic kernels make
  // this a pure performance setting.
  auto threads = flags->GetInt("threads", 0);
  if (!threads.ok()) return Fail(threads.status());
  if (*threads > 0) SetDefaultParallelism(static_cast<int>(*threads));

  if (command == "generate") return CmdGenerate(*flags);
  if (command == "partition") return CmdPartition(*flags);
  if (command == "evaluate") return CmdEvaluate(*flags);
  if (command == "simulate") return CmdSimulate(*flags);
  if (command == "mine") return CmdMine(*flags);
  if (command == "analyze") return CmdAnalyze(*flags);
  if (command == "refresh") return CmdRefresh(*flags);
  if (command == "sweep") return CmdSweep(*flags);
  return Usage();
}

}  // namespace
}  // namespace roadpart

int main(int argc, char** argv) { return roadpart::Main(argc, argv); }
