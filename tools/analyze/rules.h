#ifndef ROADPART_TOOLS_ANALYZE_RULES_H_
#define ROADPART_TOOLS_ANALYZE_RULES_H_

#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace roadpart {
namespace analyze {

/// Severity tiers. Both tiers fail the build when non-baselined; the tier
/// is triage metadata (errors are correctness/architecture violations,
/// warnings are hygiene debt that may be baselined while being paid down).
enum class Severity { kError, kWarning };

const char* SeverityName(Severity s);

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< repo-relative path, '/' separators
  int line = 0;         ///< 1-based
  std::string rule;     ///< stable rule id from the catalog
  Severity severity = Severity::kError;
  std::string message;  ///< human-readable explanation
  bool baselined = false;

  std::string ToString() const;
};

/// Catalog entry for one rule: the id is stable across releases (baselines
/// and suppressions reference it).
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every rule rp_analyze knows, in catalog order.
const std::vector<RuleInfo>& RuleCatalog();

/// Severity of `rule` (error for unknown ids).
Severity RuleSeverity(const std::string& rule);

struct FileCheckOptions {
  /// Names of Status/Result-returning functions for the discarded-status
  /// rule (collected from headers via CollectStatusFunctionNames).
  std::vector<std::string> status_function_names;
};

/// Runs every per-file (token-level) rule on one lexed translation unit.
/// `path` is interpreted relative to the repo root with '/' separators and
/// determines which rules apply. Findings suppressed by inline
/// `// rp-analyze: allow(rule)` comments are already removed; results are
/// sorted by (line, rule).
std::vector<Finding> CheckFile(const std::string& path,
                               const LexedSource& lexed,
                               const FileCheckOptions& options);

/// Scans a lexed header for declarations returning Status or Result<T>.
std::vector<std::string> CollectStatusFunctionNames(const LexedSource& lexed);

}  // namespace analyze
}  // namespace roadpart

#endif  // ROADPART_TOOLS_ANALYZE_RULES_H_
