#ifndef ROADPART_TOOLS_ANALYZE_LEXER_H_
#define ROADPART_TOOLS_ANALYZE_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace roadpart {
namespace analyze {

/// Token kinds surfaced by the lexer. String/char literals are emitted as
/// single placeholder tokens with their contents removed, so no rule can
/// ever match text inside a literal; comments are not tokens at all.
enum class TokenKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  std::string text;
  int line = 0;  ///< 1-based physical line of the token's first character
  TokenKind kind = TokenKind::kPunct;

  bool IsIdent() const { return kind == TokenKind::kIdent; }
};

/// One `#include` directive, recorded during lexing.
struct IncludeDirective {
  std::string target;  ///< path between the quotes / angle brackets
  int line = 0;        ///< 1-based
  bool angled = false; ///< true for <...>, false for "..."
};

/// The lexed form of one translation unit.
///
/// Guarantees (see DESIGN.md "Static analysis architecture"):
///   - comments never produce tokens, including `//` comments extended over
///     physical lines by backslash-newline splices;
///   - string, character, and raw string literals (`R"delim(...)delim"`,
///     with any encoding prefix) are each one content-free placeholder
///     token;
///   - backslash-newline continuations are transparent everywhere except
///     inside raw string literals, where they are literal text;
///   - line numbers always refer to physical source lines.
struct LexedSource {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;

  bool has_pragma_once = false;
  /// True when the file opens (before any other code) with a classic
  /// `#ifndef NAME` / `#define NAME` include-guard pair.
  bool has_include_guard = false;
  std::string guard_name;

  /// Lines covered by `// rp-analyze: allow(rule-a, rule-b)` suppression
  /// comments, per rule id. A suppression covers every physical line the
  /// comment spans plus the following line, so both trailing same-line and
  /// preceding-line placement work.
  std::map<std::string, std::set<int>> allowed_lines;

  /// True when findings of `rule` on `line` are suppressed.
  bool LineAllowed(const std::string& rule, int line) const;
};

/// Lexes C++ source. Never fails: malformed input degrades to best-effort
/// tokens (an unterminated literal swallows the rest of the file).
LexedSource Lex(const std::string& source);

/// Replaces the contents of comments and string/char/raw-string literals
/// with spaces while preserving newlines and the delimiting quote
/// characters. Unlike the pre-rp_analyze implementation this understands
/// raw string literals and backslash-newline continued `//` comments, the
/// two constructs that used to leak literal text back into code position.
std::string StripCommentsAndStrings(const std::string& source);

}  // namespace analyze
}  // namespace roadpart

#endif  // ROADPART_TOOLS_ANALYZE_LEXER_H_
