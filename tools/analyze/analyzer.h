#ifndef ROADPART_TOOLS_ANALYZE_ANALYZER_H_
#define ROADPART_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tools/analyze/include_graph.h"
#include "tools/analyze/rules.h"

namespace roadpart {
namespace analyze {

struct AnalyzeOptions {
  /// Path to the layering DAG spec. Empty disables the layering and
  /// undeclared-module checks (include-of-cc and cycle detection still run).
  std::string layers_file;
  /// Path to the baseline file. Empty means no baseline: every finding is
  /// new. Each non-comment line is `rule<ws>file [justification...]`; a
  /// finding matching (rule, file) is reported but marked baselined and
  /// does not fail the run.
  std::string baseline_file;
  /// Master switch for the include-graph pass.
  bool include_graph = true;
};

struct AnalyzeReport {
  std::vector<Finding> findings;  ///< all findings, sorted (file, line, rule)
  /// Baseline entries that matched no finding — stale debt to delete.
  std::vector<std::string> stale_baseline;
  int baselined_count = 0;
  int new_count = 0;  ///< non-baselined findings; > 0 fails the run
};

/// Walks `roots` (files or directories, recursively; .h/.cc only), lexes
/// every file once, then runs the per-file rules and the include-graph
/// pass. Paths in findings come out relative to `repo_root`. Fails only on
/// I/O or spec errors — findings are data, not errors.
Result<AnalyzeReport> AnalyzeTree(const std::string& repo_root,
                                  const std::vector<std::string>& roots,
                                  const AnalyzeOptions& options);

/// Runs only the per-file (token-level) rules on one in-memory source —
/// the entry point for fixture tests and the rp_lint compatibility shim.
std::vector<Finding> AnalyzeSource(
    const std::string& path, const std::string& source,
    const std::vector<std::string>& status_function_names);

/// Grep-friendly text report: one `file:line: [rule] message` per finding
/// (baselined ones annotated), then a summary line.
std::string FormatText(const AnalyzeReport& report);

/// Machine-readable report: {"findings": [...], "stale_baseline": [...],
/// "summary": {...}} with stable key order.
std::string FormatJson(const AnalyzeReport& report);

}  // namespace analyze
}  // namespace roadpart

#endif  // ROADPART_TOOLS_ANALYZE_ANALYZER_H_
