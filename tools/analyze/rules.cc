#include "tools/analyze/rules.h"

#include <algorithm>
#include <initializer_list>
#include <map>
#include <set>
#include <tuple>

#include "common/string_util.h"

namespace roadpart {
namespace analyze {

namespace {

// Stable rule ids. Legacy ids (from tools/rp_lint) are preserved verbatim
// so existing suppression knowledge and muscle memory carry over.
const char kRuleNondeterminism[] = "banned-nondeterminism";
const char kRulePrint[] = "print-in-library";
const char kRuleDiscardedStatus[] = "discarded-status";
const char kRuleParallelMutation[] = "parallelfor-shared-mutation";
const char kRuleUncheckedEigen[] = "unchecked-eigen-convergence";
const char kRuleRawOfstream[] = "raw-ofstream-write";
const char kRuleMissingGuard[] = "missing-include-guard";
const char kRuleSelfContainment[] = "header-self-containment";

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  return path.size() >= prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0;
}

bool PathIsOneOf(const std::string& path,
                 std::initializer_list<const char*> candidates) {
  return std::any_of(candidates.begin(), candidates.end(),
                     [&](const char* c) { return path == c; });
}

bool PathIsHeader(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// Index of the token matching the opener at `open` ('(' <-> ')',
// '{' <-> '}', '[' <-> ']'), or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  const std::string& o = tokens[open].text;
  std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == o) ++depth;
    if (tokens[i].text == close && --depth == 0) return i;
  }
  return tokens.size();
}

// --- Rule: banned nondeterminism -------------------------------------------

void CheckNondeterminism(const std::string& path,
                         const std::vector<Token>& tokens,
                         std::vector<Finding>* findings) {
  if (PathIsOneOf(path, {"src/common/rng.h", "src/common/rng.cc"})) return;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent()) continue;
    const std::string& t = tokens[i].text;
    bool call = i + 1 < tokens.size() && tokens[i + 1].text == "(";
    if ((t == "rand" || t == "srand") && call) {
      findings->push_back({path, tokens[i].line, kRuleNondeterminism,
                           Severity::kError,
                           t + "() is banned; take an explicit roadpart::Rng",
                           false});
    } else if (t == "random_device") {
      findings->push_back(
          {path, tokens[i].line, kRuleNondeterminism, Severity::kError,
           "std::random_device is banned outside src/common/rng; seed an "
           "Rng instead",
           false});
    } else if (t == "time" && call && i + 3 < tokens.size() &&
               (tokens[i + 2].text == "nullptr" ||
                tokens[i + 2].text == "NULL" || tokens[i + 2].text == "0") &&
               tokens[i + 3].text == ")") {
      findings->push_back({path, tokens[i].line, kRuleNondeterminism,
                           Severity::kError,
                           "wall-clock seeding (time(" + tokens[i + 2].text +
                               ")) is banned; use a fixed or flag-provided "
                               "seed",
                           false});
    }
  }
}

// --- Rule: stdout/stderr prints in library code -----------------------------

void CheckLibraryPrints(const std::string& path,
                        const std::vector<Token>& tokens,
                        std::vector<Finding>* findings) {
  if (!PathHasPrefix(path, "src/")) return;
  // The logging/contract sinks themselves must write somewhere.
  if (PathIsOneOf(path, {"src/common/logging.cc", "src/common/status.cc",
                         "src/common/check.cc"})) {
    return;
  }
  static const std::set<std::string> kPrintFns = {"printf", "fprintf", "puts",
                                                  "fputs", "vprintf",
                                                  "vfprintf"};
  static const std::set<std::string> kStreams = {"cout", "cerr", "clog"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent()) continue;
    const std::string& t = tokens[i].text;
    if (kPrintFns.count(t) != 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      findings->push_back({path, tokens[i].line, kRulePrint, Severity::kError,
                           t + "() in library code; use RP_LOG instead",
                           false});
    } else if (kStreams.count(t) != 0 && i > 0 && tokens[i - 1].text == "::") {
      findings->push_back({path, tokens[i].line, kRulePrint, Severity::kError,
                           "std::" + t + " in library code; use RP_LOG instead",
                           false});
    }
  }
}

// --- Rule: discarded Status/Result calls ------------------------------------

void CheckDiscardedStatus(const std::string& path,
                          const std::vector<Token>& tokens,
                          const std::set<std::string>& status_fns,
                          std::vector<Finding>* findings) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent() || status_fns.count(tokens[i].text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // Walk back over a qualification / member chain (a.b->Ns::Name) to find
    // what precedes the whole statement candidate.
    size_t j = i;
    while (j >= 2 &&
           (tokens[j - 1].text == "." || tokens[j - 1].text == "->" ||
            tokens[j - 1].text == "::") &&
           tokens[j - 2].IsIdent()) {
      j -= 2;
    }
    if (j > 0) {
      const std::string& prev = tokens[j - 1].text;
      if (prev != ";" && prev != "{" && prev != "}") continue;
    }
    size_t close = MatchingClose(tokens, i + 1);
    if (close + 1 >= tokens.size() || tokens[close + 1].text != ";") continue;
    findings->push_back(
        {path, tokens[i].line, kRuleDiscardedStatus, Severity::kError,
         "result of Status/Result-returning call " + tokens[i].text +
             "() is discarded; handle it, RP_CHECK_OK it, or cast to void",
         false});
  }
}

// --- Rule: shared mutation inside ParallelFor lambdas -----------------------

// Identifiers that look like declaration prefixes but are not type names.
const std::set<std::string>& NonTypeKeywords() {
  static const std::set<std::string> kWords = {
      "break",  "case",     "class",  "const",  "constexpr", "continue",
      "delete", "do",       "else",   "enum",   "goto",      "new",
      "return", "sizeof",   "static", "struct", "operator",  "typename",
      "using",  "namespace"};
  return kWords;
}

// What one lambda's capture list says about each name's sharing.
struct CaptureInfo {
  bool default_ref = false;  // [&...]
  bool default_val = false;  // [=...]
  std::set<std::string> by_ref;  // &name entries; also "this" (pointer copy
                                 // still aliases the shared object)
  std::set<std::string> by_val;  // name / name=init / *this entries

  // Could a write through `name` reach state shared across iterations?
  bool IsShared(const std::string& name) const {
    if (by_ref.count(name) != 0) return true;
    if (by_val.count(name) != 0) return false;
    if (name == "this") return default_ref || default_val;
    return default_ref;
  }
  bool AnythingShared() const {
    return default_ref || default_val || !by_ref.empty();
  }
};

// Parses the capture list between tokens[lb] == "[" and tokens[cap_close].
CaptureInfo ParseCaptureList(const std::vector<Token>& tokens, size_t lb,
                             size_t cap_close) {
  CaptureInfo info;
  size_t b = lb + 1;
  int depth = 0;
  auto handle_entry = [&](size_t begin, size_t end) {
    if (begin >= end) return;
    const Token& first = tokens[begin];
    if (first.text == "&" && end == begin + 1) {
      info.default_ref = true;
    } else if (first.text == "=" && end == begin + 1) {
      info.default_val = true;
    } else if (first.text == "&" && begin + 1 < end &&
               tokens[begin + 1].IsIdent()) {
      info.by_ref.insert(tokens[begin + 1].text);  // &x and &x = init
    } else if (first.text == "*" && begin + 1 < end &&
               tokens[begin + 1].text == "this") {
      info.by_val.insert("this");  // *this is a copy
    } else if (first.text == "this") {
      info.by_ref.insert("this");  // pointer capture aliases shared object
    } else if (first.IsIdent()) {
      info.by_val.insert(first.text);  // x and x = init
    }
  };
  for (size_t i = lb + 1; i <= cap_close; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") --depth;
    if ((t == "," && depth == 0) || i == cap_close) {
      handle_entry(b, i);
      b = i + 1;
    }
  }
  return info;
}

// Collects names declared inside the token range [begin, end): lambda
// parameters and body-local variables, recognized by `Type name`,
// `Type& name`, `Type* name` and `...> name` shapes.
std::set<std::string> CollectLocalNames(const std::vector<Token>& tokens,
                                        size_t begin, size_t end) {
  std::set<std::string> locals;
  for (size_t i = begin; i < end; ++i) {
    if (!tokens[i].IsIdent() || NonTypeKeywords().count(tokens[i].text) != 0) {
      continue;
    }
    if (i == 0) continue;
    const Token& p = tokens[i - 1];
    bool declared = false;
    if (p.IsIdent() && NonTypeKeywords().count(p.text) == 0) {
      // `Type name` (builtin or user type).
      declared = true;
    } else if (p.text == ">") {
      // `std::vector<int> name`.
      declared = true;
    } else if ((p.text == "&" || p.text == "*") && i >= 2) {
      const Token& pp = tokens[i - 2];
      declared = (pp.IsIdent() && NonTypeKeywords().count(pp.text) == 0) ||
                 pp.text == ">";
    }
    if (declared) locals.insert(tokens[i].text);
  }
  return locals;
}

// Walks a member chain ending at index `last` (e.g. a.b.c with last on c)
// back to its root identifier index, or SIZE_MAX when the chain does not
// start at a plain identifier (indexed/call roots are treated as safe).
size_t ChainRoot(const std::vector<Token>& tokens, size_t last) {
  size_t j = last;
  while (j >= 2 && (tokens[j - 1].text == "." || tokens[j - 1].text == "->")) {
    if (!tokens[j - 2].IsIdent()) return static_cast<size_t>(-1);
    j -= 2;
  }
  return j;
}

void CheckLambdaBody(const std::string& path, const std::vector<Token>& tokens,
                     size_t body_begin, size_t body_end,
                     const std::set<std::string>& locals,
                     const CaptureInfo& captures,
                     std::vector<Finding>* findings) {
  static const std::set<std::string> kCompound = {
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "++",
      "--"};
  static const std::set<std::string> kGrowers = {"push_back", "emplace_back",
                                                 "insert", "emplace"};
  auto shared_root = [&](size_t target) -> const std::string* {
    size_t root = ChainRoot(tokens, target);
    if (root == static_cast<size_t>(-1)) return nullptr;
    const std::string& name = tokens[root].text;
    if (locals.count(name) != 0) return nullptr;
    if (!captures.IsShared(name)) return nullptr;
    return &tokens[root].text;
  };

  for (size_t i = body_begin; i < body_end; ++i) {
    const Token& t = tokens[i];
    if (kCompound.count(t.text) != 0) {
      // Identify the assignment target: token before the operator (post
      // forms) or after it (pre-increment). `x[i] +=` and `m(r, c) +=` have
      // ']' / ')' before the operator and are the sanctioned per-slot form.
      size_t target = static_cast<size_t>(-1);
      if (i > body_begin && tokens[i - 1].IsIdent()) {
        target = i - 1;
      } else if ((t.text == "++" || t.text == "--") && i + 1 < body_end &&
                 tokens[i + 1].IsIdent()) {
        target = i + 1;
      }
      if (target == static_cast<size_t>(-1)) continue;
      const std::string* name = shared_root(target);
      if (name == nullptr) continue;
      findings->push_back(
          {path, t.line, kRuleParallelMutation, Severity::kError,
           "lambda passed to ParallelFor mutates captured '" + *name +
               "' without per-index isolation; use ParallelBlockedSum/"
               "ParallelBlockedReduce for accumulation",
           false});
    } else if (t.text == "=" && i > body_begin && tokens[i - 1].IsIdent()) {
      // Plain assignment to a by-reference capture that is not indexed
      // per-slot: `shared = v;` inside the body. `out[i] = v` / `m(r,c) = v`
      // end the target with ']' / ')' and are skipped; declarations make
      // the name a local; `[x = init]` nested init-captures are skipped by
      // the '[' guard.
      size_t target = i - 1;
      if (target > body_begin && tokens[target - 1].text == "[") continue;
      const std::string* name = shared_root(target);
      if (name == nullptr) continue;
      findings->push_back(
          {path, t.line, kRuleParallelMutation, Severity::kError,
           "lambda passed to ParallelFor assigns captured '" + *name +
               "' without per-index/per-slot indexing; write into a "
               "per-slot element (e.g. out[i]) or reduce after the join",
           false});
    } else if (t.IsIdent() && kGrowers.count(t.text) != 0 && i >= 2 &&
               (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
               i + 1 < body_end && tokens[i + 1].text == "(") {
      const std::string* name = shared_root(i);
      if (name == nullptr) continue;
      findings->push_back(
          {path, t.line, kRuleParallelMutation, Severity::kError,
           "lambda passed to ParallelFor grows captured container '" + *name +
               "'; containers are not thread-safe — collect per-block and "
               "merge in deterministic order",
           false});
    }
  }
}

void CheckParallelForMutation(const std::string& path,
                              const std::vector<Token>& tokens,
                              std::vector<Finding>* findings) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent() ||
        (tokens[i].text != "ParallelFor" &&
         tokens[i].text != "ParallelForTasks" &&
         tokens[i].text != "ParallelForBlocked")) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    size_t call_close = MatchingClose(tokens, i + 1);
    if (call_close == tokens.size()) continue;
    // Find the lambda argument: first '[' inside the call.
    size_t lb = i + 2;
    while (lb < call_close && tokens[lb].text != "[") ++lb;
    if (lb >= call_close) continue;
    size_t cap_close = MatchingClose(tokens, lb);
    if (cap_close >= call_close) continue;
    CaptureInfo captures = ParseCaptureList(tokens, lb, cap_close);
    if (!captures.AnythingShared()) continue;
    // Parameter list, then body braces.
    size_t params_open = cap_close + 1;
    if (params_open >= call_close || tokens[params_open].text != "(") continue;
    size_t params_close = MatchingClose(tokens, params_open);
    if (params_close >= call_close) continue;
    size_t body_open = params_close + 1;
    while (body_open < call_close && tokens[body_open].text != "{") {
      ++body_open;
    }
    if (body_open >= call_close) continue;
    size_t body_close = MatchingClose(tokens, body_open);
    if (body_close > call_close) continue;

    std::set<std::string> locals =
        CollectLocalNames(tokens, params_open + 1, body_close);
    CheckLambdaBody(path, tokens, body_open + 1, body_close, locals, captures,
                    findings);
  }
}

// --- Rule: eigenvector use without a convergence check ----------------------

// A Lanczos basis that did not converge is not an eigenbasis; consuming
// EigenResult.eigenvectors while never looking at `converged` (or at
// `max_residual`) anywhere in the file is how the historical silent-accept
// bug slipped in. The solver internals under src/linalg/ legitimately
// assemble those fields and are exempt.
void CheckUncheckedEigenConvergence(const std::string& path,
                                    const std::vector<Token>& tokens,
                                    std::vector<Finding>* findings) {
  if (PathHasPrefix(path, "src/linalg/")) return;
  for (const Token& t : tokens) {
    if (t.IsIdent() && (t.text == "converged" || t.text == "max_residual")) {
      return;  // the file consults convergence somewhere
    }
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent() || tokens[i].text != "eigenvectors") continue;
    if (tokens[i - 1].text != "." && tokens[i - 1].text != "->") continue;
    findings->push_back(
        {path, tokens[i].line, kRuleUncheckedEigen, Severity::kError,
         "EigenResult eigenvectors consumed without consulting 'converged' "
         "anywhere in this file; check it (or route through "
         "ExtremeEigenvectors, which runs the fallback ladder)",
         false});
  }
}

// --- Rule: raw file writes in library code ----------------------------------

// Every artifact the library persists must go through AtomicFileWriter /
// WriteArtifact (temp file + fsync + rename + checksum envelope). A raw
// std::ofstream — or fopen in any mode — can leave a torn, unverifiable
// file behind on crash or ENOSPC. Only the durable-io layer itself may
// open files directly.
void CheckRawOfstream(const std::string& path,
                      const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (!PathHasPrefix(path, "src/")) return;
  if (PathIsOneOf(path,
                  {"src/common/durable_io.cc", "src/common/durable_io.h"})) {
    return;
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent()) continue;
    const std::string& t = tokens[i].text;
    if (t == "ofstream" || t == "FileOutputStream") {
      findings->push_back(
          {path, tokens[i].line, kRuleRawOfstream, Severity::kError,
           "raw " + t +
               " in library code bypasses the crash-safe write path; use "
               "AtomicFileWriter or WriteArtifact from common/durable_io.h",
           false});
    } else if (t == "fopen" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "(") {
      findings->push_back(
          {path, tokens[i].line, kRuleRawOfstream, Severity::kError,
           "fopen() in library code; route writes through AtomicFileWriter "
           "and reads through ReadFileBytes (common/durable_io.h)",
           false});
    }
  }
}

// --- Rule: headers must have an include guard --------------------------------

void CheckIncludeGuard(const std::string& path, const LexedSource& lexed,
                       std::vector<Finding>* findings) {
  if (!PathIsHeader(path)) return;
  if (lexed.has_pragma_once || lexed.has_include_guard) return;
  findings->push_back(
      {path, 1, kRuleMissingGuard, Severity::kError,
       "header has neither a classic #ifndef/#define include guard nor "
       "#pragma once",
       false});
}

// --- Rule: header self-containment (std symbols) -----------------------------

// Map from std:: member to the standard header that declares it. The map is
// deliberately restricted to symbols with exactly one canonical provider so
// the rule cannot produce arguments, only findings.
const std::map<std::string, std::string>& StdSymbolHeaders() {
  static const std::map<std::string, std::string> kMap = {
      {"string", "string"},
      {"string_view", "string_view"},
      {"vector", "vector"},
      {"set", "set"},
      {"multiset", "set"},
      {"map", "map"},
      {"multimap", "map"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"deque", "deque"},
      {"array", "array"},
      {"tuple", "tuple"},
      {"pair", "utility"},
      {"move", "utility"},
      {"forward", "utility"},
      {"swap", "utility"},
      {"function", "functional"},
      {"optional", "optional"},
      {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},
      {"make_unique", "memory"},
      {"make_shared", "memory"},
      {"atomic", "atomic"},
      {"mutex", "mutex"},
      {"lock_guard", "mutex"},
      {"unique_lock", "mutex"},
      {"thread", "thread"},
      {"condition_variable", "condition_variable"},
      {"int8_t", "cstdint"},
      {"uint8_t", "cstdint"},
      {"int16_t", "cstdint"},
      {"uint16_t", "cstdint"},
      {"int32_t", "cstdint"},
      {"uint32_t", "cstdint"},
      {"int64_t", "cstdint"},
      {"uint64_t", "cstdint"},
      {"size_t", "cstddef"},
  };
  return kMap;
}

void CheckHeaderSelfContainment(const std::string& path,
                                const LexedSource& lexed,
                                std::vector<Finding>* findings) {
  if (!PathIsHeader(path)) return;
  if (!PathHasPrefix(path, "src/") && !PathHasPrefix(path, "tools/")) return;
  std::set<std::string> angled;
  for (const IncludeDirective& inc : lexed.includes) {
    if (inc.angled) angled.insert(inc.target);
  }
  // header -> (line of first use, symbol first used)
  std::map<std::string, std::pair<int, std::string>> missing;
  const std::vector<Token>& tokens = lexed.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!tokens[i].IsIdent() || tokens[i].text != "std") continue;
    if (tokens[i + 1].text != "::" || !tokens[i + 2].IsIdent()) continue;
    auto it = StdSymbolHeaders().find(tokens[i + 2].text);
    if (it == StdSymbolHeaders().end()) continue;
    if (angled.count(it->second) != 0) continue;
    missing.emplace(it->second,
                    std::make_pair(tokens[i + 2].line, tokens[i + 2].text));
  }
  for (const auto& [header, use] : missing) {
    findings->push_back(
        {path, use.first, kRuleSelfContainment, Severity::kWarning,
         "header uses std::" + use.second + " but does not include <" +
             header + "> itself; a header must compile standalone",
         false});
  }
}

}  // namespace

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Finding::ToString() const {
  return StrPrintf("%s:%d: [%s] %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"banned-nondeterminism", Severity::kError,
       "rand()/srand()/std::random_device/wall-clock seeding outside "
       "src/common/rng"},
      {"print-in-library", Severity::kError,
       "printf-family or std::cout/cerr/clog under src/ (use RP_LOG)"},
      {"discarded-status", Severity::kError,
       "Status/Result-returning call used as a bare expression statement"},
      {"parallelfor-shared-mutation", Severity::kError,
       "lambda passed to ParallelFor* writes a by-reference capture without "
       "per-index/per-slot indexing"},
      {"unchecked-eigen-convergence", Severity::kError,
       "EigenResult.eigenvectors consumed in a file that never consults "
       "'converged' or 'max_residual'"},
      {"raw-ofstream-write", Severity::kError,
       "std::ofstream/fopen under src/ outside common/durable_io"},
      {"missing-include-guard", Severity::kError,
       "header lacks both #ifndef/#define guard and #pragma once"},
      {"header-self-containment", Severity::kWarning,
       "header uses a std:: symbol without including its standard header"},
      {"include-of-cc", Severity::kError,
       "#include of a .cc file"},
      {"layering-violation", Severity::kError,
       "include edge not allowed by the layering DAG "
       "(tools/analyze/layers.txt)"},
      {"include-cycle", Severity::kError,
       "cyclic project include chain"},
      {"undeclared-module", Severity::kError,
       "module not declared in the layering DAG (tools/analyze/layers.txt)"},
  };
  return kCatalog;
}

Severity RuleSeverity(const std::string& rule) {
  for (const RuleInfo& info : RuleCatalog()) {
    if (rule == info.id) return info.severity;
  }
  return Severity::kError;
}

std::vector<Finding> CheckFile(const std::string& path,
                               const LexedSource& lexed,
                               const FileCheckOptions& options) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  std::set<std::string> status_fns(options.status_function_names.begin(),
                                   options.status_function_names.end());
  std::vector<Finding> findings;
  CheckNondeterminism(norm, lexed.tokens, &findings);
  CheckLibraryPrints(norm, lexed.tokens, &findings);
  CheckDiscardedStatus(norm, lexed.tokens, status_fns, &findings);
  CheckParallelForMutation(norm, lexed.tokens, &findings);
  CheckUncheckedEigenConvergence(norm, lexed.tokens, &findings);
  CheckRawOfstream(norm, lexed.tokens, &findings);
  CheckIncludeGuard(norm, lexed, &findings);
  CheckHeaderSelfContainment(norm, lexed, &findings);

  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return lexed.LineAllowed(f.rule, f.line);
                                }),
                 findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<std::string> CollectStatusFunctionNames(const LexedSource& lexed) {
  const std::vector<Token>& tokens = lexed.tokens;
  std::vector<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsIdent()) continue;
    size_t name_idx = 0;
    if (tokens[i].text == "Status" && i + 2 < tokens.size() &&
        tokens[i + 1].IsIdent() && tokens[i + 2].text == "(") {
      name_idx = i + 1;
    } else if (tokens[i].text == "Result" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "<") {
      // Skip the template argument list; ">>" closes two levels.
      int depth = 0;
      size_t j = i + 1;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        if (tokens[j].text == ">>") depth -= 2;
        if (depth <= 0 && j > i + 1) break;
      }
      if (j + 2 < tokens.size() && tokens[j + 1].IsIdent() &&
          tokens[j + 2].text == "(") {
        name_idx = j + 1;
      }
    }
    if (name_idx != 0) names.push_back(tokens[name_idx].text);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace analyze
}  // namespace roadpart
