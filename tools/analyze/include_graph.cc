#include "tools/analyze/include_graph.h"

#include <algorithm>
#include <tuple>

#include "common/string_util.h"

namespace roadpart {
namespace analyze {

namespace {

// Finds every elementary cycle reachable along the sorted adjacency and
// returns one canonical representative per distinct cycle: the rotation
// starting at the lexicographically smallest member. DFS with an explicit
// stack path; deterministic because files and edges are iterated sorted.
std::vector<std::vector<std::string>> FindCycles(
    const std::map<std::string, std::vector<std::string>>& adj) {
  std::vector<std::vector<std::string>> cycles;
  std::set<std::string> canonical_seen;
  std::set<std::string> done;  // fully explored roots

  for (const auto& [start, unused] : adj) {
    (void)unused;
    // Iterative DFS from `start`; `path` is the current chain.
    std::vector<std::string> path;
    std::set<std::string> on_path;
    std::vector<std::pair<std::string, size_t>> stack;  // node, next edge idx
    stack.push_back({start, 0});
    path.push_back(start);
    on_path.insert(start);
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      auto it = adj.find(node);
      if (it == adj.end() || edge_idx >= it->second.size()) {
        done.insert(node);
        on_path.erase(node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string& next = it->second[edge_idx++];
      if (on_path.count(next) != 0) {
        // Extract the cycle next -> ... -> node -> next.
        auto from = std::find(path.begin(), path.end(), next);
        std::vector<std::string> cycle(from, path.end());
        // Canonicalize: rotate so the smallest element leads.
        auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        std::string key;
        for (const std::string& p : cycle) key += p + "\n";
        if (canonical_seen.insert(key).second) cycles.push_back(cycle);
        continue;
      }
      if (done.count(next) != 0) continue;
      stack.push_back({next, 0});
      path.push_back(next);
      on_path.insert(next);
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

}  // namespace

Result<LayerSpec> ParseLayerSpec(const std::string& text) {
  LayerSpec spec;
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(
          StrPrintf("layers.txt line %d: expected 'module: deps...'",
                    line_no));
    }
    std::string module(Trim(trimmed.substr(0, colon)));
    if (module.empty()) {
      return Status::InvalidArgument(
          StrPrintf("layers.txt line %d: empty module name", line_no));
    }
    if (spec.Declared(module)) {
      return Status::InvalidArgument(StrPrintf(
          "layers.txt line %d: module '%s' declared twice", line_no,
          module.c_str()));
    }
    std::string deps_text(trimmed.substr(colon + 1));
    std::set<std::string> deps;
    bool wildcard = false;
    for (const std::string& d : Split(deps_text, ' ')) {
      std::string dep(Trim(d));
      if (dep.empty()) continue;
      if (dep == "*") {
        wildcard = true;
      } else {
        deps.insert(dep);
      }
    }
    if (wildcard) {
      if (!deps.empty()) {
        return Status::InvalidArgument(StrPrintf(
            "layers.txt line %d: '*' cannot be combined with named deps",
            line_no));
      }
      spec.wildcard.insert(module);
    } else {
      spec.allowed[module] = std::move(deps);
    }
  }
  // The declared graph itself must be a DAG (wildcard modules sit on top
  // and are excluded: they may see everything).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [module, deps] : spec.allowed) {
    for (const std::string& d : deps) {
      if (d != module) adj[module].push_back(d);
    }
    std::sort(adj[module].begin(), adj[module].end());
  }
  std::vector<std::vector<std::string>> cycles = FindCycles(adj);
  if (!cycles.empty()) {
    std::string chain;
    for (const std::string& m : cycles[0]) chain += m + " -> ";
    chain += cycles[0][0];
    return Status::InvalidArgument("layers.txt declares a cyclic layering: " +
                                   chain);
  }
  return spec;
}

std::string ModuleOf(const std::string& rel_path) {
  std::string path = rel_path;
  std::replace(path.begin(), path.end(), '\\', '/');
  std::vector<std::string> parts = Split(path, '/');
  if (parts.empty()) return "";
  if (parts[0] == "src" && parts.size() >= 3) return parts[1];
  return parts[0] == "src" ? "src" : parts[0];
}

std::vector<Finding> CheckIncludeGraph(
    const std::vector<IncludeGraphFile>& files, const LayerSpec* layers) {
  std::vector<Finding> findings;
  std::set<std::string> undeclared_reported;

  auto report_undeclared = [&](const std::string& module,
                               const std::string& file, int line) {
    if (!undeclared_reported.insert(module).second) return;
    findings.push_back(
        {file, line, "undeclared-module", Severity::kError,
         "module '" + module +
             "' is not declared in the layering DAG; add it to "
             "tools/analyze/layers.txt with its allowed dependencies",
         false});
  };

  std::map<std::string, std::vector<std::string>> adj;
  // (from, to) -> line of the include, for anchoring cycle findings.
  std::map<std::pair<std::string, std::string>, int> edge_line;

  for (const IncludeGraphFile& f : files) {
    const std::string from_module = ModuleOf(f.path);
    for (const IncludeGraphFile::Edge& e : f.cc_includes) {
      findings.push_back(
          {f.path, e.line, "include-of-cc", Severity::kError,
           "#include of implementation file '" + e.target +
               "'; include the matching header and link the object instead",
           false});
    }
    if (layers != nullptr && !layers->Declared(from_module)) {
      report_undeclared(from_module, f.path, 1);
    }
    for (const IncludeGraphFile::Edge& e : f.edges) {
      adj[f.path].push_back(e.target);
      auto key = std::make_pair(f.path, e.target);
      if (edge_line.count(key) == 0) edge_line[key] = e.line;
      if (layers == nullptr) continue;
      const std::string to_module = ModuleOf(e.target);
      if (!layers->Declared(to_module)) {
        report_undeclared(to_module, f.path, e.line);
      }
      if (layers->Declared(from_module) && layers->Declared(to_module) &&
          !layers->Allows(from_module, to_module)) {
        findings.push_back(
            {f.path, e.line, "layering-violation", Severity::kError,
             "module '" + from_module + "' may not include '" + e.target +
                 "' (module '" + to_module +
                 "'); allowed dependencies are declared in "
                 "tools/analyze/layers.txt",
             false});
      }
    }
  }
  for (auto& [from, targets] : adj) {
    (void)from;
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }

  for (const std::vector<std::string>& cycle : FindCycles(adj)) {
    std::string chain;
    for (const std::string& p : cycle) chain += p + " -> ";
    chain += cycle[0];
    const std::string& anchor = cycle[0];
    const std::string& next = cycle.size() > 1 ? cycle[1] : cycle[0];
    auto it = edge_line.find(std::make_pair(anchor, next));
    findings.push_back({anchor, it != edge_line.end() ? it->second : 1,
                        "include-cycle", Severity::kError,
                        "project include cycle: " + chain, false});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace analyze
}  // namespace roadpart
