#ifndef ROADPART_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
#define ROADPART_TOOLS_ANALYZE_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "tools/analyze/rules.h"

namespace roadpart {
namespace analyze {

/// The declared layering DAG, parsed from tools/analyze/layers.txt.
///
/// File format, one module per line:
///   module: dep1 dep2 ...     # may depend on itself implicitly
///   module: *                 # unconstrained (umbrella/frontend layers)
/// Blank lines and `#` comments are ignored.
struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;
  std::set<std::string> wildcard;

  bool Declared(const std::string& module) const {
    return wildcard.count(module) != 0 || allowed.count(module) != 0;
  }
  /// True when a file in `from` may include a header of `to`.
  bool Allows(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    if (wildcard.count(from) != 0) return true;
    auto it = allowed.find(from);
    return it != allowed.end() && it->second.count(to) != 0;
  }
};

Result<LayerSpec> ParseLayerSpec(const std::string& text);

/// Maps a repo-relative path to its module: "src/<m>/..." -> "<m>",
/// "tools/..." -> "tools", likewise tests/bench/examples; "src/x.h" ->
/// "src"; anything else -> its first path component.
std::string ModuleOf(const std::string& rel_path);

/// One scanned file's project-include edges, ready for graph checks.
/// Paths are repo-relative with '/' separators; `edges` holds includes that
/// resolved to project files, `cc_includes` any include (resolved or not)
/// whose target ends in ".cc".
struct IncludeGraphFile {
  std::string path;
  struct Edge {
    std::string target;
    int line = 0;
  };
  std::vector<Edge> edges;
  std::vector<Edge> cc_includes;
};

/// Runs the include-graph rules: include-of-cc, layering-violation,
/// undeclared-module (skipped when `layers` is null), and include-cycle.
/// Results are sorted by (file, line, rule); cycle findings are anchored at
/// the lexicographically smallest file of each distinct cycle.
std::vector<Finding> CheckIncludeGraph(
    const std::vector<IncludeGraphFile>& files, const LayerSpec* layers);

}  // namespace analyze
}  // namespace roadpart

#endif  // ROADPART_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
