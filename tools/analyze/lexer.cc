#include "tools/analyze/lexer.h"

#include <cctype>
#include <cstring>

namespace roadpart {
namespace analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Encoding prefixes that may precede a string or character literal. A raw
// string adds 'R' as the final prefix character.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}
bool IsTextPrefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

// Character cursor over the source with two reading modes:
//   - logical: backslash-newline splices are invisible (standard
//     translation phase 2); this is the default everywhere;
//   - physical: raw string literal bodies, where a backslash before a
//     newline is literal text.
// Physical line numbers are maintained in both modes.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  bool AtEnd() {
    SkipSplices();
    return i_ >= s_.size();
  }
  bool AtPhysicalEnd() const { return i_ >= s_.size(); }

  // Logical lookahead: the k-th upcoming character with splices skipped.
  char Peek(size_t k = 0) const {
    size_t i = i_;
    while (i < s_.size()) {
      i = SplicedFrom(i);
      if (i >= s_.size()) break;
      if (k == 0) return s_[i];
      --k;
      ++i;
    }
    return '\0';
  }

  // Consumes one logical character and returns it.
  char Get() {
    SkipSplices();
    if (i_ >= s_.size()) return '\0';
    char c = s_[i_++];
    if (c == '\n') ++line_;
    return c;
  }

  char PeekPhysical() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  char GetPhysical() {
    if (i_ >= s_.size()) return '\0';
    char c = s_[i_++];
    if (c == '\n') ++line_;
    return c;
  }

  int line() const { return line_; }

  // Line number of the next logical character (splices at the cursor would
  // otherwise make `line()` report the line the splice started on).
  int LineOfNext() {
    SkipSplices();
    return line_;
  }

 private:
  // First index at or after `i` that is not the start of a splice.
  size_t SplicedFrom(size_t i) const {
    while (i + 1 < s_.size() && s_[i] == '\\' &&
           (s_[i + 1] == '\n' ||
            (s_[i + 1] == '\r' && i + 2 < s_.size() && s_[i + 2] == '\n'))) {
      i += s_[i + 1] == '\n' ? 2 : 3;
    }
    return i;
  }

  void SkipSplices() {
    size_t j = SplicedFrom(i_);
    for (size_t p = i_; p < j; ++p) {
      if (s_[p] == '\n') ++line_;
    }
    i_ = j;
  }

  const std::string& s_;
  size_t i_ = 0;
  int line_ = 1;
};

const char* const kMultiCharOps[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "==", "!=",
    "<=",  ">=",  "&&",  "||",
};

// Registers a suppression comment's rules over [first_line, last_line + 1].
void ParseSuppression(const std::string& comment, int first_line,
                      int last_line, LexedSource* out) {
  static const char kMarker[] = "rp-analyze:";
  size_t at = comment.find(kMarker);
  if (at == std::string::npos) return;
  size_t open = comment.find("allow(", at);
  if (open == std::string::npos) return;
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::string rule;
  auto flush = [&]() {
    if (rule.empty()) return;
    for (int l = first_line; l <= last_line + 1; ++l) {
      out->allowed_lines[rule].insert(l);
    }
    rule.clear();
  };
  for (char c : list) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      rule.push_back(c);
    }
  }
  flush();
}

}  // namespace

bool LexedSource::LineAllowed(const std::string& rule, int line) const {
  auto it = allowed_lines.find(rule);
  return it != allowed_lines.end() && it->second.count(line) != 0;
}

LexedSource Lex(const std::string& source) {
  LexedSource out;
  Scanner sc(source);

  // Preprocessor state for the current logical line.
  enum class Pp { kNone, kHash, kKeyword, kIncludePath, kRest };
  Pp pp = Pp::kNone;
  std::string pp_keyword;

  // Guard detection: directive (keyword, first identifier argument) pairs
  // plus the token-stream offset where each directive started.
  struct Directive {
    std::string keyword;
    std::string arg;
    size_t token_offset;
  };
  std::vector<Directive> directives;

  bool at_line_start = true;

  auto emit = [&](std::string text, int line, TokenKind kind) {
    out.tokens.push_back(Token{std::move(text), line, kind});
    at_line_start = false;
  };

  // Records the first identifier after a directive keyword (#ifndef NAME,
  // #define NAME, #pragma once).
  auto note_directive_arg = [&](const std::string& ident) {
    if (!directives.empty() && directives.back().arg.empty()) {
      directives.back().arg = ident;
      if (directives.back().keyword == "pragma" && ident == "once") {
        out.has_pragma_once = true;
      }
    }
  };

  while (!sc.AtEnd()) {
    char c = sc.Peek();

    if (c == '\n') {
      sc.Get();
      at_line_start = true;
      pp = Pp::kNone;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      sc.Get();
      continue;
    }

    // Comments. A // comment extends across splices; both kinds record
    // their text for suppression parsing and emit nothing.
    if (c == '/' && sc.Peek(1) == '/') {
      int first_line = sc.LineOfNext();
      std::string text;
      while (!sc.AtEnd() && sc.Peek() != '\n') text.push_back(sc.Get());
      ParseSuppression(text, first_line, sc.line(), &out);
      continue;
    }
    if (c == '/' && sc.Peek(1) == '*') {
      int first_line = sc.LineOfNext();
      sc.Get();
      sc.Get();
      std::string text;
      while (!sc.AtEnd() && !(sc.Peek() == '*' && sc.Peek(1) == '/')) {
        text.push_back(sc.Get());
      }
      int last_line = sc.line();
      if (!sc.AtEnd()) {
        sc.Get();
        sc.Get();
      }
      ParseSuppression(text, first_line, last_line, &out);
      continue;
    }

    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      int line = sc.LineOfNext();
      sc.Get();
      emit("#", line, TokenKind::kPunct);
      pp = Pp::kHash;
      pp_keyword.clear();
      continue;
    }

    // Identifier — possibly a literal prefix.
    if (IsIdentStart(c)) {
      int line = sc.LineOfNext();
      std::string ident;
      ident.push_back(sc.Get());
      while (!sc.AtEnd() && IsIdentChar(sc.Peek())) ident.push_back(sc.Get());

      if (sc.Peek() == '"' && IsRawStringPrefix(ident)) {
        // Raw string literal: R"delim( ... )delim". The body is physical
        // text — splices inside are literal. Contents are discarded.
        sc.Get();  // opening quote
        std::string delim;
        while (!sc.AtPhysicalEnd() && sc.PeekPhysical() != '(') {
          delim.push_back(sc.GetPhysical());
        }
        if (!sc.AtPhysicalEnd()) sc.GetPhysical();  // '('
        const std::string closer = ")" + delim + "\"";
        std::string window;
        while (!sc.AtPhysicalEnd()) {
          window.push_back(sc.GetPhysical());
          if (window.size() >= closer.size() &&
              window.compare(window.size() - closer.size(), closer.size(),
                             closer) == 0) {
            break;
          }
          if (window.size() > closer.size()) {
            window.erase(0, window.size() - closer.size());
          }
        }
        emit("\"\"", line, TokenKind::kString);
        continue;
      }
      if ((sc.Peek() == '"' || sc.Peek() == '\'') && IsTextPrefix(ident)) {
        // Encoding-prefixed ordinary literal: fall through to the literal
        // scanner below by not emitting the prefix as an identifier.
        c = sc.Peek();
      } else {
        emit(ident, line, TokenKind::kIdent);
        if (pp == Pp::kHash) {
          pp_keyword = ident;
          directives.push_back({ident, "", out.tokens.size() - 1});
          pp = pp_keyword == "include" ? Pp::kIncludePath : Pp::kKeyword;
        } else if (pp == Pp::kKeyword) {
          note_directive_arg(ident);
          pp = Pp::kRest;
        } else if (pp == Pp::kIncludePath) {
          pp = Pp::kRest;  // `#include MACRO` — not resolvable, not a path
        }
        continue;
      }
    }

    // String / character literal (contents blanked).
    if (c == '"' || c == '\'') {
      int line = sc.LineOfNext();
      char quote = sc.Get();
      std::string content;
      while (!sc.AtEnd() && sc.Peek() != quote) {
        char d = sc.Get();
        if (d == '\\' && !sc.AtEnd()) {
          sc.Get();  // escaped character (splices already invisible)
        } else {
          content.push_back(d);
        }
      }
      if (!sc.AtEnd()) sc.Get();  // closing quote
      if (pp == Pp::kIncludePath && quote == '"') {
        out.includes.push_back({content, line, /*angled=*/false});
        pp = Pp::kRest;
      }
      emit(quote == '"' ? "\"\"" : "''", line,
           quote == '"' ? TokenKind::kString : TokenKind::kChar);
      continue;
    }

    // Angled include path: only in include-path position, so `a < b` in
    // code is never misread.
    if (c == '<' && pp == Pp::kIncludePath) {
      int line = sc.LineOfNext();
      sc.Get();
      std::string content;
      while (!sc.AtEnd() && sc.Peek() != '>' && sc.Peek() != '\n') {
        content.push_back(sc.Get());
      }
      if (sc.Peek() == '>') sc.Get();
      out.includes.push_back({content, line, /*angled=*/true});
      emit("\"\"", line, TokenKind::kString);
      pp = Pp::kRest;
      continue;
    }

    // Number (with C++14 digit separators).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int line = sc.LineOfNext();
      std::string num;
      num.push_back(sc.Get());
      while (!sc.AtEnd()) {
        char d = sc.Peek();
        if (IsIdentChar(d) || d == '.') {
          num.push_back(sc.Get());
        } else if (d == '\'' && IsIdentChar(sc.Peek(1))) {
          num.push_back(sc.Get());
        } else {
          break;
        }
      }
      emit(num, line, TokenKind::kNumber);
      continue;
    }

    // Multi-character operators, longest match first.
    {
      int line = sc.LineOfNext();
      bool matched = false;
      for (const char* op : kMultiCharOps) {
        size_t len = std::strlen(op);
        bool eq = true;
        for (size_t k = 0; k < len; ++k) {
          if (sc.Peek(k) != op[k]) {
            eq = false;
            break;
          }
        }
        if (eq) {
          for (size_t k = 0; k < len; ++k) sc.Get();
          emit(op, line, TokenKind::kPunct);
          matched = true;
          break;
        }
      }
      if (matched) continue;
      emit(std::string(1, sc.Get()), line, TokenKind::kPunct);
    }
  }

  // Classic include guard: the first two directives are `#ifndef NAME`
  // `#define NAME` and no code token precedes them.
  if (directives.size() >= 2 && directives[0].keyword == "ifndef" &&
      directives[1].keyword == "define" && !directives[0].arg.empty() &&
      directives[0].arg == directives[1].arg &&
      directives[0].token_offset == 1) {
    out.has_include_guard = true;
    out.guard_name = directives[0].arg;
  }
  return out;
}

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_closer;   // ")delim\"" for the active raw string
  std::string raw_window;   // trailing chars compared against raw_closer
  auto blank = [&](size_t i) {
    if (out[i] != '\n') out[i] = ' ';
  };
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string? Look back over the contiguous identifier prefix.
          size_t p = i;
          while (p > 0 && IsIdentChar(source[p - 1])) --p;
          std::string prefix = source.substr(p, i - p);
          if (IsRawStringPrefix(prefix)) {
            size_t open = source.find('(', i + 1);
            std::string delim = open == std::string::npos
                                    ? std::string()
                                    : source.substr(i + 1, open - i - 1);
            // Blank the delimiter after the opening quote.
            for (size_t k = i + 1; k < source.size() && k <= open; ++k) {
              blank(k);
            }
            if (open != std::string::npos) i = open;
            raw_closer = ")" + delim + "\"";
            raw_window.clear();
            state = State::kRawString;
          } else {
            state = State::kString;  // the quote itself stays
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          // A backslash immediately before the newline splices the next
          // physical line into the comment.
          size_t b = i;
          while (b > 0 && source[b - 1] == '\r') --b;
          if (b > 0 && source[b - 1] == '\\') {
            // stay in the comment
          } else {
            state = State::kCode;
          }
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < source.size()) {
          out[i] = ' ';
          if (source[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
      case State::kRawString: {
        raw_window.push_back(c);
        if (raw_window.size() > raw_closer.size()) {
          raw_window.erase(0, raw_window.size() - raw_closer.size());
        }
        if (raw_window == raw_closer) {
          // Keep the final quote; blank the delimiter before it.
          for (size_t k = i + 1 - raw_closer.size(); k < i; ++k) blank(k);
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace analyze
}  // namespace roadpart
