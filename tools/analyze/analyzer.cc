#include "tools/analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/string_util.h"

namespace roadpart {
namespace analyze {

namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return std::move(buffer).str();
}

std::string NormalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Baseline entries: (rule, file) pairs plus their original source line for
// stale reporting.
struct Baseline {
  std::set<std::pair<std::string, std::string>> entries;
};

Result<Baseline> LoadBaseline(const std::string& path) {
  Baseline baseline;
  if (path.empty()) return baseline;
  RP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    for (const std::string& f : Split(std::string(line), ' ')) {
      std::string t(Trim(f));
      if (!t.empty()) fields.push_back(std::move(t));
      if (fields.size() == 2) break;
    }
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StrPrintf("baseline %s line %d: expected 'rule file [reason]'",
                    path.c_str(), line_no));
    }
    baseline.entries.insert({fields[0], NormalizeSlashes(fields[1])});
  }
  return baseline;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> AnalyzeSource(
    const std::string& path, const std::string& source,
    const std::vector<std::string>& status_function_names) {
  FileCheckOptions options;
  options.status_function_names = status_function_names;
  return CheckFile(path, Lex(source), options);
}

Result<AnalyzeReport> AnalyzeTree(const std::string& repo_root,
                                  const std::vector<std::string>& roots,
                                  const AnalyzeOptions& options) {
  std::error_code ec;
  fs::path root_abs = fs::absolute(fs::path(repo_root), ec);
  if (ec) return Status::IOError("cannot resolve root " + repo_root);

  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    fs::path p(r);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end_it;
           !ec && it != end_it; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        fs::path f = it->path();
        if (f.extension() == ".cc" || f.extension() == ".h") {
          files.push_back(f);
        }
      }
      if (ec) return Status::IOError("cannot walk " + r);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      return Status::IOError("no such file or directory: " + r);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  auto relative_name = [&](const fs::path& f) {
    std::error_code rel_ec;
    fs::path rel = fs::relative(fs::absolute(f, rel_ec), root_abs, rel_ec);
    std::string name = rel_ec || rel.empty() || *rel.begin() == ".."
                           ? f.generic_string()
                           : rel.generic_string();
    return NormalizeSlashes(name);
  };

  // Pass 1: lex everything once; the Status/Result name set comes from
  // every header in scope.
  std::map<std::string, LexedSource> lexed;  // repo-relative path -> lexed
  std::vector<std::string> rel_paths;
  std::vector<std::string> status_fns;
  for (const fs::path& f : files) {
    RP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(f.string()));
    std::string rel = relative_name(f);
    rel_paths.push_back(rel);
    auto [it, inserted] = lexed.emplace(rel, Lex(text));
    if (inserted && f.extension() == ".h") {
      std::vector<std::string> names = CollectStatusFunctionNames(it->second);
      status_fns.insert(status_fns.end(), names.begin(), names.end());
    }
  }
  std::sort(status_fns.begin(), status_fns.end());
  status_fns.erase(std::unique(status_fns.begin(), status_fns.end()),
                   status_fns.end());

  // Pass 2: per-file token rules.
  FileCheckOptions file_options;
  file_options.status_function_names = status_fns;
  AnalyzeReport report;
  for (const std::string& rel : rel_paths) {
    std::vector<Finding> file_findings =
        CheckFile(rel, lexed.at(rel), file_options);
    report.findings.insert(report.findings.end(), file_findings.begin(),
                           file_findings.end());
  }

  // Pass 3: include graph. Quoted includes are resolved against the
  // including file's directory, then src/, the repo root, and tests/ (the
  // include dirs the build system exports).
  if (options.include_graph) {
    LayerSpec layers;
    bool have_layers = false;
    if (!options.layers_file.empty()) {
      RP_ASSIGN_OR_RETURN(std::string text,
                          ReadFileToString(options.layers_file));
      RP_ASSIGN_OR_RETURN(layers, ParseLayerSpec(text));
      have_layers = true;
    }
    std::vector<IncludeGraphFile> graph_files;
    for (const std::string& rel : rel_paths) {
      IncludeGraphFile gf;
      gf.path = rel;
      std::string dir = fs::path(rel).parent_path().generic_string();
      for (const IncludeDirective& inc : lexed.at(rel).includes) {
        if (inc.angled) continue;  // system/external headers
        if (EndsWith(inc.target, ".cc")) {
          gf.cc_includes.push_back({inc.target, inc.line});
          continue;
        }
        const std::string candidates[] = {
            dir.empty() ? inc.target : dir + "/" + inc.target,
            "src/" + inc.target,
            inc.target,
            "tests/" + inc.target,
        };
        for (const std::string& cand : candidates) {
          fs::path norm = fs::path(cand).lexically_normal();
          std::string norm_str = norm.generic_string();
          if (norm_str.empty() || norm_str.compare(0, 2, "..") == 0) continue;
          if (!fs::is_regular_file(root_abs / norm, ec)) continue;
          gf.edges.push_back({NormalizeSlashes(norm_str), inc.line});
          break;
        }
      }
      graph_files.push_back(std::move(gf));
    }
    std::vector<Finding> graph_findings =
        CheckIncludeGraph(graph_files, have_layers ? &layers : nullptr);
    // Inline suppressions apply to include-graph findings too.
    graph_findings.erase(
        std::remove_if(graph_findings.begin(), graph_findings.end(),
                       [&](const Finding& f) {
                         auto it = lexed.find(f.file);
                         return it != lexed.end() &&
                                it->second.LineAllowed(f.rule, f.line);
                       }),
        graph_findings.end());
    report.findings.insert(report.findings.end(), graph_findings.begin(),
                           graph_findings.end());
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  // Baseline pass: known findings are annotated, not silenced.
  RP_ASSIGN_OR_RETURN(Baseline baseline,
                      LoadBaseline(options.baseline_file));
  std::set<std::pair<std::string, std::string>> used;
  for (Finding& f : report.findings) {
    auto key = std::make_pair(f.rule, f.file);
    if (baseline.entries.count(key) != 0) {
      f.baselined = true;
      used.insert(key);
      ++report.baselined_count;
    } else {
      ++report.new_count;
    }
  }
  for (const auto& [rule, file] : baseline.entries) {
    if (used.count({rule, file}) == 0) {
      report.stale_baseline.push_back(rule + " " + file);
    }
  }
  std::sort(report.stale_baseline.begin(), report.stale_baseline.end());
  return report;
}

std::string FormatText(const AnalyzeReport& report) {
  std::string out;
  for (const Finding& f : report.findings) {
    out += f.ToString();
    if (f.baselined) out += " (baselined)";
    out += "\n";
  }
  for (const std::string& stale : report.stale_baseline) {
    out += "stale baseline entry (no longer fires): " + stale + "\n";
  }
  out += StrPrintf(
      "rp_analyze: %zu finding(s): %d new, %d baselined, %zu stale baseline "
      "entr%s\n",
      report.findings.size(), report.new_count, report.baselined_count,
      report.stale_baseline.size(),
      report.stale_baseline.size() == 1 ? "y" : "ies");
  return out;
}

std::string FormatJson(const AnalyzeReport& report) {
  std::string out = "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : report.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrPrintf(
        "    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
        "\"severity\": \"%s\", \"message\": \"%s\", \"baselined\": %s}",
        JsonEscape(f.file).c_str(), f.line, JsonEscape(f.rule).c_str(),
        SeverityName(f.severity), JsonEscape(f.message).c_str(),
        f.baselined ? "true" : "false");
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"stale_baseline\": [";
  first = true;
  for (const std::string& stale : report.stale_baseline) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(stale) + "\"";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += StrPrintf(
      "  \"summary\": {\"total\": %zu, \"new\": %d, \"baselined\": %d, "
      "\"stale_baseline\": %zu}\n}\n",
      report.findings.size(), report.new_count, report.baselined_count,
      report.stale_baseline.size());
  return out;
}

}  // namespace analyze
}  // namespace roadpart
