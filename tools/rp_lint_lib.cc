#include "tools/rp_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace roadpart {
namespace lint {

namespace {

// The banned spellings are assembled from adjacent string literals so that
// this file itself (which the linter scans) never contains them verbatim in
// code position; StripCommentsAndStrings removes them anyway, but belt and
// braces costs nothing here.
const char kRuleNondeterminism[] = "banned-nondeterminism";
const char kRulePrint[] = "print-in-library";
const char kRuleDiscardedStatus[] = "discarded-status";
const char kRuleParallelMutation[] = "parallelfor-shared-mutation";
const char kRuleUncheckedEigen[] = "unchecked-eigen-convergence";
const char kRuleRawOfstream[] = "raw-ofstream-write";

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> Tokenize(const std::string& text) {
  static const char* kMultiChar[] = {
      "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
      "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "==", "!=",
      "<=",  ">=",  "&&",  "||",
  };
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      out.push_back({text.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < text.size() &&
             (IsIdentChar(text[j]) || text[j] == '.' || text[j] == '\'')) {
        ++j;
      }
      out.push_back({text.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* op : kMultiChar) {
      size_t len = std::char_traits<char>::length(op);
      if (text.compare(i, len, op) == 0) {
        out.push_back({op, line, false});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({std::string(1, c), line, false});
    ++i;
  }
  return out;
}

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  return path.size() >= prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0;
}

bool PathIsOneOf(const std::string& path,
                 std::initializer_list<const char*> candidates) {
  return std::any_of(candidates.begin(), candidates.end(),
                     [&](const char* c) { return path == c; });
}

// Index of the token matching the opener at `open` ('(' <-> ')',
// '{' <-> '}', '[' <-> ']'), or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  const std::string& o = tokens[open].text;
  std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == o) ++depth;
    if (tokens[i].text == close && --depth == 0) return i;
  }
  return tokens.size();
}

// --- Rule: banned nondeterminism -------------------------------------------

void CheckNondeterminism(const std::string& path,
                         const std::vector<Token>& tokens,
                         std::vector<LintFinding>* findings) {
  if (PathIsOneOf(path, {"src/common/rng.h", "src/common/rng.cc"})) return;
  const std::string fn_rand = std::string("ra") + "nd";
  const std::string fn_srand = std::string("sra") + "nd";
  const std::string fn_device = std::string("random_") + "device";
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    const std::string& t = tokens[i].text;
    bool call = i + 1 < tokens.size() && tokens[i + 1].text == "(";
    if ((t == fn_rand || t == fn_srand) && call) {
      findings->push_back({path, tokens[i].line, kRuleNondeterminism,
                           t + "() is banned; take an explicit roadpart::Rng"});
    } else if (t == fn_device) {
      findings->push_back(
          {path, tokens[i].line, kRuleNondeterminism,
           "std::" + fn_device +
               " is banned outside src/common/rng; seed an Rng instead"});
    } else if (t == "time" && call && i + 3 < tokens.size() &&
               (tokens[i + 2].text == "nullptr" || tokens[i + 2].text == "NULL" ||
                tokens[i + 2].text == "0") &&
               tokens[i + 3].text == ")") {
      findings->push_back({path, tokens[i].line, kRuleNondeterminism,
                           "wall-clock seeding (time(" + tokens[i + 2].text +
                               ")) is banned; use a fixed or flag-provided "
                               "seed"});
    }
  }
}

// --- Rule: stdout/stderr prints in library code -----------------------------

void CheckLibraryPrints(const std::string& path,
                        const std::vector<Token>& tokens,
                        std::vector<LintFinding>* findings) {
  if (!PathHasPrefix(path, "src/")) return;
  // The logging/contract sinks themselves must write somewhere.
  if (PathIsOneOf(path, {"src/common/logging.cc", "src/common/status.cc",
                         "src/common/check.cc"})) {
    return;
  }
  static const std::set<std::string> kPrintFns = {"printf", "fprintf", "puts",
                                                  "fputs", "vprintf",
                                                  "vfprintf"};
  static const std::set<std::string> kStreams = {"cout", "cerr", "clog"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    const std::string& t = tokens[i].text;
    if (kPrintFns.count(t) != 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      findings->push_back({path, tokens[i].line, kRulePrint,
                           t + "() in library code; use RP_LOG instead"});
    } else if (kStreams.count(t) != 0 && i > 0 && tokens[i - 1].text == "::") {
      findings->push_back({path, tokens[i].line, kRulePrint,
                           "std::" + t +
                               " in library code; use RP_LOG instead"});
    }
  }
}

// --- Rule: discarded Status/Result calls ------------------------------------

void CheckDiscardedStatus(const std::string& path,
                          const std::vector<Token>& tokens,
                          const std::set<std::string>& status_fns,
                          std::vector<LintFinding>* findings) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident || status_fns.count(tokens[i].text) == 0) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // Walk back over a qualification / member chain (a.b->Ns::Name) to find
    // what precedes the whole statement candidate.
    size_t j = i;
    while (j >= 2 &&
           (tokens[j - 1].text == "." || tokens[j - 1].text == "->" ||
            tokens[j - 1].text == "::") &&
           tokens[j - 2].is_ident) {
      j -= 2;
    }
    if (j > 0) {
      const std::string& prev = tokens[j - 1].text;
      if (prev != ";" && prev != "{" && prev != "}") continue;
    }
    size_t close = MatchingClose(tokens, i + 1);
    if (close + 1 >= tokens.size() || tokens[close + 1].text != ";") continue;
    findings->push_back(
        {path, tokens[i].line, kRuleDiscardedStatus,
         "result of Status/Result-returning call " + tokens[i].text +
             "() is discarded; handle it, RP_CHECK_OK it, or cast to void"});
  }
}

// --- Rule: shared mutation inside ParallelFor lambdas -----------------------

// Identifiers that look like declaration prefixes but are not type names.
const std::set<std::string>& NonTypeKeywords() {
  static const std::set<std::string> kWords = {
      "break",  "case",     "class",  "const",  "constexpr", "continue",
      "delete", "do",       "else",   "enum",   "goto",      "new",
      "return", "sizeof",   "static", "struct", "operator",  "typename",
      "using",  "namespace"};
  return kWords;
}

// Collects names declared inside the token range [begin, end): lambda
// parameters and body-local variables, recognized by `Type name`,
// `Type& name`, `Type* name` and `...> name` shapes.
std::set<std::string> CollectLocalNames(const std::vector<Token>& tokens,
                                        size_t begin, size_t end) {
  std::set<std::string> locals;
  for (size_t i = begin; i < end; ++i) {
    if (!tokens[i].is_ident || NonTypeKeywords().count(tokens[i].text) != 0) {
      continue;
    }
    if (i == 0) continue;
    const Token& p = tokens[i - 1];
    bool declared = false;
    if (p.is_ident && NonTypeKeywords().count(p.text) == 0) {
      // `Type name` (builtin or user type).
      declared = true;
    } else if (p.text == ">") {
      // `std::vector<int> name`.
      declared = true;
    } else if ((p.text == "&" || p.text == "*") && i >= 2) {
      const Token& pp = tokens[i - 2];
      declared = (pp.is_ident && NonTypeKeywords().count(pp.text) == 0) ||
                 pp.text == ">";
    }
    if (declared) locals.insert(tokens[i].text);
  }
  return locals;
}

// Walks a member chain ending at index `last` (e.g. a.b.c with last on c)
// back to its root identifier index, or SIZE_MAX when the chain does not
// start at a plain identifier (indexed/call roots are treated as safe).
size_t ChainRoot(const std::vector<Token>& tokens, size_t last) {
  size_t j = last;
  while (j >= 2 &&
         (tokens[j - 1].text == "." || tokens[j - 1].text == "->") ) {
    if (!tokens[j - 2].is_ident) return static_cast<size_t>(-1);
    j -= 2;
  }
  return j;
}

void CheckLambdaBody(const std::string& path, const std::vector<Token>& tokens,
                     size_t body_begin, size_t body_end,
                     const std::set<std::string>& locals,
                     std::vector<LintFinding>* findings) {
  static const std::set<std::string> kCompound = {
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "++",
      "--"};
  static const std::set<std::string> kGrowers = {"push_back", "emplace_back",
                                                 "insert", "emplace"};
  for (size_t i = body_begin; i < body_end; ++i) {
    const Token& t = tokens[i];
    if (kCompound.count(t.text) != 0) {
      // Identify the assignment target: token before the operator (post
      // forms) or after it (pre-increment).
      size_t target = static_cast<size_t>(-1);
      if (i > body_begin && tokens[i - 1].is_ident) {
        target = i - 1;
      } else if ((t.text == "++" || t.text == "--") && i + 1 < body_end &&
                 tokens[i + 1].is_ident) {
        target = i + 1;
      }
      if (target == static_cast<size_t>(-1)) continue;  // x[i] += / (..) +=
      size_t root = ChainRoot(tokens, target);
      if (root == static_cast<size_t>(-1)) continue;
      const std::string& name = tokens[root].text;
      if (locals.count(name) != 0) continue;
      findings->push_back(
          {path, t.line, kRuleParallelMutation,
           "lambda passed to ParallelFor mutates captured '" + name +
               "' without per-index isolation; use ParallelBlockedSum/"
               "ParallelBlockedReduce for accumulation"});
    } else if (t.is_ident && kGrowers.count(t.text) != 0 && i >= 2 &&
               (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
               i + 1 < body_end && tokens[i + 1].text == "(") {
      size_t root = ChainRoot(tokens, i);
      if (root == static_cast<size_t>(-1)) continue;
      const std::string& name = tokens[root].text;
      if (locals.count(name) != 0) continue;
      findings->push_back(
          {path, t.line, kRuleParallelMutation,
           "lambda passed to ParallelFor grows captured container '" + name +
               "'; containers are not thread-safe — collect per-block and "
               "merge in deterministic order"});
    }
  }
}

void CheckParallelForMutation(const std::string& path,
                              const std::vector<Token>& tokens,
                              std::vector<LintFinding>* findings) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident ||
        (tokens[i].text != "ParallelFor" &&
         tokens[i].text != "ParallelForTasks" &&
         tokens[i].text != "ParallelForBlocked")) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    size_t call_close = MatchingClose(tokens, i + 1);
    if (call_close == tokens.size()) continue;
    // Find the lambda argument: first '[' inside the call.
    size_t lb = i + 2;
    while (lb < call_close && tokens[lb].text != "[") ++lb;
    if (lb >= call_close) continue;
    size_t cap_close = MatchingClose(tokens, lb);
    if (cap_close >= call_close) continue;
    bool by_ref = false;
    for (size_t c = lb + 1; c < cap_close; ++c) {
      if (tokens[c].text == "&") by_ref = true;
    }
    if (!by_ref) continue;
    // Parameter list, then body braces.
    size_t params_open = cap_close + 1;
    if (params_open >= call_close || tokens[params_open].text != "(") continue;
    size_t params_close = MatchingClose(tokens, params_open);
    if (params_close >= call_close) continue;
    size_t body_open = params_close + 1;
    while (body_open < call_close && tokens[body_open].text != "{") ++body_open;
    if (body_open >= call_close) continue;
    size_t body_close = MatchingClose(tokens, body_open);
    if (body_close > call_close) continue;

    std::set<std::string> locals =
        CollectLocalNames(tokens, params_open + 1, body_close);
    CheckLambdaBody(path, tokens, body_open + 1, body_close, locals, findings);
  }
}

// --- Rule: eigenvector use without a convergence check ----------------------

// A Lanczos basis that did not converge is not an eigenbasis; consuming
// EigenResult.eigenvectors while never looking at `converged` (or at
// `max_residual`) anywhere in the file is how the historical silent-accept
// bug slipped in. The solver internals under src/linalg/ legitimately
// assemble those fields and are exempt.
void CheckUncheckedEigenConvergence(const std::string& path,
                                    const std::vector<Token>& tokens,
                                    std::vector<LintFinding>* findings) {
  if (PathHasPrefix(path, "src/linalg/")) return;
  for (const Token& t : tokens) {
    if (t.is_ident && (t.text == "converged" || t.text == "max_residual")) {
      return;  // the file consults convergence somewhere
    }
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident || tokens[i].text != "eigenvectors") continue;
    if (tokens[i - 1].text != "." && tokens[i - 1].text != "->") continue;
    findings->push_back(
        {path, tokens[i].line, kRuleUncheckedEigen,
         "EigenResult eigenvectors consumed without consulting 'converged' "
         "anywhere in this file; check it (or route through "
         "ExtremeEigenvectors, which runs the fallback ladder)"});
  }
}

// --- Rule: raw file writes in library code ----------------------------------

// Every artifact the library persists must go through AtomicFileWriter /
// WriteArtifact (temp file + fsync + rename + checksum envelope). A raw
// std::ofstream — or fopen in a writable mode — can leave a torn,
// unverifiable file behind on crash or ENOSPC. Only the durable-io layer
// itself may open files for writing.
void CheckRawOfstream(const std::string& path,
                      const std::vector<Token>& tokens,
                      std::vector<LintFinding>* findings) {
  if (!PathHasPrefix(path, "src/")) return;
  if (PathIsOneOf(path,
                  {"src/common/durable_io.cc", "src/common/durable_io.h"})) {
    return;
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    const std::string& t = tokens[i].text;
    if (t == "ofstream" || t == "FileOutputStream") {
      findings->push_back(
          {path, tokens[i].line, kRuleRawOfstream,
           "raw " + t +
               " in library code bypasses the crash-safe write path; use "
               "AtomicFileWriter or WriteArtifact from common/durable_io.h"});
    } else if (t == "fopen" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "(") {
      // fopen for reading is fine (the durable reader wraps it); flag only
      // writable modes. The mode literal is blanked by
      // StripCommentsAndStrings, so inspect call-adjacent source instead:
      // conservatively flag every fopen outside durable_io and let the read
      // path live there.
      findings->push_back(
          {path, tokens[i].line, kRuleRawOfstream,
           "fopen() in library code; route writes through AtomicFileWriter "
           "and reads through ReadFileBytes (common/durable_io.h)"});
    }
  }
}

std::string NormalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  return std::move(buffer).str();
}

}  // namespace

std::string LintFinding::ToString() const {
  return StrPrintf("%s:%d: [%s] %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;  // the quote itself stays
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < source.size()) {
          out[i] = ' ';
          if (source[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> CollectStatusFunctionNames(const std::string& header) {
  std::vector<Token> tokens = Tokenize(StripCommentsAndStrings(header));
  std::vector<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    size_t name_idx = 0;
    if (tokens[i].text == "Status" && i + 2 < tokens.size() &&
        tokens[i + 1].is_ident && tokens[i + 2].text == "(") {
      name_idx = i + 1;
    } else if (tokens[i].text == "Result" && i + 1 < tokens.size() &&
               tokens[i + 1].text == "<") {
      // Skip the template argument list; ">>" closes two levels.
      int depth = 0;
      size_t j = i + 1;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        if (tokens[j].text == ">>") depth -= 2;
        if (depth <= 0 && j > i + 1) break;
      }
      if (j + 2 < tokens.size() && tokens[j + 1].is_ident &&
          tokens[j + 2].text == "(") {
        name_idx = j + 1;
      }
    }
    if (name_idx != 0) names.push_back(tokens[name_idx].text);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<LintFinding> LintSource(
    const std::string& path, const std::string& source,
    const std::vector<std::string>& status_function_names) {
  const std::string norm = NormalizeSlashes(path);
  std::vector<Token> tokens = Tokenize(StripCommentsAndStrings(source));
  std::set<std::string> status_fns(status_function_names.begin(),
                                   status_function_names.end());
  std::vector<LintFinding> findings;
  CheckNondeterminism(norm, tokens, &findings);
  CheckLibraryPrints(norm, tokens, &findings);
  CheckDiscardedStatus(norm, tokens, status_fns, &findings);
  CheckParallelForMutation(norm, tokens, &findings);
  CheckUncheckedEigenConvergence(norm, tokens, &findings);
  CheckRawOfstream(norm, tokens, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

Result<std::vector<LintFinding>> LintTree(
    const std::string& repo_root, const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path root_abs = fs::absolute(fs::path(repo_root), ec);
  if (ec) return Status::IOError("cannot resolve root " + repo_root);

  std::vector<fs::path> files;
  for (const std::string& r : roots) {
    fs::path p(r);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end_it;
           !ec && it != end_it; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        fs::path f = it->path();
        if (f.extension() == ".cc" || f.extension() == ".h") {
          files.push_back(f);
        }
      }
      if (ec) return Status::IOError("cannot walk " + r);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      return Status::IOError("no such file or directory: " + r);
    }
  }
  std::sort(files.begin(), files.end());

  auto relative_name = [&](const fs::path& f) {
    std::error_code rel_ec;
    fs::path rel = fs::relative(fs::absolute(f, rel_ec), root_abs, rel_ec);
    std::string name = rel_ec || rel.empty() || *rel.begin() == ".."
                           ? f.generic_string()
                           : rel.generic_string();
    return NormalizeSlashes(name);
  };

  // Pass 1: the Status/Result name set comes from every header in scope.
  std::vector<std::string> status_fns;
  for (const fs::path& f : files) {
    if (f.extension() != ".h") continue;
    RP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(f.string()));
    std::vector<std::string> names = CollectStatusFunctionNames(text);
    status_fns.insert(status_fns.end(), names.begin(), names.end());
  }
  std::sort(status_fns.begin(), status_fns.end());
  status_fns.erase(std::unique(status_fns.begin(), status_fns.end()),
                   status_fns.end());

  // Pass 2: lint everything.
  std::vector<LintFinding> findings;
  for (const fs::path& f : files) {
    RP_ASSIGN_OR_RETURN(std::string text, ReadFileToString(f.string()));
    std::vector<LintFinding> file_findings =
        LintSource(relative_name(f), text, status_fns);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace lint
}  // namespace roadpart
