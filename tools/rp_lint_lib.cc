// Compatibility shim: the rp_lint rule engine now lives in tools/analyze/
// (see rules.cc for the token-aware reimplementations). This translation
// unit keeps the original rp_lint_lib API — used by tests/rp_lint_test.cc
// and any older tooling — delegating to the analyzer and filtering to the
// legacy rule set.

#include "tools/rp_lint_lib.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "tools/analyze/analyzer.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/rules.h"

namespace roadpart {
namespace lint {

namespace {

// The rules rp_lint historically enforced; the shim reports only these so
// callers see exactly the old contract (rp_analyze adds the header and
// include-graph rules on top).
const std::set<std::string>& LegacyRules() {
  static const std::set<std::string> kRules = {
      "banned-nondeterminism",     "print-in-library",
      "discarded-status",          "parallelfor-shared-mutation",
      "unchecked-eigen-convergence", "raw-ofstream-write",
  };
  return kRules;
}

std::vector<LintFinding> ToLintFindings(
    const std::vector<analyze::Finding>& findings) {
  std::vector<LintFinding> out;
  for (const analyze::Finding& f : findings) {
    if (LegacyRules().count(f.rule) == 0) continue;
    out.push_back({f.file, f.line, f.rule, f.message});
  }
  return out;
}

}  // namespace

std::string LintFinding::ToString() const {
  return StrPrintf("%s:%d: [%s] %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

std::string StripCommentsAndStrings(const std::string& source) {
  return analyze::StripCommentsAndStrings(source);
}

std::vector<std::string> CollectStatusFunctionNames(
    const std::string& header) {
  return analyze::CollectStatusFunctionNames(analyze::Lex(header));
}

std::vector<LintFinding> LintSource(
    const std::string& path, const std::string& source,
    const std::vector<std::string>& status_function_names) {
  return ToLintFindings(
      analyze::AnalyzeSource(path, source, status_function_names));
}

Result<std::vector<LintFinding>> LintTree(
    const std::string& repo_root, const std::vector<std::string>& roots) {
  analyze::AnalyzeOptions options;
  options.include_graph = false;  // the old linter had no include-graph pass
  RP_ASSIGN_OR_RETURN(analyze::AnalyzeReport report,
                      analyze::AnalyzeTree(repo_root, roots, options));
  return ToLintFindings(report.findings);
}

}  // namespace lint
}  // namespace roadpart
