// rp_lint: repo-specific linter for the roadpart tree.
//
// Scans C++ sources for project-rule violations no general-purpose tool
// knows about: discarded Status/Result calls, banned nondeterminism sources,
// raw stdout/stderr printing in library code, and unsafe shared-state
// mutation inside ParallelFor lambdas (see tools/rp_lint_lib.h for the rule
// definitions).
//
// Usage: rp_lint [--root <repo_root>] <dir-or-file>...
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
// Registered as a ctest (`ctest -R rp_lint`) and run by scripts/check.sh.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/rp_lint_lib.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rp_lint: --root needs a value\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: rp_lint [--root <repo_root>] <dir-or-file>...\n");
      return 2;
    } else {
      targets.push_back(std::move(arg));
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr,
                 "usage: rp_lint [--root <repo_root>] <dir-or-file>...\n");
    return 2;
  }

  auto result = roadpart::lint::LintTree(root, targets);
  if (!result.ok()) {
    std::fprintf(stderr, "rp_lint: %s\n", result.status().ToString().c_str());
    return 2;
  }
  for (const roadpart::lint::LintFinding& f : *result) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
  }
  if (!result->empty()) {
    std::fprintf(stderr, "rp_lint: %zu finding(s)\n", result->size());
    return 1;
  }
  return 0;
}
