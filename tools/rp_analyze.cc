// rp_analyze: token-level static analyzer for the roadpart tree.
//
// Subsumes the old regex-era rp_lint: a real lexer (comments, string/char/
// raw-string literals, preprocessor continuations) feeds token-aware project
// rules, an include-graph pass enforces the declared layering DAG
// (tools/analyze/layers.txt), and a capture-list-aware pass audits
// ParallelFor/ParallelForTasks lambdas for non-per-slot writes to
// by-reference captures. See tools/analyze/rules.h for the rule catalog and
// DESIGN.md "Static analysis architecture" for semantics.
//
// Usage:
//   rp_analyze [--root <repo_root>] [--format=text|json]
//              [--layers <file>|--no-layers] [--baseline <file>]
//              [--no-include-graph] [--list-rules] [<dir-or-file>...]
//
// With no targets, scans src/ tools/ bench/ tests/ under the root. Layers
// and baseline default to tools/analyze/{layers.txt,baseline.txt} under the
// root when those files exist.
//
// Exit codes: 0 clean (only baselined findings), 1 new findings, 2 usage or
// I/O error. Registered as a ctest (`ctest -R rp_analyze`) and run by
// scripts/check.sh, which archives the JSON report.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/analyze/analyzer.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: rp_analyze [--root <repo_root>] [--format=text|json]\n"
      "                  [--layers <file>|--no-layers] [--baseline <file>]\n"
      "                  [--no-include-graph] [--list-rules]\n"
      "                  [<dir-or-file>...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using roadpart::analyze::AnalyzeOptions;
  using roadpart::analyze::AnalyzeReport;
  using roadpart::analyze::RuleCatalog;
  using roadpart::analyze::RuleInfo;
  using roadpart::analyze::SeverityName;

  std::string root = ".";
  std::string format = "text";
  std::string layers;
  std::string baseline;
  bool no_layers = false;
  bool include_graph = true;
  bool list_rules = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto needs_value = [&](const char* flag) -> bool {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rp_analyze: %s needs a value\n", flag);
        return false;
      }
      return true;
    };
    if (arg == "--root") {
      if (!needs_value("--root")) return 2;
      root = argv[++i];
    } else if (arg == "--layers") {
      if (!needs_value("--layers")) return 2;
      layers = argv[++i];
    } else if (arg == "--baseline") {
      if (!needs_value("--baseline")) return 2;
      baseline = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format") {
      if (!needs_value("--format")) return 2;
      format = argv[++i];
    } else if (arg == "--no-layers") {
      no_layers = true;
    } else if (arg == "--no-include-graph") {
      include_graph = false;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rp_analyze: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      targets.push_back(std::move(arg));
    }
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "rp_analyze: --format must be text or json\n");
    return 2;
  }

  if (list_rules) {
    for (const RuleInfo& info : RuleCatalog()) {
      std::printf("%-28s %-7s %s\n", info.id, SeverityName(info.severity),
                  info.summary);
    }
    return 0;
  }

  if (targets.empty()) {
    for (const char* sub : {"src", "tools", "bench", "tests"}) {
      fs::path p = fs::path(root) / sub;
      std::error_code ec;
      if (fs::is_directory(p, ec)) targets.push_back(p.string());
    }
    if (targets.empty()) {
      std::fprintf(stderr, "rp_analyze: no targets under root %s\n",
                   root.c_str());
      return 2;
    }
  }

  AnalyzeOptions options;
  options.include_graph = include_graph;
  std::error_code ec;
  if (!no_layers) {
    fs::path p = layers.empty()
                     ? fs::path(root) / "tools" / "analyze" / "layers.txt"
                     : fs::path(layers);
    if (!layers.empty() || fs::is_regular_file(p, ec)) {
      options.layers_file = p.string();
    }
  }
  {
    fs::path p = baseline.empty()
                     ? fs::path(root) / "tools" / "analyze" / "baseline.txt"
                     : fs::path(baseline);
    if (!baseline.empty() || fs::is_regular_file(p, ec)) {
      options.baseline_file = p.string();
    }
  }

  auto result = roadpart::analyze::AnalyzeTree(root, targets, options);
  if (!result.ok()) {
    std::fprintf(stderr, "rp_analyze: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const AnalyzeReport& report = *result;
  if (format == "json") {
    std::fputs(roadpart::analyze::FormatJson(report).c_str(), stdout);
  } else {
    std::fputs(roadpart::analyze::FormatText(report).c_str(), stdout);
  }
  return report.new_count > 0 ? 1 : 0;
}
