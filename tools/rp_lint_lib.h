#ifndef ROADPART_TOOLS_RP_LINT_LIB_H_
#define ROADPART_TOOLS_RP_LINT_LIB_H_

// Compatibility facade over tools/analyze/ (the token-level analyzer that
// subsumed rp_lint). New code should use tools/analyze/analyzer.h directly:
// it adds include-graph layering, header rules, inline suppressions, and
// baseline support on top of the legacy rule set exposed here.

#include <string>
#include <vector>

#include "common/status.h"

namespace roadpart {
namespace lint {

/// One repo-specific rule violation at a source location.
struct LintFinding {
  std::string file;     ///< path as reported (relative to the lint root)
  int line = 0;         ///< 1-based
  std::string rule;     ///< stable rule id (e.g. "banned-nondeterminism")
  std::string message;  ///< human-readable explanation

  std::string ToString() const;
};

/// Replaces the contents of //, /* */ comments and string/character literals
/// with spaces (newlines preserved), so every rule sees code only. This is
/// also what makes the linter safe to run on its own sources: the banned
/// patterns it knows about live inside string literals.
std::string StripCommentsAndStrings(const std::string& source);

/// Scans (stripped or raw) header text for declarations returning Status or
/// Result<T> and returns the function names found. Feeding every header of
/// the tree builds the name set used by the discarded-status rule.
std::vector<std::string> CollectStatusFunctionNames(const std::string& header);

/// Lints one translation unit.
///
/// `path` determines which rules apply (all paths are interpreted relative to
/// the repo root, using '/' separators):
///   - banned-nondeterminism: everywhere except src/common/rng.{h,cc} — the
///     one sanctioned randomness entry point.
///   - print-in-library: under src/ only; src/common/{logging,status,check}.cc
///     are the sanctioned stderr sinks and exempt.
///   - discarded-status: calls to `status_function_names` as bare expression
///     statements (not handled by [[nodiscard]], e.g. code compiled with
///     warnings suppressed).
///   - parallelfor-shared-mutation: reference-captured lambdas passed to
///     ParallelFor/ParallelForBlocked that compound-assign/push_back into
///     state neither lambda-local nor element-indexed; the blocked-reduction
///     helpers (ParallelBlockedSum/ParallelBlockedReduce) are the sanctioned
///     way to accumulate and are not flagged.
///   - unchecked-eigen-convergence: member access to `eigenvectors` in a
///     file that never mentions `converged` (or `max_residual`) — a
///     non-converged Lanczos basis silently consumed as an eigenbasis.
///     src/linalg/ (the solver internals) is exempt.
std::vector<LintFinding> LintSource(
    const std::string& path, const std::string& source,
    const std::vector<std::string>& status_function_names);

/// Walks `roots` (files or directories, recursively; .h/.cc only), collects
/// the Status-returning name set from every header found, then lints every
/// file. Paths in findings come out relative to `repo_root` when they lie
/// under it. Fails only on I/O errors — findings are data, not errors.
Result<std::vector<LintFinding>> LintTree(const std::string& repo_root,
                                          const std::vector<std::string>& roots);

}  // namespace lint
}  // namespace roadpart

#endif  // ROADPART_TOOLS_RP_LINT_LIB_H_
