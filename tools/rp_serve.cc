// rp_serve — partition-lookup server over rpsnap snapshots.
//
//   rp_serve [--threads=T] [--batch-size=N] [--out=FILE]
//            [--on-malformed=strict|isolate]
//            [--max-inflight-queries=N] [--max-inflight-bytes=N]
//            [--deadline-seconds=S] [--session]
//            <snapshot.rpsnap> [queries.txt|-]
//
// Batch mode (default) reads one query per line from queries.txt (or stdin
// when the operand is omitted or "-"):
//
//   point <x> <y>
//   range <minx> <miny> <maxx> <maxy>
//
// and writes one answer line per query, in input order, to stdout (or
// atomically to --out). Malformed lines abort the run (strict, the batch
// default) or answer `error <line> <reason>` in place (--on-malformed=
// isolate). The admission flags bound how many queries/bytes one window
// admits (excess answers `shed <line> <reason>`), and --deadline-seconds
// bounds each window's wall time. See src/serve/serve_loop.h.
//
// Session mode (--session) treats the input as a script interleaving
// queries with control lines — `!reload <path>`, `!stats`, `!quiesce` — so
// snapshots hot-swap under load without restarting the process; a reload of
// a corrupt candidate answers `reload failed <reason>` and the old snapshot
// keeps serving. Malformed handling defaults to isolate in session mode.
// See src/serve/runtime.h for the protocol.
//
// --threads only changes speed: output is byte-identical for every value.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: rp_serve [--threads=T] [--batch-size=N] [--out=FILE]"
               " [--on-malformed=strict|isolate]"
               " [--max-inflight-queries=N] [--max-inflight-bytes=N]"
               " [--deadline-seconds=S] [--session]"
               " <snapshot.rpsnap> [queries.txt|-]\n");
  return 2;
}

Result<std::string> ReadAllStdin() {
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    data.append(buf, got);
  }
  // fread returns 0 for both EOF and error; a failing pipe must not be
  // served as a truncated-but-"successful" query stream.
  if (std::ferror(stdin)) {
    return Status::IOError("failed reading queries from stdin");
  }
  return data;
}

int Main(int argc, char** argv) {
  auto flags = FlagParser::Parse(
      argc - 1, argv + 1,
      {"threads", "batch-size", "out", "on-malformed", "max-inflight-queries",
       "max-inflight-bytes", "deadline-seconds", "session"},
      /*bool_flags=*/{"session"});
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty() || flags->positional().size() > 2) {
    return Usage();
  }
  auto threads = flags->GetInt("threads", 0);
  if (!threads.ok()) return Fail(threads.status());
  auto batch = flags->GetInt("batch-size", 4096);
  if (!batch.ok()) return Fail(batch.status());
  if (*batch < 1) {
    return Fail(Status::InvalidArgument("--batch-size must be >= 1"));
  }
  auto max_queries = flags->GetInt("max-inflight-queries", 0);
  if (!max_queries.ok()) return Fail(max_queries.status());
  auto max_bytes = flags->GetInt("max-inflight-bytes", 0);
  if (!max_bytes.ok()) return Fail(max_bytes.status());
  if (*max_queries < 0 || *max_bytes < 0) {
    return Fail(Status::InvalidArgument(
        "--max-inflight-queries/--max-inflight-bytes must be >= 0"));
  }
  auto deadline = flags->GetDouble("deadline-seconds", 0.0);
  if (!deadline.ok()) return Fail(deadline.status());
  if (*deadline < 0.0) {
    return Fail(Status::InvalidArgument("--deadline-seconds must be >= 0"));
  }
  const bool session = flags->GetBool("session", false);
  // Batch mode keeps the historical strict default; a session exists to
  // keep serving, so it defaults to isolate. --on-malformed overrides both.
  const std::string policy_name =
      flags->GetString("on-malformed", session ? "isolate" : "strict");
  MalformedQueryPolicy policy;
  if (policy_name == "strict") {
    policy = MalformedQueryPolicy::kStrict;
  } else if (policy_name == "isolate") {
    policy = MalformedQueryPolicy::kIsolate;
  } else {
    return Fail(Status::InvalidArgument(
        "--on-malformed must be 'strict' or 'isolate'"));
  }

  ServeRuntimeOptions options;
  options.serve.num_threads = static_cast<int>(*threads);
  options.serve.batch_size = static_cast<int>(*batch);
  options.serve.on_malformed = policy;
  options.serve.max_inflight_queries = *max_queries;
  options.serve.max_inflight_bytes = *max_bytes;
  options.serve.deadline_seconds = *deadline;
  ServeRuntime runtime(options);

  Status loaded = runtime.LoadSnapshot(flags->positional()[0]);
  if (!loaded.ok()) return Fail(loaded);
  {
    const auto snapshot = runtime.snapshot_manager().Current();
    std::fprintf(stderr,
                 "loaded %s: %d segments, %d partitions, fingerprint %s\n",
                 flags->positional()[0].c_str(), snapshot->num_segments(),
                 snapshot->num_partitions(),
                 Uint64ToHex(snapshot->source_fingerprint()).c_str());
  }

  std::string input;
  const std::string source =
      flags->positional().size() == 2 ? flags->positional()[1] : "-";
  if (source == "-") {
    auto bytes = ReadAllStdin();
    if (!bytes.ok()) return Fail(bytes.status());
    input = std::move(bytes).value();
  } else {
    auto bytes = ReadFileBytes(source);
    if (!bytes.ok()) return Fail(bytes.status());
    input = std::move(bytes).value();
  }

  std::string answers;
  if (session) {
    auto result = runtime.RunSession(input);
    if (!result.ok()) return Fail(result.status());
    answers = std::move(result).value();
  } else {
    Status st = runtime.ServeBatch(input, &answers);
    if (!st.ok()) return Fail(st);
  }

  const ServeRuntimeStats& stats = runtime.stats();
  const SnapshotManagerDiagnostics diag =
      runtime.snapshot_manager().diagnostics();
  std::fprintf(stderr,
               "served=%lld errored=%lld shed=%lld reloads_ok=%lld "
               "reloads_failed=%lld version=%lld\n",
               static_cast<long long>(stats.served),
               static_cast<long long>(stats.errored),
               static_cast<long long>(stats.shed),
               static_cast<long long>(diag.reloads_ok),
               static_cast<long long>(diag.reloads_failed),
               static_cast<long long>(diag.version));

  const std::string out_path = flags->GetString("out", "");
  if (out_path.empty()) {
    std::fwrite(answers.data(), 1, answers.size(), stdout);
  } else {
    Status st = AtomicWriteFile(out_path, answers);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace roadpart

int main(int argc, char** argv) { return roadpart::Main(argc, argv); }
