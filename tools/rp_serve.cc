// rp_serve — batched partition-lookup server over an rpsnap snapshot.
//
//   rp_serve [--threads=T] [--batch-size=N] [--out=FILE] \
//            <snapshot.rpsnap> [queries.txt]
//
// Reads one query per line from queries.txt (or stdin when the operand is
// omitted or "-"):
//
//   point <x> <y>
//   range <minx> <miny> <maxx> <maxy>
//
// and writes one answer line per query, in input order, to stdout (or
// atomically to --out). See src/serve/serve_loop.h for the exact formats.
// --threads only changes speed: output is byte-identical for every value.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: rp_serve [--threads=T] [--batch-size=N] [--out=FILE]"
               " <snapshot.rpsnap> [queries.txt|-]\n");
  return 2;
}

std::string ReadAllStdin() {
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    data.append(buf, got);
  }
  return data;
}

int Main(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc - 1, argv + 1,
                                 {"threads", "batch-size", "out"},
                                 /*bool_flags=*/{});
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty() || flags->positional().size() > 2) {
    return Usage();
  }
  auto threads = flags->GetInt("threads", 0);
  if (!threads.ok()) return Fail(threads.status());
  auto batch = flags->GetInt("batch-size", 4096);
  if (!batch.ok()) return Fail(batch.status());
  if (*batch < 1) {
    return Fail(Status::InvalidArgument("--batch-size must be >= 1"));
  }

  auto snapshot = Snapshot::Load(flags->positional()[0]);
  if (!snapshot.ok()) return Fail(snapshot.status());
  std::fprintf(stderr,
               "loaded %s: %d segments, %d partitions, fingerprint %s\n",
               flags->positional()[0].c_str(), snapshot->num_segments(),
               snapshot->num_partitions(),
               Uint64ToHex(snapshot->source_fingerprint()).c_str());

  std::string queries;
  const std::string source =
      flags->positional().size() == 2 ? flags->positional()[1] : "-";
  if (source == "-") {
    queries = ReadAllStdin();
  } else {
    auto bytes = ReadFileBytes(source);
    if (!bytes.ok()) return Fail(bytes.status());
    queries = std::move(bytes).value();
  }

  ServeOptions options;
  options.num_threads = static_cast<int>(*threads);
  options.batch_size = static_cast<int>(*batch);
  std::string answers;
  Status st = ServeQueries(*snapshot, queries, options, &answers);
  if (!st.ok()) return Fail(st);

  const std::string out_path = flags->GetString("out", "");
  if (out_path.empty()) {
    std::fwrite(answers.data(), 1, answers.size(), stdout);
  } else {
    st = AtomicWriteFile(out_path, answers);
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace roadpart

int main(int argc, char** argv) { return roadpart::Main(argc, argv); }
