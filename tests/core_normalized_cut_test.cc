#include <gtest/gtest.h>

#include <cmath>

#include "core/ji_geroliminis.h"
#include "core/normalized_cut.h"
#include "core/spectral_common.h"
#include "metrics/validity.h"

namespace roadpart {
namespace {

CsrGraph TwoCommunities() {
  std::vector<Edge> edges;
  for (int base : {0, 5}) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
  }
  edges.push_back({4, 5, 0.05});
  return CsrGraph::FromEdges(10, edges).value();
}

CsrGraph CliqueRing(int k, int m) {
  std::vector<Edge> edges;
  for (int c = 0; c < k; ++c) {
    int base = c * m;
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    int next_base = ((c + 1) % k) * m;
    edges.push_back({base + m - 1, next_base, 0.05});
  }
  return CsrGraph::FromEdges(k * m, edges).value();
}

TEST(NormalizedCutObjectiveTest, HandComputed) {
  // Path 0-1-2 split {0}/{1,2}: cut = 1, vol({0}) = 1, vol({1,2}) = 3.
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}).value();
  double ncut = NormalizedCutObjective(g, {0, 1, 1});
  EXPECT_NEAR(ncut, 1.0 / 1.0 + 1.0 / 3.0, 1e-12);
}

TEST(NormalizedCutObjectiveTest, GoodSplitLower) {
  CsrGraph g = TwoCommunities();
  std::vector<int> good = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<int> bad = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LT(NormalizedCutObjective(g, good),
            NormalizedCutObjective(g, bad));
}

TEST(NormalizedCutPartitionTest, RecoversTwoCommunities) {
  CsrGraph g = TwoCommunities();
  auto cut = NormalizedCutPartition(g, 2);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 2);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(cut->assignment[i], cut->assignment[0]);
  for (int i = 6; i < 10; ++i) EXPECT_EQ(cut->assignment[i], cut->assignment[5]);
  EXPECT_NE(cut->assignment[0], cut->assignment[5]);
}

TEST(NormalizedCutPartitionTest, ValidAcrossK) {
  CsrGraph g = CliqueRing(5, 5);
  for (int k = 2; k <= 5; ++k) {
    NormalizedCutOptions opt;
    opt.pipeline.kmeans.seed = 40 + k;
    auto cut = NormalizedCutPartition(g, k, opt);
    ASSERT_TRUE(cut.ok()) << "k=" << k;
    EXPECT_EQ(cut->k_final, k);
    EXPECT_TRUE(CheckPartitionValidity(g, cut->assignment).ok());
  }
}

TEST(NormalizedCutPartitionTest, LanczosPathWorks) {
  CsrGraph g = CliqueRing(3, 12);
  NormalizedCutOptions opt;
  opt.spectral.dense_threshold = 4;  // force Lanczos
  opt.pipeline.kmeans.seed = 2;
  auto cut = NormalizedCutPartition(g, 3, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 3);
  for (int c = 0; c < 3; ++c) {
    int label = cut->assignment[c * 12];
    for (int i = 0; i < 12; ++i) EXPECT_EQ(cut->assignment[c * 12 + i], label);
  }
}

TEST(NormalizedCutPartitionTest, IsolatedNodeTolerated) {
  // Node 3 has no edges; the embedding must not blow up on zero degree.
  CsrGraph g = CsrGraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 1.0}}).value();
  NormalizedCutOptions opt;
  opt.pipeline.enforce_connectivity = false;
  opt.pipeline.enforce_exact_k = false;
  auto cut = NormalizedCutPartition(g, 2, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_GE(cut->k_final, 2);
}

// --- Ji & Geroliminis baseline ---

// A path with three density plateaus.
struct JigFixture {
  CsrGraph graph;
  std::vector<double> features;
};

JigFixture ThreePlateaus() {
  const int n = 30;
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  std::vector<double> f(n);
  for (int i = 0; i < n; ++i) f[i] = (i < 10) ? 0.1 : (i < 20 ? 0.5 : 0.9);
  return {CsrGraph::FromEdges(n, edges).value(), f};
}

TEST(JiGeroliminisTest, ProducesKConnectedPartitions) {
  JigFixture fx = ThreePlateaus();
  CsrGraph weighted = GaussianWeightedGraph(fx.graph, fx.features);
  auto cut = JiGeroliminisPartition(weighted, fx.features, 3);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 3);
  EXPECT_TRUE(CheckPartitionValidity(weighted, cut->assignment).ok());
}

TEST(JiGeroliminisTest, FindsThePlateaus) {
  JigFixture fx = ThreePlateaus();
  CsrGraph weighted = GaussianWeightedGraph(fx.graph, fx.features);
  auto cut = JiGeroliminisPartition(weighted, fx.features, 3);
  ASSERT_TRUE(cut.ok());
  // Interior nodes of each plateau share labels.
  for (int base : {0, 10, 20}) {
    for (int i = 2; i < 8; ++i) {
      EXPECT_EQ(cut->assignment[base + i], cut->assignment[base + 2])
          << "plateau at " << base;
    }
  }
}

TEST(JiGeroliminisTest, BoundaryAdjustmentImprovesUniformity) {
  JigFixture fx = ThreePlateaus();
  CsrGraph weighted = GaussianWeightedGraph(fx.graph, fx.features);
  JiGeroliminisOptions no_adjust;
  no_adjust.boundary_rounds = 0;
  JiGeroliminisOptions adjust;
  adjust.boundary_rounds = 5;
  auto a = JiGeroliminisPartition(weighted, fx.features, 3, no_adjust);
  auto b = JiGeroliminisPartition(weighted, fx.features, 3, adjust);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sse = [&](const std::vector<int>& assignment) {
    std::vector<double> sum(3, 0.0);
    std::vector<double> sq(3, 0.0);
    std::vector<int> cnt(3, 0);
    for (size_t v = 0; v < assignment.size(); ++v) {
      sum[assignment[v]] += fx.features[v];
      sq[assignment[v]] += fx.features[v] * fx.features[v];
      cnt[assignment[v]]++;
    }
    double total = 0.0;
    for (int p = 0; p < 3; ++p) {
      if (cnt[p]) total += sq[p] - sum[p] * sum[p] / cnt[p];
    }
    return total;
  };
  EXPECT_LE(sse(b->assignment), sse(a->assignment) + 1e-9);
}

TEST(JiGeroliminisTest, Validation) {
  JigFixture fx = ThreePlateaus();
  CsrGraph weighted = GaussianWeightedGraph(fx.graph, fx.features);
  std::vector<double> short_features = {1.0};
  EXPECT_FALSE(JiGeroliminisPartition(weighted, short_features, 3).ok());
  EXPECT_FALSE(JiGeroliminisPartition(weighted, fx.features, 0).ok());
  EXPECT_FALSE(JiGeroliminisPartition(weighted, fx.features, 1000).ok());
}

}  // namespace
}  // namespace roadpart
