// Fault-injection suite: every armed fault must surface as a clean Status or
// as a partition that still passes ValidatePartitionLabels — never a crash,
// a hang, or silent garbage. Faults are deterministic (seeded), so the tests
// also pin down bit-identical degraded behavior across runs and thread
// counts.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <vector>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

// --- Injector unit behavior ---

TEST(FaultInjectorTest, ArmBudgetAndFireCount) {
  FaultInjector inj(7);
  EXPECT_FALSE(inj.ShouldFire(FaultSite::kDensityLoadNaN));
  inj.Arm(FaultSite::kDensityLoadNaN, 2);
  EXPECT_TRUE(inj.ShouldFire(FaultSite::kDensityLoadNaN));
  EXPECT_TRUE(inj.ShouldFire(FaultSite::kDensityLoadNaN));
  EXPECT_FALSE(inj.ShouldFire(FaultSite::kDensityLoadNaN));  // budget spent
  EXPECT_EQ(inj.fire_count(FaultSite::kDensityLoadNaN), 2);
  EXPECT_EQ(inj.fire_count(FaultSite::kLanczosNonConvergence), 0);
}

TEST(FaultInjectorTest, DisarmClearsBudget) {
  FaultInjector inj(7);
  inj.Arm(FaultSite::kLanczosNonConvergence);
  inj.Disarm(FaultSite::kLanczosNonConvergence);
  EXPECT_FALSE(inj.ShouldFire(FaultSite::kLanczosNonConvergence));
}

TEST(FaultInjectorTest, PickIndicesDeterministicSortedDistinct) {
  FaultInjector a(42);
  FaultInjector b(42);
  std::vector<int> ia = a.PickIndices(100, 13);
  std::vector<int> ib = b.PickIndices(100, 13);
  EXPECT_EQ(ia, ib);  // same seed, same stream
  ASSERT_EQ(ia.size(), 13u);
  for (size_t i = 0; i < ia.size(); ++i) {
    EXPECT_GE(ia[i], 0);
    EXPECT_LT(ia[i], 100);
    if (i > 0) EXPECT_LT(ia[i - 1], ia[i]);  // sorted, distinct
  }
  FaultInjector c(43);
  EXPECT_NE(c.PickIndices(100, 13), ia);  // different seed, different choice
}

TEST(FaultInjectorTest, ScopedInstallerRestoresPrevious) {
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
  FaultInjector inj(1);
  {
    ScopedFaultInjector scoped(&inj);
    EXPECT_EQ(GlobalFaultInjector(), &inj);
  }
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
}

// --- Shared fixtures ---

// A chain road graph with a smooth density ramp: large enough that the
// Lanczos path runs when dense_threshold is lowered, well-conditioned enough
// that an unforced solve converges.
RoadGraph ChainGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  std::vector<double> f(n);
  for (int i = 0; i < n; ++i) f[i] = 0.05 * i + (i % 7) * 0.01;
  return RoadGraph::FromParts(CsrGraph::FromEdges(n, edges).value(), f)
      .value();
}

PartitionerOptions LanczosForcedOptions(NonConvergencePolicy policy) {
  PartitionerOptions options;
  options.scheme = Scheme::kNG;
  options.k = 3;
  options.seed = 11;
  options.spectral.dense_threshold = 4;  // push the top-level solve to Lanczos
  options.spectral.on_nonconvergence = policy;
  return options;
}

// --- Eigensolver fallback ladder ---

TEST(FaultInjectionTest, ForcedNonConvergenceRecoversViaRetry) {
  RoadGraph rg = ChainGraph(60);
  FaultInjector inj(3);
  inj.Arm(FaultSite::kLanczosNonConvergence, 1);  // sabotage first solve only
  ScopedFaultInjector scoped(&inj);
  auto outcome = Partitioner(LanczosForcedOptions(NonConvergencePolicy::kRetry))
                     .PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(inj.fire_count(FaultSite::kLanczosNonConvergence), 1);
  EXPECT_EQ(outcome->diagnostics.eigen.solver_path, SolverPath::kLanczosRetry);
  EXPECT_TRUE(outcome->diagnostics.eigen.all_converged);
  EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, rg.num_nodes(),
                                      outcome->k_final)
                  .ok());
}

TEST(FaultInjectionTest, PersistentNonConvergenceFallsBackToDense) {
  RoadGraph rg = ChainGraph(60);
  FaultInjector inj(3);
  inj.Arm(FaultSite::kLanczosNonConvergence);  // every solve fails
  ScopedFaultInjector scoped(&inj);
  auto outcome =
      Partitioner(LanczosForcedOptions(NonConvergencePolicy::kFallbackDense))
          .PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->diagnostics.eigen.solver_path,
            SolverPath::kDenseFallback);
  // The dense rung is exact, so the run still counts as converged.
  EXPECT_TRUE(outcome->diagnostics.eigen.all_converged);
  EXPECT_NE(outcome->diagnostics.eigen.solver_path,
            SolverPath::kLanczosFirstTry);
  EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, rg.num_nodes(),
                                      outcome->k_final)
                  .ok());
}

TEST(FaultInjectionTest, BestEffortAcceptsEstimateWhenDenseImpossible) {
  RoadGraph rg = ChainGraph(60);
  FaultInjector inj(3);
  inj.Arm(FaultSite::kLanczosNonConvergence);
  ScopedFaultInjector scoped(&inj);
  PartitionerOptions options =
      LanczosForcedOptions(NonConvergencePolicy::kBestEffort);
  options.spectral.dense_fallback_max = 0;  // forbid the dense rung
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->diagnostics.eigen.solver_path, SolverPath::kBestEffort);
  EXPECT_FALSE(outcome->diagnostics.eigen.all_converged);
  EXPECT_FALSE(outcome->diagnostics.warnings.empty());
  EXPECT_FALSE(outcome->diagnostics.clean());
  EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, rg.num_nodes(),
                                      outcome->k_final)
                  .ok());
}

TEST(FaultInjectionTest, FailPolicyReturnsNotConverged) {
  RoadGraph rg = ChainGraph(60);
  FaultInjector inj(3);
  inj.Arm(FaultSite::kLanczosNonConvergence);
  ScopedFaultInjector scoped(&inj);
  auto outcome = Partitioner(LanczosForcedOptions(NonConvergencePolicy::kFail))
                     .PartitionRoadGraph(rg);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotConverged);
}

TEST(FaultInjectionTest, RetryPolicyGivesUpWhenRetryAlsoFails) {
  RoadGraph rg = ChainGraph(60);
  FaultInjector inj(3);
  inj.Arm(FaultSite::kLanczosNonConvergence);  // retry fails too
  ScopedFaultInjector scoped(&inj);
  auto outcome = Partitioner(LanczosForcedOptions(NonConvergencePolicy::kRetry))
                     .PartitionRoadGraph(rg);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotConverged);
}

// --- Density loader corruption ---

std::string WriteDensityFile(const std::string& name, int n) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  for (int i = 0; i < n; ++i) out << 0.1 * i << "\n";
  return path;
}

TEST(FaultInjectionTest, InjectedNaNsRejectedOrRepaired) {
  std::string path = WriteDensityFile("fi_nan.densities", 40);
  FaultInjector inj(5);
  inj.Arm(FaultSite::kDensityLoadNaN, 1);
  ScopedFaultInjector scoped(&inj);
  auto densities = LoadDensities(path);
  std::remove(path.c_str());
  ASSERT_TRUE(densities.ok());
  int nans = 0;
  for (double d : *densities) nans += std::isnan(d) ? 1 : 0;
  ASSERT_GT(nans, 0);  // the fault actually corrupted entries

  auto rejected = SanitizeDensities(*densities, DensityPolicy::kReject, 40);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  DensityRepairReport report;
  auto repaired = SanitizeDensities(*densities, DensityPolicy::kClampAndWarn,
                                    40, &report);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(report.nan_replaced, nans);
  for (double d : *repaired) EXPECT_TRUE(std::isfinite(d));
}

TEST(FaultInjectionTest, ShortReadRejectedOrPadded) {
  std::string path = WriteDensityFile("fi_short.densities", 40);
  FaultInjector inj(5);
  inj.Arm(FaultSite::kDensityLoadShortRead, 1);
  ScopedFaultInjector scoped(&inj);
  auto densities = LoadDensities(path);
  std::remove(path.c_str());
  ASSERT_TRUE(densities.ok());
  ASSERT_LT(densities->size(), 40u);  // the fault actually truncated

  auto rejected = SanitizeDensities(*densities, DensityPolicy::kReject, 40);
  ASSERT_FALSE(rejected.ok());

  DensityRepairReport report;
  auto repaired = SanitizeDensities(*densities, DensityPolicy::kClampAndWarn,
                                    40, &report);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), 40u);
  EXPECT_EQ(report.padded, 40 - static_cast<int>(densities->size()));
}

TEST(FaultInjectionTest, NaNDensitiesEndToEndUnderBothPolicies) {
  RoadGraph clean = ChainGraph(30);
  std::vector<double> poisoned = clean.features();
  FaultInjector picker(9);
  for (int i : picker.PickIndices(30, 4)) {
    poisoned[i] = std::nan("");
  }
  RoadGraph rg =
      RoadGraph::FromParts(clean.adjacency(), poisoned).value();

  PartitionerOptions options;
  options.scheme = Scheme::kNG;
  options.k = 3;
  options.seed = 2;
  options.density_policy = DensityPolicy::kReject;
  auto rejected = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  options.density_policy = DensityPolicy::kClampAndWarn;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->diagnostics.density_repairs.nan_replaced, 4);
  EXPECT_FALSE(outcome->diagnostics.warnings.empty());
  EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, rg.num_nodes(),
                                      outcome->k_final)
                  .ok());
}

// --- Degenerate embedding in k-means ---

TEST(FaultInjectionTest, DegenerateEmbeddingStillYieldsValidClustering) {
  DenseMatrix points(24, 3);
  for (int i = 0; i < 24; ++i) {
    for (int d = 0; d < 3; ++d) points(i, d) = 0.1 * i + 0.01 * d;
  }
  FaultInjector inj(5);
  inj.Arm(FaultSite::kKMeansDegenerateEmbedding, 1);
  ScopedFaultInjector scoped(&inj);
  KMeansOptions options;
  options.seed = 3;
  auto result = KMeansRows(points, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(inj.fire_count(FaultSite::kKMeansDegenerateEmbedding), 1);
  ASSERT_EQ(result->assignment.size(), 24u);
  for (int a : result->assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(FaultInjectionTest, DegenerateEmbeddingEndToEnd) {
  RoadGraph rg = ChainGraph(40);
  FaultInjector inj(5);
  inj.Arm(FaultSite::kKMeansDegenerateEmbedding, 1);
  ScopedFaultInjector scoped(&inj);
  PartitionerOptions options;
  options.scheme = Scheme::kNG;
  options.k = 3;
  options.seed = 8;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, rg.num_nodes(),
                                      outcome->k_final)
                  .ok());
}

// --- Shared 1-D k-means workspace corruption ---

RoadGraph MiningFixtureGraph() {
  RoadGraph chain = ChainGraph(80);
  // Plateau densities so mining finds several supernodes.
  std::vector<double> f(80);
  for (int i = 0; i < 80; ++i) f[i] = static_cast<double>(i / 20);
  return RoadGraph::FromParts(chain.adjacency(), f).value();
}

TEST(FaultInjectionTest, KMeansWorkspaceCorruptionSurfacesAsStatus) {
  RoadGraph rg = MiningFixtureGraph();
  FaultInjector inj(13);
  // Unlimited budget: the site is queried from inside the sweep's
  // ParallelForTasks, so a finite budget would make which kappa trips it
  // depend on scheduling. Unlimited keeps the degraded run deterministic.
  inj.Arm(FaultSite::kKMeans1DWorkspaceCorruption);
  ScopedFaultInjector scoped(&inj);
  auto sg = MineSupergraph(rg);
  ASSERT_FALSE(sg.ok());
  EXPECT_EQ(sg.status().code(), StatusCode::kInternal);
  EXPECT_GT(inj.fire_count(FaultSite::kKMeans1DWorkspaceCorruption), 0);
}

TEST(FaultInjectionTest, KMeansWorkspaceCorruptionDeterministicAcrossThreads) {
  RoadGraph rg = MiningFixtureGraph();
  auto run = [&](int num_threads) {
    FaultInjector inj(13);
    inj.Arm(FaultSite::kKMeans1DWorkspaceCorruption);
    ScopedFaultInjector scoped(&inj);
    ScopedParallelism threads(num_threads);
    auto sg = MineSupergraph(rg);
    RP_CHECK(!sg.ok());
    return sg.status().ToString();
  };
  std::string serial = run(1);
  EXPECT_EQ(run(1), serial);
  EXPECT_EQ(run(4), serial);  // same first-failing kappa at any thread count
  EXPECT_EQ(run(8), serial);
}

// --- Serving-snapshot faults ---

// A saved snapshot of a small two-way grid; returns the path.
std::string SavedSnapshotFixture(const std::string& name) {
  GridOptions grid;
  grid.rows = 3;
  grid.cols = 4;
  grid.two_way_fraction = 1.0;
  grid.seed = 4;
  auto net = GenerateGridNetwork(grid);
  RP_CHECK(net.ok());
  std::vector<int> labels(static_cast<size_t>(net->num_segments()));
  for (size_t s = 0; s < labels.size(); ++s) {
    labels[s] = static_cast<int>(s % 3);
  }
  auto snap = Snapshot::Build(*net, labels);
  RP_CHECK(snap.ok());
  std::string path = testing::TempDir() + "/" + name;
  RP_CHECK_OK(snap->Save(path));
  return path;
}

TEST(FaultInjectionTest, SnapshotShortReadSurfacesAsTypedCorruption) {
  std::string path = SavedSnapshotFixture("fi_snapshot_short.rpsnap");
  FaultInjector inj(21);
  inj.Arm(FaultSite::kSnapshotShortRead, 1);
  ScopedFaultInjector scoped(&inj);
  auto snap = Snapshot::Load(path);
  std::remove(path.c_str());
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption)
      << snap.status().ToString();
  EXPECT_EQ(inj.fire_count(FaultSite::kSnapshotShortRead), 1);
}

TEST(FaultInjectionTest, SnapshotStaleFingerprintSurfacesAsTypedCorruption) {
  std::string path = SavedSnapshotFixture("fi_snapshot_stale.rpsnap");
  FaultInjector inj(22);
  inj.Arm(FaultSite::kSnapshotStaleFingerprint, 1);
  ScopedFaultInjector scoped(&inj);
  auto snap = Snapshot::Load(path);
  std::remove(path.c_str());
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption)
      << snap.status().ToString();
  EXPECT_NE(snap.status().message().find("stale"), std::string::npos)
      << snap.status().ToString();
  EXPECT_EQ(inj.fire_count(FaultSite::kSnapshotStaleFingerprint), 1);
}

TEST(FaultInjectionTest, SnapshotFaultsDeterministicAcrossThreads) {
  // The sites are queried from the (serial) Load path, but the surrounding
  // serving stack is threaded; the degraded behavior must not depend on the
  // thread count. Unlimited budgets, as with every parallel-adjacent site.
  std::string path = SavedSnapshotFixture("fi_snapshot_threads.rpsnap");
  auto run = [&](int num_threads, FaultSite site) {
    FaultInjector inj(23);
    inj.Arm(site);
    ScopedFaultInjector scoped(&inj);
    ScopedParallelism threads(num_threads);
    auto snap = Snapshot::Load(path);
    RP_CHECK(!snap.ok());
    return snap.status().ToString();
  };
  for (FaultSite site :
       {FaultSite::kSnapshotShortRead, FaultSite::kSnapshotStaleFingerprint}) {
    std::string serial = run(1, site);
    EXPECT_EQ(run(1, site), serial);
    EXPECT_EQ(run(4, site), serial);
    EXPECT_EQ(run(8, site), serial);
  }
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, SnapshotSiteNamesAreRegistered) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kSnapshotShortRead),
               "snapshot-short-read");
  EXPECT_STREQ(FaultSiteName(FaultSite::kSnapshotStaleFingerprint),
               "snapshot-stale-fingerprint");
  EXPECT_STREQ(FaultSiteName(FaultSite::kSnapshotSwapCorruption),
               "snapshot-swap-corruption");
  EXPECT_STREQ(FaultSiteName(FaultSite::kServeShedOverflow),
               "serve-shed-overflow");
  EXPECT_STREQ(FaultSiteName(FaultSite::kServeQueryTimeout),
               "serve-query-timeout");
}

TEST(FaultInjectionTest, RepartitionSiteNamesAreRegistered) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kWarmStartCorruption),
               "warm-start-corruption");
  EXPECT_STREQ(FaultSiteName(FaultSite::kDirtyDetectOverflow),
               "dirty-detect-overflow");
}

TEST(FaultInjectionTest, RepartitionSitesArmAndCount) {
  // The incremental-repartition sites follow the standard budget contract:
  // armed fires decrement, cold sites never fire. (End-to-end behavior —
  // cold-started solves, all-dirty refreshes — is covered in
  // core_distributed_test.cc.)
  FaultInjector inj(31);
  inj.Arm(FaultSite::kWarmStartCorruption, 2);
  ScopedFaultInjector scoped(&inj);
  EXPECT_TRUE(RP_FAULT_FIRES(FaultSite::kWarmStartCorruption));
  EXPECT_TRUE(RP_FAULT_FIRES(FaultSite::kWarmStartCorruption));
  EXPECT_FALSE(RP_FAULT_FIRES(FaultSite::kWarmStartCorruption));
  EXPECT_FALSE(RP_FAULT_FIRES(FaultSite::kDirtyDetectOverflow));
  EXPECT_EQ(inj.fire_count(FaultSite::kWarmStartCorruption), 2);
  EXPECT_EQ(inj.fire_count(FaultSite::kDirtyDetectOverflow), 0);
}

// --- Determinism under faults ---

std::vector<int> RunWithFaults(const RoadGraph& rg, int num_threads) {
  FaultInjector inj(77);
  inj.Arm(FaultSite::kLanczosNonConvergence, 1);
  inj.Arm(FaultSite::kKMeansDegenerateEmbedding, 1);
  ScopedFaultInjector scoped(&inj);
  PartitionerOptions options =
      LanczosForcedOptions(NonConvergencePolicy::kBestEffort);
  options.num_threads = num_threads;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  RP_CHECK(outcome.ok());
  return outcome->assignment;
}

TEST(FaultInjectionTest, FaultedRunsAreDeterministicAcrossRunsAndThreads) {
  RoadGraph rg = ChainGraph(60);
  std::vector<int> first = RunWithFaults(rg, 1);
  EXPECT_EQ(RunWithFaults(rg, 1), first);  // same seed + faults, same result
  EXPECT_EQ(RunWithFaults(rg, 4), first);  // thread count cannot matter
}

}  // namespace
}  // namespace roadpart
