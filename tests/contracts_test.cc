// Contract-layer tests: the RP_CHECK macro family, and the debug structural
// validators (CsrGraph/SparseMatrix/partition labels) proving they fire on
// deliberately corrupted inputs and stay silent on healthy ones.

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "core/alpha_cut.h"
#include "core/spectral_common.h"
#include "graph/csr_graph.h"
#include "gtest/gtest.h"
#include "linalg/sparse_matrix.h"

namespace roadpart {
namespace {

CsrGraph Path3() {
  auto g = CsrGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  RP_CHECK_OK(g);
  return std::move(g).value();
}

// --- RP_CHECK macro family ---------------------------------------------------

TEST(CheckMacros, PassingChecksAreSilent) {
  RP_CHECK(true);
  RP_CHECK_EQ(2, 2);
  RP_CHECK_NE(2, 3);
  RP_CHECK_LT(1, 2);
  RP_CHECK_LE(2, 2);
  RP_CHECK_GT(3, 2);
  RP_CHECK_GE(2, 2);
  RP_CHECK_OK(Status::OK());
  Result<int> ok_result(7);
  RP_CHECK_OK(ok_result);
  SUCCEED();
}

TEST(CheckMacrosDeath, CheckAbortsWithExpression) {
  EXPECT_DEATH(RP_CHECK(1 == 2), "RP_CHECK failed: 1 == 2");
}

TEST(CheckMacrosDeath, BinaryFormsPrintBothValues) {
  int lhs = 3;
  int rhs = 5;
  EXPECT_DEATH(RP_CHECK_EQ(lhs, rhs), "lhs == rhs.*3 vs 5");
  EXPECT_DEATH(RP_CHECK_GE(lhs, rhs), "lhs >= rhs.*3 vs 5");
  EXPECT_DEATH(RP_CHECK_LT(rhs, lhs), "rhs < lhs.*5 vs 3");
}

TEST(CheckMacrosDeath, CheckOkPrintsStatusText) {
  EXPECT_DEATH(RP_CHECK_OK(Status::InvalidArgument("bad k")),
               "InvalidArgument: bad k");
  Result<int> err(Status::NotFound("no such node"));
  EXPECT_DEATH(RP_CHECK_OK(err), "NotFound: no such node");
}

TEST(CheckMacros, DcheckTierMatchesBuildMode) {
#if RP_DCHECK_ENABLED
  EXPECT_DEATH(RP_DCHECK(false), "RP_CHECK failed");
#else
  RP_DCHECK(false);  // compiled out: must be a no-op
  SUCCEED();
#endif
}

// --- CsrGraph::Validate ------------------------------------------------------

TEST(CsrGraphValidate, HealthyGraphPasses) {
  EXPECT_TRUE(Path3().Validate().ok());
  EXPECT_TRUE(CsrGraph().Validate().ok());
}

TEST(CsrGraphValidate, RawPartsRoundTripPasses) {
  CsrGraph g = Path3();
  CsrGraph raw = CsrGraph::FromRawParts(g.num_nodes(), g.offsets(),
                                        g.neighbors(), g.weights());
  EXPECT_TRUE(raw.Validate().ok());
  EXPECT_EQ(raw.num_edges(), g.num_edges());
}

#if RP_DCHECK_ENABLED

TEST(CsrGraphValidateDeath, AsymmetricAdjacency) {
  // Arc 0->1 with no reverse: breaks the undirected-dual-graph contract.
  EXPECT_DEATH(CsrGraph::FromRawParts(2, {0, 1, 1}, {1}, {1.0}),
               "asymmetric adjacency");
}

TEST(CsrGraphValidateDeath, UnsortedNeighbors) {
  EXPECT_DEATH(CsrGraph::FromRawParts(3, {0, 2, 3, 4}, {2, 1, 0, 0},
                                      {1.0, 1.0, 1.0, 1.0}),
               "not strictly sorted");
}

TEST(CsrGraphValidateDeath, NeighborOutOfRange) {
  EXPECT_DEATH(CsrGraph::FromRawParts(2, {0, 1, 2}, {5, 0}, {1.0, 1.0}),
               "out of range");
}

TEST(CsrGraphValidateDeath, SelfLoop) {
  EXPECT_DEATH(CsrGraph::FromRawParts(2, {0, 1, 1}, {0}, {1.0}),
               "self-loop");
}

TEST(CsrGraphValidateDeath, NonFiniteWeight) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(CsrGraph::FromRawParts(2, {0, 1, 2}, {1, 0}, {nan, nan}),
               "non-finite weight");
}

TEST(CsrGraphValidateDeath, NonMonotoneOffsets) {
  EXPECT_DEATH(CsrGraph::FromRawParts(2, {0, 2, 1}, {1}, {1.0}),
               "offsets");
}

#endif  // RP_DCHECK_ENABLED

// --- SparseMatrix::Validate --------------------------------------------------

TEST(SparseMatrixValidate, HealthyMatrixPasses) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 1, 2.0}, {1, 0, 2.0}});
  RP_CHECK_OK(m);
  EXPECT_TRUE(m->Validate().ok());
  EXPECT_TRUE(SparseMatrix().Validate().ok());
}

TEST(SparseMatrixValidate, RawCsrRoundTripPasses) {
  auto m = SparseMatrix::FromTriplets(2, 3, {{0, 2, 1.5}, {1, 0, -2.0}});
  RP_CHECK_OK(m);
  SparseMatrix raw =
      SparseMatrix::FromRawCsr(m->rows(), m->cols(), m->row_offsets(),
                               m->col_indices(), m->values());
  EXPECT_TRUE(raw.Validate().ok());
  EXPECT_EQ(raw.NumNonZeros(), m->NumNonZeros());
}

#if RP_DCHECK_ENABLED

TEST(SparseMatrixValidateDeath, UnsortedColumns) {
  EXPECT_DEATH(
      SparseMatrix::FromRawCsr(1, 3, {0, 2}, {2, 0}, {1.0, 1.0}),
      "not strictly sorted");
}

TEST(SparseMatrixValidateDeath, ColumnOutOfRange) {
  EXPECT_DEATH(SparseMatrix::FromRawCsr(1, 2, {0, 1}, {7}, {1.0}),
               "out of range");
}

TEST(SparseMatrixValidateDeath, NonFiniteValue) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(SparseMatrix::FromRawCsr(1, 1, {0, 1}, {0}, {inf}),
               "non-finite value");
}

TEST(SparseMatrixValidateDeath, BrokenRowPointers) {
  EXPECT_DEATH(SparseMatrix::FromRawCsr(2, 2, {0, 2, 1}, {0}, {1.0}),
               "row pointers");
}

#endif  // RP_DCHECK_ENABLED

// --- Partition label validation ----------------------------------------------

TEST(PartitionLabels, AcceptsDenseCompleteLabelling) {
  EXPECT_TRUE(ValidatePartitionLabels({0, 1, 0, 1}, 4, 2).ok());
  EXPECT_TRUE(ValidatePartitionLabels({}, 0, 0).ok());
}

TEST(PartitionLabels, RejectsSizeMismatch) {
  Status s = ValidatePartitionLabels({0, 1}, 3, 2);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("3 nodes"), std::string::npos);
}

TEST(PartitionLabels, RejectsOutOfRangeLabels) {
  EXPECT_FALSE(ValidatePartitionLabels({0, 2}, 2, 2).ok());
  EXPECT_FALSE(ValidatePartitionLabels({0, -1}, 2, 2).ok());
}

TEST(PartitionLabels, RejectsEmptyPartition) {
  Status s = ValidatePartitionLabels({0, 0, 2, 2}, 4, 3);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty"), std::string::npos);
  // ... unless the caller tolerates sparse labels (objective computations).
  EXPECT_TRUE(ValidatePartitionLabels({0, 0, 2, 2}, 4, 3,
                                      /*require_all_labels_used=*/false)
                  .ok());
}

#if RP_DCHECK_ENABLED

TEST(PartitionLabelsDeath, ObjectiveRejectsNegativeLabel) {
  CsrGraph g = Path3();
  EXPECT_DEATH(AlphaCutObjective(g, {0, -1, 0}), "outside \\[0");
}

TEST(PartitionLabelsDeath, ObjectiveRejectsSizeMismatch) {
  CsrGraph g = Path3();
  EXPECT_DEATH(AlphaCutObjective(g, {0, 1}), "2 vs 3");
}

#endif  // RP_DCHECK_ENABLED

}  // namespace
}  // namespace roadpart
