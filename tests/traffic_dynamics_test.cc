// Dynamics-level tests of the micro-simulator: congestion feedback
// (Greenshields speeds), horizon/throughput behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "traffic/microsim.h"
#include "traffic/router.h"

namespace roadpart {
namespace {

// A single 10-segment one-way corridor, 100 m each.
RoadNetwork Corridor() {
  std::vector<Intersection> pts;
  for (int i = 0; i <= 10; ++i) {
    pts.push_back({{i * 100.0, 0.0}});
  }
  std::vector<RoadSegment> segs;
  for (int i = 0; i < 10; ++i) {
    segs.push_back({i, i + 1, 100.0, 0.0});
  }
  return RoadNetwork::Create(std::move(pts), std::move(segs)).value();
}

// Seconds until `count` vehicles entering at t=0 all arrive.
double TimeToDrain(int count) {
  RoadNetwork net = Corridor();
  std::vector<Trip> trips(count);
  for (Trip& t : trips) {
    t.origin = 0;
    t.destination = 10;
    t.departure_seconds = 0.0;
  }
  MicrosimOptions sim;
  sim.step_seconds = 1.0;
  sim.record_every_seconds = 10.0;
  sim.total_seconds = 36000.0;
  SimulationResult result = RunMicrosim(net, trips, sim).value();
  EXPECT_EQ(result.completed_trips, count);
  // Find the first snapshot where the corridor is empty again.
  for (size_t t = 0; t < result.densities.size(); ++t) {
    double total = 0.0;
    for (double d : result.densities[t]) total += d;
    if (total == 0.0) return (t + 1) * sim.record_every_seconds;
  }
  return 36000.0;
}

TEST(MicrosimDynamicsTest, FreeFlowTravelTime) {
  // One vehicle, 1 km at 13.9 m/s ~ 72 s; drained by the 80 s snapshot.
  double t = TimeToDrain(1);
  EXPECT_GE(t, 70.0);
  EXPECT_LE(t, 110.0);
}

TEST(MicrosimDynamicsTest, CongestionSlowsTraffic) {
  // A platoon of 120 vehicles dumped at once on the corridor (jam density
  // 0.15/m * 100 m = 15 vehicles per segment) must take several times the
  // free-flow time to drain.
  double free_flow = TimeToDrain(1);
  double jammed = TimeToDrain(120);
  EXPECT_GT(jammed, 3.0 * free_flow);
}

TEST(MicrosimDynamicsTest, ThroughputMonotoneInLoad) {
  double t60 = TimeToDrain(60);
  double t120 = TimeToDrain(120);
  EXPECT_GE(t120, t60);
}

TEST(MicrosimDynamicsTest, DensityPeaksWhereVehiclesAre) {
  RoadNetwork net = Corridor();
  std::vector<Trip> trips(10);
  for (Trip& t : trips) {
    t.origin = 0;
    t.destination = 10;
    t.departure_seconds = 0.0;
  }
  MicrosimOptions sim;
  sim.step_seconds = 1.0;
  sim.record_every_seconds = 5.0;
  sim.total_seconds = 20.0;  // vehicles still near the corridor start
  SimulationResult result = RunMicrosim(net, trips, sim).value();
  ASSERT_FALSE(result.densities.empty());
  const auto& snap = result.densities.front();
  // All mass on the first segment at t = 5s (free speed 13.9 m/s < 100 m).
  EXPECT_GT(snap[0], 0.0);
  double tail = 0.0;
  for (int i = 2; i < 10; ++i) tail += snap[i];
  EXPECT_DOUBLE_EQ(tail, 0.0);
}

TEST(MicrosimDynamicsTest, DepartureTimeRespected) {
  RoadNetwork net = Corridor();
  std::vector<Trip> trips = {{0, 10, 100.0}};  // departs at t = 100
  MicrosimOptions sim;
  sim.step_seconds = 1.0;
  sim.record_every_seconds = 50.0;
  sim.total_seconds = 300.0;
  SimulationResult result = RunMicrosim(net, trips, sim).value();
  // First snapshot (t = 50): nothing on the road yet.
  double total = 0.0;
  for (double d : result.densities[0]) total += d;
  EXPECT_DOUBLE_EQ(total, 0.0);
  // Snapshot at t = 150: vehicle en route.
  total = 0.0;
  for (double d : result.densities[2]) total += d;
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace roadpart
