#include <gtest/gtest.h>

#include "core/partition_tracker.h"

namespace roadpart {
namespace {

TEST(PartitionTrackerTest, FirstCallFixesIds) {
  PartitionTracker tracker;
  auto aligned = tracker.Align({0, 0, 1, 1, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 0, 1, 1, 2}));
  EXPECT_EQ(tracker.num_regions_seen(), 3);
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, RelabellingMatchesPrevious) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 1, 1}).ok());
  // Same partitioning, labels swapped: alignment must undo the swap.
  auto aligned = tracker.Align({1, 1, 0, 0});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, ChurnMeasuresMovement) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 1, 1}).ok());
  // One node moves from region 0 to region 1.
  auto aligned = tracker.Align({0, 1, 1, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.25);
}

TEST(PartitionTrackerTest, NewRegionGetsFreshId) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 0, 1, 1, 1}).ok());
  // Region 1 splits in two: the larger piece keeps id 1, the splinter gets
  // a fresh id 2.
  auto aligned = tracker.Align({0, 0, 0, 1, 1, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ((*aligned)[3], 1);
  EXPECT_EQ((*aligned)[4], 1);
  EXPECT_EQ((*aligned)[5], 2);
  EXPECT_EQ(tracker.num_regions_seen(), 3);
}

TEST(PartitionTrackerTest, MergedRegionsKeepDominantId) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 0, 1, 2, 2}).ok());
  // Regions 1 and 2 merge; merged region overlaps region 2 more.
  auto aligned = tracker.Align({0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ((*aligned)[3], 2);
  EXPECT_EQ((*aligned)[4], 2);
  EXPECT_EQ((*aligned)[5], 2);
}

TEST(PartitionTrackerTest, RejectsBadInput) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 1}).ok());
  EXPECT_FALSE(tracker.Align({0, 1, 2}).ok());  // node count changed
  EXPECT_FALSE(tracker.Align({0, -1}).ok());
}

TEST(PartitionTrackerTest, StableAcrossManySnapshots) {
  PartitionTracker tracker;
  std::vector<int> base = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  ASSERT_TRUE(tracker.Align(base).ok());
  for (int step = 0; step < 10; ++step) {
    // Arbitrary relabelling each snapshot.
    std::vector<int> shuffled(base.size());
    for (size_t v = 0; v < base.size(); ++v) {
      shuffled[v] = (base[v] + step) % 3;
    }
    auto aligned = tracker.Align(shuffled);
    ASSERT_TRUE(aligned.ok());
    EXPECT_EQ(*aligned, base) << "step " << step;
    EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
  }
  EXPECT_EQ(tracker.num_regions_seen(), 3);
}

TEST(PartitionTrackerTest, EmptyAssignmentResetsChurnWithoutReference) {
  PartitionTracker tracker;
  // An empty network is a legal (vacuous) first interval: nothing to align,
  // nothing churned, and no reference is fixed.
  auto aligned = tracker.Align({});
  ASSERT_TRUE(aligned.ok());
  EXPECT_TRUE(aligned->empty());
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
  // A later non-empty interval still acts as the first real one.
  ASSERT_TRUE(tracker.Align({0, 0, 1}).ok());
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, RejectsEmptyAfterNonEmptyReference) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 1, 1}).ok());
  ASSERT_TRUE(tracker.Align({0, 1, 1, 1}).ok());
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.25);
  // k=0 against a fixed 4-node reference is a caller bug, not a snapshot;
  // the rejection must leave the tracked state (incl. churn) untouched.
  auto rejected = tracker.Align({});
  EXPECT_FALSE(rejected.ok());
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.25);
  auto next = tracker.Align({0, 1, 1, 1});
  ASSERT_TRUE(next.ok());
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, ChurnSeriesOverManyIntervals) {
  // A 5+ interval series with known per-interval movement: churn must
  // reflect each successful step, and a mid-series rejection must not
  // disturb it.
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 0, 0, 1, 1, 1, 1}).ok());

  struct Step {
    std::vector<int> assignment;
    double churn;
  };
  const std::vector<Step> steps = {
      {{0, 0, 0, 0, 1, 1, 1, 1}, 0.0},    // unchanged
      {{1, 1, 1, 1, 0, 0, 0, 0}, 0.0},    // pure relabel
      {{0, 0, 0, 1, 1, 1, 1, 1}, 0.125},  // one node moves
      {{0, 0, 1, 1, 1, 1, 1, 1}, 0.125},  // another follows
      {{0, 0, 0, 0, 1, 1, 1, 1}, 0.25},   // both move back
  };
  for (size_t i = 0; i < steps.size(); ++i) {
    auto aligned = tracker.Align(steps[i].assignment);
    ASSERT_TRUE(aligned.ok()) << "interval " << i;
    EXPECT_DOUBLE_EQ(tracker.last_churn(), steps[i].churn)
        << "interval " << i;
  }
  EXPECT_FALSE(tracker.Align({0, 1, 2}).ok());  // node count changed
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.25);
}

}  // namespace
}  // namespace roadpart
