#include <gtest/gtest.h>

#include "core/partition_tracker.h"

namespace roadpart {
namespace {

TEST(PartitionTrackerTest, FirstCallFixesIds) {
  PartitionTracker tracker;
  auto aligned = tracker.Align({0, 0, 1, 1, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 0, 1, 1, 2}));
  EXPECT_EQ(tracker.num_regions_seen(), 3);
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, RelabellingMatchesPrevious) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 1, 1}).ok());
  // Same partitioning, labels swapped: alignment must undo the swap.
  auto aligned = tracker.Align({1, 1, 0, 0});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
}

TEST(PartitionTrackerTest, ChurnMeasuresMovement) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 1, 1}).ok());
  // One node moves from region 0 to region 1.
  auto aligned = tracker.Align({0, 1, 1, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(*aligned, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.25);
}

TEST(PartitionTrackerTest, NewRegionGetsFreshId) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 0, 1, 1, 1}).ok());
  // Region 1 splits in two: the larger piece keeps id 1, the splinter gets
  // a fresh id 2.
  auto aligned = tracker.Align({0, 0, 0, 1, 1, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ((*aligned)[3], 1);
  EXPECT_EQ((*aligned)[4], 1);
  EXPECT_EQ((*aligned)[5], 2);
  EXPECT_EQ(tracker.num_regions_seen(), 3);
}

TEST(PartitionTrackerTest, MergedRegionsKeepDominantId) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 0, 0, 1, 2, 2}).ok());
  // Regions 1 and 2 merge; merged region overlaps region 2 more.
  auto aligned = tracker.Align({0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ((*aligned)[3], 2);
  EXPECT_EQ((*aligned)[4], 2);
  EXPECT_EQ((*aligned)[5], 2);
}

TEST(PartitionTrackerTest, RejectsBadInput) {
  PartitionTracker tracker;
  ASSERT_TRUE(tracker.Align({0, 1}).ok());
  EXPECT_FALSE(tracker.Align({0, 1, 2}).ok());  // node count changed
  EXPECT_FALSE(tracker.Align({0, -1}).ok());
}

TEST(PartitionTrackerTest, StableAcrossManySnapshots) {
  PartitionTracker tracker;
  std::vector<int> base = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  ASSERT_TRUE(tracker.Align(base).ok());
  for (int step = 0; step < 10; ++step) {
    // Arbitrary relabelling each snapshot.
    std::vector<int> shuffled(base.size());
    for (size_t v = 0; v < base.size(); ++v) {
      shuffled[v] = (base[v] + step) % 3;
    }
    auto aligned = tracker.Align(shuffled);
    ASSERT_TRUE(aligned.ok());
    EXPECT_EQ(*aligned, base) << "step " << step;
    EXPECT_DOUBLE_EQ(tracker.last_churn(), 0.0);
  }
  EXPECT_EQ(tracker.num_regions_seen(), 3);
}

}  // namespace
}  // namespace roadpart
