// Round-trip property suite for every artifact format the library persists:
// save -> flip one byte at a seeded offset -> load must return
// Status::Corruption — never OK, and never silently different data. Each
// format also proves a clean save/load round trip first, so a failure here
// isolates the envelope, not the codec.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Flips one byte of `path` at each of ~25 seeded offsets (restoring the
// original in between) and asserts the loader reports Corruption each time.
void ExpectOneByteFlipsDetected(
    const std::string& path,
    const std::function<Status(const std::string&)>& load,
    uint64_t seed) {
  auto original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_GT(original->size(), 2u);
  Rng rng(seed);
  for (int trial = 0; trial < 25; ++trial) {
    size_t offset = static_cast<size_t>(
        rng.NextBounded(static_cast<uint64_t>(original->size())));
    unsigned char mask = static_cast<unsigned char>(1 + rng.NextBounded(255));
    std::string mutated = *original;
    mutated[offset] = static_cast<char>(mutated[offset] ^ mask);
    ASSERT_TRUE(AtomicWriteFile(path, mutated).ok());
    Status st = load(path);
    ASSERT_FALSE(st.ok()) << "flip at offset " << offset << " mask "
                          << int(mask) << " loaded successfully";
    EXPECT_EQ(st.code(), StatusCode::kCorruption)
        << "flip at offset " << offset << " mask " << int(mask) << ": "
        << st.ToString();
  }
  ASSERT_TRUE(AtomicWriteFile(path, *original).ok());  // restore
}

class ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto net = GenerateDataset(DatasetPreset::kD1, 5);
    ASSERT_TRUE(net.ok());
    net_ = *net;
  }

  RoadNetwork net_;
};

TEST_F(ArtifactCorruptionTest, RoadNetworkFormat) {
  std::string path = TempPath("corrupt_roadnet.net");
  ASSERT_TRUE(SaveRoadNetwork(net_, path).ok());
  auto loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_segments(), net_.num_segments());
  EXPECT_EQ(loaded->num_intersections(), net_.num_intersections());
  ExpectOneByteFlipsDetected(
      path, [](const std::string& p) { return LoadRoadNetwork(p).status(); },
      101);
  std::remove(path.c_str());
}

TEST_F(ArtifactCorruptionTest, DensitiesFormat) {
  std::string path = TempPath("corrupt_densities.txt");
  std::vector<double> densities = {0.0, 0.125, 3.5, 1.0 / 3.0, 7.75};
  ASSERT_TRUE(SaveDensities(densities, path).ok());
  auto loaded = LoadDensities(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), densities.size());
  ExpectOneByteFlipsDetected(
      path, [](const std::string& p) { return LoadDensities(p).status(); },
      102);
  std::remove(path.c_str());
}

TEST_F(ArtifactCorruptionTest, PartitionCsvFormat) {
  std::string path = TempPath("corrupt_partition.csv");
  std::vector<int> assignment = {0, 1, 1, 2, 0, 2, 1};
  ASSERT_TRUE(SavePartitionCsv(assignment, path).ok());
  auto loaded = LoadPartitionCsv(path, static_cast<int>(assignment.size()));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, assignment);
  ExpectOneByteFlipsDetected(
      path,
      [&](const std::string& p) {
        return LoadPartitionCsv(p, static_cast<int>(assignment.size()))
            .status();
      },
      103);
  std::remove(path.c_str());
}

TEST_F(ArtifactCorruptionTest, SnapshotSeriesFormat) {
  std::string path = TempPath("corrupt_series.csv");
  SnapshotSeries series(3);
  ASSERT_TRUE(series.Append(120.0, {0.1, 0.2, 0.3}).ok());
  ASSERT_TRUE(series.Append(240.0, {0.4, 0.5, 0.6}).ok());
  ASSERT_TRUE(SaveSnapshotSeries(series, path).ok());
  auto loaded = LoadSnapshotSeries(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_snapshots(), 2);
  ExpectOneByteFlipsDetected(
      path,
      [](const std::string& p) { return LoadSnapshotSeries(p).status(); },
      104);
  std::remove(path.c_str());
}

TEST_F(ArtifactCorruptionTest, SupergraphFormat) {
  std::string path = TempPath("corrupt_supergraph.sg");
  RoadGraph rg = RoadGraph::FromNetwork(net_);
  SupergraphMinerOptions options;
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg.ok()) << sg.status().ToString();
  ASSERT_TRUE(SaveSupergraph(*sg, path).ok());
  auto loaded = LoadSupergraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_supernodes(), sg->num_supernodes());
  ExpectOneByteFlipsDetected(
      path, [](const std::string& p) { return LoadSupergraph(p).status(); },
      105);
  std::remove(path.c_str());
}

TEST_F(ArtifactCorruptionTest, EdgeListFormat) {
  std::string nodes = TempPath("corrupt_nodes.csv");
  std::string edges = TempPath("corrupt_edges.csv");
  ASSERT_TRUE(SaveEdgeListNetwork(net_, nodes, edges).ok());
  auto loaded = LoadEdgeListNetwork(nodes, edges);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_segments(), net_.num_segments());
  ExpectOneByteFlipsDetected(
      nodes,
      [&](const std::string& p) {
        return LoadEdgeListNetwork(p, edges).status();
      },
      106);
  ExpectOneByteFlipsDetected(
      edges,
      [&](const std::string& p) {
        return LoadEdgeListNetwork(nodes, p).status();
      },
      107);
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

}  // namespace
}  // namespace roadpart
