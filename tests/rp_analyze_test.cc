// Fixture corpus for tools/analyze: the token-level lexer, every rule's
// positive/negative fixtures, the regressions the old line-oriented linter
// got wrong (literals and spliced comments leaking back into code), the
// include-graph pass (layering, cycles, .cc includes), inline suppressions,
// the baseline, and both output formats.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyzer.h"
#include "tools/analyze/include_graph.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/rules.h"

namespace roadpart {
namespace analyze {
namespace {

namespace fs = std::filesystem;

std::vector<Finding> Analyze(const std::string& path, const std::string& source,
                         std::vector<std::string> status_fns = {}) {
  return AnalyzeSource(path, source, status_fns);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesBasicDeclaration) {
  LexedSource lexed = Lex("int x = 42;");
  ASSERT_EQ(lexed.tokens.size(), 5u);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(lexed.tokens[1].text, "x");
  EXPECT_EQ(lexed.tokens[2].text, "=");
  EXPECT_EQ(lexed.tokens[3].text, "42");
  EXPECT_EQ(lexed.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(lexed.tokens[4].text, ";");
}

TEST(LexerTest, SplicedIdentifierIsOneTokenWithPhysicalLines) {
  LexedSource lexed = Lex("ab\\\ncd;\nnext");
  ASSERT_GE(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].text, "abcd");
  EXPECT_EQ(lexed.tokens[0].line, 1);
  EXPECT_EQ(lexed.tokens[1].text, ";");
  EXPECT_EQ(lexed.tokens[1].line, 2);  // physical line after the splice
  EXPECT_EQ(lexed.tokens[2].text, "next");
  EXPECT_EQ(lexed.tokens[2].line, 3);
}

TEST(LexerTest, StringAndCharContentsAreBlanked) {
  LexedSource lexed = Lex("const char* s = \"rand()\"; char c = 'x';");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "\"\"");
    }
    if (t.kind == TokenKind::kChar) {
      EXPECT_EQ(t.text, "''");
    }
  }
}

TEST(LexerTest, RawStringContentsAreBlanked) {
  // The pre-analyzer stripper terminated the literal at the first inner
  // quote, leaking `rand();` into code position.
  LexedSource lexed = Lex("auto s = R\"(call \"x\" rand();)\"; int y;");
  int strings = 0;
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "call");
    strings += t.kind == TokenKind::kString ? 1 : 0;
  }
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(lexed.tokens.back().text, ";");
}

TEST(LexerTest, RawStringWithDelimiterAndLiteralBackslashNewline) {
  // Inside a raw string a backslash before the newline is content, not a
  // splice; the literal still ends only at its delimiter.
  LexedSource lexed = Lex("auto s = R\"ab(x\\\ny)ab\";\nint tail;");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.back().text, ";");
  EXPECT_EQ(lexed.tokens[lexed.tokens.size() - 2].text, "tail");
  // The literal spans two physical lines, so `tail` is on line 3.
  EXPECT_EQ(lexed.tokens[lexed.tokens.size() - 2].line, 3);
}

TEST(LexerTest, SplicedLineCommentSwallowsContinuationLines) {
  LexedSource lexed = Lex("// hidden \\\nrand();\nint x;");
  ASSERT_EQ(lexed.tokens.size(), 3u);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].line, 3);
}

TEST(LexerTest, RecordsQuotedAndAngledIncludes) {
  LexedSource lexed =
      Lex("#include \"common/status.h\"\n#include <vector>\nint x;\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].target, "common/status.h");
  EXPECT_FALSE(lexed.includes[0].angled);
  EXPECT_EQ(lexed.includes[0].line, 1);
  EXPECT_EQ(lexed.includes[1].target, "vector");
  EXPECT_TRUE(lexed.includes[1].angled);
  EXPECT_EQ(lexed.includes[1].line, 2);
}

TEST(LexerTest, LessThanInCodeIsNotAnIncludePath) {
  LexedSource lexed = Lex("#include MACRO_HDR\nbool b = a < c && d > e;\n");
  EXPECT_TRUE(lexed.includes.empty());
  bool saw_lt = false;
  for (const Token& t : lexed.tokens) saw_lt |= t.text == "<";
  EXPECT_TRUE(saw_lt);
}

TEST(LexerTest, DetectsClassicIncludeGuard) {
  LexedSource lexed =
      Lex("// header comment\n#ifndef FOO_H_\n#define FOO_H_\nint x;\n"
          "#endif\n");
  EXPECT_TRUE(lexed.has_include_guard);
  EXPECT_EQ(lexed.guard_name, "FOO_H_");
  EXPECT_FALSE(lexed.has_pragma_once);
}

TEST(LexerTest, CodeBeforeIfndefIsNotAGuard) {
  LexedSource lexed = Lex("int x;\n#ifndef FOO_H_\n#define FOO_H_\n#endif\n");
  EXPECT_FALSE(lexed.has_include_guard);
}

TEST(LexerTest, MismatchedDefineIsNotAGuard) {
  LexedSource lexed = Lex("#ifndef FOO_H_\n#define BAR_H_\n#endif\n");
  EXPECT_FALSE(lexed.has_include_guard);
}

TEST(LexerTest, DetectsPragmaOnce) {
  LexedSource lexed = Lex("#pragma once\nint x;\n");
  EXPECT_TRUE(lexed.has_pragma_once);
  EXPECT_FALSE(lexed.has_include_guard);
}

TEST(LexerTest, SuppressionCoversCommentLinesAndNextLine) {
  LexedSource lexed =
      Lex("int a;\n// rp-analyze: allow(rule-a, rule-b)\nint b;\nint c;\n");
  EXPECT_TRUE(lexed.LineAllowed("rule-a", 2));
  EXPECT_TRUE(lexed.LineAllowed("rule-a", 3));
  EXPECT_TRUE(lexed.LineAllowed("rule-b", 3));
  EXPECT_FALSE(lexed.LineAllowed("rule-a", 4));
  EXPECT_FALSE(lexed.LineAllowed("rule-c", 3));
}

TEST(StripTest, PreservesShapeAndBlanksLiteralContents) {
  const std::string src = "int x = 1; // note\nconst char* s = \"hide\";\n";
  std::string out = StripCommentsAndStrings(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("note"), std::string::npos);
  EXPECT_EQ(out.find("hide"), std::string::npos);
  EXPECT_NE(out.find("int x = 1;"), std::string::npos);
  EXPECT_NE(out.find('"'), std::string::npos);  // delimiters stay
}

TEST(StripTest, RawStringContentsDoNotLeakIntoCode) {
  const std::string src = "auto s = R\"(if \"q\" rand();)\";\nint keep;\n";
  std::string out = StripCommentsAndStrings(src);
  ASSERT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
}

TEST(StripTest, BackslashContinuedLineCommentStaysAComment) {
  const std::string src = "// first \\\nrand();\nint keep;\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule: banned-nondeterminism
// ---------------------------------------------------------------------------

TEST(NondeterminismRule, FlagsRandSrandRandomDeviceAndWallClockSeed) {
  auto findings = Analyze("src/core/a.cc",
                      "int f() { srand(time(nullptr)); return rand(); }\n"
                      "std::random_device rd;\n");
  EXPECT_EQ(CountRule(findings, "banned-nondeterminism"), 4);
}

TEST(NondeterminismRule, RngModuleIsExempt) {
  auto findings = Analyze("src/common/rng.cc", "int f() { return rand(); }\n");
  EXPECT_EQ(CountRule(findings, "banned-nondeterminism"), 0);
}

TEST(NondeterminismRule, RegressionNoFiringInsideRawStringOrComment) {
  auto findings = Analyze("src/core/a.cc",
                      "const char* s = R\"(rand(); srand(1);)\";\n"
                      "// rand() is documented here\n"
                      "/* std::random_device */\n"
                      "int x;\n");
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

// ---------------------------------------------------------------------------
// Rule: print-in-library
// ---------------------------------------------------------------------------

TEST(PrintRule, FlagsPrintfFamilyAndStreamsUnderSrc) {
  auto findings = Analyze("src/core/a.cc",
                      "void f() { printf(\"x\"); std::cout << 1; }\n");
  EXPECT_EQ(CountRule(findings, "print-in-library"), 2);
}

TEST(PrintRule, ToolsAndLoggingSinkAreExempt) {
  const std::string src = "void f() { printf(\"x\"); }\n";
  EXPECT_EQ(CountRule(Analyze("tools/foo.cc", src), "print-in-library"), 0);
  EXPECT_EQ(CountRule(Analyze("src/common/logging.cc", src), "print-in-library"),
            0);
}

TEST(PrintRule, RegressionNoFiringInsideSplicedComment) {
  auto findings = Analyze("src/core/a.cc",
                      "// debug with \\\nprintf(\"x\");\nint y;\n");
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

// ---------------------------------------------------------------------------
// Rule: discarded-status
// ---------------------------------------------------------------------------

TEST(DiscardedStatusRule, FlagsBareAndMemberChainCalls) {
  auto findings = Analyze("src/core/a.cc",
                      "void f() { SaveThing(p); obj.SaveThing(q); }\n",
                      {"SaveThing"});
  EXPECT_EQ(CountRule(findings, "discarded-status"), 2);
}

TEST(DiscardedStatusRule, HandledCallsAreNotFlagged) {
  auto findings = Analyze("src/core/a.cc",
                      "void f() {\n"
                      "  Status s = SaveThing(p);\n"
                      "  RP_CHECK_OK(SaveThing(q));\n"
                      "  if (SaveThing(r).ok()) return;\n"
                      "}\n",
                      {"SaveThing"});
  EXPECT_EQ(CountRule(findings, "discarded-status"), 0);
}

TEST(DiscardedStatusRule, RegressionNoFiringInsideStringLiteral) {
  auto findings = Analyze("src/core/a.cc",
                      "const char* k = \"SaveThing(p);\"; int x;\n",
                      {"SaveThing"});
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

// ---------------------------------------------------------------------------
// Rule: parallelfor-shared-mutation
// ---------------------------------------------------------------------------

TEST(ParallelForRule, FlagsCompoundAssignToRefCapture) {
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n) {\n"
      "  int total = 0;\n"
      "  ParallelFor(0, n, [&](size_t i) { total += i; });\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(ParallelForRule, FlagsPlainAssignToRefCapture) {
  // The legacy rule only caught compound ops and growers; a plain `=` race
  // slipped through.
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n) {\n"
      "  size_t best = 0;\n"
      "  ParallelForTasks(0, n, [&](size_t i) { best = i; });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 1);
}

TEST(ParallelForRule, FlagsContainerGrowth) {
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n, std::vector<int>& out) {\n"
      "  ParallelFor(0, n, [&](size_t i) { out.push_back(i); });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 1);
}

TEST(ParallelForRule, PerSlotWritesAreSanctioned) {
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n, std::vector<int>& out, Matrix& m) {\n"
      "  ParallelFor(0, n, [&](size_t i) {\n"
      "    out[i] = 2 * i;\n"
      "    out[i] += 1;\n"
      "    m(i, 0) = 1.0;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 0);
}

TEST(ParallelForRule, BodyLocalsAndValueCapturesAreSafe) {
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n) {\n"
      "  int seed = 1;\n"
      "  ParallelFor(0, n, [=](size_t i) { int acc = seed; acc += i; });\n"
      "  ParallelFor(0, n, [seed](size_t i) { int acc = seed; acc += i; });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 0);
}

TEST(ParallelForRule, RegressionNoFiringOnMutationInComment) {
  auto findings = Analyze(
      "src/core/a.cc",
      "void f(size_t n) {\n"
      "  int total = 0;\n"
      "  ParallelFor(0, n, [&](size_t i) {\n"
      "    // total += i; (documented non-example)\n"
      "    (void)total;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 0);
}

TEST(ParallelForRule, ServeRuntimePerSlotAnswerJoinIsSanctioned) {
  // The serving runtime's fan-out idiom: each batch formats into a local
  // buffer, then moves it into its own slot; the serial join fixes order.
  auto findings = Analyze(
      "src/serve/serve_loop.cc",
      "void f(int num_batches, std::vector<std::string>& answers) {\n"
      "  ParallelForTasks(num_batches, [&](int b) {\n"
      "    std::string local;\n"
      "    local += \"answer\";\n"
      "    answers[b] = std::move(local);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 0);
}

TEST(ParallelForRule, ServeRuntimeSharedStatsMutationIsFlagged) {
  // The anti-idiom the runtime must never regress to: tallying service
  // counters from inside the fan-out instead of the serial phase.
  auto findings = Analyze(
      "src/serve/serve_loop.cc",
      "void f(int num_batches, ServeBatchStats& stats) {\n"
      "  ParallelForTasks(num_batches, [&](int b) {\n"
      "    stats.served += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 1);
}

TEST(ParallelForRule, RepartitionPerSlotRegionOutcomeJoinIsSanctioned) {
  // The incremental repartitioner's fan-out idiom: each dirty region
  // computes a whole RegionOutcome into a local, moves it into its own
  // slot, and the serial merge phase walks the slots in region order.
  auto findings = Analyze(
      "src/core/distributed_repartition.cc",
      "void f(int dirty_count, std::vector<RegionOutcome>& outcomes) {\n"
      "  ParallelForTasks(dirty_count, [&](int slot) {\n"
      "    RegionOutcome out;\n"
      "    out.k = 2;\n"
      "    out.local.assign(4, 0);\n"
      "    outcomes[slot] = std::move(out);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 0);
}

TEST(ParallelForRule, RepartitionSharedStatsFromFanOutIsFlagged) {
  // The anti-idiom for the same code: bumping refresh counters (or engine
  // warnings) from inside the fan-out instead of the serial merge.
  auto findings = Analyze(
      "src/core/distributed_repartition.cc",
      "void f(int dirty_count, RepartitionRefreshStats& stats) {\n"
      "  ParallelForTasks(dirty_count, [&](int slot) {\n"
      "    stats.warm_started += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallelfor-shared-mutation"), 1);
}

// ---------------------------------------------------------------------------
// Rule: unchecked-eigen-convergence
// ---------------------------------------------------------------------------

TEST(EigenRule, FlagsEigenvectorUseWithoutConvergenceMention) {
  auto findings =
      Analyze("src/core/a.cc", "void f(const EigenResult& r) {\n"
                           "  auto v = r.eigenvectors;\n"
                           "}\n");
  EXPECT_EQ(CountRule(findings, "unchecked-eigen-convergence"), 1);
}

TEST(EigenRule, ConvergenceMentionAnywhereInFileSilencesIt) {
  auto findings =
      Analyze("src/core/a.cc", "void f(const EigenResult& r) {\n"
                           "  if (!r.converged) return;\n"
                           "  auto v = r.eigenvectors;\n"
                           "}\n");
  EXPECT_EQ(CountRule(findings, "unchecked-eigen-convergence"), 0);
}

TEST(EigenRule, LinalgInternalsAreExempt) {
  auto findings =
      Analyze("src/linalg/x.cc", "auto v = r.eigenvectors;\n");
  EXPECT_EQ(CountRule(findings, "unchecked-eigen-convergence"), 0);
}

TEST(EigenRule, RegressionCommentMentionDoesNotCountAsUse) {
  // `.eigenvectors` inside a block comment must neither fire the rule nor
  // count as a convergence consult.
  auto findings =
      Analyze("src/core/a.cc", "/* r.eigenvectors is consumed below */\nint x;\n");
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

// ---------------------------------------------------------------------------
// Rule: raw-ofstream-write
// ---------------------------------------------------------------------------

TEST(OfstreamRule, FlagsOfstreamAndFopenUnderSrc) {
  auto findings = Analyze("src/core/io.cc",
                      "void f() { std::ofstream o(p); fopen(p, m); }\n");
  EXPECT_EQ(CountRule(findings, "raw-ofstream-write"), 2);
}

TEST(OfstreamRule, TestsAndDurableIoAreExempt) {
  const std::string src = "std::ofstream o(p);\n";
  EXPECT_EQ(CountRule(Analyze("tests/a.cc", src), "raw-ofstream-write"), 0);
  EXPECT_EQ(CountRule(Analyze("src/common/durable_io.cc", src),
                      "raw-ofstream-write"),
            0);
}

TEST(OfstreamRule, RegressionNoFiringInsideStringOrSplicedComment) {
  auto findings = Analyze("src/core/io.cc",
                      "const char* a = \"std::ofstream\";\n"
                      "// writer uses \\\nofstream internally\n"
                      "int x;\n");
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

// ---------------------------------------------------------------------------
// Rules: missing-include-guard / header-self-containment
// ---------------------------------------------------------------------------

TEST(GuardRule, FlagsHeaderWithoutGuardOrPragmaOnce) {
  auto findings = Analyze("src/core/foo.h", "int x;\n");
  ASSERT_EQ(CountRule(findings, "missing-include-guard"), 1);
  EXPECT_EQ(RuleSeverity("missing-include-guard"), Severity::kError);
}

TEST(GuardRule, GuardedOrPragmaOnceHeadersPass) {
  EXPECT_EQ(CountRule(Analyze("src/core/foo.h",
                          "#ifndef FOO_H_\n#define FOO_H_\nint x;\n#endif\n"),
                      "missing-include-guard"),
            0);
  EXPECT_EQ(CountRule(Analyze("src/core/foo.h", "#pragma once\nint x;\n"),
                      "missing-include-guard"),
            0);
  EXPECT_EQ(CountRule(Analyze("src/core/foo.cc", "int x;\n"),
                      "missing-include-guard"),
            0);
}

TEST(SelfContainmentRule, FlagsStdUseWithoutItsHeaderOncePerHeader) {
  auto findings = Analyze("src/core/foo.h",
                      "#ifndef FOO_H_\n#define FOO_H_\n"
                      "#include <vector>\n"
                      "std::string A();\n"
                      "std::string B();\n"
                      "std::vector<int> C();\n"
                      "std::pair<int, int> D();\n"
                      "#endif\n");
  // <string> and <utility> are missing; <vector> is present; one finding
  // per missing header regardless of use count.
  EXPECT_EQ(CountRule(findings, "header-self-containment"), 2);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kWarning);
  }
}

TEST(SelfContainmentRule, OnlySrcAndToolsHeadersAreChecked) {
  const std::string src =
      "#ifndef FOO_H_\n#define FOO_H_\nstd::string A();\n#endif\n";
  EXPECT_EQ(CountRule(Analyze("tests/foo.h", src), "header-self-containment"), 0);
  EXPECT_EQ(CountRule(Analyze("src/core/foo.cc", "std::string A();\n"),
                      "header-self-containment"),
            0);
  EXPECT_EQ(CountRule(Analyze("tools/analyze/foo.h", src),
                      "header-self-containment"),
            1);
}

// ---------------------------------------------------------------------------
// Inline suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, TrailingAllowSilencesThatRuleOnThatLine) {
  // A suppression covers its own line(s) plus the following line, so the
  // unsuppressed call sits two lines down.
  auto findings = Analyze(
      "src/core/a.cc",
      "int f() { return rand(); }  // rp-analyze: allow(banned-nondeterminism)\n"
      "\n"
      "int g() { return rand(); }\n");
  ASSERT_EQ(CountRule(findings, "banned-nondeterminism"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SuppressionTest, PrecedingLineAllowCoversNextLine) {
  auto findings = Analyze("src/core/a.cc",
                      "// rp-analyze: allow(banned-nondeterminism)\n"
                      "int f() { return rand(); }\n");
  EXPECT_EQ(CountRule(findings, "banned-nondeterminism"), 0);
}

TEST(SuppressionTest, AllowOfOtherRuleDoesNotSuppress) {
  auto findings = Analyze("src/core/a.cc",
                      "// rp-analyze: allow(print-in-library)\n"
                      "int f() { return rand(); }\n");
  EXPECT_EQ(CountRule(findings, "banned-nondeterminism"), 1);
}

// ---------------------------------------------------------------------------
// Catalog / severity / finding formatting
// ---------------------------------------------------------------------------

TEST(CatalogTest, EveryRuleHasStableIdAndSeverity) {
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  ASSERT_EQ(catalog.size(), 12u);
  std::vector<std::string> ids;
  for (const RuleInfo& info : catalog) ids.push_back(info.id);
  for (const char* legacy :
       {"banned-nondeterminism", "print-in-library", "discarded-status",
        "parallelfor-shared-mutation", "unchecked-eigen-convergence",
        "raw-ofstream-write"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), legacy), ids.end()) << legacy;
  }
  EXPECT_EQ(RuleSeverity("header-self-containment"), Severity::kWarning);
  EXPECT_EQ(RuleSeverity("include-cycle"), Severity::kError);
  EXPECT_EQ(RuleSeverity("no-such-rule"), Severity::kError);
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "warning");
}

TEST(FindingTest, ToStringMatchesLegacyFormat) {
  Finding f{"src/a.cc", 7, "print-in-library", Severity::kError, "msg", false};
  EXPECT_EQ(f.ToString(), "src/a.cc:7: [print-in-library] msg");
}

TEST(StatusNamesTest, CollectsStatusAndResultReturningDeclarations) {
  LexedSource lexed =
      Lex("Status Save(const std::string& p);\n"
          "Result<std::vector<int>> Load(int k);\n"
          "int NotOne();\n"
          "Result<std::map<int, int>> Nested();\n");
  std::vector<std::string> names = CollectStatusFunctionNames(lexed);
  EXPECT_EQ(names, (std::vector<std::string>{"Load", "Nested", "Save"}));
}

// ---------------------------------------------------------------------------
// Layer spec / include graph
// ---------------------------------------------------------------------------

TEST(LayerSpecTest, ParsesModulesWildcardsAndComments) {
  auto spec = ParseLayerSpec(
      "# comment\n"
      "common:\n"
      "graph: common   # inline comment\n"
      "tools: *\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->Declared("common"));
  EXPECT_TRUE(spec->Declared("graph"));
  EXPECT_TRUE(spec->Declared("tools"));
  EXPECT_FALSE(spec->Declared("mystery"));
  EXPECT_TRUE(spec->Allows("graph", "common"));
  EXPECT_FALSE(spec->Allows("common", "graph"));
  EXPECT_TRUE(spec->Allows("graph", "graph"));  // same-module always fine
  EXPECT_TRUE(spec->Allows("tools", "graph"));  // wildcard sees everything
}

TEST(LayerSpecTest, RejectsMalformedAndCyclicSpecs) {
  EXPECT_FALSE(ParseLayerSpec("no-colon-here\n").ok());
  EXPECT_FALSE(ParseLayerSpec("a:\na: b\n").ok());          // duplicate
  EXPECT_FALSE(ParseLayerSpec("a: * b\n").ok());            // * plus deps
  EXPECT_FALSE(ParseLayerSpec("a: b\nb: a\n").ok());        // cyclic layering
  EXPECT_FALSE(ParseLayerSpec(": b\n").ok());               // empty module
}

TEST(ModuleOfTest, MapsPathsToModules) {
  EXPECT_EQ(ModuleOf("src/core/partitioner.cc"), "core");
  EXPECT_EQ(ModuleOf("src/top.h"), "src");
  EXPECT_EQ(ModuleOf("tools/analyze/lexer.h"), "tools");
  EXPECT_EQ(ModuleOf("tests/foo_test.cc"), "tests");
  EXPECT_EQ(ModuleOf("bench/bench_main.cc"), "bench");
}

TEST(IncludeGraphTest, FlagsLayeringViolationAndAllowsDeclaredEdges) {
  auto spec = ParseLayerSpec("common:\ngraph: common\n");
  ASSERT_TRUE(spec.ok());
  std::vector<IncludeGraphFile> files(2);
  files[0].path = "src/common/x.h";
  files[0].edges = {{"src/graph/y.h", 4}};  // upward include
  files[1].path = "src/graph/y.h";
  auto findings = CheckIncludeGraph(files, &*spec);
  ASSERT_EQ(CountRule(findings, "layering-violation"), 1);
  EXPECT_EQ(findings[0].file, "src/common/x.h");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(IncludeGraphTest, FlagsIncludeOfCcFile) {
  std::vector<IncludeGraphFile> files(1);
  files[0].path = "src/core/a.cc";
  files[0].cc_includes = {{"core/impl.cc", 9}};
  auto findings = CheckIncludeGraph(files, nullptr);
  ASSERT_EQ(CountRule(findings, "include-of-cc"), 1);
  EXPECT_EQ(findings[0].line, 9);
}

TEST(IncludeGraphTest, ReportsUndeclaredModuleOnce) {
  auto spec = ParseLayerSpec("common:\n");
  ASSERT_TRUE(spec.ok());
  std::vector<IncludeGraphFile> files(2);
  files[0].path = "src/mystery/a.h";
  files[1].path = "src/mystery/b.h";
  auto findings = CheckIncludeGraph(files, &*spec);
  EXPECT_EQ(CountRule(findings, "undeclared-module"), 1);
}

TEST(IncludeGraphTest, FindsCycleOnceAnchoredAtSmallestMember) {
  std::vector<IncludeGraphFile> files(3);
  files[0].path = "src/core/a.h";
  files[0].edges = {{"src/core/b.h", 3}};
  files[1].path = "src/core/b.h";
  files[1].edges = {{"src/core/c.h", 5}};
  files[2].path = "src/core/c.h";
  files[2].edges = {{"src/core/a.h", 7}};
  auto findings = CheckIncludeGraph(files, nullptr);
  ASSERT_EQ(CountRule(findings, "include-cycle"), 1);
  EXPECT_EQ(findings[0].file, "src/core/a.h");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("src/core/a.h -> src/core/b.h"),
            std::string::npos)
      << findings[0].message;
}

TEST(IncludeGraphTest, AcyclicGraphIsClean) {
  auto spec = ParseLayerSpec("common:\ngraph: common\ncore: common graph\n");
  ASSERT_TRUE(spec.ok());
  std::vector<IncludeGraphFile> files(3);
  files[0].path = "src/common/x.h";
  files[1].path = "src/graph/y.h";
  files[1].edges = {{"src/common/x.h", 2}};
  files[2].path = "src/core/z.cc";
  files[2].edges = {{"src/graph/y.h", 2}, {"src/common/x.h", 3}};
  EXPECT_TRUE(CheckIncludeGraph(files, &*spec).empty());
}

// ---------------------------------------------------------------------------
// AnalyzeTree end-to-end over a fixture repo on disk
// ---------------------------------------------------------------------------

class AnalyzeTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "rp_analyze_fixture";
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "common");
    fs::create_directories(root_ / "src" / "graph");
    fs::create_directories(root_ / "src" / "core");
    fs::create_directories(root_ / "tools" / "analyze");
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFixture(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel, std::ios::binary);
    ASSERT_TRUE(out.good()) << rel;
    out << text;
  }

  fs::path root_;
};

TEST_F(AnalyzeTreeTest, FindsLayeringCycleAndBaselinedFindings) {
  WriteFixture("tools/analyze/layers.txt",
               "common:\ngraph: common\ncore: common graph\n");
  WriteFixture("src/common/base.h",
               "#ifndef BASE_H_\n#define BASE_H_\n"
               "inline int Base() { return 1; }\n#endif\n");
  // Upward include: common may not depend on graph.
  WriteFixture("src/common/oops.h",
               "#ifndef OOPS_H_\n#define OOPS_H_\n"
               "#include \"graph/csr.h\"\n#endif\n");
  // Same violation, but explicitly suppressed inline.
  WriteFixture("src/common/oops2.h",
               "#ifndef OOPS2_H_\n#define OOPS2_H_\n"
               "#include \"graph/csr.h\"  "
               "// rp-analyze: allow(layering-violation)\n#endif\n");
  WriteFixture("src/graph/csr.h",
               "#ifndef CSR_H_\n#define CSR_H_\n"
               "#include \"common/base.h\"\n#endif\n");
  // Two-file include cycle.
  WriteFixture("src/core/a.h",
               "#ifndef A_H_\n#define A_H_\n"
               "#include \"core/b.h\"\n#endif\n");
  WriteFixture("src/core/b.h",
               "#ifndef B_H_\n#define B_H_\n"
               "#include \"core/a.h\"\n#endif\n");
  // A banned call (baselined) and an include of a .cc file (new).
  WriteFixture("src/core/bad.cc",
               "#include \"core/impl.cc\"\n"
               "int Bad() { return rand(); }\n");
  WriteFixture("baseline.txt",
               "# fixture baseline\n"
               "banned-nondeterminism src/core/bad.cc legacy seed\n"
               "print-in-library src/core/bad.cc no longer fires\n");

  AnalyzeOptions options;
  options.layers_file = (root_ / "tools/analyze/layers.txt").string();
  options.baseline_file = (root_ / "baseline.txt").string();
  auto report = AnalyzeTree(root_.string(), {(root_ / "src").string()},
                            options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(CountRule(report->findings, "layering-violation"), 1);
  EXPECT_EQ(CountRule(report->findings, "include-cycle"), 1);
  EXPECT_EQ(CountRule(report->findings, "include-of-cc"), 1);
  EXPECT_EQ(CountRule(report->findings, "banned-nondeterminism"), 1);
  EXPECT_EQ(CountRule(report->findings, "missing-include-guard"), 0);
  ASSERT_EQ(report->findings.size(), 4u) << FormatText(*report);

  // Sorted by (file, line, rule); the baselined finding is annotated but
  // still reported.
  EXPECT_EQ(report->findings[0].file, "src/common/oops.h");
  EXPECT_EQ(report->findings[1].file, "src/core/a.h");
  EXPECT_EQ(report->findings[1].rule, "include-cycle");
  for (const Finding& f : report->findings) {
    EXPECT_EQ(f.baselined, f.rule == "banned-nondeterminism")
        << f.ToString();
  }
  EXPECT_EQ(report->baselined_count, 1);
  EXPECT_EQ(report->new_count, 3);
  ASSERT_EQ(report->stale_baseline.size(), 1u);
  EXPECT_EQ(report->stale_baseline[0], "print-in-library src/core/bad.cc");
}

TEST_F(AnalyzeTreeTest, CleanTreeProducesEmptyReport) {
  WriteFixture("tools/analyze/layers.txt", "common:\ngraph: common\n");
  WriteFixture("src/common/base.h",
               "#ifndef BASE_H_\n#define BASE_H_\n"
               "inline int Base() { return 1; }\n#endif\n");
  WriteFixture("src/graph/csr.h",
               "#ifndef CSR_H_\n#define CSR_H_\n"
               "#include \"common/base.h\"\n#endif\n");
  AnalyzeOptions options;
  options.layers_file = (root_ / "tools/analyze/layers.txt").string();
  auto report = AnalyzeTree(root_.string(), {(root_ / "src").string()},
                            options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->findings.empty()) << FormatText(*report);
  EXPECT_EQ(report->new_count, 0);
  std::string text = FormatText(*report);
  EXPECT_NE(text.find("0 new"), std::string::npos) << text;
}

TEST_F(AnalyzeTreeTest, NoLayersFileSkipsLayeringButKeepsCycles) {
  WriteFixture("src/core/a.h",
               "#ifndef A_H_\n#define A_H_\n"
               "#include \"core/b.h\"\n#endif\n");
  WriteFixture("src/core/b.h",
               "#ifndef B_H_\n#define B_H_\n"
               "#include \"core/a.h\"\n#endif\n");
  AnalyzeOptions options;  // no layers_file
  auto report = AnalyzeTree(root_.string(), {(root_ / "src").string()},
                            options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(CountRule(report->findings, "include-cycle"), 1);
  EXPECT_EQ(CountRule(report->findings, "layering-violation"), 0);
  EXPECT_EQ(CountRule(report->findings, "undeclared-module"), 0);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

AnalyzeReport TwoFindingReport() {
  AnalyzeReport report;
  report.findings.push_back({"src/a.cc", 3, "print-in-library",
                             Severity::kError, "printf() in library code",
                             false});
  report.findings.push_back({"src/b.h", 1, "header-self-containment",
                             Severity::kWarning,
                             "uses std::string \"quoted\"", true});
  report.stale_baseline.push_back("raw-ofstream-write src/gone.cc");
  report.new_count = 1;
  report.baselined_count = 1;
  return report;
}

TEST(FormatTest, TextReportListsFindingsBaselineMarksAndSummary) {
  std::string text = FormatText(TwoFindingReport());
  EXPECT_NE(text.find("src/a.cc:3: [print-in-library] printf() in library "
                      "code\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("(baselined)"), std::string::npos);
  EXPECT_NE(text.find("stale baseline entry"), std::string::npos);
  EXPECT_NE(text.find("2 finding(s): 1 new, 1 baselined, 1 stale"),
            std::string::npos)
      << text;
}

TEST(FormatTest, JsonReportHasStableKeysAndEscaping) {
  std::string json = FormatJson(TwoFindingReport());
  EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"baselined\": true"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stale_baseline\": ["), std::string::npos);
  EXPECT_NE(json.find("\"summary\": {\"total\": 2, \"new\": 1, "
                      "\"baselined\": 1, \"stale_baseline\": 1}"),
            std::string::npos)
      << json;
}

TEST(FormatTest, EmptyReportJsonIsWellFormedWithEmptyArrays) {
  AnalyzeReport report;
  std::string json = FormatJson(report);
  EXPECT_NE(json.find("\"findings\": [],"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total\": 0"), std::string::npos);
}

}  // namespace
}  // namespace analyze
}  // namespace roadpart
