// Property suite for the partition-serving read path: on seeded random
// networks and query clouds, the KD-tree + grid index must return EXACTLY
// the answer of the O(n) brute-force nearest-segment scan — same segment id,
// bit-identical distance, same partition — including on the degenerate
// geometry the index is most likely to get wrong (duplicate two-way
// segments, collinear chains, single-segment and zero-area networks,
// queries far outside the bounding box).
//
// The tie-break rule under test (documented in serve/spatial_index.h): among
// segments at bit-identical squared distance, the smallest segment id wins.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::vector<int> RandomLabels(int num_segments, int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels(static_cast<size_t>(num_segments));
  for (int& l : labels) l = static_cast<int>(rng.NextBounded(k));
  if (num_segments > 0) labels[0] = k - 1;  // keep num_partitions() == k
  return labels;
}

Snapshot MustBuild(const RoadNetwork& net, const std::vector<int>& labels) {
  auto snap = Snapshot::Build(net, labels);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return std::move(snap).value();
}

/// Seeded query cloud: 60% uniform over the (slightly inflated) bounding
/// box, 20% jittered onto random segments (exercises near-zero and tied
/// distances), 20% far outside the box (exercises clamped grid rings).
std::vector<Point> QueryCloud(const RoadNetwork& net, int count,
                              uint64_t seed) {
  Rng rng(seed);
  const BoundingBox box = net.Bounds();
  const double w = std::max(box.max.x - box.min.x, 1.0);
  const double h = std::max(box.max.y - box.min.y, 1.0);
  std::vector<Point> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const uint64_t mode = rng.NextBounded(10);
    Point q;
    if (mode < 6 || net.num_segments() == 0) {
      q.x = rng.NextDouble(box.min.x - 0.05 * w, box.max.x + 0.05 * w);
      q.y = rng.NextDouble(box.min.y - 0.05 * h, box.max.y + 0.05 * h);
    } else if (mode < 8) {
      const int s = static_cast<int>(rng.NextBounded(net.num_segments()));
      const Point a = net.intersection(net.segment(s).from).position;
      const Point b = net.intersection(net.segment(s).to).position;
      const double t = rng.NextDouble();
      q.x = a.x + t * (b.x - a.x) + rng.NextGaussian(0.0, 0.01 * w);
      q.y = a.y + t * (b.y - a.y) + rng.NextGaussian(0.0, 0.01 * h);
    } else {
      const double sx = rng.NextBounded(2) == 0 ? -1.0 : 1.0;
      const double sy = rng.NextBounded(2) == 0 ? -1.0 : 1.0;
      q.x = box.min.x + sx * rng.NextDouble(2.0, 50.0) * w;
      q.y = box.min.y + sy * rng.NextDouble(2.0, 50.0) * h;
    }
    queries.push_back(q);
  }
  return queries;
}

/// The core property: index answer == brute-force answer, exactly.
void ExpectIndexMatchesBruteForce(const Snapshot& snap, const RoadNetwork& net,
                                  const std::vector<int>& labels,
                                  const std::vector<Point>& queries) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const PointAnswer got = snap.NearestSegment(queries[i]);
    const NearestHit want = BruteForceNearestSegment(net, queries[i]);
    ASSERT_EQ(got.segment_id, want.segment_id)
        << "query " << i << " at (" << queries[i].x << ", " << queries[i].y
        << ")";
    ASSERT_EQ(got.distance, std::sqrt(want.distance_squared))
        << "query " << i;
    ASSERT_EQ(got.partition_id,
              labels[static_cast<size_t>(want.segment_id)]);
  }
}

TEST(ServePropertyTest, MatchesBruteForceOnCityNetworks) {
  for (uint64_t seed : {11u, 29u, 47u}) {
    CityOptions city;
    city.num_intersections = 500;
    city.target_segments = 900;
    city.area_sq_miles = 4.0;
    city.seed = seed;
    auto net = GenerateCityNetwork(city);
    ASSERT_TRUE(net.ok()) << net.status().ToString();
    const std::vector<int> labels =
        RandomLabels(net->num_segments(), 7, seed + 1);
    const Snapshot snap = MustBuild(*net, labels);
    // 10k+ randomized queries per seed, per the acceptance criteria.
    ExpectIndexMatchesBruteForce(snap, *net, labels,
                                 QueryCloud(*net, 10000, seed + 2));
  }
}

TEST(ServePropertyTest, MatchesBruteForceOnTwoWayGridsAndTiesPickSmallestId) {
  // Grid networks model two-way roads as opposite segment pairs sharing both
  // endpoints — identical geometry, so exact distance ties are the common
  // case here, not the exception.
  GridOptions grid;
  grid.rows = 14;
  grid.cols = 17;
  grid.two_way_fraction = 1.0;
  grid.seed = 5;
  auto net = GenerateGridNetwork(grid);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = RandomLabels(net->num_segments(), 5, 6);
  const Snapshot snap = MustBuild(*net, labels);
  const std::vector<Point> queries = QueryCloud(*net, 10000, 7);
  ExpectIndexMatchesBruteForce(snap, *net, labels, queries);

  // Explicit tie-break audit on a subset: whenever several segments achieve
  // the winning distance, the winner must be the smallest id among them.
  int ties_seen = 0;
  for (size_t i = 0; i < queries.size(); i += 50) {
    const PointAnswer got = snap.NearestSegment(queries[i]);
    const double best_d2 = got.distance * got.distance;
    int smallest_at_best = -1;
    int at_best = 0;
    for (int s = 0; s < net->num_segments(); ++s) {
      const Point a = net->intersection(net->segment(s).from).position;
      const Point b = net->intersection(net->segment(s).to).position;
      // Bit-identical distance computation via the shared kernel.
      if (PointSegmentDistanceSquared(queries[i], a, b) ==
          PointSegmentDistanceSquared(
              queries[i],
              net->intersection(net->segment(got.segment_id).from).position,
              net->intersection(net->segment(got.segment_id).to).position)) {
        if (smallest_at_best < 0) smallest_at_best = s;
        ++at_best;
      }
    }
    (void)best_d2;
    ASSERT_EQ(got.segment_id, smallest_at_best);
    if (at_best > 1) ++ties_seen;
  }
  // The whole point of this fixture: ties must actually occur.
  EXPECT_GT(ties_seen, 0);
}

TEST(ServePropertyTest, SingleSegmentNetwork) {
  std::vector<Intersection> nodes = {{{0.0, 0.0}}, {{10.0, 0.0}}};
  std::vector<RoadSegment> segs = {{0, 1, 10.0, 0.5}};
  auto net = RoadNetwork::Create(nodes, segs);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = {0};
  const Snapshot snap = MustBuild(*net, labels);
  EXPECT_EQ(snap.num_segments(), 1);
  EXPECT_EQ(snap.num_partitions(), 1);
  for (const Point& q : std::vector<Point>{{0.0, 0.0},
                                           {10.0, 0.0},
                                           {5.0, 0.0},
                                           {5.0, 3.0},
                                           {-4.0, -3.0},
                                           {1e6, 1e6}}) {
    const PointAnswer a = snap.NearestSegment(q);
    EXPECT_EQ(a.segment_id, 0);
    EXPECT_EQ(a.partition_id, 0);
    const NearestHit bf = BruteForceNearestSegment(*net, q);
    EXPECT_EQ(a.distance, std::sqrt(bf.distance_squared));
  }
  // On-segment queries are exact zeros, not epsilons.
  EXPECT_EQ(snap.NearestSegment({5.0, 0.0}).distance, 0.0);
}

TEST(ServePropertyTest, CollinearChainSharedEndpointsTieToSmallestId) {
  // Five collinear segments along y = 0. A query directly above a shared
  // endpoint is equidistant from the two segments meeting there; the
  // smaller id must win, and all answers must equal brute force.
  std::vector<Intersection> nodes;
  for (int i = 0; i <= 5; ++i) nodes.push_back({{double(i), 0.0}});
  std::vector<RoadSegment> segs;
  for (int i = 0; i < 5; ++i) segs.push_back({i, i + 1, 1.0, 0.1});
  auto net = RoadNetwork::Create(nodes, segs);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = {0, 1, 2, 1, 0};
  const Snapshot snap = MustBuild(*net, labels);
  for (int i = 1; i < 5; ++i) {
    const Point above_shared_endpoint{double(i), 2.0};
    const PointAnswer a = snap.NearestSegment(above_shared_endpoint);
    EXPECT_EQ(a.segment_id, i - 1) << "shared endpoint " << i;
    EXPECT_EQ(a.distance, 2.0);
  }
  ExpectIndexMatchesBruteForce(snap, *net, labels,
                               QueryCloud(*net, 10000, 99));
}

TEST(ServePropertyTest, ZeroAreaNetworkAllPointsIdentical) {
  // Regression for the PR-4 class of degenerate-input bugs: every
  // intersection at the same coordinate means a zero-area bounding box,
  // zero-length segment geometry, and all-identical midpoints. The snapshot
  // must build, round-trip, and answer exactly like brute force (all
  // segments tie; id 0 wins).
  std::vector<Intersection> nodes = {{{2.0, 3.0}}, {{2.0, 3.0}}, {{2.0, 3.0}}};
  std::vector<RoadSegment> segs = {
      {0, 1, 1.0, 0.1}, {1, 2, 1.0, 0.2}, {2, 0, 1.0, 0.3}};
  auto net = RoadNetwork::Create(nodes, segs);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = {0, 1, 0};
  const Snapshot snap = MustBuild(*net, labels);
  auto reloaded = Snapshot::FromBuffer(snap.buffer());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  for (const Point& q : std::vector<Point>{{2.0, 3.0},
                                           {0.0, 0.0},
                                           {-1e7, 1e7},
                                           {2.0, 2.9999}}) {
    const PointAnswer a = snap.NearestSegment(q);
    EXPECT_EQ(a.segment_id, 0);  // perfect tie among all three -> smallest id
    EXPECT_EQ(a.partition_id, 0);
    const NearestHit bf = BruteForceNearestSegment(*net, q);
    EXPECT_EQ(a.distance, std::sqrt(bf.distance_squared));
  }
}

TEST(ServePropertyTest, EmptyNetworkServesMisses) {
  auto net = RoadNetwork::Create({}, {});
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const Snapshot snap = MustBuild(*net, {});
  EXPECT_EQ(snap.num_segments(), 0);
  EXPECT_EQ(snap.num_partitions(), 0);
  const PointAnswer a = snap.NearestSegment({1.0, 2.0});
  EXPECT_EQ(a.segment_id, -1);
  EXPECT_EQ(a.partition_id, -1);
  EXPECT_EQ(a.distance, -1.0);
  EXPECT_TRUE(snap.CountByPartition({{-1e9, -1e9}, {1e9, 1e9}}).empty());
  auto reloaded = Snapshot::FromBuffer(snap.buffer());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
}

TEST(ServePropertyTest, RangeCountsMatchBruteForce) {
  CityOptions city;
  city.num_intersections = 400;
  city.target_segments = 700;
  city.seed = 13;
  auto net = GenerateCityNetwork(city);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const int k = 6;
  const std::vector<int> labels = RandomLabels(net->num_segments(), k, 14);
  const Snapshot snap = MustBuild(*net, labels);
  const BoundingBox bounds = net->Bounds();
  const double w = bounds.max.x - bounds.min.x;
  const double h = bounds.max.y - bounds.min.y;
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    BoundingBox box;
    if (trial == 0) {
      box = bounds;  // everything
    } else if (trial == 1) {
      box = {{bounds.max.x + w, bounds.max.y + h},
             {bounds.max.x + 2 * w, bounds.max.y + 2 * h}};  // nothing
    } else if (trial == 2) {
      // Degenerate zero-area box directly on a midpoint: closed bounds must
      // count it.
      const Point mid = SegmentMidpoint(*net, 0);
      box = {mid, mid};
    } else {
      const double x0 = rng.NextDouble(bounds.min.x - 0.2 * w,
                                       bounds.max.x + 0.2 * w);
      const double x1 = rng.NextDouble(bounds.min.x - 0.2 * w,
                                       bounds.max.x + 0.2 * w);
      const double y0 = rng.NextDouble(bounds.min.y - 0.2 * h,
                                       bounds.max.y + 0.2 * h);
      const double y1 = rng.NextDouble(bounds.min.y - 0.2 * h,
                                       bounds.max.y + 0.2 * h);
      box = {{std::min(x0, x1), std::min(y0, y1)},
             {std::max(x0, x1), std::max(y0, y1)}};
    }
    std::vector<int64_t> want(k, 0);
    for (int s = 0; s < net->num_segments(); ++s) {
      const Point m = SegmentMidpoint(*net, s);
      if (m.x >= box.min.x && m.x <= box.max.x && m.y >= box.min.y &&
          m.y <= box.max.y) {
        ++want[static_cast<size_t>(labels[static_cast<size_t>(s)])];
      }
    }
    EXPECT_EQ(snap.CountByPartition(box), want) << "trial " << trial;
  }
}

TEST(ServePropertyTest, ServeLoopMatchesDirectApiAndNamesBadLines) {
  GridOptions grid;
  grid.rows = 8;
  grid.cols = 8;
  grid.seed = 21;
  auto net = GenerateGridNetwork(grid);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = RandomLabels(net->num_segments(), 4, 22);
  const Snapshot snap = MustBuild(*net, labels);

  std::string queries =
      "# leading comment\n"
      "point 100.0 250.5\n"
      "\n"
      "range 0 0 400 400\n"
      "point -1e4 1e4\n";
  ServeOptions options;
  std::string out;
  ASSERT_TRUE(ServeQueries(snap, queries, options, &out).ok());
  // 3 answers (comment + blank skipped), in input order.
  std::vector<std::string> lines = Split(out, '\n');
  ASSERT_EQ(lines.size(), 4u);  // trailing "" after final newline
  EXPECT_TRUE(StartsWith(lines[0], "point "));
  EXPECT_TRUE(StartsWith(lines[1], "range "));
  EXPECT_TRUE(StartsWith(lines[2], "point "));
  const PointAnswer direct = snap.NearestSegment({100.0, 250.5});
  EXPECT_EQ(lines[0], StrPrintf("point %d %d %.17g", direct.segment_id,
                                direct.partition_id, direct.distance));

  // Malformed input: typed InvalidArgument naming the 1-based line.
  for (const char* bad : {"point 1\n", "range 1 2 3\n", "point a b\n",
                          "point nan 0\n", "lookup 1 2\n"}) {
    std::string unused;
    Status st = ServeQueries(snap, std::string("# ok\n") + bad, options,
                             &unused);
    ASSERT_FALSE(st.ok()) << bad;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("line 2"), std::string::npos)
        << st.ToString();
  }
}

TEST(ServePropertyTest, ServeLoopOutputIsThreadCountInvariant) {
  CityOptions city;
  city.num_intersections = 300;
  city.target_segments = 520;
  city.seed = 31;
  auto net = GenerateCityNetwork(city);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = RandomLabels(net->num_segments(), 5, 32);
  const Snapshot snap = MustBuild(*net, labels);
  const std::vector<Point> cloud = QueryCloud(*net, 3000, 33);
  std::string queries;
  for (const Point& q : cloud) {
    queries += StrPrintf("point %.17g %.17g\n", q.x, q.y);
  }
  queries += "range 0 0 1000 1000\n";

  auto run = [&](int threads) {
    ServeOptions options;
    options.num_threads = threads;
    options.batch_size = 64;  // force many batches
    std::string out;
    Status st = ServeQueries(snap, queries, options, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
  EXPECT_EQ(static_cast<int>(Split(serial, '\n').size()),
            static_cast<int>(cloud.size()) + 2);
}

}  // namespace
}  // namespace roadpart
