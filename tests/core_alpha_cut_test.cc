#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/alpha_cut.h"
#include "core/spectral_common.h"
#include "graph/connected_components.h"
#include "metrics/modularity.h"
#include "metrics/validity.h"

namespace roadpart {
namespace {

// Two weighted cliques joined by one weak bridge.
CsrGraph TwoCommunities() {
  std::vector<Edge> edges;
  for (int base : {0, 5}) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
  }
  edges.push_back({4, 5, 0.05});
  return CsrGraph::FromEdges(10, edges).value();
}

// Ring of `k` cliques of size `m`, weakly bridged.
CsrGraph CliqueRing(int k, int m) {
  std::vector<Edge> edges;
  for (int c = 0; c < k; ++c) {
    int base = c * m;
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    int next_base = ((c + 1) % k) * m;
    edges.push_back({base + m - 1, next_base, 0.05});
  }
  return CsrGraph::FromEdges(k * m, edges).value();
}

TEST(AlphaCutMatrixTest, EqualsNegativeModularityMatrix) {
  // Section 7: the alpha-Cut matrix equals the negative modularity matrix
  // B = A - d d^T / 2m.
  CsrGraph g = TwoCommunities();
  DenseMatrix m = AlphaCutMatrix(g);
  DenseMatrix a = g.ToSparseMatrix().ToDense();
  double two_m = 2.0 * g.TotalWeight();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      double b_ij = a(i, j) - g.WeightedDegree(i) * g.WeightedDegree(j) / two_m;
      EXPECT_NEAR(m(i, j), -b_ij, 1e-12);
    }
  }
  EXPECT_LT(m.SymmetryError(), 1e-12);
}

TEST(AlphaCutObjectiveTest, MatchesMatrixQuadraticForm) {
  CsrGraph g = TwoCommunities();
  std::vector<int> assignment = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  DenseMatrix m = AlphaCutMatrix(g);
  // sum_i c_i^T M c_i / (c_i^T c_i) computed densely.
  double expected = 0.0;
  for (int p = 0; p < 2; ++p) {
    std::vector<double> c(10, 0.0);
    int count = 0;
    for (int v = 0; v < 10; ++v) {
      if (assignment[v] == p) {
        c[v] = 1.0;
        ++count;
      }
    }
    std::vector<double> mc(10);
    m.Multiply(c.data(), mc.data());
    double quad = 0.0;
    for (int v = 0; v < 10; ++v) quad += c[v] * mc[v];
    expected += quad / count;
  }
  EXPECT_NEAR(AlphaCutObjective(g, assignment), expected, 1e-10);
}

TEST(AlphaCutObjectiveTest, GoodSplitBeatsBadSplit) {
  CsrGraph g = TwoCommunities();
  std::vector<int> good = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<int> bad = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LT(AlphaCutObjective(g, good), AlphaCutObjective(g, bad));
}

TEST(AlphaCutObjectiveTest, ConstAlphaExtremes) {
  CsrGraph g = TwoCommunities();
  std::vector<int> split = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  // alpha = 1: pure average cut, non-negative for non-negative weights.
  EXPECT_GE(AlphaCutObjectiveConstAlpha(g, split, 1.0), 0.0);
  // alpha = 0: pure negative average association, non-positive.
  EXPECT_LE(AlphaCutObjectiveConstAlpha(g, split, 0.0), 0.0);
}

TEST(AlphaCutPartitionTest, RecoversTwoCommunities) {
  CsrGraph g = TwoCommunities();
  auto cut = AlphaCutPartition(g, 2);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 2);
  // Nodes 0-4 together, 5-9 together.
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(cut->assignment[i], cut->assignment[0]);
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_EQ(cut->assignment[i], cut->assignment[5]);
  }
  EXPECT_NE(cut->assignment[0], cut->assignment[5]);
}

TEST(AlphaCutPartitionTest, RecoversFourCliques) {
  CsrGraph g = CliqueRing(4, 6);
  AlphaCutOptions opt;
  opt.pipeline.kmeans.seed = 3;
  auto cut = AlphaCutPartition(g, 4, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 4);
  // Each clique pure.
  for (int c = 0; c < 4; ++c) {
    int label = cut->assignment[c * 6];
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(cut->assignment[c * 6 + i], label) << "clique " << c;
    }
  }
}

TEST(AlphaCutPartitionTest, PartitionsAreValidAndConnected) {
  CsrGraph g = CliqueRing(5, 5);
  auto cut = AlphaCutPartition(g, 3);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(CheckPartitionValidity(g, cut->assignment).ok());
  EXPECT_EQ(cut->k_final, 3);
}

TEST(AlphaCutPartitionTest, KPrimeReductionReachesExactK) {
  // Scattered communities force k' > k; the recursive bipartitioning must
  // land exactly on k.
  CsrGraph g = CliqueRing(8, 4);
  AlphaCutOptions opt;
  opt.pipeline.kmeans.seed = 11;
  auto cut = AlphaCutPartition(g, 3, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 3);
  EXPECT_GE(cut->k_prime, 3);
}

TEST(AlphaCutPartitionTest, NoReductionWhenDisabled) {
  CsrGraph g = CliqueRing(8, 4);
  AlphaCutOptions opt;
  opt.pipeline.enforce_exact_k = false;
  opt.pipeline.enforce_connectivity = false;
  opt.pipeline.kmeans.seed = 11;
  auto cut = AlphaCutPartition(g, 3, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, cut->k_prime);
}

TEST(AlphaCutPartitionTest, InvalidK) {
  CsrGraph g = TwoCommunities();
  EXPECT_FALSE(AlphaCutPartition(g, 0).ok());
  EXPECT_FALSE(AlphaCutPartition(g, 11).ok());
}

TEST(AlphaCutPartitionTest, KEqualsOne) {
  CsrGraph g = TwoCommunities();
  auto cut = AlphaCutPartition(g, 1);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 1);
}

TEST(AlphaCutPartitionTest, MinimizingAlphaCutMaximizesModularity) {
  // Section 7's claim, checked behaviourally: the alpha-Cut partition has
  // higher modularity than random partitions of the same graph.
  CsrGraph g = CliqueRing(4, 6);
  auto cut = AlphaCutPartition(g, 4);
  ASSERT_TRUE(cut.ok());
  double q_cut = Modularity(g, cut->assignment).value();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> random(g.num_nodes());
    for (int& a : random) a = static_cast<int>(rng.NextBounded(4));
    double q_rand = Modularity(g, random).value();
    EXPECT_GE(q_cut, q_rand);
  }
}

TEST(AlphaCutPartitionTest, LanczosPathMatchesDensePath) {
  // Same graph solved with the dense solver and with Lanczos (forced by a
  // tiny dense_threshold): both must recover the planted communities.
  CsrGraph g = CliqueRing(3, 10);
  AlphaCutOptions dense;
  dense.spectral.dense_threshold = 1000;
  dense.pipeline.kmeans.seed = 9;
  AlphaCutOptions sparse;
  sparse.spectral.dense_threshold = 5;
  sparse.pipeline.kmeans.seed = 9;
  auto a = AlphaCutPartition(g, 3, dense);
  auto b = AlphaCutPartition(g, 3, sparse);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same partitioning up to label names.
  std::set<std::pair<int, int>> mapping;
  for (int v = 0; v < g.num_nodes(); ++v) {
    mapping.insert({a->assignment[v], b->assignment[v]});
  }
  EXPECT_EQ(mapping.size(), 3u);
}

TEST(PartitionConnectivityGraphTest, BuildsCondensedWeights) {
  // Path 0-1-2-3 split {0,1} vs {2,3} with edge weight 2 on the bridge:
  // A'(0,1) = sqrt((1/1) * 2^2) = 2.
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 1.0}}).value();
  auto condensed = PartitionConnectivityGraph(g, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(condensed.ok());
  EXPECT_EQ(condensed->num_nodes(), 2);
  EXPECT_NEAR(condensed->EdgeWeight(0, 1), 2.0, 1e-12);
}

TEST(PartitionConnectivityGraphTest, RmsOverMultipleLinks) {
  // Two cross edges with weights 1 and 2: RMS = sqrt((1+4)/2).
  CsrGraph g = CsrGraph::FromEdges(
                   4, {{0, 2, 1.0}, {1, 3, 2.0}, {0, 1, 1.0}, {2, 3, 1.0}})
                   .value();
  auto condensed = PartitionConnectivityGraph(g, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(condensed.ok());
  EXPECT_NEAR(condensed->EdgeWeight(0, 1), std::sqrt(2.5), 1e-12);
}

TEST(RowNormalizeTest, UnitRows) {
  DenseMatrix y(3, 2);
  y(0, 0) = 3.0;
  y(0, 1) = 4.0;
  y(1, 0) = 0.0;
  y(1, 1) = 0.0;  // zero row stays zero
  y(2, 0) = -2.0;
  y(2, 1) = 0.0;
  Result<DenseMatrix> normalized = RowNormalize(y);
  ASSERT_TRUE(normalized.ok());
  const DenseMatrix& z = *normalized;
  EXPECT_NEAR(z(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(z(0, 1), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(z(1, 0), 0.0);
  EXPECT_NEAR(z(2, 0), -1.0, 1e-12);
}

TEST(GaussianWeightedGraphTest, WeightsFollowSimilarity) {
  CsrGraph g =
      CsrGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}).value();
  std::vector<double> f = {0.0, 0.0, 10.0};
  CsrGraph w = GaussianWeightedGraph(g, f, /*degree_normalize=*/false);
  EXPECT_NEAR(w.EdgeWeight(0, 1), 1.0, 1e-12);  // identical features
  EXPECT_LT(w.EdgeWeight(1, 2), w.EdgeWeight(0, 1));
  EXPECT_GT(w.EdgeWeight(1, 2), 0.0);
}

TEST(GaussianWeightedGraphTest, ZeroVarianceAllOnes) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}).value();
  CsrGraph w =
      GaussianWeightedGraph(g, {2.0, 2.0, 2.0}, /*degree_normalize=*/false);
  EXPECT_DOUBLE_EQ(w.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.EdgeWeight(1, 2), 1.0);
}

TEST(GaussianWeightedGraphTest, DegreeNormalizationDampsHubs) {
  // Star centre (degree 3) vs leaf pair: normalized weights shrink where
  // degrees are large.
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}}).value();
  std::vector<double> f = {1.0, 1.0, 1.0, 1.0};
  CsrGraph raw = GaussianWeightedGraph(g, f, /*degree_normalize=*/false);
  CsrGraph norm = GaussianWeightedGraph(g, f, /*degree_normalize=*/true);
  EXPECT_DOUBLE_EQ(raw.EdgeWeight(0, 1), 1.0);
  // d_0 = 3, d_1 = 1 -> w' = 1/sqrt(3).
  EXPECT_NEAR(norm.EdgeWeight(0, 1), 1.0 / std::sqrt(3.0), 1e-12);
}

class AlphaCutKSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlphaCutKSweep, AlwaysValidPartitions) {
  CsrGraph g = CliqueRing(6, 5);
  AlphaCutOptions opt;
  opt.pipeline.kmeans.seed = 100 + GetParam();
  auto cut = AlphaCutPartition(g, GetParam(), opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, GetParam());
  EXPECT_TRUE(CheckPartitionValidity(g, cut->assignment).ok());
}

INSTANTIATE_TEST_SUITE_P(Ks, AlphaCutKSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace roadpart
