#include <gtest/gtest.h>

#include <algorithm>

#include "graph/connected_components.h"
#include "graph/csr_graph.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"

namespace roadpart {
namespace {

CsrGraph Path(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return CsrGraph::FromEdges(n, edges).value();
}

TEST(CsrGraphTest, BasicConstruction) {
  auto g = CsrGraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 0.5}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 4);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(g->Degree(1), 2);
  EXPECT_TRUE(g->HasEdge(1, 0));
  EXPECT_FALSE(g->HasEdge(0, 3));
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 3), 0.0);
}

TEST(CsrGraphTest, SelfLoopsDropped) {
  auto g = CsrGraph::FromEdges(2, {{0, 0, 1.0}, {0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->Degree(0), 1);
}

TEST(CsrGraphTest, ParallelEdgesMerged) {
  auto g = CsrGraph::FromEdges(2, {{0, 1, 1.0}, {1, 0, 2.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 3.0);
}

TEST(CsrGraphTest, OutOfRangeRejected) {
  EXPECT_FALSE(CsrGraph::FromEdges(2, {{0, 2, 1.0}}).ok());
}

TEST(CsrGraphTest, NeighborsSorted) {
  auto g = CsrGraph::FromEdges(5, {{2, 4, 1.0}, {2, 0, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  auto nbrs = g->Neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraphTest, WeightedDegreeAndTotalWeight) {
  auto g = CsrGraph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightedDegree(1), 5.0);
  EXPECT_DOUBLE_EQ(g->TotalWeight(), 5.0);
}

TEST(CsrGraphTest, ToSparseMatrixSymmetric) {
  auto g = CsrGraph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  ASSERT_TRUE(g.ok());
  SparseMatrix a = g->ToSparseMatrix();
  EXPECT_DOUBLE_EQ(a.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.SymmetryError(), 0.0);
  EXPECT_DOUBLE_EQ(a.TotalSum(), 10.0);  // each edge twice
}

TEST(CsrGraphTest, InducedSubgraph) {
  CsrGraph g = Path(5);
  CsrGraph sub = g.InducedSubgraph({1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 1);  // only (1,2) survives
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(0, 2));
}

TEST(CsrGraphTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  EXPECT_EQ(ConnectedComponents(*g).num_components, 0);
}

TEST(ConnectedComponentsTest, SingleComponent) {
  CsrGraph g = Path(6);
  ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 1);
  for (int c : labels.component) EXPECT_EQ(c, 0);
}

TEST(ConnectedComponentsTest, MultipleComponents) {
  auto g = CsrGraph::FromEdges(6, {{0, 1, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  ComponentLabels labels = ConnectedComponents(*g);
  EXPECT_EQ(labels.num_components, 4);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(labels.component[0], labels.component[1]);
  EXPECT_NE(labels.component[0], labels.component[2]);
}

TEST(ConnectedComponentsTest, LabelConstrained) {
  // Path 0-1-2-3 with k-means labels {0,0,1,1}: two components.
  CsrGraph g = Path(4);
  ComponentLabels labels = LabelConstrainedComponents(g, {0, 0, 1, 1});
  EXPECT_EQ(labels.num_components, 2);
  EXPECT_EQ(labels.component[0], labels.component[1]);
  EXPECT_EQ(labels.component[2], labels.component[3]);
  EXPECT_NE(labels.component[1], labels.component[2]);
}

TEST(ConnectedComponentsTest, LabelConstrainedSplitsSameLabel) {
  // Path 0-1-2-3-4 with labels {0,1,0,1,0}: five singleton components.
  CsrGraph g = Path(5);
  ComponentLabels labels = LabelConstrainedComponents(g, {0, 1, 0, 1, 0});
  EXPECT_EQ(labels.num_components, 5);
}

TEST(ComponentsOfSubsetTest, FindsSubcomponents) {
  CsrGraph g = Path(6);
  auto comps = ComponentsOfSubset(g, {0, 1, 3, 4});
  ASSERT_EQ(comps.size(), 2u);
  // Sort for comparison.
  for (auto& c : comps) std::sort(c.begin(), c.end());
  std::sort(comps.begin(), comps.end());
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{3, 4}));
}

TEST(IsSubsetConnectedTest, Cases) {
  CsrGraph g = Path(5);
  EXPECT_TRUE(IsSubsetConnected(g, {}));
  EXPECT_TRUE(IsSubsetConnected(g, {2}));
  EXPECT_TRUE(IsSubsetConnected(g, {1, 2, 3}));
  EXPECT_FALSE(IsSubsetConnected(g, {0, 2}));
}

TEST(BfsDistancesTest, PathDistances) {
  CsrGraph g = Path(5);
  auto dist = BfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsDistancesTest, Unreachable) {
  auto g = CsrGraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  auto dist = BfsDistances(*g, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(LargestComponentTest, PicksBiggest) {
  auto g = CsrGraph::FromEdges(7, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}});
  ASSERT_TRUE(g.ok());
  auto comp = LargestComponent(*g);
  std::sort(comp.begin(), comp.end());
  EXPECT_EQ(comp, (std::vector<int>{2, 3, 4}));
}

TEST(GraphStatsTest, Computed) {
  CsrGraph g = Path(4);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 4);
  EXPECT_EQ(s.num_edges, 3);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.5);
}

TEST(GroupByAssignmentTest, Groups) {
  auto groups = GroupByAssignment({0, 1, 0, 2}, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<int>{1}));
  EXPECT_EQ(groups[2], (std::vector<int>{3}));
}

TEST(GraphBuilderTest, BuildsGraph) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2, 2.0);
  EXPECT_EQ(b.num_pending_edges(), 2u);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(ReweightGraphTest, PreservesTopology) {
  CsrGraph g = Path(4);
  CsrGraph w = ReweightGraph(g, [](int u, int v) { return double(u + v); });
  EXPECT_EQ(w.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(w.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.EdgeWeight(2, 3), 5.0);
}

}  // namespace
}  // namespace roadpart
