#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/supergraph_io.h"
#include "core/supergraph_miner.h"
#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

Supergraph MineOne(uint64_t seed) {
  GridOptions grid;
  grid.rows = 8;
  grid.cols = 8;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.voronoi_tiling = true;
  field_opt.seed = seed + 9;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);
  SupergraphMinerOptions options;
  options.min_supernodes = 10;
  return MineSupergraph(rg, options).value();
}

TEST(SupergraphIoTest, RoundTripPreservesEverything) {
  Supergraph sg = MineOne(3);
  std::string path = testing::TempDir() + "/sg_roundtrip.txt";
  ASSERT_TRUE(SaveSupergraph(sg, path).ok());
  auto loaded = LoadSupergraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_supernodes(), sg.num_supernodes());
  EXPECT_EQ(loaded->num_road_nodes(), sg.num_road_nodes());
  for (int s = 0; s < sg.num_supernodes(); ++s) {
    EXPECT_EQ(loaded->supernode(s).members, sg.supernode(s).members);
    EXPECT_NEAR(loaded->supernode(s).feature, sg.supernode(s).feature,
                1e-12);
  }
  EXPECT_EQ(loaded->links().num_edges(), sg.links().num_edges());
  for (int p = 0; p < sg.links().num_nodes(); ++p) {
    auto nbrs = sg.links().Neighbors(p);
    auto wts = sg.links().NeighborWeights(p);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NEAR(loaded->links().EdgeWeight(p, nbrs[i]), wts[i], 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(SupergraphIoTest, NodeMappingSurvives) {
  Supergraph sg = MineOne(5);
  std::string path = testing::TempDir() + "/sg_mapping.txt";
  ASSERT_TRUE(SaveSupergraph(sg, path).ok());
  Supergraph loaded = LoadSupergraph(path).value();
  for (int v = 0; v < sg.num_road_nodes(); ++v) {
    EXPECT_EQ(loaded.SupernodeOf(v), sg.SupernodeOf(v));
  }
  std::remove(path.c_str());
}

TEST(SupergraphIoTest, RejectsCorruptFiles) {
  auto write = [](const std::string& name, const std::string& content) {
    std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  };
  // Truncated supernodes.
  std::string p1 = write("sg_bad1.txt", "G 4 2\n0.5 2 0 1\n");
  EXPECT_FALSE(LoadSupergraph(p1).ok());
  // Member out of range.
  std::string p2 = write("sg_bad2.txt",
                         "G 2 1\n0.5 2 0 7\nL 0\n");
  EXPECT_FALSE(LoadSupergraph(p2).ok());
  // Overlapping members.
  std::string p3 = write("sg_bad3.txt",
                         "G 2 2\n0.5 2 0 1\n0.7 1 1\nL 1\n0 1 0.5\n");
  EXPECT_FALSE(LoadSupergraph(p3).ok());
  // Garbage header.
  std::string p4 = write("sg_bad4.txt", "whatever\n");
  EXPECT_FALSE(LoadSupergraph(p4).ok());
  EXPECT_FALSE(LoadSupergraph("/no/such/sg.txt").ok());
  for (const auto& p : {p1, p2, p3, p4}) std::remove(p.c_str());
}

}  // namespace
}  // namespace roadpart
