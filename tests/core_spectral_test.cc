#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/alpha_cut.h"
#include "core/spectral_common.h"
#include "linalg/symmetric_eigen.h"
#include "metrics/validity.h"

namespace roadpart {
namespace {

CsrGraph CliqueRing(int k, int m) {
  std::vector<Edge> edges;
  for (int c = 0; c < k; ++c) {
    int base = c * m;
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
    int next_base = ((c + 1) % k) * m;
    edges.push_back({base + m - 1, next_base, 0.05});
  }
  return CsrGraph::FromEdges(k * m, edges).value();
}

TEST(DensifyAssignmentTest, RenumbersDensely) {
  std::vector<int> a = {5, 5, 9, 2, 9};
  int k = DensifyAssignment(a);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(a, (std::vector<int>{0, 0, 1, 2, 1}));
}

TEST(DensifyAssignmentTest, AlreadyDenseUnchanged) {
  std::vector<int> a = {0, 1, 2, 1};
  EXPECT_EQ(DensifyAssignment(a), 3);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 1}));
}

TEST(EnforcePartitionConnectivityTest, MergesFragments) {
  // Path 0-1-2-3-4; partition 0 = {0, 4} is disconnected.
  CsrGraph g = CsrGraph::FromEdges(
                   5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}})
                   .value();
  std::vector<int> a = {0, 1, 1, 1, 0};
  EnforcePartitionConnectivity(g, a);
  EXPECT_TRUE(CheckPartitionValidity(g, a).ok());
}

TEST(EnforcePartitionConnectivityTest, FragmentJoinsStrongestNeighbour) {
  // Path with weighted edges: fragment {4} must join the partition with the
  // heavier connecting edge.
  CsrGraph g = CsrGraph::FromEdges(
                   5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 9.0}})
                   .value();
  std::vector<int> a = {0, 0, 1, 1, 0};  // {0,1,4} disconnected
  EnforcePartitionConnectivity(g, a);
  EXPECT_TRUE(CheckPartitionValidity(g, a).ok());
  EXPECT_EQ(a[4], a[3]);  // joined via the weight-9 edge
}

TEST(EnforcePartitionConnectivityTest, ConnectedInputUntouched) {
  CsrGraph g = CliqueRing(3, 4);
  std::vector<int> a(12);
  for (int i = 0; i < 12; ++i) a[i] = i / 4;
  std::vector<int> before = a;
  EnforcePartitionConnectivity(g, a);
  EXPECT_EQ(a, before);
}

TEST(ExtremeEigenvectorsTest, DenseAndLanczosAgree) {
  CsrGraph g = CliqueRing(4, 8);
  SparseMatrix a = g.ToSparseMatrix();
  SparseOperator op(a);
  SpectralOptions dense_opt;
  dense_opt.dense_threshold = 1000;
  SpectralOptions lanczos_opt;
  lanczos_opt.dense_threshold = 4;
  auto dense = ExtremeEigenvectors(op, 3, SpectrumEnd::kSmallest, dense_opt);
  auto lanczos =
      ExtremeEigenvectors(op, 3, SpectrumEnd::kSmallest, lanczos_opt);
  ASSERT_TRUE(dense.ok() && lanczos.ok());
  // Clique graphs have degenerate extreme eigenvalues, so individual columns
  // are not unique; the spanned subspaces must agree: every Lanczos column
  // lies (numerically) in the dense column span.
  const int n = g.num_nodes();
  for (int c = 0; c < 3; ++c) {
    double norm_sq = 0.0;
    double projected_sq = 0.0;
    for (int r = 0; r < n; ++r) {
      norm_sq += (*lanczos)(r, c) * (*lanczos)(r, c);
    }
    for (int dc = 0; dc < 3; ++dc) {
      double dot = 0.0;
      for (int r = 0; r < n; ++r) dot += (*lanczos)(r, c) * (*dense)(r, dc);
      projected_sq += dot * dot;
    }
    EXPECT_NEAR(projected_sq, norm_sq, 1e-5) << "column " << c;
  }
}

TEST(ExtremeEigenvectorsTest, InvalidK) {
  CsrGraph g = CliqueRing(2, 3);
  SparseMatrix a = g.ToSparseMatrix();
  SparseOperator op(a);
  SpectralOptions opt;
  EXPECT_FALSE(ExtremeEigenvectors(op, 0, SpectrumEnd::kSmallest, opt).ok());
  EXPECT_FALSE(ExtremeEigenvectors(op, 7, SpectrumEnd::kSmallest, opt).ok());
}

TEST(GreedyMergeTest, ReachesExactKAndStaysValid) {
  CsrGraph g = CliqueRing(8, 4);
  AlphaCutOptions opt;
  opt.pipeline.exact_k_method = ExactKMethod::kGreedyMerge;
  opt.pipeline.kmeans.seed = 5;
  auto cut = AlphaCutPartition(g, 3, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 3);
  EXPECT_TRUE(CheckPartitionValidity(g, cut->assignment).ok());
}

TEST(GreedyMergeTest, MergesMostSimilarFirst) {
  // Three cliques where two are joined by a much heavier bridge: reducing
  // 3 -> 2 must merge across the heavy bridge.
  std::vector<Edge> edges;
  for (int c = 0; c < 3; ++c) {
    int base = c * 4;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) edges.push_back({base + i, base + j, 1.0});
    }
  }
  edges.push_back({3, 4, 2.0});    // clique0 - clique1, heavy
  edges.push_back({7, 8, 0.01});   // clique1 - clique2, light
  CsrGraph g = CsrGraph::FromEdges(12, edges).value();
  AlphaCutOptions opt;
  opt.pipeline.exact_k_method = ExactKMethod::kGreedyMerge;
  opt.pipeline.kmeans.seed = 5;
  auto cut = AlphaCutPartition(g, 2, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 2);
  EXPECT_EQ(cut->assignment[0], cut->assignment[4]);   // merged pair
  EXPECT_NE(cut->assignment[0], cut->assignment[8]);
}

TEST(SpectralPipelineTest, KEqualGraphOrder) {
  CsrGraph g = CliqueRing(3, 2);
  AlphaCutOptions opt;
  opt.pipeline.kmeans.seed = 3;
  auto cut = AlphaCutPartition(g, 6, opt);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->k_final, 6);  // every node its own partition
}

class RandomGraphSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphSweep, PipelineAlwaysValid) {
  // Random connected weighted graphs: the pipeline must always deliver
  // exactly k valid connected partitions.
  Rng rng(GetParam());
  const int n = 40;
  std::vector<Edge> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng.NextBounded(i)), i,
                     0.1 + rng.NextDouble()});
  }
  for (int extra = 0; extra < 40; ++extra) {
    int u = static_cast<int>(rng.NextBounded(n));
    int v = static_cast<int>(rng.NextBounded(n));
    if (u != v) edges.push_back({u, v, 0.1 + rng.NextDouble()});
  }
  CsrGraph g = CsrGraph::FromEdges(n, edges).value();
  for (int k : {2, 4, 7}) {
    AlphaCutOptions opt;
    opt.pipeline.kmeans.seed = GetParam();
    auto cut = AlphaCutPartition(g, k, opt);
    ASSERT_TRUE(cut.ok()) << "k=" << k;
    EXPECT_EQ(cut->k_final, k);
    EXPECT_TRUE(CheckPartitionValidity(g, cut->assignment).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace roadpart
