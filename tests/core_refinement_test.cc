#include <gtest/gtest.h>

#include "core/alpha_cut.h"
#include "core/normalized_cut.h"
#include "core/refinement.h"
#include "metrics/validity.h"

namespace roadpart {
namespace {

CsrGraph TwoCommunities() {
  std::vector<Edge> edges;
  for (int base : {0, 5}) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
  }
  edges.push_back({4, 5, 0.05});
  return CsrGraph::FromEdges(10, edges).value();
}

TEST(RefinementTest, FixesAMisplacedNode) {
  CsrGraph g = TwoCommunities();
  // Node 4 starts on the wrong side.
  std::vector<int> bad = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  AlphaCutMethod method;
  double before = method.Objective(g, bad);
  int moves = 0;
  auto refined = RefineBoundary(g, bad, method, {}, &moves);
  ASSERT_TRUE(refined.ok());
  double after = method.Objective(g, *refined);
  EXPECT_GT(moves, 0);
  EXPECT_LT(after, before);
  // Node 4 rejoined its clique.
  EXPECT_EQ((*refined)[4], (*refined)[0]);
}

TEST(RefinementTest, OptimalPartitionUntouched) {
  CsrGraph g = TwoCommunities();
  std::vector<int> good = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  AlphaCutMethod method;
  int moves = 0;
  auto refined = RefineBoundary(g, good, method, {}, &moves);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(moves, 0);
  EXPECT_EQ(*refined, good);
}

TEST(RefinementTest, NeverEmptiesAPartition) {
  // A path where the objective would love to dissolve the middle partition.
  CsrGraph g =
      CsrGraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}).value();
  std::vector<int> a = {0, 0, 1, 2};
  AlphaCutMethod method;
  auto refined = RefineBoundary(g, a, method, {});
  ASSERT_TRUE(refined.ok());
  int k = 0;
  for (int p : *refined) k = std::max(k, p + 1);
  std::vector<int> counts(k, 0);
  for (int p : *refined) counts[p]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RefinementTest, ObjectiveNeverIncreases) {
  CsrGraph g = TwoCommunities();
  for (const SpectralCutMethod* method :
       std::initializer_list<const SpectralCutMethod*>{
           new AlphaCutMethod(), new NormalizedCutMethod()}) {
    std::vector<int> mixed = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
    double before = method->Objective(g, mixed);
    RefinementOptions options;
    options.enforce_connectivity = false;  // isolate the move logic
    auto refined = RefineBoundary(g, mixed, *method, options);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(method->Objective(g, *refined), before + 1e-9)
        << method->name();
    delete method;
  }
}

TEST(RefinementTest, ConnectivityRestoredByDefault) {
  CsrGraph g = TwoCommunities();
  std::vector<int> scattered = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  AlphaCutMethod method;
  auto refined = RefineBoundary(g, scattered, method, {});
  ASSERT_TRUE(refined.ok());
  EXPECT_TRUE(CheckPartitionValidity(g, *refined).ok());
}

TEST(RefinementTest, RejectsSizeMismatch) {
  CsrGraph g = TwoCommunities();
  AlphaCutMethod method;
  EXPECT_FALSE(RefineBoundary(g, {0, 1}, method, {}).ok());
}

TEST(RefinementTest, ImprovesAlphaCutPartitions) {
  // End to end: refined alpha-Cut partitions are at least as good as raw
  // ones under the alpha-Cut objective.
  CsrGraph g = TwoCommunities();
  AlphaCutOptions options;
  options.pipeline.kmeans.seed = 3;
  auto cut = AlphaCutPartition(g, 2, options).value();
  AlphaCutMethod method;
  auto refined = RefineBoundary(g, cut.assignment, method, {});
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(method.Objective(g, *refined),
            method.Objective(g, cut.assignment) + 1e-9);
}

}  // namespace
}  // namespace roadpart
