// End-to-end integration tests: generators -> traffic -> road graph ->
// supergraph -> partitioning -> metrics, including planted-structure
// recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

TEST(IntegrationTest, FullPipelineOnGridWithMicrosim) {
  GridOptions grid;
  grid.rows = 9;
  grid.cols = 9;
  grid.two_way_fraction = 1.0;
  grid.seed = 8;
  RoadNetwork net = GenerateGridNetwork(grid).value();

  TripGeneratorOptions demand;
  demand.num_vehicles = 800;
  demand.horizon_seconds = 400.0;
  demand.num_hotspots = 2;
  demand.hotspot_bias = 0.9;
  demand.seed = 21;
  TripSet trips = GenerateTrips(net, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 600.0;
  sim.record_every_seconds = 200.0;
  SimulationResult result = RunMicrosim(net, trips.trips, sim).value();
  ASSERT_FALSE(result.densities.empty());
  // Use a mid-simulation snapshot (traffic en route); the final one can be
  // nearly empty after everyone has arrived.
  ASSERT_TRUE(
      net.SetDensities(result.densities[result.densities.size() / 2]).ok());

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 3;
  auto outcome = Partitioner(options).PartitionNetwork(net);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  RoadGraph rg = RoadGraph::FromNetwork(net);
  EXPECT_TRUE(
      CheckPartitionValidity(rg.adjacency(), outcome->assignment).ok());
  auto eval =
      EvaluatePartitions(rg.adjacency(), rg.features(), outcome->assignment);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->num_partitions, 3);
}

TEST(IntegrationTest, PositionsThroughDensityMapperMatchOccupancy) {
  // The MNTG-style path: simulate, emit positions, map positions back to
  // segments; the mapped density must integrate to the en-route vehicle
  // count, same as the direct occupancy densities.
  GridOptions grid;
  grid.rows = 6;
  grid.cols = 6;
  grid.two_way_fraction = 1.0;
  grid.jitter = 0.0;
  grid.seed = 2;
  RoadNetwork net = GenerateGridNetwork(grid).value();

  TripGeneratorOptions demand;
  demand.num_vehicles = 200;
  demand.horizon_seconds = 20.0;
  demand.seed = 5;
  TripSet trips = GenerateTrips(net, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 120.0;
  sim.record_every_seconds = 60.0;
  sim.record_positions = true;
  SimulationResult result = RunMicrosim(net, trips.trips, sim).value();
  ASSERT_FALSE(result.positions.empty());

  DensityMapper mapper(net);
  for (size_t t = 0; t < result.positions.size(); ++t) {
    auto mapped = mapper.ComputeDensities(result.positions[t]);
    double mapped_vehicles = 0.0;
    double direct_vehicles = 0.0;
    for (int i = 0; i < net.num_segments(); ++i) {
      mapped_vehicles += mapped[i] * net.segment(i).length;
      direct_vehicles += result.densities[t][i] * net.segment(i).length;
    }
    EXPECT_NEAR(mapped_vehicles, direct_vehicles, 1e-6);
  }
}

TEST(IntegrationTest, PlantedPlateausRecoveredExactly) {
  // A long path with k strongly separated density plateaus must be recovered
  // by every scheme.
  const int n = 60;
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  CsrGraph graph = CsrGraph::FromEdges(n, edges).value();
  std::vector<double> features(n);
  std::vector<int> truth(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = i / 20;
    features[i] = 0.1 + 0.8 * truth[i] + 0.002 * (i % 20);
  }
  RoadGraph rg = RoadGraph::FromParts(graph, features).value();

  for (Scheme scheme : {Scheme::kAG, Scheme::kASG, Scheme::kNG}) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = 3;
    options.seed = 13;
    auto outcome = Partitioner(options).PartitionRoadGraph(rg);
    ASSERT_TRUE(outcome.ok()) << SchemeName(scheme);
    double ari = AdjustedRandIndex(truth, outcome->assignment).value();
    // The alpha-Cut schemes recover the plateaus essentially exactly; NG is
    // allowed a boundary-node wobble (which is the paper's point).
    double floor = scheme == Scheme::kNG ? 0.80 : 0.95;
    EXPECT_GT(ari, floor) << SchemeName(scheme) << " ARI=" << ari;
  }
}

TEST(IntegrationTest, HotspotRecoveryOnCity) {
  // City network + congestion field with well-separated hotspots: the
  // partitioning must correlate clearly with the dominant-hotspot ground
  // truth.
  CityOptions city;
  city.num_intersections = 300;
  city.target_segments = 520;
  city.area_sq_miles = 3.0;
  city.seed = 31;
  RoadNetwork net = GenerateCityNetwork(city).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 2;
  field_opt.hotspot_peak_vpm = 0.2;
  field_opt.base_density_vpm = 0.005;
  field_opt.noise_fraction = 0.02;
  field_opt.hotspot_radius_fraction = 0.25;
  field_opt.seed = 37;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 3;  // hotspots + background
  options.seed = 5;
  auto outcome = Partitioner(options).PartitionNetwork(net);
  ASSERT_TRUE(outcome.ok());

  // Within each discovered partition the density spread must be much
  // smaller than the global spread.
  RoadGraph rg = RoadGraph::FromNetwork(net);
  double intra = IntraMetric(rg.adjacency(), rg.features(),
                             outcome->assignment)
                     .value();
  std::vector<int> all_one(net.num_segments(), 0);
  double global = IntraMetric(rg.adjacency(), rg.features(), all_one).value();
  EXPECT_LT(intra, 0.8 * global);
}

TEST(IntegrationTest, RepartitioningOverTimeIsStable) {
  // Slowly varying congestion: consecutive partitionings should agree far
  // more than chance (the repeated-interval use case of Section 1).
  GridOptions grid;
  grid.rows = 8;
  grid.cols = 8;
  grid.seed = 41;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 2;
  field_opt.noise_fraction = 0.02;
  field_opt.seed = 43;
  CongestionField field(net, field_opt);

  RoadGraph rg = RoadGraph::FromNetwork(net);
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 3;
  options.seed = 3;
  Partitioner partitioner(options);

  std::vector<int> prev;
  for (double t : {0.30, 0.32, 0.34}) {
    ASSERT_TRUE(rg.SetFeatures(field.DensitiesAt(t)).ok());
    auto outcome = partitioner.PartitionRoadGraph(rg);
    ASSERT_TRUE(outcome.ok());
    if (!prev.empty()) {
      double ari = AdjustedRandIndex(prev, outcome->assignment).value();
      EXPECT_GT(ari, 0.5);
    }
    prev = outcome->assignment;
  }
}

TEST(IntegrationTest, SaveLoadPartitionPipeline) {
  GridOptions grid;
  grid.rows = 6;
  grid.cols = 6;
  grid.seed = 51;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionField field(net, {});
  (void)net.SetDensities(field.Densities());

  std::string net_path = testing::TempDir() + "/integration_net.txt";
  ASSERT_TRUE(SaveRoadNetwork(net, net_path).ok());
  RoadNetwork loaded = LoadRoadNetwork(net_path).value();

  PartitionerOptions options;
  options.scheme = Scheme::kAG;
  options.k = 3;
  options.seed = 17;
  auto a = Partitioner(options).PartitionNetwork(net);
  auto b = Partitioner(options).PartitionNetwork(loaded);
  ASSERT_TRUE(a.ok() && b.ok());
  // Round-tripped network gives an equally valid partitioning (same sizes).
  EXPECT_EQ(a->assignment.size(), b->assignment.size());
  double ari = AdjustedRandIndex(a->assignment, b->assignment).value();
  EXPECT_GT(ari, 0.8);  // densities round-trip at 1e-9 precision
  std::remove(net_path.c_str());
}

TEST(IntegrationTest, D1SizedEndToEndAllSchemes) {
  RoadNetwork net = GenerateDataset(DatasetPreset::kD1, 61).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.seed = 67;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  for (Scheme scheme : {Scheme::kAG, Scheme::kASG, Scheme::kNG, Scheme::kNSG,
                        Scheme::kJiGeroliminis}) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = 6;
    options.seed = 71;
    auto outcome = Partitioner(options).PartitionRoadGraph(rg);
    ASSERT_TRUE(outcome.ok()) << SchemeName(scheme);
    EXPECT_EQ(outcome->k_final, 6) << SchemeName(scheme);
    EXPECT_TRUE(
        CheckPartitionValidity(rg.adjacency(), outcome->assignment).ok())
        << SchemeName(scheme);
  }
}

}  // namespace
}  // namespace roadpart
