#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "network/edge_list_io.h"

namespace roadpart {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(EdgeListIoTest, LoadsBasicNetwork) {
  std::string nodes = WriteTemp("n1.csv",
                                "node_id,x,y\n"
                                "10,0,0\n"
                                "20,100,0\n"
                                "30,100,100\n");
  std::string edges = WriteTemp("e1.csv",
                                "from_id,to_id,length,oneway,density\n"
                                "10,20,100,0,0.05\n"
                                "20,30,,1,0.1\n");
  auto net = LoadEdgeListNetwork(nodes, edges);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->num_intersections(), 3);
  // Two-way road -> 2 segments; one-way -> 1.
  EXPECT_EQ(net->num_segments(), 3);
  EXPECT_DOUBLE_EQ(net->segment(0).density, 0.05);
  EXPECT_DOUBLE_EQ(net->segment(1).density, 0.05);
  // Missing length falls back to Euclidean distance.
  EXPECT_NEAR(net->segment(2).length, 100.0, 1e-9);
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(EdgeListIoTest, HeaderOptionalAndCommentsSkipped) {
  std::string nodes = WriteTemp("n2.csv",
                                "# a comment\n"
                                "0,0,0\n"
                                "1,50,0\n");
  std::string edges = WriteTemp("e2.csv", "0,1\n");
  auto net = LoadEdgeListNetwork(nodes, edges);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_segments(), 2);  // default two-way
  EXPECT_NEAR(net->segment(0).length, 50.0, 1e-9);
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(EdgeListIoTest, RejectsUnknownNode) {
  std::string nodes = WriteTemp("n3.csv", "0,0,0\n1,1,1\n");
  std::string edges = WriteTemp("e3.csv", "0,7\n");
  EXPECT_FALSE(LoadEdgeListNetwork(nodes, edges).ok());
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(EdgeListIoTest, RejectsDuplicateNodeIds) {
  std::string nodes = WriteTemp("n4.csv", "5,0,0\n5,1,1\n");
  std::string edges = WriteTemp("e4.csv", "");
  EXPECT_FALSE(LoadEdgeListNetwork(nodes, edges).ok());
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(EdgeListIoTest, RejectsMalformedRows) {
  std::string nodes = WriteTemp("n5.csv", "0,0\n");  // too few fields
  std::string edges = WriteTemp("e5.csv", "0,1\n");
  EXPECT_FALSE(LoadEdgeListNetwork(nodes, edges).ok());
  std::remove(nodes.c_str());

  nodes = WriteTemp("n6.csv", "0,abc,0\n");
  EXPECT_FALSE(LoadEdgeListNetwork(nodes, edges).ok());
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(EdgeListIoTest, MissingFilesReported) {
  EXPECT_FALSE(LoadEdgeListNetwork("/no/such/nodes.csv",
                                   "/no/such/edges.csv")
                   .ok());
}

TEST(EdgeListIoTest, SaveLoadRoundTrip) {
  std::string nodes = WriteTemp("n7.csv",
                                "0,0,0\n1,100,0\n2,100,100\n");
  std::string edges = WriteTemp("e7.csv",
                                "0,1,100,0,0.25\n"
                                "1,2,100,1,0.5\n");
  RoadNetwork net = LoadEdgeListNetwork(nodes, edges).value();

  std::string nodes2 = testing::TempDir() + "/n7b.csv";
  std::string edges2 = testing::TempDir() + "/e7b.csv";
  ASSERT_TRUE(SaveEdgeListNetwork(net, nodes2, edges2).ok());
  RoadNetwork back = LoadEdgeListNetwork(nodes2, edges2).value();
  EXPECT_EQ(back.num_intersections(), net.num_intersections());
  EXPECT_EQ(back.num_segments(), net.num_segments());
  double total_density = 0.0;
  double total_density_back = 0.0;
  for (int i = 0; i < net.num_segments(); ++i) {
    total_density += net.segment(i).density;
    total_density_back += back.segment(i).density;
  }
  EXPECT_NEAR(total_density, total_density_back, 1e-9);
  for (const char* p : {nodes.c_str(), edges.c_str(), nodes2.c_str(),
                        edges2.c_str()}) {
    std::remove(p);
  }
}

}  // namespace
}  // namespace roadpart
