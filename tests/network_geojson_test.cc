#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "network/geojson_export.h"

namespace roadpart {
namespace {

RoadNetwork TinyNetwork() {
  std::vector<Intersection> pts = {{{0.0, 0.0}}, {{100.0, 0.0}}};
  std::vector<RoadSegment> segs = {{0, 1, 100.0, 0.25},
                                   {1, 0, 100.0, 0.5}};
  return RoadNetwork::Create(std::move(pts), std::move(segs)).value();
}

TEST(GeoJsonTest, ContainsAllSegments) {
  RoadNetwork net = TinyNetwork();
  GeoJsonOptions options;
  auto json = GeoJsonString(net, options);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json->find("\"id\":0"), std::string::npos);
  EXPECT_NE(json->find("\"id\":1"), std::string::npos);
  EXPECT_NE(json->find("\"density\":0.250000000"), std::string::npos);
  // Two features.
  size_t count = 0;
  size_t pos = 0;
  while ((pos = json->find("\"Feature\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(GeoJsonTest, PartitionProperty) {
  RoadNetwork net = TinyNetwork();
  GeoJsonOptions options;
  options.partition = {3, 7};
  auto json = GeoJsonString(net, options);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"partition\":3"), std::string::npos);
  EXPECT_NE(json->find("\"partition\":7"), std::string::npos);
}

TEST(GeoJsonTest, PartitionSizeValidated) {
  RoadNetwork net = TinyNetwork();
  GeoJsonOptions options;
  options.partition = {1};
  EXPECT_FALSE(GeoJsonString(net, options).ok());
}

TEST(GeoJsonTest, DensityOmittedWhenDisabled) {
  RoadNetwork net = TinyNetwork();
  GeoJsonOptions options;
  options.include_density = false;
  auto json = GeoJsonString(net, options);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->find("density"), std::string::npos);
}

TEST(GeoJsonTest, CoordinateScaleApplied) {
  RoadNetwork net = TinyNetwork();
  GeoJsonOptions options;
  options.coordinate_scale = 0.01;
  auto json = GeoJsonString(net, options);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("[1.000000,0.000000]"), std::string::npos);
}

TEST(GeoJsonTest, ExportWritesFile) {
  RoadNetwork net = TinyNetwork();
  std::string path = testing::TempDir() + "/net.geojson";
  ASSERT_TRUE(ExportGeoJson(net, {}, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("FeatureCollection"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GeoJsonTest, ExportRejectsBadPath) {
  RoadNetwork net = TinyNetwork();
  EXPECT_FALSE(ExportGeoJson(net, {}, "/nonexistent-dir/x.geojson").ok());
}

}  // namespace
}  // namespace roadpart
