// Suite for the stage-level checkpoint/resume layer (core/checkpoint.h):
// bit-exact stage codecs, the manifest-keyed store policies (mismatch and
// corruption degrade to recompute-with-warning, never failure), and the
// end-to-end guarantee that a resumed Partitioner run is bit-identical to an
// uninterrupted one — across stages, thread counts, and schemes.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectEigenEqual(const EigenSolveDiagnostics& a,
                      const EigenSolveDiagnostics& b) {
  EXPECT_EQ(a.solver_path, b.solver_path);
  EXPECT_EQ(a.solves, b.solves);
  EXPECT_EQ(a.lanczos_restarts, b.lanczos_restarts);
  EXPECT_TRUE(BitEqual(a.worst_ritz_residual, b.worst_ritz_residual));
  EXPECT_EQ(a.all_converged, b.all_converged);
}

TEST(CheckpointStageTest, NamesRoundTrip) {
  for (CheckpointStage stage : {CheckpointStage::kMining, CheckpointStage::kCut,
                                CheckpointStage::kFinal}) {
    auto parsed = ParseCheckpointStage(CheckpointStageName(stage));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, stage);
  }
  EXPECT_FALSE(ParseCheckpointStage("bogus").ok());
}

TEST(CheckpointTest, FingerprintTracksGraphContents) {
  auto net = GenerateDataset(DatasetPreset::kD1, 5);
  ASSERT_TRUE(net.ok());
  RoadGraph a = RoadGraph::FromNetwork(*net);
  RoadGraph b = RoadGraph::FromNetwork(*net);
  EXPECT_EQ(FingerprintRoadGraph(a), FingerprintRoadGraph(b));

  std::vector<double> densities(net->num_segments(), 0.5);
  densities[0] = 0.75;
  ASSERT_TRUE(net->SetDensities(densities).ok());
  RoadGraph c = RoadGraph::FromNetwork(*net);
  EXPECT_NE(FingerprintRoadGraph(a), FingerprintRoadGraph(c));
}

TEST(CheckpointTest, CanonicalOptionsStringIgnoresPureKnobs) {
  PartitionerOptions a;
  PartitionerOptions b = a;
  b.num_threads = 7;
  b.deadline_seconds = 99.0;
  b.checkpoint.dir = "/somewhere/else";
  b.checkpoint.resume = true;
  EXPECT_EQ(CanonicalOptionsString(a), CanonicalOptionsString(b));

  PartitionerOptions c = a;
  c.k = a.k + 1;
  EXPECT_NE(CanonicalOptionsString(a), CanonicalOptionsString(c));
  PartitionerOptions d = a;
  d.seed = a.seed + 1;
  EXPECT_NE(CanonicalOptionsString(a), CanonicalOptionsString(d));
}

// --- Stage codecs ---

TEST(CheckpointCodecTest, CutRoundTripIsBitExact) {
  CutCheckpoint cut;
  cut.assignment = {0, 2, 1, 1, 0, 3};
  cut.k_final = 4;
  cut.k_prime = 5;
  cut.objective = 1.0 / 3.0;
  cut.eigen.solver_path = SolverPath::kLanczosRetry;
  cut.eigen.solves = 3;
  cut.eigen.lanczos_restarts = 7;
  cut.eigen.worst_ritz_residual = 2.4061e-15;
  cut.eigen.all_converged = false;
  auto back = DecodeCutCheckpoint(EncodeCutCheckpoint(cut));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->assignment, cut.assignment);
  EXPECT_EQ(back->k_final, cut.k_final);
  EXPECT_EQ(back->k_prime, cut.k_prime);
  EXPECT_TRUE(BitEqual(back->objective, cut.objective));
  ExpectEigenEqual(back->eigen, cut.eigen);
}

TEST(CheckpointCodecTest, FinalRoundTripIsBitExact) {
  FinalCheckpoint fin;
  fin.assignment = {1, 0, 0, 2};
  fin.k_final = 3;
  fin.k_prime = 3;
  fin.num_supernodes = 17;
  fin.objective = -0.0;  // sign of zero must survive
  fin.module2_seconds = 0.123456789123456789;
  fin.module3_seconds = 1e-308;  // denormal-adjacent must survive
  fin.eigen.solver_path = SolverPath::kDense;
  fin.eigen.solves = 4;
  fin.eigen.all_converged = true;
  auto back = DecodeFinalCheckpoint(EncodeFinalCheckpoint(fin));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->assignment, fin.assignment);
  EXPECT_EQ(back->num_supernodes, fin.num_supernodes);
  EXPECT_TRUE(BitEqual(back->objective, fin.objective));
  EXPECT_TRUE(BitEqual(back->module2_seconds, fin.module2_seconds));
  EXPECT_TRUE(BitEqual(back->module3_seconds, fin.module3_seconds));
  ExpectEigenEqual(back->eigen, fin.eigen);
}

TEST(CheckpointCodecTest, MiningRoundTripReproducesSupergraphExactly) {
  auto net = GenerateDataset(DatasetPreset::kD1, 5);
  ASSERT_TRUE(net.ok());
  RoadGraph rg = RoadGraph::FromNetwork(*net);
  MiningCheckpoint mining;
  mining.roadgraph_fallback = false;
  mining.module2_seconds = 0.0421;
  auto sg = MineSupergraph(rg, {}, &mining.report);
  ASSERT_TRUE(sg.ok());
  mining.num_supernodes = sg->num_supernodes();
  mining.supergraph = *sg;

  auto back = DecodeMiningCheckpoint(EncodeMiningCheckpoint(mining));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->roadgraph_fallback, mining.roadgraph_fallback);
  EXPECT_EQ(back->num_supernodes, mining.num_supernodes);
  EXPECT_TRUE(BitEqual(back->module2_seconds, mining.module2_seconds));
  EXPECT_EQ(back->report.kappas, mining.report.kappas);
  EXPECT_EQ(back->report.shortlisted_kappas,
            mining.report.shortlisted_kappas);
  EXPECT_EQ(back->report.chosen_kappa, mining.report.chosen_kappa);
  ASSERT_EQ(back->report.mcg.size(), mining.report.mcg.size());
  for (size_t i = 0; i < mining.report.mcg.size(); ++i) {
    EXPECT_TRUE(BitEqual(back->report.mcg[i], mining.report.mcg[i]));
  }
  ASSERT_EQ(back->report.stability_values.size(),
            mining.report.stability_values.size());
  for (size_t i = 0; i < mining.report.stability_values.size(); ++i) {
    EXPECT_TRUE(BitEqual(back->report.stability_values[i],
                         mining.report.stability_values[i]));
  }

  ASSERT_TRUE(back->supergraph.has_value());
  const Supergraph& restored = *back->supergraph;
  ASSERT_EQ(restored.num_supernodes(), sg->num_supernodes());
  EXPECT_EQ(restored.num_road_nodes(), sg->num_road_nodes());
  for (int s = 0; s < sg->num_supernodes(); ++s) {
    EXPECT_EQ(restored.supernode(s).members, sg->supernode(s).members);
    EXPECT_TRUE(
        BitEqual(restored.supernode(s).feature, sg->supernode(s).feature));
  }
  EXPECT_EQ(restored.links().offsets(), sg->links().offsets());
  EXPECT_EQ(restored.links().neighbors(), sg->links().neighbors());
  ASSERT_EQ(restored.links().weights().size(), sg->links().weights().size());
  for (size_t i = 0; i < sg->links().weights().size(); ++i) {
    EXPECT_TRUE(
        BitEqual(restored.links().weights()[i], sg->links().weights()[i]));
  }
}

TEST(CheckpointCodecTest, GarbageDecodesAsCorruption) {
  EXPECT_EQ(DecodeCutCheckpoint("").status().code(), StatusCode::kCorruption);
  EXPECT_EQ(DecodeCutCheckpoint("nonsense 1 2 3\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeMiningCheckpoint("fallback maybe\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeFinalCheckpoint("k-final notanint\n").status().code(),
            StatusCode::kCorruption);
}

// --- Store policies ---

TEST(CheckpointStoreTest, SaveThenResumeServesPayload) {
  CheckpointOptions options;
  options.dir = FreshDir("store_roundtrip");
  RunManifest manifest{0x1234, 0x5678};

  CheckpointStore writer(options, manifest);
  ASSERT_TRUE(writer.Initialize().ok());
  EXPECT_FALSE(writer.resuming());
  EXPECT_FALSE(writer.LoadStage(CheckpointStage::kMining).has_value());
  ASSERT_TRUE(
      writer.SaveStage(CheckpointStage::kMining, "stage payload\n").ok());

  options.resume = true;
  CheckpointStore reader(options, manifest);
  ASSERT_TRUE(reader.Initialize().ok());
  EXPECT_TRUE(reader.resuming());
  auto payload = reader.LoadStage(CheckpointStage::kMining);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "stage payload\n");
  EXPECT_TRUE(reader.warnings().empty());
  std::filesystem::remove_all(options.dir);
}

TEST(CheckpointStoreTest, ManifestMismatchInvalidatesStaleStages) {
  CheckpointOptions options;
  options.dir = FreshDir("store_mismatch");
  CheckpointStore writer(options, RunManifest{1, 2});
  ASSERT_TRUE(writer.Initialize().ok());
  ASSERT_TRUE(writer.SaveStage(CheckpointStage::kCut, "stale\n").ok());

  options.resume = true;
  CheckpointStore reader(options, RunManifest{1, 3});  // options changed
  ASSERT_TRUE(reader.Initialize().ok());
  EXPECT_FALSE(reader.resuming());
  EXPECT_FALSE(reader.LoadStage(CheckpointStage::kCut).has_value());
  EXPECT_FALSE(reader.warnings().empty());
  // The stale stage file must be gone, not waiting to ambush a later run.
  EXPECT_FALSE(std::filesystem::exists(reader.StagePath(CheckpointStage::kCut)));
  std::filesystem::remove_all(options.dir);
}

TEST(CheckpointStoreTest, WithoutResumeDirIsReinitialized) {
  CheckpointOptions options;
  options.dir = FreshDir("store_noresume");
  RunManifest manifest{7, 8};
  CheckpointStore writer(options, manifest);
  ASSERT_TRUE(writer.Initialize().ok());
  ASSERT_TRUE(writer.SaveStage(CheckpointStage::kFinal, "old run\n").ok());

  CheckpointStore fresh(options, manifest);  // resume not requested
  ASSERT_TRUE(fresh.Initialize().ok());
  EXPECT_FALSE(fresh.resuming());
  EXPECT_FALSE(fresh.LoadStage(CheckpointStage::kFinal).has_value());
  std::filesystem::remove_all(options.dir);
}

TEST(CheckpointStoreTest, CorruptStageFileDegradesToRecompute) {
  CheckpointOptions options;
  options.dir = FreshDir("store_corrupt");
  RunManifest manifest{42, 43};
  CheckpointStore writer(options, manifest);
  ASSERT_TRUE(writer.Initialize().ok());
  ASSERT_TRUE(writer.SaveStage(CheckpointStage::kMining, "good bytes\n").ok());

  // Flip one byte of the stage artifact on disk.
  std::string stage_path = writer.StagePath(CheckpointStage::kMining);
  auto bytes = ReadFileBytes(stage_path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[mutated.size() / 2] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(stage_path, mutated).ok());

  options.resume = true;
  CheckpointStore reader(options, manifest);
  ASSERT_TRUE(reader.Initialize().ok());
  EXPECT_TRUE(reader.resuming());
  EXPECT_FALSE(reader.LoadStage(CheckpointStage::kMining).has_value());
  EXPECT_FALSE(reader.warnings().empty());  // degradation is reported
  std::filesystem::remove_all(options.dir);
}

TEST(CheckpointStoreTest, DisabledStoreIsInert) {
  CheckpointStore store;
  EXPECT_FALSE(store.enabled());
  EXPECT_FALSE(store.LoadStage(CheckpointStage::kMining).has_value());
  EXPECT_TRUE(store.SaveStage(CheckpointStage::kMining, "ignored").ok());
}

// --- End-to-end resume == fresh ---

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto net = GenerateDataset(DatasetPreset::kD1, 5);
    ASSERT_TRUE(net.ok());
    graph_ = RoadGraph::FromNetwork(*net);
  }

  PartitionerOptions BaseOptions(Scheme scheme, const std::string& dir) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = 4;
    options.seed = 11;
    options.checkpoint.dir = dir;
    return options;
  }

  RoadGraph graph_;
};

TEST_F(CheckpointResumeTest, ResumeReproducesFreshRunBitExactly) {
  for (Scheme scheme : {Scheme::kASG, Scheme::kNG}) {
    std::string dir =
        FreshDir(std::string("resume_scheme_") + SchemeName(scheme));
    PartitionerOptions options = BaseOptions(scheme, dir);

    auto fresh = Partitioner(options).PartitionRoadGraph(graph_);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    options.checkpoint.resume = true;
    options.num_threads = 3;  // thread count must not affect the result
    auto resumed = Partitioner(options).PartitionRoadGraph(graph_);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

    EXPECT_EQ(resumed->assignment, fresh->assignment);
    EXPECT_EQ(resumed->k_final, fresh->k_final);
    EXPECT_EQ(resumed->k_prime, fresh->k_prime);
    EXPECT_EQ(resumed->num_supernodes, fresh->num_supernodes);
    EXPECT_TRUE(BitEqual(resumed->objective, fresh->objective));
    ExpectEigenEqual(resumed->diagnostics.eigen, fresh->diagnostics.eigen);
    std::filesystem::remove_all(dir);
  }
}

TEST_F(CheckpointResumeTest, PartialCheckpointsResumeMidPipeline) {
  std::string dir = FreshDir("resume_partial");
  PartitionerOptions options = BaseOptions(Scheme::kASG, dir);

  auto fresh = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(fresh.ok());

  // Simulate a crash between 'cut' and 'final': delete the later stages and
  // resume with only the mining checkpoint surviving.
  std::filesystem::remove(dir + "/stage-cut.rpcp");
  std::filesystem::remove(dir + "/stage-final.rpcp");
  options.checkpoint.resume = true;
  auto resumed = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->assignment, fresh->assignment);
  EXPECT_TRUE(BitEqual(resumed->objective, fresh->objective));
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointResumeTest, ChangedOptionsInvalidateAndRecompute) {
  std::string dir = FreshDir("resume_invalidate");
  PartitionerOptions options = BaseOptions(Scheme::kASG, dir);
  auto first = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(first.ok());

  options.k = 5;  // output-affecting change: stored stages must not be used
  options.checkpoint.resume = true;
  auto second = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->k_final, 5);
  // The mismatch is surfaced as a warning, not silently absorbed.
  bool warned = false;
  for (const std::string& w : second->diagnostics.warnings) {
    if (w.find("checkpoint") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);

  // And the uncheckpointed ground truth agrees with the recomputed run.
  PartitionerOptions plain = options;
  plain.checkpoint = CheckpointOptions{};
  auto ground = Partitioner(plain).PartitionRoadGraph(graph_);
  ASSERT_TRUE(ground.ok());
  EXPECT_EQ(second->assignment, ground->assignment);
  std::filesystem::remove_all(dir);
}

TEST_F(CheckpointResumeTest, CorruptStageRecomputesIdenticalResult) {
  std::string dir = FreshDir("resume_corrupt_stage");
  PartitionerOptions options = BaseOptions(Scheme::kASG, dir);
  auto fresh = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(fresh.ok());

  // Corrupt the mining checkpoint and delete the downstream stages: the
  // resumed run must detect the damage, recompute, and still match.
  std::string mining_path = dir + "/stage-mining.rpcp";
  auto bytes = ReadFileBytes(mining_path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[mutated.size() / 3] ^= 0x04;
  ASSERT_TRUE(AtomicWriteFile(mining_path, mutated).ok());
  std::filesystem::remove(dir + "/stage-cut.rpcp");
  std::filesystem::remove(dir + "/stage-final.rpcp");

  options.checkpoint.resume = true;
  auto resumed = Partitioner(options).PartitionRoadGraph(graph_);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->assignment, fresh->assignment);
  bool warned = false;
  for (const std::string& w : resumed->diagnostics.warnings) {
    if (w.find("recomputing") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace roadpart
