// Crash-injection harness for the checkpoint/resume layer, end to end
// through the real CLI binary (path injected by CMake as RP_CLI_PATH). For
// every stage boundary the pipeline is killed hard (std::_Exit, no
// unwinding) immediately after that stage's checkpoint became durable; the
// rerun with --resume must then produce output byte-identical to an
// uninterrupted run — including across a different thread count.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

#ifndef RP_CLI_PATH
#define RP_CLI_PATH "roadpart_cli"
#endif

int RunCli(const std::string& args) {
  std::string command =
      std::string(RP_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string Slurp(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  return bytes.ok() ? *bytes : std::string();
}

class CheckpointCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = testing::TempDir() + "/checkpoint_crash";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    net_ = root_ + "/city.net";
    ASSERT_EQ(RunCli("generate --preset=D1 --seed=9 " + net_), 0);

    // Uninterrupted baseline, no checkpointing involved at all.
    ASSERT_EQ(RunCli(PartitionArgs(root_ + "/base", "")), 0);
    baseline_csv_ = Slurp(root_ + "/base/parts.csv");
    baseline_geojson_ = Slurp(root_ + "/base/parts.geojson");
    ASSERT_FALSE(baseline_csv_.empty());
    ASSERT_FALSE(baseline_geojson_.empty());
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string PartitionArgs(const std::string& out_dir,
                            const std::string& extra) {
    return "partition --scheme=ASG --k=4 --seed=11 --output-dir=" + out_dir +
           " --geojson=parts.geojson " + extra + " " + net_ + " parts.csv";
  }

  std::string root_;
  std::string net_;
  std::string baseline_csv_;
  std::string baseline_geojson_;
};

TEST_F(CheckpointCrashTest, KillAtEveryStageBoundaryThenResumeBitIdentical) {
  for (const std::string stage : {"mining", "cut", "final"}) {
    std::string out = root_ + "/out_" + stage;
    std::string cp = root_ + "/cp_" + stage;

    // The injected crash exits hard with code 42 after `stage` is durable.
    EXPECT_EQ(RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp +
                                            " --crash-after-stage=" + stage)),
              42)
        << "stage " << stage;
    // A killed run must never have published output files.
    EXPECT_FALSE(std::filesystem::exists(out + "/parts.csv"))
        << "stage " << stage;
    // The crashed-after stage's checkpoint must be durably on disk.
    EXPECT_TRUE(std::filesystem::exists(cp + "/stage-" + stage + ".rpcp"))
        << "stage " << stage;
    // No temp files may linger in either directory.
    for (const auto& entry : std::filesystem::directory_iterator(cp)) {
      EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
          << entry.path();
    }

    // Resume — on a different thread count — and demand byte equality.
    EXPECT_EQ(RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp +
                                            " --resume --threads=3")),
              0)
        << "stage " << stage;
    EXPECT_EQ(Slurp(out + "/parts.csv"), baseline_csv_) << "stage " << stage;
    EXPECT_EQ(Slurp(out + "/parts.geojson"), baseline_geojson_)
        << "stage " << stage;
  }
}

TEST_F(CheckpointCrashTest, ResumeOfCompletedRunIsBitIdentical) {
  std::string out = root_ + "/out_complete";
  std::string cp = root_ + "/cp_complete";
  ASSERT_EQ(RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp)), 0);
  ASSERT_EQ(Slurp(out + "/parts.csv"), baseline_csv_);

  std::filesystem::remove_all(out);
  ASSERT_EQ(RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp + " --resume")),
            0);
  EXPECT_EQ(Slurp(out + "/parts.csv"), baseline_csv_);
  EXPECT_EQ(Slurp(out + "/parts.geojson"), baseline_geojson_);
}

TEST_F(CheckpointCrashTest, RoadGraphSchemeCrashAtCutResumes) {
  // NG has no mining stage; prove the cut-stage checkpoint alone carries it.
  std::string base = root_ + "/ng_base";
  std::string out = root_ + "/ng_out";
  std::string cp = root_ + "/ng_cp";
  std::string common = "partition --scheme=NG --k=4 --seed=11 " + net_ +
                       " parts.csv --geojson=parts.geojson --output-dir=";
  ASSERT_EQ(RunCli(common + base), 0);
  EXPECT_EQ(RunCli(common + out + " --checkpoint-dir=" + cp +
                   " --crash-after-stage=cut"),
            42);
  EXPECT_FALSE(std::filesystem::exists(out + "/parts.csv"));
  EXPECT_EQ(RunCli(common + out + " --checkpoint-dir=" + cp + " --resume"), 0);
  EXPECT_EQ(Slurp(out + "/parts.csv"), Slurp(base + "/parts.csv"));
  EXPECT_EQ(Slurp(out + "/parts.geojson"), Slurp(base + "/parts.geojson"));
}

TEST_F(CheckpointCrashTest, CrashMidCsvWriteLeavesNoTornOutput) {
  // Crash after 'final' (before the CLI writes the CSV): the output dir may
  // hold nothing or a complete file, never a torn one — and rerunning lands
  // the byte-identical output. This is the atomic-writer guarantee at the
  // CLI surface.
  std::string out = root_ + "/torn_out";
  std::string cp = root_ + "/torn_cp";
  ASSERT_EQ(RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp +
                                          " --crash-after-stage=final")),
            42);
  if (std::filesystem::exists(out)) {
    for (const auto& entry : std::filesystem::directory_iterator(out)) {
      EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
          << "lingering temp file " << entry.path();
    }
  }
  ASSERT_EQ(
      RunCli(PartitionArgs(out, "--checkpoint-dir=" + cp + " --resume")), 0);
  EXPECT_EQ(Slurp(out + "/parts.csv"), baseline_csv_);
}

}  // namespace
}  // namespace roadpart
