// Fixture tests for the project linter: every rule is exercised both firing
// on a minimal violation and passing on the closest clean counterexample.

#include "tools/rp_lint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace roadpart {
namespace lint {
namespace {

std::vector<std::string> Rules(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rules;
  for (const LintFinding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<LintFinding>& findings,
             const std::string& rule) {
  const std::vector<std::string> rules = Rules(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::vector<LintFinding> Lint(const std::string& path,
                              const std::string& source,
                              std::vector<std::string> status_fns = {}) {
  return LintSource(path, source, status_fns);
}

// --- StripCommentsAndStrings -----------------------------------------------

TEST(StripTest, RemovesCommentsAndLiteralsKeepsLines) {
  std::string in =
      "int a; // trailing rand()\n"
      "/* block\n   spanning */ int b;\n"
      "const char* s = \"rand(\";\n"
      "char c = 'x';\n";
  std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripTest, HandlesEscapedQuotes) {
  std::string out =
      StripCommentsAndStrings("const char* s = \"a\\\"rand(\"; int x;");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

// --- banned-nondeterminism ---------------------------------------------------

TEST(NondeterminismRule, FlagsRandAndFriends) {
  EXPECT_TRUE(HasRule(Lint("src/core/x.cc", "int v = rand();"),
                      "banned-nondeterminism"));
  EXPECT_TRUE(HasRule(Lint("bench/b.cc", "srand(42);"),
                      "banned-nondeterminism"));
  EXPECT_TRUE(HasRule(Lint("tools/t.cc", "std::random_device rd;"),
                      "banned-nondeterminism"));
  EXPECT_TRUE(HasRule(Lint("src/core/x.cc", "Rng r(time(nullptr));"),
                      "banned-nondeterminism"));
  EXPECT_TRUE(HasRule(Lint("src/core/x.cc", "srand(time(NULL));"),
                      "banned-nondeterminism"));
}

TEST(NondeterminismRule, CleanCounterexamples) {
  // The sanctioned Rng, similarly-named identifiers, strings and comments.
  EXPECT_TRUE(Lint("src/core/x.cc", "Rng rng(seed); rng.NextDouble();").empty());
  EXPECT_TRUE(Lint("src/core/x.cc", "int operand = grand(1);").empty());
  EXPECT_TRUE(Lint("src/core/x.cc", "double t = time(now);").empty());
  EXPECT_TRUE(Lint("src/core/x.cc", "// rand() in a comment\n").empty());
  EXPECT_TRUE(
      Lint("src/core/x.cc", "const char* s = \"rand(\";").empty());
  // The one sanctioned randomness implementation file.
  EXPECT_TRUE(
      Lint("src/common/rng.cc", "uint64_t x = rand();").empty());
}

// --- print-in-library --------------------------------------------------------

TEST(PrintRule, FlagsPrintsInLibraryCode) {
  EXPECT_TRUE(HasRule(Lint("src/core/x.cc", "std::cout << 1;"),
                      "print-in-library"));
  EXPECT_TRUE(HasRule(Lint("src/core/x.cc", "std::cerr << 1;"),
                      "print-in-library"));
  EXPECT_TRUE(HasRule(Lint("src/graph/g.cc", "printf(\"%d\", 1);"),
                      "print-in-library"));
  EXPECT_TRUE(
      HasRule(Lint("src/graph/g.cc", "std::fprintf(stderr, \"x\");"),
              "print-in-library"));
}

TEST(PrintRule, CleanCounterexamples) {
  // Logging macro is the sanctioned path.
  EXPECT_TRUE(Lint("src/core/x.cc", "RP_LOG(Info) << \"x\";").empty());
  // CLI / bench / test code may print.
  EXPECT_TRUE(Lint("tools/cli.cc", "std::cout << 1;").empty());
  EXPECT_TRUE(Lint("bench/b.cc", "printf(\"%d\", 1);").empty());
  // The logging sink itself is exempt.
  EXPECT_TRUE(
      Lint("src/common/logging.cc", "std::fputs(\"x\", stderr);").empty());
  // snprintf into a buffer is formatting, not printing.
  EXPECT_TRUE(
      Lint("src/common/s.cc", "std::vsnprintf(out, n, fmt, args);").empty());
}

// --- discarded-status --------------------------------------------------------

TEST(DiscardedStatusRule, FlagsBareCalls) {
  const std::vector<std::string> fns = {"Save", "Validate"};
  EXPECT_TRUE(HasRule(Lint("src/x.cc", "void f() { Save(1); }", fns),
                      "discarded-status"));
  EXPECT_TRUE(HasRule(Lint("src/x.cc", "void f() { g.Validate(); }", fns),
                      "discarded-status"));
  EXPECT_TRUE(HasRule(Lint("src/x.cc", "void f() { io::Save(p, q); }", fns),
                      "discarded-status"));
}

TEST(DiscardedStatusRule, CleanCounterexamples) {
  const std::vector<std::string> fns = {"Save", "Validate"};
  EXPECT_TRUE(Lint("src/x.cc", "Status s = Save(1);", fns).empty());
  EXPECT_TRUE(Lint("src/x.cc", "return Save(1);", fns).empty());
  EXPECT_TRUE(Lint("src/x.cc", "RP_CHECK_OK(Save(1));", fns).empty());
  EXPECT_TRUE(Lint("src/x.cc", "(void)Save(1);", fns).empty());
  EXPECT_TRUE(
      Lint("src/x.cc", "if (!Save(1).ok()) return;", fns).empty());
  // Unknown names are not guessed at.
  EXPECT_TRUE(Lint("src/x.cc", "void f() { Other(1); }", fns).empty());
}

// --- parallelfor-shared-mutation --------------------------------------------

TEST(ParallelForRule, FlagsSharedAccumulation) {
  EXPECT_TRUE(HasRule(
      Lint("src/x.cc",
           "double sum = 0;\n"
           "ParallelFor(n, [&](int i) { sum += w[i]; });"),
      "parallelfor-shared-mutation"));
  EXPECT_TRUE(HasRule(
      Lint("src/x.cc",
           "ParallelForBlocked(n, 64, [&](int64_t b, int64_t e) {\n"
           "  total += Work(b, e);\n"
           "});"),
      "parallelfor-shared-mutation"));
  EXPECT_TRUE(HasRule(
      Lint("src/x.cc",
           "std::vector<int> out;\n"
           "ParallelFor(n, [&](int i) { out.push_back(i); });"),
      "parallelfor-shared-mutation"));
  EXPECT_TRUE(HasRule(
      Lint("src/x.cc", "ParallelFor(n, [&](int i) { ++count; });"),
      "parallelfor-shared-mutation"));
  EXPECT_TRUE(HasRule(
      Lint("src/x.cc",
           "ParallelFor(n, [&](int i) { acc.total += w[i]; });"),
      "parallelfor-shared-mutation"));
  // The mining kappa sweep must not accumulate its arg-max inside the
  // parallel region (that is done serially after the join).
  EXPECT_TRUE(HasRule(
      Lint("src/core/supergraph_miner.cc",
           "ParallelForTasks(num_sweep, [&](int i) {\n"
           "  best_mcg += Score(i);\n"
           "});"),
      "parallelfor-shared-mutation"));
}

TEST(ParallelForRule, MiningSweepIdiomIsClean) {
  // The supergraph-mining fast path: per-kappa slots written by index from
  // ParallelForTasks, consumed serially after the join.
  EXPECT_TRUE(
      Lint("src/core/supergraph_miner.cc",
           "ParallelForTasks(num_sweep, [&](int i) {\n"
           "  rep.kappas[i] = i + 2;\n"
           "  mcg[i] = Score(values, i + 2);\n"
           "});")
          .empty());
  EXPECT_TRUE(
      Lint("src/core/supergraph_miner.cc",
           "ParallelForTasks(num_shortlisted, [&](int i) {\n"
           "  sweep_status[i] = Cluster(workspace, kappas[i]);\n"
           "  evaluated[i] = 1;\n"
           "});")
          .empty());
}

TEST(ParallelForRule, CleanCounterexamples) {
  // Disjoint indexed writes — the library's idiom.
  EXPECT_TRUE(
      Lint("src/x.cc", "ParallelFor(n, [&](int i) { out[i] = f(i); });")
          .empty());
  EXPECT_TRUE(
      Lint("src/x.cc",
           "ParallelForBlocked(n, 64, [&](int64_t b, int64_t e) {\n"
           "  for (int64_t i = b; i < e; ++i) sums[i] += x[i];\n"
           "});")
          .empty());
  // Lambda-local accumulator flushed to an indexed slot.
  EXPECT_TRUE(
      Lint("src/x.cc",
           "ParallelForBlocked(n, 64, [&](int64_t b, int64_t e) {\n"
           "  double acc = 0.0;\n"
           "  for (int64_t i = b; i < e; ++i) acc += x[i];\n"
           "  partial[b / 64] = acc;\n"
           "});")
          .empty());
  // Value capture cannot mutate shared state.
  EXPECT_TRUE(
      Lint("src/x.cc", "ParallelFor(n, [=](int i) { Use(i); });").empty());
  // Locally declared containers may grow.
  EXPECT_TRUE(
      Lint("src/x.cc",
           "ParallelFor(n, [&](int i) {\n"
           "  std::vector<int> local;\n"
           "  local.push_back(i);\n"
           "  Consume(i, local);\n"
           "});")
          .empty());
  // The blocked-reduction helpers are the sanctioned accumulation path.
  EXPECT_TRUE(
      Lint("src/x.cc",
           "double s = ParallelBlockedSum(n, 64, [&](int64_t b, int64_t e) {\n"
           "  double acc = 0.0;\n"
           "  for (int64_t i = b; i < e; ++i) acc += x[i];\n"
           "  return acc;\n"
           "});")
          .empty());
}

TEST(ParallelForRule, ServeBatchIdioms) {
  // The serving loop's order-fixed fan-out: each task renders into a
  // lambda-local buffer, then moves it into its own answer slot. Clean.
  EXPECT_TRUE(
      Lint("src/serve/serve_loop.cc",
           "ParallelForTasks(num_batches, [&](int b) {\n"
           "  std::string local;\n"
           "  AppendAnswer(snapshot, batch[b], &local);\n"
           "  answers[b] = std::move(local);\n"
           "});")
          .empty());
  // Appending straight to the shared output inside the region would make
  // the answer order depend on thread scheduling. Flagged.
  EXPECT_TRUE(HasRule(
      Lint("src/serve/serve_loop.cc",
           "ParallelForTasks(num_batches, [&](int b) {\n"
           "  output += RenderBatch(snapshot, b);\n"
           "});"),
      "parallelfor-shared-mutation"));
}

TEST(PrintRule, ServeLibraryMustNotPrint) {
  // src/serve/ is library code: diagnostics flow through Status, and only
  // the tools/rp_serve.cc frontend talks to stderr/stdout.
  EXPECT_TRUE(HasRule(
      Lint("src/serve/snapshot.cc",
           "std::fprintf(stderr, \"bad snapshot\\n\");"),
      "print-in-library"));
  EXPECT_TRUE(
      Lint("tools/rp_serve.cc", "std::fprintf(stderr, \"loaded\\n\");")
          .empty());
}

// --- unchecked-eigen-convergence --------------------------------------------

TEST(UncheckedEigenRule, FlagsEigenvectorUseWithoutConvergenceCheck) {
  std::vector<LintFinding> findings =
      Lint("src/core/x.cc",
           "DenseMatrix Use(const EigenResult& eig) {\n"
           "  return eig.eigenvectors;\n"
           "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unchecked-eigen-convergence");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(UncheckedEigenRule, PointerAccessAlsoFlagged) {
  EXPECT_TRUE(HasRule(Lint("bench/b.cc", "auto y = eig->eigenvectors;"),
                      "unchecked-eigen-convergence"));
}

TEST(UncheckedEigenRule, ConsultingConvergedIsClean) {
  EXPECT_TRUE(
      Lint("src/core/x.cc",
           "DenseMatrix Use(const EigenResult& eig) {\n"
           "  RP_CHECK(eig.converged);\n"
           "  return eig.eigenvectors;\n"
           "}\n")
          .empty());
}

TEST(UncheckedEigenRule, ConsultingResidualIsClean) {
  EXPECT_TRUE(
      Lint("src/core/x.cc",
           "DenseMatrix Use(const EigenResult& eig) {\n"
           "  if (eig.max_residual > 1e-6) Abort();\n"
           "  return eig.eigenvectors;\n"
           "}\n")
          .empty());
}

TEST(UncheckedEigenRule, SolverInternalsExempt) {
  EXPECT_TRUE(
      Lint("src/linalg/lanczos.cc", "best.eigenvectors = Assemble(q, s);")
          .empty());
}

TEST(UncheckedEigenRule, UnrelatedIdentifiersNotFlagged) {
  // Only member access to the exact field name counts.
  EXPECT_TRUE(
      Lint("src/core/x.cc",
           "auto y = ExtremeEigenvectors(op, k, end, options);\n"
           "int eigenvectors = 3;\n")
          .empty());
}

// --- raw-ofstream-write ------------------------------------------------------

TEST(RawOfstreamRule, FlagsOfstreamInLibraryCode) {
  EXPECT_TRUE(HasRule(
      Lint("src/network/io.cc", "std::ofstream out(path); out << data;"),
      "raw-ofstream-write"));
  EXPECT_TRUE(HasRule(Lint("src/temporal/s.cc", "ofstream out(p);"),
                      "raw-ofstream-write"));
  EXPECT_TRUE(HasRule(
      Lint("src/core/c.cc", "std::FILE* f = fopen(p.c_str(), \"w\");"),
      "raw-ofstream-write"));
}

TEST(RawOfstreamRule, CleanCounterexamples) {
  // The durable-io layer itself is the one sanctioned writer.
  EXPECT_TRUE(
      Lint("src/common/durable_io.cc", "std::ofstream out(tmp);").empty());
  EXPECT_TRUE(
      Lint("src/common/durable_io.cc",
           "std::FILE* f = fopen(path.c_str(), \"rb\");")
          .empty());
  // Tests, tools and benches may write files directly.
  EXPECT_TRUE(Lint("tools/cli.cc", "std::ofstream out(path);").empty());
  EXPECT_TRUE(Lint("bench/b.cc", "std::ofstream out(path);").empty());
  // The sanctioned write path and similarly named identifiers are clean.
  EXPECT_TRUE(
      Lint("src/network/io.cc",
           "AtomicFileWriter out(path); RP_RETURN_IF_ERROR(out.Commit());")
          .empty());
  EXPECT_TRUE(
      Lint("src/network/io.cc", "int my_ofstream_count = 0;").empty());
}

// --- CollectStatusFunctionNames ---------------------------------------------

TEST(CollectStatusNames, FindsStatusAndResultReturners) {
  std::string header =
      "Status SaveThing(const Thing& t, const std::string& path);\n"
      "Result<Thing> LoadThing(const std::string& path);\n"
      "Result<std::vector<int>> LoadMany(int n);\n"
      "void Helper(int x);\n"
      "double Metric(const Thing& t);\n";
  std::vector<std::string> names = CollectStatusFunctionNames(header);
  EXPECT_EQ(names, (std::vector<std::string>{"LoadMany", "LoadThing",
                                             "SaveThing"}));
}

TEST(CollectStatusNames, IgnoresConstructorsAndMentionsInComments) {
  std::string header =
      "// Returns Status Save(x) on failure.\n"
      "class Result;\n"
      "Result(Status s);\n";
  EXPECT_TRUE(CollectStatusFunctionNames(header).empty());
}

// --- Finding formatting ------------------------------------------------------

TEST(FindingTest, ToStringIsGrepFriendly) {
  std::vector<LintFinding> findings =
      Lint("src/core/x.cc", "int v = rand();");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].ToString().find("src/core/x.cc:1: "),
            std::string::npos);
  EXPECT_NE(findings[0].ToString().find("[banned-nondeterminism]"),
            std::string::npos);
}

TEST(FindingTest, LineNumbersSurviveStripping) {
  std::vector<LintFinding> findings = Lint("src/core/x.cc",
                                           "// line 1 comment\n"
                                           "/* line 2\n"
                                           "   line 3 */\n"
                                           "int v = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

}  // namespace
}  // namespace lint
}  // namespace roadpart
