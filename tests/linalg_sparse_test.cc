#include <gtest/gtest.h>

#include "linalg/sparse_matrix.h"

namespace roadpart {
namespace {

TEST(SparseMatrixTest, FromTripletsBasic) {
  auto m = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, 2.0}, {2, 2, 1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->NumNonZeros(), 3);
  EXPECT_DOUBLE_EQ(m->At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m->At(1, 1), 0.0);
}

TEST(SparseMatrixTest, DuplicatesSummed) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->NumNonZeros(), 1);
  EXPECT_DOUBLE_EQ(m->At(0, 0), 3.5);
}

TEST(SparseMatrixTest, ExplicitZerosDropped) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->NumNonZeros(), 0);
}

TEST(SparseMatrixTest, OutOfRangeRejected) {
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{-1, 0, 1.0}}).ok());
}

TEST(SparseMatrixTest, ColumnsSortedWithinRows) {
  auto m = SparseMatrix::FromTriplets(
      1, 5, {{0, 4, 1.0}, {0, 1, 1.0}, {0, 3, 1.0}});
  ASSERT_TRUE(m.ok());
  const auto& cols = m->col_indices();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_TRUE(cols[0] < cols[1] && cols[1] < cols[2]);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  auto m = SparseMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, -1.0}, {2, 0, 3.0}});
  ASSERT_TRUE(m.ok());
  double x[3] = {1.0, 2.0, 3.0};
  double y_sparse[3];
  m->Multiply(x, y_sparse);
  DenseMatrix d = m->ToDense();
  double y_dense[3];
  d.Multiply(x, y_dense);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y_sparse[i], y_dense[i]);
}

TEST(SparseMatrixTest, RowSumsAndTotal) {
  auto m = SparseMatrix::FromTriplets(2, 2,
                                      {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 4.0}});
  ASSERT_TRUE(m.ok());
  auto sums = m->RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 4.0);
  EXPECT_DOUBLE_EQ(m->TotalSum(), 7.0);
}

TEST(SparseMatrixTest, SymmetricFromTriplets) {
  auto m = SparseMatrix::SymmetricFromTriplets(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m->At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m->At(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(m->SymmetryError(), 0.0);
}

TEST(SparseMatrixTest, SymmetricKeepsDiagonalOnce) {
  auto m = SparseMatrix::SymmetricFromTriplets(2, {{0, 0, 5.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(0, 0), 5.0);
}

TEST(SparseMatrixTest, SymmetryErrorDetectsAsymmetry) {
  auto m = SparseMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {1, 0, 3.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->SymmetryError(), 2.0);
}

TEST(SparseMatrixTest, SubmatrixExtractsAndRelabels) {
  // 4-cycle weighted 1; take nodes {0, 2} -> no edges between them.
  auto m = SparseMatrix::SymmetricFromTriplets(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 0, 1.0}});
  ASSERT_TRUE(m.ok());
  SparseMatrix sub = m->Submatrix({0, 2});
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.NumNonZeros(), 0);

  SparseMatrix sub2 = m->Submatrix({0, 1, 2});
  EXPECT_DOUBLE_EQ(sub2.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sub2.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(sub2.At(0, 2), 0.0);
}

TEST(SparseMatrixTest, EmptyMatrix) {
  auto m = SparseMatrix::FromTriplets(0, 0, {});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 0);
  EXPECT_EQ(m->NumNonZeros(), 0);
}

}  // namespace
}  // namespace roadpart
