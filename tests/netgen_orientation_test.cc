#include <gtest/gtest.h>

#include <queue>

#include "common/rng.h"
#include "netgen/city_generator.h"
#include "netgen/grid_generator.h"
#include "netgen/orientation.h"
#include "netgen/radial_generator.h"
#include "traffic/router.h"

namespace roadpart {
namespace {

// Directed reachability count from `start` over the oriented roads.
int ReachableCount(int n, const std::vector<std::pair<int, int>>& roads,
                   const RoadOrientation& orientation, int start) {
  std::vector<std::vector<int>> out(n);
  for (size_t r = 0; r < roads.size(); ++r) {
    auto [from, to] = orientation.direction[r];
    out[from].push_back(to);
    if (orientation.two_way[r]) out[to].push_back(from);
  }
  std::vector<char> seen(n, 0);
  std::queue<int> fifo;
  seen[start] = 1;
  fifo.push(start);
  int count = 1;
  while (!fifo.empty()) {
    int u = fifo.front();
    fifo.pop();
    for (int v : out[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        fifo.push(v);
      }
    }
  }
  return count;
}

bool StronglyConnected(int n, const std::vector<std::pair<int, int>>& roads,
                       const RoadOrientation& orientation) {
  if (n == 0) return true;
  if (ReachableCount(n, roads, orientation, 0) != n) return false;
  // Reverse reachability: flip every direction.
  RoadOrientation reversed = orientation;
  for (auto& [from, to] : reversed.direction) std::swap(from, to);
  return ReachableCount(n, roads, reversed, 0) == n;
}

TEST(OrientRoadsTest, CycleNeedsNoTwoWay) {
  // A 4-cycle is 2-edge-connected: strongly connectable with zero budget.
  std::vector<std::pair<int, int>> roads = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  Rng rng(1);
  RoadOrientation o = OrientRoads(4, roads, 0, rng);
  EXPECT_EQ(o.unpaved_bridges, 0);
  EXPECT_TRUE(StronglyConnected(4, roads, o));
}

TEST(OrientRoadsTest, TreeNeedsAllTwoWay) {
  // A path: every edge is a bridge.
  std::vector<std::pair<int, int>> roads = {{0, 1}, {1, 2}, {2, 3}};
  Rng rng(2);
  RoadOrientation o = OrientRoads(4, roads, 3, rng);
  EXPECT_EQ(o.unpaved_bridges, 0);
  for (char tw : o.two_way) EXPECT_TRUE(tw);
  EXPECT_TRUE(StronglyConnected(4, roads, o));
}

TEST(OrientRoadsTest, InsufficientBudgetReported) {
  std::vector<std::pair<int, int>> roads = {{0, 1}, {1, 2}, {2, 3}};
  Rng rng(3);
  RoadOrientation o = OrientRoads(4, roads, 1, rng);
  EXPECT_EQ(o.unpaved_bridges, 2);
}

TEST(OrientRoadsTest, BridgePlusCycle) {
  // Two triangles joined by one bridge: budget 1 must land on the bridge.
  std::vector<std::pair<int, int>> roads = {{0, 1}, {1, 2}, {0, 2},
                                            {2, 3},              // bridge
                                            {3, 4}, {4, 5}, {3, 5}};
  Rng rng(4);
  RoadOrientation o = OrientRoads(6, roads, 1, rng);
  EXPECT_EQ(o.unpaved_bridges, 0);
  EXPECT_TRUE(o.two_way[3]);
  EXPECT_TRUE(StronglyConnected(6, roads, o));
}

TEST(OrientRoadsTest, ExtraBudgetSpent) {
  std::vector<std::pair<int, int>> roads = {{0, 1}, {1, 2}, {2, 0}};
  Rng rng(5);
  RoadOrientation o = OrientRoads(3, roads, 2, rng);
  int total = 0;
  for (char tw : o.two_way) total += tw;
  EXPECT_EQ(total, 2);  // exact budget even without bridges
  EXPECT_TRUE(StronglyConnected(3, roads, o));
}

class OrientationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrientationSweep, RandomGraphsStronglyConnected) {
  Rng rng(GetParam());
  const int n = 30;
  // Random connected graph with enough extra edges + full bridge budget.
  std::vector<std::pair<int, int>> roads;
  for (int i = 1; i < n; ++i) {
    roads.emplace_back(static_cast<int>(rng.NextBounded(i)), i);
  }
  for (int e = 0; e < 15; ++e) {
    int u = static_cast<int>(rng.NextBounded(n));
    int v = static_cast<int>(rng.NextBounded(n));
    if (u != v) roads.emplace_back(u, v);
  }
  Rng orient_rng(GetParam() + 1);
  RoadOrientation o = OrientRoads(n, roads, static_cast<int>(roads.size()) / 2 + 10,
                                  orient_rng);
  if (o.unpaved_bridges == 0) {
    EXPECT_TRUE(StronglyConnected(n, roads, o));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrientationSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

// --- Generators produce (largely) routable networks ---

TEST(GeneratorRoutabilityTest, GridFullyTwoWayStronglyConnected) {
  GridOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.two_way_fraction = 1.0;
  opt.seed = 7;
  RoadNetwork net = GenerateGridNetwork(opt).value();
  // With everything two-way and connected, any pair is routable.
  Router router(net);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    int a = static_cast<int>(rng.NextBounded(net.num_intersections()));
    int b = static_cast<int>(rng.NextBounded(net.num_intersections()));
    if (a == b) continue;
    EXPECT_TRUE(router.ShortestPath(a, b).ok()) << a << "->" << b;
  }
}

TEST(GeneratorRoutabilityTest, MixedGridMostlyRoutable) {
  GridOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.two_way_fraction = 0.6;
  opt.seed = 11;
  RoadNetwork net = GenerateGridNetwork(opt).value();
  Router router(net);
  Rng rng(13);
  int ok_count = 0;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    int a = static_cast<int>(rng.NextBounded(net.num_intersections()));
    int b = static_cast<int>(rng.NextBounded(net.num_intersections()));
    if (a == b) continue;
    ++total;
    ok_count += router.ShortestPath(a, b).ok();
  }
  // A dense grid with 60% two-way budget covers all bridges: fully
  // strongly connected.
  EXPECT_EQ(ok_count, total);
}

}  // namespace
}  // namespace roadpart
