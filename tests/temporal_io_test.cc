#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "temporal/series_io.h"

namespace roadpart {
namespace {

TEST(SeriesIoTest, RoundTrip) {
  SnapshotSeries series(3);
  ASSERT_TRUE(series.Append(120.0, {0.1, 0.2, 0.3}).ok());
  ASSERT_TRUE(series.Append(240.0, {0.15, 0.25, 0.35}).ok());
  std::string path = testing::TempDir() + "/series_roundtrip.csv";
  ASSERT_TRUE(SaveSnapshotSeries(series, path).ok());

  auto loaded = LoadSnapshotSeries(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_snapshots(), 2);
  EXPECT_EQ(loaded->num_segments(), 3);
  EXPECT_NEAR(loaded->timestamp(0), 120.0, 1e-9);
  EXPECT_NEAR(loaded->densities(1)[2], 0.35, 1e-9);
  std::remove(path.c_str());
}

TEST(SeriesIoTest, RejectsRaggedRows) {
  std::string path = testing::TempDir() + "/series_ragged.csv";
  {
    std::ofstream out(path);
    out << "0,0.1,0.2\n10,0.1\n";
  }
  EXPECT_FALSE(LoadSnapshotSeries(path).ok());
  std::remove(path.c_str());
}

TEST(SeriesIoTest, RejectsGarbageAndMissing) {
  std::string path = testing::TempDir() + "/series_garbage.csv";
  {
    std::ofstream out(path);
    out << "0,abc\n";
  }
  EXPECT_FALSE(LoadSnapshotSeries(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSnapshotSeries("/no/such/series.csv").ok());
}

TEST(SeriesIoTest, EmptyFileRejected) {
  std::string path = testing::TempDir() + "/series_empty.csv";
  { std::ofstream out(path); }
  EXPECT_FALSE(LoadSnapshotSeries(path).ok());
  std::remove(path.c_str());
}

TEST(SeriesIoTest, RejectsCrlfLineEndings) {
  std::string path = testing::TempDir() + "/series_crlf.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "0,0.1,0.2\r\n10,0.3,0.4\r\n";
  }
  auto loaded = LoadSnapshotSeries(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("CRLF"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SeriesIoTest, RejectsTruncatedTrailingRow) {
  // "0." parses as the valid density 0.0, so without the trailing-newline
  // check a torn tail would load as silently wrong data.
  std::string path = testing::TempDir() + "/series_truncated.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "0,0.1,0.2\n10,0.3,0.";
  }
  auto loaded = LoadSnapshotSeries(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SeriesIoTest, CommentsSkipped) {
  std::string path = testing::TempDir() + "/series_comments.csv";
  {
    std::ofstream out(path);
    out << "# segments: 2\n0,0.1,0.2\n";
  }
  auto loaded = LoadSnapshotSeries(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_segments(), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace roadpart
