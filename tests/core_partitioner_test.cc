#include <gtest/gtest.h>

#include <set>

#include "core/partitioner.h"
#include "metrics/partition_metrics.h"
#include "metrics/validity.h"
#include "netgen/grid_generator.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

RoadNetwork HotspotNetwork(uint64_t seed = 1) {
  GridOptions grid;
  grid.rows = 10;
  grid.cols = 10;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.seed = seed + 100;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  return net;
}

TEST(SchemeNameTest, AllNamed) {
  EXPECT_STREQ(SchemeName(Scheme::kAG), "AG");
  EXPECT_STREQ(SchemeName(Scheme::kASG), "ASG");
  EXPECT_STREQ(SchemeName(Scheme::kNG), "NG");
  EXPECT_STREQ(SchemeName(Scheme::kNSG), "NSG");
  EXPECT_STREQ(SchemeName(Scheme::kJiGeroliminis), "JiGeroliminis");
}

class PartitionerSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(PartitionerSchemeTest, ProducesValidKPartitions) {
  RoadNetwork net = HotspotNetwork();
  PartitionerOptions options;
  options.scheme = GetParam();
  options.k = 4;
  options.seed = 7;
  Partitioner partitioner(options);
  auto outcome = partitioner.PartitionNetwork(net);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->k_final, 4);
  EXPECT_EQ(outcome->assignment.size(),
            static_cast<size_t>(net.num_segments()));
  RoadGraph rg = RoadGraph::FromNetwork(net);
  EXPECT_TRUE(CheckPartitionValidity(rg.adjacency(), outcome->assignment).ok());
}

TEST_P(PartitionerSchemeTest, TimingsPopulated) {
  RoadNetwork net = HotspotNetwork(2);
  PartitionerOptions options;
  options.scheme = GetParam();
  options.k = 3;
  Partitioner partitioner(options);
  auto outcome = partitioner.PartitionNetwork(net);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->module1_seconds, 0.0);
  EXPECT_GE(outcome->module3_seconds, 0.0);
  bool supergraph_scheme =
      GetParam() == Scheme::kASG || GetParam() == Scheme::kNSG;
  if (supergraph_scheme) {
    EXPECT_GT(outcome->num_supernodes, 0);
    EXPECT_GE(outcome->module2_seconds, 0.0);
  } else {
    EXPECT_EQ(outcome->num_supernodes, 0);
    EXPECT_EQ(outcome->module2_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, PartitionerSchemeTest,
                         ::testing::Values(Scheme::kAG, Scheme::kASG,
                                           Scheme::kNG, Scheme::kNSG,
                                           Scheme::kJiGeroliminis),
                         [](const auto& info) {
                           return std::string(SchemeName(info.param));
                         });

TEST(PartitionerTest, SupergraphSchemesReduceProblemSize) {
  RoadNetwork net = HotspotNetwork(3);
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  Partitioner partitioner(options);
  auto outcome = partitioner.PartitionNetwork(net);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->num_supernodes, 0);
  EXPECT_LT(outcome->num_supernodes, net.num_segments());
  EXPECT_GT(outcome->mining_report.chosen_kappa, 1);
}

TEST(PartitionerTest, SeedsChangeOnlyRandomizedParts) {
  RoadNetwork net = HotspotNetwork(4);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  PartitionerOptions a;
  a.scheme = Scheme::kASG;
  a.k = 4;
  a.seed = 1;
  PartitionerOptions b = a;
  auto out_a1 = Partitioner(a).PartitionRoadGraph(rg);
  auto out_a2 = Partitioner(a).PartitionRoadGraph(rg);
  ASSERT_TRUE(out_a1.ok() && out_a2.ok());
  // Same seed: identical assignment.
  EXPECT_EQ(out_a1->assignment, out_a2->assignment);
  (void)b;
}

TEST(PartitionerTest, StabilityOptionFlowsThrough) {
  RoadNetwork net = HotspotNetwork(5);
  PartitionerOptions loose;
  loose.scheme = Scheme::kASG;
  loose.k = 3;
  loose.miner.stability.threshold = 0.0;
  PartitionerOptions strict = loose;
  strict.miner.stability.threshold = 0.999;
  auto out_loose = Partitioner(loose).PartitionNetwork(net);
  auto out_strict = Partitioner(strict).PartitionNetwork(net);
  ASSERT_TRUE(out_loose.ok() && out_strict.ok());
  EXPECT_GE(out_strict->num_supernodes, out_loose->num_supernodes);
}

TEST(PartitionerTest, InvalidKPropagates) {
  RoadNetwork net = HotspotNetwork(6);
  PartitionerOptions options;
  options.scheme = Scheme::kAG;
  options.k = net.num_segments() + 1;
  auto outcome = Partitioner(options).PartitionNetwork(net);
  EXPECT_FALSE(outcome.ok());
}

TEST(PartitionerTest, PartitionsFollowCongestionStructure) {
  // With strong hotspots, the ASG partitioning must beat a size-balanced
  // arbitrary split on the ANS metric.
  RoadNetwork net = HotspotNetwork(7);
  RoadGraph rg = RoadGraph::FromNetwork(net);
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok());
  double ans_cut =
      AverageNcutSilhouette(rg.adjacency(), rg.features(), outcome->assignment)
          .value();
  // Stripes of equal size as the arbitrary baseline.
  std::vector<int> stripes(rg.num_nodes());
  for (int v = 0; v < rg.num_nodes(); ++v) {
    stripes[v] = v * 4 / rg.num_nodes();
  }
  double ans_stripes =
      AverageNcutSilhouette(rg.adjacency(), rg.features(), stripes).value();
  EXPECT_LT(ans_cut, ans_stripes);
}

}  // namespace
}  // namespace roadpart
