#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/dense_matrix.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {
namespace {

// Residual ||A v - lambda v||_2 for each pair; returns the max.
double MaxResidual(const DenseMatrix& a, const EigenResult& eig) {
  const int n = a.rows();
  double worst = 0.0;
  std::vector<double> v(n);
  std::vector<double> av(n);
  for (size_t j = 0; j < eig.eigenvalues.size(); ++j) {
    for (int i = 0; i < n; ++i) v[i] = eig.eigenvectors(i, static_cast<int>(j));
    a.Multiply(v.data(), av.data());
    double res = 0.0;
    for (int i = 0; i < n; ++i) {
      double r = av[i] - eig.eigenvalues[j] * v[i];
      res += r * r;
    }
    worst = std::max(worst, std::sqrt(res));
  }
  return worst;
}

double MaxOrthError(const EigenResult& eig) {
  const int n = eig.eigenvectors.rows();
  const int k = eig.eigenvectors.cols();
  double worst = 0.0;
  for (int a = 0; a < k; ++a) {
    for (int b = a; b < k; ++b) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) {
        dot += eig.eigenvectors(i, a) * eig.eigenvectors(i, b);
      }
      worst = std::max(worst, std::fabs(dot - (a == b ? 1.0 : 0.0)));
    }
  }
  return worst;
}

DenseMatrix RandomSymmetric(int n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double v = rng.NextGaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(SymmetricEigenTest, Diagonal) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  auto eig = SymmetricEigenDecompose(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  ASSERT_EQ(eig->eigenvalues.size(), 3u);
  EXPECT_NEAR(eig->eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  auto eig = SymmetricEigenDecompose(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
  EXPECT_LT(MaxResidual(a, *eig), 1e-12);
}

TEST(SymmetricEigenTest, PathGraphLaplacianSpectrum) {
  // Laplacian of the path P4: eigenvalues 2 - 2cos(pi k / 4), k = 0..3.
  const int n = 4;
  DenseMatrix l(n, n);
  for (int i = 0; i + 1 < n; ++i) {
    l(i, i) += 1.0;
    l(i + 1, i + 1) += 1.0;
    l(i, i + 1) -= 1.0;
    l(i + 1, i) -= 1.0;
  }
  auto eig = SymmetricEigenDecompose(l);
  ASSERT_TRUE(eig.ok());
  for (int k = 0; k < n; ++k) {
    double expected = 2.0 - 2.0 * std::cos(M_PI * k / n);
    EXPECT_NEAR(eig->eigenvalues[k], expected, 1e-10);
  }
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigenDecompose(DenseMatrix(2, 3)).ok());
}

TEST(SymmetricEigenTest, RejectsAsymmetric) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 5.0;
  EXPECT_FALSE(SymmetricEigenDecompose(a).ok());
}

TEST(SymmetricEigenTest, EmptyMatrix) {
  auto eig = SymmetricEigenDecompose(DenseMatrix(0, 0));
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->eigenvalues.empty());
}

TEST(SymmetricEigenTest, OneByOne) {
  DenseMatrix a(1, 1);
  a(0, 0) = -7.5;
  auto eig = SymmetricEigenDecompose(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], -7.5, 1e-14);
  EXPECT_NEAR(std::fabs(eig->eigenvectors(0, 0)), 1.0, 1e-14);
}

TEST(SymmetricEigenTest, TraceAndFrobeniusInvariants) {
  DenseMatrix a = RandomSymmetric(20, 99);
  auto eig = SymmetricEigenDecompose(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  double frob = 0.0;
  for (int i = 0; i < 20; ++i) {
    trace += a(i, i);
    for (int j = 0; j < 20; ++j) frob += a(i, j) * a(i, j);
  }
  double eig_sum = 0.0;
  double eig_sq = 0.0;
  for (double l : eig->eigenvalues) {
    eig_sum += l;
    eig_sq += l * l;
  }
  EXPECT_NEAR(trace, eig_sum, 1e-9);
  EXPECT_NEAR(frob, eig_sq, 1e-8);
}

// Property sweep: random symmetric matrices of many orders decompose with
// tiny residuals and orthonormal vectors.
class SymmetricEigenSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricEigenSweep, ResidualAndOrthogonality) {
  const int n = GetParam();
  DenseMatrix a = RandomSymmetric(n, 1000 + n);
  auto eig = SymmetricEigenDecompose(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  ASSERT_EQ(static_cast<int>(eig->eigenvalues.size()), n);
  // Eigenvalues ascending.
  for (size_t i = 1; i < eig->eigenvalues.size(); ++i) {
    EXPECT_LE(eig->eigenvalues[i - 1], eig->eigenvalues[i]);
  }
  double scale = std::max(std::fabs(eig->eigenvalues.front()),
                          std::fabs(eig->eigenvalues.back()));
  EXPECT_LT(MaxResidual(a, *eig), 1e-10 * std::max(scale, 1.0) * n);
  EXPECT_LT(MaxOrthError(*eig), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Orders, SymmetricEigenSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(TridiagonalEigenTest, MatchesDenseSolver) {
  // Tridiagonal with diag 2, subdiag -1 (discrete Laplacian): compare paths.
  const int n = 12;
  std::vector<double> d(n, 2.0);
  std::vector<double> e(n - 1, -1.0);
  auto tri = TridiagonalEigenDecompose(d, e);
  ASSERT_TRUE(tri.ok());
  for (int k = 1; k <= n; ++k) {
    double expected = 2.0 - 2.0 * std::cos(M_PI * k / (n + 1));
    EXPECT_NEAR(tri->eigenvalues[k - 1], expected, 1e-10);
  }
}

TEST(TridiagonalEigenTest, RejectsBadSubdiagonal) {
  EXPECT_FALSE(TridiagonalEigenDecompose({1.0, 2.0}, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace roadpart
