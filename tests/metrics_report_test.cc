#include <gtest/gtest.h>

#include "metrics/partition_report.h"

namespace roadpart {
namespace {

// Path of 5, weights 1, features with two levels; split {0,1,2} | {3,4}.
struct Fixture {
  CsrGraph graph = CsrGraph::FromEdges(
                       5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 2.0}, {3, 4, 1.0}})
                       .value();
  std::vector<double> features = {0.1, 0.2, 0.3, 0.9, 1.1};
  std::vector<int> assignment = {0, 0, 0, 1, 1};
};

TEST(PartitionReportTest, SummariesCorrect) {
  Fixture f;
  auto rows = SummarizePartitions(f.graph, f.features, f.assignment);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  const PartitionSummary& p0 = (*rows)[0];
  EXPECT_EQ(p0.id, 0);
  EXPECT_EQ(p0.size, 3);
  EXPECT_NEAR(p0.mean_density, 0.2, 1e-12);
  EXPECT_NEAR(p0.min_density, 0.1, 1e-12);
  EXPECT_NEAR(p0.max_density, 0.3, 1e-12);
  EXPECT_EQ(p0.num_neighbours, 1);
  EXPECT_NEAR(p0.boundary_weight, 2.0, 1e-12);  // the weight-2 bridge

  const PartitionSummary& p1 = (*rows)[1];
  EXPECT_EQ(p1.size, 2);
  EXPECT_NEAR(p1.mean_density, 1.0, 1e-12);
  EXPECT_NEAR(p1.boundary_weight, 2.0, 1e-12);
}

TEST(PartitionReportTest, StddevComputed) {
  Fixture f;
  auto rows = SummarizePartitions(f.graph, f.features, f.assignment);
  ASSERT_TRUE(rows.ok());
  // Partition 1: {0.9, 1.1}, mean 1.0, population stddev 0.1.
  EXPECT_NEAR((*rows)[1].stddev_density, 0.1, 1e-9);
}

TEST(PartitionReportTest, SinglePartitionNoBoundary) {
  Fixture f;
  std::vector<int> one(5, 0);
  auto rows = SummarizePartitions(f.graph, f.features, one);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].num_neighbours, 0);
  EXPECT_DOUBLE_EQ((*rows)[0].boundary_weight, 0.0);
}

TEST(PartitionReportTest, Validation) {
  Fixture f;
  EXPECT_FALSE(SummarizePartitions(f.graph, {0.1}, f.assignment).ok());
  EXPECT_FALSE(SummarizePartitions(f.graph, f.features, {0, 0}).ok());
  std::vector<int> negative = {0, 0, 0, -1, 0};
  EXPECT_FALSE(SummarizePartitions(f.graph, f.features, negative).ok());
}

TEST(PartitionReportTest, TableFormat) {
  Fixture f;
  auto rows = SummarizePartitions(f.graph, f.features, f.assignment).value();
  std::string table = FormatPartitionTable(rows);
  // One header + two rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
  EXPECT_NE(table.find("boundary"), std::string::npos);
}

}  // namespace
}  // namespace roadpart
