#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/lanczos.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {
namespace {

// Sparse symmetric "ring + random chords" test matrix.
SparseMatrix RingMatrix(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> upper;
  for (int i = 0; i < n; ++i) {
    upper.push_back({i, (i + 1) % n, 1.0 + rng.NextDouble()});
  }
  for (int c = 0; c < n / 4; ++c) {
    int a = static_cast<int>(rng.NextBounded(n));
    int b = static_cast<int>(rng.NextBounded(n));
    if (a != b) upper.push_back({std::min(a, b), std::max(a, b), rng.NextDouble()});
  }
  return SparseMatrix::SymmetricFromTriplets(n, upper).value();
}

TEST(LanczosTest, DiagonalSmallest) {
  auto m = SparseMatrix::FromTriplets(
      5, 5,
      {{0, 0, 5.0}, {1, 1, 1.0}, {2, 2, 3.0}, {3, 3, -2.0}, {4, 4, 10.0}});
  ASSERT_TRUE(m.ok());
  SparseOperator op(*m);
  auto eig = LanczosEigen(op, 2, SpectrumEnd::kSmallest);
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  EXPECT_NEAR(eig->eigenvalues[0], -2.0, 1e-8);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-8);
}

TEST(LanczosTest, DiagonalLargest) {
  auto m = SparseMatrix::FromTriplets(
      4, 4, {{0, 0, 5.0}, {1, 1, 1.0}, {2, 2, 3.0}, {3, 3, 10.0}});
  ASSERT_TRUE(m.ok());
  SparseOperator op(*m);
  auto eig = LanczosEigen(op, 2, SpectrumEnd::kLargest);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-8);
  EXPECT_NEAR(eig->eigenvalues[1], 10.0, 1e-8);
}

TEST(LanczosTest, InvalidK) {
  auto m = SparseMatrix::FromTriplets(3, 3, {{0, 0, 1.0}});
  ASSERT_TRUE(m.ok());
  SparseOperator op(*m);
  EXPECT_FALSE(LanczosEigen(op, 0, SpectrumEnd::kSmallest).ok());
  EXPECT_FALSE(LanczosEigen(op, 4, SpectrumEnd::kSmallest).ok());
}

TEST(LanczosTest, FullSpectrumSmallMatrix) {
  // k == n: Lanczos spans the whole space and must be exact.
  SparseMatrix m = RingMatrix(8, 3);
  SparseOperator op(m);
  auto lanczos = LanczosEigen(op, 8, SpectrumEnd::kSmallest);
  ASSERT_TRUE(lanczos.ok());
  auto dense = SymmetricEigenDecompose(m.ToDense());
  ASSERT_TRUE(dense.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(lanczos->eigenvalues[i], dense->eigenvalues[i], 1e-8);
  }
}

class LanczosSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LanczosSweep, AgreesWithDenseSolver) {
  const int n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  SparseMatrix m = RingMatrix(n, 100 + n);
  SparseOperator op(m);

  auto lanczos = LanczosEigen(op, k, SpectrumEnd::kSmallest);
  ASSERT_TRUE(lanczos.ok());
  auto dense = SymmetricEigenDecompose(m.ToDense());
  ASSERT_TRUE(dense.ok());
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos->eigenvalues[i], dense->eigenvalues[i], 1e-6)
        << "eigenvalue " << i << " of n=" << n;
  }

  // Residual check on the returned vectors.
  std::vector<double> v(n);
  std::vector<double> av(n);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n; ++i) v[i] = lanczos->eigenvectors(i, j);
    op.Apply(v.data(), av.data());
    double res = 0.0;
    for (int i = 0; i < n; ++i) {
      double r = av[i] - lanczos->eigenvalues[j] * v[i];
      res += r * r;
    }
    EXPECT_LT(std::sqrt(res), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LanczosSweep,
    ::testing::Values(std::make_tuple(30, 2), std::make_tuple(50, 4),
                      std::make_tuple(80, 6), std::make_tuple(120, 8),
                      std::make_tuple(200, 5), std::make_tuple(300, 10)));

TEST(LanczosTest, RankOneAlphaCutOperator) {
  // The alpha-Cut operator M = d d^T / s - A applied through Lanczos must
  // match the dense decomposition of the materialized matrix.
  SparseMatrix a = RingMatrix(60, 42);
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double x : d) s += x;
  RankOneUpdatedOperator m_op(a_op, d, 1.0 / s, -1.0);

  auto lanczos = LanczosEigen(m_op, 4, SpectrumEnd::kSmallest);
  ASSERT_TRUE(lanczos.ok());
  auto dense = SymmetricEigenDecompose(Materialize(m_op));
  ASSERT_TRUE(dense.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(lanczos->eigenvalues[i], dense->eigenvalues[i], 1e-6);
  }
}

TEST(LanczosTest, DisconnectedGraphHandlesBreakdown) {
  // Two disjoint triangles: invariant subspaces force Lanczos restarts.
  std::vector<Triplet> upper;
  for (int base : {0, 3}) {
    upper.push_back({base, base + 1, 1.0});
    upper.push_back({base + 1, base + 2, 1.0});
    upper.push_back({base, base + 2, 1.0});
  }
  SparseMatrix m = SparseMatrix::SymmetricFromTriplets(6, upper).value();
  SparseOperator op(m);
  auto eig = LanczosEigen(op, 3, SpectrumEnd::kLargest);
  ASSERT_TRUE(eig.ok());
  // Each triangle has top eigenvalue 2 (multiplicity 2 overall).
  EXPECT_NEAR(eig->eigenvalues[2], 2.0, 1e-7);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-7);
}

}  // namespace
}  // namespace roadpart
