#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/distributed_repartition.h"
#include "metrics/validity.h"
#include "netgen/grid_generator.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

struct Fixture {
  RoadNetwork network;
  RoadGraph graph;
  std::vector<int> initial;
};

Fixture MakeSetup(uint64_t seed) {
  GridOptions grid;
  grid.rows = 10;
  grid.cols = 10;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.voronoi_tiling = true;
  field_opt.seed = seed + 7;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 3;
  options.seed = seed;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg).value();
  return {std::move(net), std::move(rg), std::move(outcome.assignment)};
}

TEST(DistributedRepartitionTest, SplitsEveryRegion) {
  Fixture s = MakeSetup(5);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 9;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 3 regions x 2 sub-partitions (regions can fall back to staying whole).
  EXPECT_GE(result->k_final, 3);
  EXPECT_LE(result->k_final, 6);
  EXPECT_EQ(result->regions_repartitioned +
                (result->k_final - 2 * result->regions_repartitioned),
            3);
  EXPECT_TRUE(
      CheckPartitionValidity(s.graph.adjacency(), result->assignment).ok());
}

TEST(DistributedRepartitionTest, SubPartitionsNestInsideRegions) {
  Fixture s = MakeSetup(6);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 11;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  // A refreshed label never spans two old regions.
  std::vector<int> owner(result->k_final, -1);
  for (size_t v = 0; v < s.initial.size(); ++v) {
    int sub = result->assignment[v];
    if (owner[sub] == -1) {
      owner[sub] = s.initial[v];
    } else {
      EXPECT_EQ(owner[sub], s.initial[v]) << "node " << v;
    }
  }
}

TEST(DistributedRepartitionTest, KOneKeepsRegions) {
  Fixture s = MakeSetup(7);
  DistributedRepartitionOptions options;
  options.partitioner.k = 1;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->k_final, 3);
  EXPECT_EQ(result->regions_repartitioned, 0);
}

TEST(DistributedRepartitionTest, TriggerSkipsUniformRegions) {
  Fixture s = MakeSetup(8);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.trigger_ratio = 100.0;  // nothing is THAT spread out
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->regions_repartitioned, 0);
  EXPECT_EQ(result->k_final, 3);
}

TEST(DistributedRepartitionTest, Validation) {
  Fixture s = MakeSetup(9);
  DistributedRepartitionOptions options;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, {0, 1}, options).ok());
  std::vector<int> negative = s.initial;
  negative[0] = -1;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, negative, options).ok());
  options.partitioner.k = 0;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, s.initial, options).ok());
}

TEST(DistributedRepartitionTest, FasterThanGlobalRepartitioning) {
  // The Section 6.4 claim: per-region refresh costs less than a whole-
  // network partition at comparable granularity.
  Fixture s = MakeSetup(10);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 3;
  auto local = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(local.ok());

  PartitionerOptions global;
  global.scheme = Scheme::kAG;
  global.k = local->k_final;
  global.seed = 3;
  Timer timer;
  auto whole = Partitioner(global).PartitionRoadGraph(s.graph);
  double global_seconds = timer.Seconds();
  ASSERT_TRUE(whole.ok());
  // Distributed must not be drastically slower; usually it is much faster
  // (the test is lenient to stay robust on loaded machines).
  EXPECT_LT(local->seconds, global_seconds * 2.0 + 0.05);
}

// ---------------------------------------------------------------------------
// IncrementalRepartitioner: the interval engine behind the one-shot wrapper.

DistributedRepartitionOptions IncrementalOptions() {
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 9;
  options.trigger_ratio = 0.05;
  options.boundary_delta_ratio = 0.05;
  return options;
}

// A small drifting series over the fixture's network: hotspots migrate with
// time01, so consecutive snapshots perturb some regions more than others.
std::vector<std::vector<double>> MakeSeries(const Fixture& s, int snapshots) {
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.voronoi_tiling = true;
  field_opt.seed = 99;
  CongestionField field(s.network, field_opt);
  std::vector<std::vector<double>> series;
  for (int t = 0; t < snapshots; ++t) {
    series.push_back(
        field.DensitiesAt(static_cast<double>(t) / (snapshots - 1)));
  }
  return series;
}

uint64_t Fingerprint(uint64_t h, const std::vector<int>& a) {
  return Fnv1a64(a.data(), a.size() * sizeof(int), h);
}

TEST(IncrementalRepartitionerTest, ThreadCountInvariance) {
  // The differential guarantee: the refreshed bytes never depend on the
  // fan-out width, across a whole multi-interval history (caches, warm
  // starts, dirty decisions included).
  Fixture s = MakeSetup(12);
  std::vector<std::vector<double>> series = MakeSeries(s, 4);
  std::vector<uint64_t> fingerprints;
  for (int threads : {1, 2, 8}) {
    DistributedRepartitionOptions options = IncrementalOptions();
    options.num_threads = threads;
    auto engine =
        IncrementalRepartitioner::Create(s.graph, s.initial, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    uint64_t h = kFnv1a64Basis;
    for (const std::vector<double>& densities : series) {
      auto refresh = engine->Refresh(densities);
      ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
      h = Fingerprint(h, refresh->assignment);
    }
    fingerprints.push_back(h);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(IncrementalRepartitionerTest, CleanRegionsReuseCachedBytes) {
  Fixture s = MakeSetup(13);
  DistributedRepartitionOptions options = IncrementalOptions();
  auto engine = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(engine.ok());

  auto first = engine->Refresh(s.graph.features());
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.dirty, 0);  // cold: structured regions get cut

  // Identical densities: nothing moved, so nothing is dirty and the bytes
  // are reused verbatim.
  auto second = engine->Refresh(s.graph.features());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.dirty, 0);
  EXPECT_EQ(second->stats.clean, second->stats.regions);
  EXPECT_EQ(second->assignment, first->assignment);

  // Perturb one region only: the others must stay clean AND byte-identical.
  std::vector<double> bumped = s.graph.features();
  for (size_t v = 0; v < bumped.size(); ++v) {
    if (s.initial[v] == 0) bumped[v] = bumped[v] * 3.0 + 1.0;
  }
  auto third = engine->Refresh(bumped);
  ASSERT_TRUE(third.ok());
  EXPECT_GE(third->stats.dirty, 1);
  EXPECT_LT(third->stats.dirty, third->stats.regions);
  for (size_t v = 0; v < bumped.size(); ++v) {
    if (s.initial[v] != 0) {
      EXPECT_EQ(third->assignment[v], second->assignment[v]) << "node " << v;
    }
  }
}

TEST(IncrementalRepartitionerTest, WarmStartAccounting) {
  Fixture s = MakeSetup(14);
  DistributedRepartitionOptions options = IncrementalOptions();
  options.trigger_ratio = 0.0;  // every region re-cut on every refresh
  options.boundary_delta_ratio = 0.0;
  auto engine = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(engine.ok());
  std::vector<std::vector<double>> series = MakeSeries(s, 2);

  auto first = engine->Refresh(series[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.warm_started, 0);  // nothing cached yet

  // AG embeds the region itself, so the cached warm vector's dimension
  // always matches on the next cut: every re-cut region warm-starts.
  auto second = engine->Refresh(series[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.dirty, second->stats.regions);
  EXPECT_GT(second->stats.warm_started, 0);
  EXPECT_EQ(second->stats.warm_rejected, 0);
  EXPECT_TRUE(
      CheckPartitionValidity(s.graph.adjacency(), second->assignment).ok());
}

TEST(IncrementalRepartitionerTest, SaveLoadCacheRoundTrip) {
  Fixture s = MakeSetup(15);
  std::vector<std::vector<double>> series = MakeSeries(s, 3);
  DistributedRepartitionOptions options = IncrementalOptions();

  auto a = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Refresh(series[0]).ok());
  ASSERT_TRUE(a->Refresh(series[1]).ok());
  std::string path = testing::TempDir() + "/rpinc_roundtrip.cache";
  ASSERT_TRUE(a->SaveCache(path).ok());

  // A fresh engine that adopts the cache must continue the history exactly.
  auto b = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(b.ok());
  auto adopted = b->LoadCache(path);
  ASSERT_TRUE(adopted.ok());
  EXPECT_TRUE(*adopted);
  EXPECT_EQ(b->num_refreshes(), a->num_refreshes());
  auto from_a = a->Refresh(series[2]);
  auto from_b = b->Refresh(series[2]);
  ASSERT_TRUE(from_a.ok());
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(from_a->assignment, from_b->assignment);
  EXPECT_EQ(from_a->stats.dirty, from_b->stats.dirty);

  // A corrupt byte is detected by the envelope; the engine stays cold.
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in), {});
  }
  blob[blob.size() / 2] ^= 0x40;
  std::string bad_path = testing::TempDir() + "/rpinc_corrupt.cache";
  ASSERT_TRUE(AtomicWriteFile(bad_path, blob).ok());
  auto c = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(c.ok());
  auto rejected = c->LoadCache(bad_path);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(*rejected);
  EXPECT_FALSE(c->warnings().empty());

  // Differently-keyed options (another trigger) must not adopt the cache.
  DistributedRepartitionOptions other = options;
  other.trigger_ratio = 0.25;
  auto d = IncrementalRepartitioner::Create(s.graph, s.initial, other);
  ASSERT_TRUE(d.ok());
  auto mismatched = d->LoadCache(path);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(*mismatched);
  EXPECT_EQ(d->num_refreshes(), 0);
}

TEST(IncrementalRepartitionerTest, WarmStartCorruptionFaultColdStarts) {
  // An armed kWarmStartCorruption refresh must behave exactly like a run
  // that never had warm starts: same bytes, zero warm installs.
  Fixture s = MakeSetup(16);
  std::vector<std::vector<double>> series = MakeSeries(s, 2);
  DistributedRepartitionOptions warm = IncrementalOptions();
  warm.trigger_ratio = 0.0;
  warm.boundary_delta_ratio = 0.0;
  DistributedRepartitionOptions cold = warm;
  cold.warm_start_embeddings = false;

  auto with_fault = IncrementalRepartitioner::Create(s.graph, s.initial, warm);
  auto never_warm = IncrementalRepartitioner::Create(s.graph, s.initial, cold);
  ASSERT_TRUE(with_fault.ok());
  ASSERT_TRUE(never_warm.ok());
  ASSERT_TRUE(with_fault->Refresh(series[0]).ok());
  ASSERT_TRUE(never_warm->Refresh(series[0]).ok());

  FaultInjector injector(21);
  injector.Arm(FaultSite::kWarmStartCorruption, 1);
  ScopedFaultInjector scoped(&injector);
  auto faulted = with_fault->Refresh(series[1]);
  auto reference = never_warm->Refresh(series[1]);
  ASSERT_TRUE(faulted.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(injector.fire_count(FaultSite::kWarmStartCorruption), 1);
  EXPECT_EQ(faulted->stats.warm_started, 0);
  EXPECT_EQ(faulted->assignment, reference->assignment);
  EXPECT_FALSE(with_fault->warnings().empty());
}

TEST(IncrementalRepartitionerTest, DirtyDetectOverflowMarksAllDirty) {
  Fixture s = MakeSetup(17);
  DistributedRepartitionOptions options = IncrementalOptions();
  options.trigger_ratio = 100.0;  // normally nothing would ever be dirty
  auto engine = IncrementalRepartitioner::Create(s.graph, s.initial, options);
  ASSERT_TRUE(engine.ok());
  auto quiet = engine->Refresh(s.graph.features());
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->stats.dirty, 0);

  FaultInjector injector(22);
  injector.Arm(FaultSite::kDirtyDetectOverflow, 1);
  ScopedFaultInjector scoped(&injector);
  auto flooded = engine->Refresh(s.graph.features());
  ASSERT_TRUE(flooded.ok());
  EXPECT_EQ(injector.fire_count(FaultSite::kDirtyDetectOverflow), 1);
  EXPECT_EQ(flooded->stats.dirty, flooded->stats.regions);
  EXPECT_TRUE(
      CheckPartitionValidity(s.graph.adjacency(), flooded->assignment).ok());
  EXPECT_FALSE(engine->warnings().empty());
}

TEST(IncrementalRepartitionerTest, RefreshValidatesDensities) {
  Fixture s = MakeSetup(18);
  auto engine = IncrementalRepartitioner::Create(s.graph, s.initial,
                                                 IncrementalOptions());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Refresh({1.0, 2.0}).ok());
}

}  // namespace
}  // namespace roadpart
