#include <gtest/gtest.h>

#include <set>

#include "common/timer.h"
#include "core/distributed_repartition.h"
#include "metrics/validity.h"
#include "netgen/grid_generator.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

struct Fixture {
  RoadNetwork network;
  RoadGraph graph;
  std::vector<int> initial;
};

Fixture MakeSetup(uint64_t seed) {
  GridOptions grid;
  grid.rows = 10;
  grid.cols = 10;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.voronoi_tiling = true;
  field_opt.seed = seed + 7;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 3;
  options.seed = seed;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg).value();
  return {std::move(net), std::move(rg), std::move(outcome.assignment)};
}

TEST(DistributedRepartitionTest, SplitsEveryRegion) {
  Fixture s = MakeSetup(5);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 9;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 3 regions x 2 sub-partitions (regions can fall back to staying whole).
  EXPECT_GE(result->k_final, 3);
  EXPECT_LE(result->k_final, 6);
  EXPECT_EQ(result->regions_repartitioned +
                (result->k_final - 2 * result->regions_repartitioned),
            3);
  EXPECT_TRUE(
      CheckPartitionValidity(s.graph.adjacency(), result->assignment).ok());
}

TEST(DistributedRepartitionTest, SubPartitionsNestInsideRegions) {
  Fixture s = MakeSetup(6);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 11;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  // A refreshed label never spans two old regions.
  std::vector<int> owner(result->k_final, -1);
  for (size_t v = 0; v < s.initial.size(); ++v) {
    int sub = result->assignment[v];
    if (owner[sub] == -1) {
      owner[sub] = s.initial[v];
    } else {
      EXPECT_EQ(owner[sub], s.initial[v]) << "node " << v;
    }
  }
}

TEST(DistributedRepartitionTest, KOneKeepsRegions) {
  Fixture s = MakeSetup(7);
  DistributedRepartitionOptions options;
  options.partitioner.k = 1;
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->k_final, 3);
  EXPECT_EQ(result->regions_repartitioned, 0);
}

TEST(DistributedRepartitionTest, TriggerSkipsUniformRegions) {
  Fixture s = MakeSetup(8);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.trigger_ratio = 100.0;  // nothing is THAT spread out
  auto result = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->regions_repartitioned, 0);
  EXPECT_EQ(result->k_final, 3);
}

TEST(DistributedRepartitionTest, Validation) {
  Fixture s = MakeSetup(9);
  DistributedRepartitionOptions options;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, {0, 1}, options).ok());
  std::vector<int> negative = s.initial;
  negative[0] = -1;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, negative, options).ok());
  options.partitioner.k = 0;
  EXPECT_FALSE(RepartitionWithinRegions(s.graph, s.initial, options).ok());
}

TEST(DistributedRepartitionTest, FasterThanGlobalRepartitioning) {
  // The Section 6.4 claim: per-region refresh costs less than a whole-
  // network partition at comparable granularity.
  Fixture s = MakeSetup(10);
  DistributedRepartitionOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.k = 2;
  options.partitioner.seed = 3;
  auto local = RepartitionWithinRegions(s.graph, s.initial, options);
  ASSERT_TRUE(local.ok());

  PartitionerOptions global;
  global.scheme = Scheme::kAG;
  global.k = local->k_final;
  global.seed = 3;
  Timer timer;
  auto whole = Partitioner(global).PartitionRoadGraph(s.graph);
  double global_seconds = timer.Seconds();
  ASSERT_TRUE(whole.ok());
  // Distributed must not be drastically slower; usually it is much faster
  // (the test is lenient to stay robust on loaded machines).
  EXPECT_LT(local->seconds, global_seconds * 2.0 + 0.05);
}

}  // namespace
}  // namespace roadpart
