// Corruption and robustness suite for the rpsnap serving snapshot:
//  - building is byte-identical for every thread count, and a disk
//    round-trip through the durable_io envelope reproduces the buffer
//    exactly;
//  - flipping EVERY byte of a saved rpsnap file, and truncating it at any
//    depth, yields typed kCorruption from Snapshot::Load — never OK, never
//    a crash, never a silently different snapshot;
//  - section-level tampering with a *recomputed* section checksum is still
//    rejected by FromBuffer's structural validators (KD permutation, CSR
//    monotonicity, id ranges), so validation does not lean on the checksum
//    alone;
//  - the builder rejects label/segment mismatches, and empty / zero-area
//    networks round-trip as valid trivial snapshots (PR-4 regression
//    class).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Result<RoadNetwork> SmallGridNetwork() {
  GridOptions grid;
  grid.rows = 3;
  grid.cols = 3;
  grid.two_way_fraction = 1.0;
  grid.seed = 9;
  return GenerateGridNetwork(grid);
}

std::vector<int> AlternatingLabels(int num_segments, int k) {
  std::vector<int> labels(static_cast<size_t>(num_segments));
  for (int s = 0; s < num_segments; ++s) labels[static_cast<size_t>(s)] = s % k;
  return labels;
}

// rpsnap v1 layout constants, duplicated here on purpose: the test pins the
// on-disk format. If the layout changes, the format version must change too
// and this test must be updated deliberately (see DESIGN.md versioning
// rules).
constexpr size_t kHeaderSize = 192;
constexpr size_t kSectionsFnvOffset = 120;

size_t OffsetOfKd(const Snapshot& snap) {
  return kHeaderSize + size_t(snap.num_intersections()) * 16 +
         size_t(snap.num_segments()) * 8 + size_t(snap.num_segments()) * 16;
}

size_t OffsetOfEndpoints(const Snapshot& snap) {
  return kHeaderSize + size_t(snap.num_intersections()) * 16;
}

size_t OffsetOfGridStarts(const Snapshot& snap) {
  return OffsetOfKd(snap) + size_t(snap.num_segments()) * 4;
}

// Rewrites the stored section checksum to match the (tampered) section
// bytes, so FromBuffer's structural validators — not the checksum — must
// catch the damage.
void RecomputeSectionsFnv(std::string* buffer) {
  const uint64_t fnv =
      Fnv1a64(buffer->data() + kHeaderSize, buffer->size() - kHeaderSize - 1);
  std::memcpy(&(*buffer)[kSectionsFnvOffset], &fnv, sizeof(fnv));
}

TEST(ServeSnapshotTest, BuildIsByteIdenticalAcrossThreadCounts) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = AlternatingLabels(net->num_segments(), 3);
  std::string reference;
  for (int threads : {1, 4, 8}) {
    ScopedParallelism scope(threads);
    auto snap = Snapshot::Build(*net, labels);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    if (reference.empty()) {
      reference = snap->buffer();
    } else {
      EXPECT_EQ(snap->buffer(), reference) << "threads=" << threads;
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(ServeSnapshotTest, DiskRoundTripIsByteIdentical) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const std::vector<int> labels = AlternatingLabels(net->num_segments(), 3);
  auto snap = Snapshot::Build(*net, labels);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  const std::string path = TempPath("roundtrip.rpsnap");
  ASSERT_TRUE(snap->Save(path).ok());
  auto loaded = Snapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->buffer(), snap->buffer());
  EXPECT_EQ(loaded->num_segments(), net->num_segments());
  EXPECT_EQ(loaded->num_partitions(), 3);
  EXPECT_EQ(loaded->source_fingerprint(),
            ComputeSnapshotFingerprint(*net, labels));

  // Saving twice produces byte-identical files (atomic writer, no
  // timestamps or nondeterminism in the format).
  const std::string path2 = TempPath("roundtrip2.rpsnap");
  ASSERT_TRUE(snap->Save(path2).ok());
  auto bytes1 = ReadFileBytes(path);
  auto bytes2 = ReadFileBytes(path2);
  ASSERT_TRUE(bytes1.ok() && bytes2.ok());
  EXPECT_EQ(*bytes1, *bytes2);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(ServeSnapshotTest, EveryByteFlipYieldsTypedCorruption) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  auto snap = Snapshot::Build(*net, AlternatingLabels(net->num_segments(), 2));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const std::string path = TempPath("flip.rpsnap");
  ASSERT_TRUE(snap->Save(path).ok());
  auto original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  // Every byte, not a sample: the double-ended envelope plus the rpsnap
  // header/section validators must leave no undetectable single-byte flip.
  for (size_t offset = 0; offset < original->size(); ++offset) {
    std::string mutated = *original;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5A);
    ASSERT_TRUE(AtomicWriteFile(path, mutated).ok());
    Status st = Snapshot::Load(path).status();
    ASSERT_FALSE(st.ok()) << "flip at offset " << offset << " loaded OK";
    ASSERT_EQ(st.code(), StatusCode::kCorruption)
        << "flip at offset " << offset << ": " << st.ToString();
  }
  std::remove(path.c_str());
}

TEST(ServeSnapshotTest, TruncationAtAnyDepthYieldsTypedCorruption) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  auto snap = Snapshot::Build(*net, AlternatingLabels(net->num_segments(), 2));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const std::string path = TempPath("trunc.rpsnap");
  ASSERT_TRUE(snap->Save(path).ok());
  auto original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok());

  // Removing only the final newline leaves the checksummed envelope fully
  // intact and is legitimately accepted (same tolerance the durable_io
  // truncation suite documents), so the deepest cut here is n - 2.
  const size_t n = original->size();
  for (size_t keep : {n - 2, n - 7, 3 * n / 4, n / 2, n / 4, kHeaderSize,
                      size_t{64}, size_t{1}, size_t{0}}) {
    ASSERT_TRUE(AtomicWriteFile(path, original->substr(0, keep)).ok());
    Status st = Snapshot::Load(path).status();
    ASSERT_FALSE(st.ok()) << "truncation to " << keep << " bytes loaded OK";
    ASSERT_EQ(st.code(), StatusCode::kCorruption)
        << "truncation to " << keep << ": " << st.ToString();
  }
  std::remove(path.c_str());
}

TEST(ServeSnapshotTest, StructuralValidatorsCatchTamperingBehindValidFnv) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  auto built = Snapshot::Build(*net, AlternatingLabels(net->num_segments(), 2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const Snapshot& snap = *built;
  const int32_t ns = snap.num_segments();
  const int32_t ni = snap.num_intersections();
  ASSERT_GT(ns, 1);

  auto tamper_int32 = [&](size_t offset, int32_t value,
                          const char* what) {
    std::string buffer = snap.buffer();
    std::memcpy(&buffer[offset], &value, sizeof(value));
    RecomputeSectionsFnv(&buffer);
    Status st = Snapshot::FromBuffer(std::move(buffer)).status();
    ASSERT_FALSE(st.ok()) << what << " accepted";
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << what << ": "
                                                  << st.ToString();
  };
  // kd[0] out of range -> not a permutation.
  tamper_int32(OffsetOfKd(snap), ns, "kd entry out of range");
  // kd[0] duplicating kd[1] -> not a permutation either.
  int32_t kd1;
  std::memcpy(&kd1, snap.buffer().data() + OffsetOfKd(snap) + 4, 4);
  tamper_int32(OffsetOfKd(snap), kd1, "kd duplicate entry");
  // endpoints[0] out of range.
  tamper_int32(OffsetOfEndpoints(snap), ni, "endpoint id out of range");
  // grid starts must begin at 0.
  tamper_int32(OffsetOfGridStarts(snap), 1, "grid CSR start");
  // A label outside [0, num_partitions).
  tamper_int32(snap.buffer().size() - 1 - size_t(ns) * 4, -1,
               "negative partition label");

  // Without the recomputed checksum, the same tampering dies earlier at the
  // section-checksum gate — also as Corruption.
  std::string buffer = snap.buffer();
  const int32_t bad = ns;
  std::memcpy(&buffer[OffsetOfKd(snap)], &bad, sizeof(bad));
  Status st = Snapshot::FromBuffer(std::move(buffer)).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST(ServeSnapshotTest, FromBufferRejectsGarbage) {
  for (const std::string& garbage :
       {std::string(), std::string("rpsnap01"), std::string(300, '\0'),
        std::string(4096, 'x')}) {
    Status st = Snapshot::FromBuffer(garbage).status();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  }
}

TEST(ServeSnapshotTest, BuilderRejectsLabelSegmentMismatch) {
  auto net = SmallGridNetwork();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const int ns = net->num_segments();

  Status too_few = Snapshot::Build(*net, std::vector<int>(ns - 1, 0)).status();
  EXPECT_EQ(too_few.code(), StatusCode::kInvalidArgument);
  Status too_many = Snapshot::Build(*net, std::vector<int>(ns + 1, 0)).status();
  EXPECT_EQ(too_many.code(), StatusCode::kInvalidArgument);
  std::vector<int> negative(static_cast<size_t>(ns), 0);
  negative[1] = -3;
  Status bad_label = Snapshot::Build(*net, negative).status();
  EXPECT_EQ(bad_label.code(), StatusCode::kInvalidArgument);
}

TEST(ServeSnapshotTest, EmptyAndZeroAreaNetworksRoundTripThroughDisk) {
  // PR-4 regression class: degenerate networks must produce valid trivial
  // snapshots end to end (build -> save -> load -> query), not UB.
  auto empty = RoadNetwork::Create({}, {});
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  auto empty_snap = Snapshot::Build(*empty, {});
  ASSERT_TRUE(empty_snap.ok()) << empty_snap.status().ToString();
  const std::string empty_path = TempPath("empty.rpsnap");
  ASSERT_TRUE(empty_snap->Save(empty_path).ok());
  auto empty_loaded = Snapshot::Load(empty_path);
  ASSERT_TRUE(empty_loaded.ok()) << empty_loaded.status().ToString();
  EXPECT_EQ(empty_loaded->buffer(), empty_snap->buffer());
  EXPECT_EQ(empty_loaded->NearestSegment({0.0, 0.0}).segment_id, -1);
  std::remove(empty_path.c_str());

  std::vector<Intersection> nodes = {{{5.0, -1.0}}, {{5.0, -1.0}}};
  std::vector<RoadSegment> segs = {{0, 1, 2.0, 0.4}, {1, 0, 2.0, 0.4}};
  auto zero_area = RoadNetwork::Create(nodes, segs);
  ASSERT_TRUE(zero_area.ok()) << zero_area.status().ToString();
  auto zero_snap = Snapshot::Build(*zero_area, {1, 0});
  ASSERT_TRUE(zero_snap.ok()) << zero_snap.status().ToString();
  const std::string zero_path = TempPath("zero_area.rpsnap");
  ASSERT_TRUE(zero_snap->Save(zero_path).ok());
  auto zero_loaded = Snapshot::Load(zero_path);
  ASSERT_TRUE(zero_loaded.ok()) << zero_loaded.status().ToString();
  EXPECT_EQ(zero_loaded->buffer(), zero_snap->buffer());
  const PointAnswer a = zero_loaded->NearestSegment({100.0, 100.0});
  EXPECT_EQ(a.segment_id, 0);  // exact tie between the two -> smallest id
  EXPECT_EQ(a.partition_id, 1);
  std::remove(zero_path.c_str());
}

TEST(ServeSnapshotTest, WrongArtifactFormatIsAUsageErrorNotCorruption) {
  const std::string path = TempPath("not_a_snapshot.artifact");
  ASSERT_TRUE(WriteArtifact(path, "supergraph", 1, "payload\n").ok());
  Status st = Snapshot::Load(path).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace roadpart
