#include "differential/differential_harness.h"

#include <cmath>

#include "netgen/city_generator.h"
#include "netgen/grid_generator.h"
#include "netgen/radial_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart::differential {

namespace {

RoadNetwork WithCongestion(RoadNetwork net, int hotspots, uint64_t seed) {
  CongestionFieldOptions field;
  field.num_hotspots = hotspots;
  field.voronoi_tiling = true;  // distinct congestion plateaus tile the city
  field.seed = seed;
  CongestionField congestion(net, field);
  EXPECT_TRUE(net.SetDensities(congestion.Densities()).ok());
  return net;
}

}  // namespace

std::vector<NetworkCase> SeededNetworks(uint64_t seed) {
  std::vector<NetworkCase> cases;

  {
    GridOptions grid;
    grid.rows = 16;
    grid.cols = 16;
    grid.seed = seed;
    auto net = GenerateGridNetwork(grid);
    EXPECT_TRUE(net.ok()) << net.status().ToString();
    // ~860 segments: above dense_threshold, exercises the Lanczos path.
    cases.push_back({"grid", WithCongestion(std::move(net).value(), 4,
                                            seed + 100)});
  }
  {
    RadialOptions radial;
    radial.num_rings = 6;
    radial.num_spokes = 10;
    radial.seed = seed;
    auto net = GenerateRadialNetwork(radial);
    EXPECT_TRUE(net.ok()) << net.status().ToString();
    // ~220 segments: below dense_threshold, exercises the dense fallback.
    cases.push_back({"radial", WithCongestion(std::move(net).value(), 3,
                                              seed + 200)});
  }
  {
    CityOptions city;
    city.num_intersections = 500;
    city.target_segments = 900;
    city.area_sq_miles = 3.0;
    city.seed = seed;
    auto net = GenerateCityNetwork(city);
    EXPECT_TRUE(net.ok()) << net.status().ToString();
    cases.push_back({"city", WithCongestion(std::move(net).value(), 5,
                                            seed + 300)});
  }
  return cases;
}

PipelineFingerprint RunPipeline(const RoadNetwork& network,
                                PartitionerOptions options, int num_threads) {
  options.num_threads = num_threads;
  auto outcome = Partitioner(options).PartitionNetwork(network);
  PipelineFingerprint fp;
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return fp;
  fp.assignment = outcome->assignment;
  fp.k_final = outcome->k_final;
  fp.k_prime = outcome->k_prime;
  fp.num_supernodes = outcome->num_supernodes;
  fp.objective = outcome->objective;

  RoadGraph rg = RoadGraph::FromNetwork(network);
  auto report =
      SummarizePartitions(rg.adjacency(), rg.features(), fp.assignment);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) fp.report = std::move(report).value();
  return fp;
}

void ExpectIdenticalFingerprint(const PipelineFingerprint& baseline,
                                const PipelineFingerprint& other,
                                const std::string& label) {
  // Bit-identical partition labels (vector equality is exact).
  EXPECT_EQ(baseline.assignment, other.assignment) << label << ": labels";
  EXPECT_EQ(baseline.k_final, other.k_final) << label << ": k_final";
  EXPECT_EQ(baseline.k_prime, other.k_prime) << label << ": k_prime";
  EXPECT_EQ(baseline.num_supernodes, other.num_supernodes)
      << label << ": num_supernodes";
  // Bitwise-equal objective: EXPECT_EQ on doubles is exact comparison.
  EXPECT_EQ(baseline.objective, other.objective) << label << ": objective";

  ASSERT_EQ(baseline.report.size(), other.report.size())
      << label << ": report rows";
  for (size_t i = 0; i < baseline.report.size(); ++i) {
    const PartitionSummary& a = baseline.report[i];
    const PartitionSummary& b = other.report[i];
    EXPECT_EQ(a.id, b.id) << label << ": report[" << i << "].id";
    EXPECT_EQ(a.size, b.size) << label << ": report[" << i << "].size";
    EXPECT_EQ(a.mean_density, b.mean_density)
        << label << ": report[" << i << "].mean_density";
    EXPECT_EQ(a.stddev_density, b.stddev_density)
        << label << ": report[" << i << "].stddev_density";
    EXPECT_EQ(a.min_density, b.min_density)
        << label << ": report[" << i << "].min_density";
    EXPECT_EQ(a.max_density, b.max_density)
        << label << ": report[" << i << "].max_density";
    EXPECT_EQ(a.num_neighbours, b.num_neighbours)
        << label << ": report[" << i << "].num_neighbours";
    EXPECT_EQ(a.boundary_weight, b.boundary_weight)
        << label << ": report[" << i << "].boundary_weight";
  }
}

void ExpectPipelineThreadInvariant(const NetworkCase& net,
                                   PartitionerOptions options,
                                   const std::string& label) {
  const std::vector<int>& sweep = ThreadSweep();
  PipelineFingerprint baseline = RunPipeline(net.network, options, sweep[0]);
  ASSERT_FALSE(baseline.assignment.empty()) << label << ": baseline failed";
  for (size_t i = 1; i < sweep.size(); ++i) {
    PipelineFingerprint other = RunPipeline(net.network, options, sweep[i]);
    ExpectIdenticalFingerprint(
        baseline, other,
        label + " [" + net.name + ", threads=" + std::to_string(sweep[i]) +
            " vs 1]");
  }
}

MiningFingerprint RunMining(const RoadNetwork& network,
                            const SupergraphMinerOptions& options,
                            int num_threads) {
  MiningFingerprint fp;
  ScopedParallelism threads(num_threads);
  RoadGraph rg = RoadGraph::FromNetwork(network);
  auto sg = MineSupergraph(rg, options, &fp.report);
  EXPECT_TRUE(sg.ok()) << sg.status().ToString();
  if (!sg.ok()) return fp;
  for (const Supernode& sn : sg->supernodes()) {
    fp.members.push_back(sn.members);
    fp.features.push_back(sn.feature);
  }
  const CsrGraph& links = sg->links();
  for (int s = 0; s < links.num_nodes(); ++s) {
    const auto& nbrs = links.Neighbors(s);
    const auto& weights = links.NeighborWeights(s);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      fp.link_src.push_back(s);
      fp.link_dst.push_back(nbrs[i]);
      fp.link_weight.push_back(weights[i]);
    }
  }
  fp.ok = true;
  return fp;
}

void ExpectIdenticalMining(const MiningFingerprint& baseline,
                           const MiningFingerprint& other,
                           const std::string& label) {
  EXPECT_EQ(baseline.members, other.members) << label << ": members";
  // Bitwise double equality throughout: EXPECT_EQ on vector<double> is exact.
  EXPECT_EQ(baseline.features, other.features) << label << ": features";
  EXPECT_EQ(baseline.link_src, other.link_src) << label << ": link sources";
  EXPECT_EQ(baseline.link_dst, other.link_dst) << label << ": link targets";
  EXPECT_EQ(baseline.link_weight, other.link_weight)
      << label << ": link weights";

  const SupergraphMiningReport& a = baseline.report;
  const SupergraphMiningReport& b = other.report;
  EXPECT_EQ(a.kappas, b.kappas) << label << ": sweep kappas";
  EXPECT_EQ(a.mcg, b.mcg) << label << ": MCG curve";
  EXPECT_EQ(a.shortlisted_kappas, b.shortlisted_kappas)
      << label << ": shortlist";
  EXPECT_EQ(a.component_counts, b.component_counts)
      << label << ": component counts";
  EXPECT_EQ(a.threshold, b.threshold) << label << ": threshold";
  EXPECT_EQ(a.effective_max_kappa, b.effective_max_kappa)
      << label << ": effective_max_kappa";
  EXPECT_EQ(a.chosen_kappa, b.chosen_kappa) << label << ": chosen kappa";
  EXPECT_EQ(a.supernodes_before_stability, b.supernodes_before_stability)
      << label << ": supernodes before stability";
  EXPECT_EQ(a.supernodes_after_stability, b.supernodes_after_stability)
      << label << ": supernodes after stability";
  EXPECT_EQ(a.stability_values, b.stability_values)
      << label << ": stability values";
}

void ExpectMiningThreadInvariant(const NetworkCase& net,
                                 const SupergraphMinerOptions& options,
                                 const std::string& label) {
  const std::vector<int>& sweep = ThreadSweep();
  MiningFingerprint baseline = RunMining(net.network, options, sweep[0]);
  ASSERT_TRUE(baseline.ok) << label << ": baseline failed";
  for (size_t i = 1; i < sweep.size(); ++i) {
    MiningFingerprint other = RunMining(net.network, options, sweep[i]);
    ASSERT_TRUE(other.ok) << label << ": threads=" << sweep[i] << " failed";
    ExpectIdenticalMining(
        baseline, other,
        label + " [" + net.name + ", threads=" + std::to_string(sweep[i]) +
            " vs 1]");
  }
}

EigenResult ExpectLanczosThreadInvariant(const LinearOperator& op, int k,
                                         SpectrumEnd end,
                                         const LanczosOptions& options,
                                         const std::string& label,
                                         double tolerance) {
  EigenResult baseline;
  {
    ScopedParallelism serial(1);
    auto result = LanczosEigen(op, k, end, options);
    EXPECT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    if (!result.ok()) return baseline;
    baseline = std::move(result).value();
  }
  for (int t : ThreadSweep()) {
    if (t == 1) continue;
    ScopedParallelism threads(t);
    auto result = LanczosEigen(op, k, end, options);
    EXPECT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    if (!result.ok()) continue;
    EXPECT_EQ(result->eigenvalues.size(), baseline.eigenvalues.size())
        << label << ": eigenvalue count, threads=" << t;
    if (result->eigenvalues.size() != baseline.eigenvalues.size()) continue;
    for (size_t i = 0; i < baseline.eigenvalues.size(); ++i) {
      EXPECT_NEAR(result->eigenvalues[i], baseline.eigenvalues[i], tolerance)
          << label << ": eigenvalue " << i << ", threads=" << t;
    }
    // Eigenvectors: bit-identical to the serial run (same arithmetic, same
    // order — only the executing thread differs).
    EXPECT_EQ(result->eigenvectors.rows(), baseline.eigenvectors.rows());
    EXPECT_EQ(result->eigenvectors.cols(), baseline.eigenvectors.cols());
    EXPECT_EQ(result->eigenvectors.data(), baseline.eigenvectors.data())
        << label << ": eigenvector payload, threads=" << t;
    EXPECT_EQ(result->converged, baseline.converged)
        << label << ": convergence flag, threads=" << t;
    EXPECT_EQ(result->max_residual, baseline.max_residual)
        << label << ": residual, threads=" << t;
  }
  return baseline;
}

}  // namespace roadpart::differential
