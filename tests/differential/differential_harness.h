#ifndef ROADPART_TESTS_DIFFERENTIAL_DIFFERENTIAL_HARNESS_H_
#define ROADPART_TESTS_DIFFERENTIAL_DIFFERENTIAL_HARNESS_H_

// Differential test harness: runs the same computation at several worker
// thread counts and asserts the results are *identical* — bit-identical
// partition labels, bitwise-equal objectives and PartitionReport metrics,
// and eigenvalues within 1e-12 (they too are bit-identical in practice; the
// tolerance only forgives future platform-level FMA contraction changes).
//
// This turns "parallel == serial" from a hope into a regression-checked
// invariant: every kernel in the spectral hot path uses fixed block
// decompositions with order-fixed reductions (see common/parallel.h), so any
// thread-count-dependent result is a bug this harness catches.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/partitioner.h"
#include "core/supergraph_miner.h"
#include "linalg/lanczos.h"
#include "metrics/partition_report.h"
#include "network/road_network.h"

namespace roadpart::differential {

/// Thread counts every differential check sweeps. 1 is the serial baseline;
/// 2 and 8 exercise under- and over-subscription (the CI box may have fewer
/// cores than 8 — oversubscription still reorders scheduling, which is
/// exactly what the determinism contract must survive).
inline const std::vector<int>& ThreadSweep() {
  static const std::vector<int> counts{1, 2, 8};
  return counts;
}

/// A seeded generated network with a congestion overlay.
struct NetworkCase {
  std::string name;      ///< "grid", "radial", "city"
  RoadNetwork network;   ///< densities already set
};

/// The three generator families (grid, radial, city), sized so that grid and
/// city exceed SpectralOptions::dense_threshold (exercising the Lanczos
/// path) while radial stays below it (exercising the dense fallback).
std::vector<NetworkCase> SeededNetworks(uint64_t seed = 7);

/// Everything a pipeline run produced that determinism must preserve.
struct PipelineFingerprint {
  std::vector<int> assignment;
  int k_final = 0;
  int k_prime = 0;
  int num_supernodes = 0;
  double objective = 0.0;
  std::vector<PartitionSummary> report;  ///< per-partition metrics
};

/// Runs the full pipeline (miner for supergraph schemes -> cut ->
/// optional refinement -> connectivity) at `num_threads` workers and
/// fingerprints the outcome. Fails the current test on pipeline errors.
PipelineFingerprint RunPipeline(const RoadNetwork& network,
                                PartitionerOptions options, int num_threads);

/// Asserts two fingerprints are identical (labels bit-identical, metrics
/// bitwise equal). `label` names the comparison in failure messages.
void ExpectIdenticalFingerprint(const PipelineFingerprint& baseline,
                                const PipelineFingerprint& other,
                                const std::string& label);

/// Runs the pipeline at every ThreadSweep() count and asserts all outcomes
/// match the single-threaded baseline.
void ExpectPipelineThreadInvariant(const NetworkCase& net,
                                   PartitionerOptions options,
                                   const std::string& label);

/// Everything MineSupergraph produced that determinism must preserve:
/// supernode membership and features, the superlink topology and weights,
/// and the full mining report (sweep curve, shortlist, component counts,
/// chosen kappa, stability values). Timing fields are excluded.
struct MiningFingerprint {
  bool ok = false;  ///< false if mining failed (already reported via gtest)
  std::vector<std::vector<int>> members;
  std::vector<double> features;
  std::vector<int> link_src;
  std::vector<int> link_dst;
  std::vector<double> link_weight;
  SupergraphMiningReport report;
};

/// Runs MineSupergraph at `num_threads` workers and fingerprints the output.
/// Fails the current test on mining errors (and returns ok = false).
MiningFingerprint RunMining(const RoadNetwork& network,
                            const SupergraphMinerOptions& options,
                            int num_threads);

/// Asserts two mining fingerprints are identical — member lists and link
/// topology exactly equal, features/weights/MCG values bitwise equal.
void ExpectIdenticalMining(const MiningFingerprint& baseline,
                           const MiningFingerprint& other,
                           const std::string& label);

/// Runs MineSupergraph at every ThreadSweep() count and asserts all outcomes
/// match the single-threaded baseline.
void ExpectMiningThreadInvariant(const NetworkCase& net,
                                 const SupergraphMinerOptions& options,
                                 const std::string& label);

/// Runs LanczosEigen at every ThreadSweep() count; asserts eigenvalues agree
/// within `tolerance` (default 1e-12) and eigenvectors are bit-identical to
/// the serial run. Returns the serial result for further checks, so non-
/// pipeline consumers (e.g. the pathological-spectrum tests) can chain
/// accuracy assertions onto the same run.
EigenResult ExpectLanczosThreadInvariant(const LinearOperator& op, int k,
                                         SpectrumEnd end,
                                         const LanczosOptions& options,
                                         const std::string& label,
                                         double tolerance = 1e-12);

}  // namespace roadpart::differential

#endif  // ROADPART_TESTS_DIFFERENTIAL_DIFFERENTIAL_HARNESS_H_
