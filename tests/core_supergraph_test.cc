#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/supergraph.h"
#include "core/supergraph_miner.h"
#include "graph/connected_components.h"
#include "network/road_graph.h"

namespace roadpart {
namespace {

CsrGraph Path(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return CsrGraph::FromEdges(n, edges).value();
}

// Path of 12 nodes with two clean density plateaus.
RoadGraph PlateauRoadGraph() {
  std::vector<double> f;
  for (int i = 0; i < 6; ++i) f.push_back(0.1 + 0.001 * i);
  for (int i = 0; i < 6; ++i) f.push_back(0.9 + 0.001 * i);
  return RoadGraph::FromParts(Path(12), f).value();
}

// --- Supergraph type ---

TEST(SupergraphTest, CreateValidatesPartition) {
  CsrGraph links = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  std::vector<Supernode> sns(2);
  sns[0].members = {0, 1};
  sns[1].members = {2};
  ASSERT_TRUE(Supergraph::Create(sns, links, 3).ok());

  // Overlap.
  sns[1].members = {1, 2};
  CsrGraph links2 = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  EXPECT_FALSE(Supergraph::Create(sns, links2, 3).ok());

  // Uncovered node.
  sns[1].members = {2};
  CsrGraph links3 = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  EXPECT_FALSE(Supergraph::Create(sns, links3, 4).ok());

  // Empty supernode.
  sns[1].members = {};
  CsrGraph links4 = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  EXPECT_FALSE(Supergraph::Create(sns, links4, 2).ok());

  // Mismatched link graph order.
  std::vector<Supernode> one(1);
  one[0].members = {0, 1, 2};
  CsrGraph links5 = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  EXPECT_FALSE(Supergraph::Create(one, links5, 3).ok());
}

TEST(SupergraphTest, ExpandAssignment) {
  CsrGraph links = CsrGraph::FromEdges(2, {{0, 1, 0.5}}).value();
  std::vector<Supernode> sns(2);
  sns[0].members = {0, 2};
  sns[1].members = {1};
  Supergraph sg = Supergraph::Create(sns, links, 3).value();
  auto expanded = sg.ExpandAssignment({7, 9});
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, (std::vector<int>{7, 9, 7}));
  EXPECT_FALSE(sg.ExpandAssignment({1}).ok());
  EXPECT_EQ(sg.SupernodeOf(2), 0);
}

// --- SuperlinkWeight (Equation 3) ---

TEST(SuperlinkWeightTest, PaperEq3IsGaussian) {
  double sigma_sq = 2.0;
  double w = SuperlinkWeight(1.0, 3.0, 5, sigma_sq,
                             SuperlinkWeightScheme::kPaperEq3);
  EXPECT_NEAR(w, std::exp(-4.0 / 4.0), 1e-12);
  // Link count does not matter in the printed formula.
  EXPECT_DOUBLE_EQ(w, SuperlinkWeight(1.0, 3.0, 50, sigma_sq,
                                      SuperlinkWeightScheme::kPaperEq3));
}

TEST(SuperlinkWeightTest, IdenticalFeaturesGiveOne) {
  EXPECT_DOUBLE_EQ(SuperlinkWeight(2.0, 2.0, 3, 1.0,
                                   SuperlinkWeightScheme::kPaperEq3),
                   1.0);
}

TEST(SuperlinkWeightTest, BoundedInUnitInterval) {
  for (double gap : {0.0, 0.5, 1.0, 5.0, 100.0}) {
    double w = SuperlinkWeight(0.0, gap, 2, 1.0,
                               SuperlinkWeightScheme::kPaperEq3);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(SuperlinkWeightTest, LinkCountScaledGrows) {
  double w1 = SuperlinkWeight(0.0, 1.0, 1, 1.0,
                              SuperlinkWeightScheme::kLinkCountScaled);
  double w4 = SuperlinkWeight(0.0, 1.0, 4, 1.0,
                              SuperlinkWeightScheme::kLinkCountScaled);
  EXPECT_NEAR(w4, 2.0 * w1, 1e-12);
}

TEST(SuperlinkWeightTest, ZeroVarianceDegradesToOne) {
  EXPECT_DOUBLE_EQ(SuperlinkWeight(1.0, 9.0, 2, 0.0,
                                   SuperlinkWeightScheme::kPaperEq3),
                   1.0);
}

// --- MineSupergraph (Algorithm 1) ---

TEST(SupergraphMinerTest, PlateausBecomeTwoSupernodes) {
  RoadGraph rg = PlateauRoadGraph();
  SupergraphMinerOptions opt;
  opt.max_kappa = 5;
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, opt, &report);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->num_supernodes(), 2);
  EXPECT_EQ(report.chosen_kappa, 2);
  EXPECT_EQ(sg->num_road_nodes(), 12);
  // One superlink between the two plateaus.
  EXPECT_EQ(sg->links().num_edges(), 1);
  double w = sg->links().EdgeWeight(0, 1);
  EXPECT_GT(w, 0.0);
  EXPECT_LE(w, 1.0);
  // Features are the plateau means.
  std::vector<double> feats = sg->Features();
  std::sort(feats.begin(), feats.end());
  EXPECT_NEAR(feats[0], 0.1025, 1e-3);
  EXPECT_NEAR(feats[1], 0.9025, 1e-3);
}

TEST(SupergraphMinerTest, SupernodesAreConnectedInRoadGraph) {
  RoadGraph rg = PlateauRoadGraph();
  auto sg = MineSupergraph(rg, {});
  ASSERT_TRUE(sg.ok());
  for (const Supernode& sn : sg->supernodes()) {
    EXPECT_TRUE(IsSubsetConnected(rg.adjacency(), sn.members));
  }
}

TEST(SupergraphMinerTest, MembersPartitionNodeSet) {
  RoadGraph rg = PlateauRoadGraph();
  auto sg = MineSupergraph(rg, {});
  ASSERT_TRUE(sg.ok());
  std::set<int> seen;
  for (const Supernode& sn : sg->supernodes()) {
    for (int v : sn.members) {
      EXPECT_TRUE(seen.insert(v).second) << "node " << v << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), rg.num_nodes());
}

TEST(SupergraphMinerTest, SuperlinkExistsIffCrossEdgeExists) {
  RoadGraph rg = PlateauRoadGraph();
  auto sg = MineSupergraph(rg, {});
  ASSERT_TRUE(sg.ok());
  const CsrGraph& road = rg.adjacency();
  const int ns = sg->num_supernodes();
  // Build ground truth cross-adjacency.
  std::set<std::pair<int, int>> expected;
  for (int u = 0; u < road.num_nodes(); ++u) {
    for (int v : road.Neighbors(u)) {
      int p = sg->SupernodeOf(u);
      int q = sg->SupernodeOf(v);
      if (p != q) expected.insert({std::min(p, q), std::max(p, q)});
    }
  }
  int found = 0;
  for (int p = 0; p < ns; ++p) {
    for (int q : sg->links().Neighbors(p)) {
      if (p < q) {
        EXPECT_TRUE(expected.count({p, q}));
        ++found;
      }
    }
  }
  EXPECT_EQ(found, static_cast<int>(expected.size()));
}

TEST(SupergraphMinerTest, ReportSweepRecorded) {
  RoadGraph rg = PlateauRoadGraph();
  SupergraphMinerOptions opt;
  opt.max_kappa = 6;
  SupergraphMiningReport report;
  ASSERT_TRUE(MineSupergraph(rg, opt, &report).ok());
  ASSERT_EQ(report.kappas.size(), report.mcg.size());
  EXPECT_EQ(report.kappas.front(), 2);
  EXPECT_FALSE(report.shortlisted_kappas.empty());
  EXPECT_GE(report.threshold, 0.0);
  EXPECT_EQ(static_cast<int>(report.stability_values.size()),
            report.supernodes_after_stability);
}

TEST(SupergraphMinerTest, AbsoluteThresholdRespected) {
  RoadGraph rg = PlateauRoadGraph();
  SupergraphMinerOptions opt;
  opt.mcg_threshold_absolute = 0.0;  // everything shortlisted
  opt.max_kappa = 5;
  SupergraphMiningReport report;
  ASSERT_TRUE(MineSupergraph(rg, opt, &report).ok());
  EXPECT_EQ(report.shortlisted_kappas.size(), report.kappas.size());
}

TEST(SupergraphMinerTest, StabilityThresholdSplitsMore) {
  // Noisy features so low-kappa clusters are internally diverse.
  std::vector<double> f;
  for (int i = 0; i < 40; ++i) {
    f.push_back(0.1 + 0.02 * (i % 7));
  }
  RoadGraph rg = RoadGraph::FromParts(Path(40), f).value();
  SupergraphMinerOptions loose;
  loose.stability.threshold = 0.0;
  SupergraphMinerOptions strict;
  strict.stability.threshold = 0.999;
  auto sg_loose = MineSupergraph(rg, loose);
  auto sg_strict = MineSupergraph(rg, strict);
  ASSERT_TRUE(sg_loose.ok() && sg_strict.ok());
  EXPECT_GE(sg_strict->num_supernodes(), sg_loose->num_supernodes());
}

TEST(SupergraphMinerTest, EmptyGraphRejected) {
  RoadGraph rg;
  EXPECT_FALSE(MineSupergraph(rg, {}).ok());
}

TEST(SupergraphMinerTest, SamplingPathStillWorks) {
  std::vector<double> f;
  for (int i = 0; i < 200; ++i) f.push_back(i < 100 ? 0.1 : 0.8);
  RoadGraph rg = RoadGraph::FromParts(Path(200), f).value();
  SupergraphMinerOptions opt;
  opt.sample_size = 50;  // force the sampling branch
  auto sg = MineSupergraph(rg, opt);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->num_supernodes(), 2);
}

}  // namespace
}  // namespace roadpart
