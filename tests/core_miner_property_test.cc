// Property tests of the supergraph miner over randomized road graphs:
// invariants of Definitions 6-8 must hold for every input.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/supergraph_miner.h"
#include "graph/connected_components.h"
#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

struct MinerCase {
  uint64_t seed;
  double stability_threshold;
};

class MinerPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MinerPropertySweep, InvariantsHold) {
  auto [seed, stability] = GetParam();
  GridOptions grid;
  grid.rows = 7 + static_cast<int>(seed % 4);
  grid.cols = 7;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 2 + static_cast<int>(seed % 3);
  field_opt.voronoi_tiling = (seed % 2) == 0;
  field_opt.seed = seed * 31 + 1;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  SupergraphMinerOptions options;
  options.stability.threshold = stability;
  options.seed = seed;
  SupergraphMiningReport report;
  auto sg_or = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg_or.ok()) << sg_or.status().ToString();
  const Supergraph& sg = *sg_or;

  // Members partition V (Definition 6/8).
  std::set<int> seen;
  for (const Supernode& sn : sg.supernodes()) {
    ASSERT_FALSE(sn.members.empty());
    for (int v : sn.members) {
      EXPECT_TRUE(seen.insert(v).second);
      EXPECT_EQ(sg.SupernodeOf(v), &sn - sg.supernodes().data());
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), rg.num_nodes());

  // Supernodes are interlinked (connected) in the road graph.
  for (const Supernode& sn : sg.supernodes()) {
    EXPECT_TRUE(IsSubsetConnected(rg.adjacency(), sn.members));
  }

  // Supernode feature range: with a stability pass, features are member
  // means (inside the member range); without one they are k-means cluster
  // means, which live inside the global feature range (a component of a
  // cluster need not straddle the cluster's global mean).
  double global_lo = *std::min_element(rg.features().begin(),
                                       rg.features().end());
  double global_hi = *std::max_element(rg.features().begin(),
                                       rg.features().end());
  for (const Supernode& sn : sg.supernodes()) {
    double lo = global_lo;
    double hi = global_hi;
    if (stability > 0.0) {
      lo = hi = rg.features()[sn.members[0]];
      for (int v : sn.members) {
        lo = std::min(lo, rg.features()[v]);
        hi = std::max(hi, rg.features()[v]);
      }
    }
    EXPECT_GE(sn.feature, lo - 1e-9);
    EXPECT_LE(sn.feature, hi + 1e-9);
  }

  // Superlink weights are valid similarities (Definition 8 / Equation 3).
  const CsrGraph& links = sg.links();
  for (int s = 0; s < links.num_nodes(); ++s) {
    for (size_t i = 0; i < links.Neighbors(s).size(); ++i) {
      double w = links.NeighborWeights(s)[i];
      EXPECT_GT(w, 0.0);
      EXPECT_LE(w, 1.0 + 1e-12);
    }
  }

  // Superlinks exist iff cross edges exist (Definition 7).
  std::set<std::pair<int, int>> expected;
  for (int u = 0; u < rg.num_nodes(); ++u) {
    for (int v : rg.adjacency().Neighbors(u)) {
      int p = sg.SupernodeOf(u);
      int q = sg.SupernodeOf(v);
      if (p != q) expected.insert({std::min(p, q), std::max(p, q)});
    }
  }
  std::set<std::pair<int, int>> actual;
  for (int s = 0; s < links.num_nodes(); ++s) {
    for (int t : links.Neighbors(s)) {
      if (s < t) actual.insert({s, t});
    }
  }
  EXPECT_EQ(actual, expected);

  // Report is self-consistent.
  EXPECT_EQ(report.supernodes_after_stability, sg.num_supernodes());
  EXPECT_GE(report.chosen_kappa, 2);
  // Stability values in [0, 1]; with a threshold, multi-member supernodes
  // meet it.
  for (size_t s = 0; s < report.stability_values.size(); ++s) {
    EXPECT_GE(report.stability_values[s], 0.0);
    EXPECT_LE(report.stability_values[s], 1.0);
    if (stability > 0.0 && sg.supernode(static_cast<int>(s)).members.size() > 1) {
      EXPECT_GE(report.stability_values[s], stability - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MinerPropertySweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 5, 8),
                       ::testing::Values(0.0, 0.9, 0.99)));

}  // namespace
}  // namespace roadpart
