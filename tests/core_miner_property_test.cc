// Property tests of the supergraph miner over randomized road graphs:
// invariants of Definitions 6-8 must hold for every input.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/supergraph_miner.h"
#include "graph/connected_components.h"
#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

struct MinerCase {
  uint64_t seed;
  double stability_threshold;
};

class MinerPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MinerPropertySweep, InvariantsHold) {
  auto [seed, stability] = GetParam();
  GridOptions grid;
  grid.rows = 7 + static_cast<int>(seed % 4);
  grid.cols = 7;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 2 + static_cast<int>(seed % 3);
  field_opt.voronoi_tiling = (seed % 2) == 0;
  field_opt.seed = seed * 31 + 1;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  RoadGraph rg = RoadGraph::FromNetwork(net);

  SupergraphMinerOptions options;
  options.stability.threshold = stability;
  options.seed = seed;
  SupergraphMiningReport report;
  auto sg_or = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg_or.ok()) << sg_or.status().ToString();
  const Supergraph& sg = *sg_or;

  // Members partition V (Definition 6/8).
  std::set<int> seen;
  for (const Supernode& sn : sg.supernodes()) {
    ASSERT_FALSE(sn.members.empty());
    for (int v : sn.members) {
      EXPECT_TRUE(seen.insert(v).second);
      EXPECT_EQ(sg.SupernodeOf(v), &sn - sg.supernodes().data());
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), rg.num_nodes());

  // Supernodes are interlinked (connected) in the road graph.
  for (const Supernode& sn : sg.supernodes()) {
    EXPECT_TRUE(IsSubsetConnected(rg.adjacency(), sn.members));
  }

  // Supernode feature range: with a stability pass, features are member
  // means (inside the member range); without one they are k-means cluster
  // means, which live inside the global feature range (a component of a
  // cluster need not straddle the cluster's global mean).
  double global_lo = *std::min_element(rg.features().begin(),
                                       rg.features().end());
  double global_hi = *std::max_element(rg.features().begin(),
                                       rg.features().end());
  for (const Supernode& sn : sg.supernodes()) {
    double lo = global_lo;
    double hi = global_hi;
    if (stability > 0.0) {
      lo = hi = rg.features()[sn.members[0]];
      for (int v : sn.members) {
        lo = std::min(lo, rg.features()[v]);
        hi = std::max(hi, rg.features()[v]);
      }
    }
    EXPECT_GE(sn.feature, lo - 1e-9);
    EXPECT_LE(sn.feature, hi + 1e-9);
  }

  // Superlink weights are valid similarities (Definition 8 / Equation 3).
  const CsrGraph& links = sg.links();
  for (int s = 0; s < links.num_nodes(); ++s) {
    for (size_t i = 0; i < links.Neighbors(s).size(); ++i) {
      double w = links.NeighborWeights(s)[i];
      EXPECT_GT(w, 0.0);
      EXPECT_LE(w, 1.0 + 1e-12);
    }
  }

  // Superlinks exist iff cross edges exist (Definition 7).
  std::set<std::pair<int, int>> expected;
  for (int u = 0; u < rg.num_nodes(); ++u) {
    for (int v : rg.adjacency().Neighbors(u)) {
      int p = sg.SupernodeOf(u);
      int q = sg.SupernodeOf(v);
      if (p != q) expected.insert({std::min(p, q), std::max(p, q)});
    }
  }
  std::set<std::pair<int, int>> actual;
  for (int s = 0; s < links.num_nodes(); ++s) {
    for (int t : links.Neighbors(s)) {
      if (s < t) actual.insert({s, t});
    }
  }
  EXPECT_EQ(actual, expected);

  // Report is self-consistent.
  EXPECT_EQ(report.supernodes_after_stability, sg.num_supernodes());
  EXPECT_GE(report.chosen_kappa, 2);
  // Stability values in [0, 1]; with a threshold, multi-member supernodes
  // meet it.
  for (size_t s = 0; s < report.stability_values.size(); ++s) {
    EXPECT_GE(report.stability_values[s], 0.0);
    EXPECT_LE(report.stability_values[s], 1.0);
    if (stability > 0.0 && sg.supernode(static_cast<int>(s)).members.size() > 1) {
      EXPECT_GE(report.stability_values[s], stability - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MinerPropertySweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 5, 8),
                       ::testing::Values(0.0, 0.9, 0.99)));

RoadGraph GridWithDensities(std::vector<double> (*make)(int)) {
  GridOptions grid;
  grid.rows = 8;
  grid.cols = 8;
  grid.seed = 3;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  EXPECT_TRUE(net.SetDensities(make(net.num_segments())).ok());
  return RoadGraph::FromNetwork(net);
}

TEST(MinerDegenerateSweep, ConstantDensitiesShortlistOneKappa) {
  // All-zero MCG curve (constant densities). Historical bug: the fractional
  // threshold became 0.85 * 0 == 0 and *every* kappa was shortlisted,
  // sending the whole sweep range into full-data Phase B. The fix
  // shortlists only the arg-max kappa.
  RoadGraph rg = GridWithDensities(
      +[](int n) { return std::vector<double>(n, 2.0); });
  SupergraphMinerOptions options;
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg.ok()) << sg.status().ToString();
  for (double m : report.mcg) EXPECT_EQ(m, 0.0);
  ASSERT_EQ(report.shortlisted_kappas.size(), 1u);
  EXPECT_EQ(report.shortlisted_kappas[0], 2);  // arg-max ties -> smallest
  EXPECT_EQ(report.chosen_kappa, 2);
  // One flat cluster over a connected grid: a single supernode.
  EXPECT_EQ(sg->num_supernodes(), 1);
}

TEST(MinerDegenerateSweep, NearConstantDensitiesKeepNormalPath) {
  // A whisper of signal: MCG is positive somewhere, so the normal
  // fraction-of-max shortlist logic must still apply (not the degenerate
  // single-kappa path).
  RoadGraph rg = GridWithDensities(+[](int n) {
    std::vector<double> d(n, 2.0);
    for (int i = 0; i < n / 4; ++i) d[i] = 2.0 + 1e-6;
    return d;
  });
  SupergraphMinerOptions options;
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg.ok()) << sg.status().ToString();
  double best = *std::max_element(report.mcg.begin(), report.mcg.end());
  EXPECT_GT(best, 0.0);
  ASSERT_FALSE(report.shortlisted_kappas.empty());
  for (int kappa : report.shortlisted_kappas) {
    size_t idx = static_cast<size_t>(kappa - 2);
    EXPECT_GE(report.mcg[idx], report.threshold);
  }
}

TEST(MinerSweepCeiling, InclusiveOfSampleSize) {
  // n feature values must admit kappa == n (the old bound stopped at n-1).
  RoadGraph rg = GridWithDensities(+[](int n) {
    std::vector<double> out;
    for (int i = 0; i < n; ++i) out.push_back(1.0 + 0.25 * (i % 11));
    return out;
  });
  SupergraphMinerOptions options;
  options.sample_size = 0;  // sweep the full feature vector
  options.max_kappa = 1 << 20;  // far above n: ceiling must clamp to n
  SupergraphMiningReport report;
  auto sg = MineSupergraph(rg, options, &report);
  ASSERT_TRUE(sg.ok()) << sg.status().ToString();
  EXPECT_EQ(report.effective_max_kappa, rg.num_nodes());
  ASSERT_FALSE(report.kappas.empty());
  EXPECT_EQ(report.kappas.back(), rg.num_nodes());
}

TEST(MinerSweepCeiling, SampleSizeBelowThreeRejected) {
  RoadGraph rg = GridWithDensities(
      +[](int n) { return std::vector<double>(n, 1.0); });
  for (int bad : {1, 2}) {
    SupergraphMinerOptions options;
    options.sample_size = bad;
    auto sg = MineSupergraph(rg, options);
    EXPECT_FALSE(sg.ok()) << "sample_size=" << bad;
    EXPECT_EQ(sg.status().code(), StatusCode::kInvalidArgument);
  }
  // Non-positive disables sampling and is accepted.
  SupergraphMinerOptions options;
  options.sample_size = 0;
  EXPECT_TRUE(MineSupergraph(rg, options).ok());
}

TEST(MinerSweepCeiling, ReportSurfacesEffectiveCeiling) {
  RoadGraph rg = GridWithDensities(+[](int n) {
    std::vector<double> out;
    for (int i = 0; i < n; ++i) out.push_back(static_cast<double>(i % 7));
    return out;
  });
  SupergraphMinerOptions options;  // max_kappa 30 < sample floor here
  SupergraphMiningReport report;
  ASSERT_TRUE(MineSupergraph(rg, options, &report).ok());
  EXPECT_EQ(report.effective_max_kappa,
            std::min(options.max_kappa, rg.num_nodes()));
  EXPECT_EQ(static_cast<int>(report.kappas.size()),
            report.effective_max_kappa - 1);
}

}  // namespace
}  // namespace roadpart
