#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.h"
#include "linalg/linear_operator.h"

namespace roadpart {
namespace {

TEST(DenseMatrixTest, ConstructAndIndex) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrixTest, MultiplyMatchesManual) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
  int val = 1;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) m(r, c) = val++;
  }
  double x[3] = {1.0, 1.0, 1.0};
  double y[2];
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix m(2, 3);
  m(0, 2) = 7.0;
  DenseMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(DenseMatrixTest, SymmetryError) {
  DenseMatrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  EXPECT_DOUBLE_EQ(m.SymmetryError(), 0.0);
  m(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(m.SymmetryError(), 0.5);
}

TEST(DenseMatrixTest, Identity) {
  DenseMatrix i = DenseMatrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(VectorOpsTest, DotAndNorm) {
  std::vector<double> a = {3.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
}

TEST(VectorOpsTest, AxpyScale) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  Scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(VectorOpsTest, SumMeanVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(LinearOperatorTest, DenseOperatorMatchesMatrix) {
  DenseMatrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 2) = -1.0;
  m(2, 1) = -1.0;
  DenseOperator op(m);
  double x[3] = {1.0, 2.0, 3.0};
  double y[3];
  op.Apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
}

TEST(LinearOperatorTest, RankOneUpdatedMatchesFormula) {
  // M = u u^T / s - A with A = I.
  DenseMatrix a = DenseMatrix::Identity(3);
  DenseOperator a_op(a);
  std::vector<double> u = {1.0, 2.0, 3.0};
  double s = 6.0;
  RankOneUpdatedOperator m_op(a_op, u, 1.0 / s, -1.0);
  DenseMatrix m = Materialize(m_op);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double expected = u[i] * u[j] / s - (i == j ? 1.0 : 0.0);
      EXPECT_NEAR(m(i, j), expected, 1e-14);
    }
  }
}

TEST(LinearOperatorTest, ShiftedOperator) {
  DenseMatrix a = DenseMatrix::Identity(2);
  a(0, 0) = 3.0;
  DenseOperator a_op(a);
  ShiftedOperator shifted(a_op, 1.0);
  DenseMatrix m = Materialize(shifted);
  EXPECT_NEAR(m(0, 0), 2.0, 1e-14);
  EXPECT_NEAR(m(1, 1), 0.0, 1e-14);
}

TEST(LinearOperatorTest, MaterializeRoundTrip) {
  DenseMatrix m(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) m(i, j) = i * 10 + j;
  }
  DenseOperator op(m);
  DenseMatrix back = Materialize(op);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(back(i, j), m(i, j));
  }
}

}  // namespace
}  // namespace roadpart
