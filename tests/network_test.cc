#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "network/network_io.h"
#include "network/road_graph.h"
#include "network/road_network.h"

namespace roadpart {
namespace {

// A 4-intersection diamond:
//   0 --s0--> 1, 1 --s1--> 0 (two-way road)
//   1 --s2--> 2
//   2 --s3--> 3
//   3 --s4--> 0
RoadNetwork Diamond() {
  std::vector<Intersection> pts = {
      {{0.0, 0.0}}, {{100.0, 0.0}}, {{100.0, 100.0}}, {{0.0, 100.0}}};
  std::vector<RoadSegment> segs = {{0, 1, 100.0, 0.1},
                                   {1, 0, 100.0, 0.2},
                                   {1, 2, 100.0, 0.3},
                                   {2, 3, 100.0, 0.4},
                                   {3, 0, 100.0, 0.5}};
  return RoadNetwork::Create(std::move(pts), std::move(segs)).value();
}

TEST(RoadNetworkTest, CreateValidates) {
  std::vector<Intersection> pts = {{{0.0, 0.0}}, {{1.0, 0.0}}};
  // Endpoint out of range.
  EXPECT_FALSE(RoadNetwork::Create(pts, {{0, 2, 1.0, 0.0}}).ok());
  // Self loop.
  EXPECT_FALSE(RoadNetwork::Create(pts, {{1, 1, 1.0, 0.0}}).ok());
  // Non-positive length.
  EXPECT_FALSE(RoadNetwork::Create(pts, {{0, 1, 0.0, 0.0}}).ok());
  // Negative density.
  EXPECT_FALSE(RoadNetwork::Create(pts, {{0, 1, 1.0, -0.5}}).ok());
  // Valid.
  EXPECT_TRUE(RoadNetwork::Create(pts, {{0, 1, 1.0, 0.5}}).ok());
}

TEST(RoadNetworkTest, IncidenceLists) {
  RoadNetwork net = Diamond();
  EXPECT_EQ(net.num_intersections(), 4);
  EXPECT_EQ(net.num_segments(), 5);
  // Intersection 1 touches segments 0, 1, 2.
  auto at1 = net.SegmentsAt(1);
  EXPECT_EQ(at1.size(), 3u);
  // Outgoing from 1: segments 1 (1->0) and 2 (1->2).
  auto from1 = net.SegmentsFrom(1);
  EXPECT_EQ(from1.size(), 2u);
}

TEST(RoadNetworkTest, DensityRoundTrip) {
  RoadNetwork net = Diamond();
  std::vector<double> d = {1.0, 2.0, 3.0, 4.0, 5.0};
  ASSERT_TRUE(net.SetDensities(d).ok());
  EXPECT_EQ(net.Densities(), d);
  EXPECT_DOUBLE_EQ(net.density(2), 3.0);
  net.set_density(2, 9.0);
  EXPECT_DOUBLE_EQ(net.density(2), 9.0);
}

TEST(RoadNetworkTest, SetDensitiesValidates) {
  RoadNetwork net = Diamond();
  EXPECT_FALSE(net.SetDensities({1.0, 2.0}).ok());            // wrong size
  EXPECT_FALSE(net.SetDensities({1, 1, 1, 1, -1}).ok());      // negative
}

TEST(RoadNetworkTest, BoundsAndLength) {
  RoadNetwork net = Diamond();
  BoundingBox box = net.Bounds();
  EXPECT_DOUBLE_EQ(box.WidthMetres(), 100.0);
  EXPECT_DOUBLE_EQ(box.HeightMetres(), 100.0);
  EXPECT_DOUBLE_EQ(net.TotalLengthMetres(), 500.0);
}

TEST(RoadGraphTest, DualConstruction) {
  RoadNetwork net = Diamond();
  CsrGraph dual = BuildDualAdjacency(net);
  EXPECT_EQ(dual.num_nodes(), 5);
  // Segments 0 (0->1) and 1 (1->0) share BOTH intersections: single edge.
  EXPECT_TRUE(dual.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(dual.EdgeWeight(0, 1), 1.0);
  // Segment 0 (0->1) and segment 2 (1->2) share intersection 1.
  EXPECT_TRUE(dual.HasEdge(0, 2));
  // Segment 0 (0->1) and segment 3 (2->3) share nothing.
  EXPECT_FALSE(dual.HasEdge(0, 3));
  // Segment 0 and 4 share intersection 0.
  EXPECT_TRUE(dual.HasEdge(0, 4));
}

TEST(RoadGraphTest, StarBecomesClique) {
  // 4 roads all meeting at intersection 0: the dual is K4.
  std::vector<Intersection> pts = {
      {{0.0, 0.0}}, {{1.0, 0.0}}, {{0.0, 1.0}}, {{-1.0, 0.0}}, {{0.0, -1.0}}};
  std::vector<RoadSegment> segs = {{0, 1, 1.0, 0.0},
                                   {0, 2, 1.0, 0.0},
                                   {0, 3, 1.0, 0.0},
                                   {0, 4, 1.0, 0.0}};
  RoadNetwork net = RoadNetwork::Create(pts, segs).value();
  CsrGraph dual = BuildDualAdjacency(net);
  EXPECT_EQ(dual.num_edges(), 6);  // C(4,2)
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dual.Degree(i), 3);
}

TEST(RoadGraphTest, LinearStaysLinear) {
  // Chain of 3 one-way roads: dual is a path.
  std::vector<Intersection> pts = {
      {{0.0, 0.0}}, {{1.0, 0.0}}, {{2.0, 0.0}}, {{3.0, 0.0}}};
  std::vector<RoadSegment> segs = {
      {0, 1, 1.0, 0.0}, {1, 2, 1.0, 0.0}, {2, 3, 1.0, 0.0}};
  RoadNetwork net = RoadNetwork::Create(pts, segs).value();
  CsrGraph dual = BuildDualAdjacency(net);
  EXPECT_EQ(dual.num_edges(), 2);
  EXPECT_TRUE(dual.HasEdge(0, 1));
  EXPECT_TRUE(dual.HasEdge(1, 2));
  EXPECT_FALSE(dual.HasEdge(0, 2));
}

TEST(RoadGraphTest, FeaturesSnapshotDensities) {
  RoadNetwork net = Diamond();
  RoadGraph rg = RoadGraph::FromNetwork(net);
  EXPECT_EQ(rg.num_nodes(), 5);
  EXPECT_DOUBLE_EQ(rg.features()[4], 0.5);
  EXPECT_TRUE(rg.SetFeatures({9, 9, 9, 9, 9}).ok());
  EXPECT_DOUBLE_EQ(rg.features()[0], 9.0);
  EXPECT_FALSE(rg.SetFeatures({1.0}).ok());
}

TEST(RoadGraphTest, FromPartsValidates) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1, 1.0}}).value();
  EXPECT_TRUE(RoadGraph::FromParts(g, {0.1, 0.2}).ok());
  CsrGraph g2 = CsrGraph::FromEdges(2, {{0, 1, 1.0}}).value();
  EXPECT_FALSE(RoadGraph::FromParts(g2, {0.1}).ok());
}

TEST(GeometryTest, DistanceAndLerp) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  Point mid = Lerp({0, 0}, {10, 20}, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(GeometryTest, BoundingBoxArea) {
  BoundingBox box{{0, 0}, {1609.344, 1609.344}};  // one square mile
  EXPECT_NEAR(box.AreaSqMiles(), 1.0, 1e-9);
}

TEST(NetworkIoTest, SaveLoadRoundTrip) {
  RoadNetwork net = Diamond();
  std::string path = testing::TempDir() + "/roadnet_roundtrip.txt";
  ASSERT_TRUE(SaveRoadNetwork(net, path).ok());
  auto loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_intersections(), net.num_intersections());
  EXPECT_EQ(loaded->num_segments(), net.num_segments());
  for (int i = 0; i < net.num_segments(); ++i) {
    EXPECT_EQ(loaded->segment(i).from, net.segment(i).from);
    EXPECT_EQ(loaded->segment(i).to, net.segment(i).to);
    EXPECT_NEAR(loaded->segment(i).density, net.segment(i).density, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(NetworkIoTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadRoadNetwork("/nonexistent/path/net.txt").ok());
}

TEST(NetworkIoTest, DensitiesRoundTrip) {
  std::string path = testing::TempDir() + "/densities_roundtrip.txt";
  std::vector<double> d = {0.0, 0.125, 3.5};
  ASSERT_TRUE(SaveDensities(d, path).ok());
  auto loaded = LoadDensities(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < d.size(); ++i) EXPECT_NEAR((*loaded)[i], d[i], 1e-9);
  std::remove(path.c_str());
}

TEST(NetworkIoTest, PartitionCsvWritten) {
  std::string path = testing::TempDir() + "/partition.csv";
  ASSERT_TRUE(SavePartitionCsv({0, 1, 1}, path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64];
  // Line 1 is the durable-artifact envelope header, line 2 the CSV header.
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "#! rpaf partition-csv v1\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "segment_id,partition_id\n");
  std::fclose(f);
  // The envelope round-trips through the matching loader.
  auto loaded = LoadPartitionCsv(path, 3);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, (std::vector<int>{0, 1, 1}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace roadpart
