// Optimality-gap property tests: on graphs small enough to enumerate every
// bipartition, the spectral alpha-Cut relaxation must land at or near the
// discrete optimum of its own objective (the paper's Section 5.4 argues the
// relaxation is a good surrogate for the NP-complete problem).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/alpha_cut.h"
#include "core/normalized_cut.h"

namespace roadpart {
namespace {

CsrGraph RandomConnectedGraph(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng.NextBounded(i)), i,
                     0.2 + rng.NextDouble()});
  }
  for (int e = 0; e < n; ++e) {
    int u = static_cast<int>(rng.NextBounded(n));
    int v = static_cast<int>(rng.NextBounded(n));
    if (u != v) edges.push_back({u, v, 0.2 + rng.NextDouble()});
  }
  return CsrGraph::FromEdges(n, edges).value();
}

// Exhaustive minimum of `objective` over all 2-partitions.
template <typename Objective>
double BruteForceBest(const CsrGraph& g, Objective objective) {
  const int n = g.num_nodes();
  double best = std::numeric_limits<double>::infinity();
  // Node 0 fixed in side 0 to halve the space; both sides non-empty.
  for (uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    std::vector<int> assignment(n, 0);
    for (int v = 1; v < n; ++v) {
      if (mask & (1u << (v - 1))) assignment[v] = 1;
    }
    best = std::min(best, objective(g, assignment));
  }
  return best;
}

class OptimalityGapSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalityGapSweep, AlphaCutNearDiscreteOptimum) {
  const int n = 10;
  CsrGraph g = RandomConnectedGraph(n, GetParam());
  double brute = BruteForceBest(
      g, [](const CsrGraph& gr, const std::vector<int>& a) {
        return AlphaCutObjective(gr, a);
      });

  AlphaCutOptions options;
  options.pipeline.kmeans.seed = GetParam() + 1;
  options.pipeline.enforce_connectivity = false;  // compare raw objectives
  auto cut = AlphaCutPartition(g, 2, options);
  ASSERT_TRUE(cut.ok());
  double achieved = AlphaCutObjective(g, cut->assignment);

  // The spectral solution must close most of the gap between a random
  // bipartition and the optimum. Scale tolerance by the objective spread.
  Rng rng(GetParam() + 2);
  double random_avg = 0.0;
  const int samples = 50;
  for (int s = 0; s < samples; ++s) {
    std::vector<int> assignment(n, 0);
    bool any1 = false;
    for (int v = 1; v < n; ++v) {
      assignment[v] = static_cast<int>(rng.NextBounded(2));
      any1 |= assignment[v] == 1;
    }
    if (!any1) assignment[n - 1] = 1;
    random_avg += AlphaCutObjective(g, assignment);
  }
  random_avg /= samples;

  double spread = random_avg - brute;
  ASSERT_GT(spread, 0.0);
  EXPECT_LE(achieved, brute + 0.35 * spread)
      << "achieved " << achieved << " brute " << brute << " random "
      << random_avg;
}

TEST_P(OptimalityGapSweep, NormalizedCutNearDiscreteOptimum) {
  const int n = 10;
  CsrGraph g = RandomConnectedGraph(n, GetParam() + 100);
  double brute = BruteForceBest(
      g, [](const CsrGraph& gr, const std::vector<int>& a) {
        return NormalizedCutObjective(gr, a);
      });
  NormalizedCutOptions options;
  options.pipeline.kmeans.seed = GetParam() + 3;
  options.pipeline.enforce_connectivity = false;
  auto cut = NormalizedCutPartition(g, 2, options);
  ASSERT_TRUE(cut.ok());
  double achieved = NormalizedCutObjective(g, cut->assignment);
  // ncut objective for k=2 lies in (0, 2]; allow a modest relaxation gap.
  EXPECT_LE(achieved, brute + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGapSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace roadpart
