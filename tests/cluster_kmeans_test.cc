#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/kmeans.h"
#include "cluster/kmeans1d.h"
#include "common/rng.h"

namespace roadpart {
namespace {

// --- KMeans1D ---

TEST(KMeans1DTest, SeparatesObviousClusters) {
  std::vector<double> values = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  auto r = KMeans1D(values, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment[0], r->assignment[1]);
  EXPECT_EQ(r->assignment[1], r->assignment[2]);
  EXPECT_EQ(r->assignment[3], r->assignment[4]);
  EXPECT_NE(r->assignment[0], r->assignment[3]);
  EXPECT_NEAR(r->means[0], 0.1, 1e-9);
  EXPECT_NEAR(r->means[1], 10.1, 1e-9);
  EXPECT_NEAR(r->wcss, 0.04, 1e-9);
}

TEST(KMeans1DTest, Deterministic) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextDouble());
  auto a = KMeans1D(values, 7);
  auto b = KMeans1D(values, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->means, b->means);
}

TEST(KMeans1DTest, InvalidArgs) {
  EXPECT_FALSE(KMeans1D({1.0, 2.0}, 0).ok());
  EXPECT_FALSE(KMeans1D({1.0, 2.0}, 3).ok());
}

TEST(KMeans1DTest, KEqualsN) {
  std::vector<double> values = {3.0, 1.0, 2.0};
  auto r = KMeans1D(values, 3);
  ASSERT_TRUE(r.ok());
  // Each point its own cluster; zero WCSS.
  EXPECT_NEAR(r->wcss, 0.0, 1e-12);
  std::set<int> distinct(r->assignment.begin(), r->assignment.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeans1DTest, DuplicateValues) {
  std::vector<double> values(20, 5.0);
  values.push_back(9.0);
  auto r = KMeans1D(values, 2);
  ASSERT_TRUE(r.ok());
  // All 5.0s together, the 9.0 alone.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r->assignment[i], r->assignment[0]);
  EXPECT_NE(r->assignment[20], r->assignment[0]);
}

TEST(KMeans1DTest, AllEqualValuesCapEffectiveK) {
  // Historical bug: with fewer distinct values than k, the re-seed loop gave
  // up and returned silently empty clusters with stale means. The contract
  // now caps the effective k at the distinct-value count.
  std::vector<double> values(12, 4.0);
  auto r = KMeans1D(values, 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->means.size(), 1u);
  EXPECT_EQ(r->means[0], 4.0);
  for (int a : r->assignment) EXPECT_EQ(a, 0);
  EXPECT_NEAR(r->wcss, 0.0, 1e-12);
}

TEST(KMeans1DTest, TwoDistinctValuesWithKFive) {
  std::vector<double> values = {1.0, 7.0, 1.0, 1.0, 7.0, 1.0, 7.0, 1.0};
  auto r = KMeans1D(values, 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->means.size(), 2u);
  EXPECT_EQ(r->means[0], 1.0);
  EXPECT_EQ(r->means[1], 7.0);
  // Every cluster id is used: no silently empty clusters.
  std::vector<int> counts(r->means.size(), 0);
  for (int a : r->assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, static_cast<int>(r->means.size()));
    counts[a]++;
  }
  for (int c : counts) EXPECT_GT(c, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(r->assignment[i], values[i] == 1.0 ? 0 : 1);
  }
  EXPECT_NEAR(r->wcss, 0.0, 1e-12);
}

TEST(KMeans1DTest, NoEmptyClustersUnderHeavyDuplication) {
  // 48 copies of 1.0 plus a handful of spread-out values; every requested
  // cluster must end up non-empty (the re-seed loop only splits clusters
  // that span >= 2 distinct values).
  std::vector<double> values(48, 1.0);
  for (double v : {5.0, 9.0, 9.5, 14.0}) values.push_back(v);
  auto r = KMeans1D(values, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->means.size(), 4u);
  std::vector<int> counts(4, 0);
  for (int a : r->assignment) counts[a]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(KMeans1DTest, WorkspaceOverloadMatchesVectorOverload) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.NextDouble(0, 4));
  // Duplicate-heavy tail.
  for (int i = 0; i < 100; ++i) values.push_back(2.5);
  Sorted1DWorkspace workspace(values);
  EXPECT_EQ(workspace.size(), static_cast<int>(values.size()));
  for (int k : {2, 3, 5, 9}) {
    auto direct = KMeans1D(values, k);
    auto shared = KMeans1D(workspace, k);
    ASSERT_TRUE(direct.ok() && shared.ok());
    EXPECT_EQ(direct->assignment, shared->assignment) << "k=" << k;
    EXPECT_EQ(direct->means, shared->means) << "k=" << k;
    EXPECT_EQ(direct->wcss, shared->wcss) << "k=" << k;
  }
}

TEST(KMeans1DTest, WorkspaceReportsDistinctCount) {
  Sorted1DWorkspace workspace({3.0, 1.0, 3.0, 2.0, 1.0});
  EXPECT_EQ(workspace.size(), 5);
  EXPECT_EQ(workspace.num_distinct(), 3);
  EXPECT_TRUE(std::is_sorted(workspace.sorted().begin(),
                             workspace.sorted().end()));
  // order() maps sorted positions back to input positions.
  for (int i = 0; i < workspace.size(); ++i) {
    EXPECT_EQ(workspace.sorted()[i],
              std::vector<double>({3.0, 1.0, 3.0, 2.0, 1.0})
                  [workspace.order()[i]]);
  }
}

TEST(KMeans1DTest, MeansSortedAscending) {
  Rng rng(8);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.NextGaussian());
  auto r = KMeans1D(values, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::is_sorted(r->means.begin(), r->means.end()));
}

TEST(KMeans1DTest, AssignmentConsistentWithNearestMean) {
  Rng rng(15);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble(0, 10));
  auto r = KMeans1D(values, 4);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    double assigned = std::fabs(values[i] - r->means[r->assignment[i]]);
    for (double m : r->means) {
      EXPECT_LE(assigned, std::fabs(values[i] - m) + 1e-9);
    }
  }
}

class KMeans1DSweep : public ::testing::TestWithParam<int> {};

TEST_P(KMeans1DSweep, WcssDecreasesWithK) {
  Rng rng(100 + GetParam());
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.NextGaussian(0, 3));
  double prev = HUGE_VAL;
  for (int k = 1; k <= GetParam(); ++k) {
    auto r = KMeans1D(values, k);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->wcss, prev + 1e-6) << "k=" << k;
    prev = r->wcss;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxK, KMeans1DSweep, ::testing::Values(4, 8, 16));

// --- KMeansRows ---

DenseMatrix ThreeBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix pts(3 * per_blob, 2);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      pts(b * per_blob + i, 0) = centers[b][0] + rng.NextGaussian() * 0.3;
      pts(b * per_blob + i, 1) = centers[b][1] + rng.NextGaussian() * 0.3;
    }
  }
  return pts;
}

TEST(KMeansRowsTest, RecoversBlobs) {
  DenseMatrix pts = ThreeBlobs(30, 21);
  KMeansOptions opt;
  opt.seed = 5;
  auto r = KMeansRows(pts, 3, opt);
  ASSERT_TRUE(r.ok());
  // Each blob must be pure.
  for (int b = 0; b < 3; ++b) {
    int label = r->assignment[b * 30];
    for (int i = 0; i < 30; ++i) EXPECT_EQ(r->assignment[b * 30 + i], label);
  }
  // And the three labels distinct.
  std::set<int> labels = {r->assignment[0], r->assignment[30],
                          r->assignment[60]};
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeansRowsTest, SeedReproducible) {
  DenseMatrix pts = ThreeBlobs(20, 22);
  KMeansOptions opt;
  opt.seed = 77;
  auto a = KMeansRows(pts, 3, opt);
  auto b = KMeansRows(pts, 3, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KMeansRowsTest, InvalidArgs) {
  DenseMatrix pts(3, 2);
  EXPECT_FALSE(KMeansRows(pts, 0).ok());
  EXPECT_FALSE(KMeansRows(pts, 4).ok());
  KMeansOptions opt;
  opt.restarts = 0;
  EXPECT_FALSE(KMeansRows(pts, 2, opt).ok());
}

TEST(KMeansRowsTest, NoEmptyClusters) {
  // Heavy duplication tempts empty clusters; the re-seeding must prevent
  // them.
  DenseMatrix pts(50, 1);
  for (int i = 0; i < 48; ++i) pts(i, 0) = 1.0;
  pts(48, 0) = 5.0;
  pts(49, 0) = 9.0;
  KMeansOptions opt;
  opt.seed = 2;
  auto r = KMeansRows(pts, 3, opt);
  ASSERT_TRUE(r.ok());
  std::vector<int> counts(3, 0);
  for (int a : r->assignment) counts[a]++;
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(KMeansRowsTest, RandomInitAlsoWorks) {
  DenseMatrix pts = ThreeBlobs(15, 31);
  KMeansOptions opt;
  opt.use_kmeanspp = false;
  opt.restarts = 10;
  opt.seed = 3;
  auto r = KMeansRows(pts, 3, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->wcss, 50.0);
}

TEST(KMeansRowsTest, MoreRestartsNeverWorse) {
  DenseMatrix pts = ThreeBlobs(20, 41);
  KMeansOptions one;
  one.restarts = 1;
  one.seed = 7;
  KMeansOptions many;
  many.restarts = 8;
  many.seed = 7;
  auto a = KMeansRows(pts, 4, one);
  auto b = KMeansRows(pts, 4, many);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(b->wcss, a->wcss + 1e-9);
}

TEST(KMeansRowsTest, SingleCluster) {
  DenseMatrix pts = ThreeBlobs(10, 51);
  auto r = KMeansRows(pts, 1);
  ASSERT_TRUE(r.ok());
  for (int a : r->assignment) EXPECT_EQ(a, 0);
}

}  // namespace
}  // namespace roadpart
