#include <gtest/gtest.h>

#include "common/flags.h"

namespace roadpart {
namespace {

const std::vector<std::string> kKnown = {"k", "scheme", "verbose", "ratio"};

FlagParser ParseOk(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  auto parser =
      FlagParser::Parse(static_cast<int>(argv.size()), argv.data(), kKnown);
  EXPECT_TRUE(parser.ok()) << parser.status().ToString();
  return std::move(parser).value();
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser p = ParseOk({"--k=5", "--scheme=ASG", "input.net"});
  EXPECT_EQ(p.GetInt("k", 0).value(), 5);
  EXPECT_EQ(p.GetString("scheme", ""), "ASG");
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "input.net");
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser p = ParseOk({"--k", "7", "file"});
  EXPECT_EQ(p.GetInt("k", 0).value(), 7);
  EXPECT_EQ(p.positional().size(), 1u);
}

TEST(FlagParserTest, BooleanFlag) {
  FlagParser p = ParseOk({"--verbose", "--k=2"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.GetBool("absent", false));
  EXPECT_TRUE(p.GetBool("absent", true));
}

TEST(FlagParserTest, DoubleValues) {
  FlagParser p = ParseOk({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(p.GetDouble("ratio", 0.0).value(), 0.75);
  EXPECT_DOUBLE_EQ(p.GetDouble("absent", 1.5).value(), 1.5);
}

TEST(FlagParserTest, UnknownFlagRejected) {
  const char* argv[] = {"--bogus=1"};
  EXPECT_FALSE(FlagParser::Parse(1, argv, kKnown).ok());
}

TEST(FlagParserTest, MalformedNumberReported) {
  FlagParser p = ParseOk({"--k=abc"});
  EXPECT_FALSE(p.GetInt("k", 0).ok());
}

TEST(FlagParserTest, PositionalOrderPreserved) {
  FlagParser p = ParseOk({"a", "--k=1", "b", "c"});
  ASSERT_EQ(p.positional().size(), 3u);
  EXPECT_EQ(p.positional()[0], "a");
  EXPECT_EQ(p.positional()[2], "c");
}

TEST(FlagParserTest, HasReflectsPresence) {
  FlagParser p = ParseOk({"--k=1"});
  EXPECT_TRUE(p.Has("k"));
  EXPECT_FALSE(p.Has("scheme"));
}

}  // namespace
}  // namespace roadpart
