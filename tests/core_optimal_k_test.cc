#include <gtest/gtest.h>

#include "core/optimal_k.h"
#include "netgen/grid_generator.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

RoadGraph TiledRoadGraph(int num_regions, uint64_t seed) {
  GridOptions grid;
  grid.rows = 10;
  grid.cols = 10;
  grid.seed = seed;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = num_regions;
  field_opt.voronoi_tiling = true;
  field_opt.noise_fraction = 0.03;
  field_opt.seed = seed + 50;
  CongestionField field(net, field_opt);
  (void)net.SetDensities(field.Densities());
  return RoadGraph::FromNetwork(net);
}

TEST(FindOptimalKTest, SweepCoversRangeAndPicksMinimum) {
  RoadGraph rg = TiledRoadGraph(3, 7);
  OptimalKOptions options;
  options.partitioner.scheme = Scheme::kASG;
  options.partitioner.seed = 3;
  options.k_min = 2;
  options.k_max = 8;
  auto result = FindOptimalK(rg, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->sweep.empty());
  // The reported optimum really is the sweep minimum.
  for (const KSweepPoint& point : result->sweep) {
    EXPECT_GE(point.ans, result->optimal_ans - 1e-12);
    EXPECT_GE(point.k, 2);
    EXPECT_LE(point.k, 8);
    EXPECT_EQ(point.assignment.size(),
              static_cast<size_t>(rg.num_nodes()));
  }
  EXPECT_GE(result->optimal_k, 2);
  EXPECT_LE(result->optimal_k, 8);
}

TEST(FindOptimalKTest, FindsPlantedRegionCountApproximately) {
  // With 4 crisp tiled regions, the ANS optimum should land near 4 (the
  // connected-region count can exceed the level count slightly).
  RoadGraph rg = TiledRoadGraph(4, 11);
  OptimalKOptions options;
  options.partitioner.scheme = Scheme::kASG;
  options.partitioner.seed = 5;
  options.k_min = 2;
  options.k_max = 10;
  auto result = FindOptimalK(rg, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->optimal_k, 3);
  EXPECT_LE(result->optimal_k, 8);
}

TEST(FindOptimalKTest, LocalMinimaExcludeGlobal) {
  RoadGraph rg = TiledRoadGraph(3, 13);
  OptimalKOptions options;
  options.partitioner.scheme = Scheme::kASG;
  options.partitioner.seed = 7;
  options.k_min = 2;
  options.k_max = 12;
  auto result = FindOptimalK(rg, options);
  ASSERT_TRUE(result.ok());
  for (int k : result->local_minima) {
    EXPECT_NE(k, result->optimal_k);
  }
}

TEST(FindOptimalKTest, InvalidRangeRejected) {
  RoadGraph rg = TiledRoadGraph(3, 17);
  OptimalKOptions options;
  options.k_min = 5;
  options.k_max = 2;
  EXPECT_FALSE(FindOptimalK(rg, options).ok());
  options.k_min = 0;
  options.k_max = 4;
  EXPECT_FALSE(FindOptimalK(rg, options).ok());
}

TEST(FindOptimalKTest, OversizedKsSkippedGracefully) {
  // k_max beyond the node count: those ks fail internally but the sweep
  // still returns the feasible part.
  RoadGraph rg = TiledRoadGraph(3, 19);
  OptimalKOptions options;
  options.partitioner.scheme = Scheme::kAG;
  options.partitioner.seed = 2;
  options.k_min = rg.num_nodes() - 1;
  options.k_max = rg.num_nodes() + 5;
  auto result = FindOptimalK(rg, options);
  ASSERT_TRUE(result.ok());
  for (const KSweepPoint& point : result->sweep) {
    EXPECT_LE(point.k, rg.num_nodes());
  }
}

}  // namespace
}  // namespace roadpart
