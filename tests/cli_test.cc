// End-to-end test of the roadpart_cli binary (path injected by CMake as
// RP_CLI_PATH): generate -> mine -> simulate -> partition -> evaluate ->
// sweep, all through the real command-line surface.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace roadpart {
namespace {

#ifndef RP_CLI_PATH
#define RP_CLI_PATH "roadpart_cli"
#endif

int RunCli(const std::string& args) {
  std::string command = std::string(RP_CLI_PATH) + " " + args +
                        " > /dev/null 2>&1";
  return std::system(command.c_str());
}

bool FileNonEmpty(const std::string& path) {
  std::ifstream in(path);
  return in.good() && in.peek() != std::ifstream::traits_type::eof();
}

class CliWorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir();
    net_ = dir_ + "/cli_city.net";
    ASSERT_EQ(RunCli("generate --preset=D1 --seed=3 " + net_), 0);
    ASSERT_TRUE(FileNonEmpty(net_));
  }

  std::string dir_;
  std::string net_;
};

TEST_F(CliWorkflowTest, PartitionAndEvaluate) {
  std::string csv = dir_ + "/cli_partition.csv";
  EXPECT_EQ(RunCli("partition --scheme=ASG --k=5 " + net_ + " " + csv), 0);
  EXPECT_TRUE(FileNonEmpty(csv));
  EXPECT_EQ(RunCli("evaluate " + net_ + " " + csv), 0);
  std::remove(csv.c_str());
}

TEST_F(CliWorkflowTest, MineWritesSupergraph) {
  std::string sg = dir_ + "/cli_city.sg";
  EXPECT_EQ(RunCli("mine " + net_ + " " + sg), 0);
  EXPECT_TRUE(FileNonEmpty(sg));
  std::remove(sg.c_str());
}

TEST_F(CliWorkflowTest, SimulateWritesDensities) {
  std::string densities = dir_ + "/cli.densities";
  EXPECT_EQ(
      RunCli("simulate --vehicles=500 --horizon=600 " + net_ + " " + densities),
      0);
  EXPECT_TRUE(FileNonEmpty(densities));
  std::remove(densities.c_str());
}

TEST_F(CliWorkflowTest, SeriesAndAnalyze) {
  std::string series = dir_ + "/cli_series.csv";
  std::string densities = dir_ + "/cli2.densities";
  EXPECT_EQ(RunCli("simulate --vehicles=400 --horizon=600 --interval=200 "
                   "--series=" +
                   series + " " + net_ + " " + densities),
            0);
  EXPECT_TRUE(FileNonEmpty(series));
  EXPECT_EQ(RunCli("analyze --scheme=ASG --k=3 " + net_ + " " + series), 0);
  std::remove(series.c_str());
  std::remove(densities.c_str());
}

TEST_F(CliWorkflowTest, SweepRuns) {
  EXPECT_EQ(RunCli("sweep --scheme=ASG --kmin=2 --kmax=4 " + net_), 0);
}

TEST_F(CliWorkflowTest, BadInputsFailCleanly) {
  EXPECT_NE(RunCli("partition --scheme=BOGUS --k=5 " + net_ + " /tmp/x.csv"), 0);
  EXPECT_NE(RunCli("generate --preset=XX /tmp/x.net"), 0);
  EXPECT_NE(RunCli("evaluate /no/such.net /no/such.csv"), 0);
  EXPECT_NE(RunCli("nonsense"), 0);
  EXPECT_NE(RunCli(""), 0);
}

TEST(CliTest, TearDownNetwork) {
  // Cleanup of the shared network file after the suite (best effort).
  std::remove((testing::TempDir() + "/cli_city.net").c_str());
  SUCCEED();
}

}  // namespace
}  // namespace roadpart
