// Lanczos on pathological spectra, differentially checked against the dense
// Householder+QL solver and across thread counts — the differential
// harness's first non-pipeline consumer. Pathologies covered:
//   - repeated eigenvalues (two identical decoupled blocks),
//   - disconnected supergraph blocks (block-diagonal adjacency, multiple
//     zero-ish extreme eigenvalues),
//   - near-degenerate clustered spectra (ring graphs' paired eigenvalues).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "differential/differential_harness.h"
#include "linalg/lanczos.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {
namespace {

using differential::ExpectLanczosThreadInvariant;

SparseMatrix SymmetricFromTripletsOrDie(int n,
                                        const std::vector<Triplet>& upper) {
  auto m = SparseMatrix::SymmetricFromTriplets(n, upper);
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

// Weighted ring on [first, first+n): adjacency with clustered (paired)
// eigenvalues; uniform weights make most of them exactly degenerate.
void AppendRing(std::vector<Triplet>& upper, int first, int n, double w) {
  for (int i = 0; i < n; ++i) {
    int a = first + i;
    int b = first + (i + 1) % n;
    upper.push_back({std::min(a, b), std::max(a, b), w});
  }
}

// k smallest (or largest) reference eigenvalues from the dense solver.
std::vector<double> DenseExtremes(const SparseMatrix& m, int k,
                                  SpectrumEnd end) {
  auto eig = SymmetricEigenDecompose(m.ToDense());
  EXPECT_TRUE(eig.ok());
  std::vector<double> values = eig->eigenvalues;  // ascending
  std::vector<double> out(k);
  const int n = static_cast<int>(values.size());
  for (int i = 0; i < k; ++i) {
    out[i] = (end == SpectrumEnd::kSmallest) ? values[i] : values[n - k + i];
  }
  return out;
}

TEST(LanczosPathologicalTest, RepeatedEigenvaluesFromIdenticalBlocks) {
  // Two identical uniform rings: every eigenvalue of one block is repeated
  // in the other, so the k=6 smallest contain exact multiplicities — the
  // classic case where unrestarted Lanczos without reorthogonalization
  // fails to find copies.
  const int block = 200;
  std::vector<Triplet> upper;
  AppendRing(upper, 0, block, 1.0);
  AppendRing(upper, block, block, 1.0);
  SparseMatrix m = SymmetricFromTripletsOrDie(2 * block, upper);
  SparseOperator op(m);

  const int k = 6;
  LanczosOptions options;
  EigenResult lanczos = ExpectLanczosThreadInvariant(
      op, k, SpectrumEnd::kSmallest, options, "identical blocks");
  ASSERT_EQ(lanczos.eigenvalues.size(), static_cast<size_t>(k));

  std::vector<double> dense = DenseExtremes(m, k, SpectrumEnd::kSmallest);
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos.eigenvalues[i], dense[i], 1e-7)
        << "eigenvalue " << i;
  }
}

TEST(LanczosPathologicalTest, DisconnectedSupergraphBlocks) {
  // Three disconnected weighted rings of different sizes/weights — the
  // shape of a supergraph whose mined supernodes fall into disconnected
  // districts. The largest end of the normalized-adjacency-like spectrum
  // then has one extreme eigenvalue per component.
  std::vector<Triplet> upper;
  AppendRing(upper, 0, 150, 2.0);
  AppendRing(upper, 150, 120, 1.0);
  AppendRing(upper, 270, 90, 0.5);
  const int n = 360;
  SparseMatrix m = SymmetricFromTripletsOrDie(n, upper);
  SparseOperator op(m);

  const int k = 5;
  LanczosOptions options;
  EigenResult lanczos = ExpectLanczosThreadInvariant(
      op, k, SpectrumEnd::kLargest, options, "disconnected blocks");
  ASSERT_EQ(lanczos.eigenvalues.size(), static_cast<size_t>(k));

  std::vector<double> dense = DenseExtremes(m, k, SpectrumEnd::kLargest);
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos.eigenvalues[i], dense[i], 1e-7)
        << "eigenvalue " << i;
  }
}

TEST(LanczosPathologicalTest, AlphaCutMatrixOfDisconnectedGraph) {
  // The paper's own operator M = (d d^T)/s - A over a disconnected graph:
  // each component contributes a near-zero eigenvalue at the small end.
  std::vector<Triplet> upper;
  AppendRing(upper, 0, 180, 1.0);
  AppendRing(upper, 180, 180, 1.0);
  const int n = 360;
  SparseMatrix a = SymmetricFromTripletsOrDie(n, upper);
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double v : d) s += v;
  RankOneUpdatedOperator m_op(a_op, d, 1.0 / s, -1.0);

  const int k = 4;
  LanczosOptions options;
  EigenResult lanczos = ExpectLanczosThreadInvariant(
      m_op, k, SpectrumEnd::kSmallest, options, "alpha-cut disconnected");
  ASSERT_EQ(lanczos.eigenvalues.size(), static_cast<size_t>(k));

  DenseMatrix dense_m = Materialize(m_op);
  auto dense = SymmetricEigenDecompose(dense_m);
  ASSERT_TRUE(dense.ok());
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos.eigenvalues[i], dense->eigenvalues[i], 1e-7)
        << "eigenvalue " << i;
  }
}

TEST(LanczosPathologicalTest, NearDegenerateClusteredSpectrum) {
  // A ring with tiny random perturbations: eigenvalue pairs split by ~1e-6,
  // stressing the convergence test's spectral-scale normalization.
  const int n = 400;
  Rng rng(99);
  std::vector<Triplet> upper;
  for (int i = 0; i < n; ++i) {
    upper.push_back(
        {std::min(i, (i + 1) % n), std::max(i, (i + 1) % n),
         1.0 + 1e-6 * rng.NextDouble()});
  }
  SparseMatrix m = SymmetricFromTripletsOrDie(n, upper);
  SparseOperator op(m);

  const int k = 6;
  LanczosOptions options;
  EigenResult lanczos = ExpectLanczosThreadInvariant(
      op, k, SpectrumEnd::kSmallest, options, "near-degenerate ring");
  std::vector<double> dense = DenseExtremes(m, k, SpectrumEnd::kSmallest);
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(lanczos.eigenvalues[i], dense[i], 1e-6) << "eigenvalue " << i;
  }
}

}  // namespace
}  // namespace roadpart
