#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "common/rng.h"

namespace roadpart {
namespace {

TEST(ClusterErrorSumsTest, HandComputed) {
  // Two clusters: {0, 2} (mean 1) and {10} (mean 10); global mean 4.
  std::vector<double> values = {0.0, 2.0, 10.0};
  std::vector<int> assignment = {0, 0, 1};
  auto sums = ComputeClusterErrorSums(values, assignment, 2);
  ASSERT_TRUE(sums.ok());
  // gain = (2-1)*(1-4)^2 + (1-1)*(10-4)^2 = 9.
  EXPECT_NEAR(sums->gain, 9.0, 1e-12);
  // intra = (0-1)^2 + (2-1)^2 + 0 = 2.
  EXPECT_NEAR(sums->intra_error, 2.0, 1e-12);
  // inter = (1-4)^2 + (10-4)^2 = 45.
  EXPECT_NEAR(sums->inter_error, 45.0, 1e-12);
}

TEST(ClusterErrorSumsTest, Validation) {
  EXPECT_FALSE(ComputeClusterErrorSums({1.0}, {0, 1}, 2).ok());
  EXPECT_FALSE(ComputeClusterErrorSums({1.0}, {2}, 2).ok());
  EXPECT_FALSE(ComputeClusterErrorSums({1.0}, {-1}, 1).ok());
  EXPECT_FALSE(ComputeClusterErrorSums({1.0}, {0}, 0).ok());
}

TEST(McgTest, HandComputed) {
  // Clusters {0, 2} and {10}: Theta1_0 = 9, ratio = 2/(2*9) = 1/9,
  // Theta2_0 = 1 - log2(1 + 1/9); singleton cluster contributes 0.
  std::vector<double> values = {0.0, 2.0, 10.0};
  std::vector<int> assignment = {0, 0, 1};
  auto mcg = ModeratedClusteringGain(values, assignment, 2);
  ASSERT_TRUE(mcg.ok());
  double expected = 9.0 * (1.0 - std::log2(1.0 + 1.0 / 9.0));
  EXPECT_NEAR(mcg.value(), expected, 1e-12);
}

TEST(McgTest, PerfectClustersGetFullGain) {
  // Zero intra error: Theta2 = 1 and MCG equals the clustering gain.
  std::vector<double> values = {1.0, 1.0, 5.0, 5.0};
  std::vector<int> assignment = {0, 0, 1, 1};
  double mcg = ModeratedClusteringGain(values, assignment, 2).value();
  double gain = ClusteringGain(values, assignment, 2).value();
  EXPECT_NEAR(mcg, gain, 1e-12);
  EXPECT_GT(mcg, 0.0);
}

TEST(McgTest, DiffuseClustersModeratedToZero) {
  // A cluster whose spread dwarfs its separation has Theta2 clamped to 0.
  std::vector<double> values = {-10.0, 10.0, 0.5};
  std::vector<int> assignment = {0, 0, 1};  // cluster 0: mean 0, huge spread
  double mcg = ModeratedClusteringGain(values, assignment, 2).value();
  EXPECT_NEAR(mcg, 0.0, 1e-9);
}

TEST(McgTest, SingleClusterIsZero) {
  // One cluster: mu_q == mu_0, so Theta1 = 0.
  std::vector<double> values = {1.0, 2.0, 3.0};
  std::vector<int> assignment = {0, 0, 0};
  EXPECT_NEAR(ModeratedClusteringGain(values, assignment, 1).value(), 0.0,
              1e-12);
}

TEST(McgTest, ElbowAtTrueK) {
  // Three well-separated blobs. As the paper's Figure 5 shows, MCG keeps
  // creeping up with kappa, so the *maximum* is not the signal — the elbow
  // is: the jump from kappa=2 to the true kappa=3 dwarfs every later
  // increment (this is exactly what the threshold epsilon_theta captures).
  Rng rng(33);
  std::vector<double> values;
  for (double center : {0.0, 50.0, 100.0}) {
    for (int i = 0; i < 40; ++i) {
      values.push_back(center + rng.NextGaussian() * 0.8);
    }
  }
  std::vector<double> mcg_at(8, 0.0);
  for (int kappa = 2; kappa <= 7; ++kappa) {
    auto km = KMeans1D(values, kappa).value();
    mcg_at[kappa] =
        ModeratedClusteringGain(values, km.assignment, kappa).value();
  }
  double jump_to_true = mcg_at[3] - mcg_at[2];
  EXPECT_GT(jump_to_true, 0.0);
  for (int kappa = 4; kappa <= 7; ++kappa) {
    double later_jump = std::fabs(mcg_at[kappa] - mcg_at[kappa - 1]);
    EXPECT_LT(later_jump, 0.2 * jump_to_true) << "kappa=" << kappa;
  }
}

TEST(ClusteringGainTest, GrowsWithSeparation) {
  std::vector<int> assignment = {0, 0, 1, 1};
  double near = ClusteringGain({0, 0, 1, 1}, assignment, 2).value();
  double far = ClusteringGain({0, 0, 9, 9}, assignment, 2).value();
  EXPECT_GT(far, near);
}

TEST(ClusteringBalanceTest, PrefersTightClusters) {
  std::vector<int> assignment = {0, 0, 1, 1};
  // Tight clusters, same means.
  double tight = ClusteringBalance({0.0, 0.2, 9.8, 10.0}, assignment, 2).value();
  double loose = ClusteringBalance({-2.0, 2.2, 7.8, 12.0}, assignment, 2).value();
  EXPECT_LT(tight, loose);
}

TEST(OptimalityMeasuresTest, EmptyClusterIdsTolerated) {
  // Cluster 1 unused: measures must still compute (skipping it).
  std::vector<double> values = {1.0, 2.0};
  std::vector<int> assignment = {0, 2};
  auto mcg = ModeratedClusteringGain(values, assignment, 3);
  ASSERT_TRUE(mcg.ok());
  EXPECT_GE(mcg.value(), 0.0);
}

class McgKappaSweep : public ::testing::TestWithParam<int> {};

TEST_P(McgKappaSweep, NonNegativeAndFinite) {
  Rng rng(500 + GetParam());
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.NextDouble(0, 0.2));
  int kappa = GetParam();
  auto km = KMeans1D(values, kappa).value();
  double mcg = ModeratedClusteringGain(values, km.assignment, kappa).value();
  EXPECT_GE(mcg, 0.0);
  EXPECT_TRUE(std::isfinite(mcg));
}

INSTANTIATE_TEST_SUITE_P(Kappas, McgKappaSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 20, 40));

}  // namespace
}  // namespace roadpart
