#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace roadpart {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndOneCount) {
  int calls = 0;
  // At most one iteration ever runs, so the shared counter cannot race.
  // rp-analyze: allow(parallelfor-shared-mutation)
  ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;  // rp-analyze: allow(parallelfor-shared-mutation)
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<int> order;
  // num_threads=1 runs inline; the recorded order IS the property under test.
  // rp-analyze: allow(parallelfor-shared-mutation)
  ParallelFor(5, [&](int i) { order.push_back(i); }, /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const int n = 5000;
  std::vector<double> parallel_out(n);
  std::vector<double> sequential_out(n);
  auto work = [](int i) { return std::sqrt(static_cast<double>(i) * 13.7); };
  ParallelFor(n, [&](int i) { parallel_out[i] = work(i); });
  for (int i = 0; i < n; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](int i) { hits[i].fetch_add(1); }, /*num_threads=*/64);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, DefaultParallelismPositive) {
  EXPECT_GE(DefaultParallelism(), 1);
}

TEST(ParallelForTest, SetDefaultParallelismOverridesAndRestores) {
  int original = DefaultParallelism();
  SetDefaultParallelism(3);
  EXPECT_EQ(DefaultParallelism(), 3);
  SetDefaultParallelism(0);  // back to env/hardware default
  EXPECT_EQ(DefaultParallelism(), original);
}

TEST(ParallelForTest, ScopedParallelismNestsAndRestores) {
  SetDefaultParallelism(0);
  int original = DefaultParallelism();
  {
    ScopedParallelism outer(5);
    EXPECT_EQ(DefaultParallelism(), 5);
    {
      ScopedParallelism inner(2);
      EXPECT_EQ(DefaultParallelism(), 2);
      ScopedParallelism noop(0);  // n <= 0 leaves the setting alone
      EXPECT_EQ(DefaultParallelism(), 2);
    }
    EXPECT_EQ(DefaultParallelism(), 5);
  }
  EXPECT_EQ(DefaultParallelism(), original);
}

TEST(ParallelForTest, GrainOverloadCoversEveryIndexOnce) {
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int i) { hits[i].fetch_add(1); }, /*num_threads=*/8,
              /*grain=*/64);
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, GrainLargerThanCountRunsInline) {
  std::vector<int> order;
  // One block -> no thread spawn -> strictly ascending inline execution,
  // even with a large requested thread count.
  // rp-analyze: allow(parallelfor-shared-mutation)
  ParallelFor(6, [&](int i) { order.push_back(i); }, /*num_threads=*/16,
              /*grain=*/100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelForTest, NestedInvocation) {
  const int outer = 8;
  const int inner = 50;
  std::vector<std::vector<std::atomic<int>>> hits(outer);
  for (auto& row : hits) {
    row = std::vector<std::atomic<int>>(inner);
  }
  ParallelFor(outer, [&](int i) {
    ParallelFor(inner, [&](int j) { hits[i][j].fetch_add(1); },
                /*num_threads=*/2);
  });
  for (int i = 0; i < outer; ++i) {
    for (int j = 0; j < inner; ++j) {
      EXPECT_EQ(hits[i][j].load(), 1) << i << "," << j;
    }
  }
}

TEST(ParallelForTest, ThreadedFanOutCapsNestedDefaultToOne) {
  // The oversubscription policy (see parallel.h): once a loop actually fans
  // out, every worker sees DefaultParallelism() == 1, so a nested helper
  // that asks for "the default" runs inline instead of multiplying threads.
  std::vector<int> seen(4, 0);
  ParallelFor(4, [&](int i) { seen[i] = DefaultParallelism(); },
              /*num_threads=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[i], 1) << "worker " << i;
  }

  // An inline (single-worker) outer loop leaves the default untouched.
  SetDefaultParallelism(3);
  std::vector<int> inline_seen(4, 0);
  ParallelFor(4, [&](int i) { inline_seen[i] = DefaultParallelism(); },
              /*num_threads=*/1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(inline_seen[i], 3) << "iteration " << i;
  }
  SetDefaultParallelism(0);

  // The cap is scoped to the fan-out: the calling thread's default is
  // restored as soon as the loop joins.
  ParallelFor(2, [](int) {}, /*num_threads=*/2);
  EXPECT_GE(DefaultParallelism(), 1);
}

TEST(ParallelForBlockedTest, EdgeCases) {
  int calls = 0;
  // Zero-count call never invokes the body; the next one runs inline.
  // rp-analyze: allow(parallelfor-shared-mutation)
  ParallelForBlocked(0, 16, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::vector<std::pair<int64_t, int64_t>> blocks;
  ParallelForBlocked(
      // rp-analyze: allow(parallelfor-shared-mutation) -- inline, 1 thread
      10, 4, [&](int64_t b, int64_t e) { blocks.push_back({b, e}); },
      /*num_threads=*/1);
  EXPECT_EQ(blocks,
            (std::vector<std::pair<int64_t, int64_t>>{{0, 4}, {4, 8}, {8, 10}}));

  // grain < 1 is clamped to 1.
  std::vector<std::atomic<int>> hits(5);
  ParallelForBlocked(5, 0, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelBlockedSumTest, MatchesSerialBlockOrderForEveryThreadCount) {
  // The invariant the whole spectral hot path rests on: the blocked sum is
  // bit-identical for every thread count because the block decomposition
  // and the reduction order depend only on (count, grain).
  const int64_t n = 100000;
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = std::sin(static_cast<double>(i) * 0.1) * 1e-3 + 1.0 / (i + 1);
  }
  auto block = [&](int64_t b, int64_t e) {
    double acc = 0.0;
    for (int64_t i = b; i < e; ++i) acc += values[i];
    return acc;
  };
  double baseline = ParallelBlockedSum(n, 4096, block, /*num_threads=*/1);
  for (int t : {2, 3, 8, 16}) {
    double sum = ParallelBlockedSum(n, 4096, block, t);
    EXPECT_EQ(sum, baseline) << "threads=" << t;  // exact, not NEAR
  }
}

TEST(ParallelBlockedReduceTest, NonDoubleAccumulator) {
  struct Acc {
    int64_t count = 0;
    int64_t sum = 0;
  };
  const int64_t n = 12345;
  Acc total = ParallelBlockedReduce<Acc>(
      n, 128, Acc{},
      [](int64_t b, int64_t e) {
        Acc a;
        for (int64_t i = b; i < e; ++i) {
          a.count++;
          a.sum += i;
        }
        return a;
      },
      [](Acc a, Acc b) {
        a.count += b.count;
        a.sum += b.sum;
        return a;
      },
      /*num_threads=*/8);
  EXPECT_EQ(total.count, n);
  EXPECT_EQ(total.sum, n * (n - 1) / 2);
}

TEST(ParallelBlockedSumTest, DeterministicReduceStress) {
  // Hammer the deterministic-reduce helpers from many oversubscribed
  // invocations; meant to run under ThreadSanitizer (scripts/check.sh
  // builds a -fsanitize=thread,undefined tree that includes this suite).
  const int64_t n = 20000;
  std::vector<double> values(n);
  for (int64_t i = 0; i < n; ++i) values[i] = 1.0 / (1.0 + i);
  auto block = [&](int64_t b, int64_t e) {
    double acc = 0.0;
    for (int64_t i = b; i < e; ++i) acc += values[i];
    return acc;
  };
  double baseline = ParallelBlockedSum(n, 512, block, 1);
  std::atomic<int> mismatches{0};
  ParallelFor(32, [&](int) {
    for (int t : {2, 4, 8}) {
      if (ParallelBlockedSum(n, 512, block, t) != baseline) {
        mismatches.fetch_add(1);
      }
    }
  }, /*num_threads=*/4);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace roadpart
