#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/parallel.h"

namespace roadpart {
namespace {

TEST(ParallelForTest, CoversEveryIndexOnce) {
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndOneCount) {
  int calls = 0;
  ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(5, [&](int i) { order.push_back(i); }, /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const int n = 5000;
  std::vector<double> parallel_out(n);
  std::vector<double> sequential_out(n);
  auto work = [](int i) { return std::sqrt(static_cast<double>(i) * 13.7); };
  ParallelFor(n, [&](int i) { parallel_out[i] = work(i); });
  for (int i = 0; i < n; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](int i) { hits[i].fetch_add(1); }, /*num_threads=*/64);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, DefaultParallelismPositive) {
  EXPECT_GE(DefaultParallelism(), 1);
}

}  // namespace
}  // namespace roadpart
