#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "metrics/modularity.h"
#include "metrics/pairwise.h"
#include "metrics/partition_metrics.h"
#include "metrics/validity.h"

namespace roadpart {
namespace {

// --- pairwise ---

double BruteIntra(const std::vector<double>& v) {
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = i + 1; j < v.size(); ++j) {
      total += std::fabs(v[i] - v[j]);
      ++count;
    }
  }
  return count ? total / count : 0.0;
}

double BruteCross(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (double x : a) {
    for (double y : b) total += std::fabs(x - y);
  }
  return total / (a.size() * b.size());
}

TEST(PairwiseTest, IntraMatchesBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v;
    int n = 2 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < n; ++i) v.push_back(rng.NextDouble(-5, 5));
    EXPECT_NEAR(AverageAbsPairwiseDifference(v), BruteIntra(v), 1e-10);
  }
}

TEST(PairwiseTest, CrossMatchesBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 1 + static_cast<int>(rng.NextBounded(30)); ++i) {
      a.push_back(rng.NextDouble(-5, 5));
    }
    for (int i = 0; i < 1 + static_cast<int>(rng.NextBounded(30)); ++i) {
      b.push_back(rng.NextDouble(-5, 5));
    }
    EXPECT_NEAR(AverageAbsCrossDifference(a, b), BruteCross(a, b), 1e-10);
  }
}

TEST(PairwiseTest, Degenerate) {
  EXPECT_DOUBLE_EQ(AverageAbsPairwiseDifference({}), 0.0);
  EXPECT_DOUBLE_EQ(AverageAbsPairwiseDifference({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(AverageAbsCrossDifference({}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(AverageAbsCrossDifference({2.0}, {5.0}), 3.0);
}

// --- partition metrics ---

// Path of 6 nodes, densities in two plateaus; partitions {0,1,2} {3,4,5}.
struct Fixture {
  CsrGraph graph;
  std::vector<double> features;
  std::vector<int> assignment;
};

Fixture TwoPlateaus() {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < 6; ++i) edges.push_back({i, i + 1, 1.0});
  Fixture f{CsrGraph::FromEdges(6, edges).value(),
            {1.0, 1.0, 1.0, 5.0, 5.0, 5.0},
            {0, 0, 0, 1, 1, 1}};
  return f;
}

TEST(PartitionMetricsTest, InterOnPlateaus) {
  Fixture f = TwoPlateaus();
  auto inter = InterMetric(f.graph, f.features, f.assignment);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(inter.value(), 4.0, 1e-12);  // |1 - 5| everywhere
}

TEST(PartitionMetricsTest, IntraOnPlateaus) {
  Fixture f = TwoPlateaus();
  auto intra = IntraMetric(f.graph, f.features, f.assignment);
  ASSERT_TRUE(intra.ok());
  EXPECT_NEAR(intra.value(), 0.0, 1e-12);
}

TEST(PartitionMetricsTest, AnsZeroForPerfectSplit) {
  Fixture f = TwoPlateaus();
  auto ans = AverageNcutSilhouette(f.graph, f.features, f.assignment);
  ASSERT_TRUE(ans.ok());
  EXPECT_NEAR(ans.value(), 0.0, 1e-12);  // zero intra, positive inter
}

TEST(PartitionMetricsTest, GdbiZeroForPerfectSplit) {
  Fixture f = TwoPlateaus();
  auto gdbi = GraphDaviesBouldin(f.graph, f.features, f.assignment);
  ASSERT_TRUE(gdbi.ok());
  EXPECT_NEAR(gdbi.value(), 0.0, 1e-12);  // zero scatter
}

TEST(PartitionMetricsTest, BadSplitScoresWorse) {
  Fixture f = TwoPlateaus();
  std::vector<int> bad = {0, 0, 1, 1, 0, 0};  // mixes the plateaus
  // bad has disconnected partition 0, but metrics don't require C.2.
  double good_ans =
      AverageNcutSilhouette(f.graph, f.features, f.assignment).value();
  double bad_ans = AverageNcutSilhouette(f.graph, f.features, bad).value();
  EXPECT_LT(good_ans, bad_ans);
  double good_intra = IntraMetric(f.graph, f.features, f.assignment).value();
  double bad_intra = IntraMetric(f.graph, f.features, bad).value();
  EXPECT_LT(good_intra, bad_intra);
}

TEST(PartitionMetricsTest, EvaluateBundles) {
  Fixture f = TwoPlateaus();
  auto eval = EvaluatePartitions(f.graph, f.features, f.assignment);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->num_partitions, 2);
  EXPECT_NEAR(eval->inter, 4.0, 1e-12);
  EXPECT_NEAR(eval->intra, 0.0, 1e-12);
}

TEST(PartitionMetricsTest, SinglePartitionNoNeighbours) {
  Fixture f = TwoPlateaus();
  std::vector<int> one(6, 0);
  auto eval = EvaluatePartitions(f.graph, f.features, one);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->inter, 0.0);  // no adjacent pairs
  EXPECT_GT(eval->intra, 0.0);
}

TEST(PartitionMetricsTest, Validation) {
  Fixture f = TwoPlateaus();
  EXPECT_FALSE(InterMetric(f.graph, {1.0}, f.assignment).ok());
  EXPECT_FALSE(InterMetric(f.graph, f.features, {0, 0, 0}).ok());
  std::vector<int> negative = {0, 0, 0, -1, 0, 0};
  EXPECT_FALSE(InterMetric(f.graph, f.features, negative).ok());
}

// --- modularity ---

TEST(ModularityTest, TwoCliquesWithBridge) {
  // Two triangles joined by one edge; the natural split has high Q.
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
                             {3, 4, 1}, {4, 5, 1}, {3, 5, 1},
                             {2, 3, 1}};
  CsrGraph g = CsrGraph::FromEdges(6, edges).value();
  double q_good = Modularity(g, {0, 0, 0, 1, 1, 1}).value();
  double q_bad = Modularity(g, {0, 1, 0, 1, 0, 1}).value();
  double q_one = Modularity(g, {0, 0, 0, 0, 0, 0}).value();
  EXPECT_GT(q_good, 0.3);
  EXPECT_LT(q_bad, q_good);
  EXPECT_NEAR(q_one, 0.0, 1e-12);
}

TEST(ModularityTest, HandComputedValue) {
  // Single edge, two nodes, each its own community: Q = 0/1 - 2*(1/2)^2 = -0.5.
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1, 1.0}}).value();
  EXPECT_NEAR(Modularity(g, {0, 1}).value(), -0.5, 1e-12);
  EXPECT_NEAR(Modularity(g, {0, 0}).value(), 0.0, 1e-12);
}

TEST(ModularityTest, Validation) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1, 1.0}}).value();
  EXPECT_FALSE(Modularity(g, {0}).ok());
  EXPECT_FALSE(Modularity(g, {0, -2}).ok());
}

// --- validity ---

TEST(ValidityTest, AcceptsGoodPartition) {
  Fixture f = TwoPlateaus();
  EXPECT_TRUE(CheckPartitionValidity(f.graph, f.assignment).ok());
}

TEST(ValidityTest, RejectsDisconnected) {
  Fixture f = TwoPlateaus();
  std::vector<int> disconnected = {0, 1, 0, 0, 0, 0};  // partition 0 split
  EXPECT_FALSE(CheckPartitionValidity(f.graph, disconnected).ok());
  EXPECT_TRUE(
      CheckPartitionValidity(f.graph, disconnected, false).ok());
}

TEST(ValidityTest, RejectsSparseIds) {
  Fixture f = TwoPlateaus();
  std::vector<int> sparse = {0, 0, 0, 2, 2, 2};  // id 1 unused
  EXPECT_FALSE(CheckPartitionValidity(f.graph, sparse, false).ok());
}

TEST(ValidityTest, RejectsWrongLength) {
  Fixture f = TwoPlateaus();
  EXPECT_FALSE(CheckPartitionValidity(f.graph, {0, 0}).ok());
}

// --- ARI ---

TEST(AriTest, IdenticalIsOne) {
  std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(a, a).value(), 1.0, 1e-12);
}

TEST(AriTest, RenamingIsOne) {
  std::vector<int> a = {0, 0, 1, 1};
  std::vector<int> b = {5, 5, 3, 3};
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 1.0, 1e-12);
}

TEST(AriTest, IndependentNearZero) {
  Rng rng(11);
  std::vector<int> a;
  std::vector<int> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<int>(rng.NextBounded(4)));
    b.push_back(static_cast<int>(rng.NextBounded(4)));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 0.0, 0.03);
}

TEST(AriTest, Validation) {
  EXPECT_FALSE(AdjustedRandIndex({0, 1}, {0}).ok());
}

}  // namespace
}  // namespace roadpart
