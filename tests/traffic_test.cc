#include <gtest/gtest.h>

#include <cmath>

#include "netgen/grid_generator.h"
#include "traffic/congestion_field.h"
#include "traffic/density_mapper.h"
#include "traffic/microsim.h"
#include "traffic/router.h"
#include "traffic/trip_generator.h"

namespace roadpart {
namespace {

RoadNetwork TestGrid(uint64_t seed = 1) {
  GridOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.spacing_metres = 100.0;
  opt.two_way_fraction = 1.0;
  opt.jitter = 0.0;
  opt.seed = seed;
  return GenerateGridNetwork(opt).value();
}

// --- Router ---

TEST(RouterTest, FindsShortestPath) {
  RoadNetwork net = TestGrid();
  Router router(net);
  auto route = router.ShortestPath(0, 63);
  ASSERT_TRUE(route.ok());
  EXPECT_FALSE(route->segment_ids.empty());
  // Manhattan distance on a 8x8 grid of 100m blocks: 14 hops = 1400 m.
  EXPECT_NEAR(route->length_metres, 1400.0, 1e-6);
  // Route is contiguous: each segment starts where the previous ended.
  int at = 0;
  for (int seg_id : route->segment_ids) {
    EXPECT_EQ(net.segment(seg_id).from, at);
    at = net.segment(seg_id).to;
  }
  EXPECT_EQ(at, 63);
}

TEST(RouterTest, TrivialAndInvalid) {
  RoadNetwork net = TestGrid();
  Router router(net);
  auto same = router.ShortestPath(5, 5);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->segment_ids.empty());
  EXPECT_FALSE(router.ShortestPath(-1, 5).ok());
  EXPECT_FALSE(router.ShortestPath(0, 1000).ok());
}

TEST(RouterTest, RespectsOneWayDirections) {
  // Two intersections, a single one-way road 0->1: no route 1->0.
  std::vector<Intersection> pts = {{{0.0, 0.0}}, {{10.0, 0.0}}};
  RoadNetwork net =
      RoadNetwork::Create(pts, {{0, 1, 10.0, 0.0}}).value();
  Router router(net);
  EXPECT_TRUE(router.ShortestPath(0, 1).ok());
  EXPECT_FALSE(router.ShortestPath(1, 0).ok());
}

// --- Trip generator ---

TEST(TripGeneratorTest, GeneratesRequestedVehicles) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions opt;
  opt.num_vehicles = 500;
  opt.seed = 3;
  auto trips = GenerateTrips(net, opt);
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(trips->trips.size(), 500u);
  EXPECT_EQ(trips->hotspots.size(), 3u);
  for (const Trip& t : trips->trips) {
    EXPECT_GE(t.origin, 0);
    EXPECT_LT(t.origin, net.num_intersections());
    EXPECT_NE(t.origin, t.destination);
    EXPECT_GE(t.departure_seconds, 0.0);
    EXPECT_LT(t.departure_seconds, opt.horizon_seconds);
  }
}

TEST(TripGeneratorTest, HotspotBiasConcentratesDestinations) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions biased;
  biased.num_vehicles = 3000;
  biased.num_hotspots = 1;
  biased.hotspot_bias = 1.0;
  biased.hotspot_radius_fraction = 0.08;
  biased.seed = 5;
  auto trips = GenerateTrips(net, biased);
  ASSERT_TRUE(trips.ok());
  // Average distance of destinations to the hotspot must be far below the
  // average over all intersections.
  Point h = trips->hotspots[0];
  double dest_avg = 0.0;
  for (const Trip& t : trips->trips) {
    dest_avg += Distance(net.intersection(t.destination).position, h);
  }
  dest_avg /= trips->trips.size();
  double all_avg = 0.0;
  for (int i = 0; i < net.num_intersections(); ++i) {
    all_avg += Distance(net.intersection(i).position, h);
  }
  all_avg /= net.num_intersections();
  EXPECT_LT(dest_avg, 0.7 * all_avg);
}

TEST(TripGeneratorTest, RejectsBadOptions) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions opt;
  opt.hotspot_bias = 2.0;
  EXPECT_FALSE(GenerateTrips(net, opt).ok());
  opt = {};
  opt.num_vehicles = -1;
  EXPECT_FALSE(GenerateTrips(net, opt).ok());
}

// --- Microsim ---

TEST(MicrosimTest, ConservesAndCompletes) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions demand;
  demand.num_vehicles = 200;
  demand.horizon_seconds = 300.0;
  demand.seed = 7;
  TripSet trips = GenerateTrips(net, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 3000.0;  // enough for all trips to finish
  sim.record_every_seconds = 300.0;
  auto result = RunMicrosim(net, trips.trips, sim);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->completed_trips, 150);  // most trips finish
  ASSERT_FALSE(result->densities.empty());
  for (const auto& snapshot : result->densities) {
    ASSERT_EQ(snapshot.size(), static_cast<size_t>(net.num_segments()));
    for (double d : snapshot) EXPECT_GE(d, 0.0);
  }
  // Final snapshot: nearly everyone arrived, densities ~0.
  double final_total = 0.0;
  for (double d : result->densities.back()) final_total += d;
  double first_total = 0.0;
  for (double d : result->densities.front()) first_total += d;
  EXPECT_LT(final_total, first_total);
}

TEST(MicrosimTest, VehicleCountMatchesDensityIntegral) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions demand;
  demand.num_vehicles = 300;
  demand.horizon_seconds = 10.0;  // everyone departs almost immediately
  demand.seed = 9;
  TripSet trips = GenerateTrips(net, demand).value();

  MicrosimOptions sim;
  sim.total_seconds = 60.0;
  sim.record_every_seconds = 30.0;
  auto result = RunMicrosim(net, trips.trips, sim);
  ASSERT_TRUE(result.ok());
  // Sum over segments of density * length = number of en-route vehicles,
  // which is bounded by the fleet size.
  for (const auto& snapshot : result->densities) {
    double vehicles = 0.0;
    for (int i = 0; i < net.num_segments(); ++i) {
      vehicles += snapshot[i] * net.segment(i).length;
    }
    EXPECT_LE(vehicles, 300.0 + 1e-6);
  }
}

TEST(MicrosimTest, RecordsPositionsWhenAsked) {
  RoadNetwork net = TestGrid();
  TripGeneratorOptions demand;
  demand.num_vehicles = 50;
  demand.horizon_seconds = 5.0;
  TripSet trips = GenerateTrips(net, demand).value();
  MicrosimOptions sim;
  sim.total_seconds = 40.0;
  sim.record_every_seconds = 20.0;
  sim.record_positions = true;
  auto result = RunMicrosim(net, trips.trips, sim);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->positions.size(), result->densities.size());
  BoundingBox box = net.Bounds();
  for (const auto& snapshot : result->positions) {
    for (const Point& p : snapshot) {
      EXPECT_GE(p.x, box.min.x - 1.0);
      EXPECT_LE(p.x, box.max.x + 1.0);
    }
  }
}

TEST(MicrosimTest, RejectsBadOptions) {
  RoadNetwork net = TestGrid();
  MicrosimOptions sim;
  sim.step_seconds = 0.0;
  EXPECT_FALSE(RunMicrosim(net, {}, sim).ok());
  sim = {};
  sim.jam_density_vpm = -1.0;
  EXPECT_FALSE(RunMicrosim(net, {}, sim).ok());
}

// --- DensityMapper ---

TEST(DensityMapperTest, MapsPointsToNearestSegment) {
  RoadNetwork net = TestGrid();
  DensityMapper mapper(net);
  // A point exactly on segment 0's midpoint maps to segment 0 or its twin.
  const RoadSegment& s0 = net.segment(0);
  Point mid = Lerp(net.intersection(s0.from).position,
                   net.intersection(s0.to).position, 0.5);
  int seg = mapper.NearestSegment(mid);
  ASSERT_GE(seg, 0);
  const RoadSegment& found = net.segment(seg);
  // Same geometry: endpoints match in some order.
  bool same_road = (found.from == s0.from && found.to == s0.to) ||
                   (found.from == s0.to && found.to == s0.from);
  EXPECT_TRUE(same_road);
}

TEST(DensityMapperTest, DensitiesCountPerMetre) {
  RoadNetwork net = TestGrid();
  DensityMapper mapper(net);
  const RoadSegment& s0 = net.segment(0);
  Point mid = Lerp(net.intersection(s0.from).position,
                   net.intersection(s0.to).position, 0.5);
  // Ten vehicles on the same spot.
  std::vector<Point> vehicles(10, mid);
  auto densities = mapper.ComputeDensities(vehicles);
  double total = 0.0;
  for (int i = 0; i < net.num_segments(); ++i) {
    total += densities[i] * net.segment(i).length;
  }
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(DensityMapperTest, FarPointStillMaps) {
  RoadNetwork net = TestGrid();
  DensityMapper mapper(net);
  EXPECT_GE(mapper.NearestSegment({-5000.0, -5000.0}), 0);
}

// --- CongestionField ---

TEST(CongestionFieldTest, NonNegativeAndStructured) {
  RoadNetwork net = TestGrid();
  CongestionFieldOptions opt;
  opt.num_hotspots = 2;
  opt.noise_fraction = 0.05;
  opt.seed = 13;
  CongestionField field(net, opt);
  auto d = field.Densities();
  ASSERT_EQ(d.size(), static_cast<size_t>(net.num_segments()));
  double min_d = d[0];
  double max_d = d[0];
  for (double x : d) {
    EXPECT_GE(x, 0.0);
    min_d = std::min(min_d, x);
    max_d = std::max(max_d, x);
  }
  // Hotspots create real contrast.
  EXPECT_GT(max_d, 2.0 * min_d);
}

TEST(CongestionFieldTest, TemporalModulationChangesField) {
  RoadNetwork net = TestGrid();
  CongestionFieldOptions opt;
  opt.seed = 17;
  opt.noise_fraction = 0.0;
  CongestionField field(net, opt);
  auto a = field.DensitiesAt(0.0);
  auto b = field.DensitiesAt(0.5);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(CongestionFieldTest, StaticFieldDeterministic) {
  RoadNetwork net = TestGrid();
  CongestionFieldOptions opt;
  opt.seed = 19;
  CongestionField f1(net, opt);
  CongestionField f2(net, opt);
  EXPECT_EQ(f1.Densities(), f2.Densities());
}

TEST(CongestionFieldTest, DominantHotspotCoversNetwork) {
  RoadNetwork net = TestGrid();
  CongestionFieldOptions opt;
  opt.num_hotspots = 3;
  opt.seed = 23;
  CongestionField field(net, opt);
  auto dom = field.DominantHotspot();
  ASSERT_EQ(dom.size(), static_cast<size_t>(net.num_segments()));
  for (int h : dom) {
    EXPECT_GE(h, -1);
    EXPECT_LT(h, 3);
  }
}

}  // namespace
}  // namespace roadpart
