// Robustness tests: malformed inputs, degenerate networks and extreme
// parameters must produce clean Status errors (or sensible results), never
// crashes.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

// --- Malformed network files ---

TEST(RobustnessTest, TruncatedNetworkFile) {
  std::string path = WriteTemp("trunc.net",
                               "# roadnet v1\nI 3\n0 0\n");  // 1 of 3 nodes
  EXPECT_FALSE(LoadRoadNetwork(path).ok());
  std::remove(path.c_str());
}

TEST(RobustnessTest, GarbageNetworkFile) {
  std::string path = WriteTemp("garbage.net", "this is not a network\n");
  EXPECT_FALSE(LoadRoadNetwork(path).ok());
  std::remove(path.c_str());
}

TEST(RobustnessTest, NetworkWithDanglingSegment) {
  std::string path = WriteTemp("dangling.net",
                               "I 2\n0 0\n1 1\nS 1\n0 5 10.0 0.0\n");
  EXPECT_FALSE(LoadRoadNetwork(path).ok());
  std::remove(path.c_str());
}

TEST(RobustnessTest, EmptyDensityFile) {
  std::string path = WriteTemp("empty.densities", "");
  auto densities = LoadDensities(path);
  ASSERT_TRUE(densities.ok());
  EXPECT_TRUE(densities->empty());
  std::remove(path.c_str());
}

TEST(RobustnessTest, NonNumericDensityFile) {
  std::string path = WriteTemp("bad.densities", "0.1\nnope\n0.2\n");
  EXPECT_FALSE(LoadDensities(path).ok());
  std::remove(path.c_str());
}

// --- Degenerate partitioning inputs ---

RoadGraph TinyGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  std::vector<double> f(n, 0.0);
  for (int i = 0; i < n; ++i) f[i] = 0.1 * i;
  return RoadGraph::FromParts(CsrGraph::FromEdges(n, edges).value(), f)
      .value();
}

TEST(RobustnessTest, UniformDensitiesStillPartition) {
  // All segments identical: any k-way split is as good as any other, but the
  // pipeline must not divide by zero anywhere.
  RoadGraph rg =
      RoadGraph::FromParts(TinyGraph(20).adjacency(),
                           std::vector<double>(20, 0.5))
          .value();
  for (Scheme scheme : {Scheme::kAG, Scheme::kASG, Scheme::kNG}) {
    PartitionerOptions options;
    options.scheme = scheme;
    options.k = 3;
    options.seed = 4;
    auto outcome = Partitioner(options).PartitionRoadGraph(rg);
    ASSERT_TRUE(outcome.ok()) << SchemeName(scheme) << ": "
                              << outcome.status().ToString();
    EXPECT_EQ(outcome->k_final, 3);
  }
}

TEST(RobustnessTest, AllZeroDensities) {
  RoadGraph rg = RoadGraph::FromParts(TinyGraph(12).adjacency(),
                                      std::vector<double>(12, 0.0))
                     .value();
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 2;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->k_final, 2);
}

TEST(RobustnessTest, TwoNodeGraph) {
  RoadGraph rg = TinyGraph(2);
  PartitionerOptions options;
  options.scheme = Scheme::kAG;
  options.k = 2;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->k_final, 2);
  EXPECT_NE(outcome->assignment[0], outcome->assignment[1]);
}

TEST(RobustnessTest, ExtremeDensityMagnitudes) {
  // Huge dynamic range must not break the eigen machinery (scaling guards).
  std::vector<double> f = {1e-9, 2e-9, 1e-9, 0.5, 0.6, 0.5, 900.0, 950.0,
                           920.0, 910.0};
  RoadGraph rg =
      RoadGraph::FromParts(TinyGraph(10).adjacency(), f).value();
  PartitionerOptions options;
  options.scheme = Scheme::kAG;
  options.k = 3;
  options.seed = 6;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(
      CheckPartitionValidity(rg.adjacency(), outcome->assignment).ok());
}

TEST(RobustnessTest, MetricsOnSingletonPartitions) {
  RoadGraph rg = TinyGraph(4);
  std::vector<int> singletons = {0, 1, 2, 3};
  auto eval =
      EvaluatePartitions(rg.adjacency(), rg.features(), singletons);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->intra, 0.0);
  EXPECT_GT(eval->inter, 0.0);
}

TEST(RobustnessTest, SupergraphOnStarTopology) {
  // Star network: the dual is a clique; mining must still work.
  std::vector<Intersection> pts(7);
  pts[0].position = {0, 0};
  for (int i = 1; i < 7; ++i) {
    pts[i].position = {100.0 * i, 50.0};
  }
  std::vector<RoadSegment> segs;
  for (int i = 1; i < 7; ++i) segs.push_back({0, i, 100.0, 0.01 * i});
  RoadNetwork net = RoadNetwork::Create(pts, segs).value();
  RoadGraph rg = RoadGraph::FromNetwork(net);
  auto sg = MineSupergraph(rg, {});
  ASSERT_TRUE(sg.ok());
  EXPECT_GE(sg->num_supernodes(), 1);
}

TEST(RobustnessTest, GeneratorsAtMinimumSizes) {
  GridOptions grid;
  grid.rows = 2;
  grid.cols = 2;
  EXPECT_TRUE(GenerateGridNetwork(grid).ok());
  RadialOptions radial;
  radial.num_rings = 1;
  radial.num_spokes = 3;
  EXPECT_TRUE(GenerateRadialNetwork(radial).ok());
  CityOptions city;
  city.num_intersections = 2;
  city.target_segments = 2;
  city.area_sq_miles = 0.1;
  EXPECT_TRUE(GenerateCityNetwork(city).ok());
}

// --- Density sanitization (numerical resilience layer) ---

// Builds a 12-node chain graph with one poisoned density value and runs the
// NG scheme under `policy`.
Result<PartitionOutcome> PartitionWithPoisonedDensity(double bad_value,
                                                      DensityPolicy policy) {
  RoadGraph chain = TinyGraph(12);
  std::vector<double> f = chain.features();
  f[5] = bad_value;
  RoadGraph rg = RoadGraph::FromParts(chain.adjacency(), f).value();
  PartitionerOptions options;
  options.scheme = Scheme::kNG;
  options.k = 2;
  options.seed = 3;
  options.density_policy = policy;
  return Partitioner(options).PartitionRoadGraph(rg);
}

TEST(RobustnessTest, NaNDensityRejectedByDefaultPolicy) {
  auto outcome = PartitionWithPoisonedDensity(std::nan(""),
                                              DensityPolicy::kReject);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, InfDensityRejectedByDefaultPolicy) {
  auto outcome = PartitionWithPoisonedDensity(
      std::numeric_limits<double>::infinity(), DensityPolicy::kReject);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, NegativeDensityRejectedByDefaultPolicy) {
  auto outcome = PartitionWithPoisonedDensity(-1.0, DensityPolicy::kReject);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, ClampPolicyRepairsAndReportsEveryClass) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(), -3.0}) {
    auto outcome =
        PartitionWithPoisonedDensity(bad, DensityPolicy::kClampAndWarn);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->diagnostics.density_repairs.total_repaired(), 1);
    EXPECT_FALSE(outcome->diagnostics.warnings.empty());
    EXPECT_TRUE(ValidatePartitionLabels(outcome->assignment, 12,
                                        outcome->k_final)
                    .ok());
  }
}

TEST(RobustnessTest, DensityCountMismatch) {
  // Short by three against the expected segment count.
  std::vector<double> short_vec(9, 0.5);
  auto rejected = SanitizeDensities(short_vec, DensityPolicy::kReject, 12);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  DensityRepairReport report;
  auto padded = SanitizeDensities(short_vec, DensityPolicy::kClampAndWarn, 12,
                                  &report);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->size(), 12u);
  EXPECT_EQ(report.padded, 3);

  std::vector<double> long_vec(15, 0.5);
  auto truncated = SanitizeDensities(long_vec, DensityPolicy::kClampAndWarn,
                                     12, &report);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->size(), 12u);
}

// --- Deadlines ---

TEST(RobustnessTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  CityOptions city;
  city.num_intersections = 400;
  city.target_segments = 700;
  city.seed = 9;
  RoadNetwork net = GenerateCityNetwork(city).value();
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 4;
  // Any real module-1 run exceeds a nanosecond budget, so the check after
  // road-graph construction must fire — and hand back no partition at all.
  options.deadline_seconds = 1e-9;
  auto outcome = Partitioner(options).PartitionNetwork(net);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RobustnessTest, GenerousDeadlineSucceedsAndReportsSlack) {
  RoadGraph rg = TinyGraph(20);
  PartitionerOptions options;
  options.scheme = Scheme::kASG;
  options.k = 2;
  options.deadline_seconds = 3600.0;
  auto outcome = Partitioner(options).PartitionRoadGraph(rg);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->diagnostics.slack_module2_seconds, 0.0);
  EXPECT_GT(outcome->diagnostics.slack_module3_seconds, 0.0);
  EXPECT_FALSE(outcome->diagnostics.ToString().empty());
}

TEST(RobustnessTest, MicrosimWithNoTrips) {
  GridOptions grid;
  grid.rows = 3;
  grid.cols = 3;
  RoadNetwork net = GenerateGridNetwork(grid).value();
  MicrosimOptions sim;
  sim.total_seconds = 10.0;
  sim.record_every_seconds = 5.0;
  auto result = RunMicrosim(net, {}, sim);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed_trips, 0);
  for (const auto& snap : result->densities) {
    for (double d : snap) EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

}  // namespace
}  // namespace roadpart
