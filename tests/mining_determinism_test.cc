// Differential tests for the supergraph-mining fast path: MineSupergraph is
// run at every ThreadSweep() count (1, 2, 8) and every output — supernode
// membership, features, superlink topology and weights, and the full mining
// report including the MCG sweep curve — must be bit-identical to the serial
// run. The Phase A kappa sweep and the Phase B per-shortlisted-kappa
// clustering both fan out through ParallelForTasks, so this suite is the
// regression check on that fast path's determinism contract.

#include <gtest/gtest.h>

#include "differential/differential_harness.h"

namespace roadpart {
namespace {

using differential::ExpectMiningThreadInvariant;
using differential::NetworkCase;
using differential::SeededNetworks;

TEST(MiningDeterminism, DefaultOptionsAllNetworks) {
  for (const NetworkCase& net : SeededNetworks()) {
    ExpectMiningThreadInvariant(net, SupergraphMinerOptions{},
                                "mining defaults");
  }
}

TEST(MiningDeterminism, StabilitySplittingEnabled) {
  SupergraphMinerOptions options;
  options.stability.threshold = 0.6;
  for (const NetworkCase& net : SeededNetworks(11)) {
    ExpectMiningThreadInvariant(net, options, "mining with stability split");
  }
}

TEST(MiningDeterminism, MinSupernodesFloor) {
  SupergraphMinerOptions options;
  options.min_supernodes = 8;
  for (const NetworkCase& net : SeededNetworks(13)) {
    ExpectMiningThreadInvariant(net, options, "mining with min_supernodes");
  }
}

TEST(MiningDeterminism, SamplingDisabledFullSweep) {
  // No sampling: Phase A runs on the full feature vector, which both widens
  // the shared workspace and (on the grid/city cases) lifts the effective
  // kappa ceiling to options.max_kappa.
  SupergraphMinerOptions options;
  options.sample_size = 0;
  options.max_kappa = 12;
  for (const NetworkCase& net : SeededNetworks(17)) {
    ExpectMiningThreadInvariant(net, options, "mining without sampling");
  }
}

TEST(MiningDeterminism, AbsoluteThresholdWideShortlist) {
  // A tiny absolute threshold shortlists nearly every kappa, maximising the
  // Phase B fan-out the parallel path must keep deterministic.
  SupergraphMinerOptions options;
  options.mcg_threshold_absolute = 1e-9;
  for (const NetworkCase& net : SeededNetworks(19)) {
    ExpectMiningThreadInvariant(net, options, "mining with wide shortlist");
  }
}

TEST(MiningDeterminism, DegenerateConstantDensities) {
  // Constant densities drive every MCG to zero; the degenerate-sweep fix
  // shortlists a single kappa, and that choice must not depend on threads.
  for (NetworkCase& net : SeededNetworks(23)) {
    std::vector<double> flat(net.network.num_segments(), 3.5);
    ASSERT_TRUE(net.network.SetDensities(flat).ok());
    ExpectMiningThreadInvariant(net, SupergraphMinerOptions{},
                                "mining constant densities");
  }
}

}  // namespace
}  // namespace roadpart
