// Differential determinism suite: the spectral hot path is parallel
// (common/parallel.h kernels), and this suite proves the parallelism is
// invisible — every pipeline stage (miner -> alpha-Cut / normalized-cut ->
// refinement) produces bit-identical partitions at 1, 2 and 8 worker
// threads on all three generator families. See tests/differential/.

#include <gtest/gtest.h>

#include "differential/differential_harness.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"
#include "network/road_graph.h"

namespace roadpart {
namespace {

using differential::ExpectLanczosThreadInvariant;
using differential::ExpectPipelineThreadInvariant;
using differential::NetworkCase;
using differential::SeededNetworks;

PartitionerOptions BaseOptions(Scheme scheme, int k = 4) {
  PartitionerOptions options;
  options.scheme = scheme;
  options.k = k;
  options.seed = 11;
  return options;
}

TEST(ParallelDeterminismTest, AlphaCutRoadGraphAllFamilies) {
  for (const NetworkCase& net : SeededNetworks()) {
    ExpectPipelineThreadInvariant(net, BaseOptions(Scheme::kAG),
                                  "alpha-cut/AG");
  }
}

TEST(ParallelDeterminismTest, NormalizedCutRoadGraphAllFamilies) {
  for (const NetworkCase& net : SeededNetworks()) {
    ExpectPipelineThreadInvariant(net, BaseOptions(Scheme::kNG), "ncut/NG");
  }
}

TEST(ParallelDeterminismTest, SupergraphPipelinesWithRefinement) {
  // Full pipeline: miner -> cut -> boundary refinement -> connectivity.
  for (const NetworkCase& net : SeededNetworks()) {
    for (Scheme scheme : {Scheme::kASG, Scheme::kNSG}) {
      PartitionerOptions options = BaseOptions(scheme);
      options.refine_boundary = true;
      ExpectPipelineThreadInvariant(
          net, options,
          std::string("supergraph+refine/") + SchemeName(scheme));
    }
  }
}

TEST(ParallelDeterminismTest, GreedyMergeReductionPath) {
  // The alternative Section 5.4 reduction must be thread-invariant too.
  for (const NetworkCase& net : SeededNetworks()) {
    PartitionerOptions options = BaseOptions(Scheme::kAG, /*k=*/3);
    options.exact_k_method = ExactKMethod::kGreedyMerge;
    ExpectPipelineThreadInvariant(net, options, "alpha-cut/greedy-merge");
  }
}

TEST(ParallelDeterminismTest, AlphaCutEigenvaluesWithin1e12) {
  // Direct eigensolver differential on the real alpha-Cut operator
  // M = (d d^T)/s - A of the grid network's weighted road graph.
  std::vector<NetworkCase> nets = SeededNetworks();
  ASSERT_FALSE(nets.empty());
  RoadGraph rg = RoadGraph::FromNetwork(nets[0].network);
  CsrGraph weighted = GaussianWeightedGraph(rg.adjacency(), rg.features());
  SparseMatrix a = weighted.ToSparseMatrix();
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double v : d) s += v;
  RankOneUpdatedOperator m_op(a_op, d, s > 0.0 ? 1.0 / s : 0.0, -1.0);

  LanczosOptions options;
  EigenResult serial = ExpectLanczosThreadInvariant(
      m_op, /*k=*/4, SpectrumEnd::kSmallest, options, "alpha-cut operator");
  ASSERT_EQ(serial.eigenvalues.size(), 4u);
  // Ascending order is part of the solver contract.
  for (size_t i = 1; i < serial.eigenvalues.size(); ++i) {
    EXPECT_LE(serial.eigenvalues[i - 1], serial.eigenvalues[i]);
  }
}

TEST(ParallelDeterminismTest, RepeatedRunsAreReproducible) {
  // Same seed + same thread count twice -> identical outcome (guards
  // against hidden global state in the parallel kernels).
  std::vector<NetworkCase> nets = SeededNetworks();
  ASSERT_FALSE(nets.empty());
  PartitionerOptions options = BaseOptions(Scheme::kASG);
  auto first = differential::RunPipeline(nets[0].network, options, 8);
  auto second = differential::RunPipeline(nets[0].network, options, 8);
  differential::ExpectIdenticalFingerprint(first, second, "rerun @8 threads");
}

}  // namespace
}  // namespace roadpart
