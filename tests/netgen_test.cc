#include <gtest/gtest.h>

#include <cmath>

#include "graph/connected_components.h"
#include "netgen/city_generator.h"
#include "netgen/grid_generator.h"
#include "netgen/radial_generator.h"
#include "network/road_graph.h"

namespace roadpart {
namespace {

// Undirected connectivity of the road network's intersections.
bool NetworkConnected(const RoadNetwork& net) {
  std::vector<Edge> edges;
  for (const RoadSegment& s : net.segments()) {
    edges.push_back({s.from, s.to, 1.0});
  }
  auto g = CsrGraph::FromEdges(net.num_intersections(), edges);
  return ConnectedComponents(*g).num_components == 1;
}

TEST(GridGeneratorTest, BasicShape) {
  GridOptions opt;
  opt.rows = 5;
  opt.cols = 7;
  opt.two_way_fraction = 1.0;
  auto net = GenerateGridNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_intersections(), 35);
  // Full grid: 2*5*7 - 5 - 7 = 58 roads, all two-way.
  EXPECT_EQ(net->num_segments(), 116);
  EXPECT_TRUE(NetworkConnected(*net));
}

TEST(GridGeneratorTest, OneWayOnly) {
  GridOptions opt;
  opt.rows = 4;
  opt.cols = 4;
  opt.two_way_fraction = 0.0;
  auto net = GenerateGridNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_segments(), 24);  // one segment per road
}

TEST(GridGeneratorTest, EdgeDroppingKeepsConnected) {
  GridOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.edge_keep_prob = 0.3;
  opt.seed = 77;
  auto net = GenerateGridNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(NetworkConnected(*net));
  EXPECT_LT(net->num_segments(), 2 * (2 * 10 * 10 - 20));
}

TEST(GridGeneratorTest, Deterministic) {
  GridOptions opt;
  opt.seed = 5;
  auto a = GenerateGridNetwork(opt);
  auto b = GenerateGridNetwork(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_segments(), b->num_segments());
  for (int i = 0; i < a->num_segments(); ++i) {
    EXPECT_EQ(a->segment(i).from, b->segment(i).from);
    EXPECT_EQ(a->segment(i).to, b->segment(i).to);
  }
}

TEST(GridGeneratorTest, RejectsBadOptions) {
  GridOptions opt;
  opt.rows = 1;
  EXPECT_FALSE(GenerateGridNetwork(opt).ok());
  opt = {};
  opt.two_way_fraction = 1.5;
  EXPECT_FALSE(GenerateGridNetwork(opt).ok());
  opt = {};
  opt.edge_keep_prob = 0.0;
  EXPECT_FALSE(GenerateGridNetwork(opt).ok());
}

TEST(RadialGeneratorTest, ShapeAndConnectivity) {
  RadialOptions opt;
  opt.num_rings = 3;
  opt.num_spokes = 6;
  opt.two_way_fraction = 1.0;
  auto net = GenerateRadialNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_intersections(), 1 + 3 * 6);
  // Roads: spokes 3*6 stretches + rings 3*6 arcs = 36, all two-way.
  EXPECT_EQ(net->num_segments(), 72);
  EXPECT_TRUE(NetworkConnected(*net));
}

TEST(RadialGeneratorTest, RejectsBadOptions) {
  RadialOptions opt;
  opt.num_spokes = 2;
  EXPECT_FALSE(GenerateRadialNetwork(opt).ok());
}

TEST(CityGeneratorTest, HitsTargets) {
  CityOptions opt;
  opt.num_intersections = 500;
  opt.target_segments = 850;
  opt.area_sq_miles = 2.0;
  opt.seed = 11;
  auto net = GenerateCityNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_intersections(), 500);
  EXPECT_EQ(net->num_segments(), 850);
  EXPECT_TRUE(NetworkConnected(*net));
  EXPECT_NEAR(net->Bounds().AreaSqMiles(), 2.0, 0.2);
}

TEST(CityGeneratorTest, RejectsInfeasible) {
  CityOptions opt;
  opt.num_intersections = 100;
  opt.target_segments = 50;  // cannot connect 100 intersections
  EXPECT_FALSE(GenerateCityNetwork(opt).ok());
  opt = {};
  opt.num_intersections = 1;
  EXPECT_FALSE(GenerateCityNetwork(opt).ok());
  opt = {};
  opt.area_sq_miles = -1.0;
  EXPECT_FALSE(GenerateCityNetwork(opt).ok());
}

TEST(CityGeneratorTest, DualGraphConnected) {
  CityOptions opt;
  opt.num_intersections = 300;
  opt.target_segments = 500;
  opt.seed = 3;
  auto net = GenerateCityNetwork(opt);
  ASSERT_TRUE(net.ok());
  CsrGraph dual = BuildDualAdjacency(*net);
  EXPECT_EQ(ConnectedComponents(dual).num_components, 1);
}

TEST(DatasetPresetTest, SpecsMatchTable1) {
  DatasetSpec d1 = GetDatasetSpec(DatasetPreset::kD1);
  EXPECT_EQ(d1.segments, 420);
  EXPECT_EQ(d1.intersections, 237);
  EXPECT_DOUBLE_EQ(d1.area_sq_miles, 2.5);
  DatasetSpec m1 = GetDatasetSpec(DatasetPreset::kM1);
  EXPECT_EQ(m1.segments, 17206);
  EXPECT_EQ(m1.intersections, 10096);
  EXPECT_EQ(m1.vehicles, 25246);
  DatasetSpec m3 = GetDatasetSpec(DatasetPreset::kM3);
  EXPECT_EQ(m3.segments, 79487);
}

TEST(DatasetPresetTest, D1GeneratesAtPublishedSize) {
  auto net = GenerateDataset(DatasetPreset::kD1, 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_intersections(), 237);
  EXPECT_EQ(net->num_segments(), 420);
  EXPECT_TRUE(NetworkConnected(*net));
}

class CitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CitySweep, AlwaysConnectedAndExact) {
  CityOptions opt;
  opt.num_intersections = 237;
  opt.target_segments = 420;
  opt.area_sq_miles = 2.5;
  opt.seed = GetParam();
  auto net = GenerateCityNetwork(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_segments(), 420);
  EXPECT_TRUE(NetworkConnected(*net));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CitySweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace roadpart
