// Chaos suite for the serving runtime (src/serve/runtime.{h,cc} + the
// serve_loop isolation/admission extensions):
//
//  - per-query fault isolation: one malformed line answers `error` in place
//    under the isolate policy and aborts the whole batch under strict
//    (including the inverted-range-box rule);
//  - admission control: query/byte budgets shed deterministically in input
//    order, and the injected overflow and timeout sites drive the shed
//    paths without wall clocks;
//  - hot snapshot swap: a reload-under-load session answers old-snapshot
//    queries before the swap and new-snapshot queries after it; a corrupt
//    candidate — any single byte flip of the file, or the injected
//    swap-corruption site on a valid file — NEVER becomes current and the
//    old snapshot keeps serving;
//  - exact accounting: `!stats` counters are exact, every non-blank,
//    non-comment script line gets exactly one answer line, and a soak
//    session interleaving queries, reloads, faults and shedding is
//    byte-identical for every thread count and batch size.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Result<RoadNetwork> SmallGridNetwork() {
  GridOptions grid;
  grid.rows = 3;
  grid.cols = 3;
  grid.two_way_fraction = 1.0;
  grid.seed = 9;
  return GenerateGridNetwork(grid);
}

std::vector<int> ShiftedLabels(int num_segments, int k, int shift) {
  std::vector<int> labels(static_cast<size_t>(num_segments));
  for (int s = 0; s < num_segments; ++s) {
    labels[static_cast<size_t>(s)] = (s + shift) % k;
  }
  return labels;
}

// Mirrors serve_loop's answer formatting so tests can state EXACT expected
// session output. Exact-equality against answers computed directly from
// snapshot A or B is the strongest form of "never serves a torn snapshot":
// every answer is provably one whole snapshot's answer.
std::string PointLine(const Snapshot& snap, const Point& q) {
  const PointAnswer a = snap.NearestSegment(q);
  if (a.segment_id < 0) return "point -1 -1 -1\n";
  return StrPrintf("point %d %d %.17g\n", a.segment_id, a.partition_id,
                   a.distance);
}

std::string RangeLine(const Snapshot& snap, const BoundingBox& box) {
  const std::vector<int64_t> counts = snap.CountByPartition(box);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  std::string line = StrPrintf("range %lld", static_cast<long long>(total));
  for (int64_t c : counts) {
    line += StrPrintf(" %lld", static_cast<long long>(c));
  }
  line += '\n';
  return line;
}

int CountLines(const std::string& text) {
  int n = 0;
  for (char c : text) n += c == '\n' ? 1 : 0;
  return n;
}

// Shared fixture state: one network, two snapshots with different labelings
// (so a swap is observable in every partition id), both saved to disk.
struct TwoSnapshots {
  RoadNetwork network;
  std::unique_ptr<Snapshot> a;
  std::unique_ptr<Snapshot> b;
  std::string path_a;
  std::string path_b;
};

TwoSnapshots MakeTwoSnapshots(const std::string& tag) {
  auto net = SmallGridNetwork();
  RP_CHECK(net.ok());
  const int ns = net->num_segments();
  auto snap_a = Snapshot::Build(*net, ShiftedLabels(ns, 3, 0));
  auto snap_b = Snapshot::Build(*net, ShiftedLabels(ns, 3, 1));
  RP_CHECK(snap_a.ok());
  RP_CHECK(snap_b.ok());
  TwoSnapshots two{std::move(net).value(),
                   std::make_unique<Snapshot>(std::move(snap_a).value()),
                   std::make_unique<Snapshot>(std::move(snap_b).value()),
                   TempPath(tag + "_a.rpsnap"), TempPath(tag + "_b.rpsnap")};
  RP_CHECK_OK(two.a->Save(two.path_a));
  RP_CHECK_OK(two.b->Save(two.path_b));
  return two;
}

ServeRuntimeOptions IsolateOptions(int threads = 0) {
  ServeRuntimeOptions options;  // isolate is the runtime default
  options.serve.num_threads = threads;
  return options;
}

// --- Per-query fault isolation ---------------------------------------------

TEST(ServeRuntimeTest, IsolatePolicyAnswersMalformedLinesInPlace) {
  TwoSnapshots two = MakeTwoSnapshots("isolate");
  ServeRuntime runtime(IsolateOptions());
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  const std::string queries =
      "point 50.0 50.0\n"
      "lookup 1 2\n"            // bad verb
      "point 1\n"               // bad arity
      "range 0 0 100\n"         // bad arity
      "point nan 0\n"           // non-finite coordinate
      "point a b\n"             // unparsable coordinate
      "range 100 0 0 100\n"     // inverted box (minx > maxx)
      "point 150.0 120.0\n";
  std::string out;
  ASSERT_TRUE(runtime.ServeBatch(queries, &out).ok());
  EXPECT_EQ(out, PointLine(*two.a, {50.0, 50.0}) +
                     "error 2 bad-verb\n"
                     "error 3 bad-arity\n"
                     "error 4 bad-arity\n"
                     "error 5 bad-coordinate\n"
                     "error 6 bad-coordinate\n"
                     "error 7 inverted-box\n" +
                     PointLine(*two.a, {150.0, 120.0}));
  EXPECT_EQ(runtime.stats().served, 2);
  EXPECT_EQ(runtime.stats().errored, 6);
  EXPECT_EQ(runtime.stats().shed, 0);
}

TEST(ServeRuntimeTest, StrictPolicyStillAbortsTheWholeBatch) {
  TwoSnapshots two = MakeTwoSnapshots("strict");
  ServeRuntimeOptions options;
  options.serve.on_malformed = MalformedQueryPolicy::kStrict;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  std::string out;
  Status st = runtime.ServeBatch("point 1 2\nbogus\n", &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

TEST(ServeRuntimeTest, InvertedRangeBoxesAreRejectedNotSilentlyEmpty) {
  TwoSnapshots two = MakeTwoSnapshots("inverted");

  // Strict: typed InvalidArgument naming the line (previously these were
  // accepted and answered `range 0 ...`).
  ServeOptions strict;
  for (const char* bad : {"range 10 0 0 10\n", "range 0 10 10 0\n"}) {
    std::string out;
    Status st = ServeQueries(*two.a, bad, strict, &out);
    ASSERT_FALSE(st.ok()) << bad;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("line 1"), std::string::npos);
  }

  // Degenerate-but-ordered boxes stay legal: closed bounds make
  // minx == maxx the vertical line x == minx.
  std::string out;
  ASSERT_TRUE(ServeQueries(*two.a, "range 50 0 50 300\n", strict, &out).ok());
  EXPECT_TRUE(out.rfind("range ", 0) == 0) << out;

  // Isolate: an error answer in place, later lines still served.
  ServeOptions isolate;
  isolate.on_malformed = MalformedQueryPolicy::kIsolate;
  out.clear();
  ASSERT_TRUE(
      ServeQueries(*two.a, "range 10 0 0 10\npoint 1 2\n", isolate, &out)
          .ok());
  EXPECT_EQ(out, "error 1 inverted-box\n" + PointLine(*two.a, {1.0, 2.0}));
}

// --- Admission control ------------------------------------------------------

TEST(ServeRuntimeTest, QueryBudgetShedsExcessInInputOrder) {
  TwoSnapshots two = MakeTwoSnapshots("admission");
  ServeRuntimeOptions options = IsolateOptions();
  options.serve.max_inflight_queries = 3;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  std::string queries, expected;
  for (int i = 0; i < 8; ++i) {
    const Point q{10.0 * i, 5.0 * i};
    queries += StrPrintf("point %.17g %.17g\n", q.x, q.y);
    expected += i < 3 ? PointLine(*two.a, q)
                      : StrPrintf("shed %d queue-full\n", i + 1);
  }
  std::string out;
  ASSERT_TRUE(runtime.ServeBatch(queries, &out).ok());
  EXPECT_EQ(out, expected);
  EXPECT_EQ(runtime.stats().served, 3);
  EXPECT_EQ(runtime.stats().shed, 5);
}

TEST(ServeRuntimeTest, ByteBudgetShedsGreedilyInInputOrder) {
  TwoSnapshots two = MakeTwoSnapshots("bytebudget");
  // Each "point 1 2" line is 9 bytes (its newline excluded); a 20-byte
  // budget admits the first two and sheds everything after.
  ServeRuntimeOptions options = IsolateOptions();
  options.serve.max_inflight_bytes = 20;
  ServeRuntime runtime(options);
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  std::string out;
  ASSERT_TRUE(runtime.ServeBatch(
                  "point 1 2\npoint 1 2\npoint 1 2\npoint 1 2\n", &out)
                  .ok());
  const std::string answer = PointLine(*two.a, {1.0, 2.0});
  EXPECT_EQ(out, answer + answer + "shed 3 byte-budget\nshed 4 byte-budget\n");
  EXPECT_EQ(runtime.stats().served, 2);
  EXPECT_EQ(runtime.stats().shed, 2);
}

TEST(ServeRuntimeTest, InjectedOverflowShedsEveryQueryLine) {
  TwoSnapshots two = MakeTwoSnapshots("overflow");
  ServeRuntime runtime(IsolateOptions());
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  FaultInjector injector(7);
  injector.Arm(FaultSite::kServeShedOverflow, 1);
  ScopedFaultInjector scoped(&injector);
  std::string out;
  ASSERT_TRUE(runtime.ServeBatch("point 1 2\nrange 0 0 9 9\n", &out).ok());
  EXPECT_EQ(out, "shed 1 queue-full\nshed 2 queue-full\n");
  EXPECT_EQ(injector.fire_count(FaultSite::kServeShedOverflow), 1);

  // Budget exhausted: the next batch serves normally.
  out.clear();
  ASSERT_TRUE(runtime.ServeBatch("point 1 2\n", &out).ok());
  EXPECT_EQ(out, PointLine(*two.a, {1.0, 2.0}));
}

TEST(ServeRuntimeTest, InjectedTimeoutShedsAdmittedQueries) {
  TwoSnapshots two = MakeTwoSnapshots("timeout");
  {
    ServeRuntime runtime(IsolateOptions());
    ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
    FaultInjector injector(7);
    injector.Arm(FaultSite::kServeQueryTimeout, 1);
    ScopedFaultInjector scoped(&injector);
    std::string out;
    // The malformed line keeps its more specific diagnosis; admitted
    // queries shed with the deadline reason.
    ASSERT_TRUE(
        runtime.ServeBatch("point 1 2\nbogus\nrange 0 0 9 9\n", &out).ok());
    EXPECT_EQ(out, "shed 1 deadline\nerror 2 bad-verb\nshed 3 deadline\n");
    EXPECT_EQ(runtime.stats().shed, 2);
    EXPECT_EQ(runtime.stats().errored, 1);
  }
  {
    // Strict policy: the injected expiry is a typed DeadlineExceeded.
    ServeRuntimeOptions options;
    options.serve.on_malformed = MalformedQueryPolicy::kStrict;
    ServeRuntime runtime(options);
    ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
    FaultInjector injector(7);
    injector.Arm(FaultSite::kServeQueryTimeout, 1);
    ScopedFaultInjector scoped(&injector);
    std::string out;
    Status st = runtime.ServeBatch("point 1 2\n", &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  }
}

// --- Hot snapshot swap ------------------------------------------------------

TEST(ServeRuntimeTest, SessionReloadSwapsBetweenWindows) {
  TwoSnapshots two = MakeTwoSnapshots("swap");
  ServeRuntime runtime(IsolateOptions());
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());

  const Point q{120.0, 80.0};
  // The two labelings differ for every segment, so the swap is observable.
  ASSERT_NE(PointLine(*two.a, q), PointLine(*two.b, q));
  const std::string script = StrPrintf(
      "point %.17g %.17g\n"
      "!reload %s\n"
      "point %.17g %.17g\n"
      "!stats\n",
      q.x, q.y, two.path_b.c_str(), q.x, q.y);
  auto out = runtime.RunSession(script);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  const std::string expected =
      PointLine(*two.a, q) +
      StrPrintf("reload ok version=2 segments=%d\n", two.a->num_segments()) +
      PointLine(*two.b, q) +
      "stats version=2 served=2 errored=0 shed=0 reloads_ok=2 "
      "reloads_failed=0\n";
  EXPECT_EQ(*out, expected);
}

TEST(ServeRuntimeTest, CorruptCandidateKeepsOldSnapshotServing) {
  TwoSnapshots two = MakeTwoSnapshots("corrupt");
  // Corrupt the candidate ON DISK (middle byte flipped; caught by the
  // envelope/structural validation inside Snapshot::Load).
  auto bytes = ReadFileBytes(two.path_b);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[mutated.size() / 2] ^= 0x5A;
  const std::string corrupt_path = TempPath("corrupt_candidate.rpsnap");
  ASSERT_TRUE(AtomicWriteFile(corrupt_path, mutated).ok());
  const std::string missing_path = TempPath("no_such.rpsnap");

  ServeRuntime runtime(IsolateOptions());
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
  const Point q{30.0, 170.0};
  const std::string script = StrPrintf(
      "point %.17g %.17g\n"
      "!reload %s\n"
      "point %.17g %.17g\n"
      "!reload %s\n"
      "point %.17g %.17g\n"
      "!stats\n"
      "!quiesce\n",
      q.x, q.y, corrupt_path.c_str(), q.x, q.y, missing_path.c_str(), q.x,
      q.y);
  auto out = runtime.RunSession(script);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Identical answers before and after both failed reloads: the old
  // snapshot never stopped serving.
  const std::string answer_a = PointLine(*two.a, q);
  const std::string expected =
      answer_a + "reload failed corruption\n" + answer_a +
      "reload failed io-error\n" + answer_a +
      "stats version=1 served=3 errored=0 shed=0 reloads_ok=1 "
      "reloads_failed=2\n" +
      "quiesce ok\n";
  EXPECT_EQ(*out, expected);

  const SnapshotManagerDiagnostics diag =
      runtime.snapshot_manager().diagnostics();
  EXPECT_EQ(diag.version, 1);
  EXPECT_EQ(diag.reloads_failed, 2);
  EXPECT_FALSE(diag.last_error.empty());
  std::remove(corrupt_path.c_str());
}

TEST(ServeRuntimeTest, EveryByteFlipOfCandidateNeverEscapesAsASwap) {
  TwoSnapshots two = MakeTwoSnapshots("flipswap");
  SnapshotManager manager;
  ASSERT_TRUE(manager.Reload(two.path_a).ok());
  const std::shared_ptr<const Snapshot> before = manager.Current();
  auto original = ReadFileBytes(two.path_b);
  ASSERT_TRUE(original.ok());
  const std::string flip_path = TempPath("flip_candidate.rpsnap");

  int64_t failures = 0;
  for (size_t offset = 0; offset < original->size(); ++offset) {
    std::string mutated = *original;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5A);
    ASSERT_TRUE(AtomicWriteFile(flip_path, mutated).ok());
    Status st = manager.Reload(flip_path);
    ASSERT_FALSE(st.ok()) << "byte flip at offset " << offset << " swapped";
    ASSERT_EQ(st.code(), StatusCode::kCorruption)
        << "offset " << offset << ": " << st.ToString();
    ++failures;
    // The serving snapshot is untouched: same object, same version.
    ASSERT_EQ(manager.Current().get(), before.get());
  }
  const SnapshotManagerDiagnostics diag = manager.diagnostics();
  EXPECT_EQ(diag.version, 1);
  EXPECT_EQ(diag.reloads_ok, 1);
  EXPECT_EQ(diag.reloads_failed, failures);

  // The pristine candidate still swaps cleanly afterwards.
  ASSERT_TRUE(AtomicWriteFile(flip_path, *original).ok());
  ASSERT_TRUE(manager.Reload(flip_path).ok());
  EXPECT_EQ(manager.diagnostics().version, 2);
  std::remove(flip_path.c_str());
}

TEST(ServeRuntimeTest, InjectedSwapCorruptionRefusesAValidCandidate) {
  TwoSnapshots two = MakeTwoSnapshots("swapfault");
  SnapshotManager manager;
  ASSERT_TRUE(manager.Reload(two.path_a).ok());
  const std::shared_ptr<const Snapshot> before = manager.Current();

  // Armed AFTER the initial load: the site fires on the next Reload.
  FaultInjector injector(11);
  injector.Arm(FaultSite::kSnapshotSwapCorruption, 1);
  ScopedFaultInjector scoped(&injector);
  Status st = manager.Reload(two.path_b);  // valid file, injected corruption
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("swap"), std::string::npos) << st.ToString();
  EXPECT_EQ(manager.Current().get(), before.get());
  EXPECT_EQ(injector.fire_count(FaultSite::kSnapshotSwapCorruption), 1);

  // Fault budget spent: the same candidate now swaps.
  ASSERT_TRUE(manager.Reload(two.path_b).ok());
  EXPECT_EQ(manager.diagnostics().version, 2);
  EXPECT_EQ(manager.diagnostics().reloads_failed, 1);
}

// --- Session protocol edges -------------------------------------------------

TEST(ServeRuntimeTest, MalformedControlLinesFollowThePolicy) {
  TwoSnapshots two = MakeTwoSnapshots("control");
  {
    ServeRuntime runtime(IsolateOptions());
    ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
    auto out = runtime.RunSession("!bogus\n!reload\n!stats extra\npoint 1 2\n");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out,
              "error 1 bad-control\nerror 2 bad-control\n"
              "error 3 bad-control\n" +
                  PointLine(*two.a, {1.0, 2.0}));
    EXPECT_EQ(runtime.stats().errored, 3);
  }
  {
    ServeRuntimeOptions options;
    options.serve.on_malformed = MalformedQueryPolicy::kStrict;
    ServeRuntime runtime(options);
    ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
    auto out = runtime.RunSession("point 1 2\n!bogus\n");
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(out.status().message().find("line 2"), std::string::npos);
  }
}

TEST(ServeRuntimeTest, QueriesWithoutASnapshotAreFailedPrecondition) {
  ServeRuntime runtime(IsolateOptions());
  std::string out;
  Status st = runtime.ServeBatch("point 1 2\n", &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // Comments and blank lines alone need no snapshot.
  EXPECT_TRUE(runtime.ServeBatch("# nothing\n\n", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ServeRuntimeTest, ErrorLinesUseScriptGlobalNumbersAcrossWindows) {
  TwoSnapshots two = MakeTwoSnapshots("linenums");
  ServeRuntime runtime(IsolateOptions());
  ASSERT_TRUE(runtime.LoadSnapshot(two.path_a).ok());
  // The bad line is line 5 of the SCRIPT but line 2 of its flush window;
  // the answer must name 5.
  auto out = runtime.RunSession(
      "point 1 2\n"    // 1
      "!quiesce\n"     // 2
      "# comment\n"    // 3
      "point 3 4\n"    // 4
      "wat\n"          // 5
      "!quiesce\n");   // 6
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, PointLine(*two.a, {1.0, 2.0}) + "quiesce ok\n" +
                      PointLine(*two.a, {3.0, 4.0}) +
                      "error 5 bad-verb\nquiesce ok\n");
}

// --- Soak: interleaved queries, reloads, faults and shedding ----------------

// One deterministic soak scenario, built as {script, expected} side by side:
// six windows of queries separated by control barriers. The first `!reload`
// is refused by the injected swap-corruption site (old snapshot keeps
// serving), the second swaps A -> B, and window 4 carries more queries than
// the admission budget so its tail sheds. The expected answers are computed
// directly from snapshots A and B, so exact-output equality proves no
// answer ever came from a torn or stale snapshot and no line was dropped or
// reordered.
struct SoakCase {
  std::string script;
  std::string expected;
  int64_t served = 0;
  int64_t errored = 0;
  int64_t shed = 0;
};

constexpr int64_t kSoakQueryBudget = 6;  // per-window admission budget

SoakCase BuildSoakCase(const TwoSnapshots& two) {
  SoakCase soak;
  const Snapshot* live = two.a.get();
  int64_t version = 1, reloads_ok = 1, reloads_failed = 0;

  // Appends one query window: 4 points + 1 range + `extra_points` more
  // points + 1 malformed line. With the budget at kSoakQueryBudget, a
  // window with extra_points == 0 serves its 5 queries and errors the bad
  // line; extra_points == 4 admits one extra, sheds the remaining three,
  // and the bad line — arriving after the budget filled — sheds before it
  // is ever parsed.
  auto add_query_window = [&](int window, int extra_points) {
    int64_t admitted = 0;
    auto add_point = [&](const Point& q) {
      soak.script += StrPrintf("point %.17g %.17g\n", q.x, q.y);
      if (admitted < kSoakQueryBudget) {
        ++admitted;
        soak.expected += PointLine(*live, q);
        ++soak.served;
      } else {
        soak.expected +=
            StrPrintf("shed %d queue-full\n", CountLines(soak.script));
        ++soak.shed;
      }
    };
    for (int i = 0; i < 4; ++i) {
      add_point({37.0 * window + 11.0 * i, 23.0 * window + 7.0 * i});
    }
    const BoundingBox box{{10.0 * window, 0.0},
                          {10.0 * window + 120.0, 250.0}};
    soak.script += StrPrintf("range %.17g %.17g %.17g %.17g\n", box.min.x,
                             box.min.y, box.max.x, box.max.y);
    ++admitted;
    soak.expected += RangeLine(*live, box);
    ++soak.served;
    for (int i = 0; i < extra_points; ++i) {
      add_point({5.0 * window + 3.0 * i, 200.0 - 9.0 * i});
    }
    soak.script += "point oops\n";
    if (admitted < kSoakQueryBudget) {
      soak.expected +=
          StrPrintf("error %d bad-arity\n", CountLines(soak.script));
      ++soak.errored;
    } else {
      soak.expected +=
          StrPrintf("shed %d queue-full\n", CountLines(soak.script));
      ++soak.shed;
    }
  };
  auto add_stats = [&] {
    soak.script += "!stats\n";
    soak.expected += StrPrintf(
        "stats version=%lld served=%lld errored=%lld shed=%lld "
        "reloads_ok=%lld reloads_failed=%lld\n",
        static_cast<long long>(version), static_cast<long long>(soak.served),
        static_cast<long long>(soak.errored),
        static_cast<long long>(soak.shed),
        static_cast<long long>(reloads_ok),
        static_cast<long long>(reloads_failed));
  };

  for (int window = 0; window < 6; ++window) {
    add_query_window(window, window == 4 ? 4 : 0);
    switch (window) {
      case 0:
        // Injected swap corruption refuses the (valid) candidate.
        soak.script += StrPrintf("!reload %s\n", two.path_b.c_str());
        soak.expected += "reload failed corruption\n";
        ++reloads_failed;
        break;
      case 1:
        soak.script += StrPrintf("!reload %s\n", two.path_b.c_str());
        ++version;
        ++reloads_ok;
        soak.expected += StrPrintf("reload ok version=%lld segments=%d\n",
                                   static_cast<long long>(version),
                                   two.b->num_segments());
        live = two.b.get();
        break;
      case 2:
        add_stats();
        break;
      case 3:
      case 4:
        soak.script += "!quiesce\n";
        soak.expected += "quiesce ok\n";
        break;
      default:
        break;
    }
  }
  add_stats();
  return soak;
}

TEST(ServeRuntimeSoakTest, InterleavedFaultsNeverTearDropOrReorder) {
  TwoSnapshots two = MakeTwoSnapshots("soak");
  const SoakCase soak = BuildSoakCase(two);

  auto run = [&](int threads, int batch_size) {
    ServeRuntimeOptions options = IsolateOptions(threads);
    options.serve.batch_size = batch_size;
    options.serve.max_inflight_queries = kSoakQueryBudget;
    ServeRuntime runtime(options);
    RP_CHECK_OK(runtime.LoadSnapshot(two.path_a));
    // Armed after the initial load: the site fires on the script's FIRST
    // `!reload` and is spent by the second. Serial code queries it, so the
    // budget is claimed deterministically.
    FaultInjector injector(42);
    injector.Arm(FaultSite::kSnapshotSwapCorruption, 1);
    ScopedFaultInjector scoped(&injector);
    auto out = runtime.RunSession(soak.script);
    RP_CHECK(out.ok());
    return std::pair<std::string, ServeRuntimeStats>(*out, runtime.stats());
  };

  const auto [reference, ref_stats] = run(1, 4096);
  EXPECT_EQ(reference, soak.expected);
  EXPECT_EQ(ref_stats.served, soak.served);
  EXPECT_EQ(ref_stats.errored, soak.errored);
  EXPECT_EQ(ref_stats.shed, soak.shed);

  // Byte-identical for every thread count and batch size, stats exact.
  for (int threads : {2, 5, 8}) {
    for (int batch_size : {1, 3, 4096}) {
      const auto [out, stats] = run(threads, batch_size);
      EXPECT_EQ(out, reference)
          << "threads=" << threads << " batch=" << batch_size;
      EXPECT_EQ(stats.served, ref_stats.served);
      EXPECT_EQ(stats.errored, ref_stats.errored);
      EXPECT_EQ(stats.shed, ref_stats.shed);
    }
  }

  // No dropped answers: every non-blank, non-comment script line produced
  // exactly one answer line.
  int script_payload_lines = 0;
  for (const std::string& line : Split(soak.script, '\n')) {
    std::string_view t = Trim(line);
    if (!t.empty() && t[0] != '#') ++script_payload_lines;
  }
  EXPECT_EQ(CountLines(reference), script_payload_lines);
}

}  // namespace
}  // namespace roadpart
