#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/kmeans1d.h"
#include "cluster/kmeans1d_dp.h"
#include "common/rng.h"

namespace roadpart {
namespace {

// Brute-force optimal WCSS over all contiguous splits of the sorted data
// (an optimal 1-D clustering is always contiguous).
double BruteOptimalWcss(std::vector<double> values, int k) {
  std::sort(values.begin(), values.end());
  const int n = static_cast<int>(values.size());
  auto sse = [&](int lo, int hi) {  // inclusive
    double mean = 0.0;
    for (int i = lo; i <= hi; ++i) mean += values[i];
    mean /= (hi - lo + 1);
    double acc = 0.0;
    for (int i = lo; i <= hi; ++i) {
      acc += (values[i] - mean) * (values[i] - mean);
    }
    return acc;
  };
  // dp over O(n^2 k) — fine for tiny n.
  std::vector<std::vector<double>> dp(
      k + 1, std::vector<double>(n + 1, 1e300));
  dp[0][0] = 0.0;
  for (int c = 1; c <= k; ++c) {
    for (int i = 1; i <= n; ++i) {
      for (int m = c - 1; m < i; ++m) {
        dp[c][i] = std::min(dp[c][i], dp[c - 1][m] + sse(m, i - 1));
      }
    }
  }
  return dp[k][n];
}

TEST(KMeans1DOptimalTest, SimpleClusters) {
  std::vector<double> values = {0.0, 0.1, 5.0, 5.1, 9.9, 10.0};
  auto r = KMeans1DOptimal(values, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->wcss, 3 * 0.005, 1e-9);
  EXPECT_EQ(r->assignment[0], r->assignment[1]);
  EXPECT_EQ(r->assignment[2], r->assignment[3]);
  EXPECT_EQ(r->assignment[4], r->assignment[5]);
}

TEST(KMeans1DOptimalTest, MatchesBruteForce) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + static_cast<int>(rng.NextBounded(12));
    int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n)));
    std::vector<double> values;
    for (int i = 0; i < n; ++i) values.push_back(rng.NextDouble(-3, 3));
    auto r = KMeans1DOptimal(values, k);
    ASSERT_TRUE(r.ok());
    double brute = BruteOptimalWcss(values, k);
    EXPECT_NEAR(r->wcss, brute, 1e-9)
        << "n=" << n << " k=" << k << " trial=" << trial;
  }
}

TEST(KMeans1DOptimalTest, NeverWorseThanLloyd) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> values;
    for (int i = 0; i < 200; ++i) values.push_back(rng.NextGaussian(0, 2));
    for (int k : {2, 3, 5, 8}) {
      auto lloyd = KMeans1D(values, k);
      auto optimal = KMeans1DOptimal(values, k);
      ASSERT_TRUE(lloyd.ok() && optimal.ok());
      EXPECT_LE(optimal->wcss, lloyd->wcss + 1e-9) << "k=" << k;
    }
  }
}

TEST(KMeans1DOptimalTest, LloydWithPaperInitIsNearOptimal) {
  // On plateau-like road densities (the intended workload) the paper's
  // deterministic initialization should land at (or very near) the global
  // optimum — this is the justification for using Lloyd in the hot path.
  Rng rng(13);
  std::vector<double> values;
  for (double center : {0.05, 0.25, 0.60}) {
    for (int i = 0; i < 60; ++i) {
      values.push_back(center + rng.NextGaussian() * 0.01);
    }
  }
  auto lloyd = KMeans1D(values, 3).value();
  auto optimal = KMeans1DOptimal(values, 3).value();
  EXPECT_NEAR(lloyd.wcss, optimal.wcss, 1e-9);
}

TEST(KMeans1DOptimalTest, PropertyCrossCheckLloydVsDp) {
  // Property test over seeded random inputs, including duplicate-heavy
  // ones: for every (values, k)
  //   - DP WCSS <= Lloyd WCSS (DP is the exact optimum),
  //   - Lloyd clusters are contiguous in sorted order,
  //   - Lloyd means are strictly related to cluster ids (sorted ascending),
  //   - every Lloyd cluster id in [0, means.size()) is non-empty.
  Rng rng(29);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 10 + static_cast<int>(rng.NextBounded(120));
    const bool duplicate_heavy = trial % 3 == 0;
    std::vector<double> values;
    for (int i = 0; i < n; ++i) {
      double v = rng.NextDouble(0, 8);
      if (duplicate_heavy) v = std::floor(v);  // collapse onto 8 values
      values.push_back(v);
    }
    for (int k : {2, 3, 5, 7}) {
      if (k > n) continue;
      auto lloyd = KMeans1D(values, k);
      ASSERT_TRUE(lloyd.ok()) << "trial=" << trial << " k=" << k;
      const int eff_k = static_cast<int>(lloyd->means.size());
      ASSERT_LE(eff_k, k);

      auto optimal = KMeans1DOptimal(values, eff_k);
      ASSERT_TRUE(optimal.ok()) << "trial=" << trial << " k=" << k;
      EXPECT_LE(optimal->wcss, lloyd->wcss + 1e-9)
          << "trial=" << trial << " k=" << k;

      EXPECT_TRUE(std::is_sorted(lloyd->means.begin(), lloyd->means.end()))
          << "trial=" << trial << " k=" << k;

      std::vector<int> counts(eff_k, 0);
      for (int a : lloyd->assignment) {
        ASSERT_GE(a, 0);
        ASSERT_LT(a, eff_k);
        counts[a]++;
      }
      for (int c : counts) {
        EXPECT_GT(c, 0) << "empty cluster, trial=" << trial << " k=" << k;
      }

      // Contiguity: sort (value, cluster) pairs; ids must be non-decreasing.
      std::vector<std::pair<double, int>> pairs;
      for (size_t i = 0; i < values.size(); ++i) {
        pairs.emplace_back(values[i], lloyd->assignment[i]);
      }
      std::sort(pairs.begin(), pairs.end());
      for (size_t i = 1; i < pairs.size(); ++i) {
        EXPECT_LE(pairs[i - 1].second, pairs[i].second)
            << "non-contiguous cluster, trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(KMeans1DOptimalTest, InvalidArgs) {
  EXPECT_FALSE(KMeans1DOptimal({1.0}, 0).ok());
  EXPECT_FALSE(KMeans1DOptimal({1.0}, 2).ok());
}

TEST(KMeans1DOptimalTest, KEqualsNIsZero) {
  std::vector<double> values = {4.0, 1.0, 3.0};
  auto r = KMeans1DOptimal(values, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->wcss, 0.0, 1e-12);
}

TEST(KMeans1DOptimalTest, DuplicatesHandled) {
  std::vector<double> values(50, 2.0);
  auto r = KMeans1DOptimal(values, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->wcss, 0.0, 1e-12);
}

class DpSweep : public ::testing::TestWithParam<int> {};

TEST_P(DpSweep, AssignmentConsistentWithBoundaries) {
  Rng rng(100 + GetParam());
  std::vector<double> values;
  for (int i = 0; i < 150; ++i) values.push_back(rng.NextDouble(0, 1));
  auto r = KMeans1DOptimal(values, GetParam());
  ASSERT_TRUE(r.ok());
  // Clusters are contiguous in sorted order: lower value => lower-or-equal
  // cluster id under the sorted means.
  std::vector<std::pair<double, int>> pairs;
  for (size_t i = 0; i < values.size(); ++i) {
    pairs.emplace_back(values[i], r->assignment[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].second, pairs[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, DpSweep, ::testing::Values(2, 3, 4, 6, 10, 20));

}  // namespace
}  // namespace roadpart
