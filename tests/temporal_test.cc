#include <gtest/gtest.h>

#include <cmath>

#include "netgen/grid_generator.h"
#include "network/road_graph.h"
#include "temporal/evolution_analyzer.h"
#include "temporal/snapshot_series.h"
#include "traffic/congestion_field.h"

namespace roadpart {
namespace {

// --- SnapshotSeries ---

TEST(SnapshotSeriesTest, AppendValidates) {
  SnapshotSeries series(3);
  EXPECT_TRUE(series.Append(0.0, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(series.Append(1.0, {1.0, 2.0}).ok());        // wrong size
  EXPECT_FALSE(series.Append(0.0, {1.0, 2.0, 3.0}).ok());   // non-increasing
  EXPECT_FALSE(series.Append(2.0, {1.0, -2.0, 3.0}).ok());  // negative
  EXPECT_EQ(series.num_snapshots(), 1);
}

TEST(SnapshotSeriesTest, MeanDensity) {
  SnapshotSeries series(4);
  ASSERT_TRUE(series.Append(0.0, {1.0, 2.0, 3.0, 4.0}).ok());
  EXPECT_DOUBLE_EQ(series.MeanDensity(0), 2.5);
}

TEST(SnapshotSeriesTest, SegmentStatistics) {
  SnapshotSeries series(2);
  ASSERT_TRUE(series.Append(0.0, {1.0, 10.0}).ok());
  ASSERT_TRUE(series.Append(1.0, {3.0, 10.0}).ok());
  auto means = series.SegmentMeans();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  auto stds = series.SegmentStdDevs();
  EXPECT_DOUBLE_EQ(stds[0], 1.0);  // values 1, 3 around mean 2
  EXPECT_DOUBLE_EQ(stds[1], 0.0);
}

TEST(SnapshotSeriesTest, ChangeDetection) {
  SnapshotSeries series(2);
  ASSERT_TRUE(series.Append(0.0, {1.0, 1.0}).ok());
  ASSERT_TRUE(series.Append(1.0, {1.0, 1.0}).ok());
  ASSERT_TRUE(series.Append(2.0, {5.0, 1.0}).ok());
  EXPECT_DOUBLE_EQ(series.ChangeFrom(0), 0.0);
  EXPECT_DOUBLE_EQ(series.ChangeFrom(1), 0.0);
  EXPECT_DOUBLE_EQ(series.ChangeFrom(2), 2.0);  // (|5-1| + 0) / 2
}

TEST(SnapshotSeriesTest, PeakSnapshot) {
  SnapshotSeries series(1);
  ASSERT_TRUE(series.Append(0.0, {0.1}).ok());
  ASSERT_TRUE(series.Append(1.0, {0.9}).ok());
  ASSERT_TRUE(series.Append(2.0, {0.5}).ok());
  EXPECT_EQ(series.PeakSnapshot(), 1);
}

// --- AnalyzeEvolution ---

class EvolutionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    GridOptions grid;
    grid.rows = 8;
    grid.cols = 8;
    grid.seed = 5;
    network_ = GenerateGridNetwork(grid).value();
    graph_ = RoadGraph::FromNetwork(network_);
  }

  RoadNetwork network_;
  RoadGraph graph_;
};

TEST_F(EvolutionFixture, StableFieldLowChurn) {
  CongestionFieldOptions field_opt;
  field_opt.num_hotspots = 3;
  field_opt.voronoi_tiling = true;
  field_opt.noise_fraction = 0.02;
  field_opt.seed = 9;
  CongestionField field(network_, field_opt);

  SnapshotSeries series(network_.num_segments());
  // Slowly varying phases -> the same spatial structure every snapshot.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(series.Append(t * 120.0, field.DensitiesAt(0.3 + 0.005 * t))
                    .ok());
  }

  EvolutionOptions options;
  options.partitioner.scheme = Scheme::kASG;
  options.partitioner.k = 3;
  options.partitioner.seed = 3;
  auto result = AnalyzeEvolution(graph_, series, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 5u);
  EXPECT_LT(result->mean_churn, 0.35);
  for (const auto& step : result->steps) {
    EXPECT_EQ(step.k_final, 3);
    EXPECT_EQ(step.assignment.size(),
              static_cast<size_t>(network_.num_segments()));
  }
}

TEST_F(EvolutionFixture, RegimeChangeDetected) {
  CongestionFieldOptions before_opt;
  before_opt.num_hotspots = 2;
  before_opt.voronoi_tiling = true;
  before_opt.noise_fraction = 0.02;
  before_opt.seed = 11;
  CongestionField before(network_, before_opt);
  CongestionFieldOptions after_opt = before_opt;
  after_opt.seed = 77;  // completely different hotspot geometry
  CongestionField after(network_, after_opt);

  SnapshotSeries series(network_.num_segments());
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(series.Append(t * 120.0, before.Densities()).ok());
  }
  for (int t = 4; t < 8; ++t) {
    ASSERT_TRUE(series.Append(t * 120.0, after.Densities()).ok());
  }

  EvolutionOptions options;
  options.partitioner.scheme = Scheme::kASG;
  options.partitioner.k = 2;
  options.partitioner.seed = 3;
  options.regime_threshold = 0.2;
  auto result = AnalyzeEvolution(graph_, series, options);
  ASSERT_TRUE(result.ok());
  // The flip at t = 4 must register as a regime change.
  bool found = false;
  for (int t : result->regime_changes) found |= (t == 4);
  EXPECT_TRUE(found) << "regime changes: " << result->regime_changes.size();
}

TEST_F(EvolutionFixture, Validation) {
  SnapshotSeries wrong(graph_.num_nodes() + 1);
  EvolutionOptions options;
  EXPECT_FALSE(AnalyzeEvolution(graph_, wrong, options).ok());
  SnapshotSeries empty(graph_.num_nodes());
  EXPECT_FALSE(AnalyzeEvolution(graph_, empty, options).ok());
}

}  // namespace
}  // namespace roadpart
