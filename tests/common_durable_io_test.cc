// Unit suite for the crash-safe artifact I/O layer (common/durable_io.h):
// atomic-writer lifecycle, injected write faults, the deterministic retry
// schedule, and the checksummed envelope — including an exhaustive proof
// that flipping ANY single byte of a saved artifact is detected as
// Status::Corruption on load, never returned as plausible data.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "roadpart/roadpart.h"

namespace roadpart {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::string Slurp(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  return bytes.ok() ? *bytes : std::string();
}

// --- Checksums and bit-exact round trips ---

TEST(Fnv1a64Test, AnySingleByteSubstitutionChangesDigest) {
  const std::string data = "0 1 2.5\n1 0 3.25\n";
  const uint64_t baseline = Fnv1a64(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int delta = 1; delta < 256; delta += 85) {  // 3 substitutions/byte
      std::string mutated = data;
      mutated[i] = static_cast<char>(mutated[i] ^ delta);
      EXPECT_NE(Fnv1a64(mutated), baseline)
          << "offset " << i << " xor " << delta;
    }
  }
}

TEST(Fnv1a64Test, ChainsViaBasis) {
  const std::string data = "hello world";
  uint64_t whole = Fnv1a64(data);
  uint64_t chained = Fnv1a64(data.substr(6), Fnv1a64(data.substr(0, 6)));
  EXPECT_EQ(whole, chained);
}

TEST(BitsHexTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.0,   -0.0, 1.0 / 3.0, 1e-308, -1e308,
                           2.5e7, 1.0,  6.02214076e23};
  for (double v : values) {
    std::string hex = DoubleToBitsHex(v);
    ASSERT_EQ(hex.size(), 16u);
    auto back = DoubleFromBitsHex(hex);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::memcmp(&v, &*back, sizeof(double)), 0) << hex;
  }
  // -0.0 and 0.0 are distinct bit patterns and must stay distinct.
  EXPECT_NE(DoubleToBitsHex(0.0), DoubleToBitsHex(-0.0));
}

TEST(BitsHexTest, Uint64RoundTripAndErrors) {
  for (uint64_t v : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    auto back = Uint64FromHex(Uint64ToHex(v));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(Uint64FromHex("").ok());
  EXPECT_FALSE(Uint64FromHex("xyz").ok());
  EXPECT_FALSE(Uint64FromHex("0123456789abcdef0").ok());  // 17 digits
  // Lowercase only: a case-flipped checksum digit must read as corrupt,
  // not as the same value.
  EXPECT_FALSE(Uint64FromHex("DEADBEEF").ok());
}

// --- AtomicFileWriter lifecycle ---

TEST(AtomicFileWriterTest, CommitPublishesAndCleansTemp) {
  std::string path = TempPath("durable_commit.txt");
  std::remove(path.c_str());
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append("alpha\n").ok());
  ASSERT_TRUE(writer.Append("beta\n").ok());
  EXPECT_FALSE(FileExists(path));  // nothing published before Commit
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(Slurp(path), "alpha\nbeta\n");
  EXPECT_FALSE(FileExists(writer.temp_path()));
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, AbortLeavesOldFileUntouched) {
  std::string path = TempPath("durable_abort.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "old contents\n").ok());
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("new contents that must not land\n").ok());
    ASSERT_TRUE(writer.Abort().ok());
    EXPECT_FALSE(FileExists(writer.temp_path()));
  }
  EXPECT_EQ(Slurp(path), "old contents\n");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, DestructorAbortsUncommittedWriter) {
  std::string path = TempPath("durable_dtor.txt");
  std::remove(path.c_str());
  std::string temp;
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("doomed\n").ok());
    temp = writer.temp_path();
  }
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(temp));
}

TEST(AtomicFileWriterTest, AppendBeforeOpenIsAnError) {
  AtomicFileWriter writer(TempPath("durable_noopen.txt"));
  Status st = writer.Append("x");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// --- Injected durability faults ---

TEST(DurableFaultTest, ShortWriteFailsCleanlyAndPreservesTarget) {
  std::string path = TempPath("durable_short.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "survivor\n").ok());
  FaultInjector injector(11);
  ScopedFaultInjector scoped(&injector);
  injector.Arm(FaultSite::kDurableShortWrite, 1);
  Status st = AtomicWriteFile(path, "this write dies halfway\n");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(injector.fire_count(FaultSite::kDurableShortWrite), 1);
  EXPECT_EQ(Slurp(path), "survivor\n");  // old file intact, no torn bytes
  std::remove(path.c_str());
}

TEST(DurableFaultTest, FsyncFailureSurfacesAsIOError) {
  std::string path = TempPath("durable_fsync.txt");
  std::remove(path.c_str());
  FaultInjector injector(11);
  ScopedFaultInjector scoped(&injector);
  injector.Arm(FaultSite::kDurableFsyncFailure, 1);
  Status st = AtomicWriteFile(path, "never durable\n");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_FALSE(FileExists(path));
}

TEST(DurableFaultTest, RenameFailureSurfacesAsIOError) {
  std::string path = TempPath("durable_rename.txt");
  std::remove(path.c_str());
  FaultInjector injector(11);
  ScopedFaultInjector scoped(&injector);
  injector.Arm(FaultSite::kDurableRenameFailure, 1);
  Status st = AtomicWriteFile(path, "never published\n");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_FALSE(FileExists(path));
}

TEST(DurableFaultTest, TransientWriteFaultIsRetriedToSuccess) {
  std::string path = TempPath("durable_retry_write.txt");
  std::remove(path.c_str());
  FaultInjector injector(11);
  ScopedFaultInjector scoped(&injector);
  injector.Arm(FaultSite::kDurableShortWrite, 2);  // first two attempts fail
  RetryOptions retry;
  retry.max_attempts = 3;
  std::vector<double> slept;
  retry.sleep = [&](double s) { slept.push_back(s); };
  ASSERT_TRUE(AtomicWriteFile(path, "third time lucky\n", retry).ok());
  EXPECT_EQ(Slurp(path), "third time lucky\n");
  EXPECT_EQ(slept.size(), 2u);  // one backoff per failed attempt
  std::remove(path.c_str());
}

TEST(DurableFaultTest, ChecksumCorruptionIsCaughtOnRead) {
  std::string path = TempPath("durable_cksum.art");
  FaultInjector injector(11);
  ScopedFaultInjector scoped(&injector);
  injector.Arm(FaultSite::kDurableChecksumCorruption, 1);
  ASSERT_TRUE(WriteArtifact(path, "demo", 1, "payload line\n").ok());
  auto loaded = ReadArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// --- Deterministic retry schedule ---

TEST(RetryBackoffTest, EqualSeedsGiveEqualSchedules) {
  RetryOptions options;
  options.base_delay_seconds = 0.01;
  options.multiplier = 2.0;
  options.jitter_fraction = 0.25;
  options.seed = 99;
  RetryBackoff a(options);
  RetryBackoff b(options);
  double expected_base = options.base_delay_seconds;
  for (int i = 0; i < 6; ++i) {
    double da = a.NextDelaySeconds();
    double db = b.NextDelaySeconds();
    EXPECT_EQ(da, db);  // bit-identical, not merely close
    // Jitter stays inside the documented band around base * multiplier^i.
    EXPECT_GE(da, expected_base * 0.75 * (1 - 1e-12));
    EXPECT_LE(da, expected_base * 1.25 * (1 + 1e-12));
    expected_base *= options.multiplier;
  }
  options.seed = 100;
  RetryBackoff c(options);
  options.seed = 99;
  RetryBackoff reference(options);
  bool any_different = false;
  for (int i = 0; i < 6; ++i) {
    if (c.NextDelaySeconds() != reference.NextDelaySeconds()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);  // different seed, different jitter stream
}

TEST(RetryTransientIOTest, OnlyIOErrorIsRetried) {
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.sleep = [](double) {};
  int calls = 0;
  Status st = RetryTransientIO(retry, [&]() {
    ++calls;
    return Status::InvalidArgument("not transient");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);

  calls = 0;
  st = RetryTransientIO(retry, [&]() {
    ++calls;
    return Status::Corruption("sticky by definition");
  });
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);

  calls = 0;
  st = RetryTransientIO(retry, [&]() -> Status {
    ++calls;
    if (calls < 3) return Status::IOError("flaky");
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTransientIOTest, ExhaustedBudgetReturnsLastError) {
  RetryOptions retry;
  retry.max_attempts = 3;
  std::vector<double> slept;
  retry.sleep = [&](double s) { slept.push_back(s); };
  int calls = 0;
  Status st = RetryTransientIO(retry, [&]() {
    ++calls;
    return Status::IOError("always down");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);  // no sleep after the final failure
}

// --- Checksummed envelope ---

TEST(ArtifactTest, RoundTripPreservesPayloadAndIdentity) {
  std::string path = TempPath("artifact_roundtrip.art");
  const std::string payload = "row 1\nrow 2\nrow 3\n";
  ASSERT_TRUE(WriteArtifact(path, "demo", 3, payload).ok());
  ArtifactInfo info;
  ArtifactReadOptions options;
  options.expected_format = "demo";
  auto loaded = ReadArtifact(path, options, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, payload);
  EXPECT_EQ(info.format, "demo");
  EXPECT_EQ(info.version, 3);
  EXPECT_TRUE(info.enveloped);
  std::remove(path.c_str());
}

TEST(ArtifactTest, MissingTrailingNewlineIsAdded) {
  std::string path = TempPath("artifact_newline.art");
  ASSERT_TRUE(WriteArtifact(path, "demo", 1, "no newline").ok());
  auto loaded = ReadArtifact(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "no newline\n");
  std::remove(path.c_str());
}

TEST(ArtifactTest, FormatMustBeSingleWord) {
  EXPECT_EQ(WriteArtifact(TempPath("x"), "two words", 1, "p\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteArtifact(TempPath("x"), "", 1, "p\n").code(),
            StatusCode::kInvalidArgument);
}

TEST(ArtifactTest, ForeignFilePassthroughUnlessEnvelopeRequired) {
  std::string path = TempPath("artifact_foreign.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "# hand-authored fixture\n1 2 3\n").ok());
  ArtifactInfo info;
  auto loaded = ReadArtifact(path, {}, &info);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "# hand-authored fixture\n1 2 3\n");
  EXPECT_FALSE(info.enveloped);

  ArtifactReadOptions strict;
  strict.require_envelope = true;
  auto rejected = ReadArtifact(path, strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ArtifactTest, WrongFormatIsAUsageErrorNotCorruption) {
  std::string path = TempPath("artifact_wrongfmt.art");
  ASSERT_TRUE(WriteArtifact(path, "demo", 1, "p\n").ok());
  ArtifactReadOptions options;
  options.expected_format = "other";
  auto loaded = ReadArtifact(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ArtifactTest, MissingFileIsIOError) {
  auto loaded = ReadArtifact(TempPath("artifact_never_written.art"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// The tentpole guarantee: EVERY single-byte flip of a saved artifact —
// header, payload, footer, markers, newlines — must surface as Corruption.
// The envelope is marked at both ends precisely so one flipped byte cannot
// hide both markers at once.
TEST(ArtifactTest, EverysingleByteFlipIsDetectedAsCorruption) {
  std::string path = TempPath("artifact_flip.art");
  ASSERT_TRUE(
      WriteArtifact(path, "demo", 1, "0 1 0.5\n1 2 0.25\nfinal-row\n").ok());
  auto original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok());
  std::string mutated_path = TempPath("artifact_flip_mutated.art");
  for (size_t offset = 0; offset < original->size(); ++offset) {
    for (unsigned char mask : {0x01, 0x20, 0x80}) {
      std::string mutated = *original;
      mutated[offset] = static_cast<char>(mutated[offset] ^ mask);
      ASSERT_TRUE(AtomicWriteFile(mutated_path, mutated).ok());
      auto loaded = ReadArtifact(mutated_path);
      ASSERT_FALSE(loaded.ok())
          << "flip at offset " << offset << " mask " << int(mask)
          << " was not detected";
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "flip at offset " << offset << " mask " << int(mask) << ": "
          << loaded.status().ToString();
    }
  }
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

// Every truncation that removes artifact bytes must be caught. (Removing
// only the final newline leaves the checksummed content fully intact and is
// legitimately accepted, so the loop stops one byte short of that.)
TEST(ArtifactTest, TruncationIsDetectedAsCorruption) {
  std::string path = TempPath("artifact_trunc.art");
  ASSERT_TRUE(WriteArtifact(path, "demo", 1, "0 1 0.5\n1 2 0.25\n").ok());
  auto original = ReadFileBytes(path);
  ASSERT_TRUE(original.ok());
  std::string truncated_path = TempPath("artifact_trunc_cut.art");
  ArtifactReadOptions strict;
  strict.require_envelope = true;  // the checkpoint-loader configuration
  for (size_t keep = 0; keep + 1 < original->size(); ++keep) {
    ASSERT_TRUE(
        AtomicWriteFile(truncated_path, original->substr(0, keep)).ok());
    auto loaded = ReadArtifact(truncated_path, strict);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "truncation to " << keep
        << " bytes: " << loaded.status().ToString();
  }
  std::remove(path.c_str());
  std::remove(truncated_path.c_str());
}

}  // namespace
}  // namespace roadpart
