#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace roadpart {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIOError,
        StatusCode::kNotConverged}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  RP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

// --- Rng ---

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedRespectsZeros) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextWeighted(w), 1u);
}

TEST(RngTest, WeightedRoughProportions) {
  Rng rng(29);
  std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) count1 += (rng.NextWeighted(w) == 1);
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ForkIndependent) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --- string_util ---

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmpty) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e-3 ").value(), -1e-3);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ParseIntValid) {
  EXPECT_EQ(ParseInt("-42").value(), -42);
  EXPECT_EQ(ParseInt(" 7 ").value(), 7);
}

TEST(StringUtilTest, ParseIntInvalid) {
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("x").ok());
}

TEST(StringUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 5, "ok"), "5-ok");
  EXPECT_EQ(StrPrintf("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("roadpart", "road"));
  EXPECT_FALSE(StartsWith("road", "roadpart"));
}

// --- Timer ---

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  double a = t.Seconds();
  double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(PhaseTimerTest, AccumulatesPhases) {
  PhaseTimer pt;
  pt.StartPhase("one");
  pt.StartPhase("two");
  pt.Stop();
  EXPECT_GE(pt.PhaseSeconds("one"), 0.0);
  EXPECT_GE(pt.PhaseSeconds("two"), 0.0);
  EXPECT_EQ(pt.PhaseSeconds("absent"), 0.0);
  EXPECT_GE(pt.TotalSeconds(),
            pt.PhaseSeconds("one") + pt.PhaseSeconds("two") - 1e-9);
  auto names = pt.PhaseNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "one");
  EXPECT_EQ(names[1], "two");
}

TEST(PhaseTimerTest, ReenteringPhaseAccumulates) {
  PhaseTimer pt;
  pt.StartPhase("a");
  pt.Stop();
  double first = pt.PhaseSeconds("a");
  pt.StartPhase("a");
  pt.Stop();
  EXPECT_GE(pt.PhaseSeconds("a"), first);
  EXPECT_EQ(pt.PhaseNames().size(), 1u);
}

}  // namespace
}  // namespace roadpart
