#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/stability.h"
#include "graph/connected_components.h"
#include "graph/csr_graph.h"

namespace roadpart {
namespace {

CsrGraph Path(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return CsrGraph::FromEdges(n, edges).value();
}

// --- SupernodeStability (Definition 9) ---

TEST(StabilityMeasureTest, UniformIsOne) {
  EXPECT_DOUBLE_EQ(SupernodeStability({0.5, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(SupernodeStability({0.0, 0.0}), 1.0);
}

TEST(StabilityMeasureTest, SingletonIsOne) {
  EXPECT_DOUBLE_EQ(SupernodeStability({3.7}), 1.0);
}

TEST(StabilityMeasureTest, InUnitInterval) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> f;
    int n = 1 + static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < n; ++i) f.push_back(rng.NextDouble(0.0, 10.0));
    double eta = SupernodeStability(f);
    EXPECT_GE(eta, 0.0);
    EXPECT_LE(eta, 1.0);
  }
}

TEST(StabilityMeasureTest, SpreadLowersStability) {
  double tight = SupernodeStability({1.0, 1.01, 0.99});
  double loose = SupernodeStability({0.1, 1.0, 5.0});
  EXPECT_GT(tight, loose);
  EXPECT_LT(tight, 1.0);
}

TEST(StabilityMeasureTest, HandComputed) {
  // Features {0, 2}: mean 1. eta = 0.5*(exp(-|1/2 - 1|) + exp(-|3/2 - 1|))
  //                             = exp(-0.5).
  EXPECT_NEAR(SupernodeStability({0.0, 2.0}), std::exp(-0.5), 1e-12);
}

// --- StabilitySplit (Algorithm 2) ---

TEST(StabilitySplitTest, ThresholdZeroIsNoOp) {
  CsrGraph g = Path(4);
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3}};
  StabilityOptions opt;
  opt.threshold = 0.0;
  auto out = StabilitySplit(sns, {0.0, 1.0, 2.0, 3.0}, g, opt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 4u);
}

TEST(StabilitySplitTest, AllResultsMeetThreshold) {
  CsrGraph g = Path(10);
  std::vector<double> f = {0.1, 0.2, 0.9, 1.5, 2.0, 2.1, 5.0, 5.1, 9.0, 9.5};
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  StabilityOptions opt;
  opt.threshold = 0.95;
  auto out = StabilitySplit(sns, f, g, opt);
  for (const auto& sn : out) {
    std::vector<double> feats;
    for (int v : sn) feats.push_back(f[v]);
    // Singletons always pass; larger groups must meet the threshold.
    if (sn.size() > 1) {
      EXPECT_GE(SupernodeStability(feats), opt.threshold);
    }
  }
}

TEST(StabilitySplitTest, PreservesNodeSet) {
  CsrGraph g = Path(8);
  std::vector<double> f = {0.0, 3.0, 0.1, 2.9, 0.2, 3.1, 0.3, 2.8};
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  StabilityOptions opt;
  opt.threshold = 0.99;
  auto out = StabilitySplit(sns, f, g, opt);
  std::set<int> nodes;
  for (const auto& sn : out) {
    EXPECT_FALSE(sn.empty());
    for (int v : sn) EXPECT_TRUE(nodes.insert(v).second);
  }
  EXPECT_EQ(nodes.size(), 8u);
}

TEST(StabilitySplitTest, StableSupernodeUntouched) {
  CsrGraph g = Path(3);
  std::vector<std::vector<int>> sns = {{0, 1, 2}};
  StabilityOptions opt;
  opt.threshold = 0.9;
  auto out = StabilitySplit(sns, {1.0, 1.0, 1.0}, g, opt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 3u);
}

TEST(StabilitySplitTest, ComponentSplittingKeepsConnectivity) {
  // Features alternate so a pure feature split would interleave nodes of the
  // path; with split_into_components on, every output is connected.
  CsrGraph g = Path(8);
  std::vector<double> f = {0.0, 9.0, 0.1, 9.1, 0.2, 9.2, 0.3, 9.3};
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3, 4, 5, 6, 7}};
  StabilityOptions opt;
  opt.threshold = 0.99;
  opt.split_into_components = true;
  auto out = StabilitySplit(sns, f, g, opt);
  for (const auto& sn : out) {
    EXPECT_TRUE(IsSubsetConnected(g, sn));
  }
}

TEST(StabilitySplitTest, LiteralModeMayDisconnect) {
  CsrGraph g = Path(8);
  std::vector<double> f = {0.0, 9.0, 0.1, 9.1, 0.2, 9.2, 0.3, 9.3};
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3, 4, 5, 6, 7}};
  StabilityOptions opt;
  opt.threshold = 0.99;
  opt.split_into_components = false;
  auto out = StabilitySplit(sns, f, g, opt);
  // The literal Algorithm 2 splits by feature only; on this alternating
  // path at least one resulting supernode is disconnected — the caveat the
  // split_into_components option fixes.
  bool any_disconnected = false;
  for (const auto& sn : out) {
    if (!IsSubsetConnected(g, sn)) any_disconnected = true;
  }
  EXPECT_TRUE(any_disconnected);
}

TEST(StabilitySplitTest, ExtremeThresholdTerminates) {
  // threshold = 1.0: splitting continues until uniform-feature groups (here:
  // singletons), exercising the worst case O(2 n_r - n_sigma) bound.
  CsrGraph g = Path(16);
  std::vector<double> f;
  for (int i = 0; i < 16; ++i) f.push_back(i * 0.37);
  std::vector<std::vector<int>> sns = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}};
  StabilityOptions opt;
  opt.threshold = 1.0;
  auto out = StabilitySplit(sns, f, g, opt);
  EXPECT_EQ(out.size(), 16u);
}

TEST(StabilitySplitTest, EqualFeaturesStayTogetherAtThresholdOne) {
  CsrGraph g = Path(6);
  std::vector<double> f = {2.0, 2.0, 2.0, 7.0, 7.0, 7.0};
  std::vector<std::vector<int>> sns = {{0, 1, 2, 3, 4, 5}};
  StabilityOptions opt;
  opt.threshold = 1.0;
  auto out = StabilitySplit(sns, f, g, opt);
  // Splits once into the 2.0-run and the 7.0-run, both perfectly stable.
  ASSERT_EQ(out.size(), 2u);
  std::vector<size_t> sizes = {out[0].size(), out[1].size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 3u);
}

class StabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(StabilitySweep, MonotoneInThreshold) {
  // More supernodes with a stricter threshold.
  Rng rng(77);
  const int n = 60;
  CsrGraph g = Path(n);
  std::vector<double> f;
  for (int i = 0; i < n; ++i) f.push_back(rng.NextDouble(0, 1));
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  StabilityOptions lo;
  lo.threshold = GetParam();
  StabilityOptions hi;
  hi.threshold = std::min(1.0, GetParam() + 0.2);
  auto out_lo = StabilitySplit({all}, f, g, lo);
  auto out_hi = StabilitySplit({all}, f, g, hi);
  EXPECT_LE(out_lo.size(), out_hi.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, StabilitySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8));

}  // namespace
}  // namespace roadpart
