#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

// Rows per task when assembling Ritz vectors x = V s. Each row is a serial
// inner product over the Krylov basis, so results are thread-count
// invariant. The reorthogonalization passes parallelize through the blocked
// Dot/Axpy kernels of dense_matrix.cc with the same guarantee.
constexpr int64_t kRitzRowGrain = 256;

// One Lanczos run with full reorthogonalization and Krylov dimension up to
// `m_max`. Returns the Krylov basis (rows of `basis`), and the tridiagonal
// coefficients. Stops early on happy breakdown (invariant subspace), in which
// case the subspace is exact.
struct KrylovFactorization {
  std::vector<std::vector<double>> basis;  // v_1 .. v_m, each length n
  std::vector<double> alpha;               // m diagonal entries
  std::vector<double> beta;                // m-1 couplings (+ trailing beta_m)
  double trailing_beta = 0.0;              // beta_m for residual estimates
  bool exhausted_space = false;            // happy breakdown hit
};

// True when `warm` can legally seed a Krylov build for an order-n operator:
// right dimension, fully finite, non-negligible norm. Anything else must be
// ignored (cold random start), never trusted.
bool UsableWarmStart(const std::vector<double>* warm, int n) {
  if (warm == nullptr || static_cast<int>(warm->size()) != n) return false;
  for (double x : *warm) {
    if (!std::isfinite(x)) return false;
  }
  return Norm2(*warm) > 1e-300;
}

KrylovFactorization BuildKrylov(const LinearOperator& op, int m_max, Rng& rng,
                                const std::vector<double>* warm_start) {
  const int n = op.Dim();
  KrylovFactorization kf;

  std::vector<double> v(n);
  if (warm_start != nullptr) {
    v = *warm_start;  // validated by the caller via UsableWarmStart
  } else {
    for (double& x : v) x = rng.NextDouble() - 0.5;
  }
  double nv = Norm2(v);
  RP_CHECK(nv > 0.0);
  Scale(1.0 / nv, v);

  std::vector<double> w(n, 0.0);
  double beta_prev = 0.0;

  for (int j = 0; j < m_max; ++j) {
    kf.basis.push_back(v);
    op.Apply(v.data(), w.data());
    if (j > 0) Axpy(-beta_prev, kf.basis[j - 1], w);
    double alpha = Dot(w, v);
    // A NaN here (operator bug, non-finite matrix entry) would quietly turn
    // the whole Krylov basis — and the final embedding — into garbage.
    RP_DCHECK(std::isfinite(alpha));
    Axpy(-alpha, v, w);
    kf.alpha.push_back(alpha);

    // Full reorthogonalization, run twice for numerical safety.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& u : kf.basis) {
        double proj = Dot(w, u);
        if (proj != 0.0) Axpy(-proj, u, w);
      }
    }

    double beta = Norm2(w);
    RP_DCHECK(std::isfinite(beta));
    kf.trailing_beta = beta;
    if (j + 1 == m_max) break;

    if (beta < 1e-13 * (std::fabs(alpha) + 1.0)) {
      // Invariant subspace found. Try to continue with a fresh random
      // direction orthogonal to the basis; if the whole space is spanned,
      // stop.
      if (static_cast<int>(kf.basis.size()) >= n) {
        kf.exhausted_space = true;
        kf.trailing_beta = 0.0;
        break;
      }
      bool found = false;
      for (int attempt = 0; attempt < 5 && !found; ++attempt) {
        for (double& x : w) x = rng.NextDouble() - 0.5;
        for (int pass = 0; pass < 2; ++pass) {
          for (const auto& u : kf.basis) {
            double proj = Dot(w, u);
            if (proj != 0.0) Axpy(-proj, u, w);
          }
        }
        double nw = Norm2(w);
        if (nw > 1e-10) {
          Scale(1.0 / nw, w);
          found = true;
        }
      }
      if (!found) {
        kf.exhausted_space = true;
        kf.trailing_beta = 0.0;
        break;
      }
      kf.beta.push_back(0.0);  // decoupled block
      v = w;
      beta_prev = 0.0;
      continue;
    }

    kf.beta.push_back(beta);
    beta_prev = beta;
    Scale(1.0 / beta, w);
    v = w;
  }
  return kf;
}

}  // namespace

Result<EigenResult> LanczosEigen(const LinearOperator& op, int k,
                                 SpectrumEnd end,
                                 const LanczosOptions& options) {
  const int n = op.Dim();
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds operator order %d", k, n));
  }

  Rng rng(options.seed);
  int m_target = std::min(n, std::max({3 * k + 20, 60}));

  // Armed by tests to simulate an operator whose spectrum defeats the
  // iteration: the best Ritz estimates are still assembled, but the call
  // refuses to declare convergence, exercising the caller's fallback ladder.
  // One query per LanczosEigen call keeps arming counts predictable.
  const bool forced_nonconvergence =
      RP_FAULT_FIRES(FaultSite::kLanczosNonConvergence);

  EigenResult best;
  best.converged = false;
  best.max_residual = HUGE_VAL;
  int restarts_used = 0;

  // Warm start applies to the first build only; every restart reseeds from
  // the rng so a misleading warm vector costs at most one restart.
  const std::vector<double>* warm =
      UsableWarmStart(options.warm_start, n) ? options.warm_start : nullptr;

  for (int restart = 0; restart <= options.max_restarts; ++restart) {
    restarts_used = restart;
    const int m_max = std::min({m_target, options.max_subspace, n});
    KrylovFactorization kf =
        BuildKrylov(op, m_max, rng, restart == 0 ? warm : nullptr);
    const int m = static_cast<int>(kf.alpha.size());
    if (m < k) {
      return Status::Internal("Krylov subspace smaller than k");
    }

    std::vector<double> sub(kf.beta.begin(), kf.beta.begin() + (m - 1));
    RP_ASSIGN_OR_RETURN(EigenResult tri,
                        TridiagonalEigenDecompose(kf.alpha, sub));

    // Select the k Ritz pairs at the requested end (tri is ascending).
    std::vector<int> sel(k);
    for (int i = 0; i < k; ++i) {
      sel[i] = (end == SpectrumEnd::kSmallest) ? i : m - k + i;
    }

    double spectral_scale = std::max(std::fabs(tri.eigenvalues.front()),
                                     std::fabs(tri.eigenvalues.back()));
    if (spectral_scale == 0.0) spectral_scale = 1.0;

    double worst = 0.0;
    for (int i : sel) {
      double res = std::fabs(kf.trailing_beta * tri.eigenvectors(m - 1, i));
      worst = std::max(worst, res);
    }
    bool converged =
        !forced_nonconvergence &&
        (kf.exhausted_space || m == n ||
         worst <= options.tolerance * spectral_scale);

    if (worst < best.max_residual || converged) {
      EigenResult out;
      out.eigenvalues.resize(k);
      out.eigenvectors = DenseMatrix(n, k);
      for (int c = 0; c < k; ++c) {
        int i = sel[c];
        out.eigenvalues[c] = tri.eigenvalues[i];
        // Ritz vector x = V * s_i, row-blocked (each row is an independent
        // serial inner product over the basis).
        ParallelForBlocked(n, kRitzRowGrain, [&](int64_t begin, int64_t end) {
          for (int64_t r = begin; r < end; ++r) {
            double acc = 0.0;
            for (int j = 0; j < m; ++j) {
              acc += kf.basis[j][r] * tri.eigenvectors(j, i);
            }
            out.eigenvectors(static_cast<int>(r), c) = acc;
          }
        });
        // Normalize (full reorthogonalization keeps this near 1 already).
        // Deterministic blocked reduction: partials combined in block order.
        double norm = std::sqrt(ParallelBlockedSum(
            n, kRitzRowGrain, [&](int64_t begin, int64_t end) {
              double acc = 0.0;
              for (int64_t r = begin; r < end; ++r) {
                double v = out.eigenvectors(static_cast<int>(r), c);
                acc += v * v;
              }
              return acc;
            }));
        RP_DCHECK(std::isfinite(norm));
        if (norm > 0.0) {
          ParallelForBlocked(n, kRitzRowGrain,
                             [&](int64_t begin, int64_t end) {
                               for (int64_t r = begin; r < end; ++r) {
                                 out.eigenvectors(static_cast<int>(r), c) /=
                                     norm;
                               }
                             });
        }
      }
      out.converged = converged;
      out.max_residual = worst;
      best = std::move(out);
    }

    if (best.converged) break;
    if (m_max >= std::min(n, options.max_subspace)) break;
    m_target = std::min({2 * m_target, options.max_subspace, n});
  }

  best.restarts_used = restarts_used;
  if (!best.converged) {
    RP_LOG(Warning) << "Lanczos did not fully converge; max residual "
                    << best.max_residual;
  }
  return best;
}

}  // namespace roadpart
