#ifndef ROADPART_LINALG_DENSE_MATRIX_H_
#define ROADPART_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace roadpart {

/// Row-major dense matrix of doubles. Deliberately minimal: the library only
/// needs construction, element access, matvec and a few reductions; all heavy
/// numerics live in the eigensolvers.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(int rows, int cols, double fill = 0.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) { return data_[Index(r, c)]; }
  double operator()(int r, int c) const { return data_[Index(r, c)]; }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  double* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// y = this * x. `x` must have cols() entries, `y` rows() entries.
  void Multiply(const double* x, double* y) const;

  /// Returns the transpose.
  DenseMatrix Transposed() const;

  /// Max |a_ij - a_ji| (0 for exactly symmetric matrices).
  double SymmetryError() const;

  /// Identity matrix of order n.
  static DenseMatrix Identity(int n);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * cols_ + c;
  }

  int rows_;
  int cols_;
  std::vector<double> data_;
};

// --- Free vector helpers (dense double vectors) ---

/// Dot product; vectors must be the same length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>& x);

/// Sum of entries.
double Sum(const std::vector<double>& a);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& a);

/// Population variance around the mean (0 for empty input).
double Variance(const std::vector<double>& a);

}  // namespace roadpart

#endif  // ROADPART_LINALG_DENSE_MATRIX_H_
