#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

double Hypot2(double a, double b) { return std::hypot(a, b); }

// Householder reduction of symmetric `z` (n x n) to tridiagonal form with
// accumulation of the orthogonal transform in `z`. On return `d` holds the
// diagonal and `e[1..n-1]` the sub-diagonal (e[0] = 0). Classic EISPACK
// tred2 translated to 0-based indexing.
void Tred2(DenseMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const int n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (int i = n - 1; i >= 1; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (int k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;

  // Accumulate transformations.
  for (int i = 0; i < n; ++i) {
    const int l = i - 1;
    if (d[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (int k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on a tridiagonal matrix, updating the
// eigenvector matrix `z` (n x n, starts as the accumulated Householder
// transform or identity). Classic EISPACK tql2 / NR tqli.
Status Tql2(std::vector<double>& d, std::vector<double>& e, DenseMatrix& z) {
  const int n = static_cast<int>(d.size());
  if (n == 0) return Status::OK();
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == 128) {
          return Status::NotConverged(
              StrPrintf("QL iteration failed at eigenvalue %d", l));
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (int i = m - 1; i >= l; --i) {
          double f = s * e[i];
          double b = c * e[i];
          r = Hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

// Sorts eigenpairs ascending by eigenvalue.
void SortAscending(std::vector<double>& d, DenseMatrix& z) {
  const int n = static_cast<int>(d.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return d[a] < d[b]; });

  std::vector<double> d_sorted(n);
  DenseMatrix z_sorted(z.rows(), n);
  for (int j = 0; j < n; ++j) {
    d_sorted[j] = d[order[j]];
    for (int i = 0; i < z.rows(); ++i) z_sorted(i, j) = z(i, order[j]);
  }
  d = std::move(d_sorted);
  z = std::move(z_sorted);
}

}  // namespace

Result<EigenResult> SymmetricEigenDecompose(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("matrix must be square");
  }
  const int n = a.rows();
  if (n == 0) {
    return EigenResult{{}, DenseMatrix(0, 0), true, 0.0};
  }

  // Work on the symmetric part; reject badly asymmetric or non-finite
  // input.
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!std::isfinite(a(i, j))) {
        return Status::InvalidArgument("matrix has non-finite entries");
      }
      scale = std::max(scale, std::fabs(a(i, j)));
    }
  }
  if (scale > 0.0 && a.SymmetryError() > 1e-8 * scale) {
    return Status::InvalidArgument("matrix is not symmetric");
  }

  // Scale to unit magnitude so near-underflow entries (e.g. products of
  // sharp Gaussian weights) cannot stall the QL shifts.
  const double inv_scale = scale > 0.0 ? 1.0 / scale : 1.0;
  DenseMatrix z(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      z(i, j) = 0.5 * (a(i, j) + a(j, i)) * inv_scale;
    }
  }

  std::vector<double> d;
  std::vector<double> e;
  Tred2(z, d, e);
  RP_RETURN_IF_ERROR(Tql2(d, e, z));
  SortAscending(d, z);
  if (scale > 0.0) {
    for (double& v : d) v *= scale;
  }

  EigenResult result;
  result.eigenvalues = std::move(d);
  result.eigenvectors = std::move(z);
  result.converged = true;

  // Residual of the extreme pairs as a cheap health indicator.
  std::vector<double> x(n);
  std::vector<double> y(n);
  double max_res = 0.0;
  for (int which : {0, n - 1}) {
    for (int i = 0; i < n; ++i) x[i] = result.eigenvectors(i, which);
    a.Multiply(x.data(), y.data());
    double res = 0.0;
    for (int i = 0; i < n; ++i) {
      double r = y[i] - result.eigenvalues[which] * x[i];
      res += r * r;
    }
    max_res = std::max(max_res, std::sqrt(res));
  }
  result.max_residual = max_res;
  return result;
}

Result<EigenResult> TridiagonalEigenDecompose(const std::vector<double>& d_in,
                                              const std::vector<double>& e_in) {
  const int n = static_cast<int>(d_in.size());
  if (n > 0 && static_cast<int>(e_in.size()) != n - 1) {
    return Status::InvalidArgument("sub-diagonal must have n-1 entries");
  }
  std::vector<double> d = d_in;
  // Tql2 expects e[i] to be the coupling between i-1 and i after its initial
  // shift; feed it in the tred2 layout (e[0] unused, e[i] couples i-1,i).
  std::vector<double> e(n, 0.0);
  for (int i = 1; i < n; ++i) e[i] = e_in[i - 1];
  // Scale to unit magnitude: extreme dynamic ranges (e.g. near-underflow
  // edge weights) otherwise stall the QL shifts.
  double scale = 0.0;
  for (double v : d) scale = std::max(scale, std::fabs(v));
  for (double v : e) scale = std::max(scale, std::fabs(v));
  if (scale > 0.0) {
    for (double& v : d) v /= scale;
    for (double& v : e) v /= scale;
  }
  DenseMatrix z = DenseMatrix::Identity(n);
  RP_RETURN_IF_ERROR(Tql2(d, e, z));
  SortAscending(d, z);
  if (scale > 0.0) {
    for (double& v : d) v *= scale;
  }
  EigenResult result;
  result.eigenvalues = std::move(d);
  result.eigenvectors = std::move(z);
  return result;
}

}  // namespace roadpart
