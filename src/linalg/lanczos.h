#ifndef ROADPART_LINALG_LANCZOS_H_
#define ROADPART_LINALG_LANCZOS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/linear_operator.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {

/// Options for the Lanczos solver.
struct LanczosOptions {
  /// Hard cap on Krylov dimension per (re)start; clamped to the operator
  /// order.
  int max_subspace = 400;
  /// Convergence threshold on the Ritz residual |beta_m * s_mi| relative to
  /// the spectral scale.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  uint64_t seed = 12345;
  /// Number of progressively larger restarts before giving up.
  int max_restarts = 3;
  /// Optional warm start: a non-owning pointer to a start vector carried over
  /// from a previous, similar solve (e.g. the first embedding column of the
  /// last interval in the incremental repartitioner). Used for the *first*
  /// Krylov build only — restarts always reseed from the rng so a bad warm
  /// vector cannot poison the whole ladder — and silently ignored unless it
  /// has exactly the operator's dimension, is entirely finite, and has a
  /// positive norm. An accelerator, not a semantic knob: the solve converges
  /// to the same eigenpairs within tolerance, it just takes a different
  /// (usually much shorter) iteration path. Deterministic: the same warm
  /// vector always yields the same bits at every thread count. The pointee
  /// must outlive the LanczosEigen call.
  const std::vector<double>* warm_start = nullptr;
};

/// Which spectrum end to extract.
enum class SpectrumEnd { kSmallest, kLargest };

/// Computes the `k` eigenpairs at the requested end of the spectrum of a
/// symmetric operator using Lanczos iteration with full reorthogonalization.
/// Eigenvalues come back ascending. If the subspace budget is exhausted
/// before all pairs converge, the best estimates are returned with
/// `converged = false` and `max_residual` reporting the worst Ritz residual.
Result<EigenResult> LanczosEigen(const LinearOperator& op, int k,
                                 SpectrumEnd end,
                                 const LanczosOptions& options = {});

}  // namespace roadpart

#endif  // ROADPART_LINALG_LANCZOS_H_
