#ifndef ROADPART_LINALG_SPARSE_MATRIX_H_
#define ROADPART_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

/// One (row, col, value) entry used while assembling a sparse matrix.
struct Triplet {
  int row;
  int col;
  double value;
};

/// Compressed-sparse-row matrix of doubles. Immutable once built; build via
/// FromTriplets (duplicates are summed) or move-construct the raw arrays.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Assembles an n_rows x n_cols CSR matrix; duplicate (r,c) entries are
  /// summed, explicit zeros are dropped. Column indices within each row come
  /// out sorted. Fails on out-of-range indices.
  static Result<SparseMatrix> FromTriplets(int rows, int cols,
                                           const std::vector<Triplet>& entries);

  /// Builds the symmetric matrix A + A^T - diag(A) from the strictly upper
  /// (or lower) entries plus diagonal. Convenience for undirected graphs.
  static Result<SparseMatrix> SymmetricFromTriplets(
      int n, const std::vector<Triplet>& upper_entries);

  /// Adopts pre-built CSR arrays without the assembly pass. The caller
  /// promises the Validate() invariants; audited with RP_DCHECK in checked
  /// builds.
  static SparseMatrix FromRawCsr(int rows, int cols,
                                 std::vector<int64_t> row_offsets,
                                 std::vector<int> col_indices,
                                 std::vector<double> values);

  /// Structural audit of the CSR arrays: row-pointer shape and monotonicity,
  /// strictly-sorted in-bounds column indices per row, finite values.
  /// Returns the first violation. O(nnz); run behind RP_DCHECK on hot paths.
  Status Validate() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t NumNonZeros() const { return static_cast<int64_t>(values_.size()); }

  /// y = A x.
  void Multiply(const double* x, double* y) const;

  /// Vector of row sums (weighted degrees for adjacency matrices).
  std::vector<double> RowSums() const;

  /// Sum of all stored values.
  double TotalSum() const;

  /// Value at (r, c); O(log nnz_row). Returns 0 when not stored.
  double At(int r, int c) const;

  /// Max |a_ij - a_ji| over stored entries.
  double SymmetryError() const;

  /// Converts to a dense matrix (use only for small orders).
  DenseMatrix ToDense() const;

  /// Extracts the square submatrix indexed by `indices` (in the given order).
  SparseMatrix Submatrix(const std::vector<int>& indices) const;

  // Raw CSR access for algorithms that iterate rows directly.
  const std::vector<int64_t>& row_offsets() const { return row_offsets_; }
  const std::vector<int>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> row_offsets_;  // size rows_+1
  std::vector<int> col_indices_;      // size nnz
  std::vector<double> values_;        // size nnz
};

}  // namespace roadpart

#endif  // ROADPART_LINALG_SPARSE_MATRIX_H_
