#ifndef ROADPART_LINALG_LINEAR_OPERATOR_H_
#define ROADPART_LINALG_LINEAR_OPERATOR_H_

#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace roadpart {

/// Abstract symmetric linear operator y = A x. Lets the Lanczos solver work
/// on implicitly-represented matrices (e.g. the alpha-Cut matrix
/// M = d d^T / s - A, which is dense but applies in O(nnz + n)).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Operator order (square).
  virtual int Dim() const = 0;

  /// y = A x; both arrays hold Dim() doubles and must not alias.
  virtual void Apply(const double* x, double* y) const = 0;
};

/// Wraps a CSR matrix (must be square).
class SparseOperator : public LinearOperator {
 public:
  /// The referenced matrix must outlive the operator.
  explicit SparseOperator(const SparseMatrix& matrix);

  int Dim() const override { return matrix_.rows(); }
  void Apply(const double* x, double* y) const override;

 private:
  const SparseMatrix& matrix_;
};

/// Wraps a dense matrix (must be square).
class DenseOperator : public LinearOperator {
 public:
  explicit DenseOperator(const DenseMatrix& matrix);

  int Dim() const override { return matrix_.rows(); }
  void Apply(const double* x, double* y) const override;

 private:
  const DenseMatrix& matrix_;
};

/// y = scale * u (u . x) + sign * B x  — a rank-one update of a base
/// operator. With scale = 1/s, u = degree vector, sign = -1 and B = A this is
/// exactly the paper's alpha-Cut matrix M = (d d^T)/s - A.
class RankOneUpdatedOperator : public LinearOperator {
 public:
  RankOneUpdatedOperator(const LinearOperator& base, std::vector<double> u,
                         double scale, double base_sign);

  int Dim() const override { return base_.Dim(); }
  void Apply(const double* x, double* y) const override;

 private:
  const LinearOperator& base_;
  std::vector<double> u_;
  double scale_;
  double base_sign_;
};

/// y = (B - shift I) x; used to move the spectrum so Lanczos targets one end.
class ShiftedOperator : public LinearOperator {
 public:
  ShiftedOperator(const LinearOperator& base, double shift);

  int Dim() const override { return base_.Dim(); }
  void Apply(const double* x, double* y) const override;

 private:
  const LinearOperator& base_;
  double shift_;
};

/// Materializes an operator column by column. O(n) Apply calls; intended for
/// small orders and tests.
DenseMatrix Materialize(const LinearOperator& op);

}  // namespace roadpart

#endif  // ROADPART_LINALG_LINEAR_OPERATOR_H_
