#include "linalg/linear_operator.h"

#include "common/logging.h"

namespace roadpart {

SparseOperator::SparseOperator(const SparseMatrix& matrix) : matrix_(matrix) {
  RP_CHECK(matrix.rows() == matrix.cols());
}

void SparseOperator::Apply(const double* x, double* y) const {
  matrix_.Multiply(x, y);
}

DenseOperator::DenseOperator(const DenseMatrix& matrix) : matrix_(matrix) {
  RP_CHECK(matrix.rows() == matrix.cols());
}

void DenseOperator::Apply(const double* x, double* y) const {
  matrix_.Multiply(x, y);
}

RankOneUpdatedOperator::RankOneUpdatedOperator(const LinearOperator& base,
                                               std::vector<double> u,
                                               double scale, double base_sign)
    : base_(base), u_(std::move(u)), scale_(scale), base_sign_(base_sign) {
  RP_CHECK(static_cast<int>(u_.size()) == base_.Dim());
}

void RankOneUpdatedOperator::Apply(const double* x, double* y) const {
  base_.Apply(x, y);
  double ux = 0.0;
  for (size_t i = 0; i < u_.size(); ++i) ux += u_[i] * x[i];
  const double coeff = scale_ * ux;
  for (size_t i = 0; i < u_.size(); ++i) {
    y[i] = base_sign_ * y[i] + coeff * u_[i];
  }
}

ShiftedOperator::ShiftedOperator(const LinearOperator& base, double shift)
    : base_(base), shift_(shift) {}

void ShiftedOperator::Apply(const double* x, double* y) const {
  base_.Apply(x, y);
  for (int i = 0; i < base_.Dim(); ++i) y[i] -= shift_ * x[i];
}

DenseMatrix Materialize(const LinearOperator& op) {
  const int n = op.Dim();
  DenseMatrix m(n, n);
  std::vector<double> e(n, 0.0);
  std::vector<double> col(n, 0.0);
  for (int j = 0; j < n; ++j) {
    e[j] = 1.0;
    op.Apply(e.data(), col.data());
    e[j] = 0.0;
    for (int i = 0; i < n; ++i) m(i, j) = col[i];
  }
  return m;
}

}  // namespace roadpart
