#include "linalg/linear_operator.h"

#include "common/logging.h"
#include "common/parallel.h"

namespace roadpart {

namespace {

// Elements per task in the elementwise operator kernels; fixed so blocked
// reductions are thread-count invariant (see common/parallel.h).
constexpr int64_t kApplyGrain = 8192;

}  // namespace

SparseOperator::SparseOperator(const SparseMatrix& matrix) : matrix_(matrix) {
  RP_CHECK(matrix.rows() == matrix.cols());
}

void SparseOperator::Apply(const double* x, double* y) const {
  matrix_.Multiply(x, y);
}

DenseOperator::DenseOperator(const DenseMatrix& matrix) : matrix_(matrix) {
  RP_CHECK(matrix.rows() == matrix.cols());
}

void DenseOperator::Apply(const double* x, double* y) const {
  matrix_.Multiply(x, y);
}

RankOneUpdatedOperator::RankOneUpdatedOperator(const LinearOperator& base,
                                               std::vector<double> u,
                                               double scale, double base_sign)
    : base_(base), u_(std::move(u)), scale_(scale), base_sign_(base_sign) {
  RP_CHECK(static_cast<int>(u_.size()) == base_.Dim());
}

void RankOneUpdatedOperator::Apply(const double* x, double* y) const {
  base_.Apply(x, y);
  const int64_t n = static_cast<int64_t>(u_.size());
  const double ux =
      ParallelBlockedSum(n, kApplyGrain, [&](int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t i = begin; i < end; ++i) acc += u_[i] * x[i];
        return acc;
      });
  const double coeff = scale_ * ux;
  ParallelForBlocked(n, kApplyGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      y[i] = base_sign_ * y[i] + coeff * u_[i];
    }
  });
}

ShiftedOperator::ShiftedOperator(const LinearOperator& base, double shift)
    : base_(base), shift_(shift) {}

void ShiftedOperator::Apply(const double* x, double* y) const {
  base_.Apply(x, y);
  ParallelForBlocked(base_.Dim(), kApplyGrain,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         y[i] -= shift_ * x[i];
                       }
                     });
}

DenseMatrix Materialize(const LinearOperator& op) {
  const int n = op.Dim();
  DenseMatrix m(n, n);
  std::vector<double> e(n, 0.0);
  std::vector<double> col(n, 0.0);
  for (int j = 0; j < n; ++j) {
    e[j] = 1.0;
    op.Apply(e.data(), col.data());
    e[j] = 0.0;
    for (int i = 0; i < n; ++i) m(i, j) = col[i];
  }
  return m;
}

}  // namespace roadpart
