#include "linalg/dense_matrix.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace roadpart {

namespace {

// Fixed block sizes for the parallel vector kernels. These are part of the
// numerical contract: reductions are evaluated per block and combined in
// ascending block order, so results depend on the block size but never on
// the thread count (see ParallelBlockedSum). Do not derive them from
// DefaultParallelism().
constexpr int64_t kVectorGrain = 8192;   // elementwise + reduction kernels
constexpr int64_t kMatVecRowGrain = 64;  // rows per task in dense matvec

}  // namespace

DenseMatrix::DenseMatrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  RP_CHECK(rows >= 0 && cols >= 0);
}

void DenseMatrix::Multiply(const double* x, double* y) const {
  // Row-blocked: each y[r] is one serial inner product, so the result is
  // bit-identical for any thread count.
  ParallelForBlocked(rows_, kMatVecRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const double* row = Row(static_cast<int>(r));
      double acc = 0.0;
      for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
  });
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double DenseMatrix::SymmetryError() const {
  if (rows_ != cols_) return HUGE_VAL;
  double err = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      err = std::max(err, std::fabs((*this)(r, c) - (*this)(c, r)));
    }
  }
  return err;
}

DenseMatrix DenseMatrix::Identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  RP_CHECK(a.size() == b.size());
  return ParallelBlockedSum(
      static_cast<int64_t>(a.size()), kVectorGrain,
      [&](int64_t begin, int64_t end) {
        double acc = 0.0;
        for (int64_t i = begin; i < end; ++i) acc += a[i] * b[i];
        return acc;
      });
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  RP_CHECK(x.size() == y.size());
  ParallelForBlocked(static_cast<int64_t>(x.size()), kVectorGrain,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         y[i] += alpha * x[i];
                       }
                     });
}

void Scale(double alpha, std::vector<double>& x) {
  ParallelForBlocked(static_cast<int64_t>(x.size()), kVectorGrain,
                     [&](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) x[i] *= alpha;
                     });
}

double Sum(const std::vector<double>& a) {
  return ParallelBlockedSum(static_cast<int64_t>(a.size()), kVectorGrain,
                            [&](int64_t begin, int64_t end) {
                              double acc = 0.0;
                              for (int64_t i = begin; i < end; ++i) {
                                acc += a[i];
                              }
                              return acc;
                            });
}

double Mean(const std::vector<double>& a) {
  return a.empty() ? 0.0 : Sum(a) / static_cast<double>(a.size());
}

double Variance(const std::vector<double>& a) {
  if (a.empty()) return 0.0;
  double mu = Mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(a.size());
}

}  // namespace roadpart
