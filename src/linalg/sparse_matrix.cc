#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

// Rows per task in the parallel CSR kernels. Each row's accumulation is a
// serial loop over its own entries, so the block size (and the thread count)
// cannot change any result bit — blocking only bounds dispatch overhead.
constexpr int64_t kSpmvRowGrain = 256;

}  // namespace

Result<SparseMatrix> SparseMatrix::FromTriplets(
    int rows, int cols, const std::vector<Triplet>& entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const Triplet& t : entries) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange(
          StrPrintf("triplet (%d,%d) outside %dx%d", t.row, t.col, rows, cols));
    }
  }

  // Counting sort by row, then sort each row's slice by column and merge
  // duplicates.
  std::vector<int64_t> counts(static_cast<size_t>(rows) + 1, 0);
  for (const Triplet& t : entries) counts[t.row + 1]++;
  for (int r = 0; r < rows; ++r) counts[r + 1] += counts[r];

  std::vector<std::pair<int, double>> slots(entries.size());
  {
    std::vector<int64_t> cursor(counts.begin(), counts.end() - 1);
    for (const Triplet& t : entries) {
      slots[cursor[t.row]++] = {t.col, t.value};
    }
  }

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_indices_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (int r = 0; r < rows; ++r) {
    auto begin = slots.begin() + counts[r];
    auto end = slots.begin() + counts[r + 1];
    std::sort(begin, end,
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = begin; it != end;) {
      int col = it->first;
      double sum = 0.0;
      while (it != end && it->first == col) {
        sum += it->second;
        ++it;
      }
      if (sum != 0.0) {
        m.col_indices_.push_back(col);
        m.values_.push_back(sum);
      }
    }
    m.row_offsets_[r + 1] = static_cast<int64_t>(m.col_indices_.size());
  }
  RP_DCHECK_OK(m.Validate());
  return m;
}

SparseMatrix SparseMatrix::FromRawCsr(int rows, int cols,
                                      std::vector<int64_t> row_offsets,
                                      std::vector<int> col_indices,
                                      std::vector<double> values) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_ = std::move(row_offsets);
  m.col_indices_ = std::move(col_indices);
  m.values_ = std::move(values);
  RP_DCHECK_OK(m.Validate());
  return m;
}

Status SparseMatrix::Validate() const {
  if (rows_ < 0 || cols_ < 0) {
    return Status::Internal("negative matrix dimensions");
  }
  // A default-constructed matrix keeps all arrays empty; that is valid.
  if (rows_ == 0 && row_offsets_.empty() && col_indices_.empty() &&
      values_.empty()) {
    return Status::OK();
  }
  if (row_offsets_.size() != static_cast<size_t>(rows_) + 1) {
    return Status::Internal(
        StrPrintf("row-pointer array has %zu entries for %d rows",
                  row_offsets_.size(), rows_));
  }
  if (row_offsets_.front() != 0) return Status::Internal("row_offsets[0] != 0");
  if (row_offsets_.back() != static_cast<int64_t>(col_indices_.size())) {
    return Status::Internal("row pointers do not cover column array");
  }
  if (values_.size() != col_indices_.size()) {
    return Status::Internal("values/col_indices size mismatch");
  }
  // Monotonicity must be established for the whole array before any row is
  // dereferenced — with front == 0 and back == nnz it bounds every row span,
  // so the loops below cannot read outside the value arrays.
  for (int r = 0; r < rows_; ++r) {
    if (row_offsets_[r] > row_offsets_[r + 1]) {
      return Status::Internal(
          StrPrintf("row pointers not monotone at row %d", r));
    }
  }
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      int c = col_indices_[i];
      if (c < 0 || c >= cols_) {
        return Status::Internal(
            StrPrintf("column %d of row %d out of range", c, r));
      }
      if (i > row_offsets_[r] && col_indices_[i - 1] >= c) {
        return Status::Internal(
            StrPrintf("columns of row %d not strictly sorted", r));
      }
      if (!std::isfinite(values_[i])) {
        return Status::Internal(
            StrPrintf("non-finite value at (%d,%d)", r, c));
      }
    }
  }
  return Status::OK();
}

Result<SparseMatrix> SparseMatrix::SymmetricFromTriplets(
    int n, const std::vector<Triplet>& upper_entries) {
  std::vector<Triplet> all;
  all.reserve(upper_entries.size() * 2);
  for (const Triplet& t : upper_entries) {
    all.push_back(t);
    if (t.row != t.col) all.push_back({t.col, t.row, t.value});
  }
  return FromTriplets(n, n, all);
}

void SparseMatrix::Multiply(const double* x, double* y) const {
  ParallelForBlocked(rows_, kSpmvRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (int64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
        acc += values_[i] * x[col_indices_[i]];
      }
      y[r] = acc;
    }
  });
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  ParallelForBlocked(rows_, kSpmvRowGrain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      for (int64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
        sums[r] += values_[i];
      }
    }
  });
  return sums;
}

double SparseMatrix::TotalSum() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

double SparseMatrix::At(int r, int c) const {
  RP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  auto begin = col_indices_.begin() + row_offsets_[r];
  auto end = col_indices_.begin() + row_offsets_[r + 1];
  auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[it - col_indices_.begin()];
}

double SparseMatrix::SymmetryError() const {
  if (rows_ != cols_) return HUGE_VAL;
  double err = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      int c = col_indices_[i];
      err = std::max(err, std::fabs(values_[i] - At(c, r)));
    }
  }
  return err;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t i = row_offsets_[r]; i < row_offsets_[r + 1]; ++i) {
      d(r, col_indices_[i]) = values_[i];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Submatrix(const std::vector<int>& indices) const {
  RP_CHECK(rows_ == cols_);
  std::unordered_map<int, int> position;
  position.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    RP_CHECK(indices[i] >= 0 && indices[i] < rows_);
    position[indices[i]] = static_cast<int>(i);
  }
  std::vector<Triplet> kept;
  for (size_t i = 0; i < indices.size(); ++i) {
    int r = indices[i];
    for (int64_t j = row_offsets_[r]; j < row_offsets_[r + 1]; ++j) {
      auto it = position.find(col_indices_[j]);
      if (it != position.end()) {
        kept.push_back({static_cast<int>(i), it->second, values_[j]});
      }
    }
  }
  auto result = FromTriplets(static_cast<int>(indices.size()),
                             static_cast<int>(indices.size()), kept);
  RP_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace roadpart
