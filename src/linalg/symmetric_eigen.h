#ifndef ROADPART_LINALG_SYMMETRIC_EIGEN_H_
#define ROADPART_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

/// Eigenvalues (ascending) and matching eigenvectors (columns of
/// `eigenvectors`, orthonormal).
struct EigenResult {
  std::vector<double> eigenvalues;
  DenseMatrix eigenvectors;
  bool converged = true;
  double max_residual = 0.0;
  /// Lanczos restarts consumed beyond the first factorization (0 for dense
  /// and tridiagonal solves); surfaced in RunDiagnostics.
  int restarts_used = 0;
};

/// Full eigen-decomposition of a real symmetric matrix via Householder
/// tridiagonalization followed by implicit-shift QL iteration — the same
/// "reduce to condensed form, decompose, transform back" scheme the paper
/// cites from Dongarra et al. [3]. O(n^3) time, O(n^2) space.
///
/// `a` must be square and symmetric (tolerated asymmetry ~1e-9 relative); the
/// solver works on (A + A^T)/2.
Result<EigenResult> SymmetricEigenDecompose(const DenseMatrix& a);

/// Eigen-decomposition of a symmetric tridiagonal matrix given its diagonal
/// `d` (n values) and sub-diagonal `e` (n-1 values). Exposed for the Lanczos
/// solver and for tests.
Result<EigenResult> TridiagonalEigenDecompose(const std::vector<double>& d,
                                              const std::vector<double>& e);

}  // namespace roadpart

#endif  // ROADPART_LINALG_SYMMETRIC_EIGEN_H_
