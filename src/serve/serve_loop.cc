#include "serve/serve_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/durable_io.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace roadpart {
namespace {

enum class QueryKind : uint8_t { kPoint, kRange, kError, kShed };

struct ParsedQuery {
  QueryKind kind;
  size_t line = 0;          // 1-based, stream-global (first_line_number offset)
  const char* reason = "";  // stable kebab code for kError / kShed answers
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;  // x,y or minx,miny,maxx,maxy
};

/// Outcome of parsing one query line: `code` is null on success, else the
/// stable reason token for an `error` answer, with `detail` carrying the
/// human sentence used by strict-mode InvalidArgument messages.
struct ParseError {
  const char* code = nullptr;
  const char* detail = nullptr;
};

ParseError ParseQueryLine(std::string_view line, ParsedQuery* out) {
  std::vector<std::string> raw = Split(line, ' ');
  std::vector<std::string_view> tokens;
  for (const std::string& t : raw) {
    std::string_view v = Trim(t);
    if (!v.empty()) tokens.push_back(v);
  }
  if (tokens[0] != "point" && tokens[0] != "range") {
    return {"bad-verb", "expected 'point' or 'range'"};
  }
  const size_t want = tokens[0] == "point" ? 2 : 4;
  if (tokens.size() != want + 1) {
    return {"bad-arity", tokens[0] == "point"
                             ? "'point' takes exactly x y"
                             : "'range' takes exactly minx miny maxx maxy"};
  }
  double values[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < want; ++i) {
    Result<double> parsed = ParseDouble(tokens[i + 1]);
    if (!parsed.ok()) return {"bad-coordinate", "unparsable coordinate"};
    if (!std::isfinite(*parsed)) {
      return {"bad-coordinate", "non-finite coordinate"};
    }
    values[i] = *parsed;
  }
  if (tokens[0] == "range" &&
      (values[0] > values[2] || values[1] > values[3])) {
    // An inverted box is a malformed query, never a silently-empty result:
    // the closed-bounds contract makes minx == maxx legal, but minx > maxx
    // can only be a caller that swapped its coordinates.
    return {"inverted-box", "range box has minx > maxx or miny > maxy"};
  }
  out->kind = tokens[0] == "point" ? QueryKind::kPoint : QueryKind::kRange;
  out->a = values[0];
  out->b = values[1];
  out->c = values[2];
  out->d = values[3];
  return {};
}

void AppendAnswer(const Snapshot& snapshot, const ParsedQuery& q,
                  std::string* out) {
  switch (q.kind) {
    case QueryKind::kError:
      out->append(StrPrintf("error %zu %s\n", q.line, q.reason));
      return;
    case QueryKind::kShed:
      out->append(StrPrintf("shed %zu %s\n", q.line, q.reason));
      return;
    case QueryKind::kPoint: {
      const PointAnswer a = snapshot.NearestSegment({q.a, q.b});
      if (a.segment_id < 0) {
        out->append("point -1 -1 -1\n");
      } else {
        out->append(StrPrintf("point %d %d %.17g\n", a.segment_id,
                              a.partition_id, a.distance));
      }
      return;
    }
    case QueryKind::kRange:
      break;
  }
  BoundingBox box;
  box.min = {q.a, q.b};
  box.max = {q.c, q.d};
  const std::vector<int64_t> counts = snapshot.CountByPartition(box);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  out->append(StrPrintf("range %lld", static_cast<long long>(total)));
  for (int64_t c : counts) {
    out->append(StrPrintf(" %lld", static_cast<long long>(c)));
  }
  out->push_back('\n');
}

}  // namespace

Status ServeQueries(const Snapshot& snapshot, std::string_view queries,
                    const ServeOptions& options, std::string* output,
                    ServeBatchStats* stats) {
  const bool isolate =
      options.on_malformed == MalformedQueryPolicy::kIsolate;
  // Fault sites and the deadline clock are consulted once per call, from
  // serial code, so degraded output is a pure function of the input.
  const bool overflow_injected =
      RP_FAULT_FIRES(FaultSite::kServeShedOverflow);
  const bool timeout_injected =
      RP_FAULT_FIRES(FaultSite::kServeQueryTimeout);
  Timer deadline_timer;

  // Parse + admit serially: errors stay deterministic and name their line,
  // and the admitted/errored/shed decision for every line is fixed before
  // any parallel work starts.
  std::vector<ParsedQuery> parsed;
  ServeBatchStats tally;
  int64_t admitted_queries = 0;
  int64_t admitted_bytes = 0;
  size_t local_line = 0;
  size_t pos = 0;
  while (pos <= queries.size()) {
    const size_t eol = queries.find('\n', pos);
    const size_t end = eol == std::string_view::npos ? queries.size() : eol;
    if (pos == queries.size() && eol == std::string_view::npos) break;
    ++local_line;
    std::string_view line = Trim(queries.substr(pos, end - pos));
    const size_t line_bytes = end - pos;
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;

    ParsedQuery q;
    q.line = options.first_line_number + local_line - 1;
    // Admission first: a shed line is refused before any parsing work, the
    // same order a saturated server applies. The injected overflow
    // collapses the query budget to zero for this call.
    const char* shed_reason = nullptr;
    if (overflow_injected || (options.max_inflight_queries > 0 &&
                              admitted_queries >=
                                  options.max_inflight_queries)) {
      shed_reason = "queue-full";
    } else if (options.max_inflight_bytes > 0 &&
               admitted_bytes + static_cast<int64_t>(line_bytes) >
                   options.max_inflight_bytes) {
      shed_reason = "byte-budget";
    }
    if (shed_reason != nullptr) {
      q.kind = QueryKind::kShed;
      q.reason = shed_reason;
      parsed.push_back(q);
      continue;
    }
    const ParseError err = ParseQueryLine(line, &q);
    if (err.code != nullptr) {
      if (!isolate) {
        return Status::InvalidArgument(
            StrPrintf("query line %zu: %s", q.line, err.detail));
      }
      q.kind = QueryKind::kError;
      q.reason = err.code;
      parsed.push_back(q);
      continue;
    }
    ++admitted_queries;
    admitted_bytes += static_cast<int64_t>(line_bytes);
    parsed.push_back(q);
  }

  // Per-batch deadline, checked once at the serial boundary before the
  // fan-out (PR-3 idiom: module boundaries, never inside a kernel). On
  // expiry every *admitted* query sheds; error/shed lines keep their more
  // specific diagnosis.
  const bool deadline_expired =
      timeout_injected || (options.deadline_seconds > 0.0 &&
                           deadline_timer.Seconds() >
                               options.deadline_seconds);
  if (deadline_expired && !parsed.empty()) {
    if (!isolate) {
      return Status::DeadlineExceeded(
          StrPrintf("serve batch deadline of %.3fs expired before dispatch",
                    options.deadline_seconds));
    }
    for (ParsedQuery& q : parsed) {
      if (q.kind == QueryKind::kPoint || q.kind == QueryKind::kRange) {
        q.kind = QueryKind::kShed;
        q.reason = "deadline";
      }
    }
  }

  for (const ParsedQuery& q : parsed) {
    switch (q.kind) {
      case QueryKind::kPoint: ++tally.answered_point; break;
      case QueryKind::kRange: ++tally.answered_range; break;
      case QueryKind::kError: ++tally.errored; break;
      case QueryKind::kShed: ++tally.shed; break;
    }
  }
  if (stats != nullptr) *stats = tally;
  if (parsed.empty()) return Status::OK();

  const int batch = options.batch_size < 1 ? 1 : options.batch_size;
  const int num_batches =
      static_cast<int>((parsed.size() + batch - 1) / static_cast<size_t>(batch));
  std::vector<std::string> answers(static_cast<size_t>(num_batches));
  // Each batch formats into a lambda-local buffer, then moves it into its
  // own slot; the serial join below fixes the output order for every
  // thread count.
  ParallelForTasks(
      num_batches,
      [&](int b) {
        const size_t begin = static_cast<size_t>(b) * batch;
        const size_t end = std::min(parsed.size(), begin + batch);
        std::string local;
        for (size_t i = begin; i < end; ++i) {
          AppendAnswer(snapshot, parsed[i], &local);
        }
        answers[static_cast<size_t>(b)] = std::move(local);
      },
      options.num_threads);
  for (const std::string& a : answers) output->append(a);
  return Status::OK();
}

Result<std::string> ServeQueryFile(const Snapshot& snapshot,
                                   const std::string& query_path,
                                   const ServeOptions& options) {
  RP_ASSIGN_OR_RETURN(std::string queries, ReadFileBytes(query_path));
  std::string output;
  RP_RETURN_IF_ERROR(ServeQueries(snapshot, queries, options, &output));
  return output;
}

}  // namespace roadpart
