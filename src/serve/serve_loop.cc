#include "serve/serve_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/durable_io.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace roadpart {
namespace {

enum class QueryKind : uint8_t { kPoint, kRange };

struct ParsedQuery {
  QueryKind kind;
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;  // x,y or minx,miny,maxx,maxy
};

Status ParseQueryLine(std::string_view line, size_t line_number,
                      std::vector<ParsedQuery>* out) {
  auto bad = [line_number](const char* why) {
    return Status::InvalidArgument(
        StrPrintf("query line %zu: %s", line_number, why));
  };
  std::vector<std::string> raw = Split(line, ' ');
  std::vector<std::string_view> tokens;
  for (const std::string& t : raw) {
    std::string_view v = Trim(t);
    if (!v.empty()) tokens.push_back(v);
  }
  if (tokens.empty()) return Status::OK();
  const size_t want = tokens[0] == "point" ? 2 : 4;
  if (tokens[0] != "point" && tokens[0] != "range") {
    return bad("expected 'point' or 'range'");
  }
  if (tokens.size() != want + 1) {
    return bad(tokens[0] == "point" ? "'point' takes exactly x y"
                                    : "'range' takes exactly minx miny "
                                      "maxx maxy");
  }
  double values[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < want; ++i) {
    Result<double> parsed = ParseDouble(tokens[i + 1]);
    if (!parsed.ok()) return bad("unparsable coordinate");
    if (!std::isfinite(*parsed)) return bad("non-finite coordinate");
    values[i] = *parsed;
  }
  ParsedQuery q;
  q.kind = tokens[0] == "point" ? QueryKind::kPoint : QueryKind::kRange;
  q.a = values[0];
  q.b = values[1];
  q.c = values[2];
  q.d = values[3];
  out->push_back(q);
  return Status::OK();
}

void AppendAnswer(const Snapshot& snapshot, const ParsedQuery& q,
                  std::string* out) {
  if (q.kind == QueryKind::kPoint) {
    const PointAnswer a = snapshot.NearestSegment({q.a, q.b});
    if (a.segment_id < 0) {
      out->append("point -1 -1 -1\n");
    } else {
      out->append(StrPrintf("point %d %d %.17g\n", a.segment_id,
                            a.partition_id, a.distance));
    }
    return;
  }
  BoundingBox box;
  box.min = {q.a, q.b};
  box.max = {q.c, q.d};
  const std::vector<int64_t> counts = snapshot.CountByPartition(box);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  out->append(StrPrintf("range %lld", static_cast<long long>(total)));
  for (int64_t c : counts) {
    out->append(StrPrintf(" %lld", static_cast<long long>(c)));
  }
  out->push_back('\n');
}

}  // namespace

Status ServeQueries(const Snapshot& snapshot, std::string_view queries,
                    const ServeOptions& options, std::string* output) {
  // Parse serially: errors stay deterministic and name their line.
  std::vector<ParsedQuery> parsed;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= queries.size()) {
    const size_t eol = queries.find('\n', pos);
    const size_t end = eol == std::string_view::npos ? queries.size() : eol;
    if (pos == queries.size() && eol == std::string_view::npos) break;
    ++line_number;
    std::string_view line = Trim(queries.substr(pos, end - pos));
    if (!line.empty() && line[0] != '#') {
      RP_RETURN_IF_ERROR(ParseQueryLine(line, line_number, &parsed));
    }
    pos = end + 1;
  }
  if (parsed.empty()) return Status::OK();

  const int batch = options.batch_size < 1 ? 1 : options.batch_size;
  const int num_batches =
      static_cast<int>((parsed.size() + batch - 1) / static_cast<size_t>(batch));
  std::vector<std::string> answers(static_cast<size_t>(num_batches));
  // Each batch formats into a lambda-local buffer, then moves it into its
  // own slot; the serial join below fixes the output order for every
  // thread count.
  ParallelForTasks(
      num_batches,
      [&](int b) {
        const size_t begin = static_cast<size_t>(b) * batch;
        const size_t end = std::min(parsed.size(), begin + batch);
        std::string local;
        for (size_t i = begin; i < end; ++i) {
          AppendAnswer(snapshot, parsed[i], &local);
        }
        answers[static_cast<size_t>(b)] = std::move(local);
      },
      options.num_threads);
  for (const std::string& a : answers) output->append(a);
  return Status::OK();
}

Result<std::string> ServeQueryFile(const Snapshot& snapshot,
                                   const std::string& query_path,
                                   const ServeOptions& options) {
  RP_ASSIGN_OR_RETURN(std::string queries, ReadFileBytes(query_path));
  std::string output;
  RP_RETURN_IF_ERROR(ServeQueries(snapshot, queries, options, &output));
  return output;
}

}  // namespace roadpart
