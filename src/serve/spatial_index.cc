#include "serve/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace roadpart {

double PointSegmentDistanceSquared(const Point& q, const Point& a,
                                   const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((q.x - a.x) * abx + (q.y - a.y) * aby) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double dx = q.x - (a.x + t * abx);
  const double dy = q.y - (a.y + t * aby);
  return dx * dx + dy * dy;
}

NearestHit BruteForceNearestSegment(const SegmentGeometryView& view,
                                    const Point& q) {
  NearestHit best;
  for (int32_t s = 0; s < view.num_segments; ++s) {
    ConsiderNearest(s, PointSegmentDistanceSquared(q, view.SegmentA(s),
                                                   view.SegmentB(s)),
                    &best);
  }
  return best;
}

NearestHit BruteForceNearestSegment(const RoadNetwork& network,
                                    const Point& q) {
  NearestHit best;
  for (int s = 0; s < network.num_segments(); ++s) {
    const RoadSegment& seg = network.segment(s);
    ConsiderNearest(
        static_cast<int32_t>(s),
        PointSegmentDistanceSquared(q, network.intersection(seg.from).position,
                                    network.intersection(seg.to).position),
        &best);
  }
  return best;
}

Point SegmentMidpoint(const RoadNetwork& network, int s) {
  const RoadSegment& seg = network.segment(s);
  const Point& a = network.intersection(seg.from).position;
  const Point& b = network.intersection(seg.to).position;
  return {0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
}

// --- KD-tree over midpoints -------------------------------------------------

namespace {

/// Size of the left subtree in the left-balanced (heap-layout) KD-tree of
/// `n` nodes: the left child receives a complete subtree wherever possible,
/// so child indices are always 2k+1 / 2k+2 with no gaps.
int32_t LeftSubtreeSize(int32_t n) {
  if (n <= 1) return 0;
  int shift = 1;  // height of the full upper part
  while ((int64_t(1) << (shift + 1)) - 1 < n) ++shift;
  const int32_t full = static_cast<int32_t>((int64_t(1) << shift) - 1);
  const int32_t last = n - full;               // nodes on the bottom level
  const int32_t last_left_cap = 1 << (shift - 1);
  return (full - 1) / 2 + std::min(last, last_left_cap);
}

struct KdBuildFrame {
  int32_t lo, hi;   // range of `order` feeding this subtree
  int32_t node;     // heap slot
  int32_t depth;
};

struct KdSearchFrame {
  int32_t node;
  int32_t depth;
  double axis_d2;  // squared distance from q to this subtree's split plane
};

}  // namespace

std::vector<int32_t> BuildKdTree(const double* midpoints_xy, int32_t n) {
  std::vector<int32_t> heap(static_cast<size_t>(std::max(n, 0)), 0);
  if (n <= 0) return heap;
  std::vector<int32_t> order(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) order[i] = i;

  std::vector<KdBuildFrame> stack;
  stack.push_back({0, n, 0, 0});
  while (!stack.empty()) {
    KdBuildFrame f = stack.back();
    stack.pop_back();
    const int32_t count = f.hi - f.lo;
    if (count <= 0) continue;
    const int axis = f.depth & 1;
    const int32_t left = LeftSubtreeSize(count);
    auto begin = order.begin() + f.lo;
    // Total order (coordinate, id): unique median even under duplicate
    // coordinates, so the tree shape is a pure function of the input.
    std::nth_element(begin, begin + left, order.begin() + f.hi,
                     [&](int32_t a, int32_t b) {
                       const double ca = midpoints_xy[2 * a + axis];
                       const double cb = midpoints_xy[2 * b + axis];
                       if (ca != cb) return ca < cb;
                       return a < b;
                     });
    heap[static_cast<size_t>(f.node)] = order[f.lo + left];
    stack.push_back({f.lo, f.lo + left, 2 * f.node + 1, f.depth + 1});
    stack.push_back({f.lo + left + 1, f.hi, 2 * f.node + 2, f.depth + 1});
  }
  return heap;
}

NearestHit KdNearestMidpoint(const double* midpoints_xy, const int32_t* heap,
                             int32_t n, const Point& q) {
  NearestHit best;
  if (n <= 0) return best;
  const double qc[2] = {q.x, q.y};
  // Recursion emulated with one frame per tree level, so the search never
  // heap-allocates (this is the serving hot path). Frame `d` remembers the
  // not-yet-visited far child of the node the current descent passed at
  // depth `d` (-1 once visited or absent) and the squared distance to that
  // node's splitting plane; `top` doubles as the depth of `node`, so the
  // split axis is `top & 1`. Depth is at most 31: counts are capped at
  // kMaxCount = 2^30 segments and the heap is left-balanced.
  struct Frame {
    int32_t far;
    double axis_d2;  // squared distance from q to the deferring split plane
  };
  Frame frames[40];
  int top = 0;
  int32_t node = 0;
  for (;;) {
    // Descend toward q, deferring far children with their plane distance.
    while (node < n) {
      const int32_t seg = heap[node];
      const int axis = top & 1;
      const double dx = qc[0] - midpoints_xy[2 * seg];
      const double dy = qc[1] - midpoints_xy[2 * seg + 1];
      ConsiderNearest(seg, dx * dx + dy * dy, &best);
      const double plane = qc[axis] - midpoints_xy[2 * seg + axis];
      const int32_t near_child = plane < 0.0 ? 2 * node + 1 : 2 * node + 2;
      const int32_t far_child = plane < 0.0 ? 2 * node + 2 : 2 * node + 1;
      RP_DCHECK_LT(top, 40);
      frames[top].far = far_child < n ? far_child : -1;
      frames[top].axis_d2 = plane * plane;
      ++top;
      node = near_child;
    }
    // Unwind to the deepest deferred subtree that can still contain a
    // winner. Ties are kept: a subtree exactly at the best distance may
    // hold a smaller id.
    node = n;
    while (top > 0) {
      Frame& f = frames[top - 1];
      if (f.far >= 0 && f.axis_d2 <= best.distance_squared) {
        node = f.far;   // lives at depth `top`, which is already correct
        f.far = -1;     // consumed; the frame stays until its level unwinds
        break;
      }
      --top;
    }
    if (node >= n) return best;
  }
}

NearestHit KdDescendSeed(const double* midpoints_xy, const int32_t* heap,
                         int32_t n, const Point& q) {
  NearestHit best;
  if (n <= 0) return best;
  const double qc[2] = {q.x, q.y};
  int32_t node = 0;
  int depth = 0;
  while (node < n) {
    const int32_t seg = heap[node];
    const double dx = qc[0] - midpoints_xy[2 * seg];
    const double dy = qc[1] - midpoints_xy[2 * seg + 1];
    ConsiderNearest(seg, dx * dx + dy * dy, &best);
    const int axis = depth & 1;
    node = qc[axis] < midpoints_xy[2 * seg + axis] ? 2 * node + 1
                                                   : 2 * node + 2;
    ++depth;
  }
  return best;
}

void KdRangeCountByPartition(const double* midpoints_xy, const int32_t* heap,
                             int32_t n, const BoundingBox& box,
                             const int32_t* labels,
                             std::vector<int64_t>* counts) {
  if (n <= 0) return;
  const double lo[2] = {box.min.x, box.min.y};
  const double hi[2] = {box.max.x, box.max.y};
  std::vector<KdSearchFrame> stack;
  stack.push_back({0, 0, 0.0});
  while (!stack.empty()) {
    const KdSearchFrame f = stack.back();
    stack.pop_back();
    const int32_t seg = heap[f.node];
    const int axis = f.depth & 1;
    const double mx = midpoints_xy[2 * seg];
    const double my = midpoints_xy[2 * seg + 1];
    if (mx >= lo[0] && mx <= hi[0] && my >= lo[1] && my <= hi[1]) {
      const int32_t label = labels[seg];
      RP_DCHECK_GE(label, 0);
      RP_DCHECK_LT(static_cast<size_t>(label), counts->size());
      ++(*counts)[static_cast<size_t>(label)];
    }
    const double split = midpoints_xy[2 * seg + axis];
    const int32_t left = 2 * f.node + 1;
    const int32_t right = 2 * f.node + 2;
    // Left subtree holds coordinates <= split, right holds >= split.
    if (left < n && lo[axis] <= split) stack.push_back({left, f.depth + 1, 0});
    if (right < n && hi[axis] >= split) {
      stack.push_back({right, f.depth + 1, 0});
    }
  }
}

// --- Uniform grid over segment bounding boxes -------------------------------

int32_t GridSpec::ColOf(double x) const {
  const double f = std::floor((x - min_x) / cell_w);
  if (!(f > 0.0)) return 0;  // also catches NaN from degenerate input
  if (f >= cols) return cols - 1;
  return static_cast<int32_t>(f);
}

int32_t GridSpec::RowOf(double y) const {
  const double f = std::floor((y - min_y) / cell_h);
  if (!(f > 0.0)) return 0;
  if (f >= rows) return rows - 1;
  return static_cast<int32_t>(f);
}

double GridSpec::CellDistanceSquared(int32_t col, int32_t row,
                                     const Point& q) const {
  const double cx0 = min_x + col * cell_w;
  const double cy0 = min_y + row * cell_h;
  const double dx = std::max({0.0, cx0 - q.x, q.x - (cx0 + cell_w)});
  const double dy = std::max({0.0, cy0 - q.y, q.y - (cy0 + cell_h)});
  return dx * dx + dy * dy;
}

GridSpec ChooseGridSpec(const BoundingBox& bounds, int32_t n,
                        double target_per_cell) {
  GridSpec spec;
  spec.min_x = bounds.min.x;
  spec.min_y = bounds.min.y;
  const double width = std::max(bounds.max.x - bounds.min.x, 0.0);
  const double height = std::max(bounds.max.y - bounds.min.y, 0.0);
  if (n <= 0 || width <= 0.0 || height <= 0.0) {
    // Empty or zero-area network: one cell with unit extent. Every query
    // clamps into it; no arithmetic divides by zero.
    spec.cols = 1;
    spec.rows = 1;
    spec.cell_w = std::max(width, 1.0);
    spec.cell_h = std::max(height, 1.0);
    return spec;
  }
  if (target_per_cell < 1.0) target_per_cell = 1.0;
  const double want_cells =
      std::clamp(static_cast<double>(n) / target_per_cell, 1.0,
                 4.0 * static_cast<double>(n) + 64.0);
  const double aspect = width / height;
  double cols = std::sqrt(want_cells * aspect);
  spec.cols = std::max<int32_t>(1, static_cast<int32_t>(std::lround(cols)));
  spec.rows = std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(want_cells / spec.cols)));
  spec.cell_w = width / spec.cols;
  spec.cell_h = height / spec.rows;
  return spec;
}

void BuildGridIndex(const SegmentGeometryView& view, const GridSpec& spec,
                    std::vector<int32_t>* starts,
                    std::vector<int32_t>* entries) {
  const int64_t num_cells = spec.NumCells();
  starts->assign(static_cast<size_t>(num_cells) + 1, 0);
  auto cell_range = [&](int32_t s, int32_t* c0, int32_t* c1, int32_t* r0,
                        int32_t* r1) {
    const Point a = view.SegmentA(s);
    const Point b = view.SegmentB(s);
    *c0 = spec.ColOf(std::min(a.x, b.x));
    *c1 = spec.ColOf(std::max(a.x, b.x));
    *r0 = spec.RowOf(std::min(a.y, b.y));
    *r1 = spec.RowOf(std::max(a.y, b.y));
  };
  // Pass 1: per-cell occupancy counts.
  for (int32_t s = 0; s < view.num_segments; ++s) {
    int32_t c0, c1, r0, r1;
    cell_range(s, &c0, &c1, &r0, &r1);
    for (int32_t r = r0; r <= r1; ++r) {
      for (int32_t c = c0; c <= c1; ++c) {
        ++(*starts)[static_cast<size_t>(r) * spec.cols + c + 1];
      }
    }
  }
  for (size_t i = 1; i < starts->size(); ++i) (*starts)[i] += (*starts)[i - 1];
  // Pass 2: fill. Ascending segment order per cell falls out of the scan
  // order, which is what keeps tie-breaks and scan order deterministic.
  entries->assign(static_cast<size_t>(starts->back()), 0);
  std::vector<int32_t> cursor(starts->begin(), starts->end() - 1);
  for (int32_t s = 0; s < view.num_segments; ++s) {
    int32_t c0, c1, r0, r1;
    cell_range(s, &c0, &c1, &r0, &r1);
    for (int32_t r = r0; r <= r1; ++r) {
      for (int32_t c = c0; c <= c1; ++c) {
        const size_t cell = static_cast<size_t>(r) * spec.cols + c;
        (*entries)[static_cast<size_t>(cursor[cell]++)] = s;
      }
    }
  }
}

NearestHit GridRefineNearest(const SegmentGeometryView& view,
                             const GridSpec& spec, const int32_t* starts,
                             const int32_t* entries, const Point& q,
                             NearestHit seed) {
  NearestHit best = seed;
  if (view.num_segments <= 0) return best;
  const int32_t qc = spec.ColOf(q.x);
  const int32_t qr = spec.RowOf(q.y);
  const double min_dim = std::min(spec.cell_w, spec.cell_h);
  const int32_t max_ring = std::max(spec.cols, spec.rows);
  // Distance from q to the start cell = distance from q to the whole grid
  // (the start cell contains the clamped query). Every cell is at least
  // this far, on top of its ring offset; folding it into the stop rule
  // keeps far-outside queries from marching rings across the entire grid.
  const double outside_d2 = spec.CellDistanceSquared(qc, qr, q);

  auto scan_cell = [&](int32_t c, int32_t r) {
    if (c < 0 || c >= spec.cols || r < 0 || r >= spec.rows) return;
    // Strict pruning only: a cell exactly at the best distance may hold an
    // equally-near segment with a smaller id (the documented tie-break).
    if (spec.CellDistanceSquared(c, r, q) > best.distance_squared) return;
    const size_t cell = static_cast<size_t>(r) * spec.cols + c;
    const int32_t end = starts[cell + 1];
    for (int32_t i = starts[cell]; i < end; ++i) {
      const int32_t s = entries[i];
      ConsiderNearest(
          s, PointSegmentDistanceSquared(q, view.SegmentA(s), view.SegmentB(s)),
          &best);
    }
  };

  for (int32_t ring = 0; ring <= max_ring; ++ring) {
    if (ring > 0) {
      // Any cell in ring `ring` is at least (ring-1) whole cells away from
      // the clamped query cell along some axis, so it contributes at least
      // ((ring-1)*min_dim)^2 on top of the query's distance to the grid
      // (per-axis: either q is inside the grid on that axis, or every step
      // moves further inward, so the squares add). Strictly beyond the
      // best => every later ring is too, and the scan is complete (ties
      // stay in play).
      const double lower = (ring - 1) * min_dim;
      if (outside_d2 + lower * lower > best.distance_squared) break;
    }
    if (ring == 0) {
      scan_cell(qc, qr);
      continue;
    }
    for (int32_t c = qc - ring; c <= qc + ring; ++c) {
      scan_cell(c, qr - ring);
      scan_cell(c, qr + ring);
    }
    for (int32_t r = qr - ring + 1; r <= qr + ring - 1; ++r) {
      scan_cell(qc - ring, r);
      scan_cell(qc + ring, r);
    }
  }
  return best;
}

}  // namespace roadpart
