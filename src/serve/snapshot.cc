#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/string_util.h"

namespace roadpart {
namespace {

constexpr char kMagic[8] = {'r', 'p', 's', 'n', 'a', 'p', '0', '1'};
constexpr uint32_t kEndianTag = 0x01020304u;
constexpr int64_t kMaxCount = int64_t(1) << 30;  // sanity cap on any count
constexpr double kGridTargetPerCell = 4.0;

/// On-disk header, memcpy-encoded at offset 0. Field order keeps every
/// member naturally aligned, so sizeof == 192 with no padding on any
/// supported ABI (static_assert'd below).
struct SnapshotHeader {
  char magic[8];
  uint32_t endian_tag;
  uint32_t reserved;
  int64_t num_intersections;
  int64_t num_segments;
  int64_t num_partitions;
  int64_t grid_cols;
  int64_t grid_rows;
  int64_t num_grid_entries;
  double min_x;
  double min_y;
  double max_x;
  double max_y;
  double cell_w;
  double cell_h;
  uint64_t source_fingerprint;
  uint64_t sections_fnv;
  uint64_t off_points;
  uint64_t off_endpoints;
  uint64_t off_midpoints;
  uint64_t off_kd;
  uint64_t off_grid_starts;
  uint64_t off_grid_entries;
  uint64_t off_labels;
  uint64_t total_size;
};
static_assert(sizeof(SnapshotHeader) == 192,
              "rpsnap v1 header layout must be exactly 192 bytes");

/// The unique section layout implied by the counts. Section order
/// (f64-sized sections before i32-sized ones is not required; what matters
/// is that every f64 section offset stays 8-aligned, which holds because
/// the header is 192 bytes and endpoint pairs are 8 bytes each).
struct Layout {
  uint64_t off_points;
  uint64_t off_endpoints;
  uint64_t off_midpoints;
  uint64_t off_kd;
  uint64_t off_grid_starts;
  uint64_t off_grid_entries;
  uint64_t off_labels;
  uint64_t total_size;  // includes the final '\n'
};

Layout ComputeLayout(int64_t ni, int64_t ns, int64_t cells, int64_t entries) {
  Layout l;
  l.off_points = sizeof(SnapshotHeader);
  l.off_endpoints = l.off_points + uint64_t(ni) * 2 * sizeof(double);
  l.off_midpoints = l.off_endpoints + uint64_t(ns) * 2 * sizeof(int32_t);
  l.off_kd = l.off_midpoints + uint64_t(ns) * 2 * sizeof(double);
  l.off_grid_starts = l.off_kd + uint64_t(ns) * sizeof(int32_t);
  l.off_grid_entries = l.off_grid_starts + uint64_t(cells + 1) * sizeof(int32_t);
  l.off_labels = l.off_grid_entries + uint64_t(entries) * sizeof(int32_t);
  l.total_size = l.off_labels + uint64_t(ns) * sizeof(int32_t) + 1;
  return l;
}

SnapshotHeader ReadHeader(const std::string& buffer) {
  SnapshotHeader h;
  RP_CHECK_GE(buffer.size(), sizeof(SnapshotHeader));
  std::memcpy(&h, buffer.data(), sizeof(h));
  return h;
}

Status CorruptField(const char* what) {
  return Status::Corruption(
      StrPrintf("rpsnap buffer: %s failed validation", what));
}

}  // namespace

uint64_t ComputeSnapshotFingerprint(const RoadNetwork& network,
                                    const std::vector<int>& labels) {
  uint64_t fnv = kFnv1a64Basis;
  const int64_t ni = network.num_intersections();
  const int64_t ns = network.num_segments();
  fnv = Fnv1a64(&ni, sizeof(ni), fnv);
  fnv = Fnv1a64(&ns, sizeof(ns), fnv);
  for (int i = 0; i < network.num_intersections(); ++i) {
    const Point& p = network.intersection(i).position;
    fnv = Fnv1a64(&p.x, sizeof(p.x), fnv);
    fnv = Fnv1a64(&p.y, sizeof(p.y), fnv);
  }
  for (int s = 0; s < network.num_segments(); ++s) {
    const int32_t ends[2] = {static_cast<int32_t>(network.segment(s).from),
                             static_cast<int32_t>(network.segment(s).to)};
    fnv = Fnv1a64(ends, sizeof(ends), fnv);
  }
  for (int label : labels) {
    const int32_t l32 = static_cast<int32_t>(label);
    fnv = Fnv1a64(&l32, sizeof(l32), fnv);
  }
  return fnv;
}

Result<Snapshot> Snapshot::Build(const RoadNetwork& network,
                                 const std::vector<int>& labels) {
  const int32_t ni = network.num_intersections();
  const int32_t ns = network.num_segments();
  if (static_cast<int64_t>(labels.size()) != ns) {
    return Status::InvalidArgument(StrPrintf(
        "snapshot labels/segment count mismatch: %zu labels for %d segments",
        labels.size(), ns));
  }
  int32_t num_partitions = 0;
  for (size_t s = 0; s < labels.size(); ++s) {
    if (labels[s] < 0 || labels[s] >= kMaxCount) {
      return Status::InvalidArgument(
          StrPrintf("snapshot label out of range: labels[%zu] = %d",
                    s, labels[s]));
    }
    num_partitions = std::max(num_partitions, labels[s] + 1);
  }

  // Flatten geometry.
  std::vector<double> points_xy(static_cast<size_t>(ni) * 2);
  for (int32_t i = 0; i < ni; ++i) {
    const Point& p = network.intersection(i).position;
    points_xy[2 * i] = p.x;
    points_xy[2 * i + 1] = p.y;
  }
  std::vector<int32_t> endpoints(static_cast<size_t>(ns) * 2);
  std::vector<double> midpoints_xy(static_cast<size_t>(ns) * 2);
  for (int32_t s = 0; s < ns; ++s) {
    endpoints[2 * s] = network.segment(s).from;
    endpoints[2 * s + 1] = network.segment(s).to;
    const Point mid = SegmentMidpoint(network, s);
    midpoints_xy[2 * s] = mid.x;
    midpoints_xy[2 * s + 1] = mid.y;
  }
  std::vector<int32_t> labels32(labels.begin(), labels.end());

  // Indexes. Both are deterministic functions of the geometry alone.
  std::vector<int32_t> kd = BuildKdTree(midpoints_xy.data(), ns);
  SegmentGeometryView view{points_xy.data(), endpoints.data(),
                           midpoints_xy.data(), ns};
  const BoundingBox bounds = network.Bounds();
  const GridSpec grid = ChooseGridSpec(bounds, ns, kGridTargetPerCell);
  std::vector<int32_t> grid_starts;
  std::vector<int32_t> grid_entries;
  BuildGridIndex(view, grid, &grid_starts, &grid_entries);

  const Layout layout =
      ComputeLayout(ni, ns, grid.NumCells(),
                    static_cast<int64_t>(grid_entries.size()));
  std::string buffer(layout.total_size, '\0');
  buffer.back() = '\n';
  auto put = [&buffer](uint64_t off, const void* data, size_t bytes) {
    if (bytes > 0) std::memcpy(&buffer[off], data, bytes);
  };
  put(layout.off_points, points_xy.data(), points_xy.size() * sizeof(double));
  put(layout.off_endpoints, endpoints.data(),
      endpoints.size() * sizeof(int32_t));
  put(layout.off_midpoints, midpoints_xy.data(),
      midpoints_xy.size() * sizeof(double));
  put(layout.off_kd, kd.data(), kd.size() * sizeof(int32_t));
  put(layout.off_grid_starts, grid_starts.data(),
      grid_starts.size() * sizeof(int32_t));
  put(layout.off_grid_entries, grid_entries.data(),
      grid_entries.size() * sizeof(int32_t));
  put(layout.off_labels, labels32.data(), labels32.size() * sizeof(int32_t));

  SnapshotHeader h;
  std::memset(&h, 0, sizeof(h));
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.endian_tag = kEndianTag;
  h.num_intersections = ni;
  h.num_segments = ns;
  h.num_partitions = num_partitions;
  h.grid_cols = grid.cols;
  h.grid_rows = grid.rows;
  h.num_grid_entries = static_cast<int64_t>(grid_entries.size());
  h.min_x = grid.min_x;
  h.min_y = grid.min_y;
  h.max_x = bounds.max.x;
  h.max_y = bounds.max.y;
  h.cell_w = grid.cell_w;
  h.cell_h = grid.cell_h;
  h.source_fingerprint = ComputeSnapshotFingerprint(network, labels);
  h.sections_fnv = Fnv1a64(buffer.data() + sizeof(SnapshotHeader),
                           layout.total_size - sizeof(SnapshotHeader) - 1);
  h.off_points = layout.off_points;
  h.off_endpoints = layout.off_endpoints;
  h.off_midpoints = layout.off_midpoints;
  h.off_kd = layout.off_kd;
  h.off_grid_starts = layout.off_grid_starts;
  h.off_grid_entries = layout.off_grid_entries;
  h.off_labels = layout.off_labels;
  h.total_size = layout.total_size;
  put(0, &h, sizeof(h));

  return Snapshot(std::move(buffer));
}

Result<Snapshot> Snapshot::FromBuffer(std::string buffer) {
  if (buffer.size() < sizeof(SnapshotHeader) + 1) {
    return Status::Corruption(
        StrPrintf("rpsnap buffer: %zu bytes is shorter than the %zu-byte "
                  "header",
                  buffer.size(), sizeof(SnapshotHeader) + 1));
  }
  // std::string buffers this large are heap allocations aligned to
  // max_align_t; the section views depend on it.
  RP_CHECK_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % alignof(double),
              uintptr_t{0});
  const SnapshotHeader h = ReadHeader(buffer);
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return CorruptField("magic/version tag");
  }
  if (h.endian_tag != kEndianTag) return CorruptField("endianness tag");
  if (h.reserved != 0) return CorruptField("reserved header field");
  if (h.num_intersections < 0 || h.num_intersections > kMaxCount ||
      h.num_segments < 0 || h.num_segments > kMaxCount ||
      h.num_partitions < 0 || h.num_partitions > kMaxCount ||
      h.grid_cols < 1 || h.grid_cols > kMaxCount || h.grid_rows < 1 ||
      h.grid_rows > kMaxCount || h.num_grid_entries < 0 ||
      h.num_grid_entries > kMaxCount) {
    return CorruptField("section counts");
  }
  if ((h.num_segments == 0) != (h.num_partitions == 0)) {
    return CorruptField("partition count vs segment count");
  }
  const int64_t cells = h.grid_cols * h.grid_rows;
  if (cells > kMaxCount) return CorruptField("grid cell count");
  const Layout layout = ComputeLayout(h.num_intersections, h.num_segments,
                                      cells, h.num_grid_entries);
  if (h.off_points != layout.off_points ||
      h.off_endpoints != layout.off_endpoints ||
      h.off_midpoints != layout.off_midpoints || h.off_kd != layout.off_kd ||
      h.off_grid_starts != layout.off_grid_starts ||
      h.off_grid_entries != layout.off_grid_entries ||
      h.off_labels != layout.off_labels ||
      h.total_size != layout.total_size) {
    return CorruptField("section offsets");
  }
  if (buffer.size() != layout.total_size) {
    return Status::Corruption(
        StrPrintf("rpsnap buffer: %zu bytes but header promises %llu",
                  buffer.size(),
                  static_cast<unsigned long long>(layout.total_size)));
  }
  if (buffer.back() != '\n') return CorruptField("trailing newline byte");
  if (!(std::isfinite(h.min_x) && std::isfinite(h.min_y) &&
        std::isfinite(h.cell_w) && std::isfinite(h.cell_h) &&
        h.cell_w > 0.0 && h.cell_h > 0.0)) {
    return CorruptField("grid geometry");
  }
  const uint64_t fnv =
      Fnv1a64(buffer.data() + sizeof(SnapshotHeader),
              layout.total_size - sizeof(SnapshotHeader) - 1);
  if (fnv != h.sections_fnv) {
    return Status::Corruption(
        StrPrintf("rpsnap buffer: section checksum mismatch (stored %s, "
                  "computed %s)",
                  Uint64ToHex(h.sections_fnv).c_str(),
                  Uint64ToHex(fnv).c_str()));
  }

  // Structural validation of the sections themselves.
  Snapshot snap(std::move(buffer));
  const int32_t ni = static_cast<int32_t>(h.num_intersections);
  const int32_t ns = static_cast<int32_t>(h.num_segments);
  const int32_t np = static_cast<int32_t>(h.num_partitions);
  const int32_t* endpoints = snap.Endpoints();
  const int32_t* labels = snap.Labels();
  for (int32_t s = 0; s < ns; ++s) {
    if (endpoints[2 * s] < 0 || endpoints[2 * s] >= ni ||
        endpoints[2 * s + 1] < 0 || endpoints[2 * s + 1] >= ni) {
      return CorruptField("segment endpoint ids");
    }
    if (labels[s] < 0 || labels[s] >= np) {
      return CorruptField("partition labels");
    }
  }
  const int32_t* kd = snap.KdHeap();
  std::vector<uint8_t> seen(static_cast<size_t>(ns), 0);
  for (int32_t k = 0; k < ns; ++k) {
    if (kd[k] < 0 || kd[k] >= ns || seen[static_cast<size_t>(kd[k])]) {
      return CorruptField("KD-tree permutation");
    }
    seen[static_cast<size_t>(kd[k])] = 1;
  }
  const int32_t* starts = snap.GridStarts();
  if (starts[0] != 0 ||
      starts[cells] != static_cast<int32_t>(h.num_grid_entries)) {
    return CorruptField("grid CSR bounds");
  }
  for (int64_t c = 0; c < cells; ++c) {
    if (starts[c] > starts[c + 1]) return CorruptField("grid CSR monotonicity");
  }
  const int32_t* entries = snap.GridEntries();
  for (int64_t e = 0; e < h.num_grid_entries; ++e) {
    if (entries[e] < 0 || entries[e] >= ns) {
      return CorruptField("grid entry segment ids");
    }
  }
  return snap;
}

Result<Snapshot> Snapshot::Load(const std::string& path,
                                const RetryOptions& retry) {
  ArtifactReadOptions options;
  options.expected_format = "rpsnap";
  options.require_envelope = true;
  options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, options));
  if (RP_FAULT_FIRES(FaultSite::kSnapshotShortRead)) {
    // A reader that raced a non-atomic copy: the tail of the buffer is gone.
    payload.resize(payload.size() - payload.size() / 4);
  }
  RP_ASSIGN_OR_RETURN(Snapshot snap, FromBuffer(std::move(payload)));
  if (RP_FAULT_FIRES(FaultSite::kSnapshotStaleFingerprint)) {
    return Status::Corruption(StrPrintf(
        "rpsnap %s: source fingerprint %s does not match the serving "
        "network (stale snapshot)",
        path.c_str(), Uint64ToHex(snap.source_fingerprint()).c_str()));
  }
  return snap;
}

Status Snapshot::Save(const std::string& path,
                      const RetryOptions& retry) const {
  // buffer_ already ends in '\n', so WriteArtifact checksums it unchanged
  // and Load round-trips byte-identically.
  return WriteArtifact(path, "rpsnap", 1, buffer_, retry);
}

// --- Typed views ------------------------------------------------------------

Snapshot::Snapshot(std::string buffer) : buffer_(std::move(buffer)) {
  const SnapshotHeader h = ReadHeader(buffer_);
  decoded_.num_intersections = h.num_intersections;
  decoded_.num_segments = h.num_segments;
  decoded_.num_partitions = h.num_partitions;
  decoded_.source_fingerprint = h.source_fingerprint;
  decoded_.off_points = h.off_points;
  decoded_.off_endpoints = h.off_endpoints;
  decoded_.off_midpoints = h.off_midpoints;
  decoded_.off_kd = h.off_kd;
  decoded_.off_grid_starts = h.off_grid_starts;
  decoded_.off_grid_entries = h.off_grid_entries;
  decoded_.off_labels = h.off_labels;
  decoded_.grid.cols = static_cast<int32_t>(h.grid_cols);
  decoded_.grid.rows = static_cast<int32_t>(h.grid_rows);
  decoded_.grid.min_x = h.min_x;
  decoded_.grid.min_y = h.min_y;
  decoded_.grid.cell_w = h.cell_w;
  decoded_.grid.cell_h = h.cell_h;
}

#define RP_SNAPSHOT_SECTION_VIEW(type, field) \
  reinterpret_cast<const type*>(buffer_.data() + decoded_.field)

const double* Snapshot::PointsXY() const {
  return RP_SNAPSHOT_SECTION_VIEW(double, off_points);
}
const int32_t* Snapshot::Endpoints() const {
  return RP_SNAPSHOT_SECTION_VIEW(int32_t, off_endpoints);
}
const double* Snapshot::MidpointsXY() const {
  return RP_SNAPSHOT_SECTION_VIEW(double, off_midpoints);
}
const int32_t* Snapshot::KdHeap() const {
  return RP_SNAPSHOT_SECTION_VIEW(int32_t, off_kd);
}
const int32_t* Snapshot::GridStarts() const {
  return RP_SNAPSHOT_SECTION_VIEW(int32_t, off_grid_starts);
}
const int32_t* Snapshot::GridEntries() const {
  return RP_SNAPSHOT_SECTION_VIEW(int32_t, off_grid_entries);
}
const int32_t* Snapshot::Labels() const {
  return RP_SNAPSHOT_SECTION_VIEW(int32_t, off_labels);
}

GridSpec Snapshot::Grid() const { return decoded_.grid; }

SegmentGeometryView Snapshot::Geometry() const {
  SegmentGeometryView view;
  view.points_xy = RP_SNAPSHOT_SECTION_VIEW(double, off_points);
  view.endpoints = RP_SNAPSHOT_SECTION_VIEW(int32_t, off_endpoints);
  view.midpoints_xy = RP_SNAPSHOT_SECTION_VIEW(double, off_midpoints);
  view.num_segments = static_cast<int32_t>(decoded_.num_segments);
  return view;
}

#undef RP_SNAPSHOT_SECTION_VIEW

int32_t Snapshot::num_intersections() const {
  return static_cast<int32_t>(decoded_.num_intersections);
}
int32_t Snapshot::num_segments() const {
  return static_cast<int32_t>(decoded_.num_segments);
}
int32_t Snapshot::num_partitions() const {
  return static_cast<int32_t>(decoded_.num_partitions);
}
uint64_t Snapshot::source_fingerprint() const {
  return decoded_.source_fingerprint;
}
int32_t Snapshot::partition_of_segment(int32_t segment_id) const {
  RP_CHECK_GE(segment_id, 0);
  RP_CHECK_LT(segment_id, num_segments());
  return Labels()[segment_id];
}

PointAnswer Snapshot::NearestSegment(const Point& q) const {
  RP_DCHECK(std::isfinite(q.x) && std::isfinite(q.y));
  const int32_t ns = static_cast<int32_t>(decoded_.num_segments);
  PointAnswer answer;
  if (ns == 0) return answer;
  const SegmentGeometryView view = Geometry();
  const GridSpec spec = Grid();
  const int32_t* starts = GridStarts();
  const int32_t* entries = GridEntries();
  // Seed the ring scan with an upper bound; exactness never depends on the
  // seed — it only bounds how far GridRefineNearest must march. The query's
  // own grid cell is one contiguous read and almost always non-empty, so
  // try it first; when the local neighbourhood is empty (sparse regions,
  // queries far outside the network), fall back to a greedy KD descent,
  // which finds a near-optimal midpoint in O(log n) regardless of where the
  // segments are.
  NearestHit seed;
  const size_t cell = static_cast<size_t>(spec.RowOf(q.y)) * spec.cols +
                      spec.ColOf(q.x);
  for (int32_t i = starts[cell]; i < starts[cell + 1]; ++i) {
    const int32_t s = entries[i];
    ConsiderNearest(
        s, PointSegmentDistanceSquared(q, view.SegmentA(s), view.SegmentB(s)),
        &seed);
  }
  if (seed.segment_id < 0) {
    const NearestHit kd_hit = KdDescendSeed(view.midpoints_xy, KdHeap(), ns, q);
    ConsiderNearest(
        kd_hit.segment_id,
        PointSegmentDistanceSquared(q, view.SegmentA(kd_hit.segment_id),
                                    view.SegmentB(kd_hit.segment_id)),
        &seed);
  }
  const NearestHit best = GridRefineNearest(view, spec, starts, entries, q,
                                            seed);
  answer.segment_id = best.segment_id;
  answer.partition_id = Labels()[best.segment_id];
  answer.distance = std::sqrt(best.distance_squared);
  return answer;
}

std::vector<int64_t> Snapshot::CountByPartition(const BoundingBox& box) const {
  std::vector<int64_t> counts(static_cast<size_t>(decoded_.num_partitions), 0);
  KdRangeCountByPartition(MidpointsXY(), KdHeap(),
                          static_cast<int32_t>(decoded_.num_segments), box,
                          Labels(), &counts);
  return counts;
}

}  // namespace roadpart
