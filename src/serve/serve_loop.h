#ifndef ROADPART_SERVE_SERVE_LOOP_H_
#define ROADPART_SERVE_SERVE_LOOP_H_

/// Batched query loop shared by the rp_serve binary, the serving runtime
/// (serve/runtime.h) and the benches.
///
/// Query text format, one query per line ('#' starts a comment; blank lines
/// are skipped):
///
///   point <x> <y>                      nearest segment + its partition
///   range <minx> <miny> <maxx> <maxy>  per-partition segment counts in box
///
/// A `range` box must be well formed: minx <= maxx and miny <= maxy (the
/// bounds are closed, so a degenerate box with minx == maxx is legal and
/// means the vertical line x == minx). An inverted box is a malformed
/// query, NOT an empty result — silently answering `range 0 ...` would hide
/// a caller that swapped its coordinates, so it is rejected under the
/// strict policy and answered `error <line> inverted-box` under isolate.
///
/// Answer text, one line per query, in INPUT ORDER regardless of thread
/// count:
///
///   point <segment_id> <partition_id> <distance>    (-1 -1 -1 on a
///                                                    segmentless network)
///   range <total> <count_p0> <count_p1> ...
///   error <line> <reason-code>     (isolate policy only: malformed line)
///   shed <line> <reason-code>      (admission control / deadline refusal)
///
/// `<line>` is the 1-based input line (offset by first_line_number so an
/// enclosing session can report script-global line numbers) and
/// `<reason-code>` is a stable kebab-case token:
///
///   error reasons: bad-verb, bad-arity, bad-coordinate, inverted-box
///   shed reasons:  queue-full (query budget), byte-budget (byte budget),
///                  deadline (per-batch deadline expired)
///
/// Distances print with %.17g so answers round-trip doubles exactly and two
/// runs are byte-comparable. Parallelism: queries are cut into fixed-size
/// batches, each batch formats into its own buffer under ParallelForTasks
/// (disjoint slot writes), and buffers are joined serially — output is
/// byte-identical for every --threads value. Parsing, admission and the
/// deadline check all run in the serial phase, so which lines error or shed
/// is a pure function of the input text and options, never of the thread
/// count (the wall-clock deadline is checked once per call at the serial
/// boundary, PR-3 style; the kServeQueryTimeout fault site makes expiry
/// deterministic in tests).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/snapshot.h"

namespace roadpart {

/// What ServeQueries does with a line it cannot parse (or an inverted
/// range box).
enum class MalformedQueryPolicy {
  /// The whole call fails with a typed InvalidArgument naming the 1-based
  /// line — the historical batch-tool behavior, right for offline jobs
  /// where a malformed file means the producer is broken.
  kStrict,
  /// The bad line is answered `error <line> <reason-code>` in place and
  /// every other query is served normally — the serving-runtime default,
  /// where one corrupt client line must not kill a million-query batch.
  kIsolate,
};

struct ServeOptions {
  /// Worker threads for the batched answer loop; 0 = process default.
  int num_threads = 0;
  /// Queries per batch (one ParallelForTasks unit). The default amortizes
  /// dispatch overhead while still fanning out for large query files.
  int batch_size = 4096;
  /// Malformed-line policy. Strict by default so existing batch callers
  /// keep their behavior; the serving runtime flips this to isolate.
  MalformedQueryPolicy on_malformed = MalformedQueryPolicy::kStrict;
  /// Admission control: at most this many query lines are admitted per
  /// call (0 = unbounded). Lines beyond the budget are answered
  /// `shed <line> queue-full` instead of growing the in-flight set without
  /// bound. Admission happens in input order in the serial phase, so the
  /// admitted set is deterministic.
  int64_t max_inflight_queries = 0;
  /// Admission control: at most this many bytes of query text are admitted
  /// per call (0 = unbounded). A line that would overflow the remaining
  /// byte budget is answered `shed <line> byte-budget`; later, smaller
  /// lines may still be admitted (greedy in input order).
  int64_t max_inflight_bytes = 0;
  /// Per-batch deadline in seconds, measured from call entry (0 = none).
  /// Checked once at the serial boundary between parse/admission and the
  /// parallel dispatch — never inside the fan-out, PR-3 style. On expiry,
  /// strict fails the call DeadlineExceeded; isolate answers every
  /// *admitted* query line `shed <line> deadline` (error/shed lines keep
  /// their more specific diagnosis).
  double deadline_seconds = 0.0;
  /// 1-based line number of the first line of `queries` within an
  /// enclosing stream. Error/shed answers and strict error messages name
  /// first_line_number + (local line - 1), so a session runtime flushing
  /// windows of a larger script reports script-global line numbers.
  size_t first_line_number = 1;
};

/// Per-call counters, filled from the serial admission phase so they are
/// exact and thread-count-invariant.
struct ServeBatchStats {
  int64_t answered_point = 0;  ///< `point` answers emitted
  int64_t answered_range = 0;  ///< `range` answers emitted
  int64_t errored = 0;         ///< `error` answers (isolate policy)
  int64_t shed = 0;            ///< `shed` answers (admission / deadline)
};

/// Parses `queries` and appends one answer line per query to `*output`.
/// Under the strict policy malformed input is a typed InvalidArgument
/// naming the line; under isolate it becomes an `error` answer line.
/// `stats`, when non-null, receives this call's exact counters.
Status ServeQueries(const Snapshot& snapshot, std::string_view queries,
                    const ServeOptions& options, std::string* output,
                    ServeBatchStats* stats = nullptr);

/// ServeQueries over the contents of `query_path` ("-" reads stdin is the
/// CLI's job — this helper only reads real files).
Result<std::string> ServeQueryFile(const Snapshot& snapshot,
                                   const std::string& query_path,
                                   const ServeOptions& options);

}  // namespace roadpart

#endif  // ROADPART_SERVE_SERVE_LOOP_H_
