#ifndef ROADPART_SERVE_SERVE_LOOP_H_
#define ROADPART_SERVE_SERVE_LOOP_H_

/// Batched query loop shared by the rp_serve binary and the benches.
///
/// Query text format, one query per line ('#' starts a comment; blank lines
/// are skipped):
///
///   point <x> <y>                      nearest segment + its partition
///   range <minx> <miny> <maxx> <maxy>  per-partition segment counts in box
///
/// Answer text, one line per query, in INPUT ORDER regardless of thread
/// count:
///
///   point <segment_id> <partition_id> <distance>    (-1 -1 -1 on a
///                                                    segmentless network)
///   range <total> <count_p0> <count_p1> ...
///
/// Distances print with %.17g so answers round-trip doubles exactly and two
/// runs are byte-comparable. Parallelism: queries are cut into fixed-size
/// batches, each batch formats into its own buffer under ParallelForTasks
/// (disjoint slot writes), and buffers are joined serially — output is
/// byte-identical for every --threads value.

#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/snapshot.h"

namespace roadpart {

struct ServeOptions {
  /// Worker threads for the batched answer loop; 0 = process default.
  int num_threads = 0;
  /// Queries per batch (one ParallelForTasks unit). The default amortizes
  /// dispatch overhead while still fanning out for large query files.
  int batch_size = 4096;
};

/// Parses `queries` and appends one answer line per query to `*output`.
/// Malformed input is a typed InvalidArgument naming the 1-based line.
Status ServeQueries(const Snapshot& snapshot, std::string_view queries,
                    const ServeOptions& options, std::string* output);

/// ServeQueries over the contents of `query_path` ("-" reads stdin is the
/// CLI's job — this helper only reads real files).
Result<std::string> ServeQueryFile(const Snapshot& snapshot,
                                   const std::string& query_path,
                                   const ServeOptions& options);

}  // namespace roadpart

#endif  // ROADPART_SERVE_SERVE_LOOP_H_
