#ifndef ROADPART_SERVE_SNAPSHOT_H_
#define ROADPART_SERVE_SNAPSHOT_H_

/// Immutable partition-serving snapshot (`rpsnap` format).
///
/// A snapshot freezes everything the read path needs — geometry, the KD-tree
/// permutation, the grid index, and the per-segment partition labels — into
/// ONE relocatable byte buffer. "Relocatable" means the buffer contains only
/// section *offsets* (no pointers), so it can be memcpy'd, written to disk,
/// read back anywhere, and served from directly without a deserialization
/// pass: accessors reinterpret the section bytes in place.
///
/// Layout (rpsnap v1, little-endian, all sections 8-byte aligned relative to
/// offset 0; integer fields memcpy-encoded):
///
///   header (192 bytes)
///     magic "rpsnap01" · endian tag 0x01020304 · counts (intersections,
///     segments, partitions, grid cols/rows/entries) · grid geometry
///     (min_x/min_y/max_x/max_y, cell_w/cell_h) · source_fingerprint ·
///     sections_fnv · seven section offsets · total_size
///   points        num_intersections x {f64 x, f64 y}
///   endpoints     num_segments x {i32 from, i32 to}
///   midpoints     num_segments x {f64 x, f64 y}
///   kd heap       num_segments x i32 (left-balanced permutation)
///   grid starts   (cols*rows + 1) x i32 (CSR offsets)
///   grid entries  num_grid_entries x i32 (ascending segment ids per cell)
///   labels        num_segments x i32 (partition id per segment)
///   '\n'          final byte, so durable_io's envelope appends nothing
///
/// Versioning rules: the magic carries the version ("rpsnap01"); any layout
/// change bumps it and old readers reject the file as corrupt rather than
/// misread it. The durable_io envelope independently records format "rpsnap"
/// version 1 and checksums the whole buffer; `sections_fnv` additionally
/// checksums the bytes after the header so header-only tampering and
/// section tampering are distinguishable in error messages.
///
/// `source_fingerprint` hashes the network geometry and labels the snapshot
/// was built from; Load re-derives nothing, but callers holding the source
/// can compare fingerprints to detect a stale snapshot.

#include <cstdint>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "common/status.h"
#include "network/geometry.h"
#include "network/road_network.h"
#include "serve/spatial_index.h"

namespace roadpart {

/// Answer to a point lookup: the nearest segment, its partition, and the
/// (non-squared) distance. A miss — only possible on a segmentless network —
/// is {-1, -1, -1.0}.
struct PointAnswer {
  int32_t segment_id = -1;
  int32_t partition_id = -1;
  double distance = -1.0;
};

/// FNV-1a-64 over the geometry and labels a snapshot serves: intersection
/// coordinates, segment endpoints, and partition labels, in index order.
/// Build() stores it; callers compare to detect stale snapshots.
uint64_t ComputeSnapshotFingerprint(const RoadNetwork& network,
                                    const std::vector<int>& labels);

/// The immutable serving snapshot. Move-only wrapper around the single
/// buffer; all queries are const, lock-free, and deterministic, so one
/// snapshot may be shared across any number of threads.
class Snapshot {
 public:
  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Builds a snapshot from a partitioned network. `labels[s]` is the
  /// partition of segment s; size must equal network.num_segments() and
  /// labels must be dense non-negative ids. Empty and zero-area networks
  /// produce valid (trivial) snapshots.
  static Result<Snapshot> Build(const RoadNetwork& network,
                                const std::vector<int>& labels);

  /// Adopts a buffer produced by Build()+buffer() or read from disk,
  /// validating structure exhaustively (magic, offsets, section sizes, id
  /// ranges, KD permutation, CSR monotonicity, section checksum). Any
  /// violation is a typed kCorruption.
  static Result<Snapshot> FromBuffer(std::string buffer);

  /// Reads `path` through the durable_io envelope (format "rpsnap") and
  /// validates via FromBuffer. Fault sites: kSnapshotShortRead truncates the
  /// payload before validation; kSnapshotStaleFingerprint perturbs the
  /// stored fingerprint check.
  static Result<Snapshot> Load(const std::string& path,
                               const RetryOptions& retry = {});

  /// Writes the buffer through WriteArtifact (atomic, checksummed).
  Status Save(const std::string& path, const RetryOptions& retry = {}) const;

  /// The underlying relocatable buffer (for byte-identity tests and
  /// transport). Always ends in '\n'.
  const std::string& buffer() const { return buffer_; }

  int32_t num_intersections() const;
  int32_t num_segments() const;
  int32_t num_partitions() const;
  uint64_t source_fingerprint() const;
  int32_t partition_of_segment(int32_t segment_id) const;

  /// Nearest segment to `q` (KD seed + grid refinement; exactly the
  /// brute-force answer under the smallest-id tie-break). `q` must be
  /// finite. O(log n) typical.
  PointAnswer NearestSegment(const Point& q) const;

  /// Per-partition counts of segments whose midpoint lies in `box` (closed
  /// bounds). Vector has num_partitions() slots.
  std::vector<int64_t> CountByPartition(const BoundingBox& box) const;

 private:
  // Decodes the header into `decoded_`; callers (Build, FromBuffer) hand it
  // an already-validated buffer.
  explicit Snapshot(std::string buffer);

  // Hot-path cache of the decoded header: counts, section offsets and grid
  // geometry, filled once at construction so per-query code never re-decodes
  // the 192-byte header. Plain scalars only, so moves copy it safely.
  struct DecodedHeader {
    int64_t num_intersections = 0;
    int64_t num_segments = 0;
    int64_t num_partitions = 0;
    uint64_t source_fingerprint = 0;
    uint64_t off_points = 0;
    uint64_t off_endpoints = 0;
    uint64_t off_midpoints = 0;
    uint64_t off_kd = 0;
    uint64_t off_grid_starts = 0;
    uint64_t off_grid_entries = 0;
    uint64_t off_labels = 0;
    GridSpec grid;
  };

  // Typed views into buffer_ (computed from cached offsets; the buffer owns
  // all storage, so moves stay valid).
  const double* PointsXY() const;
  const int32_t* Endpoints() const;
  const double* MidpointsXY() const;
  const int32_t* KdHeap() const;
  const int32_t* GridStarts() const;
  const int32_t* GridEntries() const;
  const int32_t* Labels() const;
  GridSpec Grid() const;
  SegmentGeometryView Geometry() const;

  std::string buffer_;
  DecodedHeader decoded_;
};

}  // namespace roadpart

#endif  // ROADPART_SERVE_SNAPSHOT_H_
