#include "serve/runtime.h"

#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace roadpart {
namespace {

/// Stable kebab-case token for a status code, used in `reload failed ...`
/// answer lines so session output stays grep-able and byte-stable while
/// status *messages* remain free to improve.
const char* StatusCodeKebab(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kIOError: return "io-error";
    case StatusCode::kNotConverged: return "not-converged";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kCorruption: return "corruption";
  }
  return "internal";
}

/// True when `window` contains at least one non-blank, non-comment line.
/// Empty windows are skipped entirely so they neither trip the no-snapshot
/// precondition nor consume per-call fault-injection budgets.
bool HasQueryLine(std::string_view window) {
  size_t pos = 0;
  while (pos <= window.size()) {
    const size_t eol = window.find('\n', pos);
    const size_t end = eol == std::string_view::npos ? window.size() : eol;
    if (pos == window.size() && eol == std::string_view::npos) break;
    std::string_view line = Trim(window.substr(pos, end - pos));
    if (!line.empty() && line[0] != '#') return true;
    pos = end + 1;
  }
  return false;
}

}  // namespace

// --- SnapshotManager --------------------------------------------------------

SnapshotManager::SnapshotManager(RetryOptions retry)
    : retry_(std::move(retry)) {}

Status SnapshotManager::Reload(const std::string& path) {
  // The candidate is loaded and validated end to end (envelope checksum,
  // header, section structure — Snapshot::Load) with NO lock held and NO
  // effect on the serving snapshot. Only a candidate that survived every
  // check reaches the swap below.
  Result<Snapshot> candidate = Snapshot::Load(path, retry_);
  Status status = candidate.ok() ? Status::OK() : candidate.status();
  if (status.ok() && RP_FAULT_FIRES(FaultSite::kSnapshotSwapCorruption)) {
    // A publisher whose artifact tore between validation and adoption; the
    // manager must treat it exactly like any other corrupt candidate.
    status = Status::Corruption(
        StrPrintf("rpsnap %s: candidate snapshot declared corrupt at swap "
                  "time (injected)",
                  path.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!status.ok()) {
    ++diag_.reloads_failed;
    diag_.last_error = status.ToString();
    return status;
  }
  // The swap is one shared_ptr assignment: readers that already hold the
  // old snapshot keep it alive until their batch finishes; readers that
  // call Current() from here on see the new one. Never a torn state.
  current_ = std::make_shared<const Snapshot>(std::move(candidate).value());
  ++diag_.version;
  ++diag_.reloads_ok;
  return Status::OK();
}

std::shared_ptr<const Snapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

SnapshotManagerDiagnostics SnapshotManager::diagnostics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return diag_;
}

// --- ServeRuntime -----------------------------------------------------------

ServeRuntime::ServeRuntime(ServeRuntimeOptions options)
    : options_(std::move(options)), manager_(options_.reload_retry) {}

Status ServeRuntime::LoadSnapshot(const std::string& path) {
  return manager_.Reload(path);
}

Status ServeRuntime::ServeBatch(std::string_view queries,
                                std::string* output) {
  return FlushWindow(queries, /*first_line=*/1, output);
}

Status ServeRuntime::FlushWindow(std::string_view window, size_t first_line,
                                 std::string* output) {
  if (window.empty() || !HasQueryLine(window)) return Status::OK();
  // One owning reference for the whole window: a concurrent (or
  // interleaved) reload can publish a new snapshot, but every query in
  // this window is answered by the snapshot captured here — a batch can
  // never observe half a swap.
  std::shared_ptr<const Snapshot> snapshot = manager_.Current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        StrPrintf("serve runtime has no snapshot loaded but the window "
                  "starting at line %zu contains queries",
                  first_line));
  }
  ServeOptions serve = options_.serve;
  serve.first_line_number = first_line;
  ServeBatchStats batch;
  RP_RETURN_IF_ERROR(ServeQueries(*snapshot, window, serve, output, &batch));
  stats_.served += batch.answered_point + batch.answered_range;
  stats_.errored += batch.errored;
  stats_.shed += batch.shed;
  return Status::OK();
}

Status ServeRuntime::HandleControl(std::string_view line, size_t line_number,
                                   std::string* output) {
  const std::vector<std::string> raw = Split(line, ' ');
  std::vector<std::string_view> tokens;
  for (const std::string& t : raw) {
    std::string_view v = Trim(t);
    if (!v.empty()) tokens.push_back(v);
  }
  const bool isolate =
      options_.serve.on_malformed == MalformedQueryPolicy::kIsolate;
  auto malformed = [&](const char* detail) -> Status {
    if (isolate) {
      output->append(StrPrintf("error %zu bad-control\n", line_number));
      ++stats_.errored;
      return Status::OK();
    }
    return Status::InvalidArgument(
        StrPrintf("session line %zu: %s", line_number, detail));
  };
  if (tokens[0] == "!reload") {
    if (tokens.size() != 2) {
      return malformed("'!reload' takes exactly one snapshot path");
    }
    const Status status = manager_.Reload(std::string(tokens[1]));
    if (status.ok()) {
      const std::shared_ptr<const Snapshot> snapshot = manager_.Current();
      output->append(StrPrintf(
          "reload ok version=%lld segments=%d\n",
          static_cast<long long>(manager_.diagnostics().version),
          snapshot->num_segments()));
    } else {
      // The failure is an ANSWER, not a session abort: the old snapshot
      // keeps serving and the script continues.
      output->append(
          StrPrintf("reload failed %s\n", StatusCodeKebab(status.code())));
    }
    return Status::OK();
  }
  if (tokens[0] == "!stats") {
    if (tokens.size() != 1) return malformed("'!stats' takes no operands");
    const SnapshotManagerDiagnostics diag = manager_.diagnostics();
    output->append(StrPrintf(
        "stats version=%lld served=%lld errored=%lld shed=%lld "
        "reloads_ok=%lld reloads_failed=%lld\n",
        static_cast<long long>(diag.version),
        static_cast<long long>(stats_.served),
        static_cast<long long>(stats_.errored),
        static_cast<long long>(stats_.shed),
        static_cast<long long>(diag.reloads_ok),
        static_cast<long long>(diag.reloads_failed)));
    return Status::OK();
  }
  if (tokens[0] == "!quiesce") {
    if (tokens.size() != 1) return malformed("'!quiesce' takes no operands");
    // The pending window was flushed before this control executed and
    // every batch is synchronous, so quiescence is immediate.
    output->append("quiesce ok\n");
    return Status::OK();
  }
  return malformed("unknown control verb");
}

Result<std::string> ServeRuntime::RunSession(std::string_view script) {
  std::string output;
  size_t window_start = 0;
  size_t window_first_line = 1;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= script.size()) {
    const size_t eol = script.find('\n', pos);
    const size_t end = eol == std::string_view::npos ? script.size() : eol;
    if (pos == script.size() && eol == std::string_view::npos) break;
    ++line_number;
    const size_t line_start = pos;
    std::string_view line = Trim(script.substr(pos, end - pos));
    pos = end + 1;
    if (line.empty() || line[0] != '!') continue;  // query-window content
    // A control line is a barrier: answer everything before it first.
    RP_RETURN_IF_ERROR(FlushWindow(
        script.substr(window_start, line_start - window_start),
        window_first_line, &output));
    window_start = pos;
    window_first_line = line_number + 1;
    RP_RETURN_IF_ERROR(HandleControl(line, line_number, &output));
  }
  RP_RETURN_IF_ERROR(FlushWindow(script.substr(window_start),
                                 window_first_line, &output));
  return output;
}

}  // namespace roadpart
