#ifndef ROADPART_SERVE_RUNTIME_H_
#define ROADPART_SERVE_RUNTIME_H_

/// Serving runtime: the long-lived, degradation-aware layer over the read
/// path. Where serve_loop answers ONE batch against ONE snapshot, this
/// module keeps a service alive while snapshots are re-published under it:
///
///  - SnapshotManager owns the current snapshot behind a versioned,
///    atomic swap. Reload() fully loads and structurally re-validates a
///    candidate `rpsnap` *before* the swap; on any typed Corruption /
///    short read / IO error the previous snapshot keeps serving untouched
///    and the failure is recorded in diagnostics. Rollback is free because
///    a bad candidate never becomes current — there is no torn state to
///    roll back from.
///
///  - ServeRuntime composes the manager with the batched serve loop and a
///    scripted session protocol, accumulating exact service counters
///    (served / errored / shed) across batches. Its ServeOptions default
///    to the isolate malformed-query policy: a runtime exists to keep
///    serving, so one bad line answers `error`, it does not kill the
///    session.
///
/// Session protocol (RunSession): the script interleaves query lines (the
/// serve_loop grammar) with control lines, one per line, '!' first:
///
///   !reload <path>   flush pending queries, then attempt a hot swap to
///                    the snapshot at <path>.
///                    answer: `reload ok version=<v> segments=<n>`
///                        or  `reload failed <reason-code>` (old snapshot
///                            keeps serving; reason-code is the kebab-case
///                            status code, e.g. `corruption`, `io-error`)
///   !stats           flush, then answer one deterministic counters line:
///                    `stats version=<v> served=<n> errored=<n> shed=<n>
///                     reloads_ok=<n> reloads_failed=<n>`
///   !quiesce         flush pending queries and confirm nothing is in
///                    flight: answer `quiesce ok`
///
/// A malformed control line answers `error <line> bad-control` under
/// isolate (strict: InvalidArgument naming the line). Every non-blank,
/// non-comment script line produces exactly one answer line, in input
/// order, and error/shed answers name script-global line numbers.
///
/// Determinism contract: control handling, parsing, admission and stats
/// all run serially; only per-batch answer formatting fans out. Session
/// output is therefore byte-identical for every thread count, provided
/// the wall-clock deadline does not fire from real time (the
/// kServeQueryTimeout / kServeShedOverflow / kSnapshotSwapCorruption
/// fault sites exist so tests drive every degraded path deterministically
/// instead).
///
/// Why queries flush in windows: a control line is a barrier. Queries
/// before a `!reload` are answered by the old snapshot, queries after it
/// by the new one — a batch can never observe half a swap, because each
/// flush captures one owning reference to the then-current snapshot and
/// serves the whole window from it.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/durable_io.h"
#include "common/status.h"
#include "serve/serve_loop.h"
#include "serve/snapshot.h"

namespace roadpart {

/// Reload history of a SnapshotManager. Counters only ever increase;
/// `version` identifies the current snapshot (0 = none yet, bumped by each
/// successful swap) so a reader can tell "still the old snapshot" from
/// "new snapshot with equal answers".
struct SnapshotManagerDiagnostics {
  int64_t version = 0;         ///< successful swaps so far; 0 = empty
  int64_t reloads_ok = 0;      ///< Reload() calls that swapped
  int64_t reloads_failed = 0;  ///< Reload() calls refused (old kept serving)
  std::string last_error;      ///< status of the most recent failed reload
};

/// Owns the current serving snapshot behind a versioned atomic swap.
/// Thread-safe: Current() may be called concurrently with Reload(); a
/// caller's shared_ptr keeps its snapshot alive across any number of later
/// swaps, so in-flight batches are never torn.
class SnapshotManager {
 public:
  /// `retry` bounds transient I/O faults during candidate loads (corrupt
  /// candidates are never retried — retrying cannot fix corruption).
  explicit SnapshotManager(RetryOptions retry = {});

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Loads the `rpsnap` at `path`, re-validating it structurally end to
  /// end (Snapshot::Load), and only then atomically swaps it in, bumping
  /// the version. On ANY failure — short read, byte flip, truncation,
  /// wrong format, injected kSnapshotSwapCorruption — the previous
  /// snapshot keeps serving, diagnostics record the failure, and the typed
  /// status is returned. Also the initial-load path (failing with no
  /// previous snapshot just leaves the manager empty).
  Status Reload(const std::string& path);

  /// The current snapshot, or nullptr before the first successful Reload.
  /// The returned reference stays valid (and immutable) for as long as the
  /// caller holds it, independent of later swaps.
  std::shared_ptr<const Snapshot> Current() const;

  SnapshotManagerDiagnostics diagnostics() const;

 private:
  RetryOptions retry_;
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  SnapshotManagerDiagnostics diag_;
};

/// Cumulative service counters across every batch a runtime has flushed.
/// Maintained in serial code — exact and thread-count-invariant.
struct ServeRuntimeStats {
  int64_t served = 0;   ///< point + range answers emitted
  int64_t errored = 0;  ///< `error` answers emitted
  int64_t shed = 0;     ///< `shed` answers emitted
};

struct ServeRuntimeOptions {
  ServeRuntimeOptions() { serve.on_malformed = MalformedQueryPolicy::kIsolate; }

  /// Per-batch serve options (threads, batch size, malformed policy,
  /// admission budgets, deadline). Isolate is the runtime default; flip to
  /// kStrict to make any malformed line abort the whole session.
  ServeOptions serve;
  /// Transient-I/O retry budget for snapshot (re)loads.
  RetryOptions reload_retry;
};

/// The long-lived serving runtime: SnapshotManager + batched serve loop +
/// session protocol + exact counters. Not thread-safe as a whole (one
/// session driver at a time); the parallelism lives inside each batch.
class ServeRuntime {
 public:
  explicit ServeRuntime(ServeRuntimeOptions options = {});

  /// Loads the initial snapshot (just Reload on the manager; exposed for
  /// symmetry and call-site readability).
  Status LoadSnapshot(const std::string& path);

  /// Serves one query-only batch (no control lines) against the current
  /// snapshot as a single admission window, appending answer lines to
  /// `*output`. FailedPrecondition if no snapshot has been loaded and the
  /// batch contains at least one query line.
  Status ServeBatch(std::string_view queries, std::string* output);

  /// Runs a scripted session (see the protocol above) and returns the full
  /// answer text. Each control line flushes the pending query window
  /// first, so answers appear in input order with script-global line
  /// numbers. Strict-policy parse failures and runtime-level preconditions
  /// (queries before any snapshot) surface as the typed error status.
  Result<std::string> RunSession(std::string_view script);

  const ServeRuntimeStats& stats() const { return stats_; }
  SnapshotManager& snapshot_manager() { return manager_; }
  const SnapshotManager& snapshot_manager() const { return manager_; }

 private:
  /// Flushes one window of query lines whose first line is script line
  /// `first_line`, serving it from one owning snapshot reference.
  Status FlushWindow(std::string_view window, size_t first_line,
                     std::string* output);

  /// Executes one already-flushed control line (trimmed, starts with '!').
  Status HandleControl(std::string_view line, size_t line_number,
                       std::string* output);

  ServeRuntimeOptions options_;
  SnapshotManager manager_;
  ServeRuntimeStats stats_;
};

}  // namespace roadpart

#endif  // ROADPART_SERVE_RUNTIME_H_
