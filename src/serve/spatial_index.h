#ifndef ROADPART_SERVE_SPATIAL_INDEX_H_
#define ROADPART_SERVE_SPATIAL_INDEX_H_

/// Spatial index kernels for the partition-serving read path.
///
/// Two structures cooperate to answer "which road segment (and therefore
/// which partition) is nearest to this coordinate?":
///
///  - a static, left-balanced KD-tree over segment *midpoints*, stored as a
///    heap-ordered permutation of segment ids (one int32 per segment, no
///    child pointers). A nearest-midpoint descent is O(log n) and yields a
///    tight upper bound on the true nearest-segment distance, because a
///    segment's midpoint lies on the segment.
///  - a uniform grid over the network bounding box in which every segment is
///    registered with each cell its endpoint bounding box overlaps. Seeded
///    with the KD bound, an outward ring scan over grid cells examines every
///    segment that could still beat the bound and refines to the exact
///    nearest segment under point-to-segment (not point-to-midpoint)
///    distance.
///
/// Exact tie-break rule (asserted by tests/serve_property_test.cc): among
/// segments with bit-identical squared point-to-segment distance, the
/// smallest segment id wins. Both the index path and the O(n) brute-force
/// reference implement the rule through the single ConsiderNearest kernel,
/// so the two paths agree exactly — including on duplicate two-way geometry,
/// where ties are the common case rather than the exception.
///
/// Every function here is deterministic and thread-count-independent: the
/// KD build uses a total order (coordinate, then id) and queries are pure
/// reads over immutable arrays.

#include <cstdint>
#include <limits>
#include <vector>

#include "network/geometry.h"
#include "network/road_network.h"

namespace roadpart {

/// Result of a nearest-segment search. `segment_id` is -1 when the network
/// has no segments; `distance_squared` is +inf in that case.
struct NearestHit {
  int32_t segment_id = -1;
  double distance_squared = std::numeric_limits<double>::infinity();
};

/// Squared Euclidean distance from `q` to the closed segment a->b. The one
/// arithmetic kernel shared by the brute-force reference, the KD seed, and
/// the grid refinement; both search paths therefore compute bit-identical
/// distances.
double PointSegmentDistanceSquared(const Point& q, const Point& a,
                                   const Point& b);

/// The tie-break rule in one place: `candidate` (distance d2) replaces
/// `best` when strictly closer, or equally close with a smaller id.
inline void ConsiderNearest(int32_t candidate, double d2, NearestHit* best) {
  if (d2 < best->distance_squared ||
      (d2 == best->distance_squared && candidate < best->segment_id)) {
    best->segment_id = candidate;
    best->distance_squared = d2;
  }
}

/// Read-only view of segment geometry as flat arrays — the shape both the
/// snapshot buffer and the builder expose. `points_xy` holds x,y per
/// intersection; `endpoints` holds from,to per segment; `midpoints_xy`
/// holds x,y per segment (may be null for functions that do not need it).
struct SegmentGeometryView {
  const double* points_xy = nullptr;
  const int32_t* endpoints = nullptr;
  const double* midpoints_xy = nullptr;
  int32_t num_segments = 0;

  Point SegmentA(int32_t s) const {
    const int32_t p = endpoints[2 * s];
    return {points_xy[2 * p], points_xy[2 * p + 1]};
  }
  Point SegmentB(int32_t s) const {
    const int32_t p = endpoints[2 * s + 1];
    return {points_xy[2 * p], points_xy[2 * p + 1]};
  }
  Point Midpoint(int32_t s) const {
    return {midpoints_xy[2 * s], midpoints_xy[2 * s + 1]};
  }
};

/// O(n) reference scan over a flat geometry view: ascending segment ids
/// through ConsiderNearest, so the documented tie-break holds by
/// construction.
NearestHit BruteForceNearestSegment(const SegmentGeometryView& view,
                                    const Point& q);

/// Convenience overload for tests: the same scan over a RoadNetwork.
NearestHit BruteForceNearestSegment(const RoadNetwork& network,
                                    const Point& q);

/// Midpoint of segment `s` of `network`, as the snapshot builder computes it
/// (plain average of the endpoint coordinates).
Point SegmentMidpoint(const RoadNetwork& network, int s);

// --- KD-tree over midpoints -------------------------------------------------

/// Builds the left-balanced KD-tree: returns a heap-ordered permutation of
/// [0, n) where slot k holds the segment whose midpoint splits that
/// subtree, and slots 2k+1 / 2k+2 root the children. Splitting alternates
/// x/y by depth; the splitting order is the total order (coordinate, id), so
/// the tree is unique regardless of duplicate coordinates.
std::vector<int32_t> BuildKdTree(const double* midpoints_xy, int32_t n);

/// Nearest *midpoint* under the same tie-break rule. Exact (with
/// backtracking); for midpoint queries and as a robust refinement seed.
NearestHit KdNearestMidpoint(const double* midpoints_xy, const int32_t* heap,
                             int32_t n, const Point& q);

/// Greedy root-to-leaf descent toward `q`: visits only the O(log n) nodes
/// on the descent path (no backtracking) and returns the best midpoint seen.
/// NOT the exact nearest midpoint — a cheap upper bound for seeding
/// GridRefineNearest, which produces the exact answer for any valid seed.
NearestHit KdDescendSeed(const double* midpoints_xy, const int32_t* heap,
                         int32_t n, const Point& q);

/// Adds, per partition, the number of segments whose midpoint lies in `box`
/// (closed bounds: min <= coordinate <= max) into `counts`. `labels` maps
/// segment id -> partition id; `counts` must already have one slot per
/// partition.
void KdRangeCountByPartition(const double* midpoints_xy, const int32_t* heap,
                             int32_t n, const BoundingBox& box,
                             const int32_t* labels,
                             std::vector<int64_t>* counts);

// --- Uniform grid over segment bounding boxes -------------------------------

/// Geometry of the uniform grid. Cells are cols x rows over the network
/// bounding box; degenerate (zero-area or empty) boxes collapse to one cell
/// with unit extent so arithmetic never divides by zero.
struct GridSpec {
  int32_t cols = 1;
  int32_t rows = 1;
  double min_x = 0.0;
  double min_y = 0.0;
  double cell_w = 1.0;
  double cell_h = 1.0;

  int64_t NumCells() const {
    return static_cast<int64_t>(cols) * static_cast<int64_t>(rows);
  }
  /// Column of x, clamped into [0, cols).
  int32_t ColOf(double x) const;
  /// Row of y, clamped into [0, rows).
  int32_t RowOf(double y) const;
  /// Squared distance from `q` to the closed cell (col, row); zero inside.
  double CellDistanceSquared(int32_t col, int32_t row, const Point& q) const;
};

/// Chooses the grid shape for `n` segments over `bounds`: roughly
/// `target_per_cell` segments per cell, aspect following the box, never more
/// than ~4n cells and never fewer than one.
GridSpec ChooseGridSpec(const BoundingBox& bounds, int32_t n,
                        double target_per_cell);

/// Rasterizes every segment into the cells its endpoint bounding box
/// overlaps. CSR output: `starts` gets NumCells()+1 offsets into `entries`;
/// within each cell, entries are ascending segment ids (two counting
/// passes). Conservative but sufficient: the nearest point of a segment to
/// any query lies on the segment, hence inside its endpoint bounding box,
/// hence in a registered cell.
void BuildGridIndex(const SegmentGeometryView& view, const GridSpec& spec,
                    std::vector<int32_t>* starts,
                    std::vector<int32_t>* entries);

/// Exact nearest segment: refines `seed` (any valid upper bound, typically
/// the KD midpoint hit evaluated under segment distance) by scanning grid
/// cells in outward rings until no unscanned cell can beat the current
/// best. Ties preserved: cells and rings are pruned only when *strictly*
/// farther than the best squared distance.
NearestHit GridRefineNearest(const SegmentGeometryView& view,
                             const GridSpec& spec, const int32_t* starts,
                             const int32_t* entries, const Point& q,
                             NearestHit seed);

}  // namespace roadpart

#endif  // ROADPART_SERVE_SPATIAL_INDEX_H_
