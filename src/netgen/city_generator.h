#ifndef ROADPART_NETGEN_CITY_GENERATOR_H_
#define ROADPART_NETGEN_CITY_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Options for the irregular city generator. It scatters intersections in a
/// box of the requested area, links near neighbours into a connected planar-
/// style street graph, and converts roads to directed segments with a one-way
/// / two-way mix chosen to land exactly on `target_segments`.
struct CityOptions {
  int num_intersections = 1000;
  int target_segments = 1700;
  double area_sq_miles = 6.6;
  double aspect_ratio = 1.3;  ///< width / height of the urban box
  uint64_t seed = 1;
};

/// Generates a connected road network matching the requested statistics.
/// `target_segments` must lie in [num_intersections-1, 2*candidate edges];
/// infeasible combinations return InvalidArgument.
Result<RoadNetwork> GenerateCityNetwork(const CityOptions& options);

/// The four datasets of Table 1, synthesized at the paper's published sizes
/// (real San Francisco / Melbourne data is not publicly available; see
/// DESIGN.md substitution #1).
enum class DatasetPreset { kD1, kM1, kM2, kM3 };

/// Published Table 1 statistics for a preset.
struct DatasetSpec {
  std::string name;
  std::string place;
  double area_sq_miles;
  int segments;
  int intersections;
  int vehicles;  ///< MNTG population used by the paper (0 for D1)
};

DatasetSpec GetDatasetSpec(DatasetPreset preset);

/// Synthesizes a network with the preset's intersection/segment counts.
Result<RoadNetwork> GenerateDataset(DatasetPreset preset, uint64_t seed);

}  // namespace roadpart

#endif  // ROADPART_NETGEN_CITY_GENERATOR_H_
