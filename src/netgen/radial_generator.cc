#include "netgen/radial_generator.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "netgen/orientation.h"
#include "network/geometry.h"

namespace roadpart {

Result<RoadNetwork> GenerateRadialNetwork(const RadialOptions& options) {
  if (options.num_rings < 1 || options.num_spokes < 3) {
    return Status::InvalidArgument("need >=1 ring and >=3 spokes");
  }
  if (options.two_way_fraction < 0.0 || options.two_way_fraction > 1.0) {
    return Status::InvalidArgument("two_way_fraction must be in [0,1]");
  }

  Rng rng(options.seed);
  const int rings = options.num_rings;
  const int spokes = options.num_spokes;

  // Node 0 is the centre; node 1 + ring*spokes + spoke is a crossing.
  std::vector<Intersection> intersections;
  intersections.push_back({Point{0.0, 0.0}});
  for (int r = 0; r < rings; ++r) {
    double radius = (r + 1) * options.ring_spacing_metres;
    for (int s = 0; s < spokes; ++s) {
      double angle = 2.0 * M_PI * s / spokes;
      intersections.push_back(
          {Point{radius * std::cos(angle), radius * std::sin(angle)}});
    }
  }
  auto node_id = [&](int ring, int spoke) {
    return 1 + ring * spokes + spoke;
  };

  std::vector<std::pair<int, int>> roads;
  // Spoke stretches: centre -> first ring, then ring r -> ring r+1.
  for (int s = 0; s < spokes; ++s) {
    roads.emplace_back(0, node_id(0, s));
    for (int r = 0; r + 1 < rings; ++r) {
      roads.emplace_back(node_id(r, s), node_id(r + 1, s));
    }
  }
  // Ring arcs.
  for (int r = 0; r < rings; ++r) {
    for (int s = 0; s < spokes; ++s) {
      roads.emplace_back(node_id(r, s), node_id(r, (s + 1) % spokes));
    }
  }

  int budget = 0;
  for (size_t i = 0; i < roads.size(); ++i) {
    if (rng.NextDouble() < options.two_way_fraction) ++budget;
  }
  RoadOrientation orientation = OrientRoads(
      static_cast<int>(intersections.size()), roads, budget, rng);

  std::vector<RoadSegment> segments;
  segments.reserve(roads.size() * 2);
  for (size_t i = 0; i < roads.size(); ++i) {
    auto [from, to] = orientation.direction[i];
    double len =
        Distance(intersections[from].position, intersections[to].position);
    segments.push_back({from, to, len, 0.0});
    if (orientation.two_way[i]) {
      segments.push_back({to, from, len, 0.0});
    }
  }

  return RoadNetwork::Create(std::move(intersections), std::move(segments));
}

}  // namespace roadpart
