#ifndef ROADPART_NETGEN_RADIAL_GENERATOR_H_
#define ROADPART_NETGEN_RADIAL_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Options for the ring-radial generator (European-CBD-style layout: a city
/// centre with circular ring roads and radial spokes).
struct RadialOptions {
  int num_rings = 5;
  int num_spokes = 8;
  double ring_spacing_metres = 200.0;
  double two_way_fraction = 0.9;
  uint64_t seed = 1;
};

/// Generates a connected ring-radial network with a centre intersection.
/// Intersections sit where spokes cross rings; ring arcs and spoke stretches
/// become roads.
Result<RoadNetwork> GenerateRadialNetwork(const RadialOptions& options);

}  // namespace roadpart

#endif  // ROADPART_NETGEN_RADIAL_GENERATOR_H_
