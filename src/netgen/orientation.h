#ifndef ROADPART_NETGEN_ORIENTATION_H_
#define ROADPART_NETGEN_ORIENTATION_H_

#include <utility>
#include <vector>

#include "common/rng.h"

namespace roadpart {

/// Result of orienting an undirected road set into directed segments.
struct RoadOrientation {
  /// Per input road: does it carry both directions?
  std::vector<char> two_way;
  /// Per input road: the (from, to) direction of its (first) segment.
  std::vector<std::pair<int, int>> direction;
  /// Bridges that could not be made two-way because the budget ran out;
  /// each leaves the network not strongly connected.
  int unpaved_bridges = 0;
};

/// Chooses two-way roads and one-way directions so the resulting directed
/// network is strongly connected whenever possible, preserving the exact
/// two-way budget (so Table-1 segment counts stay intact).
///
/// Construction (Robbins' theorem): a connected undirected graph has a
/// strongly connected orientation iff it is 2-edge-connected, and its
/// bridges can never be one-way. So the two-way budget goes to bridges
/// first; every remaining one-way road is oriented by DFS — tree edges away
/// from the root, back edges towards the ancestor — which makes each
/// 2-edge-connected component strongly connected. Leftover budget is spent
/// on random non-bridge roads.
///
/// `roads` are undirected endpoint pairs over nodes [0, n); the graph should
/// be connected for a fully strongly connected result. `two_way_budget` is
/// the number of roads that may carry both directions.
RoadOrientation OrientRoads(int n,
                            const std::vector<std::pair<int, int>>& roads,
                            int two_way_budget, Rng& rng);

}  // namespace roadpart

#endif  // ROADPART_NETGEN_ORIENTATION_H_
