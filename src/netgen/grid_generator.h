#ifndef ROADPART_NETGEN_GRID_GENERATOR_H_
#define ROADPART_NETGEN_GRID_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "network/road_network.h"

namespace roadpart {

/// Options for the perturbed-grid generator (Manhattan-style street layout).
struct GridOptions {
  int rows = 10;                  ///< intersection rows
  int cols = 10;                  ///< intersection columns
  double spacing_metres = 100.0;  ///< block edge length
  double jitter = 0.1;            ///< positional jitter, fraction of spacing
  double two_way_fraction = 0.8;  ///< probability a road gets both directions
  double edge_keep_prob = 1.0;    ///< survival probability of non-tree edges
  uint64_t seed = 1;
};

/// Generates a connected grid road network. A random spanning tree is always
/// kept so `edge_keep_prob < 1` cannot disconnect the network. Each kept road
/// becomes two opposite segments with probability `two_way_fraction`, else a
/// single segment with random direction.
Result<RoadNetwork> GenerateGridNetwork(const GridOptions& options);

}  // namespace roadpart

#endif  // ROADPART_NETGEN_GRID_GENERATOR_H_
