#include "netgen/city_generator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "netgen/orientation.h"
#include "network/geometry.h"

namespace roadpart {

namespace {

constexpr double kSqMetresPerSqMile = 2589988.110336;

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n), count_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    --count_;
    return true;
  }
  int NumComponents() const { return count_; }

 private:
  std::vector<int> parent_;
  int count_;
};

struct Candidate {
  int u;
  int v;
  double length;
};

// Near-neighbour candidate roads via uniform grid hashing: each point links
// to every point in its own and the 8 surrounding cells, truncated to the
// `max_per_node` closest.
std::vector<Candidate> NearNeighbourCandidates(const std::vector<Point>& pts,
                                               double cell, int max_per_node) {
  const int n = static_cast<int>(pts.size());
  double min_x = pts[0].x;
  double min_y = pts[0].y;
  double max_x = pts[0].x;
  double max_y = pts[0].y;
  for (const Point& p : pts) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  int gx = std::max(1, static_cast<int>((max_x - min_x) / cell) + 1);
  int gy = std::max(1, static_cast<int>((max_y - min_y) / cell) + 1);
  std::vector<std::vector<int>> buckets(static_cast<size_t>(gx) * gy);
  auto bucket_of = [&](const Point& p) {
    int bx = std::min(gx - 1, static_cast<int>((p.x - min_x) / cell));
    int by = std::min(gy - 1, static_cast<int>((p.y - min_y) / cell));
    return by * gx + bx;
  };
  for (int i = 0; i < n; ++i) buckets[bucket_of(pts[i])].push_back(i);

  std::vector<Candidate> candidates;
  std::vector<std::pair<double, int>> local;
  for (int i = 0; i < n; ++i) {
    local.clear();
    int bx = std::min(gx - 1, static_cast<int>((pts[i].x - min_x) / cell));
    int by = std::min(gy - 1, static_cast<int>((pts[i].y - min_y) / cell));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        int cx = bx + dx;
        int cy = by + dy;
        if (cx < 0 || cx >= gx || cy < 0 || cy >= gy) continue;
        for (int j : buckets[static_cast<size_t>(cy) * gx + cx]) {
          if (j <= i) continue;  // each unordered pair once
          local.emplace_back(Distance(pts[i], pts[j]), j);
        }
      }
    }
    if (static_cast<int>(local.size()) > max_per_node) {
      std::nth_element(local.begin(), local.begin() + max_per_node,
                       local.end());
      local.resize(max_per_node);
    }
    for (const auto& [d, j] : local) candidates.push_back({i, j, d});
  }
  return candidates;
}

}  // namespace

Result<RoadNetwork> GenerateCityNetwork(const CityOptions& options) {
  const int n = options.num_intersections;
  if (n < 2) return Status::InvalidArgument("need at least 2 intersections");
  if (options.target_segments < n - 1) {
    return Status::InvalidArgument(
        StrPrintf("target_segments %d cannot connect %d intersections",
                  options.target_segments, n));
  }
  if (options.area_sq_miles <= 0.0 || options.aspect_ratio <= 0.0) {
    return Status::InvalidArgument("area and aspect ratio must be positive");
  }

  Rng rng(options.seed);
  const double area_m2 = options.area_sq_miles * kSqMetresPerSqMile;
  const double height = std::sqrt(area_m2 / options.aspect_ratio);
  const double width = area_m2 / height;

  std::vector<Point> pts(n);
  for (Point& p : pts) {
    p = {rng.NextDouble(0.0, width), rng.NextDouble(0.0, height)};
  }

  // Undirected road budget: with T two-way roads out of E, segments = E + T.
  // Aim for a balanced mix, then clamp to feasibility.
  const int target = options.target_segments;
  const int64_t max_pairs =
      static_cast<int64_t>(n) * (n - 1) / 2;  // simple graph bound
  int num_edges = std::max(n - 1, (2 * target + 2) / 3);  // two-way frac ~0.5
  num_edges = std::min<int64_t>(num_edges, target);
  num_edges = static_cast<int>(std::min<int64_t>(num_edges, max_pairs));
  int num_two_way = target - num_edges;
  if (num_two_way > num_edges) {
    return Status::InvalidArgument(
        StrPrintf("target_segments %d exceeds 2x the %lld possible roads",
                  target, static_cast<long long>(max_pairs)));
  }
  RP_CHECK(num_two_way >= 0 && num_two_way <= num_edges);

  // Expected near-neighbour spacing; grow the cell until enough candidates.
  double cell = 2.0 * std::sqrt(area_m2 / n);
  std::vector<Candidate> candidates;
  for (int attempt = 0; attempt < 6; ++attempt) {
    int per_node = std::max(8, 4 * num_edges / n + 4);
    candidates = NearNeighbourCandidates(pts, cell, per_node);
    if (static_cast<int>(candidates.size()) >= num_edges + n / 4) break;
    cell *= 1.6;
  }
  if (static_cast<int>(candidates.size()) < num_edges) {
    return Status::Internal(
        StrPrintf("only %zu candidate roads for %d required edges",
                  candidates.size(), num_edges));
  }

  // Kruskal pass: shortest roads first gives a Euclidean-MST-like backbone,
  // then keep adding shortest extras until the budget is met.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.length < b.length;
            });
  UnionFind uf(n);
  std::vector<Candidate> kept;
  std::vector<Candidate> extras;
  kept.reserve(num_edges);
  for (const Candidate& c : candidates) {
    if (uf.Union(c.u, c.v)) {
      kept.push_back(c);
    } else {
      extras.push_back(c);
    }
  }
  // A near-neighbour graph on uniform points is connected in practice; if
  // not, stitch remaining components with direct roads between arbitrary
  // representatives (rare, tiny point sets).
  if (uf.NumComponents() > 1) {
    std::vector<int> reps;
    std::vector<char> seen(n, 0);
    for (int i = 0; i < n; ++i) {
      int r = uf.Find(i);
      if (!seen[r]) {
        seen[r] = 1;
        reps.push_back(i);
      }
    }
    for (size_t i = 1; i < reps.size(); ++i) {
      uf.Union(reps[0], reps[i]);
      kept.push_back({reps[0], reps[i], Distance(pts[reps[0]], pts[reps[i]])});
    }
  }
  if (static_cast<int>(kept.size()) > num_edges) {
    // Spanning needs exceeded the budget (target close to n-1): accept the
    // extra roads and shrink the two-way count instead.
    num_edges = static_cast<int>(kept.size());
    num_two_way = std::max(0, target - num_edges);
  }
  for (const Candidate& c : extras) {
    if (static_cast<int>(kept.size()) >= num_edges) break;
    kept.push_back(c);
  }

  // Choose two-way roads and one-way directions so the directed network is
  // strongly connected (bridges get the budget first; see OrientRoads).
  std::vector<std::pair<int, int>> roads(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) roads[i] = {kept[i].u, kept[i].v};
  RoadOrientation orientation = OrientRoads(n, roads, num_two_way, rng);

  std::vector<Intersection> intersections(n);
  for (int i = 0; i < n; ++i) intersections[i].position = pts[i];
  std::vector<RoadSegment> segments;
  segments.reserve(kept.size() + num_two_way);
  for (size_t i = 0; i < kept.size(); ++i) {
    double len = std::max(kept[i].length, 1.0);
    auto [from, to] = orientation.direction[i];
    segments.push_back({from, to, len, 0.0});
    if (orientation.two_way[i]) {
      segments.push_back({to, from, len, 0.0});
    }
  }

  return RoadNetwork::Create(std::move(intersections), std::move(segments));
}

DatasetSpec GetDatasetSpec(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kD1:
      return {"D1", "Downtown San Francisco", 2.5, 420, 237, 0};
    case DatasetPreset::kM1:
      return {"M1", "CBD Melbourne", 6.6, 17206, 10096, 25246};
    case DatasetPreset::kM2:
      return {"M2", "CBD(+) Melbourne", 31.5, 53494, 28465, 62300};
    case DatasetPreset::kM3:
      return {"M3", "Melbourne", 42.03, 79487, 42321, 84999};
  }
  return {"?", "?", 0.0, 0, 0, 0};
}

Result<RoadNetwork> GenerateDataset(DatasetPreset preset, uint64_t seed) {
  DatasetSpec spec = GetDatasetSpec(preset);
  CityOptions options;
  options.num_intersections = spec.intersections;
  options.target_segments = spec.segments;
  options.area_sq_miles = spec.area_sq_miles;
  options.seed = seed;
  return GenerateCityNetwork(options);
}

}  // namespace roadpart
