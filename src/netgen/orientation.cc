#include "netgen/orientation.h"

#include <algorithm>

#include "common/logging.h"

namespace roadpart {

namespace {

// Adjacency with road indices for DFS passes.
struct Adjacency {
  std::vector<std::vector<std::pair<int, int>>> nbr;  // (node, road index)

  Adjacency(int n, const std::vector<std::pair<int, int>>& roads) : nbr(n) {
    for (size_t r = 0; r < roads.size(); ++r) {
      nbr[roads[r].first].emplace_back(roads[r].second, static_cast<int>(r));
      nbr[roads[r].second].emplace_back(roads[r].first, static_cast<int>(r));
    }
  }
};

}  // namespace

RoadOrientation OrientRoads(int n,
                            const std::vector<std::pair<int, int>>& roads,
                            int two_way_budget, Rng& rng) {
  const int m = static_cast<int>(roads.size());
  RoadOrientation out;
  out.two_way.assign(m, 0);
  out.direction.resize(m);
  for (int r = 0; r < m; ++r) out.direction[r] = roads[r];

  Adjacency adj(n, roads);

  // --- Iterative Tarjan bridge finding + DFS orientation in one pass. ---
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> is_bridge(m, 0);
  std::vector<char> visited_edge(m, 0);
  int time = 0;

  struct Frame {
    int node;
    int parent_road;  // road used to enter `node` (-1 for roots)
    size_t next = 0;
  };
  std::vector<Frame> stack;
  for (int root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    disc[root] = low[root] = time++;
    stack.push_back({root, -1, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < adj.nbr[f.node].size()) {
        auto [w, road] = adj.nbr[f.node][f.next++];
        if (road == f.parent_road) continue;
        if (disc[w] == -1) {
          // Tree edge: orient away from the root (node -> w).
          visited_edge[road] = 1;
          out.direction[road] = {f.node, w};
          disc[w] = low[w] = time++;
          stack.push_back({w, road, 0});
        } else if (!visited_edge[road]) {
          // Back edge (w is an ancestor): orient towards the ancestor.
          visited_edge[road] = 1;
          out.direction[road] = {f.node, w};
          low[f.node] = std::min(low[f.node], disc[w]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.node] = std::min(low[parent.node], low[f.node]);
          if (low[f.node] > disc[parent.node] && f.parent_road >= 0) {
            is_bridge[f.parent_road] = 1;
          }
        }
      }
    }
  }

  // --- Spend the two-way budget: bridges first, then random extras. ---
  std::vector<int> bridges;
  std::vector<int> non_bridges;
  for (int r = 0; r < m; ++r) {
    (is_bridge[r] ? bridges : non_bridges).push_back(r);
  }
  rng.Shuffle(bridges);
  rng.Shuffle(non_bridges);

  int budget = two_way_budget;
  for (int r : bridges) {
    if (budget <= 0) {
      ++out.unpaved_bridges;
      continue;
    }
    out.two_way[r] = 1;
    --budget;
  }
  for (int r : non_bridges) {
    if (budget <= 0) break;
    out.two_way[r] = 1;
    --budget;
  }
  if (out.unpaved_bridges > 0) {
    RP_LOG(Debug) << out.unpaved_bridges
                  << " bridges left one-way (two-way budget exhausted); the "
                     "network is not strongly connected";
  }
  return out;
}

}  // namespace roadpart
