#include "netgen/grid_generator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/connected_components.h"
#include "graph/csr_graph.h"
#include "netgen/orientation.h"
#include "network/geometry.h"

namespace roadpart {

namespace {

// Disjoint-set for spanning-tree selection.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<RoadNetwork> GenerateGridNetwork(const GridOptions& options) {
  if (options.rows < 2 || options.cols < 2) {
    return Status::InvalidArgument("grid needs at least 2x2 intersections");
  }
  if (options.two_way_fraction < 0.0 || options.two_way_fraction > 1.0) {
    return Status::InvalidArgument("two_way_fraction must be in [0,1]");
  }
  if (options.edge_keep_prob <= 0.0 || options.edge_keep_prob > 1.0) {
    return Status::InvalidArgument("edge_keep_prob must be in (0,1]");
  }

  Rng rng(options.seed);
  const int rows = options.rows;
  const int cols = options.cols;
  const int n = rows * cols;

  std::vector<Intersection> intersections(n);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double jx = rng.NextDouble(-1.0, 1.0) * options.jitter * options.spacing_metres;
      double jy = rng.NextDouble(-1.0, 1.0) * options.jitter * options.spacing_metres;
      intersections[r * cols + c].position = {c * options.spacing_metres + jx,
                                              r * options.spacing_metres + jy};
    }
  }

  // Candidate undirected roads: 4-neighbour grid links, shuffled so the
  // spanning tree is random.
  std::vector<std::pair<int, int>> candidates;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int v = r * cols + c;
      if (c + 1 < cols) candidates.emplace_back(v, v + 1);
      if (r + 1 < rows) candidates.emplace_back(v, v + cols);
    }
  }
  rng.Shuffle(candidates);

  UnionFind uf(n);
  std::vector<std::pair<int, int>> kept;
  std::vector<std::pair<int, int>> extras;
  for (const auto& e : candidates) {
    if (uf.Union(e.first, e.second)) {
      kept.push_back(e);  // tree edge: always kept for connectivity
    } else {
      extras.push_back(e);
    }
  }
  for (const auto& e : extras) {
    if (rng.NextDouble() < options.edge_keep_prob) kept.push_back(e);
  }

  // Binomially sample the two-way budget from the requested fraction, then
  // orient for strong connectivity (bridges become two-way first).
  int budget = 0;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (rng.NextDouble() < options.two_way_fraction) ++budget;
  }
  RoadOrientation orientation =
      OrientRoads(n, kept, budget, rng);

  std::vector<RoadSegment> segments;
  segments.reserve(kept.size() * 2);
  for (size_t i = 0; i < kept.size(); ++i) {
    auto [from, to] = orientation.direction[i];
    double len =
        Distance(intersections[from].position, intersections[to].position);
    segments.push_back({from, to, len, 0.0});
    if (orientation.two_way[i]) {
      segments.push_back({to, from, len, 0.0});
    }
  }

  return RoadNetwork::Create(std::move(intersections), std::move(segments));
}

}  // namespace roadpart
