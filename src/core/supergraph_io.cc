#include "core/supergraph_io.h"

#include <sstream>

#include "common/durable_io.h"
#include "common/string_util.h"

namespace roadpart {

namespace {
constexpr char kSupergraphFormat[] = "supergraph";
constexpr int kSupergraphVersion = 1;
}  // namespace

Status SaveSupergraph(const Supergraph& supergraph, const std::string& path,
                      const RetryOptions& retry) {
  std::ostringstream out;
  out << "# supergraph v1\n";
  out << "G " << supergraph.num_road_nodes() << " "
      << supergraph.num_supernodes() << "\n";
  for (const Supernode& sn : supergraph.supernodes()) {
    out << StrPrintf("%.12g %zu", sn.feature, sn.members.size());
    for (int v : sn.members) out << " " << v;
    out << "\n";
  }
  const CsrGraph& links = supergraph.links();
  out << "L " << links.num_edges() << "\n";
  for (int p = 0; p < links.num_nodes(); ++p) {
    auto nbrs = links.Neighbors(p);
    auto wts = links.NeighborWeights(p);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (p < nbrs[i]) {
        out << StrPrintf("%d %d %.12g\n", p, nbrs[i], wts[i]);
      }
    }
  }
  return WriteArtifact(path, kSupergraphFormat, kSupergraphVersion, out.str(),
                       retry);
}

Result<Supergraph> LoadSupergraph(const std::string& path,
                                  const RetryOptions& retry) {
  ArtifactReadOptions read_options;
  read_options.expected_format = kSupergraphFormat;
  read_options.retry = retry;
  RP_ASSIGN_OR_RETURN(std::string payload, ReadArtifact(path, read_options));
  std::istringstream in(payload);
  std::string line;

  auto next_line = [&](std::string& out_line) -> bool {
    while (std::getline(in, out_line)) {
      std::string_view t = Trim(out_line);
      if (!t.empty() && t[0] != '#') {
        out_line = std::string(t);
        return true;
      }
    }
    return false;
  };

  if (!next_line(line)) return Status::IOError("empty supergraph file");
  char tag = 0;
  int num_road_nodes = 0;
  int num_supernodes = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> tag >> num_road_nodes >> num_supernodes) || tag != 'G' ||
        num_road_nodes < 0 || num_supernodes < 0) {
      return Status::IOError("malformed supergraph header");
    }
  }

  std::vector<Supernode> supernodes(num_supernodes);
  for (int s = 0; s < num_supernodes; ++s) {
    if (!next_line(line)) return Status::IOError("truncated supernodes");
    std::istringstream ss(line);
    size_t count = 0;
    if (!(ss >> supernodes[s].feature >> count)) {
      return Status::IOError(StrPrintf("bad supernode line %d", s));
    }
    supernodes[s].members.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(ss >> supernodes[s].members[i])) {
        return Status::IOError(StrPrintf("bad member list on supernode %d", s));
      }
    }
  }

  if (!next_line(line)) return Status::IOError("missing link header");
  int64_t num_links = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> tag >> num_links) || tag != 'L' || num_links < 0) {
      return Status::IOError("malformed link header");
    }
  }
  std::vector<Edge> links(num_links);
  for (int64_t i = 0; i < num_links; ++i) {
    if (!next_line(line)) return Status::IOError("truncated links");
    std::istringstream ss(line);
    if (!(ss >> links[i].u >> links[i].v >> links[i].weight)) {
      return Status::IOError(
          StrPrintf("bad link line %lld", static_cast<long long>(i)));
    }
  }

  RP_ASSIGN_OR_RETURN(CsrGraph link_graph,
                      CsrGraph::FromEdges(num_supernodes, links));
  return Supergraph::Create(std::move(supernodes), std::move(link_graph),
                            num_road_nodes);
}

}  // namespace roadpart
