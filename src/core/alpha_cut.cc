#include "core/alpha_cut.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"

namespace roadpart {

namespace {

// Accumulates, per partition: node count, volume (sum of weighted degrees)
// and the ordered-pair internal weight sum_{p,q in P} A(p,q).
struct PartitionSums {
  std::vector<double> volume;
  std::vector<double> internal;  // each intra edge counted twice
  std::vector<int> size;
  double total = 0.0;  // s = 1^T d = 2 * total edge weight
  int k = 0;
};

PartitionSums Accumulate(const CsrGraph& graph,
                         const std::vector<int>& assignment) {
  PartitionSums sums;
  for (int a : assignment) sums.k = std::max(sums.k, a + 1);
  // A negative label would index out of bounds below; sparse (empty) labels
  // are tolerated here because the objectives skip empty partitions.
  RP_DCHECK_OK(ValidatePartitionLabels(assignment, graph.num_nodes(), sums.k,
                                       /*require_all_labels_used=*/false));
  sums.volume.assign(sums.k, 0.0);
  sums.internal.assign(sums.k, 0.0);
  sums.size.assign(sums.k, 0);
  for (int u = 0; u < graph.num_nodes(); ++u) {
    int p = assignment[u];
    sums.size[p]++;
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      sums.volume[p] += wts[i];
      sums.total += wts[i];
      if (assignment[nbrs[i]] == p) sums.internal[p] += wts[i];
    }
  }
  return sums;
}

}  // namespace

DenseMatrix AlphaCutMatrix(const CsrGraph& graph) {
  const int n = graph.num_nodes();
  DenseMatrix a = graph.ToSparseMatrix().ToDense();
  std::vector<double> d(n, 0.0);
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    d[i] = graph.WeightedDegree(i);
    s += d[i];
  }
  DenseMatrix m(n, n);
  // Row-blocked fill; rows are written disjointly.
  ParallelForBlocked(n, /*grain=*/64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      int row = static_cast<int>(i);
      for (int j = 0; j < n; ++j) {
        m(row, j) = (s > 0.0 ? d[row] * d[j] / s : 0.0) - a(row, j);
      }
    }
  });
  return m;
}

Result<DenseMatrix> AlphaCutMethod::Embed(const CsrGraph& graph, int k) const {
  SparseMatrix a = graph.ToSparseMatrix();
  SparseOperator a_op(a);
  std::vector<double> d = a.RowSums();
  double s = 0.0;
  for (double x : d) s += x;
  // Non-finite degree mass would spread NaN through every Lanczos iterate.
  RP_DCHECK(std::isfinite(s));
  // M x = d (d.x)/s - A x.
  RankOneUpdatedOperator m_op(a_op, d, s > 0.0 ? 1.0 / s : 0.0, -1.0);
  EigenSolveDiagnostics solve;
  RP_ASSIGN_OR_RETURN(DenseMatrix y,
                      ExtremeEigenvectors(m_op, k, SpectrumEnd::kSmallest,
                                          spectral_, &solve));
  RecordEigenSolve(solve);
  return RowNormalize(y);
}

double AlphaCutMethod::Objective(const CsrGraph& graph,
                                 const std::vector<int>& assignment) const {
  return AlphaCutObjective(graph, assignment);
}

double AlphaCutMethod::PartitionTerm(double volume, double internal, int size,
                                     double total) const {
  if (size <= 0) return 0.0;
  double vol_sq_over_s = total > 0.0 ? volume * volume / total : 0.0;
  return (vol_sq_over_s - internal) / size;
}

double AlphaCutObjective(const CsrGraph& graph,
                         const std::vector<int>& assignment) {
  RP_CHECK_EQ(static_cast<int>(assignment.size()), graph.num_nodes());
  PartitionSums sums = Accumulate(graph, assignment);
  double value = 0.0;
  for (int p = 0; p < sums.k; ++p) {
    if (sums.size[p] == 0) continue;
    double vol_sq_over_s =
        sums.total > 0.0 ? sums.volume[p] * sums.volume[p] / sums.total : 0.0;
    value += (vol_sq_over_s - sums.internal[p]) / sums.size[p];
  }
  return value;
}

double AlphaCutObjectiveConstAlpha(const CsrGraph& graph,
                                   const std::vector<int>& assignment,
                                   double alpha) {
  RP_CHECK_EQ(static_cast<int>(assignment.size()), graph.num_nodes());
  PartitionSums sums = Accumulate(graph, assignment);
  double value = 0.0;
  for (int p = 0; p < sums.k; ++p) {
    if (sums.size[p] == 0) continue;
    double cut = sums.volume[p] - sums.internal[p];
    value += (alpha * cut - (1.0 - alpha) * sums.internal[p]) / sums.size[p];
  }
  return value;
}

Result<GraphCutResult> AlphaCutPartition(const CsrGraph& graph, int k,
                                         const AlphaCutOptions& options) {
  AlphaCutMethod method(options.spectral);
  return SpectralKWayPartition(graph, k, method, options.pipeline);
}

}  // namespace roadpart
