#ifndef ROADPART_CORE_SPECTRAL_COMMON_H_
#define ROADPART_CORE_SPECTRAL_COMMON_H_

#include <vector>

#include "cluster/kmeans.h"
#include "common/status.h"
#include "graph/csr_graph.h"
#include "linalg/lanczos.h"
#include "linalg/linear_operator.h"

namespace roadpart {

/// What ExtremeEigenvectors does when Lanczos exhausts its subspace budget
/// without converging (the fallback ladder of the numerical resilience
/// layer). Every policy except kFail first climbs the ladder's retry rung.
enum class NonConvergencePolicy {
  kFail,           ///< no ladder: NotConverged immediately
  kRetry,          ///< tightened Lanczos retry, then NotConverged
  kFallbackDense,  ///< retry, then dense solve when n permits, else NotConverged
  kBestEffort,     ///< full ladder, then accept the best estimate with a warning
};

const char* NonConvergencePolicyName(NonConvergencePolicy policy);

/// Which rung of the eigensolver ladder produced the returned vectors,
/// ordered by escalation so diagnostics can merge with max().
enum class SolverPath {
  kNone = 0,         ///< no solve recorded yet
  kDense,            ///< primary dense solve (n <= dense_threshold)
  kLanczosFirstTry,  ///< Lanczos converged as configured
  kLanczosRetry,     ///< tightened-parameter Lanczos retry converged
  kDenseFallback,    ///< dense solve after both Lanczos rungs failed
  kBestEffort,       ///< non-converged estimate accepted under kBestEffort
};

const char* SolverPathName(SolverPath path);

/// Eigensolver diagnostics accumulated across one or more solves.
struct EigenSolveDiagnostics {
  SolverPath solver_path = SolverPath::kNone;  ///< highest rung used
  int solves = 0;             ///< ExtremeEigenvectors calls recorded
  int lanczos_restarts = 0;   ///< internal Lanczos restarts, summed
  double worst_ritz_residual = 0.0;
  bool all_converged = true;  ///< false iff any solve ended best-effort

  /// Folds `other` in: max path, summed counters, worst residual.
  void Merge(const EigenSolveDiagnostics& other);
};

/// Controls how eigenvectors are extracted.
struct SpectralOptions {
  /// At or below this operator order the dense Householder+QL solver runs
  /// (exact); above it the Lanczos solver (the paper's scalability path).
  int dense_threshold = 600;
  LanczosOptions lanczos;
  /// Fallback ladder policy when Lanczos does not converge. The library
  /// default favors availability: climb the whole ladder and only then
  /// accept a best-effort estimate (with a warning) rather than erroring —
  /// strictly better than the historical silent accept. Batch/CI callers
  /// wanting hard failures select kFail or kRetry.
  NonConvergencePolicy on_nonconvergence = NonConvergencePolicy::kBestEffort;
  /// Largest operator order the kFallbackDense / kBestEffort rungs will
  /// materialize for a dense solve (O(n^2) memory, O(n^3) time).
  int dense_fallback_max = 4096;
};

/// k eigenvectors at the chosen end of a symmetric operator's spectrum, as
/// the columns of an n x k matrix (ascending eigenvalue order). Runs the
/// non-convergence fallback ladder of `options.on_nonconvergence`:
/// Lanczos -> tightened Lanczos retry (doubled subspace, fresh seeded start)
/// -> dense solve when the order permits -> NotConverged with residual
/// diagnostics (or a best-effort accept). `diagnostics`, when given,
/// receives the path taken, restart count and worst Ritz residual.
Result<DenseMatrix> ExtremeEigenvectors(const LinearOperator& op, int k,
                                        SpectrumEnd end,
                                        const SpectralOptions& options,
                                        EigenSolveDiagnostics* diagnostics =
                                            nullptr);

/// Row-normalizes Y to unit-length rows (Equation 8). All-zero rows are left
/// as zero. A non-finite entry (NaN/Inf row) returns Status::Internal in
/// every build type — a poisoned embedding must not reach k-means.
Result<DenseMatrix> RowNormalize(const DenseMatrix& y);

/// Reweights a binary road-graph adjacency with the Gaussian congestion
/// similarity exp(-(f_u - f_v)^2 / (2 sigma^2)) — the affinity used when
/// cutting the road graph directly (schemes AG / NG). sigma^2 is the mean
/// squared *adjacent-pair* feature difference (a local scale; the global
/// variance would saturate every weight at ~1). Zero-variance features yield
/// all-ones weights.
///
/// With `degree_normalize` (the default) the weights are then divided by
/// sqrt(d_u d_v): the dual road graph turns every intersection into a
/// clique, and those topology-induced hubs otherwise dominate the extreme
/// eigenvectors of the alpha-Cut matrix with localized modes that carry no
/// congestion information.
CsrGraph GaussianWeightedGraph(const CsrGraph& adjacency,
                               const std::vector<double>& features,
                               bool degree_normalize = true);

/// Result of a k-way spectral graph cut.
struct GraphCutResult {
  std::vector<int> assignment;  ///< dense partition ids per node
  int k_final = 0;              ///< number of partitions returned
  int k_prime = 0;              ///< partitions before the exact-k reduction
  double objective = 0.0;       ///< method-specific objective of `assignment`
  EigenSolveDiagnostics eigen;  ///< solver-ladder diagnostics, all embeds
};

/// A spectral k-way cut method is defined by its embedding.
class SpectralCutMethod {
 public:
  virtual ~SpectralCutMethod() = default;

  /// Eigensolver diagnostics accumulated across every Embed call since the
  /// last reset (top-level embedding plus bipartition sub-solves). The
  /// accumulator is mutable state on a const method: one pipeline at a time
  /// per instance — not safe for concurrent SpectralKWayPartition calls
  /// sharing a method object.
  const EigenSolveDiagnostics& eigen_diagnostics() const { return eigen_diag_; }
  void ResetEigenDiagnostics() const { eigen_diag_ = EigenSolveDiagnostics(); }

  /// Spectral embedding of the weighted graph into `k` dimensions
  /// (row-normalized; one row per node).
  virtual Result<DenseMatrix> Embed(const CsrGraph& graph, int k) const = 0;

  /// Objective value of an assignment (smaller = better).
  virtual double Objective(const CsrGraph& graph,
                           const std::vector<int>& assignment) const = 0;

  /// One partition's contribution to the objective, given its weighted
  /// volume (sum of member degrees), its ordered-pair internal weight
  /// (each intra edge counted twice), its node count and the graph's total
  /// ordered weight (1^T d). Lets the greedy k'->k pruning evaluate merges
  /// in O(1) — the paper's "merges the two nearest partitions optimizing
  /// the defined graph cut".
  virtual double PartitionTerm(double volume, double internal, int size,
                               double total) const = 0;

  virtual const char* name() const = 0;

 protected:
  /// Called by Embed implementations after each eigensolve.
  void RecordEigenSolve(const EigenSolveDiagnostics& solve) const {
    eigen_diag_.Merge(solve);
  }

 private:
  mutable EigenSolveDiagnostics eigen_diag_;
};

/// How k' > k partitions are reduced to exactly k (Section 5.4 discusses
/// both; the paper adopts recursive bipartitioning for efficiency).
enum class ExactKMethod {
  kRecursiveBipartition,  ///< the paper's choice (Algorithm 3 lines 12-24)
  kGreedyMerge,           ///< iteratively merge the two closest partitions
};

/// Options shared by the k-way pipeline of Algorithm 3.
struct SpectralPipelineOptions {
  KMeansOptions kmeans;
  /// Reduce k' > k partitions to exactly k by global recursive
  /// bipartitioning of the partition-connectivity matrix (Section 5.4).
  bool enforce_exact_k = true;
  ExactKMethod exact_k_method = ExactKMethod::kRecursiveBipartition;
  /// Post-pass guaranteeing condition C.2: disconnected fragments of a final
  /// partition are merged into their best-connected neighbour partition.
  bool enforce_connectivity = true;
  /// Optional observer of the *top-level* spectral embedding Z (the n x k
  /// matrix k-means clusters; bipartition sub-solves never touch it).
  /// Written exactly once per SpectralKWayPartition call when non-null —
  /// the incremental repartitioner caches it to warm-start next interval's
  /// Lanczos. Non-owning, never read, and excluded from canonical-options
  /// serialization: a pure observer cannot change the partition.
  DenseMatrix* embedding_sink = nullptr;
};

/// The complete k-way pipeline of Algorithm 3, parameterized by the cut
/// method: embed -> k-means on rows -> split clusters into connected
/// components (k' >= k) -> optional recursive bipartitioning back to k ->
/// optional connectivity enforcement.
Result<GraphCutResult> SpectralKWayPartition(
    const CsrGraph& graph, int k, const SpectralCutMethod& method,
    const SpectralPipelineOptions& options);

/// Renumbers partition ids densely in [0, k) preserving first-appearance
/// order; returns k.
int DensifyAssignment(std::vector<int>& assignment);

/// Structural audit of a partition labelling: `assignment` must have
/// `num_nodes` entries, every label must lie in [0, num_partitions), and —
/// when `require_all_labels_used` — every label must own at least one node
/// (no empty partition after condensation). Returns the first violation.
/// O(n); run behind RP_DCHECK on hot paths.
Status ValidatePartitionLabels(const std::vector<int>& assignment,
                               int num_nodes, int num_partitions,
                               bool require_all_labels_used = true);

/// Merges disconnected fragments of each partition into their strongest-
/// connected neighbouring partition until every partition is connected
/// (condition C.2). Ids come out dense.
void EnforcePartitionConnectivity(const CsrGraph& graph,
                                  std::vector<int>& assignment);

/// Partition-connectivity matrix A' of Section 5.4:
///   A'(i,j) = sqrt( (1/numadj(P_i,P_j)) * sum_{p in P_i, q in P_j} A(p,q)^2 )
/// over adjacent partition pairs.
Result<CsrGraph> PartitionConnectivityGraph(const CsrGraph& graph,
                                            const std::vector<int>& assignment,
                                            int num_partitions);

}  // namespace roadpart

#endif  // ROADPART_CORE_SPECTRAL_COMMON_H_
