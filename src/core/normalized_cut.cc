#include "core/normalized_cut.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "linalg/linear_operator.h"
#include "linalg/sparse_matrix.h"

namespace roadpart {

namespace {

// y = D^{-1/2} A D^{-1/2} x, with zero-degree nodes treated as isolated.
class NormalizedAdjacencyOperator : public LinearOperator {
 public:
  explicit NormalizedAdjacencyOperator(const SparseMatrix& a)
      : a_(a), inv_sqrt_deg_(a.rows(), 0.0), scratch_(a.rows(), 0.0) {
    std::vector<double> deg = a.RowSums();
    for (int i = 0; i < a.rows(); ++i) {
      // A non-finite degree would propagate NaN through every Apply call.
      RP_DCHECK(std::isfinite(deg[i]));
      if (deg[i] > 0.0) inv_sqrt_deg_[i] = 1.0 / std::sqrt(deg[i]);
    }
  }

  int Dim() const override { return a_.rows(); }

  void Apply(const double* x, double* y) const override {
    constexpr int64_t kGrain = 8192;
    ParallelForBlocked(a_.rows(), kGrain, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        scratch_[i] = inv_sqrt_deg_[i] * x[i];
      }
    });
    a_.Multiply(scratch_.data(), y);
    ParallelForBlocked(a_.rows(), kGrain, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) y[i] *= inv_sqrt_deg_[i];
    });
  }

 private:
  const SparseMatrix& a_;
  std::vector<double> inv_sqrt_deg_;
  mutable std::vector<double> scratch_;
};

}  // namespace

Result<DenseMatrix> NormalizedCutMethod::Embed(const CsrGraph& graph,
                                               int k) const {
  SparseMatrix a = graph.ToSparseMatrix();
  NormalizedAdjacencyOperator n_op(a);
  // Largest eigenvectors of D^{-1/2} A D^{-1/2} == smallest of L_sym; the
  // extreme end converges faster under Lanczos.
  EigenSolveDiagnostics solve;
  RP_ASSIGN_OR_RETURN(
      DenseMatrix y,
      ExtremeEigenvectors(n_op, k, SpectrumEnd::kLargest, spectral_, &solve));
  RecordEigenSolve(solve);
  return RowNormalize(y);
}

double NormalizedCutMethod::Objective(
    const CsrGraph& graph, const std::vector<int>& assignment) const {
  return NormalizedCutObjective(graph, assignment);
}

double NormalizedCutMethod::PartitionTerm(double volume, double internal,
                                          int size, double total) const {
  (void)size;
  (void)total;
  if (volume <= 0.0) return 0.0;
  return (volume - internal) / volume;
}

double NormalizedCutObjective(const CsrGraph& graph,
                              const std::vector<int>& assignment) {
  RP_CHECK_EQ(static_cast<int>(assignment.size()), graph.num_nodes());
  int k = 0;
  for (int a : assignment) k = std::max(k, a + 1);
  // Negative labels would index out of bounds in the volume accumulators.
  RP_DCHECK_OK(ValidatePartitionLabels(assignment, graph.num_nodes(), k,
                                       /*require_all_labels_used=*/false));
  std::vector<double> volume(k, 0.0);
  std::vector<double> internal(k, 0.0);
  for (int u = 0; u < graph.num_nodes(); ++u) {
    int p = assignment[u];
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      volume[p] += wts[i];
      if (assignment[nbrs[i]] == p) internal[p] += wts[i];
    }
  }
  double value = 0.0;
  for (int p = 0; p < k; ++p) {
    if (volume[p] > 0.0) {
      value += (volume[p] - internal[p]) / volume[p];
    }
  }
  return value;
}

Result<GraphCutResult> NormalizedCutPartition(
    const CsrGraph& graph, int k, const NormalizedCutOptions& options) {
  NormalizedCutMethod method(options.spectral);
  return SpectralKWayPartition(graph, k, method, options.pipeline);
}

}  // namespace roadpart
