#ifndef ROADPART_CORE_SUPERGRAPH_IO_H_
#define ROADPART_CORE_SUPERGRAPH_IO_H_

#include <string>

#include "common/durable_io.h"
#include "common/status.h"
#include "core/supergraph.h"

namespace roadpart {

/// Serializes a mined supergraph so the expensive module-2 result can be
/// cached across repeated partitioning runs (the paper re-partitions the
/// same network at every time interval; the supergraph topology only needs
/// re-mining when densities shift regime). Written atomically inside the
/// checksummed "supergraph" artifact envelope (common/durable_io.h); payload
/// format:
///
///   # supergraph v1
///   G <num_road_nodes> <num_supernodes>
///   <feature> <member_count> <member...>        (one line per supernode)
///   L <num_links>
///   <p> <q> <weight>                            (one line per superlink)
Status SaveSupergraph(const Supergraph& supergraph, const std::string& path,
                      const RetryOptions& retry = {});

/// Loads a supergraph saved by SaveSupergraph (validating all invariants).
/// Enveloped files are checksum-verified (torn/corrupt -> kCorruption);
/// envelope-less files are accepted for hand-authored inputs.
Result<Supergraph> LoadSupergraph(const std::string& path,
                                  const RetryOptions& retry = {});

}  // namespace roadpart

#endif  // ROADPART_CORE_SUPERGRAPH_IO_H_
