#include "core/optimal_k.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "metrics/partition_metrics.h"

namespace roadpart {

Result<OptimalKResult> FindOptimalK(const RoadGraph& road_graph,
                                    const OptimalKOptions& options) {
  if (options.k_min < 1 || options.k_max < options.k_min) {
    return Status::InvalidArgument(
        StrPrintf("invalid k range [%d, %d]", options.k_min, options.k_max));
  }

  OptimalKResult result;
  result.optimal_ans = 0.0;
  bool have_any = false;
  for (int k = options.k_min; k <= options.k_max; ++k) {
    PartitionerOptions per_k = options.partitioner;
    per_k.k = k;
    Partitioner partitioner(per_k);
    auto outcome = partitioner.PartitionRoadGraph(road_graph);
    if (!outcome.ok()) {
      // k beyond what the network supports (e.g. more partitions than
      // supernodes): skip and continue the sweep.
      RP_LOG(Debug) << "k=" << k
                    << " skipped: " << outcome.status().ToString();
      continue;
    }
    auto eval = EvaluatePartitions(road_graph.adjacency(),
                                   road_graph.features(),
                                   outcome->assignment);
    if (!eval.ok()) continue;

    KSweepPoint point;
    point.k = k;
    point.ans = eval->ans;
    point.inter = eval->inter;
    point.intra = eval->intra;
    point.gdbi = eval->gdbi;
    point.assignment = std::move(outcome->assignment);
    if (!have_any || point.ans < result.optimal_ans) {
      result.optimal_ans = point.ans;
      result.optimal_k = k;
      have_any = true;
    }
    result.sweep.push_back(std::move(point));
  }
  if (!have_any) {
    return Status::FailedPrecondition("no k in the range could be evaluated");
  }

  // Local ANS minima other than the global one — the paper's additional
  // partition-count candidates.
  for (size_t i = 1; i + 1 < result.sweep.size(); ++i) {
    if (result.sweep[i].k == result.optimal_k) continue;
    if (result.sweep[i].ans < result.sweep[i - 1].ans &&
        result.sweep[i].ans < result.sweep[i + 1].ans) {
      result.local_minima.push_back(result.sweep[i].k);
    }
  }
  return result;
}

}  // namespace roadpart
