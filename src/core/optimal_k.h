#ifndef ROADPART_CORE_OPTIMAL_K_H_
#define ROADPART_CORE_OPTIMAL_K_H_

#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "network/road_graph.h"

namespace roadpart {

/// One point of the k-selection sweep.
struct KSweepPoint {
  int k = 0;
  double ans = 0.0;
  double inter = 0.0;
  double intra = 0.0;
  double gdbi = 0.0;
  std::vector<int> assignment;
};

/// Result of the k-selection workflow.
struct OptimalKResult {
  int optimal_k = 0;          ///< arg-min of ANS over the sweep
  double optimal_ans = 0.0;
  std::vector<KSweepPoint> sweep;      ///< one entry per evaluated k
  std::vector<int> local_minima;       ///< other good candidates (Section 6.4)
};

/// Options for FindOptimalK.
struct OptimalKOptions {
  PartitionerOptions partitioner;  ///< scheme etc.; its `k` field is ignored
  int k_min = 2;
  int k_max = 20;
};

/// The paper's model selection (Sections 6.3-6.4): sweep k, evaluate the ANS
/// measure for each partitioning, and accept the k attaining the minimum;
/// local minima are reported as the "other suitable candidates" the paper
/// lists for closer congestion analysis.
Result<OptimalKResult> FindOptimalK(const RoadGraph& road_graph,
                                    const OptimalKOptions& options);

}  // namespace roadpart

#endif  // ROADPART_CORE_OPTIMAL_K_H_
