#ifndef ROADPART_CORE_PARTITION_TRACKER_H_
#define ROADPART_CORE_PARTITION_TRACKER_H_

#include <vector>

#include "common/status.h"

namespace roadpart {

/// Aligns partition labels across repeated partitionings of the same network
/// (the paper's "partitioning the network repeatedly at regular intervals"),
/// so region 2 at 8:00 is still region 2 at 8:10 even though the spectral
/// pipeline assigns arbitrary ids each run. Matching is greedy maximum
/// member-overlap; regions that appear or vanish get fresh / retired ids.
class PartitionTracker {
 public:
  PartitionTracker() = default;

  /// Relabels `assignment` (dense ids) to the tracked region ids, updates
  /// the internal reference, and returns the aligned labels. The first call
  /// fixes the initial ids. All calls must pass label vectors over the same
  /// node set (same length); a k=0 (empty) assignment after a non-empty
  /// reference is InvalidArgument — an interval cannot lose its labels and
  /// still claim to align.
  Result<std::vector<int>> Align(const std::vector<int>& assignment);

  /// Highest region id ever issued + 1.
  int num_regions_seen() const { return next_id_; }

  /// Fraction of nodes whose tracked region changed in the last *successful*
  /// Align call (0 before the second call; a rejected call leaves the value
  /// of the previous successful one).
  double last_churn() const { return last_churn_; }

 private:
  std::vector<int> reference_;  // last aligned labels
  int next_id_ = 0;
  double last_churn_ = 0.0;
};

}  // namespace roadpart

#endif  // ROADPART_CORE_PARTITION_TRACKER_H_
