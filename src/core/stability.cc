#include "core/stability.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "graph/connected_components.h"

namespace roadpart {

double SupernodeStability(const std::vector<double>& member_features) {
  if (member_features.empty()) return 1.0;
  double mean = 0.0;
  for (double f : member_features) mean += f;
  mean /= static_cast<double>(member_features.size());
  double acc = 0.0;
  for (double f : member_features) {
    acc += std::exp(-std::fabs((f + 1.0) / (mean + 1.0) - 1.0));
  }
  return acc / static_cast<double>(member_features.size());
}

std::vector<std::vector<int>> StabilitySplit(
    std::vector<std::vector<int>> supernodes,
    const std::vector<double>& node_features, const CsrGraph& road_graph,
    const StabilityOptions& options) {
  std::vector<std::vector<int>> stable;
  if (options.threshold <= 0.0) return supernodes;

  // LIFO processing exactly as Algorithm 2.
  std::vector<std::vector<int>> stack = std::move(supernodes);
  while (!stack.empty()) {
    std::vector<int> sn = std::move(stack.back());
    stack.pop_back();
    if (sn.empty()) continue;

    std::vector<double> feats(sn.size());
    double mean = 0.0;
    for (size_t i = 0; i < sn.size(); ++i) {
      feats[i] = node_features[sn[i]];
      mean += feats[i];
    }
    mean /= static_cast<double>(sn.size());

    double eta = SupernodeStability(feats);
    if (eta >= options.threshold || sn.size() == 1) {
      stable.push_back(std::move(sn));
      continue;
    }

    // Split at the centroid: members at or below the mean vs above it.
    std::vector<int> pre;
    std::vector<int> post;
    for (size_t i = 0; i < sn.size(); ++i) {
      if (feats[i] <= mean) {
        pre.push_back(sn[i]);
      } else {
        post.push_back(sn[i]);
      }
    }
    // Uniform features give eta == 1, so both halves are non-empty here; the
    // check guards degenerate floating-point corners.
    if (pre.empty() || post.empty()) {
      stable.push_back(std::move(sn));
      continue;
    }

    auto enqueue = [&](std::vector<int>&& part) {
      if (options.split_into_components) {
        for (auto& comp : ComponentsOfSubset(road_graph, part)) {
          stack.push_back(std::move(comp));
        }
      } else {
        stack.push_back(std::move(part));
      }
    };
    enqueue(std::move(pre));
    enqueue(std::move(post));
  }
  return stable;
}

}  // namespace roadpart
