#include "core/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "graph/csr_graph.h"

namespace roadpart {

namespace {

constexpr char kManifestFormat[] = "checkpoint-manifest";
constexpr int kCheckpointVersion = 1;

constexpr CheckpointStage kAllStages[] = {
    CheckpointStage::kMining, CheckpointStage::kCut, CheckpointStage::kFinal};

std::string StageFormat(CheckpointStage stage) {
  return std::string("checkpoint-") + CheckpointStageName(stage);
}

// --- Codec building blocks --------------------------------------------------
//
// Every payload is a sequence of lines "tag field...". Integers are decimal;
// doubles are IEEE-754 bit patterns in hex (exact round trip). Vectors carry
// an explicit count so truncation inside a line is detectable.

void AppendIntVec(std::ostringstream& out, const char* tag,
                  const std::vector<int>& values) {
  out << tag << " " << values.size();
  for (int v : values) out << " " << v;
  out << "\n";
}

void AppendDoubleVec(std::ostringstream& out, const char* tag,
                     const std::vector<double>& values) {
  out << tag << " " << values.size();
  for (double v : values) out << " " << DoubleToBitsHex(v);
  out << "\n";
}

void AppendInt64Vec(std::ostringstream& out, const char* tag,
                    const std::vector<int64_t>& values) {
  out << tag << " " << values.size();
  for (int64_t v : values) out << " " << v;
  out << "\n";
}

/// Sequential reader over the payload lines of one stage artifact.
class LineCursor {
 public:
  explicit LineCursor(std::string_view payload) : in_(std::string(payload)) {}

  /// Reads the next line and checks its leading tag.
  Result<std::istringstream> Line(const char* tag) {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::Corruption(
          StrPrintf("checkpoint payload truncated before '%s' line", tag));
    }
    std::istringstream fields(line);
    std::string found;
    if (!(fields >> found) || found != tag) {
      return Status::Corruption(
          StrPrintf("checkpoint payload: expected '%s' line, found '%s'", tag,
                    found.c_str()));
    }
    return fields;
  }

 private:
  std::istringstream in_;
};

Result<int> ReadInt(LineCursor& cursor, const char* tag) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line(tag));
  int value = 0;
  if (!(fields >> value)) {
    return Status::Corruption(StrPrintf("checkpoint '%s' field unreadable",
                                        tag));
  }
  return value;
}

Result<double> ReadDouble(LineCursor& cursor, const char* tag) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line(tag));
  std::string hex;
  if (!(fields >> hex)) {
    return Status::Corruption(StrPrintf("checkpoint '%s' field unreadable",
                                        tag));
  }
  auto value = DoubleFromBitsHex(hex);
  if (!value.ok()) {
    return Status::Corruption(StrPrintf("checkpoint '%s' has bad bits-hex",
                                        tag));
  }
  return *value;
}

Result<std::vector<int>> ReadIntVec(LineCursor& cursor, const char* tag) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line(tag));
  size_t count = 0;
  if (!(fields >> count)) {
    return Status::Corruption(StrPrintf("checkpoint '%s' missing count", tag));
  }
  std::vector<int> values(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(fields >> values[i])) {
      return Status::Corruption(
          StrPrintf("checkpoint '%s' truncated at entry %zu/%zu", tag, i,
                    count));
    }
  }
  return values;
}

Result<std::vector<int64_t>> ReadInt64Vec(LineCursor& cursor,
                                          const char* tag) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line(tag));
  size_t count = 0;
  if (!(fields >> count)) {
    return Status::Corruption(StrPrintf("checkpoint '%s' missing count", tag));
  }
  std::vector<int64_t> values(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(fields >> values[i])) {
      return Status::Corruption(
          StrPrintf("checkpoint '%s' truncated at entry %zu/%zu", tag, i,
                    count));
    }
  }
  return values;
}

Result<std::vector<double>> ReadDoubleVec(LineCursor& cursor,
                                          const char* tag) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line(tag));
  size_t count = 0;
  if (!(fields >> count)) {
    return Status::Corruption(StrPrintf("checkpoint '%s' missing count", tag));
  }
  std::vector<double> values(count);
  std::string hex;
  for (size_t i = 0; i < count; ++i) {
    if (!(fields >> hex)) {
      return Status::Corruption(
          StrPrintf("checkpoint '%s' truncated at entry %zu/%zu", tag, i,
                    count));
    }
    auto value = DoubleFromBitsHex(hex);
    if (!value.ok()) {
      return Status::Corruption(
          StrPrintf("checkpoint '%s' entry %zu has bad bits-hex", tag, i));
    }
    values[i] = *value;
  }
  return values;
}

void AppendEigen(std::ostringstream& out, const EigenSolveDiagnostics& eigen) {
  out << "eigen " << static_cast<int>(eigen.solver_path) << " " << eigen.solves
      << " " << eigen.lanczos_restarts << " "
      << DoubleToBitsHex(eigen.worst_ritz_residual) << " "
      << (eigen.all_converged ? 1 : 0) << "\n";
}

Result<EigenSolveDiagnostics> ReadEigen(LineCursor& cursor) {
  RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line("eigen"));
  int path = 0;
  int converged = 0;
  std::string residual_hex;
  EigenSolveDiagnostics eigen;
  if (!(fields >> path >> eigen.solves >> eigen.lanczos_restarts >>
        residual_hex >> converged) ||
      path < 0 || path > static_cast<int>(SolverPath::kBestEffort)) {
    return Status::Corruption("checkpoint 'eigen' line unreadable");
  }
  auto residual = DoubleFromBitsHex(residual_hex);
  if (!residual.ok()) {
    return Status::Corruption("checkpoint 'eigen' residual has bad bits-hex");
  }
  eigen.solver_path = static_cast<SolverPath>(path);
  eigen.worst_ritz_residual = *residual;
  eigen.all_converged = converged != 0;
  return eigen;
}

}  // namespace

const char* CheckpointStageName(CheckpointStage stage) {
  switch (stage) {
    case CheckpointStage::kMining:
      return "mining";
    case CheckpointStage::kCut:
      return "cut";
    case CheckpointStage::kFinal:
      return "final";
  }
  return "?";
}

Result<CheckpointStage> ParseCheckpointStage(std::string_view name) {
  for (CheckpointStage stage : kAllStages) {
    if (name == CheckpointStageName(stage)) return stage;
  }
  return Status::InvalidArgument(
      StrPrintf("unknown checkpoint stage '%.*s' (want mining|cut|final)",
                static_cast<int>(name.size()), name.data()));
}

uint64_t FingerprintRoadGraph(const RoadGraph& graph) {
  const CsrGraph& adjacency = graph.adjacency();
  uint64_t hash = kFnv1a64Basis;
  auto mix_bytes = [&hash](const void* data, size_t size) {
    hash = Fnv1a64(data, size, hash);
  };
  const int64_t shape[2] = {graph.num_nodes(), adjacency.num_edges()};
  mix_bytes(shape, sizeof(shape));
  mix_bytes(adjacency.offsets().data(),
            adjacency.offsets().size() * sizeof(int64_t));
  mix_bytes(adjacency.neighbors().data(),
            adjacency.neighbors().size() * sizeof(int));
  mix_bytes(adjacency.weights().data(),
            adjacency.weights().size() * sizeof(double));
  mix_bytes(graph.features().data(),
            graph.features().size() * sizeof(double));
  return hash;
}

// --- CheckpointStore --------------------------------------------------------

CheckpointStore::CheckpointStore(CheckpointOptions options,
                                 RunManifest manifest)
    : options_(std::move(options)), manifest_(manifest) {}

std::string CheckpointStore::StagePath(CheckpointStage stage) const {
  return options_.dir + "/stage-" + CheckpointStageName(stage) + ".rpcp";
}

std::string CheckpointStore::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

Status CheckpointStore::Initialize() {
  if (!enabled()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint directory " +
                           options_.dir + ": " + ec.message());
  }
  const std::string manifest_payload =
      StrPrintf("input %s\noptions %s\n",
                Uint64ToHex(manifest_.input_fingerprint).c_str(),
                Uint64ToHex(manifest_.options_hash).c_str());
  bool fresh = true;
  if (options_.resume) {
    ArtifactReadOptions read_options;
    read_options.expected_format = kManifestFormat;
    read_options.require_envelope = true;
    read_options.retry = options_.retry;
    auto existing = ReadArtifact(ManifestPath(), read_options);
    if (existing.ok()) {
      if (*existing == manifest_payload) {
        resuming_ = true;
        fresh = false;
      } else {
        warnings_.push_back(
            "checkpoint manifest belongs to a different run (input or "
            "options changed); recomputing all stages");
      }
    } else if (existing.status().code() != StatusCode::kIOError) {
      // Torn / corrupt / foreign manifest. A missing one (kIOError) is just
      // a first run and not worth a warning.
      warnings_.push_back("checkpoint manifest failed verification (" +
                          existing.status().ToString() +
                          "); recomputing all stages");
    }
  }
  if (fresh) {
    // Stale stage files under an old manifest must not survive: a crash
    // between the manifest write and the first stage save would otherwise
    // let a later resume pair the new manifest with old stages.
    for (CheckpointStage stage : kAllStages) {
      (void)std::remove(StagePath(stage).c_str());
    }
    RP_RETURN_IF_ERROR(WriteArtifact(ManifestPath(), kManifestFormat,
                                     kCheckpointVersion, manifest_payload,
                                     options_.retry));
  }
  return Status::OK();
}

std::optional<std::string> CheckpointStore::LoadStage(CheckpointStage stage) {
  if (!enabled() || !resuming_) return std::nullopt;
  ArtifactReadOptions read_options;
  read_options.expected_format = StageFormat(stage);
  read_options.require_envelope = true;
  read_options.retry = options_.retry;
  auto payload = ReadArtifact(StagePath(stage), read_options);
  if (payload.ok()) return std::move(*payload);
  if (payload.status().code() != StatusCode::kIOError) {
    warnings_.push_back(StrPrintf(
        "checkpoint stage '%s' failed verification (%s); recomputing",
        CheckpointStageName(stage), payload.status().ToString().c_str()));
  }
  return std::nullopt;
}

Status CheckpointStore::SaveStage(CheckpointStage stage,
                                  std::string_view payload) {
  if (!enabled()) return Status::OK();
  RP_RETURN_IF_ERROR(WriteArtifact(StagePath(stage), StageFormat(stage),
                                   kCheckpointVersion, payload,
                                   options_.retry));
  if (options_.crash_after_stage == CheckpointStageName(stage)) {
    // Crash-injection hook: die the hard way — no unwinding, no buffers
    // flushed — right after this stage became durable.
    std::_Exit(42);
  }
  return Status::OK();
}

// --- Mining checkpoint ------------------------------------------------------

std::string EncodeMiningCheckpoint(const MiningCheckpoint& checkpoint) {
  std::ostringstream out;
  out << "fallback " << (checkpoint.roadgraph_fallback ? 1 : 0) << "\n";
  out << "supernodes " << checkpoint.num_supernodes << "\n";
  out << "module2 " << DoubleToBitsHex(checkpoint.module2_seconds) << "\n";
  const SupergraphMiningReport& report = checkpoint.report;
  out << "threshold " << DoubleToBitsHex(report.threshold) << "\n";
  out << "sweep-shape " << report.effective_max_kappa << " "
      << report.chosen_kappa << " " << report.supernodes_before_stability
      << " " << report.supernodes_after_stability << "\n";
  out << "phase-seconds " << DoubleToBitsHex(report.sweep_seconds) << " "
      << DoubleToBitsHex(report.cluster_seconds) << " "
      << DoubleToBitsHex(report.superlink_seconds) << "\n";
  AppendIntVec(out, "kappas", report.kappas);
  AppendDoubleVec(out, "mcg", report.mcg);
  AppendIntVec(out, "shortlisted", report.shortlisted_kappas);
  AppendIntVec(out, "components", report.component_counts);
  AppendDoubleVec(out, "stability-values", report.stability_values);
  if (!checkpoint.roadgraph_fallback && checkpoint.supergraph.has_value()) {
    const Supergraph& sg = *checkpoint.supergraph;
    out << "supergraph " << sg.num_road_nodes() << " " << sg.num_supernodes()
        << "\n";
    for (const Supernode& sn : sg.supernodes()) {
      out << "sn " << DoubleToBitsHex(sn.feature) << " " << sn.members.size();
      for (int v : sn.members) out << " " << v;
      out << "\n";
    }
    const CsrGraph& links = sg.links();
    out << "links " << links.num_nodes() << "\n";
    AppendInt64Vec(out, "offsets", links.offsets());
    AppendIntVec(out, "neighbors", links.neighbors());
    AppendDoubleVec(out, "weights", links.weights());
  }
  return out.str();
}

Result<MiningCheckpoint> DecodeMiningCheckpoint(std::string_view payload) {
  LineCursor cursor(payload);
  MiningCheckpoint checkpoint;
  RP_ASSIGN_OR_RETURN(int fallback, ReadInt(cursor, "fallback"));
  checkpoint.roadgraph_fallback = fallback != 0;
  RP_ASSIGN_OR_RETURN(checkpoint.num_supernodes,
                      ReadInt(cursor, "supernodes"));
  RP_ASSIGN_OR_RETURN(checkpoint.module2_seconds,
                      ReadDouble(cursor, "module2"));
  SupergraphMiningReport& report = checkpoint.report;
  RP_ASSIGN_OR_RETURN(report.threshold, ReadDouble(cursor, "threshold"));
  {
    RP_ASSIGN_OR_RETURN(std::istringstream fields,
                        cursor.Line("sweep-shape"));
    if (!(fields >> report.effective_max_kappa >> report.chosen_kappa >>
          report.supernodes_before_stability >>
          report.supernodes_after_stability)) {
      return Status::Corruption("checkpoint 'sweep-shape' line unreadable");
    }
  }
  {
    RP_ASSIGN_OR_RETURN(std::istringstream fields,
                        cursor.Line("phase-seconds"));
    std::string sweep_hex, cluster_hex, superlink_hex;
    if (!(fields >> sweep_hex >> cluster_hex >> superlink_hex)) {
      return Status::Corruption("checkpoint 'phase-seconds' line unreadable");
    }
    RP_ASSIGN_OR_RETURN(report.sweep_seconds, DoubleFromBitsHex(sweep_hex));
    RP_ASSIGN_OR_RETURN(report.cluster_seconds,
                        DoubleFromBitsHex(cluster_hex));
    RP_ASSIGN_OR_RETURN(report.superlink_seconds,
                        DoubleFromBitsHex(superlink_hex));
  }
  RP_ASSIGN_OR_RETURN(report.kappas, ReadIntVec(cursor, "kappas"));
  RP_ASSIGN_OR_RETURN(report.mcg, ReadDoubleVec(cursor, "mcg"));
  RP_ASSIGN_OR_RETURN(report.shortlisted_kappas,
                      ReadIntVec(cursor, "shortlisted"));
  RP_ASSIGN_OR_RETURN(report.component_counts,
                      ReadIntVec(cursor, "components"));
  RP_ASSIGN_OR_RETURN(report.stability_values,
                      ReadDoubleVec(cursor, "stability-values"));
  if (checkpoint.roadgraph_fallback) return checkpoint;

  int num_road_nodes = 0;
  int num_supernodes = 0;
  {
    RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line("supergraph"));
    if (!(fields >> num_road_nodes >> num_supernodes) || num_road_nodes < 0 ||
        num_supernodes < 0) {
      return Status::Corruption("checkpoint 'supergraph' line unreadable");
    }
  }
  std::vector<Supernode> supernodes(num_supernodes);
  for (int s = 0; s < num_supernodes; ++s) {
    RP_ASSIGN_OR_RETURN(std::istringstream fields, cursor.Line("sn"));
    std::string feature_hex;
    size_t count = 0;
    if (!(fields >> feature_hex >> count)) {
      return Status::Corruption(
          StrPrintf("checkpoint supernode line %d unreadable", s));
    }
    auto feature = DoubleFromBitsHex(feature_hex);
    if (!feature.ok()) {
      return Status::Corruption(
          StrPrintf("checkpoint supernode %d has bad feature bits", s));
    }
    supernodes[s].feature = *feature;
    supernodes[s].members.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(fields >> supernodes[s].members[i])) {
        return Status::Corruption(
            StrPrintf("checkpoint supernode %d member list truncated", s));
      }
    }
  }
  RP_ASSIGN_OR_RETURN(int link_nodes, ReadInt(cursor, "links"));
  RP_ASSIGN_OR_RETURN(std::vector<int64_t> offsets,
                      ReadInt64Vec(cursor, "offsets"));
  RP_ASSIGN_OR_RETURN(std::vector<int> neighbors,
                      ReadIntVec(cursor, "neighbors"));
  RP_ASSIGN_OR_RETURN(std::vector<double> weights,
                      ReadDoubleVec(cursor, "weights"));
  if (link_nodes != num_supernodes ||
      offsets.size() != static_cast<size_t>(link_nodes) + 1 ||
      neighbors.size() != weights.size()) {
    return Status::Corruption("checkpoint supergraph arrays are inconsistent");
  }
  // Adopting the raw arrays skips the sort-and-merge pass; the checksum has
  // already vouched for the bytes, and Supergraph::Create re-validates the
  // member partition.
  CsrGraph links = CsrGraph::FromRawParts(link_nodes, std::move(offsets),
                                          std::move(neighbors),
                                          std::move(weights));
  auto supergraph = Supergraph::Create(std::move(supernodes),
                                       std::move(links), num_road_nodes);
  if (!supergraph.ok()) {
    return Status::Corruption("checkpoint supergraph fails validation: " +
                              supergraph.status().ToString());
  }
  checkpoint.supergraph = std::move(*supergraph);
  return checkpoint;
}

// --- Cut checkpoint ---------------------------------------------------------

std::string EncodeCutCheckpoint(const CutCheckpoint& checkpoint) {
  std::ostringstream out;
  out << "k-final " << checkpoint.k_final << "\n";
  out << "k-prime " << checkpoint.k_prime << "\n";
  out << "objective " << DoubleToBitsHex(checkpoint.objective) << "\n";
  AppendEigen(out, checkpoint.eigen);
  AppendIntVec(out, "assignment", checkpoint.assignment);
  return out.str();
}

Result<CutCheckpoint> DecodeCutCheckpoint(std::string_view payload) {
  LineCursor cursor(payload);
  CutCheckpoint checkpoint;
  RP_ASSIGN_OR_RETURN(checkpoint.k_final, ReadInt(cursor, "k-final"));
  RP_ASSIGN_OR_RETURN(checkpoint.k_prime, ReadInt(cursor, "k-prime"));
  RP_ASSIGN_OR_RETURN(checkpoint.objective, ReadDouble(cursor, "objective"));
  RP_ASSIGN_OR_RETURN(checkpoint.eigen, ReadEigen(cursor));
  RP_ASSIGN_OR_RETURN(checkpoint.assignment,
                      ReadIntVec(cursor, "assignment"));
  return checkpoint;
}

// --- Final checkpoint -------------------------------------------------------

std::string EncodeFinalCheckpoint(const FinalCheckpoint& checkpoint) {
  std::ostringstream out;
  out << "k-final " << checkpoint.k_final << "\n";
  out << "k-prime " << checkpoint.k_prime << "\n";
  out << "supernodes " << checkpoint.num_supernodes << "\n";
  out << "objective " << DoubleToBitsHex(checkpoint.objective) << "\n";
  out << "module2 " << DoubleToBitsHex(checkpoint.module2_seconds) << "\n";
  out << "module3 " << DoubleToBitsHex(checkpoint.module3_seconds) << "\n";
  AppendEigen(out, checkpoint.eigen);
  AppendIntVec(out, "assignment", checkpoint.assignment);
  return out.str();
}

Result<FinalCheckpoint> DecodeFinalCheckpoint(std::string_view payload) {
  LineCursor cursor(payload);
  FinalCheckpoint checkpoint;
  RP_ASSIGN_OR_RETURN(checkpoint.k_final, ReadInt(cursor, "k-final"));
  RP_ASSIGN_OR_RETURN(checkpoint.k_prime, ReadInt(cursor, "k-prime"));
  RP_ASSIGN_OR_RETURN(checkpoint.num_supernodes,
                      ReadInt(cursor, "supernodes"));
  RP_ASSIGN_OR_RETURN(checkpoint.objective, ReadDouble(cursor, "objective"));
  RP_ASSIGN_OR_RETURN(checkpoint.module2_seconds,
                      ReadDouble(cursor, "module2"));
  RP_ASSIGN_OR_RETURN(checkpoint.module3_seconds,
                      ReadDouble(cursor, "module3"));
  RP_ASSIGN_OR_RETURN(checkpoint.eigen, ReadEigen(cursor));
  RP_ASSIGN_OR_RETURN(checkpoint.assignment,
                      ReadIntVec(cursor, "assignment"));
  return checkpoint;
}

}  // namespace roadpart
