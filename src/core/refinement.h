#ifndef ROADPART_CORE_REFINEMENT_H_
#define ROADPART_CORE_REFINEMENT_H_

#include <vector>

#include "common/status.h"
#include "core/spectral_common.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Options for the boundary-refinement post-pass.
struct RefinementOptions {
  /// Full sweeps over the boundary; each sweep applies every strictly
  /// improving single-node move.
  int max_rounds = 8;
  /// Restore condition C.2 after the moves (single moves can split a
  /// partition in two).
  bool enforce_connectivity = true;
};

/// Kernighan-Lin-style local refinement: moves individual boundary nodes to
/// an adjacent partition whenever the move strictly lowers the cut
/// objective (via SpectralCutMethod::PartitionTerm, so it works for both
/// alpha-Cut and normalized cut). This generalizes the boundary-adjustment
/// phase of Ji & Geroliminis [5] from density uniformity to the actual cut
/// objective; the paper lists such refinement as the baseline's edge, so
/// exposing it for alpha-Cut is the natural extension (off by default, see
/// bench_ablation_refinement).
///
/// Moves never empty a partition. Returns the refined assignment (dense
/// ids) and the number of applied moves via `moves_applied`.
Result<std::vector<int>> RefineBoundary(const CsrGraph& graph,
                                        std::vector<int> assignment,
                                        const SpectralCutMethod& method,
                                        const RefinementOptions& options = {},
                                        int* moves_applied = nullptr);

}  // namespace roadpart

#endif  // ROADPART_CORE_REFINEMENT_H_
