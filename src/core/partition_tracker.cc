#include "core/partition_tracker.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/string_util.h"

namespace roadpart {

Result<std::vector<int>> PartitionTracker::Align(
    const std::vector<int>& assignment) {
  int k = 0;
  for (int a : assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    k = std::max(k, a + 1);
  }

  if (assignment.empty()) {
    // A k=0 assignment after a non-empty reference is a caller bug (an
    // interval that lost its labels), not a relabeling: reject it instead
    // of silently matching nothing against the reference.
    if (!reference_.empty()) {
      return Status::InvalidArgument(
          "k=0 assignment after a non-empty reference");
    }
    // Aligning nothing against nothing: a no-op, but the churn accessor
    // must describe *this* call, not a stale earlier one.
    last_churn_ = 0.0;
    return std::vector<int>();
  }

  if (!reference_.empty() && reference_.size() != assignment.size()) {
    return Status::InvalidArgument(
        StrPrintf("node count changed: %zu -> %zu", reference_.size(),
                  assignment.size()));
  }

  std::vector<int> relabel(k, -1);
  if (reference_.empty()) {
    for (int p = 0; p < k; ++p) relabel[p] = p;
    next_id_ = k;
    last_churn_ = 0.0;
  } else {
    // Overlap counts between new ids and tracked ids.
    std::map<std::pair<int, int>, int> overlap;
    for (size_t v = 0; v < assignment.size(); ++v) {
      overlap[{assignment[v], reference_[v]}]++;
    }
    // Greedy matching by descending overlap.
    std::vector<std::tuple<int, int, int>> pairs;  // (-count, new, old)
    pairs.reserve(overlap.size());
    for (const auto& [key, count] : overlap) {
      pairs.emplace_back(-count, key.first, key.second);
    }
    std::sort(pairs.begin(), pairs.end());
    std::vector<char> old_taken(next_id_, 0);
    for (const auto& [neg_count, new_id, old_id] : pairs) {
      (void)neg_count;
      if (relabel[new_id] != -1 || old_taken[old_id]) continue;
      relabel[new_id] = old_id;
      old_taken[old_id] = 1;
    }
    for (int p = 0; p < k; ++p) {
      if (relabel[p] == -1) relabel[p] = next_id_++;
    }
  }

  std::vector<int> aligned(assignment.size());
  int changed = 0;
  for (size_t v = 0; v < assignment.size(); ++v) {
    aligned[v] = relabel[assignment[v]];
    if (!reference_.empty() && aligned[v] != reference_[v]) ++changed;
  }
  // First call: 0 by definition. Later calls: the realized fraction —
  // assignment is known non-empty here, so the accessor is never stale.
  last_churn_ = reference_.empty()
                    ? 0.0
                    : static_cast<double>(changed) / assignment.size();
  reference_ = aligned;
  return aligned;
}

}  // namespace roadpart
