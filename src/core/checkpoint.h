#ifndef ROADPART_CORE_CHECKPOINT_H_
#define ROADPART_CORE_CHECKPOINT_H_

/// Stage-level checkpoint/resume for the partitioning pipeline.
///
/// A checkpointed run persists its intermediate results at the three module
/// boundaries of the paper's pipeline:
///
///   mining  - the mined supergraph (module 2), the expensive step
///   cut     - the spectral cut labels (module 3, pre-refinement)
///   final   - the finished road-level assignment and diagnostics
///
/// Each stage file is a durable artifact (common/durable_io.h): written
/// atomically, checksummed, and strictly verified on load. A checkpoint
/// directory is keyed by a RunManifest — an FNV fingerprint of the input
/// road graph plus a hash of every output-affecting option — so a resumed
/// run can only consume checkpoints produced by an identical computation.
/// Stage payloads serialize doubles as IEEE-754 bit patterns, which makes a
/// resumed run *bit-identical* to an uninterrupted one (and, like the rest
/// of the pipeline, invariant across thread counts).
///
/// Failure policy: a missing, corrupt, or mismatched checkpoint never fails
/// the run — the stage is recomputed and a warning is recorded. Corruption
/// only surfaces as an error where it must: in the durable_io loaders.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable_io.h"
#include "common/status.h"
#include "core/spectral_common.h"
#include "core/supergraph.h"
#include "core/supergraph_miner.h"
#include "network/road_graph.h"

namespace roadpart {

enum class CheckpointStage { kMining = 0, kCut, kFinal };

const char* CheckpointStageName(CheckpointStage stage);
Result<CheckpointStage> ParseCheckpointStage(std::string_view name);

/// Checkpoint policy carried inside PartitionerOptions.
struct CheckpointOptions {
  /// Directory for stage artifacts; empty disables checkpointing entirely.
  std::string dir;
  /// Consume valid completed stages instead of recomputing them. When false
  /// the directory is reinitialized and every stage recomputes (and saves).
  bool resume = false;
  /// Transient-fault retry for checkpoint reads/writes.
  RetryOptions retry;
  /// Test hook for crash-injection: immediately after the named stage
  /// ("mining" / "cut" / "final") is durably saved, the process exits hard
  /// via _Exit(42) — no destructors, no flushes, exactly like a kill. Empty
  /// disables the hook.
  std::string crash_after_stage;
};

/// Identity of a run: which bytes went in, under which configuration.
struct RunManifest {
  uint64_t input_fingerprint = 0;  ///< FingerprintRoadGraph of the input
  uint64_t options_hash = 0;       ///< FNV of the canonical options string
};

/// FNV fingerprint of a road graph's exact contents: CSR arrays and feature
/// bit patterns. Two graphs fingerprint equal iff the pipeline would see
/// identical inputs.
uint64_t FingerprintRoadGraph(const RoadGraph& graph);

/// Manages one checkpoint directory for one run. Lifecycle:
///   CheckpointStore store(options, manifest);
///   store.Initialize();            // validates/creates dir + MANIFEST
///   if (auto p = store.LoadStage(CheckpointStage::kMining)) { ...decode... }
///   ... compute ...
///   store.SaveStage(CheckpointStage::kMining, encoded);
class CheckpointStore {
 public:
  /// Disabled store: every Load misses, every Save is a no-op.
  CheckpointStore() = default;
  CheckpointStore(CheckpointOptions options, RunManifest manifest);

  /// True when a checkpoint directory is configured.
  bool enabled() const { return !options_.dir.empty(); }
  /// True when Initialize accepted an existing matching manifest and loads
  /// may be served.
  bool resuming() const { return resuming_; }

  /// Creates the directory if needed and reconciles the MANIFEST artifact:
  /// a matching manifest (with options_.resume set) enables resuming; a
  /// missing / corrupt / mismatched manifest records a warning, deletes any
  /// stale stage files, and rewrites the manifest for a fresh run. Only
  /// unrecoverable I/O (cannot create dir, cannot write manifest) errors.
  Status Initialize();

  /// Returns the verified payload of a completed stage, or nullopt when the
  /// stage is absent or fails verification (corruption -> warning recorded,
  /// stage recomputes).
  std::optional<std::string> LoadStage(CheckpointStage stage);

  /// Durably persists a stage payload (no-op when disabled). After a
  /// successful save, fires the crash_after_stage hook if armed on `stage`.
  Status SaveStage(CheckpointStage stage, std::string_view payload);

  /// Degradation notes accumulated by Initialize/LoadStage (mismatched
  /// manifest, corrupt stage file, ...), for RunDiagnostics.
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// Path of a stage artifact inside the store's directory.
  std::string StagePath(CheckpointStage stage) const;
  std::string ManifestPath() const;

 private:
  CheckpointOptions options_;
  RunManifest manifest_;
  bool resuming_ = false;
  std::vector<std::string> warnings_;
};

// --- Stage payload codecs ---------------------------------------------------
//
// Text, line-oriented, every double as an IEEE bit-pattern hex field. The
// codecs are exact inverses: Decode(Encode(x)) reproduces x bit-for-bit.

/// Module-2 result. When `roadgraph_fallback` is set the mined supergraph
/// stayed below k supernodes even at the strictest stability setting and the
/// pipeline cut the road graph directly; only the supernode count survives
/// (the supergraph itself is not needed on resume).
struct MiningCheckpoint {
  bool roadgraph_fallback = false;
  int num_supernodes = 0;
  double module2_seconds = 0.0;  ///< original mining time, for reporting
  SupergraphMiningReport report;
  std::optional<Supergraph> supergraph;  ///< present iff !roadgraph_fallback
};

std::string EncodeMiningCheckpoint(const MiningCheckpoint& checkpoint);
Result<MiningCheckpoint> DecodeMiningCheckpoint(std::string_view payload);

/// Module-3 spectral-cut result, before boundary refinement. For the
/// supergraph schemes the labels are per supernode; for AG/NG (and the
/// degenerate fallback) they are per road node.
struct CutCheckpoint {
  std::vector<int> assignment;
  int k_final = 0;
  int k_prime = 0;
  double objective = 0.0;
  EigenSolveDiagnostics eigen;
};

std::string EncodeCutCheckpoint(const CutCheckpoint& checkpoint);
Result<CutCheckpoint> DecodeCutCheckpoint(std::string_view payload);

/// The finished run: road-level assignment plus everything the outcome
/// reports about how it was produced. Diagnostics warnings are NOT stored —
/// a resumed run re-derives them from the (stored) eigen diagnostics and its
/// own fresh input sanitization, exactly as an uninterrupted run would.
struct FinalCheckpoint {
  std::vector<int> assignment;
  int k_final = 0;
  int k_prime = 0;
  int num_supernodes = 0;
  double objective = 0.0;
  double module2_seconds = 0.0;
  double module3_seconds = 0.0;
  EigenSolveDiagnostics eigen;
};

std::string EncodeFinalCheckpoint(const FinalCheckpoint& checkpoint);
Result<FinalCheckpoint> DecodeFinalCheckpoint(std::string_view payload);

}  // namespace roadpart

#endif  // ROADPART_CORE_CHECKPOINT_H_
