#ifndef ROADPART_CORE_DISTRIBUTED_REPARTITION_H_
#define ROADPART_CORE_DISTRIBUTED_REPARTITION_H_

/// Section 6.4 incremental per-region re-partitioning.
///
/// The paper's route to real-time operation: after the whole network has
/// been partitioned once, subsequent intervals re-partition each region
/// *independently*. Done naively — every region through the full spectral
/// pipeline, every interval — that refresh can come out slower than one
/// global re-partition (near-uniform regions drive the miner into its
/// degenerate strictest-stability re-mine and a large dense solve). The
/// IncrementalRepartitioner below makes the refresh genuinely incremental:
///
///  - Dirty-region detection. Each Refresh ingests the interval's densities
///    and re-cuts only the regions whose internal density spread moved by
///    more than `trigger_ratio` global scales since *their last cut*, or
///    whose boundary densities shifted by more than `boundary_delta_ratio`
///    global scales. Clean regions reuse their cached sub-assignment
///    byte-for-byte at zero cost.
///
///  - Warm-started spectral embeddings. Each re-cut caches its top-level
///    spectral embedding (as the column-sum vector); the next re-cut of the
///    same region seeds its Lanczos from it (LanczosOptions::warm_start).
///    A warm vector that no longer fits (the ASG supergraph changed order)
///    or fails validation is silently dropped — the PR-3 fallback ladder is
///    untouched. The cache can ride PR 5's durable envelopes across process
///    restarts via SaveCache/LoadCache (format "rpinc").
///
///  - Deterministic parallel fan-out. Dirty regions run through
///    ParallelForTasks with one outcome slot per region and a serial merge
///    in region order, so the refreshed assignment is bit-identical for
///    every thread count.
///
/// Thread-oversubscription policy: when the region fan-out is parallel
/// (more than one worker), each region's inner Partitioner is pinned to
/// num_threads = 1 — the parallelism budget is spent across regions, never
/// multiplied region-count × kernel-threads. When the fan-out runs serially
/// the inner partitioner keeps its configured thread count, so single-region
/// refreshes still use the kernels' data parallelism. (The parallel runtime
/// additionally enforces this cap for any nested helper; see
/// common/parallel.h.) Thread counts never change the resulting bytes.

#include <string>
#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "graph/csr_graph.h"
#include "network/road_graph.h"

namespace roadpart {

/// Options for region-local re-partitioning.
struct DistributedRepartitionOptions {
  /// Configuration used inside each region (its `k` field is the number of
  /// sub-partitions per region; regions smaller than that stay whole).
  PartitionerOptions partitioner;
  /// Dirty-region trigger on internal spread. A region with no cached cut is
  /// dirty when its density spread exceeds `trigger_ratio` times the global
  /// density scale; a region with a cached cut is dirty when its spread
  /// *moved* by more than that much since the cut. <= 0 marks every region
  /// dirty on every refresh (the historical always-recut behavior).
  double trigger_ratio = 0.0;
  /// Dirty-region trigger on boundary shift: a cached region is also dirty
  /// when the mean absolute density change over its boundary nodes (nodes
  /// with a neighbour in another region) since its last cut exceeds this
  /// multiple of the global density scale. <= 0 disables the boundary rule.
  double boundary_delta_ratio = 0.0;
  /// Seed each region's Lanczos from the region's previous top-level
  /// embedding (see file comment). Never changes which partition is feasible
  /// — only how fast the eigensolver reaches it.
  bool warm_start_embeddings = true;
  /// Worker threads for the per-region fan-out (regions are independent).
  /// 0 = the process default, 1 = sequential. See the oversubscription
  /// policy in the file comment.
  int num_threads = 0;
};

/// Per-region outcome of one refresh, for phase breakdowns and diagnostics.
struct RegionRefreshInfo {
  int region = 0;       ///< region id in the frozen top-level assignment
  int size = 0;         ///< nodes in the region
  bool dirty = false;   ///< failed the trigger and was re-cut this refresh
  bool repartitioned = false;  ///< re-cut actually produced > 1 sub-partition
  bool warm_started = false;   ///< the cached embedding seeded the solver
  int k = 1;            ///< sub-partitions this region contributes
  double seconds = 0.0;  ///< sub-partition wall time (0 for clean regions)
};

/// Aggregate counters and the phase breakdown of one refresh.
struct RepartitionRefreshStats {
  int regions = 0;        ///< non-empty regions
  int dirty = 0;          ///< regions re-cut this refresh
  int clean = 0;          ///< regions that reused their cached cut
  int warm_started = 0;   ///< dirty regions whose warm start was accepted
  int warm_rejected = 0;  ///< dirty regions whose warm start was dropped
  double trigger_seconds = 0.0;       ///< serial dirty-region detection
  double subpartition_seconds = 0.0;  ///< parallel region fan-out (wall)
  double merge_seconds = 0.0;         ///< serial label merge + cache update
  std::vector<RegionRefreshInfo> region_info;  ///< one row per region
};

/// Result of one distributed re-partitioning round.
struct DistributedRepartitionResult {
  std::vector<int> assignment;  ///< refreshed partition ids (dense)
  int k_final = 0;
  int regions_repartitioned = 0;
  double seconds = 0.0;
  RepartitionRefreshStats stats;
};

/// The incremental engine. Bound at Create() to a frozen region assignment
/// over a fixed topology; each Refresh() ingests one interval's densities
/// and returns the refreshed sub-partitioning. All state that makes the
/// refresh incremental (cached cuts, spreads at cut, boundary densities at
/// cut, warm-start embeddings) lives here, keyed by region.
class IncrementalRepartitioner {
 public:
  /// Validates the region assignment against the graph and precomputes the
  /// per-region structures (node lists, induced subgraphs, boundary nodes).
  /// The engine copies what it needs; `road_graph` need not outlive it.
  static Result<IncrementalRepartitioner> Create(
      const RoadGraph& road_graph, const std::vector<int>& region_assignment,
      const DistributedRepartitionOptions& options);

  /// One interval: dirty-region detection over `densities` (one value per
  /// node of the bound graph), parallel re-cut of the dirty regions, serial
  /// merge. Deterministic: the same engine state and densities produce the
  /// same bytes at every thread count. The first Refresh after Create (or
  /// after a failed LoadCache) has no cached cuts, so it pays the full
  /// per-region price once; later refreshes only pay for dirty regions.
  Result<DistributedRepartitionResult> Refresh(
      const std::vector<double>& densities);

  /// Persists the engine's incremental state (cached cuts + warm embeddings)
  /// as a checksummed durable artifact (format "rpinc"), keyed by the bound
  /// topology, region assignment, and output-affecting options.
  Status SaveCache(const std::string& path) const;

  /// Restores state saved by SaveCache. Returns true when the cache was
  /// adopted; a missing, corrupt, or differently-keyed cache returns false
  /// (with a warning recorded) and leaves the engine cold — it never fails
  /// the engine. Typed I/O corruption still surfaces as false, not error,
  /// because a cold start is always a safe answer.
  Result<bool> LoadCache(const std::string& path);

  int num_regions() const { return static_cast<int>(regions_.size()); }
  int num_refreshes() const { return refreshes_; }
  const DistributedRepartitionOptions& options() const { return options_; }
  /// Degradation notes (rejected caches, fired fault sites).
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  IncrementalRepartitioner() = default;

  /// Cached per-region state from the last cut of that region.
  struct RegionCache {
    bool valid = false;          ///< a cut (or kept-whole) is recorded
    bool repartitioned = false;  ///< last cut produced > 1 sub-partition
    int k = 1;                   ///< sub-partitions of the cached cut
    std::vector<int> local;      ///< cached local labels (region order)
    double spread_at_cut = 0.0;  ///< RegionSpread when last cut
    std::vector<double> boundary_at_cut;  ///< boundary densities at cut
    std::vector<double> warm;    ///< column-sum embedding vector (may be
                                 ///< empty: kept whole / sink not written)
  };

  uint64_t CacheKey() const;

  DistributedRepartitionOptions options_;
  int num_nodes_ = 0;
  std::vector<std::vector<int>> regions_;     ///< node ids per region
  std::vector<CsrGraph> subgraphs_;           ///< induced topology per region
  std::vector<std::vector<int>> boundaries_;  ///< boundary node ids per region
  std::vector<RegionCache> cache_;
  int refreshes_ = 0;
  std::vector<std::string> warnings_;
};

/// One-shot form, kept for Section 6.4 experiments and callers without an
/// interval loop: equivalent to Create() + a single Refresh() on the graph's
/// own features. With no cached cuts, `trigger_ratio` acts as an absolute
/// spread threshold (a region is re-cut when its spread exceeds
/// trigger_ratio × global scale; <= 0 re-cuts everything), matching the
/// historical behavior of this entry point.
Result<DistributedRepartitionResult> RepartitionWithinRegions(
    const RoadGraph& road_graph, const std::vector<int>& previous_assignment,
    const DistributedRepartitionOptions& options);

}  // namespace roadpart

#endif  // ROADPART_CORE_DISTRIBUTED_REPARTITION_H_
