#ifndef ROADPART_CORE_DISTRIBUTED_REPARTITION_H_
#define ROADPART_CORE_DISTRIBUTED_REPARTITION_H_

#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "network/road_graph.h"

namespace roadpart {

/// Options for region-local re-partitioning.
struct DistributedRepartitionOptions {
  /// Configuration used inside each region (its `k` field is the number of
  /// sub-partitions per region; regions smaller than that stay whole).
  PartitionerOptions partitioner;
  /// Re-partition a region only if its internal density spread grew beyond
  /// this multiple of the global adjacent-pair scale (0 = always).
  double trigger_ratio = 0.0;
  /// Worker threads for the per-region partitioning (regions are
  /// independent). 0 = hardware concurrency, 1 = sequential.
  int num_threads = 0;
};

/// Result of one distributed re-partitioning round.
struct DistributedRepartitionResult {
  std::vector<int> assignment;  ///< refreshed partition ids (dense)
  int k_final = 0;
  int regions_repartitioned = 0;
  double seconds = 0.0;
};

/// The paper's Section 6.4 proposal for real-time operation: after the whole
/// network has been partitioned once, subsequent timestamps re-partition
/// each region *independently* (a fraction of the whole-network cost, and
/// embarrassingly parallel across regions). Each region of
/// `previous_assignment` is cut into `options.partitioner.k` sub-partitions
/// using the region's induced subgraph and current densities; sub-partition
/// ids are merged into one dense label space.
Result<DistributedRepartitionResult> RepartitionWithinRegions(
    const RoadGraph& road_graph, const std::vector<int>& previous_assignment,
    const DistributedRepartitionOptions& options);

}  // namespace roadpart

#endif  // ROADPART_CORE_DISTRIBUTED_REPARTITION_H_
