#include "core/supergraph_miner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "graph/connected_components.h"
#include "graph/graph_algos.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

double SuperlinkWeight(double feature_p, double feature_q, int num_links,
                       double sigma_sq, SuperlinkWeightScheme scheme) {
  RP_CHECK(num_links > 0);
  double gauss = 1.0;
  if (sigma_sq > 0.0) {
    double diff = feature_p - feature_q;
    gauss = std::exp(-(diff * diff) / (2.0 * sigma_sq));
  }
  switch (scheme) {
    case SuperlinkWeightScheme::kPaperEq3:
      // sqrt((1/|L|) * sum_L gauss^2) with identical terms == gauss.
      return gauss;
    case SuperlinkWeightScheme::kLinkCountScaled:
      return gauss * std::sqrt(static_cast<double>(num_links));
  }
  return gauss;
}

Result<Supergraph> MineSupergraph(const RoadGraph& road_graph,
                                  const SupergraphMinerOptions& options,
                                  SupergraphMiningReport* report) {
  const CsrGraph& graph = road_graph.adjacency();
  const std::vector<double>& features = road_graph.features();
  const int n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty road graph");
  if (options.sample_size > 0 && options.sample_size < 3) {
    return Status::InvalidArgument(StrPrintf(
        "sample_size=%d: need >= 3 (or <= 0 to disable sampling)",
        options.sample_size));
  }

  SupergraphMiningReport local_report;
  SupergraphMiningReport& rep = report != nullptr ? *report : local_report;

  // --- Phase A: MCG sweep over kappa on (sampled) feature values. ---
  // Every kappa is an independent clustering of the same data, so the sweep
  // shares one Sorted1DWorkspace (one sort + prefix-sum pass instead of one
  // per kappa) and fans the kappas out through ParallelForTasks. Each task
  // writes only its own slot of the kappa-indexed result arrays, and the
  // post-join consumption loops run in ascending kappa order — thread counts
  // can never reorder a rounding sequence, so the sweep stays bit-identical
  // to a serial run (the contract of common/parallel.h).
  Timer sweep_timer;
  std::vector<double> sweep_values = features;
  if (options.sample_size > 0 &&
      n > options.sample_size) {
    Rng rng(options.seed);
    rng.Shuffle(sweep_values);
    sweep_values.resize(options.sample_size);
  }
  const int max_kappa =
      std::min<int>(options.max_kappa,
                    static_cast<int>(sweep_values.size()));
  if (max_kappa < 2) {
    return Status::InvalidArgument("too few feature values for a kappa sweep");
  }
  rep.effective_max_kappa = max_kappa;

  const int num_sweep = max_kappa - 1;  // kappa = 2 .. max_kappa inclusive
  rep.kappas.resize(num_sweep);
  rep.mcg.assign(num_sweep, 0.0);
  {
    const Sorted1DWorkspace sweep_workspace(sweep_values);
    const double sweep_mean = GlobalMean(sweep_values);
    std::vector<Status> sweep_status(num_sweep);
    ParallelForTasks(num_sweep, [&](int i) {
      const int kappa = i + 2;
      rep.kappas[i] = kappa;
      auto km = KMeans1D(sweep_workspace, kappa);
      if (!km.ok()) {
        sweep_status[i] = km.status();
        return;
      }
      auto mcg = ModeratedClusteringGain(sweep_values, km->assignment, kappa,
                                         sweep_mean);
      if (!mcg.ok()) {
        sweep_status[i] = mcg.status();
        return;
      }
      rep.mcg[i] = *mcg;
    });
    for (const Status& status : sweep_status) {
      if (!status.ok()) return status;
    }
  }

  double best_mcg = 0.0;
  size_t best_idx = 0;
  for (size_t i = 0; i < rep.mcg.size(); ++i) {
    best_mcg = std::max(best_mcg, rep.mcg[i]);
    if (rep.mcg[i] > rep.mcg[best_idx]) best_idx = i;
  }

  double threshold = options.mcg_threshold_absolute >= 0.0
                         ? options.mcg_threshold_absolute
                         : options.mcg_threshold_fraction * best_mcg;
  rep.threshold = threshold;

  if (best_mcg <= 0.0) {
    // Degenerate sweep (e.g. constant densities): every MCG is 0, so any
    // threshold derived from the curve shortlists either everything (the
    // historical bug: fraction * 0 == 0 passed all kappas to Phase B) or
    // nothing. Either way the curve carries no signal — shortlist only the
    // arg-max kappa (ties resolve to the smallest).
    rep.shortlisted_kappas.push_back(rep.kappas[best_idx]);
  } else {
    for (size_t i = 0; i < rep.kappas.size(); ++i) {
      if (rep.mcg[i] >= threshold) {
        rep.shortlisted_kappas.push_back(rep.kappas[i]);
      }
    }
    if (rep.shortlisted_kappas.empty()) {
      // Threshold above every observed MCG: fall back to the arg-max kappa.
      rep.shortlisted_kappas.push_back(rep.kappas[best_idx]);
    }
  }
  rep.sweep_seconds = sweep_timer.Seconds();

  // --- Phase B: full-data clustering per shortlisted kappa; pick the
  // configuration with the fewest label-constrained connected components
  // (Algorithm 1 lines 10-16). ---
  // Same recipe as Phase A: one shared workspace over the full feature
  // vector, one task per shortlisted kappa writing its own slot, and the
  // winner selected afterwards in shortlist order — identical to the serial
  // scan at any thread count.
  Timer cluster_timer;
  const int num_shortlisted = static_cast<int>(rep.shortlisted_kappas.size());
  std::vector<KMeans1DResult> clusterings(num_shortlisted);
  std::vector<ComponentLabels> components(num_shortlisted);
  std::vector<Status> cluster_status(num_shortlisted);
  std::vector<char> evaluated(num_shortlisted, 0);
  {
    const Sorted1DWorkspace full_workspace(features);
    ParallelForTasks(num_shortlisted, [&](int i) {
      const int kappa = rep.shortlisted_kappas[i];
      if (kappa > n) return;  // leave evaluated[i] == 0: skipped, not failed
      auto km = KMeans1D(full_workspace, kappa);
      if (!km.ok()) {
        cluster_status[i] = km.status();
        return;
      }
      components[i] = LabelConstrainedComponents(graph, km->assignment);
      clusterings[i] = std::move(km).value();
      evaluated[i] = 1;
    });
  }
  for (const Status& status : cluster_status) {
    if (!status.ok()) return status;
  }

  int best_components = n + 1;
  std::vector<int> best_component_of;
  std::vector<int> best_cluster_of;
  std::vector<double> best_means;
  int chosen_kappa = 0;
  bool best_qualifies = false;
  for (int i = 0; i < num_shortlisted; ++i) {
    if (!evaluated[i]) continue;
    const int kappa = rep.shortlisted_kappas[i];
    ComponentLabels& comps = components[i];
    rep.component_counts.push_back(comps.num_components);
    bool qualifies = comps.num_components >= options.min_supernodes;
    // Fewest components wins among qualifying configurations; if none
    // qualifies yet, the one with the MOST components is the best fallback.
    bool better;
    if (qualifies == best_qualifies) {
      better = qualifies ? comps.num_components < best_components
                         : comps.num_components > best_components ||
                               chosen_kappa == 0;
    } else {
      better = qualifies;
    }
    if (better) {
      best_components = comps.num_components;
      best_component_of = std::move(comps.component);
      best_cluster_of = std::move(clusterings[i].assignment);
      best_means = std::move(clusterings[i].means);
      chosen_kappa = kappa;
      best_qualifies = qualifies;
    }
  }
  if (chosen_kappa == 0) {
    return Status::Internal("no usable clustering configuration");
  }
  rep.chosen_kappa = chosen_kappa;
  rep.supernodes_before_stability = best_components;
  rep.cluster_seconds = cluster_timer.Seconds();

  // Supernode member lists; feature = mean of the k-means cluster the
  // component's nodes belong to (lines 17-20).
  std::vector<std::vector<int>> members(best_components);
  for (int v = 0; v < n; ++v) members[best_component_of[v]].push_back(v);

  // --- Phase C: optional stability splitting (Algorithm 2). ---
  bool stability_applied = options.stability.threshold > 0.0;
  if (stability_applied) {
    members = StabilitySplit(std::move(members), features, graph,
                             options.stability);
  }
  rep.supernodes_after_stability = static_cast<int>(members.size());

  std::vector<Supernode> supernodes(members.size());
  for (size_t s = 0; s < members.size(); ++s) {
    supernodes[s].members = std::move(members[s]);
    if (stability_applied) {
      // Split supernodes take their member mean as the new feature.
      double mean = 0.0;
      for (int v : supernodes[s].members) mean += features[v];
      supernodes[s].feature =
          mean / static_cast<double>(supernodes[s].members.size());
    } else {
      supernodes[s].feature =
          best_means[best_cluster_of[supernodes[s].members.front()]];
    }
  }

  rep.stability_values.resize(supernodes.size());
  for (size_t s = 0; s < supernodes.size(); ++s) {
    std::vector<double> f;
    f.reserve(supernodes[s].members.size());
    for (int v : supernodes[s].members) f.push_back(features[v]);
    rep.stability_values[s] = SupernodeStability(f);
  }

  // --- Phase D: superlink establishment and weighting (lines 21-25). ---
  Timer superlink_timer;
  std::vector<int> owner(n, -1);
  for (size_t s = 0; s < supernodes.size(); ++s) {
    for (int v : supernodes[s].members) owner[v] = static_cast<int>(s);
  }
  // Flat accumulation: gather one packed (p, q) key per cross edge, sort,
  // and count runs. The sorted key order equals the old ordered-map
  // iteration order, at a fraction of the allocation and cache cost.
  std::vector<uint64_t> cross_keys;
  cross_keys.reserve(static_cast<size_t>(graph.num_edges()));
  for (int u = 0; u < n; ++u) {
    for (int v : graph.Neighbors(u)) {
      if (u >= v) continue;
      int p = owner[u];
      int q = owner[v];
      if (p == q) continue;
      if (p > q) std::swap(p, q);
      cross_keys.push_back((static_cast<uint64_t>(p) << 32) |
                           static_cast<uint32_t>(q));
    }
  }
  std::sort(cross_keys.begin(), cross_keys.end());

  std::vector<double> sfeatures(supernodes.size());
  for (size_t s = 0; s < supernodes.size(); ++s) {
    sfeatures[s] = supernodes[s].feature;
  }
  const double sigma_sq = Variance(sfeatures);

  std::vector<Edge> superlinks;
  for (size_t i = 0; i < cross_keys.size();) {
    size_t j = i;
    while (j < cross_keys.size() && cross_keys[j] == cross_keys[i]) ++j;
    const int p = static_cast<int>(cross_keys[i] >> 32);
    const int q = static_cast<int>(cross_keys[i] & 0xffffffffu);
    double w = SuperlinkWeight(sfeatures[p], sfeatures[q],
                               static_cast<int>(j - i), sigma_sq,
                               options.weight_scheme);
    superlinks.push_back({p, q, w});
    i = j;
  }
  RP_ASSIGN_OR_RETURN(
      CsrGraph links,
      CsrGraph::FromEdges(static_cast<int>(supernodes.size()), superlinks));
  rep.superlink_seconds = superlink_timer.Seconds();

  return Supergraph::Create(std::move(supernodes), std::move(links), n);
}

}  // namespace roadpart
