#include "core/supergraph_miner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "cluster/kmeans1d.h"
#include "cluster/optimality.h"
#include "graph/connected_components.h"
#include "graph/graph_algos.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

double SuperlinkWeight(double feature_p, double feature_q, int num_links,
                       double sigma_sq, SuperlinkWeightScheme scheme) {
  RP_CHECK(num_links > 0);
  double gauss = 1.0;
  if (sigma_sq > 0.0) {
    double diff = feature_p - feature_q;
    gauss = std::exp(-(diff * diff) / (2.0 * sigma_sq));
  }
  switch (scheme) {
    case SuperlinkWeightScheme::kPaperEq3:
      // sqrt((1/|L|) * sum_L gauss^2) with identical terms == gauss.
      return gauss;
    case SuperlinkWeightScheme::kLinkCountScaled:
      return gauss * std::sqrt(static_cast<double>(num_links));
  }
  return gauss;
}

Result<Supergraph> MineSupergraph(const RoadGraph& road_graph,
                                  const SupergraphMinerOptions& options,
                                  SupergraphMiningReport* report) {
  const CsrGraph& graph = road_graph.adjacency();
  const std::vector<double>& features = road_graph.features();
  const int n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty road graph");

  SupergraphMiningReport local_report;
  SupergraphMiningReport& rep = report != nullptr ? *report : local_report;

  // --- Phase A: MCG sweep over kappa on (sampled) feature values. ---
  std::vector<double> sweep_values = features;
  if (options.sample_size > 0 &&
      n > options.sample_size) {
    Rng rng(options.seed);
    rng.Shuffle(sweep_values);
    sweep_values.resize(options.sample_size);
  }
  const int max_kappa =
      std::min<int>(options.max_kappa,
                    static_cast<int>(sweep_values.size()) - 1);
  if (max_kappa < 2) {
    return Status::InvalidArgument("too few feature values for a kappa sweep");
  }

  double best_mcg = 0.0;
  for (int kappa = 2; kappa <= max_kappa; ++kappa) {
    RP_ASSIGN_OR_RETURN(KMeans1DResult km, KMeans1D(sweep_values, kappa));
    RP_ASSIGN_OR_RETURN(
        double mcg,
        ModeratedClusteringGain(sweep_values, km.assignment, kappa));
    rep.kappas.push_back(kappa);
    rep.mcg.push_back(mcg);
    best_mcg = std::max(best_mcg, mcg);
  }

  double threshold = options.mcg_threshold_absolute >= 0.0
                         ? options.mcg_threshold_absolute
                         : options.mcg_threshold_fraction * best_mcg;
  rep.threshold = threshold;

  for (size_t i = 0; i < rep.kappas.size(); ++i) {
    if (rep.mcg[i] >= threshold) {
      rep.shortlisted_kappas.push_back(rep.kappas[i]);
    }
  }
  if (rep.shortlisted_kappas.empty()) {
    // Threshold above every observed MCG: fall back to the arg-max kappa.
    size_t best_idx = 0;
    for (size_t i = 1; i < rep.mcg.size(); ++i) {
      if (rep.mcg[i] > rep.mcg[best_idx]) best_idx = i;
    }
    rep.shortlisted_kappas.push_back(rep.kappas[best_idx]);
  }

  // --- Phase B: full-data clustering per shortlisted kappa; pick the
  // configuration with the fewest label-constrained connected components
  // (Algorithm 1 lines 10-16). ---
  int best_components = n + 1;
  std::vector<int> best_component_of;
  std::vector<int> best_cluster_of;
  std::vector<double> best_means;
  int chosen_kappa = 0;
  bool best_qualifies = false;
  for (int kappa : rep.shortlisted_kappas) {
    if (kappa > n) continue;
    RP_ASSIGN_OR_RETURN(KMeans1DResult km, KMeans1D(features, kappa));
    ComponentLabels comps = LabelConstrainedComponents(graph, km.assignment);
    rep.component_counts.push_back(comps.num_components);
    bool qualifies = comps.num_components >= options.min_supernodes;
    // Fewest components wins among qualifying configurations; if none
    // qualifies yet, the one with the MOST components is the best fallback.
    bool better;
    if (qualifies == best_qualifies) {
      better = qualifies ? comps.num_components < best_components
                         : comps.num_components > best_components ||
                               chosen_kappa == 0;
    } else {
      better = qualifies;
    }
    if (better) {
      best_components = comps.num_components;
      best_component_of = std::move(comps.component);
      best_cluster_of = std::move(km.assignment);
      best_means = std::move(km.means);
      chosen_kappa = kappa;
      best_qualifies = qualifies;
    }
  }
  if (chosen_kappa == 0) {
    return Status::Internal("no usable clustering configuration");
  }
  rep.chosen_kappa = chosen_kappa;
  rep.supernodes_before_stability = best_components;

  // Supernode member lists; feature = mean of the k-means cluster the
  // component's nodes belong to (lines 17-20).
  std::vector<std::vector<int>> members(best_components);
  for (int v = 0; v < n; ++v) members[best_component_of[v]].push_back(v);

  // --- Phase C: optional stability splitting (Algorithm 2). ---
  bool stability_applied = options.stability.threshold > 0.0;
  if (stability_applied) {
    members = StabilitySplit(std::move(members), features, graph,
                             options.stability);
  }
  rep.supernodes_after_stability = static_cast<int>(members.size());

  std::vector<Supernode> supernodes(members.size());
  for (size_t s = 0; s < members.size(); ++s) {
    supernodes[s].members = std::move(members[s]);
    if (stability_applied) {
      // Split supernodes take their member mean as the new feature.
      double mean = 0.0;
      for (int v : supernodes[s].members) mean += features[v];
      supernodes[s].feature =
          mean / static_cast<double>(supernodes[s].members.size());
    } else {
      supernodes[s].feature =
          best_means[best_cluster_of[supernodes[s].members.front()]];
    }
  }

  rep.stability_values.resize(supernodes.size());
  for (size_t s = 0; s < supernodes.size(); ++s) {
    std::vector<double> f;
    f.reserve(supernodes[s].members.size());
    for (int v : supernodes[s].members) f.push_back(features[v]);
    rep.stability_values[s] = SupernodeStability(f);
  }

  // --- Phase D: superlink establishment and weighting (lines 21-25). ---
  std::vector<int> owner(n, -1);
  for (size_t s = 0; s < supernodes.size(); ++s) {
    for (int v : supernodes[s].members) owner[v] = static_cast<int>(s);
  }
  std::map<std::pair<int, int>, int> cross_links;  // (p<q) -> |L_pq|
  for (int u = 0; u < n; ++u) {
    for (int v : graph.Neighbors(u)) {
      if (u >= v) continue;
      int p = owner[u];
      int q = owner[v];
      if (p == q) continue;
      if (p > q) std::swap(p, q);
      cross_links[{p, q}]++;
    }
  }

  std::vector<double> sfeatures(supernodes.size());
  for (size_t s = 0; s < supernodes.size(); ++s) {
    sfeatures[s] = supernodes[s].feature;
  }
  const double sigma_sq = Variance(sfeatures);

  std::vector<Edge> superlinks;
  superlinks.reserve(cross_links.size());
  for (const auto& [pq, count] : cross_links) {
    double w = SuperlinkWeight(sfeatures[pq.first], sfeatures[pq.second],
                               count, sigma_sq, options.weight_scheme);
    superlinks.push_back({pq.first, pq.second, w});
  }
  RP_ASSIGN_OR_RETURN(
      CsrGraph links,
      CsrGraph::FromEdges(static_cast<int>(supernodes.size()), superlinks));

  return Supergraph::Create(std::move(supernodes), std::move(links), n);
}

}  // namespace roadpart
