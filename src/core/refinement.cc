#include "core/refinement.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

// Mutable per-partition bookkeeping for O(deg) move evaluation.
struct Sums {
  std::vector<double> volume;    // sum of weighted degrees
  std::vector<double> internal;  // ordered-pair internal weight
  std::vector<int> size;
  double total = 0.0;
};

Sums Accumulate(const CsrGraph& graph, const std::vector<int>& assignment,
                int k) {
  Sums sums;
  sums.volume.assign(k, 0.0);
  sums.internal.assign(k, 0.0);
  sums.size.assign(k, 0);
  for (int u = 0; u < graph.num_nodes(); ++u) {
    int p = assignment[u];
    sums.size[p]++;
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      sums.volume[p] += wts[i];
      sums.total += wts[i];
      if (assignment[nbrs[i]] == p) sums.internal[p] += wts[i];
    }
  }
  return sums;
}

}  // namespace

Result<std::vector<int>> RefineBoundary(const CsrGraph& graph,
                                        std::vector<int> assignment,
                                        const SpectralCutMethod& method,
                                        const RefinementOptions& options,
                                        int* moves_applied) {
  const int n = graph.num_nodes();
  if (static_cast<int>(assignment.size()) != n) {
    return Status::InvalidArgument(
        StrPrintf("assignment has %zu entries for %d nodes", assignment.size(),
                  n));
  }
  int k = DensifyAssignment(assignment);
  Sums sums = Accumulate(graph, assignment, k);

  int applied = 0;
  for (int round = 0; round < options.max_rounds; ++round) {
    bool moved = false;
    for (int v = 0; v < n; ++v) {
      int p = assignment[v];
      if (sums.size[p] <= 1) continue;  // never empty a partition

      // Weight of v's edges into each adjacent partition.
      auto nbrs = graph.Neighbors(v);
      auto wts = graph.NeighborWeights(v);
      double degree_v = 0.0;
      std::map<int, double> link_to;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        degree_v += wts[i];
        link_to[assignment[nbrs[i]]] += wts[i];
      }
      double to_own = link_to.count(p) ? link_to[p] : 0.0;

      double base = method.PartitionTerm(sums.volume[p], sums.internal[p],
                                         sums.size[p], sums.total);
      double best_delta = -1e-12;  // strict improvement only
      int best_q = -1;
      for (const auto& [q, w_q] : link_to) {
        if (q == p) continue;
        double term_p_without =
            method.PartitionTerm(sums.volume[p] - degree_v,
                                 sums.internal[p] - 2.0 * to_own,
                                 sums.size[p] - 1, sums.total);
        double term_q_before = method.PartitionTerm(
            sums.volume[q], sums.internal[q], sums.size[q], sums.total);
        double term_q_with =
            method.PartitionTerm(sums.volume[q] + degree_v,
                                 sums.internal[q] + 2.0 * w_q,
                                 sums.size[q] + 1, sums.total);
        double delta =
            (term_p_without + term_q_with) - (base + term_q_before);
        if (delta < best_delta) {
          best_delta = delta;
          best_q = q;
        }
      }
      if (best_q >= 0) {
        double w_q = link_to[best_q];
        sums.volume[p] -= degree_v;
        sums.internal[p] -= 2.0 * to_own;
        sums.size[p] -= 1;
        sums.volume[best_q] += degree_v;
        sums.internal[best_q] += 2.0 * w_q;
        sums.size[best_q] += 1;
        assignment[v] = best_q;
        ++applied;
        moved = true;
      }
    }
    if (!moved) break;
  }

  if (options.enforce_connectivity) {
    EnforcePartitionConnectivity(graph, assignment);
  } else {
    DensifyAssignment(assignment);
  }
  if (moves_applied != nullptr) *moves_applied = applied;
  return assignment;
}

}  // namespace roadpart
