#ifndef ROADPART_CORE_STABILITY_H_
#define ROADPART_CORE_STABILITY_H_

#include <vector>

#include "graph/csr_graph.h"

namespace roadpart {

/// Supernode stability (Definition 9):
///   eta = (1/|s|) * sum_j exp(-|((f_j + 1)/(mu + 1)) - 1|)  in [0, 1];
/// 1 iff every member feature equals the mean.
double SupernodeStability(const std::vector<double>& member_features);

/// Options for the stability-splitting pass (Algorithm 2).
struct StabilityOptions {
  /// epsilon_eta: supernodes with eta below this are split. 0 disables
  /// splitting entirely (the paper's ASG behaviour).
  double threshold = 0.0;
  /// After the feature-median split, further split each half into connected
  /// components of the road graph, which preserves the supernode
  /// connectivity invariant (Definition 6) that a pure feature split can
  /// break. On by default; set false for the strictly-literal Algorithm 2.
  bool split_into_components = true;
};

/// Runs the LIFO stability check of Algorithm 2 over member lists: unstable
/// supernodes split at their feature centroid (<= mean vs > mean) until every
/// resulting supernode is stable. Returns the new member lists; features are
/// the member means. `node_features` indexes road-graph node ids.
std::vector<std::vector<int>> StabilitySplit(
    std::vector<std::vector<int>> supernodes,
    const std::vector<double>& node_features, const CsrGraph& road_graph,
    const StabilityOptions& options);

}  // namespace roadpart

#endif  // ROADPART_CORE_STABILITY_H_
