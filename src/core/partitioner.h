#ifndef ROADPART_CORE_PARTITIONER_H_
#define ROADPART_CORE_PARTITIONER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/alpha_cut.h"
#include "core/checkpoint.h"
#include "core/ji_geroliminis.h"
#include "core/normalized_cut.h"
#include "core/refinement.h"
#include "core/supergraph_miner.h"
#include "network/density_sanitizer.h"
#include "network/road_graph.h"
#include "network/road_network.h"

namespace roadpart {

/// The evaluation schemes of Section 6.3:
///  - AG:  alpha-Cut directly on the (Gaussian-weighted) road graph
///  - ASG: alpha-Cut on the mined road supergraph
///  - NG:  normalized cut directly on the road graph (the baseline)
///  - NSG: normalized cut on the road supergraph
///  - JiGeroliminis: the three-phase method of [5]
enum class Scheme { kAG, kASG, kNG, kNSG, kJiGeroliminis };

const char* SchemeName(Scheme scheme);

/// End-to-end framework configuration.
struct PartitionerOptions {
  Scheme scheme = Scheme::kASG;
  int k = 6;  ///< desired number of partitions
  SupergraphMinerOptions miner;           ///< module 2 (supergraph schemes)
  SpectralOptions spectral;               ///< eigensolver policy
  KMeansOptions kmeans;                   ///< embedding clustering
  JiGeroliminisOptions ji;                ///< baseline parameters
  bool enforce_exact_k = true;            ///< reduce k' -> k (Section 5.4)
  /// Which Section 5.4 reduction runs when k' > k. The paper adopts
  /// recursive bipartitioning; greedy pruning often merges better on large
  /// supergraphs (see bench_ablation_kprime).
  ExactKMethod exact_k_method = ExactKMethod::kRecursiveBipartition;
  bool enforce_connectivity = true;       ///< guarantee condition C.2
  /// Post-pass moving boundary segments between partitions when that lowers
  /// the cut objective (extension; see core/refinement.h). Off by default to
  /// match the paper's pipeline.
  bool refine_boundary = false;
  RefinementOptions refinement;
  uint64_t seed = 1;  ///< randomizes embedding k-means (paper: 100 reruns)
  /// Wall-clock budget for the whole run, checked between modules (never
  /// inside a kernel): an expired budget returns Status::DeadlineExceeded
  /// and no partition. 0 disables the deadline.
  double deadline_seconds = 0.0;
  /// What to do with invalid segment densities (NaN/Inf/negative) before
  /// they enter the pipeline: reject the run, or repair them and record the
  /// repairs in RunDiagnostics.
  DensityPolicy density_policy = DensityPolicy::kReject;
  /// Worker threads for the spectral kernels (SpMV, operator applies,
  /// reorthogonalization, row normalization, k-means restarts). 0 keeps the
  /// process-wide default (SetDefaultParallelism / RP_THREADS / hardware).
  /// Purely a performance knob: every kernel uses fixed block decompositions
  /// with order-fixed reductions, so results are bit-identical for any value
  /// (see tests/parallel_determinism_test.cc).
  int num_threads = 0;
  /// Stage-level checkpoint/resume (core/checkpoint.h). With a non-empty
  /// `checkpoint.dir` the run persists each completed pipeline stage as a
  /// durable artifact; with `checkpoint.resume` it consumes valid completed
  /// stages, producing output bit-identical to an uninterrupted run. A
  /// missing/corrupt/mismatched checkpoint recomputes with a warning; it
  /// never fails the run.
  CheckpointOptions checkpoint;
  /// When non-empty, PartitionNetwork exports the finished partition as an
  /// immutable serving snapshot (serve/snapshot.h, format "rpsnap") at this
  /// path, written atomically through the checksummed artifact envelope with
  /// `checkpoint.retry` bounding transient write faults. Requires network
  /// geometry, so PartitionRoadGraph ignores it. Purely an output sink —
  /// excluded from CanonicalOptionsString.
  std::string snapshot_path;
  /// When non-null, receives the top-level spectral embedding of the cut
  /// (SpectralPipelineOptions::embedding_sink): the n x k matrix k-means
  /// clustered — n is the cut target's order, i.e. the supergraph's for
  /// ASG/NSG. The incremental repartitioner caches it between intervals to
  /// warm-start the next Lanczos solve. A pure observer: non-owning, never
  /// read, excluded from CanonicalOptionsString, and left untouched when a
  /// resumed checkpoint skips the cut.
  DenseMatrix* embedding_sink = nullptr;
};

/// Canonical text of every output-affecting field of PartitionerOptions.
/// Excludes the knobs that cannot change the result: num_threads (kernels
/// are thread-count-invariant), deadline_seconds (an expired deadline fails
/// the run rather than altering it), the checkpoint policy itself, and
/// snapshot_path (an output sink, not an input).
/// Doubles are rendered as IEEE bit patterns, so equal strings mean exactly
/// equal configurations. Hashed into the checkpoint RunManifest.
std::string CanonicalOptionsString(const PartitionerOptions& options);

/// Everything a caller needs to judge *how* a run succeeded: which rung of
/// the eigensolver ladder produced the embedding, what the sanitizer had to
/// repair, and how much deadline slack each module left. Surfaced by
/// roadpart_cli and the benchmark harness.
struct RunDiagnostics {
  EigenSolveDiagnostics eigen;          ///< solver path, restarts, residual
  DensityRepairReport density_repairs;  ///< input sanitization repairs
  double deadline_seconds = 0.0;        ///< configured budget (0 = none)
  /// Budget remaining after each module finished; -1 when the module did not
  /// run or no deadline was configured.
  double slack_module1_seconds = -1.0;
  double slack_module2_seconds = -1.0;
  double slack_module3_seconds = -1.0;
  /// Human-readable degradation notes (best-effort solves, repairs, ...).
  std::vector<std::string> warnings;

  /// True when nothing degraded: converged solver, clean input, no warnings.
  bool clean() const {
    return eigen.all_converged && density_repairs.total_repaired() == 0 &&
           warnings.empty();
  }

  /// Multi-line summary for logs / CLI output.
  std::string ToString() const;
};

/// Framework output, including the Table-3 module timing breakdown.
struct PartitionOutcome {
  std::vector<int> assignment;  ///< partition id per road segment
  int k_final = 0;
  int k_prime = 0;          ///< partitions before the exact-k reduction
  int num_supernodes = 0;   ///< 0 for non-supergraph schemes
  double objective = 0.0;   ///< cut objective on the partitioned graph
  double module1_seconds = 0.0;  ///< road graph construction
  double module2_seconds = 0.0;  ///< supergraph mining
  double module3_seconds = 0.0;  ///< (super)graph partitioning
  SupergraphMiningReport mining_report;  ///< filled for ASG / NSG
  RunDiagnostics diagnostics;            ///< resilience-layer telemetry
};

/// Facade over the full framework of Figure 2. One instance is reusable
/// across networks and timestamps.
class Partitioner {
 public:
  explicit Partitioner(PartitionerOptions options)
      : options_(std::move(options)) {}

  const PartitionerOptions& options() const { return options_; }

  /// Runs modules 1-3 on a road network (module 1 = dual-graph
  /// construction is included in the timing breakdown).
  Result<PartitionOutcome> PartitionNetwork(const RoadNetwork& network) const;

  /// Runs modules 2-3 on a pre-built road graph.
  Result<PartitionOutcome> PartitionRoadGraph(const RoadGraph& graph) const;

 private:
  /// Modules 2-3 with `consumed_seconds` already charged against the
  /// deadline (module-1 time when called from PartitionNetwork).
  Result<PartitionOutcome> PartitionWithBudget(const RoadGraph& graph,
                                               double consumed_seconds) const;

  PartitionerOptions options_;
};

}  // namespace roadpart

#endif  // ROADPART_CORE_PARTITIONER_H_
