#ifndef ROADPART_CORE_PARTITIONER_H_
#define ROADPART_CORE_PARTITIONER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/alpha_cut.h"
#include "core/ji_geroliminis.h"
#include "core/normalized_cut.h"
#include "core/refinement.h"
#include "core/supergraph_miner.h"
#include "network/road_graph.h"
#include "network/road_network.h"

namespace roadpart {

/// The evaluation schemes of Section 6.3:
///  - AG:  alpha-Cut directly on the (Gaussian-weighted) road graph
///  - ASG: alpha-Cut on the mined road supergraph
///  - NG:  normalized cut directly on the road graph (the baseline)
///  - NSG: normalized cut on the road supergraph
///  - JiGeroliminis: the three-phase method of [5]
enum class Scheme { kAG, kASG, kNG, kNSG, kJiGeroliminis };

const char* SchemeName(Scheme scheme);

/// End-to-end framework configuration.
struct PartitionerOptions {
  Scheme scheme = Scheme::kASG;
  int k = 6;  ///< desired number of partitions
  SupergraphMinerOptions miner;           ///< module 2 (supergraph schemes)
  SpectralOptions spectral;               ///< eigensolver policy
  KMeansOptions kmeans;                   ///< embedding clustering
  JiGeroliminisOptions ji;                ///< baseline parameters
  bool enforce_exact_k = true;            ///< reduce k' -> k (Section 5.4)
  /// Which Section 5.4 reduction runs when k' > k. The paper adopts
  /// recursive bipartitioning; greedy pruning often merges better on large
  /// supergraphs (see bench_ablation_kprime).
  ExactKMethod exact_k_method = ExactKMethod::kRecursiveBipartition;
  bool enforce_connectivity = true;       ///< guarantee condition C.2
  /// Post-pass moving boundary segments between partitions when that lowers
  /// the cut objective (extension; see core/refinement.h). Off by default to
  /// match the paper's pipeline.
  bool refine_boundary = false;
  RefinementOptions refinement;
  uint64_t seed = 1;  ///< randomizes embedding k-means (paper: 100 reruns)
  /// Worker threads for the spectral kernels (SpMV, operator applies,
  /// reorthogonalization, row normalization, k-means restarts). 0 keeps the
  /// process-wide default (SetDefaultParallelism / RP_THREADS / hardware).
  /// Purely a performance knob: every kernel uses fixed block decompositions
  /// with order-fixed reductions, so results are bit-identical for any value
  /// (see tests/parallel_determinism_test.cc).
  int num_threads = 0;
};

/// Framework output, including the Table-3 module timing breakdown.
struct PartitionOutcome {
  std::vector<int> assignment;  ///< partition id per road segment
  int k_final = 0;
  int k_prime = 0;          ///< partitions before the exact-k reduction
  int num_supernodes = 0;   ///< 0 for non-supergraph schemes
  double objective = 0.0;   ///< cut objective on the partitioned graph
  double module1_seconds = 0.0;  ///< road graph construction
  double module2_seconds = 0.0;  ///< supergraph mining
  double module3_seconds = 0.0;  ///< (super)graph partitioning
  SupergraphMiningReport mining_report;  ///< filled for ASG / NSG
};

/// Facade over the full framework of Figure 2. One instance is reusable
/// across networks and timestamps.
class Partitioner {
 public:
  explicit Partitioner(PartitionerOptions options)
      : options_(std::move(options)) {}

  const PartitionerOptions& options() const { return options_; }

  /// Runs modules 1-3 on a road network (module 1 = dual-graph
  /// construction is included in the timing breakdown).
  Result<PartitionOutcome> PartitionNetwork(const RoadNetwork& network) const;

  /// Runs modules 2-3 on a pre-built road graph.
  Result<PartitionOutcome> PartitionRoadGraph(const RoadGraph& graph) const;

 private:
  PartitionerOptions options_;
};

}  // namespace roadpart

#endif  // ROADPART_CORE_PARTITIONER_H_
