#ifndef ROADPART_CORE_SUPERGRAPH_H_
#define ROADPART_CORE_SUPERGRAPH_H_

#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// A supernode (Definition 6): a set of road-graph nodes with similar
/// feature values that are interlinked, plus its representative feature.
struct Supernode {
  std::vector<int> members;  ///< road-graph node ids
  double feature = 0.0;      ///< sigma.f (cluster mean / member mean)
};

/// The road supergraph G_s = (V_s, E_s, W_s) of Definition 8. Superlinks and
/// their weights live in a weighted CsrGraph over supernode ids.
class Supergraph {
 public:
  Supergraph() = default;

  /// Assembles a supergraph; validates that `supernodes` partition
  /// [0, num_road_nodes) and that `links` is over supernode ids.
  static Result<Supergraph> Create(std::vector<Supernode> supernodes,
                                   CsrGraph links, int num_road_nodes);

  int num_supernodes() const { return static_cast<int>(supernodes_.size()); }
  int num_road_nodes() const {
    return static_cast<int>(node_to_supernode_.size());
  }

  const Supernode& supernode(int id) const { return supernodes_[id]; }
  const std::vector<Supernode>& supernodes() const { return supernodes_; }

  /// Weighted superlink structure (weights are the omega_i of Equation 3).
  const CsrGraph& links() const { return links_; }

  /// Supernode id containing road-graph node v.
  int SupernodeOf(int v) const { return node_to_supernode_[v]; }

  /// Features of all supernodes in id order.
  std::vector<double> Features() const;

  /// Expands a per-supernode assignment to a per-road-node assignment.
  Result<std::vector<int>> ExpandAssignment(
      const std::vector<int>& supernode_assignment) const;

 private:
  std::vector<Supernode> supernodes_;
  CsrGraph links_;
  std::vector<int> node_to_supernode_;
};

}  // namespace roadpart

#endif  // ROADPART_CORE_SUPERGRAPH_H_
