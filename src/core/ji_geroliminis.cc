#include "core/ji_geroliminis.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/graph_algos.h"

namespace roadpart {

namespace {

// Incremental within-partition variance bookkeeping over densities.
struct VarianceTracker {
  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::vector<int> count;

  void Init(int k, const std::vector<int>& assignment,
            const std::vector<double>& f) {
    sum.assign(k, 0.0);
    sum_sq.assign(k, 0.0);
    count.assign(k, 0);
    for (size_t v = 0; v < assignment.size(); ++v) {
      Add(assignment[v], f[v]);
    }
  }
  void Add(int p, double x) {
    sum[p] += x;
    sum_sq[p] += x * x;
    count[p]++;
  }
  void Remove(int p, double x) {
    sum[p] -= x;
    sum_sq[p] -= x * x;
    count[p]--;
  }
  // Sum of squared deviations (not normalized) of partition p.
  double Sse(int p) const {
    if (count[p] == 0) return 0.0;
    return std::max(0.0, sum_sq[p] - sum[p] * sum[p] / count[p]);
  }
};

}  // namespace

Result<GraphCutResult> JiGeroliminisPartition(
    const CsrGraph& weighted_graph, const std::vector<double>& features,
    int k, const JiGeroliminisOptions& options) {
  const int n = weighted_graph.num_nodes();
  if (static_cast<int>(features.size()) != n) {
    return Status::InvalidArgument("feature count != node count");
  }
  if (k < 1 || k > n) {
    return Status::InvalidArgument(StrPrintf("invalid k=%d for n=%d", k, n));
  }

  // Phase 1: excessive partitioning with normalized cut.
  int k0 = std::min(n, std::max(k + 1, static_cast<int>(std::ceil(
                                           options.over_partition_factor * k))));
  NormalizedCutOptions ncut = options.ncut;
  ncut.pipeline.enforce_exact_k = true;
  ncut.pipeline.enforce_connectivity = true;
  RP_ASSIGN_OR_RETURN(GraphCutResult initial,
                      NormalizedCutPartition(weighted_graph, k0, ncut));
  std::vector<int> assignment = initial.assignment;
  int cur_k = DensifyAssignment(assignment);

  // Phase 2: merge the smallest partition into the adjacent partition with
  // the closest mean density, until k remain.
  while (cur_k > k) {
    std::vector<int> sizes(cur_k, 0);
    std::vector<double> mean(cur_k, 0.0);
    for (int v = 0; v < n; ++v) {
      sizes[assignment[v]]++;
      mean[assignment[v]] += features[v];
    }
    for (int p = 0; p < cur_k; ++p) {
      if (sizes[p] > 0) mean[p] /= sizes[p];
    }
    int smallest = 0;
    for (int p = 1; p < cur_k; ++p) {
      if (sizes[p] < sizes[smallest]) smallest = p;
    }
    // Adjacent partitions of `smallest`.
    std::map<int, double> adjacent;  // partition -> |mean gap|
    for (int v = 0; v < n; ++v) {
      if (assignment[v] != smallest) continue;
      for (int u : weighted_graph.Neighbors(v)) {
        if (assignment[u] != smallest) {
          adjacent.emplace(assignment[u],
                           std::fabs(mean[assignment[u]] - mean[smallest]));
        }
      }
    }
    int target = -1;
    double best_gap = 0.0;
    for (const auto& [p, gap] : adjacent) {
      if (target == -1 || gap < best_gap) {
        target = p;
        best_gap = gap;
      }
    }
    if (target == -1) {
      // Isolated partition (disconnected input graph); stop merging it.
      break;
    }
    for (int v = 0; v < n; ++v) {
      if (assignment[v] == smallest) assignment[v] = target;
    }
    cur_k = DensifyAssignment(assignment);
  }

  // Phase 3: boundary adjustment. Move a boundary segment to a neighbouring
  // partition when that lowers the total within-partition squared deviation
  // of densities (their "segment uniformity" improvement).
  VarianceTracker tracker;
  tracker.Init(cur_k, assignment, features);
  for (int round = 0; round < options.boundary_rounds; ++round) {
    bool moved = false;
    for (int v = 0; v < n; ++v) {
      int p = assignment[v];
      if (tracker.count[p] <= 1) continue;  // never empty a partition
      // Candidate targets: partitions adjacent through v's edges.
      std::map<int, int> touch;  // partition -> #adjacent nodes
      for (int u : weighted_graph.Neighbors(v)) {
        if (assignment[u] != p) touch[assignment[u]]++;
      }
      if (touch.empty()) continue;
      double base = tracker.Sse(p);
      double best_delta = -1e-12;  // strict improvement only
      int best_target = -1;
      for (const auto& [q, cnt] : touch) {
        (void)cnt;
        double before = base + tracker.Sse(q);
        tracker.Remove(p, features[v]);
        tracker.Add(q, features[v]);
        double after = tracker.Sse(p) + tracker.Sse(q);
        tracker.Remove(q, features[v]);
        tracker.Add(p, features[v]);
        double delta = after - before;
        if (delta < best_delta) {
          best_delta = delta;
          best_target = q;
        }
      }
      if (best_target >= 0) {
        tracker.Remove(p, features[v]);
        tracker.Add(best_target, features[v]);
        assignment[v] = best_target;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Boundary moves can fragment partitions; restore C.2.
  EnforcePartitionConnectivity(weighted_graph, assignment);

  GraphCutResult result;
  result.k_prime = k0;
  result.assignment = std::move(assignment);
  result.k_final = DensifyAssignment(result.assignment);
  result.objective =
      NormalizedCutObjective(weighted_graph, result.assignment);
  result.eigen = initial.eigen;  // phase-1 spectral solves
  return result;
}

}  // namespace roadpart
