#ifndef ROADPART_CORE_ALPHA_CUT_H_
#define ROADPART_CORE_ALPHA_CUT_H_

#include <vector>

#include "common/status.h"
#include "core/spectral_common.h"
#include "graph/csr_graph.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

/// The paper's novel k-way cut (Section 5). Its matrix
///   M = (d d^T) / s - A,   d = weighted degrees, s = 1^T d,
/// is the negative of the Newman modularity matrix; partitioning selects the
/// k smallest eigenvectors of M (Equation 6 / Algorithm 3).
class AlphaCutMethod : public SpectralCutMethod {
 public:
  explicit AlphaCutMethod(const SpectralOptions& spectral = {})
      : spectral_(spectral) {}

  Result<DenseMatrix> Embed(const CsrGraph& graph, int k) const override;
  double Objective(const CsrGraph& graph,
                   const std::vector<int>& assignment) const override;
  double PartitionTerm(double volume, double internal, int size,
                       double total) const override;
  const char* name() const override { return "alpha-cut"; }

 private:
  SpectralOptions spectral_;
};

/// Options for the one-call alpha-Cut partitioner.
struct AlphaCutOptions {
  SpectralOptions spectral;
  SpectralPipelineOptions pipeline;
};

/// Partitions a weighted graph into k partitions with alpha-Cut
/// (Algorithm 3 end to end).
Result<GraphCutResult> AlphaCutPartition(const CsrGraph& graph, int k,
                                         const AlphaCutOptions& options = {});

/// The relaxed matrix-form objective sum_i (c_i^T M c_i) / (c_i^T c_i)
/// (Equation 6) for a discrete assignment.
double AlphaCutObjective(const CsrGraph& graph,
                         const std::vector<int>& assignment);

/// Equation 5 with a constant alpha (the ablation form; the adaptive vector
/// alpha_i = W(P_i, V)/W(V, V) is what AlphaCutObjective uses implicitly).
double AlphaCutObjectiveConstAlpha(const CsrGraph& graph,
                                   const std::vector<int>& assignment,
                                   double alpha);

/// Materialized alpha-Cut matrix M (for tests and small problems).
DenseMatrix AlphaCutMatrix(const CsrGraph& graph);

}  // namespace roadpart

#endif  // ROADPART_CORE_ALPHA_CUT_H_
