#ifndef ROADPART_CORE_NORMALIZED_CUT_H_
#define ROADPART_CORE_NORMALIZED_CUT_H_

#include <vector>

#include "common/status.h"
#include "core/spectral_common.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Shi & Malik's normalized cut [11] in its k-way spectral form (the paper's
/// NG / NSG baselines): embed with the k dominant eigenvectors of
/// D^{-1/2} A D^{-1/2} (equivalently the k smallest of the normalized
/// Laplacian), row-normalize, cluster.
class NormalizedCutMethod : public SpectralCutMethod {
 public:
  explicit NormalizedCutMethod(const SpectralOptions& spectral = {})
      : spectral_(spectral) {}

  Result<DenseMatrix> Embed(const CsrGraph& graph, int k) const override;
  double Objective(const CsrGraph& graph,
                   const std::vector<int>& assignment) const override;
  double PartitionTerm(double volume, double internal, int size,
                       double total) const override;
  const char* name() const override { return "normalized-cut"; }

 private:
  SpectralOptions spectral_;
};

/// Options for the one-call normalized-cut partitioner.
struct NormalizedCutOptions {
  SpectralOptions spectral;
  SpectralPipelineOptions pipeline;
};

/// Partitions a weighted graph into k partitions with normalized cut,
/// through the same pipeline as alpha-Cut for a like-for-like comparison.
Result<GraphCutResult> NormalizedCutPartition(
    const CsrGraph& graph, int k, const NormalizedCutOptions& options = {});

/// The k-way normalized-cut objective sum_i W(P_i, ~P_i) / W(P_i, V).
double NormalizedCutObjective(const CsrGraph& graph,
                              const std::vector<int>& assignment);

}  // namespace roadpart

#endif  // ROADPART_CORE_NORMALIZED_CUT_H_
