#include "core/distributed_repartition.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/durable_io.h"
#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "graph/graph_algos.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

namespace {

constexpr const char* kCacheFormat = "rpinc";
constexpr int kCacheVersion = 1;

// Population std-dev of the features indexed by `nodes`.
double RegionSpread(const std::vector<double>& features,
                    const std::vector<int>& nodes) {
  if (nodes.size() < 2) return 0.0;
  double mean = 0.0;
  for (int v : nodes) mean += features[v];
  mean /= static_cast<double>(nodes.size());
  double acc = 0.0;
  for (int v : nodes) {
    acc += (features[v] - mean) * (features[v] - mean);
  }
  return std::sqrt(acc / static_cast<double>(nodes.size()));
}

// Mean |densities[boundary[i]] - at_cut[i]|; 0 when there is no recorded
// boundary state (sizes must match — a mismatch means no comparable state).
double BoundaryShift(const std::vector<double>& densities,
                     const std::vector<int>& boundary,
                     const std::vector<double>& at_cut) {
  if (boundary.empty() || boundary.size() != at_cut.size()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < boundary.size(); ++i) {
    acc += std::fabs(densities[boundary[i]] - at_cut[i]);
  }
  return acc / static_cast<double>(boundary.size());
}

// The warm-start vector cached from an embedding: the column-sum Z.1 — a
// vector inside the span of the computed eigenvectors, which is exactly what
// a Lanczos start vector should be rich in. Zeroed/empty results are not
// cached (nothing to warm-start from).
std::vector<double> ColumnSumVector(const DenseMatrix& z) {
  std::vector<double> v(static_cast<size_t>(std::max(z.rows(), 0)), 0.0);
  for (int r = 0; r < z.rows(); ++r) {
    double acc = 0.0;
    for (int c = 0; c < z.cols(); ++c) acc += z(r, c);
    v[static_cast<size_t>(r)] = acc;
  }
  double norm = 0.0;
  for (double x : v) norm += x * x;
  if (!(norm > 0.0) || !std::isfinite(norm)) v.clear();
  return v;
}

}  // namespace

uint64_t IncrementalRepartitioner::CacheKey() const {
  // Topology + frozen region structure + output-affecting options. Features
  // are deliberately excluded: the cache is *state*, valid for any interval
  // of the same network under the same configuration.
  uint64_t key = Fnv1a64(CanonicalOptionsString(options_.partitioner));
  key = Fnv1a64(&num_nodes_, sizeof(num_nodes_), key);
  for (const std::vector<int>& region : regions_) {
    size_t size = region.size();
    key = Fnv1a64(&size, sizeof(size), key);
    if (!region.empty()) {
      key = Fnv1a64(region.data(), region.size() * sizeof(int), key);
    }
  }
  key = Fnv1a64(DoubleToBitsHex(options_.trigger_ratio), key);
  key = Fnv1a64(DoubleToBitsHex(options_.boundary_delta_ratio), key);
  return key;
}

Result<IncrementalRepartitioner> IncrementalRepartitioner::Create(
    const RoadGraph& road_graph, const std::vector<int>& region_assignment,
    const DistributedRepartitionOptions& options) {
  const int n = road_graph.num_nodes();
  if (static_cast<int>(region_assignment.size()) != n) {
    return Status::InvalidArgument(
        StrPrintf("assignment has %zu entries for %d nodes",
                  region_assignment.size(), n));
  }
  int num_regions = 0;
  for (int a : region_assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    num_regions = std::max(num_regions, a + 1);
  }
  if (options.partitioner.k < 1) {
    return Status::InvalidArgument("per-region k must be >= 1");
  }

  IncrementalRepartitioner engine;
  engine.options_ = options;
  engine.num_nodes_ = n;
  engine.regions_ = GroupByAssignment(region_assignment, num_regions);
  engine.cache_.resize(engine.regions_.size());

  // Frozen per-region structure: induced topology (re-cut input) and
  // boundary nodes (dirty-detection input). Both depend only on the
  // adjacency and the region assignment, never on densities.
  engine.subgraphs_.reserve(engine.regions_.size());
  engine.boundaries_.reserve(engine.regions_.size());
  const CsrGraph& adjacency = road_graph.adjacency();
  for (const std::vector<int>& region : engine.regions_) {
    engine.subgraphs_.push_back(region.empty()
                                    ? CsrGraph()
                                    : adjacency.InducedSubgraph(region));
    std::vector<int> boundary;
    for (int v : region) {
      for (int u : adjacency.Neighbors(v)) {
        if (region_assignment[u] != region_assignment[v]) {
          boundary.push_back(v);
          break;
        }
      }
    }
    engine.boundaries_.push_back(std::move(boundary));
  }
  return engine;
}

Result<DistributedRepartitionResult> IncrementalRepartitioner::Refresh(
    const std::vector<double>& densities) {
  const int n = num_nodes_;
  if (static_cast<int>(densities.size()) != n) {
    return Status::InvalidArgument(
        StrPrintf("densities has %zu entries for %d nodes", densities.size(),
                  n));
  }
  const size_t num_regions = regions_.size();
  Timer total;
  Timer phase;

  DistributedRepartitionResult result;
  result.assignment.assign(n, -1);
  result.stats.region_info.reserve(num_regions);

  // --- Phase 1 (serial): dirty-region detection --------------------------
  // Serial so the two fault sites below are queried a fixed number of times
  // per refresh regardless of thread count.
  const double global_scale = std::sqrt(std::max(Variance(densities), 0.0));
  const bool detect_overflow = RP_FAULT_FIRES(FaultSite::kDirtyDetectOverflow);
  if (detect_overflow) {
    warnings_.push_back(
        "dirty-region detector overflow: marking every region dirty");
  }
  const bool warm_corrupt = RP_FAULT_FIRES(FaultSite::kWarmStartCorruption);
  if (warm_corrupt) {
    warnings_.push_back(
        "warm-start cache flagged corrupt: cold-starting every solve");
  }

  std::vector<double> spread_now(num_regions, 0.0);
  std::vector<int> dirty_list;
  std::vector<char> is_dirty(num_regions, 0);
  for (size_t r = 0; r < num_regions; ++r) {
    const std::vector<int>& region = regions_[r];
    if (region.empty()) continue;
    spread_now[r] = RegionSpread(densities, region);
    bool dirty;
    if (detect_overflow || options_.trigger_ratio <= 0.0) {
      // Overflow degrades to a safe over-recut; ratio <= 0 is the
      // historical always-recut configuration.
      dirty = true;
    } else if (!cache_[r].valid) {
      // No cached cut to reuse: the absolute-spread rule of the one-shot
      // entry point (uniform regions are cheap to keep whole either way).
      dirty = spread_now[r] > options_.trigger_ratio * global_scale;
    } else {
      dirty = std::fabs(spread_now[r] - cache_[r].spread_at_cut) >
              options_.trigger_ratio * global_scale;
      if (!dirty && options_.boundary_delta_ratio > 0.0) {
        dirty = BoundaryShift(densities, boundaries_[r],
                              cache_[r].boundary_at_cut) >
                options_.boundary_delta_ratio * global_scale;
      }
    }
    if (dirty) {
      is_dirty[r] = 1;
      dirty_list.push_back(static_cast<int>(r));
    }
  }
  result.stats.trigger_seconds = phase.Seconds();

  // --- Phase 2 (parallel): re-cut dirty regions --------------------------
  // One outcome slot per dirty region; workers write only their own slot, so
  // results are independent of scheduling. The inner partitioners are pinned
  // to 1 thread whenever this fan-out is parallel (see header policy).
  struct RegionOutcome {
    std::vector<int> local;      // per region-member sub-partition id
    int k = 1;                   // sub-partitions produced (1 = kept whole)
    bool repartitioned = false;
    bool warm_attempted = false;
    bool warm_used = false;
    std::vector<double> new_warm;
    double seconds = 0.0;
  };
  const int dirty_count = static_cast<int>(dirty_list.size());
  int outer_threads =
      options_.num_threads > 0 ? options_.num_threads : DefaultParallelism();
  const bool outer_parallel = outer_threads > 1 && dirty_count > 1;

  phase.Restart();
  std::vector<RegionOutcome> slots(dirty_list.size());
  ParallelForTasks(
      dirty_count,
      [&](int slot) {
        Timer region_timer;
        const int r = dirty_list[static_cast<size_t>(slot)];
        const std::vector<int>& region = regions_[static_cast<size_t>(r)];
        RegionOutcome& out = slots[static_cast<size_t>(slot)];
        out.local.assign(region.size(), 0);
        if (options_.partitioner.k == 1 ||
            static_cast<int>(region.size()) <= options_.partitioner.k) {
          out.seconds = region_timer.Seconds();
          return;  // kept whole
        }
        std::vector<double> sub_features(region.size());
        for (size_t i = 0; i < region.size(); ++i) {
          sub_features[i] = densities[region[i]];
        }
        auto sub_rg =
            RoadGraph::FromParts(CsrGraph(subgraphs_[static_cast<size_t>(r)]),
                                 std::move(sub_features));
        if (!sub_rg.ok()) {
          out.seconds = region_timer.Seconds();
          return;  // keep whole on any local failure
        }
        PartitionerOptions popt = options_.partitioner;
        if (outer_parallel) popt.num_threads = 1;
        DenseMatrix embedding(0, 0);
        popt.embedding_sink = &embedding;
        const std::vector<double>& warm =
            cache_[static_cast<size_t>(r)].warm;
        if (options_.warm_start_embeddings && !warm_corrupt &&
            !warm.empty()) {
          out.warm_attempted = true;
          popt.spectral.lanczos.warm_start = &warm;
        }
        Partitioner partitioner(popt);
        auto outcome = partitioner.PartitionRoadGraph(*sub_rg);
        if (outcome.ok()) {
          out.local = std::move(outcome->assignment);
          out.k = outcome->k_final;
          out.repartitioned = out.k > 1;
        }
        // The solver only adopts a warm vector matching the cut target's
        // order; infer acceptance by comparing against the embedding the
        // run actually produced (its row count is that order).
        out.warm_used = out.warm_attempted && embedding.rows() > 0 &&
                        static_cast<size_t>(embedding.rows()) == warm.size();
        out.new_warm = ColumnSumVector(embedding);
        out.seconds = region_timer.Seconds();
      },
      options_.num_threads);
  result.stats.subpartition_seconds = phase.Seconds();

  // --- Phase 3 (serial): merge label spaces, update the cache ------------
  phase.Restart();
  std::vector<int> slot_of_region(num_regions, -1);
  for (int s = 0; s < dirty_count; ++s) {
    slot_of_region[static_cast<size_t>(dirty_list[static_cast<size_t>(s)])] =
        s;
  }
  int next_id = 0;
  for (size_t r = 0; r < num_regions; ++r) {
    const std::vector<int>& region = regions_[r];
    if (region.empty()) continue;
    RegionCache& cached = cache_[r];
    RegionRefreshInfo info;
    info.region = static_cast<int>(r);
    info.size = static_cast<int>(region.size());
    info.dirty = is_dirty[r] != 0;
    if (info.dirty) {
      RegionOutcome& out = slots[static_cast<size_t>(slot_of_region[r])];
      cached.valid = true;
      cached.repartitioned = out.repartitioned;
      cached.k = out.k;
      cached.local = std::move(out.local);
      cached.spread_at_cut = spread_now[r];
      cached.boundary_at_cut.resize(boundaries_[r].size());
      for (size_t i = 0; i < boundaries_[r].size(); ++i) {
        cached.boundary_at_cut[i] = densities[boundaries_[r][i]];
      }
      cached.warm = std::move(out.new_warm);
      info.warm_started = out.warm_used;
      info.seconds = out.seconds;
      result.stats.warm_started += out.warm_used ? 1 : 0;
      result.stats.warm_rejected +=
          (out.warm_attempted && !out.warm_used) ? 1 : 0;
      ++result.stats.dirty;
    } else {
      if (!cached.valid) {
        // Clean with nothing cached (cold, below the absolute trigger):
        // keep whole and record the state so later deltas are meaningful.
        cached.valid = true;
        cached.repartitioned = false;
        cached.k = 1;
        cached.local.assign(region.size(), 0);
        cached.spread_at_cut = spread_now[r];
        cached.boundary_at_cut.resize(boundaries_[r].size());
        for (size_t i = 0; i < boundaries_[r].size(); ++i) {
          cached.boundary_at_cut[i] = densities[boundaries_[r][i]];
        }
        cached.warm.clear();
      }
      ++result.stats.clean;
    }
    for (size_t i = 0; i < region.size(); ++i) {
      result.assignment[region[i]] = next_id + cached.local[i];
    }
    next_id += cached.k;
    info.repartitioned = cached.repartitioned && info.dirty;
    info.k = cached.k;
    if (info.repartitioned) ++result.regions_repartitioned;
    ++result.stats.regions;
    result.stats.region_info.push_back(info);
  }
  result.stats.merge_seconds = phase.Seconds();

  result.k_final = next_id;
  result.seconds = total.Seconds();
  ++refreshes_;
  return result;
}

Status IncrementalRepartitioner::SaveCache(const std::string& path) const {
  std::ostringstream payload;
  payload << "key " << Uint64ToHex(CacheKey()) << "\n";
  payload << "regions " << regions_.size() << " refreshes " << refreshes_
          << "\n";
  for (size_t r = 0; r < cache_.size(); ++r) {
    const RegionCache& c = cache_[r];
    payload << "region " << r << " valid " << (c.valid ? 1 : 0)
            << " repartitioned " << (c.repartitioned ? 1 : 0) << " k " << c.k
            << " spread " << DoubleToBitsHex(c.spread_at_cut) << "\n";
    payload << "labels " << c.local.size();
    for (int x : c.local) payload << " " << x;
    payload << "\n";
    payload << "boundary " << c.boundary_at_cut.size();
    for (double x : c.boundary_at_cut) payload << " " << DoubleToBitsHex(x);
    payload << "\n";
    payload << "warm " << c.warm.size();
    for (double x : c.warm) payload << " " << DoubleToBitsHex(x);
    payload << "\n";
  }
  return WriteArtifact(path, kCacheFormat, kCacheVersion, payload.str(),
                       options_.partitioner.checkpoint.retry);
}

Result<bool> IncrementalRepartitioner::LoadCache(const std::string& path) {
  ArtifactReadOptions read;
  read.expected_format = kCacheFormat;
  read.require_envelope = true;
  read.retry = options_.partitioner.checkpoint.retry;
  auto payload = ReadArtifact(path, read);
  if (!payload.ok()) {
    warnings_.push_back("incremental cache not adopted (" +
                        payload.status().ToString() + "); cold start");
    return false;
  }

  // Strict line-oriented decode into a scratch cache; only a fully valid
  // artifact whose key matches this engine is adopted.
  std::istringstream in(*payload);
  auto fail = [&](const std::string& why) -> Result<bool> {
    warnings_.push_back("incremental cache undecodable (" + why +
                        "); cold start");
    return false;
  };
  std::string tag, hex;
  if (!(in >> tag >> hex) || tag != "key") return fail("missing key line");
  auto key = Uint64FromHex(hex);
  if (!key.ok()) return fail("bad key");
  if (*key != CacheKey()) {
    warnings_.push_back(
        "incremental cache keyed to a different graph/options; cold start");
    return false;
  }
  size_t stored_regions = 0;
  int stored_refreshes = 0;
  if (!(in >> tag >> stored_regions) || tag != "regions") {
    return fail("missing regions line");
  }
  if (!(in >> tag >> stored_refreshes) || tag != "refreshes") {
    return fail("missing refreshes field");
  }
  if (stored_regions != regions_.size()) return fail("region count mismatch");

  std::vector<RegionCache> scratch(stored_regions);
  for (size_t r = 0; r < stored_regions; ++r) {
    size_t id = 0;
    int valid = 0, repartitioned = 0, k = 0;
    RegionCache& c = scratch[r];
    if (!(in >> tag >> id) || tag != "region" || id != r) {
      return fail("bad region header");
    }
    if (!(in >> tag >> valid) || tag != "valid") return fail("bad valid");
    if (!(in >> tag >> repartitioned) || tag != "repartitioned") {
      return fail("bad repartitioned");
    }
    if (!(in >> tag >> k) || tag != "k" || k < 0) return fail("bad k");
    if (!(in >> tag >> hex) || tag != "spread") return fail("bad spread");
    auto spread = DoubleFromBitsHex(hex);
    if (!spread.ok()) return fail("bad spread bits");
    c.valid = valid != 0;
    c.repartitioned = repartitioned != 0;
    c.k = k;
    c.spread_at_cut = *spread;

    size_t count = 0;
    if (!(in >> tag >> count) || tag != "labels") return fail("bad labels");
    if (count != regions_[r].size() && c.valid) {
      return fail("label count mismatch");
    }
    c.local.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(in >> c.local[i]) || c.local[i] < 0 || c.local[i] >= std::max(c.k, 1)) {
        return fail("bad label value");
      }
    }
    if (!(in >> tag >> count) || tag != "boundary") return fail("bad boundary");
    c.boundary_at_cut.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(in >> hex)) return fail("short boundary row");
      auto bits = DoubleFromBitsHex(hex);
      if (!bits.ok()) return fail("bad boundary bits");
      c.boundary_at_cut[i] = *bits;
    }
    if (!(in >> tag >> count) || tag != "warm") return fail("bad warm");
    c.warm.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(in >> hex)) return fail("short warm row");
      auto bits = DoubleFromBitsHex(hex);
      if (!bits.ok()) return fail("bad warm bits");
      c.warm[i] = *bits;
    }
  }
  cache_ = std::move(scratch);
  refreshes_ = stored_refreshes;
  return true;
}

Result<DistributedRepartitionResult> RepartitionWithinRegions(
    const RoadGraph& road_graph, const std::vector<int>& previous_assignment,
    const DistributedRepartitionOptions& options) {
  RP_ASSIGN_OR_RETURN(
      IncrementalRepartitioner engine,
      IncrementalRepartitioner::Create(road_graph, previous_assignment,
                                       options));
  return engine.Refresh(road_graph.features());
}

}  // namespace roadpart
