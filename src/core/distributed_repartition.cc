#include "core/distributed_repartition.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "graph/graph_algos.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

namespace {

// Population std-dev of the features indexed by `nodes`.
double RegionSpread(const std::vector<double>& features,
                    const std::vector<int>& nodes) {
  if (nodes.size() < 2) return 0.0;
  double mean = 0.0;
  for (int v : nodes) mean += features[v];
  mean /= static_cast<double>(nodes.size());
  double acc = 0.0;
  for (int v : nodes) {
    acc += (features[v] - mean) * (features[v] - mean);
  }
  return std::sqrt(acc / static_cast<double>(nodes.size()));
}

}  // namespace

Result<DistributedRepartitionResult> RepartitionWithinRegions(
    const RoadGraph& road_graph, const std::vector<int>& previous_assignment,
    const DistributedRepartitionOptions& options) {
  const int n = road_graph.num_nodes();
  if (static_cast<int>(previous_assignment.size()) != n) {
    return Status::InvalidArgument(
        StrPrintf("assignment has %zu entries for %d nodes",
                  previous_assignment.size(), n));
  }
  int num_regions = 0;
  for (int a : previous_assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    num_regions = std::max(num_regions, a + 1);
  }
  if (options.partitioner.k < 1) {
    return Status::InvalidArgument("per-region k must be >= 1");
  }

  Timer timer;
  const std::vector<double>& features = road_graph.features();
  double global_spread = std::sqrt(std::max(Variance(features), 0.0));

  DistributedRepartitionResult result;
  result.assignment.assign(n, -1);
  std::vector<std::vector<int>> regions =
      GroupByAssignment(previous_assignment, num_regions);

  // Phase 1 (parallel): each region computes its local sub-assignment
  // independently — this is the "distributively" of Section 6.4.
  struct RegionOutcome {
    std::vector<int> local;  // per region-member sub-partition id
    int k = 1;               // sub-partitions produced (1 = kept whole)
    bool repartitioned = false;
  };
  std::vector<RegionOutcome> outcomes(regions.size());
  ParallelFor(
      static_cast<int>(regions.size()),
      [&](int r) {
        const std::vector<int>& region = regions[r];
        RegionOutcome& out = outcomes[r];
        out.local.assign(region.size(), 0);
        if (region.empty()) {
          out.k = 0;
          return;
        }
        bool triggered =
            options.trigger_ratio <= 0.0 ||
            RegionSpread(features, region) >
                options.trigger_ratio * global_spread;
        if (!triggered || options.partitioner.k == 1 ||
            static_cast<int>(region.size()) <= options.partitioner.k) {
          return;  // kept whole
        }
        CsrGraph subgraph = road_graph.adjacency().InducedSubgraph(region);
        std::vector<double> sub_features(region.size());
        for (size_t i = 0; i < region.size(); ++i) {
          sub_features[i] = features[region[i]];
        }
        auto sub_rg = RoadGraph::FromParts(std::move(subgraph),
                                           std::move(sub_features));
        if (!sub_rg.ok()) return;  // keep whole on any local failure
        Partitioner partitioner(options.partitioner);
        auto outcome = partitioner.PartitionRoadGraph(*sub_rg);
        if (!outcome.ok()) return;  // region too small/uniform: keep whole
        out.local = std::move(outcome->assignment);
        out.k = outcome->k_final;
        out.repartitioned = true;
      },
      options.num_threads);

  // Phase 2 (sequential): merge region-local label spaces.
  int next_id = 0;
  for (size_t r = 0; r < regions.size(); ++r) {
    const std::vector<int>& region = regions[r];
    if (region.empty()) continue;
    const RegionOutcome& out = outcomes[r];
    for (size_t i = 0; i < region.size(); ++i) {
      result.assignment[region[i]] = next_id + out.local[i];
    }
    next_id += out.k;
    if (out.repartitioned) ++result.regions_repartitioned;
  }

  result.k_final = next_id;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace roadpart
