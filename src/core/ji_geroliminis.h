#ifndef ROADPART_CORE_JI_GEROLIMINIS_H_
#define ROADPART_CORE_JI_GEROLIMINIS_H_

#include <vector>

#include "common/status.h"
#include "core/normalized_cut.h"
#include "core/spectral_common.h"
#include "graph/csr_graph.h"

namespace roadpart {

/// Options for the Ji & Geroliminis (2012) baseline [5]. Their three-phase
/// method: (1) over-partition with normalized cut, (2) merge small partitions
/// down to k, (3) adjust boundary segments into the neighbouring partition
/// when that improves density uniformity. The original paper is closed
/// access; this follows the description in Section 7 (see DESIGN.md
/// substitution #6).
struct JiGeroliminisOptions {
  /// Initial over-partitioning runs normalized cut with
  /// ceil(over_partition_factor * k) parts.
  double over_partition_factor = 2.0;
  /// Boundary-adjustment sweeps.
  int boundary_rounds = 5;
  NormalizedCutOptions ncut;
};

/// Runs the three-phase baseline on a weighted road graph with per-node
/// densities, producing k connected partitions.
Result<GraphCutResult> JiGeroliminisPartition(
    const CsrGraph& weighted_graph, const std::vector<double>& features,
    int k, const JiGeroliminisOptions& options = {});

}  // namespace roadpart

#endif  // ROADPART_CORE_JI_GEROLIMINIS_H_
