#include "core/partitioner.h"

#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/spectral_common.h"

namespace roadpart {

std::string RunDiagnostics::ToString() const {
  std::string out = StrPrintf(
      "solver path: %s (%d solves, %d restarts, worst Ritz residual %.3e, "
      "%s)\n",
      SolverPathName(eigen.solver_path), eigen.solves, eigen.lanczos_restarts,
      eigen.worst_ritz_residual,
      eigen.all_converged ? "converged" : "best-effort");
  out += StrPrintf(
      "densities repaired: %d (nan %d, inf %d, negative %d, padded %d, "
      "truncated %d)\n",
      density_repairs.total_repaired(), density_repairs.nan_replaced,
      density_repairs.inf_clamped, density_repairs.negative_clamped,
      density_repairs.padded, density_repairs.truncated);
  if (deadline_seconds > 0.0) {
    out += StrPrintf("deadline: %.3fs (slack after modules:", deadline_seconds);
    const double slack[3] = {slack_module1_seconds, slack_module2_seconds,
                             slack_module3_seconds};
    for (int m = 0; m < 3; ++m) {
      out += slack[m] < 0.0 ? StrPrintf(" m%d=-", m + 1)
                            : StrPrintf(" m%d=%.3fs", m + 1, slack[m]);
    }
    out += ")\n";
  }
  for (const std::string& w : warnings) {
    out += "warning: " + w + "\n";
  }
  return out;
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAG:
      return "AG";
    case Scheme::kASG:
      return "ASG";
    case Scheme::kNG:
      return "NG";
    case Scheme::kNSG:
      return "NSG";
    case Scheme::kJiGeroliminis:
      return "JiGeroliminis";
  }
  return "?";
}

Result<PartitionOutcome> Partitioner::PartitionNetwork(
    const RoadNetwork& network) const {
  ScopedParallelism threads(options_.num_threads);
  Timer timer;
  RoadGraph graph = RoadGraph::FromNetwork(network);
  double module1 = timer.Seconds();
  RP_ASSIGN_OR_RETURN(PartitionOutcome outcome,
                      PartitionWithBudget(graph, module1));
  outcome.module1_seconds = module1;
  return outcome;
}

Result<PartitionOutcome> Partitioner::PartitionRoadGraph(
    const RoadGraph& graph) const {
  return PartitionWithBudget(graph, /*consumed_seconds=*/0.0);
}

Result<PartitionOutcome> Partitioner::PartitionWithBudget(
    const RoadGraph& input_graph, double consumed_seconds) const {
  ScopedParallelism threads(options_.num_threads);
  PartitionOutcome outcome;
  const int k = options_.k;
  const double deadline = options_.deadline_seconds;
  outcome.diagnostics.deadline_seconds = deadline;

  // The deadline is enforced at module boundaries, never inside a kernel:
  // kernels stay deterministic and an overrun is detected at the next
  // boundary (so the budget can be exceeded by at most one module).
  Timer budget_timer;
  auto remaining = [&]() {
    return deadline - consumed_seconds - budget_timer.Seconds();
  };
  auto check_deadline = [&](const char* boundary) -> Status {
    if (deadline <= 0.0) return Status::OK();
    double left = remaining();
    if (left < 0.0) {
      return Status::DeadlineExceeded(
          StrPrintf("deadline of %.3fs expired %s (%.3fs over budget)",
                    deadline, boundary, -left));
    }
    return Status::OK();
  };
  if (deadline > 0.0 && consumed_seconds > 0.0) {
    outcome.diagnostics.slack_module1_seconds = deadline - consumed_seconds;
  }
  RP_RETURN_IF_ERROR(check_deadline("after road-graph construction"));

  // Input sanitization: densities enter the pipeline validated or repaired,
  // never raw. A rebuilt graph is only materialized when repairs occurred.
  DensityRepairReport& repairs = outcome.diagnostics.density_repairs;
  RP_ASSIGN_OR_RETURN(
      std::vector<double> densities,
      SanitizeDensities(input_graph.features(), options_.density_policy,
                        input_graph.num_nodes(), &repairs));
  RoadGraph repaired_graph;
  const RoadGraph* active = &input_graph;
  if (repairs.total_repaired() > 0) {
    RP_ASSIGN_OR_RETURN(repaired_graph,
                        RoadGraph::FromParts(input_graph.adjacency(),
                                             std::move(densities)));
    active = &repaired_graph;
  }
  const RoadGraph& graph = *active;

  SpectralPipelineOptions pipeline;
  pipeline.kmeans = options_.kmeans;
  pipeline.kmeans.seed = options_.seed;
  pipeline.enforce_exact_k = options_.enforce_exact_k;
  pipeline.exact_k_method = options_.exact_k_method;
  pipeline.enforce_connectivity = options_.enforce_connectivity;

  Timer timer;
  switch (options_.scheme) {
    case Scheme::kAG:
    case Scheme::kNG: {
      CsrGraph weighted =
          GaussianWeightedGraph(graph.adjacency(), graph.features());
      timer.Restart();
      GraphCutResult cut;
      if (options_.scheme == Scheme::kAG) {
        AlphaCutOptions alpha{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(weighted, k, alpha));
      } else {
        NormalizedCutOptions ncut{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(weighted, k, ncut));
      }
      if (options_.refine_boundary) {
        if (options_.scheme == Scheme::kAG) {
          AlphaCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(weighted, cut.assignment, method,
                                             options_.refinement));
          cut.objective = method.Objective(weighted, cut.assignment);
        } else {
          NormalizedCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(weighted, cut.assignment, method,
                                             options_.refinement));
          cut.objective = method.Objective(weighted, cut.assignment);
        }
        cut.k_final = DensifyAssignment(cut.assignment);
      }
      outcome.module3_seconds = timer.Seconds();
      outcome.diagnostics.eigen = cut.eigen;
      outcome.assignment = std::move(cut.assignment);
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
    case Scheme::kASG:
    case Scheme::kNSG: {
      timer.Restart();
      // The second level needs at least k supernodes to produce k
      // partitions.
      SupergraphMinerOptions miner = options_.miner;
      miner.min_supernodes = std::max(miner.min_supernodes, k);
      RP_ASSIGN_OR_RETURN(
          Supergraph sg,
          MineSupergraph(graph, miner, &outcome.mining_report));
      if (sg.num_supernodes() < k) {
        // Every clustering configuration condensed below k regions (tiny or
        // near-uniform networks): force the stability pass to its strictest
        // setting, which splits supernodes down to uniform-feature groups.
        miner.stability.threshold = 1.0;
        RP_ASSIGN_OR_RETURN(
            sg, MineSupergraph(graph, miner, &outcome.mining_report));
      }
      if (sg.num_supernodes() < k) {
        // Fully uniform densities leave nothing for the supergraph to
        // distinguish: fall back to cutting the road graph directly (a
        // purely topological split, the only meaningful answer here).
        outcome.module2_seconds = timer.Seconds();
        if (deadline > 0.0) {
          outcome.diagnostics.slack_module2_seconds = remaining();
        }
        RP_RETURN_IF_ERROR(check_deadline("after supergraph mining"));
        CsrGraph weighted =
            GaussianWeightedGraph(graph.adjacency(), graph.features());
        timer.Restart();
        GraphCutResult cut;
        if (options_.scheme == Scheme::kASG) {
          AlphaCutOptions alpha{options_.spectral, pipeline};
          RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(weighted, k, alpha));
        } else {
          NormalizedCutOptions ncut{options_.spectral, pipeline};
          RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(weighted, k, ncut));
        }
        outcome.module3_seconds = timer.Seconds();
        outcome.num_supernodes = sg.num_supernodes();
        outcome.diagnostics.eigen = cut.eigen;
        outcome.assignment = std::move(cut.assignment);
        outcome.k_final = cut.k_final;
        outcome.k_prime = cut.k_prime;
        outcome.objective = cut.objective;
        break;
      }
      outcome.module2_seconds = timer.Seconds();
      outcome.num_supernodes = sg.num_supernodes();
      if (deadline > 0.0) {
        outcome.diagnostics.slack_module2_seconds = remaining();
      }
      RP_RETURN_IF_ERROR(check_deadline("after supergraph mining"));

      timer.Restart();
      GraphCutResult cut;
      if (options_.scheme == Scheme::kASG) {
        AlphaCutOptions alpha{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(sg.links(), k, alpha));
      } else {
        NormalizedCutOptions ncut{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(sg.links(), k, ncut));
      }
      if (options_.refine_boundary) {
        // Refinement at the supernode level keeps supernodes atomic, as the
        // supergraph semantics require.
        if (options_.scheme == Scheme::kASG) {
          AlphaCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(sg.links(), cut.assignment,
                                             method, options_.refinement));
        } else {
          NormalizedCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(sg.links(), cut.assignment,
                                             method, options_.refinement));
        }
        cut.k_final = DensifyAssignment(cut.assignment);
      }
      RP_ASSIGN_OR_RETURN(outcome.assignment,
                          sg.ExpandAssignment(cut.assignment));
      outcome.module3_seconds = timer.Seconds();
      outcome.diagnostics.eigen = cut.eigen;
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
    case Scheme::kJiGeroliminis: {
      CsrGraph weighted =
          GaussianWeightedGraph(graph.adjacency(), graph.features());
      timer.Restart();
      JiGeroliminisOptions ji = options_.ji;
      ji.ncut.spectral = options_.spectral;
      ji.ncut.pipeline.kmeans = pipeline.kmeans;
      RP_ASSIGN_OR_RETURN(
          GraphCutResult cut,
          JiGeroliminisPartition(weighted, graph.features(), k, ji));
      outcome.module3_seconds = timer.Seconds();
      outcome.diagnostics.eigen = cut.eigen;
      outcome.assignment = std::move(cut.assignment);
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
  }
  if (deadline > 0.0) {
    outcome.diagnostics.slack_module3_seconds = remaining();
  }
  RP_RETURN_IF_ERROR(check_deadline("after partitioning"));

  RunDiagnostics& diag = outcome.diagnostics;
  diag.warnings.insert(diag.warnings.end(), repairs.warnings.begin(),
                       repairs.warnings.end());
  if (!diag.eigen.all_converged) {
    diag.warnings.push_back(StrPrintf(
        "eigensolver accepted a best-effort embedding (worst Ritz residual "
        "%.3e); partition quality may be degraded",
        diag.eigen.worst_ritz_residual));
  } else if (diag.eigen.solver_path >= SolverPath::kLanczosRetry) {
    diag.warnings.push_back(StrPrintf(
        "eigensolver escalated to %s before converging",
        SolverPathName(diag.eigen.solver_path)));
  }

  // Every scheme must hand back a complete, dense, non-empty labelling of the
  // road graph; ExpandAssignment and the k'->k reductions above are exactly
  // the places where an off-by-one would otherwise surface as a plausible
  // partition with a silently missing region.
  RP_DCHECK_OK(ValidatePartitionLabels(outcome.assignment, graph.num_nodes(),
                                       outcome.k_final));
  return outcome;
}

}  // namespace roadpart
