#include "core/partitioner.h"

#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/spectral_common.h"

namespace roadpart {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAG:
      return "AG";
    case Scheme::kASG:
      return "ASG";
    case Scheme::kNG:
      return "NG";
    case Scheme::kNSG:
      return "NSG";
    case Scheme::kJiGeroliminis:
      return "JiGeroliminis";
  }
  return "?";
}

Result<PartitionOutcome> Partitioner::PartitionNetwork(
    const RoadNetwork& network) const {
  ScopedParallelism threads(options_.num_threads);
  Timer timer;
  RoadGraph graph = RoadGraph::FromNetwork(network);
  double module1 = timer.Seconds();
  RP_ASSIGN_OR_RETURN(PartitionOutcome outcome, PartitionRoadGraph(graph));
  outcome.module1_seconds = module1;
  return outcome;
}

Result<PartitionOutcome> Partitioner::PartitionRoadGraph(
    const RoadGraph& graph) const {
  ScopedParallelism threads(options_.num_threads);
  PartitionOutcome outcome;
  const int k = options_.k;

  SpectralPipelineOptions pipeline;
  pipeline.kmeans = options_.kmeans;
  pipeline.kmeans.seed = options_.seed;
  pipeline.enforce_exact_k = options_.enforce_exact_k;
  pipeline.exact_k_method = options_.exact_k_method;
  pipeline.enforce_connectivity = options_.enforce_connectivity;

  Timer timer;
  switch (options_.scheme) {
    case Scheme::kAG:
    case Scheme::kNG: {
      CsrGraph weighted =
          GaussianWeightedGraph(graph.adjacency(), graph.features());
      timer.Restart();
      GraphCutResult cut;
      if (options_.scheme == Scheme::kAG) {
        AlphaCutOptions alpha{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(weighted, k, alpha));
      } else {
        NormalizedCutOptions ncut{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(weighted, k, ncut));
      }
      if (options_.refine_boundary) {
        if (options_.scheme == Scheme::kAG) {
          AlphaCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(weighted, cut.assignment, method,
                                             options_.refinement));
          cut.objective = method.Objective(weighted, cut.assignment);
        } else {
          NormalizedCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(weighted, cut.assignment, method,
                                             options_.refinement));
          cut.objective = method.Objective(weighted, cut.assignment);
        }
        cut.k_final = DensifyAssignment(cut.assignment);
      }
      outcome.module3_seconds = timer.Seconds();
      outcome.assignment = std::move(cut.assignment);
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
    case Scheme::kASG:
    case Scheme::kNSG: {
      timer.Restart();
      // The second level needs at least k supernodes to produce k
      // partitions.
      SupergraphMinerOptions miner = options_.miner;
      miner.min_supernodes = std::max(miner.min_supernodes, k);
      RP_ASSIGN_OR_RETURN(
          Supergraph sg,
          MineSupergraph(graph, miner, &outcome.mining_report));
      if (sg.num_supernodes() < k) {
        // Every clustering configuration condensed below k regions (tiny or
        // near-uniform networks): force the stability pass to its strictest
        // setting, which splits supernodes down to uniform-feature groups.
        miner.stability.threshold = 1.0;
        RP_ASSIGN_OR_RETURN(
            sg, MineSupergraph(graph, miner, &outcome.mining_report));
      }
      if (sg.num_supernodes() < k) {
        // Fully uniform densities leave nothing for the supergraph to
        // distinguish: fall back to cutting the road graph directly (a
        // purely topological split, the only meaningful answer here).
        outcome.module2_seconds = timer.Seconds();
        CsrGraph weighted =
            GaussianWeightedGraph(graph.adjacency(), graph.features());
        timer.Restart();
        GraphCutResult cut;
        if (options_.scheme == Scheme::kASG) {
          AlphaCutOptions alpha{options_.spectral, pipeline};
          RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(weighted, k, alpha));
        } else {
          NormalizedCutOptions ncut{options_.spectral, pipeline};
          RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(weighted, k, ncut));
        }
        outcome.module3_seconds = timer.Seconds();
        outcome.num_supernodes = sg.num_supernodes();
        outcome.assignment = std::move(cut.assignment);
        outcome.k_final = cut.k_final;
        outcome.k_prime = cut.k_prime;
        outcome.objective = cut.objective;
        break;
      }
      outcome.module2_seconds = timer.Seconds();
      outcome.num_supernodes = sg.num_supernodes();

      timer.Restart();
      GraphCutResult cut;
      if (options_.scheme == Scheme::kASG) {
        AlphaCutOptions alpha{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(sg.links(), k, alpha));
      } else {
        NormalizedCutOptions ncut{options_.spectral, pipeline};
        RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(sg.links(), k, ncut));
      }
      if (options_.refine_boundary) {
        // Refinement at the supernode level keeps supernodes atomic, as the
        // supergraph semantics require.
        if (options_.scheme == Scheme::kASG) {
          AlphaCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(sg.links(), cut.assignment,
                                             method, options_.refinement));
        } else {
          NormalizedCutMethod method(options_.spectral);
          RP_ASSIGN_OR_RETURN(cut.assignment,
                              RefineBoundary(sg.links(), cut.assignment,
                                             method, options_.refinement));
        }
        cut.k_final = DensifyAssignment(cut.assignment);
      }
      RP_ASSIGN_OR_RETURN(outcome.assignment,
                          sg.ExpandAssignment(cut.assignment));
      outcome.module3_seconds = timer.Seconds();
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
    case Scheme::kJiGeroliminis: {
      CsrGraph weighted =
          GaussianWeightedGraph(graph.adjacency(), graph.features());
      timer.Restart();
      JiGeroliminisOptions ji = options_.ji;
      ji.ncut.spectral = options_.spectral;
      ji.ncut.pipeline.kmeans = pipeline.kmeans;
      RP_ASSIGN_OR_RETURN(
          GraphCutResult cut,
          JiGeroliminisPartition(weighted, graph.features(), k, ji));
      outcome.module3_seconds = timer.Seconds();
      outcome.assignment = std::move(cut.assignment);
      outcome.k_final = cut.k_final;
      outcome.k_prime = cut.k_prime;
      outcome.objective = cut.objective;
      break;
    }
  }
  // Every scheme must hand back a complete, dense, non-empty labelling of the
  // road graph; ExpandAssignment and the k'->k reductions above are exactly
  // the places where an off-by-one would otherwise surface as a plausible
  // partition with a silently missing region.
  RP_DCHECK_OK(ValidatePartitionLabels(outcome.assignment, graph.num_nodes(),
                                       outcome.k_final));
  return outcome;
}

}  // namespace roadpart
