#include "core/partitioner.h"

#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/spectral_common.h"
#include "serve/snapshot.h"

namespace roadpart {

std::string RunDiagnostics::ToString() const {
  std::string out = StrPrintf(
      "solver path: %s (%d solves, %d restarts, worst Ritz residual %.3e, "
      "%s)\n",
      SolverPathName(eigen.solver_path), eigen.solves, eigen.lanczos_restarts,
      eigen.worst_ritz_residual,
      eigen.all_converged ? "converged" : "best-effort");
  out += StrPrintf(
      "densities repaired: %d (nan %d, inf %d, negative %d, padded %d, "
      "truncated %d)\n",
      density_repairs.total_repaired(), density_repairs.nan_replaced,
      density_repairs.inf_clamped, density_repairs.negative_clamped,
      density_repairs.padded, density_repairs.truncated);
  if (deadline_seconds > 0.0) {
    out += StrPrintf("deadline: %.3fs (slack after modules:", deadline_seconds);
    const double slack[3] = {slack_module1_seconds, slack_module2_seconds,
                             slack_module3_seconds};
    for (int m = 0; m < 3; ++m) {
      out += slack[m] < 0.0 ? StrPrintf(" m%d=-", m + 1)
                            : StrPrintf(" m%d=%.3fs", m + 1, slack[m]);
    }
    out += ")\n";
  }
  for (const std::string& w : warnings) {
    out += "warning: " + w + "\n";
  }
  return out;
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAG:
      return "AG";
    case Scheme::kASG:
      return "ASG";
    case Scheme::kNG:
      return "NG";
    case Scheme::kNSG:
      return "NSG";
    case Scheme::kJiGeroliminis:
      return "JiGeroliminis";
  }
  return "?";
}

std::string CanonicalOptionsString(const PartitionerOptions& o) {
  std::ostringstream s;
  auto bits = [](double v) { return DoubleToBitsHex(v); };
  s << "scheme=" << SchemeName(o.scheme) << ";k=" << o.k;
  s << ";miner.max_kappa=" << o.miner.max_kappa
    << ";miner.mcg_abs=" << bits(o.miner.mcg_threshold_absolute)
    << ";miner.mcg_frac=" << bits(o.miner.mcg_threshold_fraction)
    << ";miner.sample_size=" << o.miner.sample_size
    << ";miner.min_supernodes=" << o.miner.min_supernodes
    << ";miner.stability.threshold=" << bits(o.miner.stability.threshold)
    << ";miner.stability.split=" << o.miner.stability.split_into_components
    << ";miner.weight_scheme=" << static_cast<int>(o.miner.weight_scheme)
    << ";miner.seed=" << o.miner.seed;
  s << ";spectral.dense_threshold=" << o.spectral.dense_threshold
    << ";spectral.lanczos.max_subspace=" << o.spectral.lanczos.max_subspace
    << ";spectral.lanczos.tolerance=" << bits(o.spectral.lanczos.tolerance)
    << ";spectral.lanczos.seed=" << o.spectral.lanczos.seed
    << ";spectral.lanczos.max_restarts=" << o.spectral.lanczos.max_restarts
    << ";spectral.on_nonconvergence="
    << static_cast<int>(o.spectral.on_nonconvergence)
    << ";spectral.dense_fallback_max=" << o.spectral.dense_fallback_max;
  s << ";kmeans.max_iterations=" << o.kmeans.max_iterations
    << ";kmeans.restarts=" << o.kmeans.restarts
    << ";kmeans.kmeanspp=" << o.kmeans.use_kmeanspp
    << ";kmeans.seed=" << o.kmeans.seed;
  s << ";ji.over_partition=" << bits(o.ji.over_partition_factor)
    << ";ji.boundary_rounds=" << o.ji.boundary_rounds
    << ";ji.ncut.exact_k=" << o.ji.ncut.pipeline.enforce_exact_k
    << ";ji.ncut.exact_k_method="
    << static_cast<int>(o.ji.ncut.pipeline.exact_k_method)
    << ";ji.ncut.connectivity=" << o.ji.ncut.pipeline.enforce_connectivity;
  s << ";exact_k=" << o.enforce_exact_k
    << ";exact_k_method=" << static_cast<int>(o.exact_k_method)
    << ";connectivity=" << o.enforce_connectivity
    << ";refine=" << o.refine_boundary
    << ";refinement.max_rounds=" << o.refinement.max_rounds
    << ";refinement.connectivity=" << o.refinement.enforce_connectivity
    << ";seed=" << o.seed
    << ";density_policy=" << static_cast<int>(o.density_policy);
  return s.str();
}

Result<PartitionOutcome> Partitioner::PartitionNetwork(
    const RoadNetwork& network) const {
  ScopedParallelism threads(options_.num_threads);
  Timer timer;
  RoadGraph graph = RoadGraph::FromNetwork(network);
  double module1 = timer.Seconds();
  RP_ASSIGN_OR_RETURN(PartitionOutcome outcome,
                      PartitionWithBudget(graph, module1));
  outcome.module1_seconds = module1;
  if (!options_.snapshot_path.empty()) {
    // Serving-snapshot export: downstream of the partition proper, so a
    // failed write fails the run loudly instead of leaving a stale snapshot.
    RP_ASSIGN_OR_RETURN(Snapshot snapshot,
                        Snapshot::Build(network, outcome.assignment));
    RP_RETURN_IF_ERROR(
        snapshot.Save(options_.snapshot_path, options_.checkpoint.retry));
  }
  return outcome;
}

Result<PartitionOutcome> Partitioner::PartitionRoadGraph(
    const RoadGraph& graph) const {
  return PartitionWithBudget(graph, /*consumed_seconds=*/0.0);
}

Result<PartitionOutcome> Partitioner::PartitionWithBudget(
    const RoadGraph& input_graph, double consumed_seconds) const {
  ScopedParallelism threads(options_.num_threads);
  PartitionOutcome outcome;
  const int k = options_.k;
  const double deadline = options_.deadline_seconds;
  outcome.diagnostics.deadline_seconds = deadline;

  // The deadline is enforced at module boundaries, never inside a kernel:
  // kernels stay deterministic and an overrun is detected at the next
  // boundary (so the budget can be exceeded by at most one module).
  Timer budget_timer;
  auto remaining = [&]() {
    return deadline - consumed_seconds - budget_timer.Seconds();
  };
  auto check_deadline = [&](const char* boundary) -> Status {
    if (deadline <= 0.0) return Status::OK();
    double left = remaining();
    if (left < 0.0) {
      return Status::DeadlineExceeded(
          StrPrintf("deadline of %.3fs expired %s (%.3fs over budget)",
                    deadline, boundary, -left));
    }
    return Status::OK();
  };
  if (deadline > 0.0 && consumed_seconds > 0.0) {
    outcome.diagnostics.slack_module1_seconds = deadline - consumed_seconds;
  }
  RP_RETURN_IF_ERROR(check_deadline("after road-graph construction"));

  // Input sanitization: densities enter the pipeline validated or repaired,
  // never raw. A rebuilt graph is only materialized when repairs occurred.
  DensityRepairReport& repairs = outcome.diagnostics.density_repairs;
  RP_ASSIGN_OR_RETURN(
      std::vector<double> densities,
      SanitizeDensities(input_graph.features(), options_.density_policy,
                        input_graph.num_nodes(), &repairs));
  RoadGraph repaired_graph;
  const RoadGraph* active = &input_graph;
  if (repairs.total_repaired() > 0) {
    RP_ASSIGN_OR_RETURN(repaired_graph,
                        RoadGraph::FromParts(input_graph.adjacency(),
                                             std::move(densities)));
    active = &repaired_graph;
  }
  const RoadGraph& graph = *active;

  // Checkpoint store, keyed to the *input* graph (pre-sanitization) so the
  // manifest identifies what the caller handed us; a resumed run reruns the
  // (cheap, deterministic) sanitization itself and re-derives its warnings.
  // A store that cannot initialize degrades to a plain uncheckpointed run.
  CheckpointStore store;
  if (!options_.checkpoint.dir.empty()) {
    RunManifest manifest;
    manifest.input_fingerprint = FingerprintRoadGraph(input_graph);
    manifest.options_hash = Fnv1a64(CanonicalOptionsString(options_));
    store = CheckpointStore(options_.checkpoint, manifest);
    Status init = store.Initialize();
    if (!init.ok()) {
      outcome.diagnostics.warnings.push_back("checkpointing disabled: " +
                                             init.ToString());
      store = CheckpointStore();
    }
  }
  auto save_stage = [&](CheckpointStage stage, const std::string& payload) {
    if (!store.enabled()) return;
    Status saved = store.SaveStage(stage, payload);
    if (!saved.ok()) {
      outcome.diagnostics.warnings.push_back(
          StrPrintf("checkpoint stage '%s' not saved (%s)",
                    CheckpointStageName(stage), saved.ToString().c_str()));
    }
  };

  SpectralPipelineOptions pipeline;
  pipeline.kmeans = options_.kmeans;
  pipeline.kmeans.seed = options_.seed;
  pipeline.enforce_exact_k = options_.enforce_exact_k;
  pipeline.exact_k_method = options_.exact_k_method;
  pipeline.enforce_connectivity = options_.enforce_connectivity;
  pipeline.embedding_sink = options_.embedding_sink;

  // Runs the module-3 spectral cut on `target`, consuming a valid 'cut'
  // checkpoint when one exists and saving one when it does not. Which graph
  // `target` is (road graph, weighted road graph, or supergraph links) is
  // fully determined by the manifest-keyed options plus the mining stage, so
  // a stored cut whose label count matches belongs to this exact target.
  auto run_cut = [&](const CsrGraph& target,
                     bool use_alpha) -> Result<GraphCutResult> {
    if (auto payload = store.LoadStage(CheckpointStage::kCut)) {
      auto decoded = DecodeCutCheckpoint(*payload);
      if (decoded.ok() && static_cast<int>(decoded->assignment.size()) ==
                              target.num_nodes()) {
        GraphCutResult cut;
        cut.assignment = std::move(decoded->assignment);
        cut.k_final = decoded->k_final;
        cut.k_prime = decoded->k_prime;
        cut.objective = decoded->objective;
        cut.eigen = decoded->eigen;
        return cut;
      }
      outcome.diagnostics.warnings.push_back(
          decoded.ok() ? std::string("checkpoint stage 'cut' does not match "
                                     "this graph; recomputing")
                       : "checkpoint stage 'cut' undecodable (" +
                             decoded.status().ToString() + "); recomputing");
    }
    GraphCutResult cut;
    if (use_alpha) {
      AlphaCutOptions alpha{options_.spectral, pipeline};
      RP_ASSIGN_OR_RETURN(cut, AlphaCutPartition(target, k, alpha));
    } else {
      NormalizedCutOptions ncut{options_.spectral, pipeline};
      RP_ASSIGN_OR_RETURN(cut, NormalizedCutPartition(target, k, ncut));
    }
    CutCheckpoint completed;
    completed.assignment = cut.assignment;
    completed.k_final = cut.k_final;
    completed.k_prime = cut.k_prime;
    completed.objective = cut.objective;
    completed.eigen = cut.eigen;
    save_stage(CheckpointStage::kCut, EncodeCutCheckpoint(completed));
    return cut;
  };

  // A stored 'final' checkpoint short-circuits modules 2-3 entirely; the run
  // still flows through the deadline accounting, warning derivation, and
  // label validation below, exactly like an uninterrupted run.
  bool resumed_final = false;
  if (auto payload = store.LoadStage(CheckpointStage::kFinal)) {
    auto decoded = DecodeFinalCheckpoint(*payload);
    if (decoded.ok() &&
        static_cast<int>(decoded->assignment.size()) == graph.num_nodes()) {
      outcome.assignment = std::move(decoded->assignment);
      outcome.k_final = decoded->k_final;
      outcome.k_prime = decoded->k_prime;
      outcome.num_supernodes = decoded->num_supernodes;
      outcome.objective = decoded->objective;
      outcome.module2_seconds = decoded->module2_seconds;
      outcome.module3_seconds = decoded->module3_seconds;
      outcome.diagnostics.eigen = decoded->eigen;
      // The mining report rides in its own stage for the supergraph schemes.
      if (options_.scheme == Scheme::kASG ||
          options_.scheme == Scheme::kNSG) {
        if (auto mining_payload = store.LoadStage(CheckpointStage::kMining)) {
          auto mining = DecodeMiningCheckpoint(*mining_payload);
          if (mining.ok()) outcome.mining_report = std::move(mining->report);
        }
      }
      resumed_final = true;
    } else {
      outcome.diagnostics.warnings.push_back(
          decoded.ok() ? std::string("checkpoint stage 'final' does not "
                                     "match this graph; recomputing")
                       : "checkpoint stage 'final' undecodable (" +
                             decoded.status().ToString() + "); recomputing");
    }
  }

  Timer timer;
  if (!resumed_final) {
    switch (options_.scheme) {
      case Scheme::kAG:
      case Scheme::kNG: {
        CsrGraph weighted =
            GaussianWeightedGraph(graph.adjacency(), graph.features());
        timer.Restart();
        RP_ASSIGN_OR_RETURN(
            GraphCutResult cut,
            run_cut(weighted, options_.scheme == Scheme::kAG));
        if (options_.refine_boundary) {
          if (options_.scheme == Scheme::kAG) {
            AlphaCutMethod method(options_.spectral);
            RP_ASSIGN_OR_RETURN(cut.assignment,
                                RefineBoundary(weighted, cut.assignment,
                                               method, options_.refinement));
            cut.objective = method.Objective(weighted, cut.assignment);
          } else {
            NormalizedCutMethod method(options_.spectral);
            RP_ASSIGN_OR_RETURN(cut.assignment,
                                RefineBoundary(weighted, cut.assignment,
                                               method, options_.refinement));
            cut.objective = method.Objective(weighted, cut.assignment);
          }
          cut.k_final = DensifyAssignment(cut.assignment);
        }
        outcome.module3_seconds = timer.Seconds();
        outcome.diagnostics.eigen = cut.eigen;
        outcome.assignment = std::move(cut.assignment);
        outcome.k_final = cut.k_final;
        outcome.k_prime = cut.k_prime;
        outcome.objective = cut.objective;
        break;
      }
      case Scheme::kASG:
      case Scheme::kNSG: {
        timer.Restart();
        std::optional<MiningCheckpoint> mined;
        if (auto payload = store.LoadStage(CheckpointStage::kMining)) {
          auto decoded = DecodeMiningCheckpoint(*payload);
          if (decoded.ok() &&
              (decoded->roadgraph_fallback ||
               (decoded->supergraph.has_value() &&
                decoded->supergraph->num_road_nodes() == graph.num_nodes()))) {
            mined = std::move(*decoded);
            outcome.mining_report = mined->report;
          } else {
            outcome.diagnostics.warnings.push_back(
                decoded.ok()
                    ? std::string("checkpoint stage 'mining' does not match "
                                  "this graph; recomputing")
                    : "checkpoint stage 'mining' undecodable (" +
                          decoded.status().ToString() + "); recomputing");
          }
        }
        if (!mined.has_value()) {
          // The second level needs at least k supernodes to produce k
          // partitions.
          SupergraphMinerOptions miner = options_.miner;
          miner.min_supernodes = std::max(miner.min_supernodes, k);
          RP_ASSIGN_OR_RETURN(
              Supergraph sg,
              MineSupergraph(graph, miner, &outcome.mining_report));
          if (sg.num_supernodes() < k) {
            // Every clustering configuration condensed below k regions (tiny
            // or near-uniform networks): force the stability pass to its
            // strictest setting, which splits supernodes down to
            // uniform-feature groups.
            miner.stability.threshold = 1.0;
            RP_ASSIGN_OR_RETURN(
                sg, MineSupergraph(graph, miner, &outcome.mining_report));
          }
          MiningCheckpoint fresh;
          fresh.roadgraph_fallback = sg.num_supernodes() < k;
          fresh.num_supernodes = sg.num_supernodes();
          fresh.module2_seconds = timer.Seconds();
          fresh.report = outcome.mining_report;
          if (!fresh.roadgraph_fallback) fresh.supergraph = std::move(sg);
          save_stage(CheckpointStage::kMining,
                     EncodeMiningCheckpoint(fresh));
          mined = std::move(fresh);
        }
        outcome.module2_seconds = mined->module2_seconds;
        outcome.num_supernodes = mined->num_supernodes;
        if (deadline > 0.0) {
          outcome.diagnostics.slack_module2_seconds = remaining();
        }
        RP_RETURN_IF_ERROR(check_deadline("after supergraph mining"));

        if (mined->roadgraph_fallback) {
          // Fully uniform densities leave nothing for the supergraph to
          // distinguish: fall back to cutting the road graph directly (a
          // purely topological split, the only meaningful answer here).
          CsrGraph weighted =
              GaussianWeightedGraph(graph.adjacency(), graph.features());
          timer.Restart();
          RP_ASSIGN_OR_RETURN(
              GraphCutResult cut,
              run_cut(weighted, options_.scheme == Scheme::kASG));
          outcome.module3_seconds = timer.Seconds();
          outcome.diagnostics.eigen = cut.eigen;
          outcome.assignment = std::move(cut.assignment);
          outcome.k_final = cut.k_final;
          outcome.k_prime = cut.k_prime;
          outcome.objective = cut.objective;
          break;
        }
        const Supergraph& sg = *mined->supergraph;
        timer.Restart();
        RP_ASSIGN_OR_RETURN(
            GraphCutResult cut,
            run_cut(sg.links(), options_.scheme == Scheme::kASG));
        if (options_.refine_boundary) {
          // Refinement at the supernode level keeps supernodes atomic, as
          // the supergraph semantics require.
          if (options_.scheme == Scheme::kASG) {
            AlphaCutMethod method(options_.spectral);
            RP_ASSIGN_OR_RETURN(cut.assignment,
                                RefineBoundary(sg.links(), cut.assignment,
                                               method, options_.refinement));
          } else {
            NormalizedCutMethod method(options_.spectral);
            RP_ASSIGN_OR_RETURN(cut.assignment,
                                RefineBoundary(sg.links(), cut.assignment,
                                               method, options_.refinement));
          }
          cut.k_final = DensifyAssignment(cut.assignment);
        }
        RP_ASSIGN_OR_RETURN(outcome.assignment,
                            sg.ExpandAssignment(cut.assignment));
        outcome.module3_seconds = timer.Seconds();
        outcome.diagnostics.eigen = cut.eigen;
        outcome.k_final = cut.k_final;
        outcome.k_prime = cut.k_prime;
        outcome.objective = cut.objective;
        break;
      }
      case Scheme::kJiGeroliminis: {
        // The baseline is an indivisible three-phase loop with no stable
        // intermediate to persist: only the 'final' stage applies.
        CsrGraph weighted =
            GaussianWeightedGraph(graph.adjacency(), graph.features());
        timer.Restart();
        JiGeroliminisOptions ji = options_.ji;
        ji.ncut.spectral = options_.spectral;
        ji.ncut.pipeline.kmeans = pipeline.kmeans;
        RP_ASSIGN_OR_RETURN(
            GraphCutResult cut,
            JiGeroliminisPartition(weighted, graph.features(), k, ji));
        outcome.module3_seconds = timer.Seconds();
        outcome.diagnostics.eigen = cut.eigen;
        outcome.assignment = std::move(cut.assignment);
        outcome.k_final = cut.k_final;
        outcome.k_prime = cut.k_prime;
        outcome.objective = cut.objective;
        break;
      }
    }
  }
  if (deadline > 0.0) {
    outcome.diagnostics.slack_module3_seconds = remaining();
  }
  RP_RETURN_IF_ERROR(check_deadline("after partitioning"));

  RunDiagnostics& diag = outcome.diagnostics;
  diag.warnings.insert(diag.warnings.end(), repairs.warnings.begin(),
                       repairs.warnings.end());
  if (!diag.eigen.all_converged) {
    diag.warnings.push_back(StrPrintf(
        "eigensolver accepted a best-effort embedding (worst Ritz residual "
        "%.3e); partition quality may be degraded",
        diag.eigen.worst_ritz_residual));
  } else if (diag.eigen.solver_path >= SolverPath::kLanczosRetry) {
    diag.warnings.push_back(StrPrintf(
        "eigensolver escalated to %s before converging",
        SolverPathName(diag.eigen.solver_path)));
  }
  diag.warnings.insert(diag.warnings.end(), store.warnings().begin(),
                       store.warnings().end());

  // Every scheme must hand back a complete, dense, non-empty labelling of the
  // road graph; ExpandAssignment and the k'->k reductions above are exactly
  // the places where an off-by-one would otherwise surface as a plausible
  // partition with a silently missing region.
  RP_DCHECK_OK(ValidatePartitionLabels(outcome.assignment, graph.num_nodes(),
                                       outcome.k_final));

  // Persist the completed run last, after validation — a 'final' checkpoint
  // is a promise that the stored labels are the ones an uninterrupted run
  // returns. Skipped when this run *was* the stored final, so a crash hook
  // armed on 'final' does not re-fire on the resumed run.
  if (!resumed_final && store.enabled()) {
    FinalCheckpoint completed;
    completed.assignment = outcome.assignment;
    completed.k_final = outcome.k_final;
    completed.k_prime = outcome.k_prime;
    completed.num_supernodes = outcome.num_supernodes;
    completed.objective = outcome.objective;
    completed.module2_seconds = outcome.module2_seconds;
    completed.module3_seconds = outcome.module3_seconds;
    completed.eigen = outcome.diagnostics.eigen;
    save_stage(CheckpointStage::kFinal, EncodeFinalCheckpoint(completed));
  }
  return outcome;
}

}  // namespace roadpart
