#include "core/supergraph.h"

#include "common/string_util.h"

namespace roadpart {

Result<Supergraph> Supergraph::Create(std::vector<Supernode> supernodes,
                                      CsrGraph links, int num_road_nodes) {
  if (links.num_nodes() != static_cast<int>(supernodes.size())) {
    return Status::InvalidArgument(
        StrPrintf("link graph has %d nodes for %zu supernodes",
                  links.num_nodes(), supernodes.size()));
  }
  std::vector<int> owner(num_road_nodes, -1);
  for (size_t s = 0; s < supernodes.size(); ++s) {
    if (supernodes[s].members.empty()) {
      return Status::InvalidArgument(StrPrintf("supernode %zu is empty", s));
    }
    for (int v : supernodes[s].members) {
      if (v < 0 || v >= num_road_nodes) {
        return Status::OutOfRange(
            StrPrintf("member %d outside [0,%d)", v, num_road_nodes));
      }
      if (owner[v] != -1) {
        return Status::InvalidArgument(
            StrPrintf("node %d belongs to supernodes %d and %zu", v, owner[v],
                      s));
      }
      owner[v] = static_cast<int>(s);
    }
  }
  for (int v = 0; v < num_road_nodes; ++v) {
    if (owner[v] == -1) {
      return Status::InvalidArgument(
          StrPrintf("node %d not covered by any supernode", v));
    }
  }

  Supergraph sg;
  sg.supernodes_ = std::move(supernodes);
  sg.links_ = std::move(links);
  sg.node_to_supernode_ = std::move(owner);
  return sg;
}

std::vector<double> Supergraph::Features() const {
  std::vector<double> f(supernodes_.size());
  for (size_t i = 0; i < supernodes_.size(); ++i) f[i] = supernodes_[i].feature;
  return f;
}

Result<std::vector<int>> Supergraph::ExpandAssignment(
    const std::vector<int>& supernode_assignment) const {
  if (supernode_assignment.size() != supernodes_.size()) {
    return Status::InvalidArgument(
        StrPrintf("assignment for %zu supernodes, have %zu",
                  supernode_assignment.size(), supernodes_.size()));
  }
  std::vector<int> node_assignment(node_to_supernode_.size(), -1);
  for (size_t v = 0; v < node_to_supernode_.size(); ++v) {
    node_assignment[v] = supernode_assignment[node_to_supernode_[v]];
  }
  return node_assignment;
}

}  // namespace roadpart
