#include "core/spectral_common.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "graph/connected_components.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "linalg/symmetric_eigen.h"

namespace roadpart {

const char* NonConvergencePolicyName(NonConvergencePolicy policy) {
  switch (policy) {
    case NonConvergencePolicy::kFail:
      return "fail";
    case NonConvergencePolicy::kRetry:
      return "retry";
    case NonConvergencePolicy::kFallbackDense:
      return "dense";
    case NonConvergencePolicy::kBestEffort:
      return "best-effort";
  }
  return "?";
}

const char* SolverPathName(SolverPath path) {
  switch (path) {
    case SolverPath::kNone:
      return "none";
    case SolverPath::kDense:
      return "dense";
    case SolverPath::kLanczosFirstTry:
      return "lanczos";
    case SolverPath::kLanczosRetry:
      return "lanczos-retry";
    case SolverPath::kDenseFallback:
      return "dense-fallback";
    case SolverPath::kBestEffort:
      return "best-effort";
  }
  return "?";
}

void EigenSolveDiagnostics::Merge(const EigenSolveDiagnostics& other) {
  solver_path = std::max(solver_path, other.solver_path);
  solves += other.solves;
  lanczos_restarts += other.lanczos_restarts;
  worst_ritz_residual = std::max(worst_ritz_residual,
                                 other.worst_ritz_residual);
  all_converged = all_converged && other.all_converged;
}

namespace {

// Copies the k columns at the requested spectrum end out of a full dense
// decomposition.
DenseMatrix SelectExtremeColumns(const EigenResult& eig, int n, int k,
                                 SpectrumEnd end) {
  DenseMatrix out(n, k);
  for (int c = 0; c < k; ++c) {
    int col = (end == SpectrumEnd::kSmallest) ? c : n - k + c;
    for (int r = 0; r < n; ++r) out(r, c) = eig.eigenvectors(r, col);
  }
  return out;
}

// One-solve diagnostics record.
EigenSolveDiagnostics SolveRecord(SolverPath path, int restarts,
                                  double residual, bool converged) {
  EigenSolveDiagnostics d;
  d.solver_path = path;
  d.solves = 1;
  d.lanczos_restarts = restarts;
  d.worst_ritz_residual = residual;
  d.all_converged = converged;
  return d;
}

}  // namespace

Result<DenseMatrix> ExtremeEigenvectors(const LinearOperator& op, int k,
                                        SpectrumEnd end,
                                        const SpectralOptions& options,
                                        EigenSolveDiagnostics* diagnostics) {
  const int n = op.Dim();
  if (k <= 0 || k > n) {
    return Status::InvalidArgument(
        StrPrintf("need 1 <= k <= %d, got %d", n, k));
  }
  auto record = [&](const EigenSolveDiagnostics& d) {
    if (diagnostics != nullptr) *diagnostics = d;
  };
  if (n <= options.dense_threshold) {
    DenseMatrix dense = Materialize(op);
    RP_ASSIGN_OR_RETURN(EigenResult eig, SymmetricEigenDecompose(dense));
    record(SolveRecord(SolverPath::kDense, 0, eig.max_residual, true));
    return SelectExtremeColumns(eig, n, k, end);
  }

  // Rung 1: Lanczos as configured.
  RP_ASSIGN_OR_RETURN(EigenResult eig,
                      LanczosEigen(op, k, end, options.lanczos));
  int restarts = eig.restarts_used;
  if (eig.converged) {
    record(SolveRecord(SolverPath::kLanczosFirstTry, restarts,
                       eig.max_residual, true));
    return std::move(eig.eigenvectors);
  }
  const NonConvergencePolicy policy = options.on_nonconvergence;
  if (policy == NonConvergencePolicy::kFail) {
    record(SolveRecord(SolverPath::kLanczosFirstTry, restarts,
                       eig.max_residual, false));
    return Status::NotConverged(StrPrintf(
        "Lanczos did not converge (n=%d, k=%d, max Ritz residual %.3e, "
        "%d restarts); policy=fail",
        n, k, eig.max_residual, restarts));
  }

  // Rung 2: tightened retry — doubled subspace budget, one extra restart,
  // and a fresh (still deterministic) start vector so a start direction that
  // was accidentally deficient in the target eigenspace cannot fail twice.
  LanczosOptions retry = options.lanczos;
  retry.max_subspace = std::min(n, std::max(2 * retry.max_subspace,
                                            retry.max_subspace + 100));
  retry.max_restarts = retry.max_restarts + 1;
  retry.seed = retry.seed ^ 0x5DEECE66DULL;
  // A warm start that reached this rung did not help; drop it so the retry
  // explores from the fresh seeded direction (the PR-3 ladder unchanged).
  retry.warm_start = nullptr;
  RP_ASSIGN_OR_RETURN(EigenResult eig2, LanczosEigen(op, k, end, retry));
  restarts += 1 + eig2.restarts_used;  // the retry itself counts as a restart
  if (eig2.converged) {
    record(SolveRecord(SolverPath::kLanczosRetry, restarts, eig2.max_residual,
                       true));
    return std::move(eig2.eigenvectors);
  }
  // Keep the better of the two non-converged estimates for best-effort.
  EigenResult& best = eig2.max_residual < eig.max_residual ? eig2 : eig;
  if (policy == NonConvergencePolicy::kRetry) {
    record(SolveRecord(SolverPath::kLanczosRetry, restarts, best.max_residual,
                       false));
    return Status::NotConverged(StrPrintf(
        "Lanczos did not converge after tightened retry (n=%d, k=%d, best "
        "max Ritz residual %.3e, %d restarts); policy=retry",
        n, k, best.max_residual, restarts));
  }

  // Rung 3: exact dense decomposition, when the order permits materializing
  // the operator.
  if (n <= options.dense_fallback_max) {
    RP_LOG(Warning) << "Lanczos failed to converge (residual "
                    << best.max_residual << "); falling back to dense solve"
                    << " of order " << n;
    DenseMatrix dense = Materialize(op);
    RP_ASSIGN_OR_RETURN(EigenResult full, SymmetricEigenDecompose(dense));
    record(SolveRecord(SolverPath::kDenseFallback, restarts,
                       full.max_residual, true));
    return SelectExtremeColumns(full, n, k, end);
  }
  if (policy == NonConvergencePolicy::kBestEffort) {
    RP_LOG(Warning) << "Lanczos failed to converge (residual "
                    << best.max_residual << ", n=" << n
                    << " too large for dense fallback); accepting "
                    << "best-effort estimate";
    record(SolveRecord(SolverPath::kBestEffort, restarts, best.max_residual,
                       false));
    return std::move(best.eigenvectors);
  }
  record(SolveRecord(SolverPath::kLanczosRetry, restarts, best.max_residual,
                     false));
  return Status::NotConverged(StrPrintf(
      "Lanczos did not converge and n=%d exceeds dense_fallback_max=%d "
      "(best max Ritz residual %.3e, %d restarts); policy=dense",
      n, options.dense_fallback_max, best.max_residual, restarts));
}

Result<DenseMatrix> RowNormalize(const DenseMatrix& y) {
  // Pre-scan: a NaN/Inf row must surface as a structured error in every
  // build type, not poison k-means (Release) or abort (Debug). Deterministic
  // blocked min-reduction finds the first offending row.
  const int64_t bad_row = ParallelBlockedReduce<int64_t>(
      y.rows(), /*grain=*/256, std::numeric_limits<int64_t>::max(),
      [&](int64_t begin, int64_t end) {
        for (int64_t r = begin; r < end; ++r) {
          for (int c = 0; c < y.cols(); ++c) {
            if (!std::isfinite(y(static_cast<int>(r), c))) return r;
          }
        }
        return std::numeric_limits<int64_t>::max();
      },
      [](int64_t a, int64_t b) { return std::min(a, b); });
  if (bad_row != std::numeric_limits<int64_t>::max()) {
    return Status::Internal(StrPrintf(
        "embedding row %lld contains a non-finite value",
        static_cast<long long>(bad_row)));
  }
  DenseMatrix z = y;
  // Row-blocked: each row normalizes independently with a serial norm, so
  // the output is bit-identical for any thread count.
  ParallelForBlocked(z.rows(), /*grain=*/128, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      int row = static_cast<int>(r);
      double norm = 0.0;
      for (int c = 0; c < z.cols(); ++c) norm += z(row, c) * z(row, c);
      norm = std::sqrt(norm);
      if (norm > 0.0) {
        for (int c = 0; c < z.cols(); ++c) z(row, c) /= norm;
      }
    }
  });
  return z;
}

CsrGraph GaussianWeightedGraph(const CsrGraph& adjacency,
                               const std::vector<double>& features,
                               bool degree_normalize) {
  RP_CHECK(static_cast<int>(features.size()) == adjacency.num_nodes());
  // Scale by the typical adjacent-pair density difference, not the global
  // variance: road densities vary smoothly along a road, so the global
  // spread is far larger than any single-hop difference and would push every
  // edge weight to ~1 (the cut would then follow topology only). With the
  // local scale, a typical edge weighs e^{-1/2} and a cross-plateau edge is
  // exponentially suppressed — which is what "congestion similarity"
  // affinity (Definition 3) needs to steer the cut.
  // Deterministic blocked reduction over nodes: per-block (sum, count)
  // partials are combined in ascending block order, so sigma^2 — and with it
  // every downstream edge weight — is independent of the thread count.
  struct PairAcc {
    double sum = 0.0;
    int64_t count = 0;
  };
  PairAcc tot = ParallelBlockedReduce<PairAcc>(
      adjacency.num_nodes(), /*grain=*/1024, PairAcc{},
      [&](int64_t begin, int64_t end) {
        PairAcc local;
        for (int64_t u = begin; u < end; ++u) {
          for (int v : adjacency.Neighbors(static_cast<int>(u))) {
            if (u < v) {
              double diff = features[u] - features[v];
              local.sum += diff * diff;
              ++local.count;
            }
          }
        }
        return local;
      },
      [](PairAcc a, PairAcc b) {
        a.sum += b.sum;
        a.count += b.count;
        return a;
      });
  double sigma_sq =
      tot.count > 0 ? tot.sum / static_cast<double>(tot.count) : 0.0;
  CsrGraph weighted = ReweightGraph(adjacency, [&](int u, int v) {
    if (sigma_sq <= 0.0) return 1.0;
    double diff = features[u] - features[v];
    return std::exp(-(diff * diff) / (2.0 * sigma_sq));
  });
  if (!degree_normalize) return weighted;
  std::vector<double> degree(weighted.num_nodes(), 0.0);
  for (int v = 0; v < weighted.num_nodes(); ++v) {
    degree[v] = weighted.WeightedDegree(v);
  }
  return ReweightGraph(weighted, [&](int u, int v) {
    double d = degree[u] * degree[v];
    if (d <= 0.0) return 0.0;
    return weighted.EdgeWeight(u, v) / std::sqrt(d);
  });
}

Result<CsrGraph> PartitionConnectivityGraph(const CsrGraph& graph,
                                            const std::vector<int>& assignment,
                                            int num_partitions) {
  std::map<std::pair<int, int>, std::pair<double, int>> cross;  // sum(w^2), count
  for (int u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      int v = nbrs[i];
      if (u >= v) continue;
      int p = assignment[u];
      int q = assignment[v];
      if (p == q) continue;
      if (p > q) std::swap(p, q);
      auto& entry = cross[{p, q}];
      entry.first += wts[i] * wts[i];
      entry.second += 1;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(cross.size());
  for (const auto& [pq, acc] : cross) {
    edges.push_back(
        {pq.first, pq.second, std::sqrt(acc.first / acc.second)});
  }
  return CsrGraph::FromEdges(num_partitions, edges);
}

namespace {

// Bipartitions a (small, condensed) weighted graph with the method's own
// 2-way embedding. Guarantees both sides are non-empty for graphs with >= 2
// nodes, falling back to a median split of the Fiedler-like column.
Result<std::vector<int>> BipartitionGraph(const CsrGraph& graph,
                                          const SpectralCutMethod& method,
                                          const KMeansOptions& kmeans_options) {
  const int n = graph.num_nodes();
  RP_CHECK(n >= 2);
  RP_ASSIGN_OR_RETURN(DenseMatrix z, method.Embed(graph, std::min(2, n)));
  RP_ASSIGN_OR_RETURN(KMeansResult km, KMeansRows(z, 2, kmeans_options));

  int count1 = 0;
  for (int a : km.assignment) count1 += a;
  if (count1 != 0 && count1 != n) return km.assignment;

  // Degenerate clustering: split at the median of the most informative
  // column (the last one — eigenvalue order puts the constant-ish vector
  // first for Laplacian-style embeddings).
  std::vector<int> labels(n, 0);
  int col = z.cols() - 1;
  std::vector<std::pair<double, int>> vals(n);
  for (int i = 0; i < n; ++i) vals[i] = {z(i, col), i};
  std::sort(vals.begin(), vals.end());
  for (int i = n / 2; i < n; ++i) labels[vals[i].second] = 1;
  return labels;
}

}  // namespace

Status ValidatePartitionLabels(const std::vector<int>& assignment,
                               int num_nodes, int num_partitions,
                               bool require_all_labels_used) {
  if (static_cast<int>(assignment.size()) != num_nodes) {
    return Status::Internal(
        StrPrintf("assignment has %zu labels for %d nodes", assignment.size(),
                  num_nodes));
  }
  std::vector<char> used(std::max(num_partitions, 0), 0);
  for (int i = 0; i < num_nodes; ++i) {
    int p = assignment[i];
    if (p < 0 || p >= num_partitions) {
      return Status::Internal(StrPrintf(
          "node %d carries label %d outside [0,%d)", i, p, num_partitions));
    }
    used[p] = 1;
  }
  if (require_all_labels_used) {
    for (int p = 0; p < num_partitions; ++p) {
      if (!used[p]) {
        return Status::Internal(StrPrintf("partition %d is empty", p));
      }
    }
  }
  return Status::OK();
}

int DensifyAssignment(std::vector<int>& assignment) {
  std::map<int, int> remap;
  for (int& a : assignment) {
    auto [it, inserted] = remap.try_emplace(a, static_cast<int>(remap.size()));
    a = it->second;
  }
  return static_cast<int>(remap.size());
}

void EnforcePartitionConnectivity(const CsrGraph& graph,
                                  std::vector<int>& assignment) {
  for (int pass = 0; pass < 8; ++pass) {
    int k = DensifyAssignment(assignment);
    std::vector<std::vector<int>> groups = GroupByAssignment(assignment, k);
    bool changed = false;
    for (int p = 0; p < k; ++p) {
      auto comps = ComponentsOfSubset(graph, groups[p]);
      if (comps.size() <= 1) continue;
      // Keep the largest component; merge the rest into the neighbouring
      // partition with the strongest total edge weight.
      size_t largest = 0;
      for (size_t c = 1; c < comps.size(); ++c) {
        if (comps[c].size() > comps[largest].size()) largest = c;
      }
      for (size_t c = 0; c < comps.size(); ++c) {
        if (c == largest) continue;
        std::map<int, double> pull;
        for (int u : comps[c]) {
          auto nbrs = graph.Neighbors(u);
          auto wts = graph.NeighborWeights(u);
          for (size_t i = 0; i < nbrs.size(); ++i) {
            if (assignment[nbrs[i]] != p) {
              pull[assignment[nbrs[i]]] += wts[i];
            }
          }
        }
        if (pull.empty()) continue;  // isolated in the whole graph
        int target = pull.begin()->first;
        double best = pull.begin()->second;
        for (const auto& [cand, w] : pull) {
          if (w > best) {
            best = w;
            target = cand;
          }
        }
        for (int u : comps[c]) assignment[u] = target;
        changed = true;
      }
    }
    if (!changed) break;
  }
  DensifyAssignment(assignment);
}

Result<GraphCutResult> SpectralKWayPartition(
    const CsrGraph& graph, int k, const SpectralCutMethod& method,
    const SpectralPipelineOptions& options) {
  const int n = graph.num_nodes();
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds graph order %d", k, n));
  }

  // Solver-ladder diagnostics accumulate on the method across the top-level
  // embedding and every bipartition sub-solve of this pipeline run.
  method.ResetEigenDiagnostics();

  GraphCutResult result;
  if (k == 1) {
    result.assignment.assign(n, 0);
    result.k_final = 1;
    result.k_prime = 1;
    result.objective = method.Objective(graph, result.assignment);
    return result;
  }

  // Lines 4-10 of Algorithm 3: embedding + k-means over rows.
  RP_ASSIGN_OR_RETURN(DenseMatrix z, method.Embed(graph, k));
  if (options.embedding_sink != nullptr) *options.embedding_sink = z;
  RP_ASSIGN_OR_RETURN(KMeansResult km, KMeansRows(z, k, options.kmeans));

  // Line 11: split clusters into connected components -> k' partitions.
  std::vector<int> partition(n, -1);
  int k_prime = 0;
  std::vector<std::vector<int>> clusters = GroupByAssignment(km.assignment, k);
  for (const auto& cluster : clusters) {
    if (cluster.empty()) continue;
    for (const auto& comp : ComponentsOfSubset(graph, cluster)) {
      for (int v : comp) partition[v] = k_prime;
      ++k_prime;
    }
  }
  result.k_prime = k_prime;

  // Lines 12-24: global recursive bipartitioning of the condensed graph
  // until exactly k partitions remain (or greedy pruning when selected).
  if (options.enforce_exact_k && k_prime > k &&
      options.exact_k_method == ExactKMethod::kGreedyMerge) {
    // Greedy pruning (Section 5.4 alternative): repeatedly merge the pair of
    // adjacent partitions whose merge lowers the cut objective the most
    // (equivalently, raises it the least). Per-partition sums make each
    // candidate evaluation O(1).
    std::vector<double> volume(k_prime, 0.0);
    std::vector<double> internal(k_prime, 0.0);
    std::vector<int> size(k_prime, 0);
    double total = 0.0;
    for (int u = 0; u < n; ++u) {
      int p = partition[u];
      size[p]++;
      auto nbrs = graph.Neighbors(u);
      auto wts = graph.NeighborWeights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        volume[p] += wts[i];
        total += wts[i];
        if (partition[nbrs[i]] == p) internal[p] += wts[i];
      }
    }
    // Ordered-pair cross weights between partitions.
    std::map<std::pair<int, int>, double> cross;
    for (int u = 0; u < n; ++u) {
      auto nbrs = graph.Neighbors(u);
      auto wts = graph.NeighborWeights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        int p = partition[u];
        int q = partition[nbrs[i]];
        if (p < q) cross[{p, q}] += wts[i];  // counts each edge once (u<v or v<u covered twice; p<q once per direction)
      }
    }
    std::vector<char> alive(k_prime, 1);
    int remaining = k_prime;
    while (remaining > k) {
      double best_delta = 0.0;
      bool found = false;
      std::pair<int, int> best_pair{-1, -1};
      for (const auto& [pq, w] : cross) {
        auto [p, q] = pq;
        if (!alive[p] || !alive[q] || w <= 0.0) continue;
        double merged_term = method.PartitionTerm(
            volume[p] + volume[q], internal[p] + internal[q] + 2.0 * w,
            size[p] + size[q], total);
        double delta = merged_term -
                       method.PartitionTerm(volume[p], internal[p], size[p],
                                            total) -
                       method.PartitionTerm(volume[q], internal[q], size[q],
                                            total);
        if (!found || delta < best_delta) {
          best_delta = delta;
          best_pair = pq;
          found = true;
        }
      }
      if (!found) break;  // no adjacent pairs left
      auto [p, q] = best_pair;
      // Merge q into p.
      volume[p] += volume[q];
      internal[p] += internal[q] + 2.0 * cross[best_pair];
      size[p] += size[q];
      alive[q] = 0;
      // Redirect q's cross weights to p.
      std::map<std::pair<int, int>, double> updates;
      for (auto it = cross.begin(); it != cross.end();) {
        auto [a, b] = it->first;
        if (a == q || b == q) {
          int other = (a == q) ? b : a;
          if (other != p && alive[other]) {
            auto key = std::minmax(p, other);
            updates[{key.first, key.second}] += it->second;
          }
          it = cross.erase(it);
        } else {
          ++it;
        }
      }
      for (const auto& [key, w] : updates) cross[key] += w;
      for (int v = 0; v < n; ++v) {
        if (partition[v] == q) partition[v] = p;
      }
      --remaining;
    }
  } else if (options.enforce_exact_k && k_prime > k) {
    RP_ASSIGN_OR_RETURN(CsrGraph condensed,
                        PartitionConnectivityGraph(graph, partition, k_prime));
    // Work over groups of condensed-node ids, FIFO as in the paper.
    std::deque<std::vector<int>> fifo;
    std::vector<std::vector<int>> groups;
    {
      std::vector<int> all(k_prime);
      for (int i = 0; i < k_prime; ++i) all[i] = i;
      fifo.push_back(all);
      groups.push_back(std::move(all));
    }
    auto find_group = [&](const std::vector<int>& g) -> size_t {
      for (size_t i = 0; i < groups.size(); ++i) {
        if (groups[i] == g) return i;
      }
      RP_CHECK(false);
      return 0;
    };
    while (static_cast<int>(groups.size()) < k && !fifo.empty()) {
      std::vector<int> cur = std::move(fifo.front());
      fifo.pop_front();
      if (cur.size() < 2) continue;  // unsplittable; stays as-is in `groups`
      CsrGraph sub = condensed.InducedSubgraph(cur);
      RP_ASSIGN_OR_RETURN(std::vector<int> side,
                          BipartitionGraph(sub, method, options.kmeans));
      std::vector<int> part_a;
      std::vector<int> part_b;
      for (size_t i = 0; i < cur.size(); ++i) {
        (side[i] == 0 ? part_a : part_b).push_back(cur[i]);
      }
      size_t slot = find_group(cur);
      groups[slot] = part_a;
      groups.push_back(part_b);
      fifo.push_back(std::move(part_a));
      fifo.push_back(std::move(part_b));
    }
    // Map condensed ids -> final group ids -> node assignment.
    std::vector<int> condensed_group(k_prime, -1);
    for (size_t gid = 0; gid < groups.size(); ++gid) {
      for (int cid : groups[gid]) condensed_group[cid] = static_cast<int>(gid);
    }
    for (int v = 0; v < n; ++v) {
      partition[v] = condensed_group[partition[v]];
    }
  }

  if (options.enforce_connectivity) {
    EnforcePartitionConnectivity(graph, partition);
  } else {
    DensifyAssignment(partition);
  }

  result.assignment = std::move(partition);
  result.k_final = DensifyAssignment(result.assignment);
  RP_DCHECK_OK(ValidatePartitionLabels(result.assignment, n, result.k_final));
  result.objective = method.Objective(graph, result.assignment);
  result.eigen = method.eigen_diagnostics();
  return result;
}

}  // namespace roadpart
