#ifndef ROADPART_CORE_SUPERGRAPH_MINER_H_
#define ROADPART_CORE_SUPERGRAPH_MINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/stability.h"
#include "core/supergraph.h"
#include "network/road_graph.h"

namespace roadpart {

/// How superlink weights are computed.
enum class SuperlinkWeightScheme {
  /// Equation 3 exactly as printed. Every term of the per-link sum depends
  /// only on the two supernode features, so the RMS collapses to a single
  /// Gaussian similarity exp(-(f_p - f_q)^2 / (2 sigma^2)).
  kPaperEq3,
  /// Link-count-aware variant matching the prose ("larger number of links …
  /// lead to higher superlink weight"): the Eq. 3 Gaussian scaled by
  /// sqrt(|L_pq|). Used by the superlink ablation bench.
  kLinkCountScaled,
};

/// Options for road-supergraph mining (Algorithm 1).
struct SupergraphMinerOptions {
  /// Largest kappa evaluated in the k-means sweep (the paper sweeps in
  /// principle to n_r - 1 but observes the optimum at small kappa; Fig. 5
  /// evaluates kappa up to ~30).
  int max_kappa = 30;
  /// epsilon_theta as an absolute MCG threshold. Negative = derive from
  /// `mcg_threshold_fraction` instead. The paper uses absolute values (2000
  /// for M1, 5000 for M2) chosen after looking at the curve; the fractional
  /// form automates that choice.
  double mcg_threshold_absolute = -1.0;
  /// epsilon_theta as a fraction of the maximum MCG observed over the sweep.
  double mcg_threshold_fraction = 0.85;
  /// MCG sweep runs on a random sample of at most this many feature values
  /// (Section 4.1 does exactly this to keep repeated k-means affordable);
  /// the final clustering always runs on the full data. <=0 disables
  /// sampling; positive values below 3 are rejected (a sweep needs at least
  /// kappa = 2 over 3 values to say anything).
  int sample_size = 5000;
  /// Lower bound on the supernode count: among the shortlisted clustering
  /// configurations, ones producing fewer connected components than this are
  /// skipped (unless none qualifies, in which case the configuration with
  /// the most components wins). The partitioner sets this to k so the second
  /// level always has enough supernodes to partition. 0 = paper behaviour
  /// (always fewest components).
  int min_supernodes = 0;
  /// Stability pass (Section 4.3.2); threshold 0 disables it.
  StabilityOptions stability;
  SuperlinkWeightScheme weight_scheme = SuperlinkWeightScheme::kPaperEq3;
  uint64_t seed = 7;
};

/// Diagnostics for Figure 5 / Figure 6 style reporting.
struct SupergraphMiningReport {
  std::vector<int> kappas;             ///< evaluated kappa values
  std::vector<double> mcg;             ///< MCG at each kappa (sampled data)
  std::vector<int> shortlisted_kappas; ///< kappas with MCG >= threshold
  std::vector<int> component_counts;   ///< supernode count per shortlisted kappa
  double threshold = 0.0;              ///< resolved epsilon_theta
  /// Inclusive ceiling of the sweep actually run: min(options.max_kappa,
  /// number of (sampled) sweep values).
  int effective_max_kappa = 0;
  int chosen_kappa = 0;
  int supernodes_before_stability = 0;
  int supernodes_after_stability = 0;
  std::vector<double> stability_values;  ///< eta per final supernode
  /// Wall-clock breakdown of the mining fast path (bench_micro_mining /
  /// bench_table3_runtime): Phase A sampled kappa sweep, Phase B full-data
  /// clustering + components, Phase D superlink accumulation.
  double sweep_seconds = 0.0;
  double cluster_seconds = 0.0;
  double superlink_seconds = 0.0;
};

/// Mines the condensed road supergraph from a road graph (Algorithm 1):
/// 1-D k-means sweep scored by MCG, supernode creation as label-constrained
/// connected components (fewest components wins), optional stability
/// splitting, then superlink establishment with Equation 3 weights.
Result<Supergraph> MineSupergraph(const RoadGraph& road_graph,
                                  const SupergraphMinerOptions& options = {},
                                  SupergraphMiningReport* report = nullptr);

/// Computes the Equation 3 weight for one supernode pair.
/// `sigma_sq` is the variance of supernode features around their global mean.
double SuperlinkWeight(double feature_p, double feature_q, int num_links,
                       double sigma_sq, SuperlinkWeightScheme scheme);

}  // namespace roadpart

#endif  // ROADPART_CORE_SUPERGRAPH_MINER_H_
