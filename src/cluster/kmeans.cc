#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace roadpart {

namespace {

double RowDistanceSq(const DenseMatrix& points, int row, const double* center,
                     int dim) {
  const double* p = points.Row(row);
  double acc = 0.0;
  for (int d = 0; d < dim; ++d) {
    double diff = p[d] - center[d];
    acc += diff * diff;
  }
  return acc;
}

// One full Lloyd run from a given seeding.
KMeansResult RunOnce(const DenseMatrix& points, int k,
                     const KMeansOptions& options, Rng& rng) {
  const int n = points.rows();
  const int dim = points.cols();

  DenseMatrix centroids(k, dim);
  if (options.use_kmeanspp) {
    // k-means++: first centre uniform, then proportional to D^2.
    int first = static_cast<int>(rng.NextBounded(n));
    for (int d = 0; d < dim; ++d) centroids(0, d) = points(first, d);
    std::vector<double> dist_sq(n);
    for (int i = 0; i < n; ++i) {
      dist_sq[i] = RowDistanceSq(points, i, centroids.Row(0), dim);
    }
    for (int c = 1; c < k; ++c) {
      double total = 0.0;
      for (double v : dist_sq) total += v;
      int chosen;
      if (total <= 0.0) {
        chosen = static_cast<int>(rng.NextBounded(n));
      } else {
        chosen = static_cast<int>(rng.NextWeighted(dist_sq));
      }
      for (int d = 0; d < dim; ++d) centroids(c, d) = points(chosen, d);
      for (int i = 0; i < n; ++i) {
        dist_sq[i] = std::min(dist_sq[i],
                              RowDistanceSq(points, i, centroids.Row(c), dim));
      }
    }
  } else {
    std::vector<int> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    rng.Shuffle(ids);
    for (int c = 0; c < k; ++c) {
      for (int d = 0; d < dim; ++d) centroids(c, d) = points(ids[c], d);
    }
  }

  std::vector<int> assignment(n, -1);
  std::vector<int> counts(k, 0);
  int iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = RowDistanceSq(points, i, centroids.Row(c), dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iterations > 0) break;

    // Recompute centroids.
    DenseMatrix sums(k, dim);
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < n; ++i) {
      int c = assignment[i];
      counts[c]++;
      const double* p = points.Row(i);
      double* s = sums.Row(c);
      for (int d = 0; d < dim; ++d) s[d] += p[d];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        for (int d = 0; d < dim; ++d) centroids(c, d) = sums(c, d) / counts[c];
      } else {
        // Re-seed with the globally worst-fitting point.
        int worst = 0;
        double worst_d = -1.0;
        for (int i = 0; i < n; ++i) {
          double d =
              RowDistanceSq(points, i, centroids.Row(assignment[i]), dim);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        for (int d = 0; d < dim; ++d) centroids(c, d) = points(worst, d);
      }
    }
  }

  KMeansResult result;
  result.assignment = std::move(assignment);
  result.centroids = std::move(centroids);
  result.iterations = iterations;
  result.wcss = 0.0;
  for (int i = 0; i < n; ++i) {
    result.wcss +=
        RowDistanceSq(points, i, result.centroids.Row(result.assignment[i]),
                      dim);
  }
  return result;
}

}  // namespace

Result<KMeansResult> KMeansRows(const DenseMatrix& points, int k,
                                const KMeansOptions& options) {
  const int n = points.rows();
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds row count %d", k, n));
  }
  if (options.restarts <= 0) {
    return Status::InvalidArgument("restarts must be positive");
  }

  // Fault hook (test-only; queried here in the serial prefix, before the
  // parallel restarts, so the injection stays deterministic across thread
  // counts): a degenerate embedding collapses every point to the origin.
  DenseMatrix degenerate;
  const DenseMatrix* active_points = &points;
  if (RP_FAULT_FIRES(FaultSite::kKMeansDegenerateEmbedding)) {
    degenerate = DenseMatrix(points.rows(), points.cols());
    active_points = &degenerate;
  }
  const DenseMatrix& rows = *active_points;

  // Pre-fork one deterministic seed per restart so the restarts can run in
  // parallel while keeping results identical to the sequential order.
  Rng rng(options.seed);
  std::vector<uint64_t> seeds(options.restarts);
  for (uint64_t& s : seeds) s = rng.Next();

  std::vector<KMeansResult> runs(options.restarts);
  ParallelFor(options.restarts, [&](int r) {
    Rng local(seeds[r]);
    runs[r] = RunOnce(rows, k, options, local);
  });

  int best = 0;
  for (int r = 1; r < options.restarts; ++r) {
    if (runs[r].wcss < runs[best].wcss) best = r;
  }
  return std::move(runs[best]);
}

}  // namespace roadpart
