#include "cluster/kmeans1d_dp.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/string_util.h"

namespace roadpart {

namespace {

// SSE of sorted[lo..hi] (inclusive) via prefix sums.
class RangeCost {
 public:
  explicit RangeCost(const std::vector<double>& sorted)
      : prefix_(sorted.size() + 1, 0.0), prefix_sq_(sorted.size() + 1, 0.0) {
    for (size_t i = 0; i < sorted.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + sorted[i];
      prefix_sq_[i + 1] = prefix_sq_[i] + sorted[i] * sorted[i];
    }
  }

  double operator()(int lo, int hi) const {
    if (hi < lo) return 0.0;
    int count = hi - lo + 1;
    double sum = prefix_[hi + 1] - prefix_[lo];
    double sum_sq = prefix_sq_[hi + 1] - prefix_sq_[lo];
    return std::max(0.0, sum_sq - sum * sum / count);
  }

  double Mean(int lo, int hi) const {
    return (prefix_[hi + 1] - prefix_[lo]) / (hi - lo + 1);
  }

 private:
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

// One DP layer with divide and conquer: curr[i] = min over m <= i of
// prev[m] + cost(m, i), where the argmin is monotone in i.
void ComputeLayer(const RangeCost& cost, const std::vector<double>& prev,
                  std::vector<double>& curr, std::vector<int>& split, int lo,
                  int hi, int opt_lo, int opt_hi) {
  if (lo > hi) return;
  int mid = (lo + hi) / 2;
  double best = std::numeric_limits<double>::infinity();
  int best_m = opt_lo;
  int m_hi = std::min(mid, opt_hi);
  for (int m = opt_lo; m <= m_hi; ++m) {
    // prev[m] = optimal cost of items [0, m) in (layer-1) clusters; the new
    // cluster is items [m, mid].
    double candidate = prev[m] + cost(m, mid);
    if (candidate < best) {
      best = candidate;
      best_m = m;
    }
  }
  curr[mid + 1] = best;
  split[mid + 1] = best_m;
  ComputeLayer(cost, prev, curr, split, lo, mid - 1, opt_lo, best_m);
  ComputeLayer(cost, prev, curr, split, mid + 1, hi, best_m, opt_hi);
}

}  // namespace

Result<KMeans1DResult> KMeans1DOptimal(const std::vector<double>& values,
                                       int k) {
  const int n = static_cast<int>(values.size());
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds data size %d", k, n));
  }

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  std::vector<double> sorted(n);
  for (int i = 0; i < n; ++i) sorted[i] = values[order[i]];

  RangeCost cost(sorted);

  // dp[i] = optimal WCSS of the first i sorted items with `layer` clusters.
  std::vector<double> prev(n + 1, 0.0);
  for (int i = 1; i <= n; ++i) prev[i] = cost(0, i - 1);
  // splits[layer][i]: start index of the last cluster in the optimum.
  std::vector<std::vector<int>> splits(k + 1, std::vector<int>(n + 1, 0));

  for (int layer = 2; layer <= k; ++layer) {
    std::vector<double> curr(n + 1, 0.0);
    // With `layer` clusters, at least `layer` items are needed; for fewer,
    // cost is 0 (each item alone) — handled by clamping below.
    ComputeLayer(cost, prev, curr, splits[layer], 0, n - 1, layer - 1, n - 1);
    // Positions i < layer trivially cost 0 with i singleton clusters.
    for (int i = 0; i < layer && i <= n; ++i) {
      curr[i] = 0.0;
      splits[layer][i] = std::max(0, i - 1);
    }
    prev = std::move(curr);
  }

  // Backtrack cluster boundaries.
  std::vector<int> boundary(k + 1, 0);
  boundary[k] = n;
  int at = n;
  for (int layer = k; layer >= 2; --layer) {
    at = splits[layer][at];
    boundary[layer - 1] = at;
  }
  boundary[0] = 0;

  KMeans1DResult result;
  result.assignment.assign(n, 0);
  result.means.assign(k, 0.0);
  result.wcss = 0.0;
  result.iterations = 0;
  for (int c = 0; c < k; ++c) {
    int lo = boundary[c];
    int hi = boundary[c + 1];
    if (hi > lo) {
      result.means[c] = cost.Mean(lo, hi - 1);
      result.wcss += cost(lo, hi - 1);
    } else if (lo < n) {
      result.means[c] = sorted[std::min(lo, n - 1)];
    }
    for (int i = lo; i < hi; ++i) result.assignment[order[i]] = c;
  }
  return result;
}

}  // namespace roadpart
