#include "cluster/kmeans1d.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace roadpart {

Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                int max_iterations) {
  const int n = static_cast<int>(values.size());
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds data size %d", k, n));
  }

  // Sort once; iterate on the sorted sequence and map back at the end.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  std::vector<double> sorted(n);
  for (int i = 0; i < n; ++i) sorted[i] = values[order[i]];

  // Prefix sums for O(1) range means.
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix_sq(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + sorted[i];
    prefix_sq[i + 1] = prefix_sq[i] + sorted[i] * sorted[i];
  }

  // Paper initialization: mean_j seeded with the sorted value at (1-based)
  // index (n/k)*j for j = 1..k, i.e. 0-based index (n*j)/k - 1.
  std::vector<double> means(k);
  for (int j = 1; j <= k; ++j) {
    int idx = std::clamp((n * j) / k - 1, 0, n - 1);
    means[j - 1] = sorted[idx];
  }
  std::sort(means.begin(), means.end());

  // In 1-D with sorted means, clusters are contiguous runs split at the
  // midpoints between consecutive means.
  std::vector<int> boundary(k + 1, 0);  // cluster c covers [boundary[c], boundary[c+1])
  boundary[k] = n;
  std::vector<int> prev_boundary;

  int iterations = 0;
  for (; iterations < max_iterations; ++iterations) {
    for (int c = 1; c < k; ++c) {
      double mid = 0.5 * (means[c - 1] + means[c]);
      boundary[c] = static_cast<int>(
          std::upper_bound(sorted.begin(), sorted.end(), mid) -
          sorted.begin());
      boundary[c] = std::max(boundary[c], boundary[c - 1]);
    }
    if (boundary == prev_boundary) break;
    prev_boundary = boundary;

    for (int c = 0; c < k; ++c) {
      int lo = boundary[c];
      int hi = boundary[c + 1];
      if (hi > lo) {
        means[c] = (prefix[hi] - prefix[lo]) / (hi - lo);
      }
      // Empty cluster: leave the mean; re-seeding happens below if it stays
      // empty at convergence.
    }
    std::sort(means.begin(), means.end());
  }

  // Re-seed clusters that converged empty by splitting the widest cluster at
  // its extreme value; repeat until all non-empty (bounded by k passes).
  for (int guard = 0; guard < k; ++guard) {
    bool any_empty = false;
    for (int c = 0; c < k; ++c) {
      if (boundary[c + 1] == boundary[c]) {
        any_empty = true;
        // Find the largest cluster and move its farthest point out.
        int big = 0;
        for (int c2 = 1; c2 < k; ++c2) {
          if (boundary[c2 + 1] - boundary[c2] >
              boundary[big + 1] - boundary[big]) {
            big = c2;
          }
        }
        if (boundary[big + 1] - boundary[big] <= 1) break;
        means[c] = sorted[boundary[big + 1] - 1];
        double mu_big = (prefix[boundary[big + 1]] - prefix[boundary[big]]) /
                        (boundary[big + 1] - boundary[big]);
        means[big] = mu_big;
        std::sort(means.begin(), means.end());
        for (int c2 = 1; c2 < k; ++c2) {
          double mid = 0.5 * (means[c2 - 1] + means[c2]);
          boundary[c2] = static_cast<int>(
              std::upper_bound(sorted.begin(), sorted.end(), mid) -
              sorted.begin());
          boundary[c2] = std::max(boundary[c2], boundary[c2 - 1]);
        }
        break;
      }
    }
    if (!any_empty) break;
  }

  KMeans1DResult result;
  result.iterations = iterations;
  result.assignment.assign(n, 0);
  result.means.assign(k, 0.0);
  result.wcss = 0.0;
  for (int c = 0; c < k; ++c) {
    int lo = boundary[c];
    int hi = boundary[c + 1];
    if (hi > lo) {
      double mu = (prefix[hi] - prefix[lo]) / (hi - lo);
      result.means[c] = mu;
      result.wcss += (prefix_sq[hi] - prefix_sq[lo]) - (hi - lo) * mu * mu;
    } else {
      result.means[c] = means[c];
    }
    for (int i = lo; i < hi; ++i) result.assignment[order[i]] = c;
  }
  // Numerical noise can push wcss epsilon-negative.
  result.wcss = std::max(0.0, result.wcss);
  return result;
}

}  // namespace roadpart
