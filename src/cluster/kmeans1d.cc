#include "cluster/kmeans1d.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace roadpart {

Sorted1DWorkspace::Sorted1DWorkspace(const std::vector<double>& values) {
  const int n = static_cast<int>(values.size());
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  sorted_.resize(n);
  for (int i = 0; i < n; ++i) sorted_[i] = values[order_[i]];

  // Prefix sums for O(1) range means.
  prefix_.assign(n + 1, 0.0);
  prefix_sq_.assign(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix_[i + 1] = prefix_[i] + sorted_[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + sorted_[i] * sorted_[i];
  }

  for (int i = 0; i < n; ++i) {
    if (i == 0 || sorted_[i] != sorted_[i - 1]) ++num_distinct_;
  }
}

Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                int max_iterations) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > static_cast<int>(values.size())) {
    return Status::InvalidArgument(StrPrintf(
        "k=%d exceeds data size %d", k, static_cast<int>(values.size())));
  }
  return KMeans1D(Sorted1DWorkspace(values), k, max_iterations);
}

Result<KMeans1DResult> KMeans1D(const Sorted1DWorkspace& workspace, int k,
                                int max_iterations) {
  const int n = workspace.size();
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument(
        StrPrintf("k=%d exceeds data size %d", k, n));
  }
  if (RP_FAULT_FIRES(FaultSite::kKMeans1DWorkspaceCorruption)) {
    return Status::Internal("injected: shared 1-D k-means workspace corrupt");
  }

  const std::vector<double>& sorted = workspace.sorted();
  const std::vector<double>& prefix = workspace.prefix();
  const std::vector<double>& prefix_sq = workspace.prefix_sq();

  // Duplicate-heavy inputs: more clusters than distinct values can never all
  // be non-empty, so cap the effective k (see the contract in kmeans1d.h).
  const int eff_k = std::min(k, workspace.num_distinct());

  // Paper initialization: mean_j seeded with the sorted value at (1-based)
  // index (n/k)*j for j = 1..k, i.e. 0-based index (n*j)/k - 1.
  std::vector<double> means(eff_k);
  for (int j = 1; j <= eff_k; ++j) {
    int idx = std::clamp((n * j) / eff_k - 1, 0, n - 1);
    means[j - 1] = sorted[idx];
  }
  std::sort(means.begin(), means.end());

  // In 1-D with sorted means, clusters are contiguous runs split at the
  // midpoints between consecutive means.
  std::vector<int> boundary(eff_k + 1, 0);  // cluster c covers [boundary[c], boundary[c+1])
  boundary[eff_k] = n;
  std::vector<int> prev_boundary;

  int iterations = 0;
  for (; iterations < max_iterations; ++iterations) {
    for (int c = 1; c < eff_k; ++c) {
      double mid = 0.5 * (means[c - 1] + means[c]);
      boundary[c] = static_cast<int>(
          std::upper_bound(sorted.begin(), sorted.end(), mid) -
          sorted.begin());
      boundary[c] = std::max(boundary[c], boundary[c - 1]);
    }
    if (boundary == prev_boundary) break;
    prev_boundary = boundary;

    for (int c = 0; c < eff_k; ++c) {
      int lo = boundary[c];
      int hi = boundary[c + 1];
      if (hi > lo) {
        means[c] = (prefix[hi] - prefix[lo]) / (hi - lo);
      }
      // Empty cluster: leave the mean; re-seeding happens below if it stays
      // empty at convergence.
    }
    std::sort(means.begin(), means.end());
  }

  // Re-seed clusters that converged empty by splitting the largest cluster
  // that still spans >= 2 distinct values at its extreme value (a cluster of
  // pure duplicates cannot be split: both halves would share one mean and
  // the empty cluster would come straight back). eff_k <= num_distinct
  // guarantees such a cluster exists whenever any cluster is empty.
  for (int guard = 0; guard < eff_k; ++guard) {
    bool any_empty = false;
    for (int c = 0; c < eff_k; ++c) {
      if (boundary[c + 1] == boundary[c]) {
        any_empty = true;
        int big = -1;
        for (int c2 = 0; c2 < eff_k; ++c2) {
          if (boundary[c2 + 1] - boundary[c2] < 2) continue;
          if (sorted[boundary[c2 + 1] - 1] <= sorted[boundary[c2]]) continue;
          if (big < 0 ||
              boundary[c2 + 1] - boundary[c2] >
                  boundary[big + 1] - boundary[big]) {
            big = c2;
          }
        }
        if (big < 0) break;
        means[c] = sorted[boundary[big + 1] - 1];
        double mu_big = (prefix[boundary[big + 1]] - prefix[boundary[big]]) /
                        (boundary[big + 1] - boundary[big]);
        means[big] = mu_big;
        std::sort(means.begin(), means.end());
        for (int c2 = 1; c2 < eff_k; ++c2) {
          double mid = 0.5 * (means[c2 - 1] + means[c2]);
          boundary[c2] = static_cast<int>(
              std::upper_bound(sorted.begin(), sorted.end(), mid) -
              sorted.begin());
          boundary[c2] = std::max(boundary[c2], boundary[c2 - 1]);
        }
        break;
      }
    }
    if (!any_empty) break;
  }

  // Deterministic last-resort repair: should re-seeding ever converge with a
  // residual empty cluster, distribute the distinct-value runs evenly. Each
  // cluster then owns >= 1 run (eff_k <= num_distinct), so none is empty.
  bool still_empty = false;
  for (int c = 0; c < eff_k; ++c) {
    still_empty = still_empty || boundary[c + 1] == boundary[c];
  }
  if (still_empty) {
    std::vector<int> run_starts;
    run_starts.reserve(workspace.num_distinct());
    for (int i = 0; i < n; ++i) {
      if (i == 0 || sorted[i] != sorted[i - 1]) run_starts.push_back(i);
    }
    for (int c = 0; c < eff_k; ++c) {
      boundary[c] = run_starts[static_cast<size_t>(c) * run_starts.size() /
                               static_cast<size_t>(eff_k)];
    }
    boundary[eff_k] = n;
  }

  KMeans1DResult result;
  result.iterations = iterations;
  result.assignment.assign(n, 0);
  result.means.assign(eff_k, 0.0);
  result.wcss = 0.0;
  for (int c = 0; c < eff_k; ++c) {
    int lo = boundary[c];
    int hi = boundary[c + 1];
    if (hi > lo) {
      double mu = (prefix[hi] - prefix[lo]) / (hi - lo);
      result.means[c] = mu;
      result.wcss += (prefix_sq[hi] - prefix_sq[lo]) - (hi - lo) * mu * mu;
    } else {
      result.means[c] = means[c];
    }
    for (int i = lo; i < hi; ++i) result.assignment[workspace.order()[i]] = c;
  }
  // Numerical noise can push wcss epsilon-negative.
  result.wcss = std::max(0.0, result.wcss);
  return result;
}

}  // namespace roadpart
