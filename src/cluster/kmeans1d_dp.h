#ifndef ROADPART_CLUSTER_KMEANS1D_DP_H_
#define ROADPART_CLUSTER_KMEANS1D_DP_H_

#include <vector>

#include "cluster/kmeans1d.h"
#include "common/status.h"

namespace roadpart {

/// Globally optimal 1-D k-means by dynamic programming with the
/// divide-and-conquer monotonicity speedup — O(k n log n) after sorting.
/// Lloyd's algorithm (KMeans1D) can stop in a local optimum; this solver is
/// the gold standard the tests and the initialization ablation compare
/// against. Clusters come out as contiguous runs of the sorted values, which
/// is always true of some optimal solution in one dimension.
Result<KMeans1DResult> KMeans1DOptimal(const std::vector<double>& values,
                                       int k);

}  // namespace roadpart

#endif  // ROADPART_CLUSTER_KMEANS1D_DP_H_
