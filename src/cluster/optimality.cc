#include "cluster/optimality.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace roadpart {

namespace {

struct PerCluster {
  int count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double mean = 0.0;
};

Result<std::vector<PerCluster>> Summarize(const std::vector<double>& values,
                                          const std::vector<int>& assignment,
                                          int num_clusters) {
  if (values.size() != assignment.size()) {
    return Status::InvalidArgument("values/assignment size mismatch");
  }
  if (num_clusters <= 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  std::vector<PerCluster> stats(num_clusters);
  for (size_t i = 0; i < values.size(); ++i) {
    int c = assignment[i];
    if (c < 0 || c >= num_clusters) {
      return Status::OutOfRange(
          StrPrintf("assignment %zu = %d outside [0,%d)", i, c, num_clusters));
    }
    stats[c].count++;
    stats[c].sum += values[i];
    stats[c].sum_sq += values[i] * values[i];
  }
  for (PerCluster& s : stats) {
    if (s.count > 0) s.mean = s.sum / s.count;
  }
  return stats;
}

}  // namespace

Result<ClusterErrorSums> ComputeClusterErrorSums(
    const std::vector<double>& values, const std::vector<int>& assignment,
    int num_clusters) {
  RP_ASSIGN_OR_RETURN(std::vector<PerCluster> stats,
                      Summarize(values, assignment, num_clusters));
  const double global_mean = GlobalMean(values);

  ClusterErrorSums sums;
  for (const PerCluster& s : stats) {
    if (s.count == 0) continue;
    double sep = (s.mean - global_mean) * (s.mean - global_mean);
    double intra = std::max(0.0, s.sum_sq - s.count * s.mean * s.mean);
    sums.gain += (s.count - 1) * sep;
    sums.intra_error += intra;
    sums.inter_error += sep;
  }
  return sums;
}

double GlobalMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

Result<double> ModeratedClusteringGain(const std::vector<double>& values,
                                       const std::vector<int>& assignment,
                                       int num_clusters) {
  return ModeratedClusteringGain(values, assignment, num_clusters,
                                 GlobalMean(values));
}

Result<double> ModeratedClusteringGain(const std::vector<double>& values,
                                       const std::vector<int>& assignment,
                                       int num_clusters, double global_mean) {
  RP_ASSIGN_OR_RETURN(std::vector<PerCluster> stats,
                      Summarize(values, assignment, num_clusters));
  double theta = 0.0;
  for (const PerCluster& s : stats) {
    if (s.count == 0) continue;
    double sep = (s.mean - global_mean) * (s.mean - global_mean);
    if (sep <= 0.0) continue;  // Theta1 = 0 and Theta2 undefined; contributes 0
    double theta1 = (s.count - 1) * sep;
    double intra = std::max(0.0, s.sum_sq - s.count * s.mean * s.mean);
    double ratio = intra / (s.count * sep);
    double theta2 = 1.0 - std::log2(1.0 + ratio);
    theta2 = std::clamp(theta2, 0.0, 1.0);
    theta += theta1 * theta2;
  }
  return theta;
}

Result<double> ClusteringGain(const std::vector<double>& values,
                              const std::vector<int>& assignment,
                              int num_clusters) {
  RP_ASSIGN_OR_RETURN(ClusterErrorSums sums,
                      ComputeClusterErrorSums(values, assignment, num_clusters));
  return sums.gain;
}

Result<double> ClusteringBalance(const std::vector<double>& values,
                                 const std::vector<int>& assignment,
                                 int num_clusters) {
  RP_ASSIGN_OR_RETURN(ClusterErrorSums sums,
                      ComputeClusterErrorSums(values, assignment, num_clusters));
  return 0.5 * (sums.intra_error + sums.inter_error);
}

}  // namespace roadpart
