#ifndef ROADPART_CLUSTER_KMEANS1D_H_
#define ROADPART_CLUSTER_KMEANS1D_H_

#include <vector>

#include "common/status.h"

namespace roadpart {

/// Result of a 1-D k-means run.
///
/// Contract for duplicate-heavy inputs: when the data holds fewer distinct
/// values than the requested k, the effective cluster count is capped at the
/// distinct-value count. `means` then has `means.size() < k` entries, every
/// cluster id in [0, means.size()) is used by at least one point, and no
/// cluster is silently empty with a stale seed mean (the historical failure
/// mode this contract replaces). Callers that require exactly k clusters must
/// check `means.size()`.
struct KMeans1DResult {
  std::vector<int> assignment;  ///< cluster id per input value, in [0, means.size())
  std::vector<double> means;    ///< cluster means, ascending; size min(k, #distinct)
  double wcss = 0.0;            ///< within-cluster sum of squared error
  int iterations = 0;
};

/// Reusable sorted view of a 1-D dataset: the sort permutation, the sorted
/// values and their prefix / prefix-of-squares sums — everything Lloyd's
/// 1-D iteration needs. Building it is the O(n log n) part of KMeans1D, so
/// sweeps that cluster the *same* data at many k (the Algorithm-1 kappa
/// sweep) construct one workspace and pass it to every call instead of
/// re-sorting per k. Immutable after construction and therefore safe to
/// share across concurrent KMeans1D calls.
class Sorted1DWorkspace {
 public:
  explicit Sorted1DWorkspace(const std::vector<double>& values);

  int size() const { return static_cast<int>(sorted_.size()); }
  /// Number of distinct values (caps the effective k, see KMeans1DResult).
  int num_distinct() const { return num_distinct_; }
  /// `order()[i]` is the original index of the i-th smallest value.
  const std::vector<int>& order() const { return order_; }
  const std::vector<double>& sorted() const { return sorted_; }
  /// prefix()[i] = sum of the first i sorted values (size n+1).
  const std::vector<double>& prefix() const { return prefix_; }
  const std::vector<double>& prefix_sq() const { return prefix_sq_; }

 private:
  std::vector<int> order_;
  std::vector<double> sorted_;
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
  int num_distinct_ = 0;
};

/// Lloyd's k-means on scalar feature values with the paper's deterministic
/// initialization (Section 4.1): sort the values and seed the j-th mean with
/// the value at position (n/k)*j. Because the data is one-dimensional and the
/// seeds are ordered, runs are fully deterministic — the randomized-init
/// local-maxima problem the paper calls out does not arise.
///
/// Empty clusters (possible with heavily duplicated values) are re-seeded by
/// splitting the largest cluster that still spans at least two distinct
/// values; together with the distinct-value cap (see KMeans1DResult) the
/// returned clustering never contains an empty cluster.
Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                int max_iterations = 200);

/// Workspace form: identical output to `KMeans1D(values, k)` for the values
/// the workspace was built from, but skips the per-call sort/prefix work.
/// The hot path for sweeps over many k on fixed data; safe to call
/// concurrently on one shared workspace (the workspace is read-only).
Result<KMeans1DResult> KMeans1D(const Sorted1DWorkspace& workspace, int k,
                                int max_iterations = 200);

}  // namespace roadpart

#endif  // ROADPART_CLUSTER_KMEANS1D_H_
