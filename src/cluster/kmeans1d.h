#ifndef ROADPART_CLUSTER_KMEANS1D_H_
#define ROADPART_CLUSTER_KMEANS1D_H_

#include <vector>

#include "common/status.h"

namespace roadpart {

/// Result of a 1-D k-means run.
struct KMeans1DResult {
  std::vector<int> assignment;  ///< cluster id per input value, in [0, k)
  std::vector<double> means;    ///< cluster means, ascending
  double wcss = 0.0;            ///< within-cluster sum of squared error
  int iterations = 0;
};

/// Lloyd's k-means on scalar feature values with the paper's deterministic
/// initialization (Section 4.1): sort the values and seed the j-th mean with
/// the value at position (n/k)*j. Because the data is one-dimensional and the
/// seeds are ordered, runs are fully deterministic — the randomized-init
/// local-maxima problem the paper calls out does not arise.
///
/// Empty clusters (possible with heavily duplicated values) are re-seeded
/// with the point farthest from its current mean.
Result<KMeans1DResult> KMeans1D(const std::vector<double>& values, int k,
                                int max_iterations = 200);

}  // namespace roadpart

#endif  // ROADPART_CLUSTER_KMEANS1D_H_
