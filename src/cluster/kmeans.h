#ifndef ROADPART_CLUSTER_KMEANS_H_
#define ROADPART_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace roadpart {

/// Options for multi-dimensional k-means (used on spectral embeddings).
struct KMeansOptions {
  int max_iterations = 100;
  /// Best-of-N by WCSS. Spectral embeddings are low-dimensional, so extra
  /// restarts are cheap insurance against the local optima that otherwise
  /// dominate results at small k.
  int restarts = 12;
  bool use_kmeanspp = true;  ///< k-means++ seeding (else uniform random rows)
  uint64_t seed = 1;
};

/// Result of a multi-dimensional k-means run.
struct KMeansResult {
  std::vector<int> assignment;  ///< cluster id per row
  DenseMatrix centroids;        ///< k x dim
  double wcss = 0.0;
  int iterations = 0;  ///< iterations of the winning restart
};

/// Lloyd's k-means over the rows of `points` (n x dim). Randomized seeding;
/// pass a fixed seed for reproducibility. Empty clusters are re-seeded with
/// the point farthest from its assigned centroid.
Result<KMeansResult> KMeansRows(const DenseMatrix& points, int k,
                                const KMeansOptions& options = {});

}  // namespace roadpart

#endif  // ROADPART_CLUSTER_KMEANS_H_
