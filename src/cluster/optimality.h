#ifndef ROADPART_CLUSTER_OPTIMALITY_H_
#define ROADPART_CLUSTER_OPTIMALITY_H_

#include <vector>

#include "common/status.h"

namespace roadpart {

/// Per-clustering summary statistics over 1-D data used by the optimality
/// measures of Section 4.2.
struct ClusterErrorSums {
  /// Sum over clusters of (|C_q|-1) * (mu_q - mu_0)^2 — the clustering gain
  /// Delta(C) of Jung et al. [6].
  double gain = 0.0;
  /// Intra-cluster error Lambda = sum_q sum_{d in C_q} (d - mu_q)^2.
  double intra_error = 0.0;
  /// Inter-cluster error Gamma = sum_q (mu_q - mu_0)^2.
  double inter_error = 0.0;
};

/// Computes gain and error sums for a 1-D clustering. `assignment[i]` is the
/// cluster of values[i]; `num_clusters` the number of clusters (means are
/// recomputed internally so stale mean vectors cannot skew the measures).
Result<ClusterErrorSums> ComputeClusterErrorSums(
    const std::vector<double>& values, const std::vector<int>& assignment,
    int num_clusters);

/// Mean of `values` (0 for empty input), summed serially in input order —
/// bit-identical to the mean every optimality measure derives internally.
/// Sweeps that score many clusterings of the same data hoist this one O(n)
/// sum and pass it to the overload below.
double GlobalMean(const std::vector<double>& values);

/// Moderated clustering gain (Equation 1):
///   Theta(C)   = sum_q Theta1(C_q) * Theta2(C_q)
///   Theta1     = (|C_q|-1) * (mu_q - mu_0)^2
///   Theta2     = 1 - log2(1 + intra_q / (|C_q| * (mu_q - mu_0)^2))
/// The paper states Theta2 in [0,1]; the log term can exceed 1 for very
/// diffuse clusters, so Theta2 is clamped to [0,1] (documented in DESIGN.md).
/// Clusters whose mean coincides with the global mean contribute 0.
Result<double> ModeratedClusteringGain(const std::vector<double>& values,
                                       const std::vector<int>& assignment,
                                       int num_clusters);

/// Sweep form: `global_mean` must equal GlobalMean(values); skips the
/// per-call re-summation of the whole data vector (the kappa sweep calls
/// this once per kappa on the same values).
Result<double> ModeratedClusteringGain(const std::vector<double>& values,
                                       const std::vector<int>& assignment,
                                       int num_clusters, double global_mean);

/// Clustering gain Delta(C) of Jung et al. [6] — maximum indicates the
/// optimal k.
Result<double> ClusteringGain(const std::vector<double>& values,
                              const std::vector<int>& assignment,
                              int num_clusters);

/// Clustering balance E(C) of Jung et al. [6] (equal-weight combination of
/// intra- and inter-cluster error sums) — minimum indicates the optimal k.
Result<double> ClusteringBalance(const std::vector<double>& values,
                                 const std::vector<int>& assignment,
                                 int num_clusters);

}  // namespace roadpart

#endif  // ROADPART_CLUSTER_OPTIMALITY_H_
