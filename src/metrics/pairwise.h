#ifndef ROADPART_METRICS_PAIRWISE_H_
#define ROADPART_METRICS_PAIRWISE_H_

#include <vector>

namespace roadpart {

/// Average absolute difference over all unordered pairs within `values`
/// (0 for fewer than two values). O(n log n) via sorting + prefix sums,
/// replacing the O(n^2) definition used by the paper's `intra` metric.
double AverageAbsPairwiseDifference(std::vector<double> values);

/// Average absolute difference over all cross pairs (a_i, b_j)
/// (0 if either side is empty). O((m+n) log n).
double AverageAbsCrossDifference(std::vector<double> a, std::vector<double> b);

/// Sum of absolute differences over all unordered pairs (helper for tests).
double SumAbsPairwiseDifference(std::vector<double> values);

}  // namespace roadpart

#endif  // ROADPART_METRICS_PAIRWISE_H_
