#include "metrics/validity.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "graph/connected_components.h"
#include "graph/graph_algos.h"

namespace roadpart {

Status CheckPartitionValidity(const CsrGraph& graph,
                              const std::vector<int>& assignment,
                              bool require_connected) {
  const int n = graph.num_nodes();
  if (static_cast<int>(assignment.size()) != n) {
    return Status::InvalidArgument(
        StrPrintf("assignment has %zu entries for %d nodes", assignment.size(),
                  n));
  }
  int k = 0;
  for (int v = 0; v < n; ++v) {
    if (assignment[v] < 0) {
      return Status::InvalidArgument(
          StrPrintf("node %d has negative partition id", v));
    }
    k = std::max(k, assignment[v] + 1);
  }
  std::vector<int> sizes(k, 0);
  for (int a : assignment) sizes[a]++;
  for (int p = 0; p < k; ++p) {
    if (sizes[p] == 0) {
      return Status::InvalidArgument(
          StrPrintf("partition id %d is unused (ids not dense)", p));
    }
  }
  if (require_connected) {
    std::vector<std::vector<int>> groups = GroupByAssignment(assignment, k);
    for (int p = 0; p < k; ++p) {
      if (!IsSubsetConnected(graph, groups[p])) {
        return Status::FailedPrecondition(
            StrPrintf("partition %d is not connected", p));
      }
    }
  }
  return Status::OK();
}

Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("labelings differ in length");
  }
  const size_t n = a.size();
  if (n < 2) return 1.0;

  std::map<std::pair<int, int>, int64_t> contingency;
  std::map<int, int64_t> row_sum;
  std::map<int, int64_t> col_sum;
  for (size_t i = 0; i < n; ++i) {
    contingency[{a[i], b[i]}]++;
    row_sum[a[i]]++;
    col_sum[b[i]]++;
  }
  auto choose2 = [](int64_t x) {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
  };
  double sum_cells = 0.0;
  for (const auto& [key, count] : contingency) sum_cells += choose2(count);
  double sum_rows = 0.0;
  for (const auto& [key, count] : row_sum) sum_rows += choose2(count);
  double sum_cols = 0.0;
  for (const auto& [key, count] : col_sum) sum_cols += choose2(count);
  double total_pairs = choose2(static_cast<int64_t>(n));
  double expected = sum_rows * sum_cols / total_pairs;
  double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index - expected == 0.0) return 1.0;
  return (sum_cells - expected) / (max_index - expected);
}

}  // namespace roadpart
