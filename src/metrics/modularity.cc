#include "metrics/modularity.h"

#include <algorithm>

namespace roadpart {

Result<double> Modularity(const CsrGraph& graph,
                          const std::vector<int>& assignment) {
  const int n = graph.num_nodes();
  if (static_cast<int>(assignment.size()) != n) {
    return Status::InvalidArgument("assignment size != node count");
  }
  int k = 0;
  for (int a : assignment) {
    if (a < 0) return Status::InvalidArgument("negative partition id");
    k = std::max(k, a + 1);
  }
  const double two_m = 2.0 * graph.TotalWeight();
  if (two_m <= 0.0) return 0.0;

  // Q = sum_c (w_in_c / 2m - (vol_c / 2m)^2), with w_in_c the total weight of
  // intra-community edge endpoints.
  std::vector<double> internal(k, 0.0);  // sum of A_ij within community
  std::vector<double> volume(k, 0.0);
  for (int u = 0; u < n; ++u) {
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    volume[assignment[u]] += graph.WeightedDegree(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (assignment[u] == assignment[nbrs[i]]) {
        internal[assignment[u]] += wts[i];  // counts each edge twice
      }
    }
  }
  double q = 0.0;
  for (int c = 0; c < k; ++c) {
    q += internal[c] / two_m - (volume[c] / two_m) * (volume[c] / two_m);
  }
  return q;
}

}  // namespace roadpart
